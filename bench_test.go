package hiddenlayer

// One benchmark per table/figure of the paper's evaluation section, plus
// substrate micro-benchmarks. Each experiment bench runs the corresponding
// internal/eval driver at Quick scale, so `go test -bench=. -benchmem`
// regenerates every result in miniature; `cmd/ibeval -scale standard`
// produces the full-size numbers recorded in EXPERIMENTS.md.

import (
	"context"
	"testing"

	"repro/internal/corpus"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/lda"
	"repro/internal/lstm"
	"repro/internal/ngram"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/trace"
)

// benchCtx caches one Quick-scale context across benchmarks in a run.
var benchCtx *eval.Context

func getCtx(b *testing.B) *eval.Context {
	b.Helper()
	if benchCtx == nil {
		ctx, err := eval.NewContext(eval.Quick())
		if err != nil {
			b.Fatal(err)
		}
		benchCtx = ctx
	}
	return benchCtx
}

// BenchmarkSequentialityTest reproduces the Section 5 binomial n-gram test
// (paper: 69% of bigrams, 43% of trigrams significantly non-i.i.d.).
func BenchmarkSequentialityTest(b *testing.B) {
	ctx := getCtx(b)
	for i := 0; i < b.N; i++ {
		res := eval.RunSequentialityTest(ctx)
		if res.Report.Bigrams == 0 {
			b.Fatal("no bigrams")
		}
	}
}

// BenchmarkTable1MinPerplexities regenerates Table 1: minimum perplexity per
// model family (paper: LDA 8.5 < LSTM 11.6 < n-grams 15.5 < unigram 19.5).
func BenchmarkTable1MinPerplexities(b *testing.B) {
	ctx := getCtx(b)
	for i := 0; i < b.N; i++ {
		res, err := eval.RunTable1(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if res.Rows[0].Method != "LDA" {
			b.Fatalf("rank 1 = %s, want LDA (paper's headline)", res.Rows[0].Method)
		}
	}
}

// BenchmarkFigure1LSTMGrid regenerates Figure 1: LSTM test perplexity over
// the layers x hidden-size architecture grid.
func BenchmarkFigure1LSTMGrid(b *testing.B) {
	ctx := getCtx(b)
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunFigure1(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2LDACurve regenerates Figure 2: LDA test perplexity versus
// topic count for binary and TF-IDF inputs.
func BenchmarkFigure2LDACurve(b *testing.B) {
	ctx := getCtx(b)
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFigure2(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if res.BestTopics > 4 {
			b.Fatalf("best topics %d, want 2-4", res.BestTopics)
		}
	}
}

// BenchmarkFigure3RecommenderSweep regenerates Figure 3: recall/F1 vs
// probability threshold for the LDA3, LSTM and CHH recommenders over
// sliding windows.
func BenchmarkFigure3RecommenderSweep(b *testing.B) {
	ctx := getCtx(b)
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFigure34(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Sweeps) != 4 {
			b.Fatal("missing sweeps")
		}
	}
}

// BenchmarkFigure4RetrievedCounts regenerates Figure 4 (same harness as
// Figure 3; counts are extracted from the sweep results).
func BenchmarkFigure4RetrievedCounts(b *testing.B) {
	ctx := getCtx(b)
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFigure34(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if res.Sweeps[0].Relevant.Mean <= 0 {
			b.Fatal("no ground truth")
		}
	}
}

// BenchmarkFigure5BPMFScores regenerates Figure 5: the distribution of BPMF
// recommendation scores (paper: squashed into [0.9, 1.0]).
func BenchmarkFigure5BPMFScores(b *testing.B) {
	ctx := getCtx(b)
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFigure5(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if res.Box.Median < 0.5 {
			b.Fatalf("BPMF median %v; degeneracy not reproduced", res.Box.Median)
		}
	}
}

// BenchmarkFigure6BPMFAccuracy regenerates Figure 6: BPMF accuracy versus
// recommendation-score threshold.
func BenchmarkFigure6BPMFAccuracy(b *testing.B) {
	ctx := getCtx(b)
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunFigure6(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7Silhouette regenerates Figure 7: silhouette curves for
// every company representation.
func BenchmarkFigure7Silhouette(b *testing.B) {
	ctx := getCtx(b)
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFigure7(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Curves) != 8 {
			b.Fatal("missing curves")
		}
	}
}

// BenchmarkFigure89TSNE regenerates Figures 8-9: t-SNE projections of the
// LDA3 and LDA4 product embeddings.
func BenchmarkFigure89TSNE(b *testing.B) {
	ctx := getCtx(b)
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFigure89(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.LDA3) != 38 {
			b.Fatal("missing points")
		}
	}
}

// BenchmarkCoclusterNote regenerates the Section 3.1 co-clustering
// observation.
func BenchmarkCoclusterNote(b *testing.B) {
	ctx := getCtx(b)
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunCoclusterNote(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGRUAblation regenerates the GRU-vs-LSTM comparison (paper §3.4).
func BenchmarkGRUAblation(b *testing.B) {
	ctx := getCtx(b)
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunGRUAblation(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWindowSizeAblation regenerates the sliding-window-size sweep
// (the paper's stated future work, r in 6..24 months).
func BenchmarkWindowSizeAblation(b *testing.B) {
	ctx := getCtx(b)
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunWindowSizeAblation(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCHHDepthAblation regenerates the CHH context-depth comparison.
func BenchmarkCHHDepthAblation(b *testing.B) {
	ctx := getCtx(b)
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunCHHDepthAblation(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEmbeddingComparison regenerates the Section 3.4 word2vec
// extension: SGNS company embeddings vs LDA features on the clustering task.
func BenchmarkEmbeddingComparison(b *testing.B) {
	ctx := getCtx(b)
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunEmbeddingComparison(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- substrate micro-benchmarks ----

// BenchmarkCorpusGeneration measures the synthetic data generator
// (companies/sec; the paper's corpus is 860k companies).
func BenchmarkCorpusGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gen, err := datagen.NewGenerator(datagen.DefaultConfig(1000, int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		c := gen.Generate()
		if c.N() != 1000 {
			b.Fatal("bad corpus")
		}
	}
}

// BenchmarkLDAGibbsSweep measures collapsed Gibbs training throughput.
func BenchmarkLDAGibbsSweep(b *testing.B) {
	ctx := getCtx(b)
	docs := ctx.Split.Train.Sets()
	g := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lda.Train(lda.Config{
			Topics: 3, V: 38, BurnIn: 5, Iterations: 10, InferIterations: 4,
		}, docs, nil, g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLDAInference measures per-company fold-in inference, the hot path
// of the deployed similarity tool.
func BenchmarkLDAInference(b *testing.B) {
	ctx := getCtx(b)
	g := rng.New(1)
	m, err := lda.Train(lda.Config{Topics: 3, V: 38, BurnIn: 10, Iterations: 20, InferIterations: 12},
		ctx.Split.Train.Sets(), nil, g)
	if err != nil {
		b.Fatal(err)
	}
	doc := []int{0, 5, 9, 23, 31}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		theta := m.InferTheta(doc, g)
		if len(theta) != 3 {
			b.Fatal("bad theta")
		}
	}
}

// BenchmarkLSTMTrainingStep measures BPTT throughput (tokens/op reported as
// time; one op = one epoch over 100 sequences).
func BenchmarkLSTMTrainingStep(b *testing.B) {
	g := rng.New(1)
	seqs := make([][]int, 100)
	for i := range seqs {
		s := make([]int, 6)
		for j := range s {
			s[j] = g.Intn(38)
		}
		seqs[i] = s
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := lstm.Train(lstm.Config{V: 38, Layers: 1, Hidden: 100, Epochs: 1, Dropout: 0.5}, seqs, nil, g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNgramFit measures n-gram counting throughput.
func BenchmarkNgramFit(b *testing.B) {
	ctx := getCtx(b)
	seqs := ctx.Corpus.Sequences()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := ngram.New(ngram.Config{Order: 3, V: 38})
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Fit(seqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimilaritySearch measures the deployed tool's top-k query path.
func BenchmarkSimilaritySearch(b *testing.B) {
	c, err := GenerateCorpus(2000, 1)
	if err != nil {
		b.Fatal(err)
	}
	sel, err := SelectLDA(c, []int{3}, 1)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := NewSystem(c, sel.Model, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.SimilarCompanies(i%c.N(), 10, Filter{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAggregation measures the D-U-N-S site-aggregation pipeline.
func BenchmarkAggregation(b *testing.B) {
	gen, err := datagen.NewGenerator(datagen.DefaultConfig(500, 1))
	if err != nil {
		b.Fatal(err)
	}
	sites := gen.GenerateSites()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := corpus.AggregateDomestic(sites)
		if len(agg) != 500 {
			b.Fatal("bad aggregation")
		}
	}
}

// BenchmarkObsCounterInc measures the hot-path cost of one counter
// increment — the overhead every instrumented training sweep pays.
func BenchmarkObsCounterInc(b *testing.B) {
	c := obs.NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

// BenchmarkObsHistogramObserve measures one latency observation into the
// default bucket layout (the topk_latency_seconds path).
func BenchmarkObsHistogramObserve(b *testing.B) {
	h := obs.NewRegistry().Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := 0.0
		for pb.Next() {
			h.Observe(v)
			v += 1e-5
			if v > 10 {
				v = 0
			}
		}
	})
}

// BenchmarkObsWindowedObserve measures one observation into a rolling-window
// histogram — the per-request cost of the serving SLO layer. Must be
// zero-alloc: it sits on every request path when -slo is on.
func BenchmarkObsWindowedObserve(b *testing.B) {
	w := obs.NewRegistry().WindowedHistogram("bench_window_seconds", "", nil, 6)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := 0.0
		for pb.Next() {
			w.Observe(v)
			v += 1e-5
			if v > 10 {
				v = 0
			}
		}
	})
}

// BenchmarkObsWindowedRotate measures a window tick: clearing the next
// window and publishing it. Runs once per rotation interval, not per
// request, so absolute cost matters less than Observe's — but it must not
// allocate either.
func BenchmarkObsWindowedRotate(b *testing.B) {
	w := obs.NewRegistry().WindowedHistogram("bench_rotate_seconds", "", nil, 6)
	for i := 0; i < 1000; i++ {
		w.Observe(float64(i) * 1e-3)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Rotate()
	}
}

// BenchmarkObsHistogramObserveExemplar measures an observation that also
// stores a trace exemplar — the traced-request variant of the latency
// histogram path.
func BenchmarkObsHistogramObserveExemplar(b *testing.B) {
	h := obs.NewRegistry().Histogram("bench_ex_seconds", "", nil)
	const tid = "4bf92f3577b34da6a3ce929d0e0e4736"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveExemplar(1e-3, tid)
	}
}

// BenchmarkObsSpanDisabled measures the fast path instrumentation takes when
// span capture is switched off: Start must not allocate and End must be a
// nil-check only.
func BenchmarkObsSpanDisabled(b *testing.B) {
	r := obs.NewRegistry()
	r.SetSpansEnabled(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.StartSpan("bench.disabled")
		sp.End()
	}
}

// BenchmarkObsSpanEnabled is the enabled counterpart: one Start/End pair
// including the histogram observation it feeds.
func BenchmarkObsSpanEnabled(b *testing.B) {
	r := obs.NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.StartSpan("bench.enabled")
		sp.End()
	}
}

// BenchmarkTraceStartDisabled measures the cost a traced call site pays when
// tracing is off and the context carries no span: one map-free context probe
// and a nil return, no allocation.
func BenchmarkTraceStartDisabled(b *testing.B) {
	tr := trace.NewTracer(16) // disabled by default
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := tr.Start(ctx, "bench.disabled")
		sp.AttrInt("i", int64(i))
		sp.End()
	}
}

// BenchmarkTraceSpanEnabled measures one child Start/attr/End under an
// active trace, including the obs histogram observation End feeds.
func BenchmarkTraceSpanEnabled(b *testing.B) {
	tr := trace.NewTracer(16)
	tr.SetEnabled(true)
	tr.SetSampleRate(0) // complete traces are discarded, not accumulated
	tr.SetMaxSpans(1 << 30)
	ctx, root := tr.Start(context.Background(), "bench.root")
	defer root.End()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := trace.Start(ctx, "bench.child")
		sp.AttrInt("i", int64(i))
		sp.End()
	}
}

// BenchmarkTraceRootRetained measures a full root-span lifecycle ending in
// tail-sampling retention and a lock-free ring push.
func BenchmarkTraceRootRetained(b *testing.B) {
	tr := trace.NewTracer(256)
	tr.SetEnabled(true)
	tr.SetSampleRate(1)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := tr.Start(ctx, "bench.request")
		sp.End()
	}
}

// BenchmarkParseTraceparent measures the strict W3C header parse on the
// serve ingestion path.
func BenchmarkParseTraceparent(b *testing.B) {
	const h = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := trace.ParseTraceparent(h); !ok {
			b.Fatal("valid header rejected")
		}
	}
}
