// Command metricnames prints every metric name the serving stack can
// register, one per line, by constructing real instances against the shared
// obs registry: a server with shadow sampling, the recall SLO and the reload
// canary armed, a scatter-gather router with its own SLO tracker, and the
// runtime sampler. Trainer- and infrastructure-package metrics register as
// package variables, so importing the packages is enough for those.
//
// scripts/check_metrics_docs.sh runs this and asserts each printed name is
// documented in README.md or DESIGN.md — new metrics cannot land undocumented.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/serve"
	"repro/internal/shadow"

	_ "repro/internal/ann"
	_ "repro/internal/bpmf"
	_ "repro/internal/chaos"
	_ "repro/internal/eval"
	_ "repro/internal/gru"
	_ "repro/internal/lda"
	_ "repro/internal/lstm"
	_ "repro/internal/par"
	_ "repro/internal/sgns"
	_ "repro/internal/snapshot"
	_ "repro/internal/trace"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "metricnames:", err)
	os.Exit(1)
}

func main() {
	prom := flag.Bool("prom", false, "dump the full Prometheus exposition (names + help) instead of bare names")
	flag.Parse()

	cat := corpus.DefaultCatalog()
	companies := []corpus.Company{
		{ID: 0, Name: "a", Country: "US", SIC2: 70, Employees: 10, RevenueM: 1,
			Acquisitions: []corpus.Acquisition{{Category: 0, First: corpus.Month(1)}}},
		{ID: 1, Name: "b", Country: "DE", SIC2: 71, Employees: 20, RevenueM: 2,
			Acquisitions: []corpus.Acquisition{{Category: 1, First: corpus.Month(2)}}},
	}
	c := corpus.New(cat, companies)
	reps := mat.New(len(companies), 3)
	for i := range reps.Data {
		reps.Data[i] = float64(i + 1)
	}
	ix, err := core.NewIndex(c, reps, core.Cosine)
	if err != nil {
		fatal(err)
	}
	srv, err := serve.New(serve.Loaded{Index: ix}, nil, serve.Config{
		Quiet:       true,
		Shadow:      &shadow.Config{SampleN: 1},
		ReloadGuard: 0.9,
		SLO:         &serve.SLOConfig{Recall: 0.9},
	})
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	rt, err := router.New(router.Config{
		Shards:        []string{"127.0.0.1:9"},
		ProbeInterval: -1,
		SLO:           &serve.SLOConfig{},
	})
	if err != nil {
		fatal(err)
	}
	defer rt.Close()
	stop := obs.StartRuntimeSampler(obs.Default(), time.Hour)
	defer stop()

	if *prom {
		if err := obs.Default().WritePrometheus(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	for _, name := range obs.Default().Names() {
		fmt.Println(name)
	}
}
