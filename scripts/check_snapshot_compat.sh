#!/bin/sh
# check_snapshot_compat.sh gates cross-version snapshot compatibility: the
# committed IBSNAP v1 and v2 model fixtures under internal/lda/testdata must
# keep loading through today's readers and decoding to gob-byte-identical
# models, and the deterministic trainer must still reproduce them. A failure
# here means a reader change silently broke fleet-rollout compatibility
# (old v1 snapshots in production, new v2-writing trainers) — fix the reader,
# or regenerate the fixtures deliberately with LDA_REGEN_FIXTURES=1 and call
# the format break out in the PR.
set -eu
cd "$(dirname "$0")/.."

go test ./internal/lda/ -run 'TestCompatFixtures|TestV1V2LoadIdentical' -count=1
go test ./internal/ann/ -run 'TestCompatFixture|TestSaveLoadRoundTrip' -count=1
echo "snapshot compat OK"
