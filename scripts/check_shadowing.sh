#!/bin/sh
# check_shadowing.sh rejects local variables or parameters that shadow the
# builtins cap/max/min/len. Shadowed builtins compile fine but silently make
# the builtin unusable for the rest of the scope (and read as the builtin to
# reviewers); three such shadows have already been fixed in internal/eval.
#
# The grep is intentionally narrow: declarations of the form
#   cap := ... | var cap ... | , cap := ... | func f(cap int...) | cap T) in
# a parameter list — identifiers merely *containing* these words are fine.
set -eu
cd "$(dirname "$0")/.."

pattern='(^|[^A-Za-z0-9_.])(cap|max|min|len)([[:space:]]*:=|[[:space:]]*,[[:space:]]*[A-Za-z0-9_]+[[:space:]]*:=|[[:space:]]+[\[\]A-Za-z0-9_.*]+[,)])'
declpattern='(var|func.*\()[[:space:]]*(cap|max|min|len)[[:space:]]'

found=0
# grep -E over tracked Go files, excluding generated/vendored code (none today).
for f in $(find . -name '*.go' -not -path './.git/*'); do
    if grep -nE "(^|[^A-Za-z0-9_.\"])(cap|max|min|len)[[:space:]]*(:=|,[[:space:]]*err[[:space:]]*:=)" "$f" \
        | grep -vE '^\s*[0-9]+:\s*//' \
        | grep -vE '\.(cap|max|min|len)' ; then
        echo "shadowed builtin declared in $f" >&2
        found=1
    fi
    if grep -nE "func [A-Za-z0-9_]+(\([^)]*\))?\([^)]*(^|[,(][[:space:]]*)(cap|max|min|len)[[:space:]]+[\[\]A-Za-z]" "$f" \
        | grep -vE '^\s*[0-9]+:\s*//' ; then
        echo "builtin shadowed by parameter in $f" >&2
        found=1
    fi
done

if [ "$found" -ne 0 ]; then
    echo "FAIL: new shadowing of cap/max/min/len introduced" >&2
    exit 1
fi
echo "shadowing check OK"
