#!/bin/sh
# check_metrics_docs.sh asserts that every metric name the serving stack can
# register is documented in README.md or DESIGN.md. The name list comes from
# scripts/metricnames, which constructs real instances (server with shadow
# sampling + recall SLO, router with its SLO tracker, runtime sampler) against
# the shared obs registry and prints Registry.Names() — so a PR that adds a
# metric without documenting it fails tier-1. Per-shard series are normalized
# to the router_shard{i}_* family the docs describe.
set -eu
cd "$(dirname "$0")/.."

names=$(go run ./scripts/metricnames | sed 's/shard[0-9][0-9]*/shard{i}/' | sort -u)

missing=0
for n in $names; do
    if ! grep -qF "$n" README.md DESIGN.md; then
        echo "undocumented metric: $n" >&2
        missing=1
    fi
done

if [ "$missing" -ne 0 ]; then
    echo "FAIL: metrics registered but not documented in README.md or DESIGN.md" >&2
    exit 1
fi
echo "metrics docs check OK"
