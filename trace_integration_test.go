package hiddenlayer

// End-to-end test for request-scoped tracing on the ibserve binary: start
// the server with tracing enabled, drive traced queries, and read the span
// trees back through /debug/traces on the debug listener. A second server
// run pins the tail-sampling contract at the process level: with the sample
// rate at zero, fast successful requests leave no trace while a failed
// (deadline-exceeded) request is always retained.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// traceServer starts ibserve with the given extra flags and returns the
// serving and debug base URLs plus a cleanup-registered process handle.
func traceServer(t *testing.T, ibserve, corpusPath, modelPath string, extra ...string) (base, debug string) {
	t.Helper()
	args := append([]string{
		"-corpus", corpusPath, "-model", modelPath,
		"-addr", "localhost:0", "-debug-addr", "localhost:0",
		"-k", "5", "-grace", "5s",
	}, extra...)
	cmd := exec.Command(ibserve, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})
	sc := bufio.NewScanner(stdout)
	debugAddr := scrapeAddr(t, sc, "debug on ")
	serveAddr := scrapeAddr(t, sc, "serving on ")
	return "http://" + serveAddr, "http://" + debugAddr
}

// getTraceJSON polls /debug/traces/{id} until the trace is retained (the
// root span ends in a deferred handler after the response bytes are written,
// so the trace can lag the response by a scheduling beat).
func getTraceJSON(t *testing.T, debug, id string, out any) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := httpGetBody(t, debug+"/debug/traces/"+id)
		if code == http.StatusOK {
			if err := json.Unmarshal(body, out); err != nil {
				t.Fatalf("/debug/traces/%s: %v\n%s", id, err, body)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("/debug/traces/%s: still %d after 5s\n%s", id, code, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// spanNode mirrors trace.SpanJSON for decoding without importing internal
// packages into the binary-level test.
type spanNode struct {
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id"`
	Name     string `json:"name"`
	DurUS    int64  `json:"duration_us"`
	Error    string `json:"error"`
	Attrs    []struct {
		Key   string `json:"key"`
		Value string `json:"value"`
	} `json:"attrs"`
	Children []*spanNode `json:"children"`
}

type traceNode struct {
	TraceID      string    `json:"trace_id"`
	Name         string    `json:"name"`
	DurUS        int64     `json:"duration_us"`
	Retained     string    `json:"retained"`
	Error        bool      `json:"error"`
	Spans        int       `json:"spans"`
	RemoteParent string    `json:"remote_parent"`
	Root         *spanNode `json:"root"`
}

func collectSpans(root *spanNode, name string) []*spanNode {
	var out []*spanNode
	if root == nil {
		return out
	}
	if root.Name == name {
		out = append(out, root)
	}
	for _, c := range root.Children {
		out = append(out, collectSpans(c, name)...)
	}
	return out
}

func TestTraceIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	ibgen := buildTool(t, dir, "ibgen")
	ibtrain := buildTool(t, dir, "ibtrain")
	ibserve := buildTool(t, dir, "ibserve")

	corpusPath := filepath.Join(dir, "corpus.jsonl")
	modelPath := filepath.Join(dir, "lda.gob")
	runTool(t, ibgen, "-companies", "200", "-seed", "9", "-out", corpusPath)
	runTool(t, ibtrain, "-model", "lda", "-topics=3", "-corpus", corpusPath,
		"-out", modelPath, "-seed", "1")

	// Run 1: everything traced (-trace-sample 1), single worker so the
	// sequential shard scans make root >= sum(par.shard) deterministic.
	t.Run("SpanTrees", func(t *testing.T) {
		base, debug := traceServer(t, ibserve, corpusPath, modelPath,
			"-trace", "-trace-sample", "1", "-workers", "1", "-quiet")

		// Health reports the tracing state alongside the index shape.
		var health struct {
			Status     string  `json:"status"`
			Tracing    bool    `json:"tracing"`
			Generation uint64  `json:"generation"`
			Vocab      int     `json:"vocab"`
			Uptime     float64 `json:"uptime_seconds"`
		}
		code, body := httpGetBody(t, base+"/healthz")
		if code != http.StatusOK {
			t.Fatalf("/healthz: status %d\n%s", code, body)
		}
		if err := json.Unmarshal(body, &health); err != nil {
			t.Fatalf("/healthz: %v\n%s", err, body)
		}
		if health.Status != "ok" || !health.Tracing || health.Generation != 1 || health.Vocab == 0 {
			t.Fatalf("/healthz: %+v, want ok/tracing/gen 1/vocab > 0", health)
		}

		// A traced query echoes its assigned IDs in the traceparent header.
		resp, err := http.Get(base + "/v1/similar/3?k=5")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/v1/similar/3: status %d", resp.StatusCode)
		}
		tp := resp.Header.Get("traceparent")
		parts := strings.Split(tp, "-")
		if len(parts) != 4 || parts[0] != "00" || len(parts[1]) != 32 {
			t.Fatalf("response traceparent %q is not a version-00 header", tp)
		}
		id := parts[1]

		// The retained tree has the serve -> core -> par shape and the root
		// duration bounds the sequential shard scans underneath it.
		var tj traceNode
		getTraceJSON(t, debug, id, &tj)
		if tj.Name != "serve.similar" || tj.Retained != "sampled" || tj.Error {
			t.Fatalf("trace %+v, want sampled serve.similar", tj)
		}
		topk := collectSpans(tj.Root, "core.topk")
		if len(topk) != 1 {
			t.Fatalf("found %d core.topk spans, want 1", len(topk))
		}
		shards := collectSpans(topk[0], "par.shard")
		if len(shards) == 0 {
			t.Fatal("no par.shard spans under core.topk")
		}
		var shardSum int64
		for _, sh := range shards {
			shardSum += sh.DurUS
		}
		if tj.Root.DurUS < shardSum {
			t.Fatalf("root duration %dus < shard sum %dus", tj.Root.DurUS, shardSum)
		}

		// The list endpoint filters by root-span name.
		code, body = httpGetBody(t, debug+"/debug/traces?endpoint=serve.similar")
		if code != http.StatusOK {
			t.Fatalf("/debug/traces: status %d\n%s", code, body)
		}
		var sums []struct {
			TraceID string `json:"trace_id"`
			Name    string `json:"name"`
		}
		if err := json.Unmarshal(body, &sums); err != nil {
			t.Fatalf("/debug/traces: %v\n%s", err, body)
		}
		found := false
		for _, sum := range sums {
			if sum.TraceID == id {
				found = true
			}
			if sum.Name != "serve.similar" {
				t.Fatalf("endpoint filter leaked %q", sum.Name)
			}
		}
		if !found {
			t.Fatalf("trace %s missing from /debug/traces list", id)
		}

		// A caller-supplied traceparent is joined, not replaced.
		const inbound = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
		req, err := http.NewRequest(http.MethodGet, base+"/v1/similar/4?k=3", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("traceparent", inbound)
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		echo := resp.Header.Get("traceparent")
		if !strings.HasPrefix(echo, "00-0af7651916cd43dd8448eb211c80319c-") {
			t.Fatalf("echoed traceparent %q does not keep the caller's trace ID", echo)
		}
		if strings.Contains(echo, "b7ad6b7169203331") {
			t.Fatalf("echoed traceparent %q reuses the caller's span ID", echo)
		}
		var joined traceNode
		getTraceJSON(t, debug, "0af7651916cd43dd8448eb211c80319c", &joined)
		if joined.RemoteParent != "b7ad6b7169203331" {
			t.Fatalf("remote parent %q", joined.RemoteParent)
		}
	})

	// Run 2: sample rate zero. Fast successes must vanish; a request that
	// blows its (client-shrunk) deadline is an error and always retained.
	t.Run("TailSampling", func(t *testing.T) {
		base, debug := traceServer(t, ibserve, corpusPath, modelPath,
			"-trace", "-trace-sample", "0", "-trace-slow", "250ms", "-quiet")

		for i := 0; i < 5; i++ {
			code, body := httpGetBody(t, fmt.Sprintf("%s/v1/similar/%d?k=5", base, i))
			if code != http.StatusOK {
				t.Fatalf("similar %d: status %d\n%s", i, code, body)
			}
		}

		// timeout_ms can only shrink the deadline. A 1us deadline races the
		// runtime timer against the scan, so drive a deliberately heavy
		// whitespace query (every company as a client) and retry until the
		// timer wins; the eventual deadline blow-through is a 503/504 error
		// and must be retained. Any 200s along the way are fast successes
		// (far under the 250ms slow threshold) and are sampled out.
		clients := make([]int, 200)
		for i := range clients {
			clients[i] = i
		}
		var code int
		var body []byte
		for attempt := 0; attempt < 50; attempt++ {
			code, body = httpPostBody(t,
				base+"/v1/whitespace?timeout_ms=0.001",
				map[string]any{"clients": clients, "k": 50})
			if code >= 500 {
				break
			}
		}
		if code < 500 {
			t.Fatalf("deadline-starved whitespace: status %d, want 5xx\n%s", code, body)
		}

		// The error trace lands; once it has, the fast successes above are
		// definitively sampled out (retention order matches request order).
		deadline := time.Now().Add(5 * time.Second)
		var sums []struct {
			Name     string `json:"name"`
			Retained string `json:"retained"`
			Error    bool   `json:"error"`
		}
		for {
			code, body = httpGetBody(t, debug+"/debug/traces")
			if code != http.StatusOK {
				t.Fatalf("/debug/traces: status %d\n%s", code, body)
			}
			sums = sums[:0]
			if err := json.Unmarshal(body, &sums); err != nil {
				t.Fatalf("/debug/traces: %v\n%s", err, body)
			}
			if len(sums) > 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("error trace never retained")
			}
			time.Sleep(10 * time.Millisecond)
		}
		if len(sums) != 1 {
			t.Fatalf("retained %d traces at sample rate 0, want only the error\n%s", len(sums), body)
		}
		if sums[0].Name != "serve.whitespace" || !sums[0].Error || sums[0].Retained != "error" {
			t.Fatalf("retained trace %+v, want serve.whitespace error", sums[0])
		}
	})
}
