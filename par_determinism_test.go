package hiddenlayer

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/par"
)

// TestSelectLDAWorkersGobIdentical proves the parallel topic-grid sweep is
// gob-byte-identical to the sequential one: models and perplexity curve
// included, at workers=1 vs workers=4.
func TestSelectLDAWorkersGobIdentical(t *testing.T) {
	c, err := GenerateCorpus(150, 5)
	if err != nil {
		t.Fatal(err)
	}
	run := func(w int) []byte {
		par.SetWorkers(w)
		defer par.SetWorkers(0)
		sel, err := SelectLDA(c, []int{2, 3, 4, 6}, 9)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		if err := enc.Encode(sel.Curve); err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(sel.Model.Phi.Data); err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(sel.Model.K); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(1), run(4)) {
		t.Fatal("SelectLDA differs between workers=1 and workers=4")
	}
}
