package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
	"repro/internal/rng"
)

// withWorkers runs fn under a fixed process-wide worker count and restores
// the default afterwards.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	SetWorkers(n)
	defer SetWorkers(0)
	fn()
}

func TestWorkersDefault(t *testing.T) {
	SetWorkers(0)
	if got := Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default Workers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetWorkers(7)
	if got := Workers(); got != 7 {
		t.Fatalf("Workers() = %d after SetWorkers(7)", got)
	}
	SetWorkers(-3)
	if got := Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d after reset", got)
	}
}

func TestForEachCoversAllIndicesOnce(t *testing.T) {
	for _, w := range []int{1, 4} {
		withWorkers(t, w, func() {
			const n = 257
			counts := make([]atomic.Int64, n)
			err := ForEach(context.Background(), n, func(i int) error {
				counts[i].Add(1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("workers=%d: index %d ran %d times", w, i, c)
				}
			}
		})
	}
}

func TestMapIndexStable(t *testing.T) {
	for _, w := range []int{1, 4} {
		withWorkers(t, w, func() {
			out, err := Map(context.Background(), 100, func(i int) (int, error) {
				return i * i, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range out {
				if v != i*i {
					t.Fatalf("workers=%d: out[%d] = %d", w, i, v)
				}
			}
		})
	}
}

func TestForEachLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, w := range []int{1, 4} {
		withWorkers(t, w, func() {
			err := ForEach(context.Background(), 64, func(i int) error {
				switch i {
				case 3:
					return errA
				case 40:
					return errB
				}
				return nil
			})
			// Index 3 is dispatched before (or concurrently with) 40 at any
			// worker count <= 4; the recorded error must be the lowest index
			// among those that ran.
			if !errors.Is(err, errA) {
				t.Fatalf("workers=%d: err = %v, want %v", w, err, errA)
			}
		})
	}
}

func TestMapErrorDiscardsResults(t *testing.T) {
	withWorkers(t, 4, func() {
		out, err := Map(context.Background(), 8, func(i int) (int, error) {
			if i == 0 {
				return 0, fmt.Errorf("boom")
			}
			return i, nil
		})
		if err == nil || out != nil {
			t.Fatalf("out=%v err=%v, want nil+error", out, err)
		}
	})
}

func TestForEachContextCancellation(t *testing.T) {
	for _, w := range []int{1, 4} {
		withWorkers(t, w, func() {
			ctx, cancel := context.WithCancel(context.Background())
			var ran atomic.Int64
			err := ForEach(ctx, 10000, func(i int) error {
				if ran.Add(1) == 5 {
					cancel()
				}
				return nil
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d: err = %v, want context.Canceled", w, err)
			}
			if n := ran.Load(); n >= 10000 {
				t.Fatalf("workers=%d: cancellation did not stop dispatch (%d tasks ran)", w, n)
			}
		})
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	if err := ForEach(context.Background(), 0, func(int) error { t.Fatal("ran"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(context.Background(), -3, func(int) error { t.Fatal("ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachShardCoversRangeContiguously(t *testing.T) {
	for _, w := range []int{1, 3, 4} {
		withWorkers(t, w, func() {
			for _, n := range []int{1, 5, 16, 257} {
				covered := make([]atomic.Int64, n)
				type bound struct{ lo, hi int }
				bounds := make([]bound, NumShards(n))
				err := ForEachShard(context.Background(), n, func(s, lo, hi int) error {
					bounds[s] = bound{lo, hi}
					for i := lo; i < hi; i++ {
						covered[i].Add(1)
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				for i := range covered {
					if c := covered[i].Load(); c != 1 {
						t.Fatalf("workers=%d n=%d: index %d covered %d times", w, n, i, c)
					}
				}
				// shards are contiguous and ascending
				prev := 0
				for s, b := range bounds {
					if b.lo != prev || b.hi < b.lo {
						t.Fatalf("workers=%d n=%d: shard %d = [%d,%d), prev end %d", w, n, s, b.lo, b.hi, prev)
					}
					prev = b.hi
				}
				if prev != n {
					t.Fatalf("workers=%d n=%d: shards end at %d", w, n, prev)
				}
			}
		})
	}
}

// TestWorkers1vsNDeterminism is the package-level determinism smoke test:
// a float reduction restructured to per-index partials folded in index
// order must be bit-identical at workers=1 and workers=4, including when
// every task draws from its own pre-split RNG stream.
func TestWorkers1vsNDeterminism(t *testing.T) {
	run := func(w int) []float64 {
		SetWorkers(w)
		defer SetWorkers(0)
		parent := rng.New(42)
		const n = 100
		// pre-split one stream per task in sequential order
		streams := make([]*rng.RNG, n)
		for i := range streams {
			streams[i] = parent.Split()
		}
		partial := make([]float64, n)
		if err := ForEach(context.Background(), n, func(i int) error {
			s := 0.0
			for k := 0; k < 50; k++ {
				s += streams[i].Float64()
			}
			partial[i] = s
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return partial
	}
	seq := run(1)
	par4 := run(4)
	for i := range seq {
		if seq[i] != par4[i] {
			t.Fatalf("partial[%d]: workers=1 %v != workers=4 %v", i, seq[i], par4[i])
		}
	}
}

func TestUtilizationMetrics(t *testing.T) {
	before := obs.Default().Counter("par_tasks_total", "").Value()
	withWorkers(t, 4, func() {
		if err := ForEach(context.Background(), 32, func(int) error { return nil }); err != nil {
			t.Fatal(err)
		}
	})
	after := obs.Default().Counter("par_tasks_total", "").Value()
	if after-before != 32 {
		t.Fatalf("par_tasks_total advanced by %d, want 32", after-before)
	}
	if busy := obs.Default().Gauge("par_workers_busy", "").Value(); busy != 0 {
		t.Fatalf("par_workers_busy = %v after quiescence, want 0", busy)
	}
}
