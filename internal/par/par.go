// Package par is the repo's deterministic parallel-execution layer: a
// bounded worker fan-out over an index space with index-stable result
// collection, context cancellation and first-error (lowest index) propagation.
//
// Determinism contract. Every hot path driven through this package must be
// bit-identical at any worker count, which requires two disciplines from
// callers:
//
//  1. RNG streams are Split() up front, in the sequential order the
//     single-threaded code would have consumed them, BEFORE the fan-out.
//     Workers then only touch their own pre-split streams, so every task
//     sees the same stream it sees today regardless of scheduling.
//  2. Reductions merge per-index partial results in index order. Integer
//     merges are exact in any order; floating-point reductions must be
//     restructured so both the sequential and the parallel path compute the
//     same per-index partials and fold them in the same order.
//
// The worker count defaults to GOMAXPROCS and is overridable process-wide
// with SetWorkers (the cmd/ binaries expose it as -workers). Workers() == 1
// runs every task inline on the calling goroutine — the sequential baseline
// the determinism tests compare against.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Worker-utilization metrics: tasks executed through the pool and the number
// of workers currently running a task (utilization = busy / workers).
var (
	tasksTotal = obs.Default().Counter("par_tasks_total",
		"tasks executed through the parallel execution layer")
	workersBusy = obs.Default().Gauge("par_workers_busy",
		"workers currently executing a task in the parallel execution layer")
)

// workers holds the process-wide worker count; 0 means "use GOMAXPROCS".
var workers atomic.Int64

// SetWorkers sets the process-wide worker count used by ForEach, Map and
// ForEachShard. n < 1 resets to the default (GOMAXPROCS at call time).
func SetWorkers(n int) {
	if n < 1 {
		n = 0
	}
	workers.Store(int64(n))
}

// Workers returns the effective worker count.
func Workers() int {
	if n := workers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// shardsPerWorker oversubscribes shards relative to workers so uneven shard
// costs still load-balance across the pool.
const shardsPerWorker = 4

// NumShards returns the shard count ForEachShard uses to partition n items:
// min(n, Workers()*shardsPerWorker). Callers that collect per-shard partial
// results size their slices with it. Only exact (order-independent)
// reductions may merge per-shard values, because the shard boundaries move
// with the worker count; floating-point partials must be per-index instead.
// Schedules that must themselves be worker-invariant (not just their
// reductions) should fan out over fixed-size blocks via ForEach instead —
// internal/ann's k-means trainer is the pattern.
func NumShards(n int) int {
	s := Workers() * shardsPerWorker
	if s > n {
		s = n
	}
	if s < 1 {
		s = 1
	}
	return s
}

// ForEach runs fn(i) for every i in [0, n) on up to Workers() goroutines and
// blocks until all scheduled tasks finish. Task-to-worker assignment is
// nondeterministic; callers keep results index-stable by writing only to
// slot i from task i. On error the lowest-index error is returned and no new
// tasks start; tasks already running complete. A cancelled ctx stops
// dispatch and surfaces ctx.Err() unless a task error (lower authority:
// lowest index) was recorded.
func ForEach(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			tasksTotal.Inc()
			workersBusy.Add(1)
			err := fn(i)
			workersBusy.Add(-1)
			if err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64
		stop     atomic.Bool
		mu       sync.Mutex
		firstIdx = n
		firstErr error
		wg       sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if err != nil && i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		stop.Store(true)
	}
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				if stop.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				tasksTotal.Inc()
				workersBusy.Add(1)
				err := fn(i)
				workersBusy.Add(-1)
				if err != nil {
					record(i, err)
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Map runs fn(i) for every i in [0, n) across the pool and returns the
// results in index order. Error and cancellation semantics match ForEach;
// on error the partial results are discarded.
func Map[T any](ctx context.Context, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ForEachShard partitions [0, n) into NumShards(n) contiguous index ranges
// and runs fn(shard, lo, hi) for each. Shard s covers [lo, hi) and shards
// are contiguous and ascending, so concatenating per-shard outputs in shard
// order reproduces index order.
//
// When ctx carries an active request trace, each shard scan is recorded as a
// child span ("par.shard" with shard/lo/hi attributes), so a traced query's
// tree shows exactly which shard the time went to. Untraced contexts pay one
// nil-check per shard; spans never touch the task's data or RNG streams, so
// the determinism contract is unaffected.
func ForEachShard(ctx context.Context, n int, fn func(shard, lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	shards := NumShards(n)
	size := n / shards
	rem := n % shards
	traced := trace.FromContext(ctx) != nil
	return ForEach(ctx, shards, func(s int) error {
		lo := s*size + min(s, rem)
		hi := lo + size
		if s < rem {
			hi++
		}
		if !traced {
			return fn(s, lo, hi)
		}
		_, sp := trace.Start(ctx, "par.shard")
		sp.AttrInt("shard", int64(s))
		sp.AttrInt("lo", int64(lo))
		sp.AttrInt("hi", int64(hi))
		err := fn(s, lo, hi)
		if err != nil {
			sp.Error(err)
		}
		sp.End()
		return err
	})
}
