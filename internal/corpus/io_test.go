package corpus

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testHdr = `{"format":"installbase-corpus/v1","categories":["a","b"]}` + "\n"

func TestReadJSONLRejectsDuplicateIDs(t *testing.T) {
	in := testHdr +
		`{"id":7,"name":"x","acquisitions":[]}` + "\n" +
		`{"id":7,"name":"y","acquisitions":[]}` + "\n"
	_, err := ReadJSONL(strings.NewReader(in))
	if err == nil {
		t.Fatal("duplicate company id accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "line 3") || !strings.Contains(msg, "line 2") {
		t.Fatalf("duplicate error should name both lines, got %q", msg)
	}
}

func TestReadJSONLRejectsNegativeID(t *testing.T) {
	in := testHdr + `{"id":-4,"name":"x"}` + "\n"
	if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
		t.Fatal("negative company id accepted")
	}
}

func TestReadJSONLRejectsOutOfRangeMonth(t *testing.T) {
	in := testHdr + `{"id":1,"acquisitions":[{"category":"a","first":"2001-13"}]}` + "\n"
	if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
		t.Fatal("month 13 accepted")
	}
	in = testHdr + `{"id":1,"acquisitions":[{"category":"a","first":"2001-00"}]}` + "\n"
	if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
		t.Fatal("month 00 accepted")
	}
}

func TestReadJSONLParseErrorNamesLine(t *testing.T) {
	in := testHdr + `{"id":1}` + "\n" + `{not json` + "\n"
	_, err := ReadJSONL(strings.NewReader(in))
	if err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("parse error should carry the line number, got %q", err)
	}
}

func TestSaveFileIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.jsonl")
	c := smallCorpus()
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != c.N() || got.M() != c.M() {
		t.Fatalf("round-trip shape %d/%d, want %d/%d", got.N(), got.M(), c.N(), c.M())
	}
	// No temp litter next to the destination.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("expected only the corpus file, found %d entries", len(entries))
	}
}

func FuzzReadJSONL(f *testing.F) {
	var buf bytes.Buffer
	if err := smallCorpus().WriteJSONL(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated mid-record
	f.Add([]byte(""))
	f.Add([]byte(testHdr))
	f.Add([]byte(testHdr + `{"id":1,"acquisitions":[{"category":"a","first":"2001-13"}]}`))
	f.Add([]byte(testHdr + `{"id":1,"acquisitions":[{"category":"a","first":"0001-05"}]}`))
	f.Add([]byte(testHdr + `{"id":1,"acquisitions":[{"category":"a","first":"2013-05xyz"}]}`))
	f.Add([]byte(testHdr + `{"id":2}` + "\n" + `{"id":2}`))
	f.Add([]byte(`{"format":"installbase-corpus/v1","categories":[]}` + "\n"))
	f.Add([]byte("{not json"))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadJSONL(bytes.NewReader(data))
		if err != nil && c != nil {
			t.Fatal("ReadJSONL returned both a corpus and an error")
		}
		if err == nil {
			// Accepted corpora must be internally consistent.
			seen := make(map[int]bool)
			for _, co := range c.Companies {
				if co.ID < 0 || seen[co.ID] {
					t.Fatalf("accepted corpus with bad/duplicate id %d", co.ID)
				}
				seen[co.ID] = true
				for _, a := range co.Acquisitions {
					if a.Category < 0 || a.Category >= c.M() {
						t.Fatalf("accepted acquisition with category %d outside [0,%d)", a.Category, c.M())
					}
				}
			}
		}
	})
}

func TestParseMonthStrict(t *testing.T) {
	good := map[string]Month{
		"1990-01": MonthOf(1990, 1),
		"2013-05": MonthOf(2013, 5),
		"1900-12": MonthOf(1900, 12),
		"2100-01": MonthOf(2100, 1),
	}
	for in, want := range good {
		got, err := ParseMonth(in)
		if err != nil || got != want {
			t.Errorf("ParseMonth(%q) = %v, %v; want %v, nil", in, got, err, want)
		}
	}
	bad := []string{
		"",
		"2013-5",     // month needs two digits
		"13-05",      // year needs four digits
		"2013-05xyz", // trailing garbage (Sscanf used to accept this)
		"2013-05 ",   // trailing space
		" 2013-05",   // leading space
		"2013_05",    // wrong separator
		"2013-13",    // month too large
		"2013-00",    // month zero
		"0001-05",    // implausible year (used to become a huge negative Month)
		"1899-12",    // below MinParseYear
		"2101-01",    // above MaxParseYear
		"-013-05",    // sign instead of digit
		"2013-0a",    // letter in month
		"20a3-05",    // letter in year
	}
	for _, in := range bad {
		if got, err := ParseMonth(in); err == nil {
			t.Errorf("ParseMonth(%q) = %v, accepted; want error", in, got)
		}
	}
}

func TestReadJSONLRejectsImplausibleYear(t *testing.T) {
	in := testHdr + `{"id":1,"acquisitions":[{"category":"a","first":"0001-05"}]}` + "\n"
	_, err := ReadJSONL(strings.NewReader(in))
	if err == nil {
		t.Fatal("year 0001 accepted")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("month error should carry the line number, got %q", err)
	}
}

func TestReadJSONLRejectsTrailingGarbageMonth(t *testing.T) {
	in := testHdr + `{"id":1,"acquisitions":[{"category":"a","first":"2013-05xyz"}]}` + "\n"
	_, err := ReadJSONL(strings.NewReader(in))
	if err == nil {
		t.Fatal("trailing garbage after YYYY-MM accepted")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("month error should carry the line number, got %q", err)
	}
}
