package corpus

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testHdr = `{"format":"installbase-corpus/v1","categories":["a","b"]}` + "\n"

func TestReadJSONLRejectsDuplicateIDs(t *testing.T) {
	in := testHdr +
		`{"id":7,"name":"x","acquisitions":[]}` + "\n" +
		`{"id":7,"name":"y","acquisitions":[]}` + "\n"
	_, err := ReadJSONL(strings.NewReader(in))
	if err == nil {
		t.Fatal("duplicate company id accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "line 3") || !strings.Contains(msg, "line 2") {
		t.Fatalf("duplicate error should name both lines, got %q", msg)
	}
}

func TestReadJSONLRejectsNegativeID(t *testing.T) {
	in := testHdr + `{"id":-4,"name":"x"}` + "\n"
	if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
		t.Fatal("negative company id accepted")
	}
}

func TestReadJSONLRejectsOutOfRangeMonth(t *testing.T) {
	in := testHdr + `{"id":1,"acquisitions":[{"category":"a","first":"2001-13"}]}` + "\n"
	if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
		t.Fatal("month 13 accepted")
	}
	in = testHdr + `{"id":1,"acquisitions":[{"category":"a","first":"2001-00"}]}` + "\n"
	if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
		t.Fatal("month 00 accepted")
	}
}

func TestReadJSONLParseErrorNamesLine(t *testing.T) {
	in := testHdr + `{"id":1}` + "\n" + `{not json` + "\n"
	_, err := ReadJSONL(strings.NewReader(in))
	if err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("parse error should carry the line number, got %q", err)
	}
}

func TestSaveFileIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.jsonl")
	c := smallCorpus()
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != c.N() || got.M() != c.M() {
		t.Fatalf("round-trip shape %d/%d, want %d/%d", got.N(), got.M(), c.N(), c.M())
	}
	// No temp litter next to the destination.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("expected only the corpus file, found %d entries", len(entries))
	}
}

func FuzzReadJSONL(f *testing.F) {
	var buf bytes.Buffer
	if err := smallCorpus().WriteJSONL(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated mid-record
	f.Add([]byte(""))
	f.Add([]byte(testHdr))
	f.Add([]byte(testHdr + `{"id":1,"acquisitions":[{"category":"a","first":"2001-13"}]}`))
	f.Add([]byte(testHdr + `{"id":2}` + "\n" + `{"id":2}`))
	f.Add([]byte(`{"format":"installbase-corpus/v1","categories":[]}` + "\n"))
	f.Add([]byte("{not json"))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadJSONL(bytes.NewReader(data))
		if err != nil && c != nil {
			t.Fatal("ReadJSONL returned both a corpus and an error")
		}
		if err == nil {
			// Accepted corpora must be internally consistent.
			seen := make(map[int]bool)
			for _, co := range c.Companies {
				if co.ID < 0 || seen[co.ID] {
					t.Fatalf("accepted corpus with bad/duplicate id %d", co.ID)
				}
				seen[co.ID] = true
				for _, a := range co.Acquisitions {
					if a.Category < 0 || a.Category >= c.M() {
						t.Fatalf("accepted acquisition with category %d outside [0,%d)", a.Category, c.M())
					}
				}
			}
		}
	})
}
