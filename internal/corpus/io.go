package corpus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/snapshot"
)

// jsonCompany is the JSONL wire format for one company.
type jsonCompany struct {
	ID           int               `json:"id"`
	Name         string            `json:"name"`
	DUNS         string            `json:"duns"`
	Country      string            `json:"country"`
	SIC2         int               `json:"sic2"`
	Employees    int               `json:"employees"`
	RevenueM     float64           `json:"revenue_m"`
	Acquisitions []jsonAcquisition `json:"acquisitions"`
}

type jsonAcquisition struct {
	Category string `json:"category"` // by name, so files are self-describing
	First    string `json:"first"`    // YYYY-MM
}

// jsonHeader is the first line of a corpus JSONL file.
type jsonHeader struct {
	Format     string   `json:"format"` // "installbase-corpus/v1"
	Categories []string `json:"categories"`
}

const formatID = "installbase-corpus/v1"

// WriteJSONL streams the corpus to w: a header line with the catalog,
// then one JSON object per company.
func (c *Corpus) WriteJSONL(w io.Writer) error {
	jw, err := NewJSONLWriter(w, c.Catalog)
	if err != nil {
		return err
	}
	for i := range c.Companies {
		if err := jw.Write(&c.Companies[i]); err != nil {
			return err
		}
	}
	return jw.Flush()
}

// ReadJSONL loads a corpus written by WriteJSONL. Unknown category names
// are an error; the catalog is reconstructed against the default catalog's
// metadata when names match, otherwise bare categories are created.
func ReadJSONL(r io.Reader) (*Corpus, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("corpus: reading header: %w", err)
		}
		return nil, fmt.Errorf("corpus: empty file")
	}
	var hdr jsonHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("corpus: parsing header: %w", err)
	}
	if hdr.Format != formatID {
		return nil, fmt.Errorf("corpus: unknown format %q", hdr.Format)
	}
	def := DefaultCatalog()
	cats := make([]Category, len(hdr.Categories))
	for i, name := range hdr.Categories {
		if id := def.IDByName(name); id >= 0 {
			cats[i] = def.Categories[id]
		} else {
			cats[i] = Category{Name: name}
		}
	}
	catalog := NewCatalog(cats)
	var companies []Company
	seen := make(map[int]int) // company ID -> line it first appeared on
	line := 1
	for sc.Scan() {
		line++
		var jc jsonCompany
		if err := json.Unmarshal(sc.Bytes(), &jc); err != nil {
			return nil, fmt.Errorf("corpus: line %d: %w", line, err)
		}
		if jc.ID < 0 {
			return nil, fmt.Errorf("corpus: line %d: negative company id %d", line, jc.ID)
		}
		if first, dup := seen[jc.ID]; dup {
			return nil, fmt.Errorf("corpus: line %d: duplicate company id %d (first seen on line %d)", line, jc.ID, first)
		}
		seen[jc.ID] = line
		co := Company{
			ID: jc.ID, Name: jc.Name, DUNS: jc.DUNS, Country: jc.Country,
			SIC2: jc.SIC2, Employees: jc.Employees, RevenueM: jc.RevenueM,
		}
		for _, a := range jc.Acquisitions {
			id := catalog.IDByName(a.Category)
			if id < 0 {
				return nil, fmt.Errorf("corpus: line %d: unknown category %q", line, a.Category)
			}
			m, err := ParseMonth(a.First)
			if err != nil {
				return nil, fmt.Errorf("corpus: line %d: %w", line, err)
			}
			co.Acquisitions = append(co.Acquisitions, Acquisition{Category: id, First: m})
		}
		co.SortAcquisitions()
		companies = append(companies, co)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("corpus: scanning: %w", err)
	}
	return &Corpus{Catalog: catalog, Companies: companies}, nil
}

// JSONLWriter streams companies to a JSONL corpus file without holding the
// corpus in memory (paired with datagen's streaming generation for the
// paper's 860k-company scale).
type JSONLWriter struct {
	catalog *Catalog
	bw      *bufio.Writer
	enc     *json.Encoder
}

// NewJSONLWriter writes the header and returns a streaming writer.
func NewJSONLWriter(w io.Writer, catalog *Catalog) (*JSONLWriter, error) {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	names := make([]string, catalog.Size())
	for i, cat := range catalog.Categories {
		names[i] = cat.Name
	}
	if err := enc.Encode(jsonHeader{Format: formatID, Categories: names}); err != nil {
		return nil, fmt.Errorf("corpus: writing header: %w", err)
	}
	return &JSONLWriter{catalog: catalog, bw: bw, enc: enc}, nil
}

// Write appends one company record.
func (w *JSONLWriter) Write(co *Company) error {
	jc := jsonCompany{
		ID: co.ID, Name: co.Name, DUNS: co.DUNS, Country: co.Country,
		SIC2: co.SIC2, Employees: co.Employees, RevenueM: co.RevenueM,
	}
	for _, a := range co.Acquisitions {
		jc.Acquisitions = append(jc.Acquisitions, jsonAcquisition{
			Category: w.catalog.Name(a.Category),
			First:    a.First.String(),
		})
	}
	if err := w.enc.Encode(jc); err != nil {
		return fmt.Errorf("corpus: writing company %d: %w", co.ID, err)
	}
	return nil
}

// Flush drains buffered output; call it once after the last Write.
func (w *JSONLWriter) Flush() error { return w.bw.Flush() }

// SaveFile writes the corpus as JSONL to path. The write is atomic: the
// data lands in a temp file that is fsynced and renamed over path, so a
// crash mid-write never leaves a truncated corpus at the destination.
func (c *Corpus) SaveFile(path string) error {
	return snapshot.Atomic(path, c.WriteJSONL)
}

// LoadFile reads a JSONL corpus from path.
func LoadFile(path string) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSONL(f)
}
