// Package corpus defines the data model for company IT install bases: the
// product-category catalog, companies with timestamped product acquisitions,
// and the corpus-level views the models consume (binary company-product
// matrix, TF-IDF weights, time-ordered product sequences, train/valid/test
// splits). It also implements the D-U-N-S site aggregation step the paper
// performs during data integration.
package corpus

import "fmt"

// Group classifies a product category as hardware or software, mirroring the
// paper's restriction to "hardware and low-level hardware management
// software" categories. The grouping is used by the data generator's topic
// priors and to sanity-check the t-SNE projections (hardware categories
// should co-locate, as in the paper's Figures 8-9).
type Group int

const (
	Hardware Group = iota
	Software
)

// String returns "hardware" or "software".
func (g Group) String() string {
	if g == Hardware {
		return "hardware"
	}
	return "software"
}

// Category describes one product category (the paper's vocabulary items).
type Category struct {
	ID     int    // dense index in [0, M)
	Name   string // short name as used in the paper's Figures 8-9
	Parent string // category parent, e.g. "Data Center Solution"
	Group  Group
}

// Catalog is the ordered set of product categories. The paper uses M = 38
// hardware and low-level-software categories out of HG Data's 91.
type Catalog struct {
	Categories []Category
	byName     map[string]int
}

// NewCatalog builds a catalog from a category list, indexing names.
func NewCatalog(cats []Category) *Catalog {
	c := &Catalog{Categories: cats, byName: make(map[string]int, len(cats))}
	for i := range c.Categories {
		c.Categories[i].ID = i
		c.byName[c.Categories[i].Name] = i
	}
	return c
}

// Size returns the number of categories M.
func (c *Catalog) Size() int { return len(c.Categories) }

// Name returns the name of category id.
func (c *Catalog) Name(id int) string { return c.Categories[id].Name }

// IDByName returns the category id for name, or -1 when unknown.
func (c *Catalog) IDByName(name string) int {
	if id, ok := c.byName[name]; ok {
		return id
	}
	return -1
}

// MustID returns the category id for name and panics when unknown.
func (c *Catalog) MustID(name string) int {
	id := c.IDByName(name)
	if id < 0 {
		panic(fmt.Sprintf("corpus: unknown category %q", name))
	}
	return id
}

// reindex rebuilds the name index after deserialization.
func (c *Catalog) reindex() {
	c.byName = make(map[string]int, len(c.Categories))
	for i := range c.Categories {
		c.Categories[i].ID = i
		c.byName[c.Categories[i].Name] = i
	}
}

// DefaultCatalog returns the 38 product categories used in the paper,
// with names taken verbatim from the paper's Figures 8-9 and category
// parents/groups assigned from HG Data's public taxonomy naming.
func DefaultCatalog() *Catalog {
	const (
		dcs = "Data Center Solution"
		hwb = "Hardware (Basic)"
		sw  = "Software (Infrastructure)"
		app = "Applications"
	)
	return NewCatalog([]Category{
		{Name: "asset_performance", Parent: app, Group: Software},
		{Name: "cloud_infrastructure", Parent: dcs, Group: Software},
		{Name: "collaboration", Parent: app, Group: Software},
		{Name: "commerce", Parent: app, Group: Software},
		{Name: "communication_tech", Parent: hwb, Group: Hardware},
		{Name: "electronics_PCs_SW", Parent: app, Group: Software},
		{Name: "contact_center", Parent: app, Group: Software},
		{Name: "data_archiving", Parent: dcs, Group: Software},
		{Name: "storage_HW", Parent: hwb, Group: Hardware},
		{Name: "DBMS", Parent: sw, Group: Software},
		{Name: "disaster_recovery", Parent: dcs, Group: Software},
		{Name: "document_management", Parent: app, Group: Software},
		{Name: "financial_apps", Parent: app, Group: Software},
		{Name: "HR_human_management", Parent: app, Group: Software},
		{Name: "HW_other", Parent: hwb, Group: Hardware},
		{Name: "hypervisor", Parent: sw, Group: Software},
		{Name: "IT_infrastructure", Parent: dcs, Group: Hardware},
		{Name: "mainframs", Parent: hwb, Group: Hardware},
		{Name: "media", Parent: app, Group: Software},
		{Name: "midrange", Parent: hwb, Group: Hardware},
		{Name: "mobile_tech", Parent: hwb, Group: Hardware},
		{Name: "network_HW", Parent: hwb, Group: Hardware},
		{Name: "network_SW", Parent: sw, Group: Software},
		{Name: "OS", Parent: sw, Group: Software},
		{Name: "platform_as_a_service", Parent: dcs, Group: Software},
		{Name: "printers", Parent: hwb, Group: Hardware},
		{Name: "product_lifecycle", Parent: app, Group: Software},
		{Name: "remote", Parent: sw, Group: Software},
		{Name: "retail", Parent: app, Group: Software},
		{Name: "search_engine", Parent: app, Group: Software},
		{Name: "security_management", Parent: sw, Group: Software},
		{Name: "server_HW", Parent: hwb, Group: Hardware},
		{Name: "server_SW", Parent: sw, Group: Software},
		{Name: "system_security_services", Parent: sw, Group: Software},
		{Name: "telephony", Parent: hwb, Group: Hardware},
		{Name: "virtualization_apps", Parent: sw, Group: Software},
		{Name: "virtualization_platform", Parent: sw, Group: Software},
		{Name: "virtualization_server", Parent: dcs, Group: Software},
	})
}

// SIC2Industries lists synthetic two-digit Standard Industrial
// Classification divisions. The paper's corpus spans 83 SIC2 industries;
// we enumerate the standard SIC major-group range 01-89 minus gaps,
// yielding 83 codes with representative labels for the common ones.
func SIC2Industries() []Industry {
	named := map[int]string{
		1:  "Agricultural Services",
		15: "Building Construction",
		20: "Food Products",
		28: "Chemicals",
		35: "Industrial Machinery",
		36: "Electronic Equipment",
		48: "Communications",
		49: "Utilities",
		52: "Retail - Building Materials",
		60: "Depository Institutions",
		63: "Insurance Carriers",
		73: "Business Services",
		80: "Health Services",
		82: "Educational Services",
	}
	var out []Industry
	for code := 1; code <= 89 && len(out) < 83; code++ {
		switch code { // gaps in the SIC major-group numbering
		case 3, 4, 5, 6, 11, 18:
			continue
		}
		name := named[code]
		if name == "" {
			name = fmt.Sprintf("SIC division %02d", code)
		}
		out = append(out, Industry{SIC2: code, Name: name})
	}
	return out
}

// Industry is a two-digit SIC industry division.
type Industry struct {
	SIC2 int
	Name string
}
