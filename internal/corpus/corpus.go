package corpus

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// Corpus is the model-facing dataset: a catalog plus aggregated companies.
type Corpus struct {
	Catalog   *Catalog
	Companies []Company
}

// New builds a corpus, sorting every company's acquisitions.
func New(catalog *Catalog, companies []Company) *Corpus {
	for i := range companies {
		companies[i].SortAcquisitions()
	}
	return &Corpus{Catalog: catalog, Companies: companies}
}

// N returns the number of companies.
func (c *Corpus) N() int { return len(c.Companies) }

// M returns the vocabulary size (number of product categories).
func (c *Corpus) M() int { return c.Catalog.Size() }

// Validate checks structural invariants: category ids in range, months in
// the observation period, no duplicate categories per company, sorted
// acquisitions. It returns the first violation found.
func (c *Corpus) Validate() error {
	m := c.M()
	for _, co := range c.Companies {
		seen := make(map[int]bool, len(co.Acquisitions))
		prev := Month(math.MinInt32)
		for _, a := range co.Acquisitions {
			if a.Category < 0 || a.Category >= m {
				return fmt.Errorf("corpus: company %d (%s) has category %d out of [0,%d)", co.ID, co.Name, a.Category, m)
			}
			if seen[a.Category] {
				return fmt.Errorf("corpus: company %d (%s) lists category %d twice", co.ID, co.Name, a.Category)
			}
			seen[a.Category] = true
			if a.First < prev {
				return fmt.Errorf("corpus: company %d (%s) acquisitions not sorted", co.ID, co.Name)
			}
			prev = a.First
		}
	}
	return nil
}

// BinaryMatrix returns the N×M binary company-product matrix A.
func (c *Corpus) BinaryMatrix() *mat.Matrix {
	out := mat.New(c.N(), c.M())
	for i := range c.Companies {
		row := out.Row(i)
		for _, a := range c.Companies[i].Acquisitions {
			row[a.Category] = 1
		}
	}
	return out
}

// DocumentFrequencies returns, for each category, the number of companies
// owning it.
func (c *Corpus) DocumentFrequencies() []int {
	df := make([]int, c.M())
	for i := range c.Companies {
		for _, a := range c.Companies[i].Acquisitions {
			df[a.Category]++
		}
	}
	return df
}

// IDF returns smoothed inverse document frequencies:
// idf(t) = ln((1+N)/(1+df(t))) + 1, the standard smooth variant that keeps
// weights positive even for categories owned by every company.
func (c *Corpus) IDF() []float64 {
	df := c.DocumentFrequencies()
	idf := make([]float64, len(df))
	n := float64(c.N())
	for t, d := range df {
		idf[t] = math.Log((1+n)/(1+float64(d))) + 1
	}
	return idf
}

// TFIDFMatrix returns the N×M TF-IDF matrix. Term frequency is binary
// (ownership), so each row is idf masked by ownership and L2-normalized —
// the "product frequency-inverse company frequency" the paper describes.
func (c *Corpus) TFIDFMatrix() *mat.Matrix {
	idf := c.IDF()
	out := mat.New(c.N(), c.M())
	for i := range c.Companies {
		row := out.Row(i)
		for _, a := range c.Companies[i].Acquisitions {
			row[a.Category] = idf[a.Category]
		}
		if n := mat.Norm2(row); n > 0 {
			mat.ScaleVec(1/n, row)
		}
	}
	return out
}

// Sequences returns every company's time-ordered category sequence A^S.
// Companies with empty install bases yield empty sequences.
func (c *Corpus) Sequences() [][]int {
	out := make([][]int, c.N())
	for i := range c.Companies {
		out[i] = c.Companies[i].Sequence()
	}
	return out
}

// Sets returns every company's category set A (unordered, as a sorted
// id slice — category ids ascending).
func (c *Corpus) Sets() [][]int {
	out := make([][]int, c.N())
	for i := range c.Companies {
		set := make([]int, 0, len(c.Companies[i].Acquisitions))
		for _, a := range c.Companies[i].Acquisitions {
			set = append(set, a.Category)
		}
		// Acquisitions are time-sorted; re-sort by category id.
		for j := 1; j < len(set); j++ {
			for k := j; k > 0 && set[k] < set[k-1]; k-- {
				set[k], set[k-1] = set[k-1], set[k]
			}
		}
		out[i] = set
	}
	return out
}

// TotalAcquisitions returns the total number of (company, category) pairs,
// i.e. the corpus token count n used in perplexity denominators.
func (c *Corpus) TotalAcquisitions() int {
	var n int
	for i := range c.Companies {
		n += len(c.Companies[i].Acquisitions)
	}
	return n
}

// Density returns the fraction of ones in the binary matrix. The paper's
// corpus is dense relative to typical recommender data, which is why BPMF
// degenerates on it.
func (c *Corpus) Density() float64 {
	if c.N() == 0 || c.M() == 0 {
		return 0
	}
	return float64(c.TotalAcquisitions()) / float64(c.N()*c.M())
}

// Subset returns a corpus view containing the companies at the given
// indices (companies are copied; the catalog is shared).
func (c *Corpus) Subset(idx []int) *Corpus {
	companies := make([]Company, len(idx))
	for i, j := range idx {
		companies[i] = c.Companies[j]
	}
	return &Corpus{Catalog: c.Catalog, Companies: companies}
}

// TruncateBefore returns a copy of the corpus in which every company keeps
// only acquisitions strictly before month m. Companies left empty are kept
// (their history is empty). Used to build training data for each sliding
// recommendation window.
func (c *Corpus) TruncateBefore(m Month) *Corpus {
	companies := make([]Company, len(c.Companies))
	for i, co := range c.Companies {
		cc := co
		cc.Acquisitions = nil
		for _, a := range co.Acquisitions {
			if a.First < m {
				cc.Acquisitions = append(cc.Acquisitions, a)
			}
		}
		companies[i] = cc
	}
	return &Corpus{Catalog: c.Catalog, Companies: companies}
}
