package corpus

import (
	"fmt"

	"repro/internal/rng"
)

// Split is a train/validation/test partition of a corpus. The paper uses
// 70% / 10% / 20%.
type Split struct {
	Train, Valid, Test *Corpus
}

// SplitFractions partitions the corpus by company with the given fractions
// (which must be positive and sum to 1 within 1e-9), shuffling with g for
// reproducibility.
func SplitFractions(c *Corpus, g *rng.RNG, train, valid, test float64) (Split, error) {
	if train <= 0 || valid < 0 || test <= 0 {
		return Split{}, fmt.Errorf("corpus: split fractions must be positive, got %v/%v/%v", train, valid, test)
	}
	if s := train + valid + test; s < 1-1e-9 || s > 1+1e-9 {
		return Split{}, fmt.Errorf("corpus: split fractions sum to %v, want 1", s)
	}
	n := c.N()
	perm := g.Perm(n)
	nTrain := int(train * float64(n))
	nValid := int(valid * float64(n))
	if nTrain == 0 || nTrain+nValid >= n {
		return Split{}, fmt.Errorf("corpus: split leaves an empty part (n=%d)", n)
	}
	return Split{
		Train: c.Subset(perm[:nTrain]),
		Valid: c.Subset(perm[nTrain : nTrain+nValid]),
		Test:  c.Subset(perm[nTrain+nValid:]),
	}, nil
}

// PaperSplit partitions 70/10/20 as in the paper's evaluation.
func PaperSplit(c *Corpus, g *rng.RNG) (Split, error) {
	return SplitFractions(c, g, 0.7, 0.1, 0.2)
}
