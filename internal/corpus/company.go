package corpus

import (
	"fmt"
	"sort"
)

// Month indexes calendar months as an integer offset from January 1990,
// the start of the paper's observation period. Month 0 = 1990-01.
type Month int

// EpochYear anchors Month 0.
const EpochYear = 1990

// MonthOf converts a calendar (year, month-in-1..12) pair to a Month.
func MonthOf(year, month int) Month {
	return Month((year-EpochYear)*12 + (month - 1))
}

// Plausible calendar bounds for parsed months. Years outside this range are
// data errors: a mistyped "0001-05" would otherwise silently become a large
// negative Month that breaks every window computation built on it.
const (
	MinParseYear = 1900
	MaxParseYear = 2100
)

// ParseMonth parses a strict "YYYY-MM" calendar month: exactly four year
// digits, a dash, exactly two month digits, and nothing else. The year must
// fall in [MinParseYear, MaxParseYear] and the month in 01..12. Unlike a
// Sscanf round trip it rejects trailing garbage ("2013-05xyz") and
// implausible years ("0001-05").
func ParseMonth(s string) (Month, error) {
	if len(s) != 7 || s[4] != '-' {
		return 0, fmt.Errorf("bad month %q: want YYYY-MM", s)
	}
	var y, mo int
	for i := 0; i < 4; i++ {
		d := s[i]
		if d < '0' || d > '9' {
			return 0, fmt.Errorf("bad month %q: want YYYY-MM", s)
		}
		y = y*10 + int(d-'0')
	}
	for i := 5; i < 7; i++ {
		d := s[i]
		if d < '0' || d > '9' {
			return 0, fmt.Errorf("bad month %q: want YYYY-MM", s)
		}
		mo = mo*10 + int(d-'0')
	}
	if y < MinParseYear || y > MaxParseYear {
		return 0, fmt.Errorf("month %q: year outside %d..%d", s, MinParseYear, MaxParseYear)
	}
	if mo < 1 || mo > 12 {
		return 0, fmt.Errorf("month %q outside 01..12", s)
	}
	return MonthOf(y, mo), nil
}

// Year returns the calendar year of m (floor division, so months before
// the 1990 epoch resolve to earlier years rather than wrapping).
func (m Month) Year() int {
	q := int(m) / 12
	if int(m)%12 < 0 {
		q--
	}
	return EpochYear + q
}

// Calendar returns (year, month-in-1..12).
func (m Month) Calendar() (int, int) {
	r := int(m) % 12
	if r < 0 {
		r += 12
	}
	return m.Year(), r + 1
}

// String formats m as YYYY-MM.
func (m Month) String() string {
	y, mo := m.Calendar()
	return fmt.Sprintf("%04d-%02d", y, mo)
}

// Paper-relevant time anchors: data spans 1990-01 .. 2016-01; the
// recommendation windows slide over 2013-01 .. 2016-01.
var (
	DataStart = MonthOf(1990, 1)
	DataEnd   = MonthOf(2016, 1)
)

// Acquisition records one product category entering a company's install
// base, with the month of its first confirmed appearance.
type Acquisition struct {
	Category int   // catalog index
	First    Month // month of first confirmed presence
}

// Company is an aggregated company: all sites in one country merged.
type Company struct {
	ID        int
	Name      string
	DUNS      string // domestic-ultimate D-U-N-S number
	Country   string
	SIC2      int // two-digit industry code
	Employees int
	RevenueM  float64 // annual revenue, millions USD

	// Acquisitions holds the install base sorted by (First, Category).
	Acquisitions []Acquisition
}

// SortAcquisitions orders the install base by first-seen month, breaking
// ties by category id so sequences are deterministic (the paper's A^S).
func (c *Company) SortAcquisitions() {
	sort.Slice(c.Acquisitions, func(i, j int) bool {
		a, b := c.Acquisitions[i], c.Acquisitions[j]
		if a.First != b.First {
			return a.First < b.First
		}
		return a.Category < b.Category
	})
}

// Owns reports whether the company owns category cat (at any time).
func (c *Company) Owns(cat int) bool {
	for _, a := range c.Acquisitions {
		if a.Category == cat {
			return true
		}
	}
	return false
}

// OwnedBefore returns the categories first seen strictly before month m,
// in acquisition order. Acquisitions must already be sorted.
func (c *Company) OwnedBefore(m Month) []int {
	var out []int
	for _, a := range c.Acquisitions {
		if a.First >= m {
			break
		}
		out = append(out, a.Category)
	}
	return out
}

// AcquiredIn returns the set of categories whose first appearance falls in
// [from, to). Acquisitions must already be sorted.
func (c *Company) AcquiredIn(from, to Month) []int {
	var out []int
	for _, a := range c.Acquisitions {
		if a.First >= to {
			break
		}
		if a.First >= from {
			out = append(out, a.Category)
		}
	}
	return out
}

// Sequence returns the time-ordered category sequence A^S_i.
// Acquisitions must already be sorted.
func (c *Company) Sequence() []int {
	out := make([]int, len(c.Acquisitions))
	for i, a := range c.Acquisitions {
		out[i] = a.Category
	}
	return out
}

// BinaryVector returns the M-dimensional 0/1 attribute vector A_i.
func (c *Company) BinaryVector(m int) []float64 {
	v := make([]float64, m)
	for _, a := range c.Acquisitions {
		v[a.Category] = 1
	}
	return v
}

// SiteRecord is one raw, pre-aggregation record: a single business location
// (identified by its own D-U-N-S number) and the products observed there.
// The paper aggregates sites to the domestic (per-country) company level.
type SiteRecord struct {
	SiteDUNS     string
	DomesticDUNS string // D-U-N-S of the domestic ultimate
	CompanyName  string
	Country      string
	SIC2         int
	Employees    int
	RevenueM     float64
	Acquisitions []Acquisition
}

// AggregateDomestic merges site records into companies keyed by
// (DomesticDUNS, Country), exactly as the paper aggregates: product sets
// are unioned, keeping the earliest first-seen month per category;
// employees and revenue are summed across sites. Companies are returned
// sorted by DUNS for determinism, with dense IDs assigned.
func AggregateDomestic(sites []SiteRecord) []Company {
	type key struct {
		duns, country string
	}
	agg := make(map[key]*Company)
	first := make(map[key]map[int]Month)
	for _, s := range sites {
		k := key{s.DomesticDUNS, s.Country}
		c, ok := agg[k]
		if !ok {
			c = &Company{
				Name:    s.CompanyName,
				DUNS:    s.DomesticDUNS,
				Country: s.Country,
				SIC2:    s.SIC2,
			}
			agg[k] = c
			first[k] = make(map[int]Month)
		}
		c.Employees += s.Employees
		c.RevenueM += s.RevenueM
		fm := first[k]
		for _, a := range s.Acquisitions {
			if old, seen := fm[a.Category]; !seen || a.First < old {
				fm[a.Category] = a.First
			}
		}
	}
	keys := make([]key, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].duns != keys[j].duns {
			return keys[i].duns < keys[j].duns
		}
		return keys[i].country < keys[j].country
	})
	out := make([]Company, 0, len(keys))
	for id, k := range keys {
		c := agg[k]
		c.ID = id
		for cat, m := range first[k] {
			c.Acquisitions = append(c.Acquisitions, Acquisition{Category: cat, First: m})
		}
		c.SortAcquisitions()
		out = append(out, *c)
	}
	return out
}
