package corpus

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestDefaultCatalog(t *testing.T) {
	c := DefaultCatalog()
	if c.Size() != 38 {
		t.Fatalf("catalog size = %d, want 38 (the paper's M)", c.Size())
	}
	seen := make(map[string]bool)
	for _, cat := range c.Categories {
		if seen[cat.Name] {
			t.Fatalf("duplicate category %q", cat.Name)
		}
		seen[cat.Name] = true
	}
	if c.MustID("server_HW") != c.IDByName("server_HW") {
		t.Fatal("MustID and IDByName disagree")
	}
	if c.IDByName("nonexistent") != -1 {
		t.Fatal("unknown category should be -1")
	}
	nHW := 0
	for _, cat := range c.Categories {
		if cat.Group == Hardware {
			nHW++
		}
	}
	if nHW < 5 || nHW > 20 {
		t.Fatalf("unreasonable hardware split: %d", nHW)
	}
}

func TestMustIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DefaultCatalog().MustID("bogus")
}

func TestSIC2Industries(t *testing.T) {
	inds := SIC2Industries()
	if len(inds) != 83 {
		t.Fatalf("industries = %d, want 83 (paper)", len(inds))
	}
	seen := make(map[int]bool)
	for _, ind := range inds {
		if seen[ind.SIC2] {
			t.Fatalf("duplicate SIC2 %d", ind.SIC2)
		}
		seen[ind.SIC2] = true
		if ind.Name == "" {
			t.Fatalf("empty industry name for %d", ind.SIC2)
		}
	}
}

func TestMonthArithmetic(t *testing.T) {
	m := MonthOf(2013, 1)
	if m.String() != "2013-01" {
		t.Fatalf("String = %q", m.String())
	}
	y, mo := (m + 13).Calendar()
	if y != 2014 || mo != 2 {
		t.Fatalf("month+13 = %d-%d", y, mo)
	}
	if MonthOf(1990, 1) != 0 {
		t.Fatal("epoch must be 0")
	}
	if DataEnd-DataStart != 26*12 {
		t.Fatalf("observation span = %d months", DataEnd-DataStart)
	}
}

func TestMonthRoundTripProperty(t *testing.T) {
	f := func(raw int64) bool {
		v := int(raw % 1000) // includes negative (pre-epoch) months
		m := Month(v)
		y, mo := m.Calendar()
		if mo < 1 || mo > 12 {
			return false
		}
		return MonthOf(y, mo) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	// explicit pre-epoch case
	m := MonthOf(1989, 12)
	if m != -1 || m.String() != "1989-12" {
		t.Fatalf("1989-12 => %d %q", m, m.String())
	}
}

func testCompany() Company {
	return Company{
		ID: 0, Name: "ACME", DUNS: "123456789", Country: "US", SIC2: 80,
		Acquisitions: []Acquisition{
			{Category: 5, First: MonthOf(2001, 3)},
			{Category: 2, First: MonthOf(1995, 6)},
			{Category: 9, First: MonthOf(2010, 1)},
			{Category: 1, First: MonthOf(1995, 6)}, // tie with cat 2
		},
	}
}

func TestSortAndSequence(t *testing.T) {
	c := testCompany()
	c.SortAcquisitions()
	want := []int{1, 2, 5, 9} // ties broken by category id
	got := c.Sequence()
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("Sequence = %v, want %v", got, want)
		}
	}
}

func TestOwnedBeforeAcquiredIn(t *testing.T) {
	c := testCompany()
	c.SortAcquisitions()
	if got := c.OwnedBefore(MonthOf(2000, 1)); len(got) != 2 {
		t.Fatalf("OwnedBefore 2000 = %v", got)
	}
	got := c.AcquiredIn(MonthOf(2001, 1), MonthOf(2011, 1))
	if len(got) != 2 || got[0] != 5 || got[1] != 9 {
		t.Fatalf("AcquiredIn = %v", got)
	}
	if !c.Owns(9) || c.Owns(3) {
		t.Fatal("Owns wrong")
	}
}

func TestBinaryVector(t *testing.T) {
	c := testCompany()
	v := c.BinaryVector(12)
	var ones int
	for _, x := range v {
		if x == 1 {
			ones++
		} else if x != 0 {
			t.Fatalf("non-binary value %v", x)
		}
	}
	if ones != 4 {
		t.Fatalf("ones = %d", ones)
	}
}

func TestAggregateDomestic(t *testing.T) {
	sites := []SiteRecord{
		{SiteDUNS: "1", DomesticDUNS: "A", CompanyName: "Acme", Country: "US", SIC2: 80, Employees: 100, RevenueM: 10,
			Acquisitions: []Acquisition{{Category: 1, First: MonthOf(2000, 1)}, {Category: 2, First: MonthOf(2005, 1)}}},
		{SiteDUNS: "2", DomesticDUNS: "A", CompanyName: "Acme", Country: "US", SIC2: 80, Employees: 50, RevenueM: 5,
			Acquisitions: []Acquisition{{Category: 1, First: MonthOf(1998, 1)}, {Category: 3, First: MonthOf(2010, 1)}}},
		{SiteDUNS: "3", DomesticDUNS: "A", CompanyName: "Acme GmbH", Country: "DE", SIC2: 80, Employees: 30, RevenueM: 3,
			Acquisitions: []Acquisition{{Category: 4, First: MonthOf(2012, 1)}}},
	}
	companies := AggregateDomestic(sites)
	if len(companies) != 2 {
		t.Fatalf("companies = %d, want 2 (US and DE)", len(companies))
	}
	var us *Company
	for i := range companies {
		if companies[i].Country == "US" {
			us = &companies[i]
		}
	}
	if us == nil {
		t.Fatal("missing US company")
	}
	if us.Employees != 150 || us.RevenueM != 15 {
		t.Fatalf("US aggregation: %+v", us)
	}
	if len(us.Acquisitions) != 3 {
		t.Fatalf("US acquisitions = %v", us.Acquisitions)
	}
	// category 1 must keep the earliest first-seen (1998)
	for _, a := range us.Acquisitions {
		if a.Category == 1 && a.First != MonthOf(1998, 1) {
			t.Fatalf("earliest-first not kept: %v", a)
		}
	}
	// IDs dense and sorted deterministically
	if companies[0].ID != 0 || companies[1].ID != 1 {
		t.Fatalf("IDs not dense: %v %v", companies[0].ID, companies[1].ID)
	}
}

func smallCorpus() *Corpus {
	cat := DefaultCatalog()
	companies := []Company{
		{ID: 0, Name: "A", Acquisitions: []Acquisition{
			{Category: 0, First: MonthOf(2000, 1)}, {Category: 1, First: MonthOf(2001, 1)}}},
		{ID: 1, Name: "B", Acquisitions: []Acquisition{
			{Category: 1, First: MonthOf(2002, 1)}, {Category: 2, First: MonthOf(2003, 1)}, {Category: 3, First: MonthOf(2004, 1)}}},
		{ID: 2, Name: "C", Acquisitions: []Acquisition{
			{Category: 1, First: MonthOf(1999, 1)}}},
		{ID: 3, Name: "D"}, // empty install base
	}
	return New(cat, companies)
}

func TestCorpusBasics(t *testing.T) {
	c := smallCorpus()
	if c.N() != 4 || c.M() != 38 {
		t.Fatalf("N=%d M=%d", c.N(), c.M())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.TotalAcquisitions() != 6 {
		t.Fatalf("total = %d", c.TotalAcquisitions())
	}
	wantDensity := 6.0 / (4 * 38)
	if math.Abs(c.Density()-wantDensity) > 1e-12 {
		t.Fatalf("density = %v", c.Density())
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cat := DefaultCatalog()
	bad := &Corpus{Catalog: cat, Companies: []Company{{
		Acquisitions: []Acquisition{{Category: 99, First: 0}},
	}}}
	if bad.Validate() == nil {
		t.Fatal("out-of-range category not caught")
	}
	dup := &Corpus{Catalog: cat, Companies: []Company{{
		Acquisitions: []Acquisition{{Category: 1, First: 0}, {Category: 1, First: 5}},
	}}}
	if dup.Validate() == nil {
		t.Fatal("duplicate category not caught")
	}
	unsorted := &Corpus{Catalog: cat, Companies: []Company{{
		Acquisitions: []Acquisition{{Category: 1, First: 9}, {Category: 2, First: 5}},
	}}}
	if unsorted.Validate() == nil {
		t.Fatal("unsorted acquisitions not caught")
	}
}

func TestBinaryMatrix(t *testing.T) {
	c := smallCorpus()
	b := c.BinaryMatrix()
	if b.Rows != 4 || b.Cols != 38 {
		t.Fatalf("shape %dx%d", b.Rows, b.Cols)
	}
	if b.At(0, 0) != 1 || b.At(0, 1) != 1 || b.At(0, 2) != 0 {
		t.Fatal("row 0 wrong")
	}
	var sum float64
	for _, v := range b.Data {
		sum += v
	}
	if sum != 6 {
		t.Fatalf("matrix sum = %v", sum)
	}
}

func TestDocumentFrequenciesAndIDF(t *testing.T) {
	c := smallCorpus()
	df := c.DocumentFrequencies()
	if df[1] != 3 || df[0] != 1 || df[37] != 0 {
		t.Fatalf("df = %v", df[:4])
	}
	idf := c.IDF()
	// more common -> smaller idf
	if idf[1] >= idf[0] {
		t.Fatalf("idf ordering broken: idf[1]=%v idf[0]=%v", idf[1], idf[0])
	}
	for _, v := range idf {
		if v <= 0 {
			t.Fatalf("idf must stay positive, got %v", v)
		}
	}
}

func TestTFIDFMatrixRowsNormalized(t *testing.T) {
	c := smallCorpus()
	m := c.TFIDFMatrix()
	for i := 0; i < 3; i++ { // first three have products
		if n := mat2Norm(m.Row(i)); math.Abs(n-1) > 1e-9 {
			t.Fatalf("row %d norm = %v", i, n)
		}
	}
	if n := mat2Norm(m.Row(3)); n != 0 {
		t.Fatalf("empty company row norm = %v", n)
	}
}

func mat2Norm(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

func TestSequencesAndSets(t *testing.T) {
	c := smallCorpus()
	seqs := c.Sequences()
	if len(seqs[1]) != 3 || seqs[1][0] != 1 || seqs[1][2] != 3 {
		t.Fatalf("seq = %v", seqs[1])
	}
	sets := c.Sets()
	for _, s := range sets {
		for i := 1; i < len(s); i++ {
			if s[i] <= s[i-1] {
				t.Fatalf("set not strictly sorted: %v", s)
			}
		}
	}
	if len(seqs[3]) != 0 {
		t.Fatal("empty company should yield empty sequence")
	}
}

func TestTruncateBefore(t *testing.T) {
	c := smallCorpus()
	tr := c.TruncateBefore(MonthOf(2002, 1))
	if tr.N() != c.N() {
		t.Fatal("truncation should keep all companies")
	}
	if got := len(tr.Companies[1].Acquisitions); got != 0 {
		t.Fatalf("company B truncated acquisitions = %d, want 0", got)
	}
	if got := len(tr.Companies[0].Acquisitions); got != 2 {
		t.Fatalf("company A truncated acquisitions = %d, want 2", got)
	}
	// original untouched
	if len(c.Companies[1].Acquisitions) != 3 {
		t.Fatal("TruncateBefore mutated the original")
	}
}

func TestSubset(t *testing.T) {
	c := smallCorpus()
	s := c.Subset([]int{2, 0})
	if s.N() != 2 || s.Companies[0].Name != "C" || s.Companies[1].Name != "A" {
		t.Fatalf("subset wrong: %+v", s.Companies)
	}
}

func TestSplitFractions(t *testing.T) {
	cat := DefaultCatalog()
	companies := make([]Company, 100)
	for i := range companies {
		companies[i] = Company{ID: i, Acquisitions: []Acquisition{{Category: i % 38, First: 0}}}
	}
	c := New(cat, companies)
	sp, err := PaperSplit(c, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Train.N() != 70 || sp.Valid.N() != 10 || sp.Test.N() != 20 {
		t.Fatalf("split sizes %d/%d/%d", sp.Train.N(), sp.Valid.N(), sp.Test.N())
	}
	// no company appears twice
	seen := make(map[int]bool)
	for _, part := range []*Corpus{sp.Train, sp.Valid, sp.Test} {
		for i := range part.Companies {
			id := part.Companies[i].ID
			if seen[id] {
				t.Fatalf("company %d in two parts", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != 100 {
		t.Fatalf("split lost companies: %d", len(seen))
	}
	// determinism
	sp2, _ := PaperSplit(c, rng.New(1))
	if sp2.Train.Companies[0].ID != sp.Train.Companies[0].ID {
		t.Fatal("split not deterministic")
	}
}

func TestSplitErrors(t *testing.T) {
	c := smallCorpus()
	if _, err := SplitFractions(c, rng.New(1), 0.5, 0.2, 0.2); err == nil {
		t.Fatal("non-unit fractions should error")
	}
	if _, err := SplitFractions(c, rng.New(1), -0.1, 0.5, 0.6); err == nil {
		t.Fatal("negative fraction should error")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	c := smallCorpus()
	c.Companies[0].DUNS = "987654321"
	c.Companies[0].Country = "CH"
	c.Companies[0].SIC2 = 73
	c.Companies[0].Employees = 1234
	c.Companies[0].RevenueM = 56.7
	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != c.N() || got.M() != c.M() {
		t.Fatalf("round-trip shape %d/%d", got.N(), got.M())
	}
	a, b := c.Companies[0], got.Companies[0]
	if a.DUNS != b.DUNS || a.Country != b.Country || a.SIC2 != b.SIC2 ||
		a.Employees != b.Employees || a.RevenueM != b.RevenueM {
		t.Fatalf("metadata mismatch: %+v vs %+v", a, b)
	}
	if len(a.Acquisitions) != len(b.Acquisitions) {
		t.Fatal("acquisitions count mismatch")
	}
	for i := range a.Acquisitions {
		if a.Acquisitions[i] != b.Acquisitions[i] {
			t.Fatalf("acquisition %d mismatch: %v vs %v", i, a.Acquisitions[i], b.Acquisitions[i])
		}
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(bytes.NewBufferString("")); err == nil {
		t.Fatal("empty input should error")
	}
	if _, err := ReadJSONL(bytes.NewBufferString(`{"format":"wrong"}`)); err == nil {
		t.Fatal("wrong format should error")
	}
	hdr := `{"format":"installbase-corpus/v1","categories":["a","b"]}` + "\n"
	if _, err := ReadJSONL(bytes.NewBufferString(hdr + `{"acquisitions":[{"category":"zzz","first":"2000-01"}]}`)); err == nil {
		t.Fatal("unknown category should error")
	}
	if _, err := ReadJSONL(bytes.NewBufferString(hdr + `{"acquisitions":[{"category":"a","first":"garbage"}]}`)); err == nil {
		t.Fatal("bad month should error")
	}
}

func TestJSONLWriterStreaming(t *testing.T) {
	c := smallCorpus()
	var streamed bytes.Buffer
	jw, err := NewJSONLWriter(&streamed, c.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Companies {
		if err := jw.Write(&c.Companies[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	var batch bytes.Buffer
	if err := c.WriteJSONL(&batch); err != nil {
		t.Fatal(err)
	}
	if streamed.String() != batch.String() {
		t.Fatal("streaming writer output differs from batch writer")
	}
	got, err := ReadJSONL(&streamed)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != c.N() || got.TotalAcquisitions() != c.TotalAcquisitions() {
		t.Fatal("streamed corpus does not round-trip")
	}
}
