// Package recommend implements the paper's recommendation-evaluation
// methodology (Section 4.3): a window W_r of r months slides over the
// corpus timeline with a two-month granularity; for each window a model is
// trained on everything before the window start and asked, per company, for
// the probability of each not-yet-owned product appearing in the window.
// Products whose probability exceeds a threshold phi are recommended.
// Precision/recall/F1 are aggregated per window, and the paper's plots
// (Figures 3, 4 and 6) are per-threshold means with 95% confidence
// intervals across the windows.
package recommend

import (
	"context"
	"fmt"
	"math"

	"repro/internal/corpus"
	"repro/internal/par"
	"repro/internal/stats"
)

// Recommender scores the next products of one company. Implementations
// adapt the generative models (LDA, LSTM, n-gram, CHH, BPMF) to a common
// shape.
type Recommender interface {
	// Name identifies the model in reports.
	Name() string
	// Scores returns, for every category, the model's probability that the
	// company acquires it next / within the window, given the time-ordered
	// acquisition history. The harness masks out already-owned categories.
	Scores(history []int) []float64
}

// TrainFunc builds a recommender from the training corpus visible before a
// window starts. It is called once per window; implementations that train
// expensive models may cache across calls.
type TrainFunc func(train *corpus.Corpus, windowStart corpus.Month) (Recommender, error)

// WindowSpec describes the sliding evaluation windows.
type WindowSpec struct {
	Start  corpus.Month // first window start
	Length int          // window length r in months
	Slide  int          // slide granularity in months
	Count  int          // number of windows l
}

// PaperWindows returns the paper's deployment: 13 windows of 12 months
// sliding by 2 months, the first covering 2013-01..2014-01 and the last
// 2015-01..2016-01.
func PaperWindows() WindowSpec {
	return WindowSpec{Start: corpus.MonthOf(2013, 1), Length: 12, Slide: 2, Count: 13}
}

func (w WindowSpec) validate() error {
	if w.Length < 1 || w.Slide < 1 || w.Count < 1 {
		return fmt.Errorf("recommend: invalid window spec %+v", w)
	}
	return nil
}

// SweepResult holds the per-threshold accuracy series of one model: the
// paper's Figures 3-4 data. Slice index corresponds to Phi index.
type SweepResult struct {
	Model string
	Phi   []float64

	Precision []stats.CI // per-window means; NaN when no window retrieved anything
	Recall    []stats.CI
	F1        []stats.CI

	// Mean per-window retrieval totals (the paper's Figure 4 series).
	Retrieved          []stats.CI
	CorrectlyRetrieved []stats.CI
	Relevant           stats.CI // threshold-independent ground-truth size
}

// RowRecommender scores products for a specific company row, for models
// whose predictions are positional rather than history-based (BPMF).
type RowRecommender interface {
	Name() string
	// ScoresFor returns per-category scores for the company at index row of
	// the corpus being evaluated, given its pre-window history.
	ScoresFor(row int, history []int) []float64
}

// RowTrainFunc builds a RowRecommender per window.
type RowTrainFunc func(train *corpus.Corpus, windowStart corpus.Month) (RowRecommender, error)

// ConcurrencySafe is an opt-in marker for recommenders whose scoring calls
// may run concurrently from multiple goroutines. Models that draw from a
// shared RNG during scoring (LDA's theta inference) must NOT opt in: beyond
// the data race, concurrent draws would consume the stream in scheduling
// order and break determinism. Read-only scorers (LSTM, n-gram, CHH, BPMF
// rows, uniform) opt in via Static.Concurrent.
type ConcurrencySafe interface {
	ConcurrencySafe() bool
}

// rowAdapter lifts a plain Recommender to the row-aware interface.
type rowAdapter struct{ r Recommender }

func (a rowAdapter) Name() string { return a.r.Name() }
func (a rowAdapter) ScoresFor(_ int, history []int) []float64 {
	return a.r.Scores(history)
}

// ConcurrencySafe forwards the underlying recommender's marker.
func (a rowAdapter) ConcurrencySafe() bool {
	if cs, ok := a.r.(ConcurrencySafe); ok {
		return cs.ConcurrencySafe()
	}
	return false
}

// EvaluateSweep runs the sliding-window evaluation of one model over a
// threshold grid. The corpus must carry full (untruncated) histories.
func EvaluateSweep(c *corpus.Corpus, spec WindowSpec, phis []float64, train TrainFunc) (*SweepResult, error) {
	return EvaluateSweepRows(c, spec, phis, func(tc *corpus.Corpus, start corpus.Month) (RowRecommender, error) {
		r, err := train(tc, start)
		if err != nil {
			return nil, err
		}
		return rowAdapter{r}, nil
	})
}

// EvaluateSweepRows is EvaluateSweep for row-aware models.
func EvaluateSweepRows(c *corpus.Corpus, spec WindowSpec, phis []float64, train RowTrainFunc) (*SweepResult, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if len(phis) == 0 {
		return nil, fmt.Errorf("recommend: empty threshold grid")
	}
	nPhi := len(phis)
	// per-window accumulators, per phi
	precision := make([][]float64, nPhi)
	recall := make([][]float64, nPhi)
	f1 := make([][]float64, nPhi)
	retrieved := make([][]float64, nPhi)
	correct := make([][]float64, nPhi)
	var relevantSeries []float64
	var modelName string

	for w := 0; w < spec.Count; w++ {
		start := spec.Start + corpus.Month(w*spec.Slide)
		end := start + corpus.Month(spec.Length)
		trainCorpus := c.TruncateBefore(start)
		rec, err := train(trainCorpus, start)
		if err != nil {
			return nil, fmt.Errorf("recommend: training for window %v: %w", start, err)
		}
		modelName = rec.Name()

		// Per-phi counters for this window. The per-company scan only
		// accumulates integers, so per-shard partial counters merge exactly
		// in any order — sharded execution is bit-identical to sequential.
		type windowAcc struct {
			ret, cor []int
			rel      int
		}
		scan := func(lo, hi int) (windowAcc, error) {
			acc := windowAcc{ret: make([]int, nPhi), cor: make([]int, nPhi)}
			for i := lo; i < hi; i++ {
				co := &c.Companies[i]
				truth := co.AcquiredIn(start, end)
				history := co.OwnedBefore(start)
				acc.rel += len(truth)
				if len(truth) == 0 && len(history) == 0 {
					continue
				}
				scores := rec.ScoresFor(i, history)
				if len(scores) != c.M() {
					return acc, fmt.Errorf("recommend: model %s returned %d scores, want %d", rec.Name(), len(scores), c.M())
				}
				owned := make(map[int]bool, len(history))
				for _, a := range history {
					owned[a] = true
				}
				truthSet := make(map[int]bool, len(truth))
				for _, a := range truth {
					truthSet[a] = true
				}
				for pi, phi := range phis {
					for cat, s := range scores {
						if owned[cat] || s < phi {
							continue
						}
						acc.ret[pi]++
						if truthSet[cat] {
							acc.cor[pi]++
						}
					}
				}
			}
			return acc, nil
		}
		var accs []windowAcc
		if cs, ok := rec.(ConcurrencySafe); ok && cs.ConcurrencySafe() {
			out := make([]windowAcc, par.NumShards(len(c.Companies)))
			err := par.ForEachShard(context.Background(), len(c.Companies), func(s, lo, hi int) error {
				a, err := scan(lo, hi)
				if err != nil {
					return err
				}
				out[s] = a
				return nil
			})
			if err != nil {
				return nil, err
			}
			accs = out
		} else {
			a, err := scan(0, len(c.Companies))
			if err != nil {
				return nil, err
			}
			accs = []windowAcc{a}
		}
		ret := make([]int, nPhi)
		cor := make([]int, nPhi)
		rel := 0
		for _, a := range accs {
			rel += a.rel
			for pi := range phis {
				ret[pi] += a.ret[pi]
				cor[pi] += a.cor[pi]
			}
		}
		relevantSeries = append(relevantSeries, float64(rel))
		for pi := range phis {
			prf := stats.ComputePRF(ret[pi], cor[pi], rel)
			if !math.IsNaN(prf.Precision) {
				precision[pi] = append(precision[pi], prf.Precision)
			}
			// Windows with no relevant acquisitions carry no ground truth:
			// their recall is 0 by convention, not by model failure, and
			// including them drags the per-threshold recall/F1 means toward
			// zero. Skip them, mirroring the NaN-precision skip above.
			if rel > 0 {
				recall[pi] = append(recall[pi], prf.Recall)
				if !math.IsNaN(prf.Precision) {
					f1[pi] = append(f1[pi], prf.F1)
				}
			}
			retrieved[pi] = append(retrieved[pi], float64(ret[pi]))
			correct[pi] = append(correct[pi], float64(cor[pi]))
		}
	}

	res := &SweepResult{Model: modelName, Phi: phis, Relevant: stats.MeanCI(relevantSeries)}
	nanCI := stats.CI{Mean: math.NaN(), Lo: math.NaN(), Hi: math.NaN()}
	for pi := range phis {
		if len(precision[pi]) > 0 {
			res.Precision = append(res.Precision, stats.MeanCI(precision[pi]))
		} else {
			res.Precision = append(res.Precision, nanCI)
		}
		if len(f1[pi]) > 0 {
			res.F1 = append(res.F1, stats.MeanCI(f1[pi]))
		} else {
			res.F1 = append(res.F1, nanCI)
		}
		if len(recall[pi]) > 0 {
			res.Recall = append(res.Recall, stats.MeanCI(recall[pi]))
		} else {
			res.Recall = append(res.Recall, nanCI)
		}
		res.Retrieved = append(res.Retrieved, stats.MeanCI(retrieved[pi]))
		res.CorrectlyRetrieved = append(res.CorrectlyRetrieved, stats.MeanCI(correct[pi]))
	}
	return res, nil
}

// Static wraps a fixed scoring function as a Recommender. Concurrent marks
// Fn as safe to call from multiple goroutines (no shared mutable state, no
// RNG draws); the evaluation harness then shards the per-company scoring
// loop across workers.
type Static struct {
	Label      string
	Fn         func(history []int) []float64
	Concurrent bool
}

// Name implements Recommender.
func (s *Static) Name() string { return s.Label }

// Scores implements Recommender.
func (s *Static) Scores(history []int) []float64 { return s.Fn(history) }

// ConcurrencySafe implements the opt-in concurrency marker.
func (s *Static) ConcurrencySafe() bool { return s.Concurrent }

// Uniform returns the paper's random baseline: every category scored
// 1/v (≈ 0.026 for v = 38), so it retrieves everything for phi <= 1/v and
// nothing above.
func Uniform(v int) Recommender {
	return &Static{
		Label:      "random",
		Concurrent: true,
		Fn: func([]int) []float64 {
			out := make([]float64, v)
			for i := range out {
				out[i] = 1 / float64(v)
			}
			return out
		},
	}
}

// DefaultPhiGrid returns the paper's threshold grid for Figures 3-4:
// 0.00, 0.05, ..., up to maxPhi inclusive.
func DefaultPhiGrid(maxPhi float64) []float64 {
	var out []float64
	for phi := 0.0; phi <= maxPhi+1e-9; phi += 0.05 {
		out = append(out, math.Round(phi*100)/100)
	}
	return out
}
