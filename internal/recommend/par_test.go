package recommend

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"

	"repro/internal/corpus"
	"repro/internal/par"
)

// TestEmptyWindowDoesNotDragRecall is the regression test for the
// recall-aggregation bug: a window with zero relevant acquisitions used to
// contribute recall 0 to the per-threshold mean, dragging it below its true
// value. With the fix, zero-ground-truth windows are excluded from the
// recall/F1 aggregation (mirroring the NaN-precision skip).
func TestEmptyWindowDoesNotDragRecall(t *testing.T) {
	// Every company acquires category 0 before the windows, category 1 in
	// window 0 and category 2 in window 2. Window 1 (2001) is empty: no
	// company acquires anything, so relevant == 0 there.
	cat := corpus.DefaultCatalog()
	companies := make([]corpus.Company, 10)
	for i := range companies {
		companies[i] = corpus.Company{ID: i, Acquisitions: []corpus.Acquisition{
			{Category: 0, First: corpus.MonthOf(1999, 1)},
			{Category: 1, First: corpus.MonthOf(2000, 6)},
			{Category: 2, First: corpus.MonthOf(2002, 6)},
		}}
	}
	c := corpus.New(cat, companies)
	spec := WindowSpec{Start: corpus.MonthOf(2000, 1), Length: 12, Slide: 12, Count: 3}
	// The recommender always predicts exactly the next category in the
	// chain, so every non-empty window has recall 1.
	train := func(tc *corpus.Corpus, _ corpus.Month) (Recommender, error) {
		return &oracleRecommender{v: tc.M()}, nil
	}
	res, err := EvaluateSweep(c, spec, []float64{0.5}, train)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Relevant.Mean; math.Abs(got-20.0/3) > 1e-9 {
		t.Fatalf("mean relevant %v, want 20/3 (one window must be empty)", got)
	}
	// Before the fix the empty window contributed recall 0 and the mean was
	// 2/3; it must now be exactly 1.
	if got := res.Recall[0].Mean; got != 1 {
		t.Fatalf("recall mean %v, want 1 (empty window leaked into aggregation)", got)
	}
	if got := res.F1[0].Mean; got != 1 {
		t.Fatalf("F1 mean %v, want 1", got)
	}
}

// TestAllWindowsEmptyYieldsNaNRecall covers the degenerate corner: when no
// window carries ground truth the recall series is NaN, not 0.
func TestAllWindowsEmptyYieldsNaNRecall(t *testing.T) {
	cat := corpus.DefaultCatalog()
	companies := []corpus.Company{
		{ID: 0, Acquisitions: []corpus.Acquisition{{Category: 0, First: corpus.MonthOf(1999, 1)}}},
	}
	c := corpus.New(cat, companies)
	spec := WindowSpec{Start: corpus.MonthOf(2000, 1), Length: 12, Slide: 12, Count: 2}
	res, err := EvaluateSweep(c, spec, []float64{0.5}, func(tc *corpus.Corpus, _ corpus.Month) (Recommender, error) {
		return &oracleRecommender{v: tc.M()}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(res.Recall[0].Mean) {
		t.Fatalf("recall over zero ground-truth windows = %v, want NaN", res.Recall[0].Mean)
	}
}

// TestEvaluateSweepRowsWorkersGobIdentical proves the sharded per-company
// scoring loop returns gob-byte-identical sweeps at workers=1 and workers=4
// for a concurrency-safe recommender.
func TestEvaluateSweepRowsWorkersGobIdentical(t *testing.T) {
	c := oracleCorpus(60)
	spec := PaperWindows()
	phis := []float64{0.1, 0.5, 0.9}
	train := func(tc *corpus.Corpus, _ corpus.Month) (Recommender, error) {
		orc := &oracleRecommender{v: tc.M()}
		return &Static{Label: orc.Name(), Fn: orc.Scores, Concurrent: true}, nil
	}
	run := func(w int) []byte {
		par.SetWorkers(w)
		defer par.SetWorkers(0)
		res, err := EvaluateSweep(c, spec, phis, train)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(1), run(4)) {
		t.Fatal("EvaluateSweepRows differs between workers=1 and workers=4")
	}
}

// TestConcurrencySafeForwarding checks the rowAdapter forwards the marker
// and that non-opted-in recommenders stay sequential-only.
func TestConcurrencySafeForwarding(t *testing.T) {
	safe := rowAdapter{&Static{Label: "s", Concurrent: true}}
	if !safe.ConcurrencySafe() {
		t.Fatal("Concurrent Static not forwarded")
	}
	unsafe := rowAdapter{&Static{Label: "u"}}
	if unsafe.ConcurrencySafe() {
		t.Fatal("non-Concurrent Static reported safe")
	}
	plain := rowAdapter{&oracleRecommender{v: 3}}
	if plain.ConcurrencySafe() {
		t.Fatal("non-marker Recommender reported safe")
	}
}
