package recommend

import (
	"math"
	"testing"

	"repro/internal/bpmf"
	"repro/internal/chh"
	"repro/internal/corpus"
	"repro/internal/datagen"
	"repro/internal/lda"
	"repro/internal/lstm"
	"repro/internal/ngram"
	"repro/internal/rng"
	"repro/internal/stats"
)

// oracleCorpus builds a deterministic corpus where category t is always
// acquired in year 2000+t, so a perfect recommender exists.
func oracleCorpus(n int) *corpus.Corpus {
	cat := corpus.DefaultCatalog()
	companies := make([]corpus.Company, n)
	for i := range companies {
		var acqs []corpus.Acquisition
		for t := 0; t < 16; t++ {
			acqs = append(acqs, corpus.Acquisition{
				Category: t,
				First:    corpus.MonthOf(2000+t, 1+i%3), // slight phase jitter
			})
		}
		companies[i] = corpus.Company{ID: i, Acquisitions: acqs}
	}
	return corpus.New(cat, companies)
}

// oracleRecommender predicts the category following the last owned one with
// probability 1.
type oracleRecommender struct{ v int }

func (o *oracleRecommender) Name() string { return "oracle" }
func (o *oracleRecommender) Scores(history []int) []float64 {
	out := make([]float64, o.v)
	if len(history) == 0 {
		out[0] = 1
		return out
	}
	next := history[len(history)-1] + 1
	if next < o.v {
		out[next] = 1
	}
	return out
}

func TestPaperWindows(t *testing.T) {
	w := PaperWindows()
	if w.Count != 13 || w.Length != 12 || w.Slide != 2 {
		t.Fatalf("spec %+v", w)
	}
	last := w.Start + corpus.Month((w.Count-1)*w.Slide)
	if last != corpus.MonthOf(2015, 1) {
		t.Fatalf("last window starts %v, want 2015-01", last)
	}
	if last+corpus.Month(w.Length) != corpus.MonthOf(2016, 1) {
		t.Fatal("last window must end at 2016-01")
	}
}

func TestEvaluateSweepValidation(t *testing.T) {
	c := oracleCorpus(5)
	train := func(tc *corpus.Corpus, _ corpus.Month) (Recommender, error) {
		return &oracleRecommender{v: tc.M()}, nil
	}
	if _, err := EvaluateSweep(c, WindowSpec{Length: 0, Slide: 1, Count: 1}, []float64{0.1}, train); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := EvaluateSweep(c, PaperWindows(), nil, train); err == nil {
		t.Fatal("empty phi grid accepted")
	}
}

func TestOracleGetsPerfectAccuracy(t *testing.T) {
	c := oracleCorpus(30)
	// Window aligned with yearly acquisitions: each 12-month window contains
	// exactly one new category per company (categories 13, 14, 15 in the
	// 2013-2015 era).
	spec := PaperWindows()
	res, err := EvaluateSweep(c, spec, []float64{0.5}, func(tc *corpus.Corpus, _ corpus.Month) (Recommender, error) {
		return &oracleRecommender{v: tc.M()}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Model != "oracle" {
		t.Fatalf("model name %q", res.Model)
	}
	// The oracle recommends exactly the next category; every window's truth
	// is that category, so precision and recall must both be 1.
	if math.Abs(res.Recall[0].Mean-1) > 1e-9 {
		t.Fatalf("oracle recall = %v, want 1", res.Recall[0].Mean)
	}
	if math.Abs(res.Precision[0].Mean-1) > 1e-9 {
		t.Fatalf("oracle precision = %v, want 1", res.Precision[0].Mean)
	}
	if math.Abs(res.F1[0].Mean-1) > 1e-9 {
		t.Fatalf("oracle F1 = %v, want 1", res.F1[0].Mean)
	}
}

func TestUniformBaselineBehaviour(t *testing.T) {
	c := oracleCorpus(20)
	spec := PaperWindows()
	phis := []float64{0.01, 0.5}
	res, err := EvaluateSweep(c, spec, phis, func(tc *corpus.Corpus, _ corpus.Month) (Recommender, error) {
		return Uniform(tc.M()), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// phi below 1/38: retrieves every unowned product -> recall 1
	if math.Abs(res.Recall[0].Mean-1) > 1e-9 {
		t.Fatalf("low-phi uniform recall = %v, want 1 (paper: random retrieves all)", res.Recall[0].Mean)
	}
	// phi above 1/38: retrieves nothing -> recall 0, precision NaN
	if res.Recall[1].Mean != 0 {
		t.Fatalf("high-phi uniform recall = %v, want 0", res.Recall[1].Mean)
	}
	if !math.IsNaN(res.Precision[1].Mean) {
		t.Fatalf("high-phi uniform precision = %v, want NaN (undefined)", res.Precision[1].Mean)
	}
	if res.Retrieved[1].Mean != 0 {
		t.Fatalf("high-phi retrieved = %v, want 0", res.Retrieved[1].Mean)
	}
}

func TestRetrievedCountsMonotoneInPhi(t *testing.T) {
	g, err := datagen.NewGenerator(datagen.DefaultConfig(300, 5))
	if err != nil {
		t.Fatal(err)
	}
	c := g.Generate()
	spec := WindowSpec{Start: corpus.MonthOf(2013, 1), Length: 12, Slide: 4, Count: 4}
	phis := DefaultPhiGrid(0.4)
	rg := rng.New(1)
	res, err := EvaluateSweep(c, spec, phis, func(tc *corpus.Corpus, _ corpus.Month) (Recommender, error) {
		m, err := lda.Train(lda.Config{Topics: 3, V: tc.M(), BurnIn: 10, Iterations: 30, InferIterations: 10}, tc.Sets(), nil, rg)
		if err != nil {
			return nil, err
		}
		return LDA(m, rg), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(phis); i++ {
		if res.Retrieved[i].Mean > res.Retrieved[i-1].Mean+1e-9 {
			t.Fatalf("retrieved counts not non-increasing in phi at %v", phis[i])
		}
		if res.CorrectlyRetrieved[i].Mean > res.CorrectlyRetrieved[i-1].Mean+1e-9 {
			t.Fatalf("correct counts not non-increasing in phi at %v", phis[i])
		}
	}
	// relevant is threshold-independent and positive on this corpus
	if res.Relevant.Mean <= 0 {
		t.Fatalf("relevant mean = %v", res.Relevant.Mean)
	}
	// correct <= retrieved and correct <= relevant
	for i := range phis {
		if res.CorrectlyRetrieved[i].Mean > res.Retrieved[i].Mean+1e-9 {
			t.Fatal("correct exceeds retrieved")
		}
		if res.CorrectlyRetrieved[i].Mean > res.Relevant.Mean+1e-9 {
			t.Fatal("correct exceeds relevant")
		}
	}
}

func TestAdaptersProduceValidScores(t *testing.T) {
	g, err := datagen.NewGenerator(datagen.DefaultConfig(200, 7))
	if err != nil {
		t.Fatal(err)
	}
	c := g.Generate()
	seqs := c.Sequences()
	rg := rng.New(3)

	ldaM, err := lda.Train(lda.Config{Topics: 3, V: c.M(), BurnIn: 10, Iterations: 30, InferIterations: 10}, c.Sets(), nil, rg)
	if err != nil {
		t.Fatal(err)
	}
	lstmM, _, err := lstm.Train(lstm.Config{V: c.M(), Layers: 1, Hidden: 8, Epochs: 1}, seqs, nil, rg)
	if err != nil {
		t.Fatal(err)
	}
	ngramM, err := ngram.New(ngram.Config{Order: 2, V: c.M()})
	if err != nil {
		t.Fatal(err)
	}
	if err := ngramM.Fit(seqs); err != nil {
		t.Fatal(err)
	}
	chhM, err := chh.NewExact(c.M(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := chhM.Fit(seqs); err != nil {
		t.Fatal(err)
	}

	recs := []Recommender{LDA(ldaM, rg), LSTM(lstmM), Ngram(ngramM), CHH(chhM), Uniform(c.M())}
	history := seqs[0][:3]
	for _, r := range recs {
		scores := r.Scores(history)
		if len(scores) != c.M() {
			t.Fatalf("%s returned %d scores", r.Name(), len(scores))
		}
		for _, s := range scores {
			if s < 0 || s > 1 || math.IsNaN(s) {
				t.Fatalf("%s produced invalid score %v", r.Name(), s)
			}
		}
	}
	if recs[0].Name() != "LDA3" {
		t.Fatalf("LDA adapter name = %q", recs[0].Name())
	}
	if recs[2].Name() != "bigram" {
		t.Fatalf("ngram adapter name = %q", recs[2].Name())
	}
}

func TestBPMFForRow(t *testing.T) {
	g := rng.New(9)
	var ratings []bpmf.Rating
	for i := 0; i < 10; i++ {
		for j := 0; j < 5; j++ {
			if (i+j)%2 == 0 {
				ratings = append(ratings, bpmf.Rating{User: i, Item: j, Value: 1})
			}
		}
	}
	m, err := bpmf.Train(bpmf.Config{Rank: 2, Burn: 3, Samples: 4}, 10, 5, ratings, g)
	if err != nil {
		t.Fatal(err)
	}
	r := BPMFForRow(m, 3)
	scores := r.Scores(nil)
	if len(scores) != 5 {
		t.Fatalf("scores = %d", len(scores))
	}
	for j, s := range scores {
		if s != m.Predict(3, j) {
			t.Fatal("BPMF adapter disagrees with model")
		}
	}
	// defensive copy
	scores[0] = -99
	if m.Predict(3, 0) == -99 {
		t.Fatal("adapter leaked internal storage")
	}
}

func TestDefaultPhiGrid(t *testing.T) {
	grid := DefaultPhiGrid(0.4)
	if len(grid) != 9 || grid[0] != 0 || grid[8] != 0.4 {
		t.Fatalf("grid = %v", grid)
	}
}

func TestCIWidthShrinksWithConsistency(t *testing.T) {
	// sanity: identical windows => zero-width CI
	c := oracleCorpus(10)
	spec := WindowSpec{Start: corpus.MonthOf(2013, 1), Length: 12, Slide: 12, Count: 2}
	res, err := EvaluateSweep(c, spec, []float64{0.5}, func(tc *corpus.Corpus, _ corpus.Month) (Recommender, error) {
		return &oracleRecommender{v: tc.M()}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ci := res.Recall[0]
	if ci.Hi-ci.Lo > 1e-9 {
		t.Fatalf("deterministic recall CI has width %v", ci.Hi-ci.Lo)
	}
	var _ stats.CI = ci
}
