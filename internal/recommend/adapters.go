package recommend

import (
	"strconv"

	"repro/internal/bpmf"
	"repro/internal/chh"
	"repro/internal/lda"
	"repro/internal/lstm"
	"repro/internal/ngram"
	"repro/internal/rng"
)

// LDA adapts a trained LDA model: the company's topic mixture is inferred
// from its owned products (order-free, matching LDA's exchangeability) and
// every category is scored by P(category | theta). NOT marked Concurrent:
// theta inference draws from the shared RNG, so concurrent scoring would
// both race and consume the stream in scheduling order.
func LDA(m *lda.Model, g *rng.RNG) Recommender {
	return &Static{
		Label: "LDA" + strconv.Itoa(m.K),
		Fn: func(history []int) []float64 {
			theta := m.InferTheta(history, g)
			return m.WordDist(theta)
		},
	}
}

// LSTM adapts a trained LSTM language model: the next-product softmax after
// consuming the time-ordered history. NextDist allocates fresh state per
// call and only reads the trained weights, so it is concurrency-safe.
func LSTM(m *lstm.Model) Recommender {
	return &Static{
		Label:      "LSTM",
		Fn:         m.NextDist,
		Concurrent: true,
	}
}

// Ngram adapts an n-gram language model. Dist only reads the count tables.
func Ngram(m *ngram.Model) Recommender {
	label := [4]string{"", "unigram", "bigram", "trigram"}[m.Order]
	return &Static{
		Label:      label,
		Fn:         m.Dist,
		Concurrent: true,
	}
}

// CHH adapts an exact Conditional-Heavy-Hitters model: the conditional
// next-product distribution given the last one or two acquisitions. Dist
// only reads the trained tables.
func CHH(m *chh.Exact) Recommender {
	return &Static{
		Label:      "CHH",
		Fn:         m.Dist,
		Concurrent: true,
	}
}

// BPMFForRow scores all categories for one company row of a trained BPMF
// model. Matrix-factorization scores are positional (per company row), not
// history-based, so BPMF recommenders are built per company; the harness
// for the paper's Figure 6 sweeps score thresholds directly over these
// per-row predictive scores.
func BPMFForRow(m *bpmf.Model, row int) Recommender {
	return &Static{
		Label:      "BPMF",
		Concurrent: true,
		Fn: func([]int) []float64 {
			out := make([]float64, m.M)
			copy(out, m.Scores.Row(row))
			return out
		},
	}
}
