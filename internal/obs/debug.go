package obs

import (
	"expvar"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
)

// MetricsHandler serves the registry in Prometheus text format.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// JSONHandler serves the registry as an indented JSON snapshot.
func JSONHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}

// DebugServer is the side listener the cmd/ binaries start for -debug-addr.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// Route is one extra handler mounted on the debug mux — how layers that sit
// above obs (e.g. internal/trace's /debug/traces) join the -debug-addr
// listener without obs depending on them.
type Route struct {
	Pattern string
	Handler http.Handler
}

// StartDebug binds addr and serves /metrics (Prometheus text), /metrics.json,
// /debug/vars (expvar), /debug/pprof/* and any extra routes in a background
// goroutine. Pass an explicit port of 0 (e.g. "localhost:0") to pick a free
// port; Addr reports the bound address.
func StartDebug(addr string, r *Registry, extra ...Route) (*DebugServer, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(r))
	mux.Handle("/metrics.json", JSONHandler(r))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, rt := range extra {
		mux.Handle(rt.Pattern, rt.Handler)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = d.srv.Serve(ln) }()
	return d, nil
}

// Addr returns the bound listen address.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the server and listener.
func (d *DebugServer) Close() error { return d.srv.Close() }

// Flags are the shared observability flags of the cmd/ binaries.
type Flags struct {
	DebugAddr string
	Verbose   bool
	Progress  bool
}

// BindFlags registers -debug-addr, -v and -progress on fs and returns the
// destination struct (read after fs.Parse).
func BindFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.DebugAddr, "debug-addr", "",
		"serve /metrics, /debug/vars and /debug/pprof on this address (e.g. localhost:6060)")
	fs.BoolVar(&f.Verbose, "v", false, "verbose (debug-level) logging")
	fs.BoolVar(&f.Progress, "progress", false, "log per-iteration training/progress lines")
	return f
}

// Init builds the CLI logger and, when -debug-addr was given, starts the
// debug server on the default registry with any extra routes mounted. The
// returned func stops the server; call it before exiting.
func (f *Flags) Init(name string, extra ...Route) (*slog.Logger, func()) {
	logger := NewCLILogger(os.Stderr, name, f.Verbose)
	stop := func() {}
	if f.DebugAddr != "" {
		srv, err := StartDebug(f.DebugAddr, Default(), extra...)
		if err != nil {
			logger.Error("debug server failed to start: " + err.Error())
			os.Exit(1)
		}
		logger.Info("debug server listening", "addr", srv.Addr())
		stop = func() { _ = srv.Close() }
	}
	return logger, stop
}
