// Package obs is the repo's zero-dependency observability layer: a
// concurrent-safe metrics registry (atomic counters, gauges and fixed-bucket
// histograms with quantile estimates), a lightweight span/timer API that
// accumulates hierarchical wall-clock timings into the registry, and a
// Progress hook type that training loops invoke per iteration. Every model
// family (lda, lstm, gru, bpmf, sgns), the serving paths in internal/core,
// and the experiment drivers in internal/eval report through the process-wide
// default registry, which the cmd/ binaries expose over HTTP (-debug-addr)
// in Prometheus text format and as JSON snapshots.
//
// The package deliberately depends only on the standard library: the metrics
// it collects exist to measure hot paths, so the collection primitives must
// be cheap (single atomic ops), allocation-free on the hot path, and safe to
// leave compiled into production binaries.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Add increments the gauge by v (CAS loop; safe for concurrent use).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+v)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return bitsFloat(g.bits.Load()) }

// Registry holds named metrics. All methods are safe for concurrent use;
// metric lookups take a read lock only, and metric updates are lock-free.
type Registry struct {
	spansOn atomic.Bool

	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	windows  map[string]*WindowedHistogram
	help     map[string]string
}

// NewRegistry returns an empty registry with span capture enabled.
func NewRegistry() *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		windows:  make(map[string]*WindowedHistogram),
		help:     make(map[string]string),
	}
	r.spansOn.Store(true)
	return r
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that all built-in
// instrumentation reports into.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use. The help
// string of the first registration wins. Panics if the name is invalid or
// already registered as a different metric kind.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c != nil {
		return c
	}
	r.checkNew(name, help)
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g != nil {
		return g
	}
	r.checkNew(name, help)
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (later calls ignore buckets). Bounds must be
// strictly increasing; an implicit +Inf bucket is always appended.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h != nil {
		return h
	}
	r.checkNew(name, help)
	h = newHistogram(buckets)
	r.hists[name] = h
	return h
}

// checkNew validates a metric name about to be inserted; callers hold the
// write lock.
func (r *Registry) checkNew(name, help string) {
	if !ValidMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if _, dup := r.help[name]; dup {
		panic(fmt.Sprintf("obs: metric %q already registered as a different kind", name))
	}
	r.help[name] = help
}

// Names returns every registered metric name, sorted — counters, gauges,
// histograms and windowed histograms alike. The metrics-documentation check
// (scripts/check_metrics_docs.sh) walks it to assert each series that can
// appear in an exposition is documented in README or DESIGN.
func (r *Registry) Names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.help))
	for name := range r.help {
		out = append(out, name)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// SetSpansEnabled toggles span capture. Disabled spans take the fast path:
// Start returns an inactive span and End is a nil-check only.
func (r *Registry) SetSpansEnabled(on bool) { r.spansOn.Store(on) }

// SpansEnabled reports whether span capture is on.
func (r *Registry) SpansEnabled() bool { return r.spansOn.Load() }

// ValidMetricName reports whether name matches the Prometheus metric name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func ValidMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// MetricName sanitizes an arbitrary dotted span or label path into a valid
// metric name: every invalid character becomes '_'.
func MetricName(s string) string {
	if ValidMetricName(s) {
		return s
	}
	b := []byte(s)
	for i, c := range b {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			b[i] = '_'
		}
	}
	if len(b) == 0 {
		return "_"
	}
	return string(b)
}
