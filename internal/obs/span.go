package obs

import "time"

// Span is a lightweight wall-clock timer. Start a root span with
// obs.Start("lda.train"), nest with Child, and call End to accumulate the
// elapsed seconds into the registry histogram named after the dotted path
// ("lda.train" -> lda_train_seconds, "lda.train.sweep" ->
// lda_train_sweep_seconds). Spans are plain values: no allocation on start,
// and an inactive span (from a registry with spans disabled) makes End a
// nil-check only, so instrumentation can stay compiled into hot paths.
type Span struct {
	reg   *Registry
	name  string
	start time.Time
}

// Start begins a span on the default registry.
func Start(name string) Span { return defaultRegistry.StartSpan(name) }

// StartSpan begins a span on this registry. Returns an inactive span when
// span capture is disabled.
func (r *Registry) StartSpan(name string) Span {
	if !r.spansOn.Load() {
		return Span{}
	}
	return Span{reg: r, name: name, start: time.Now()}
}

// Child begins a nested span whose dotted path extends the parent's, so the
// hierarchy is visible in the metric namespace. Children of inactive spans
// are inactive.
func (s Span) Child(name string) Span {
	if s.reg == nil {
		return Span{}
	}
	return Span{reg: s.reg, name: s.name + "." + name, start: time.Now()}
}

// Active reports whether the span is recording.
func (s Span) Active() bool { return s.reg != nil }

// End stops the span, accumulates the elapsed wall-clock seconds into the
// <path>_seconds histogram, and returns the duration. Inactive spans return 0.
func (s Span) End() time.Duration {
	if s.reg == nil {
		return 0
	}
	d := time.Since(s.start)
	s.reg.Histogram(MetricName(s.name)+"_seconds",
		"wall-clock seconds spent in "+s.name+" spans", DefBuckets).Observe(d.Seconds())
	return d
}
