package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// WindowedHistogram is a rolling-window variant of Histogram: a ring of K
// fixed-bucket windows, one of which is "current" at any moment. Observe
// records into the current window with the same lock-free atomic increments
// as Histogram; Rotate (driven by a wall-clock ticker, see StartWindowTicker)
// clears the oldest window and makes it current. Quantile, Count and Sum
// aggregate across the whole ring, so with K windows of span/K each they
// answer over a sliding window of roughly `span` — unlike the cumulative
// Histogram, a latency regression shows up within one tick and ages out K
// ticks later instead of being diluted by everything since process start.
//
// The observe path takes no locks and performs no allocation: one atomic
// load of the current index plus three atomic adds. Rotation clears the
// next window *before* publishing it as current, so an observer can never
// see a half-cleared current window; an observer that loaded the index just
// before a rotation lands its observation in the freshly retired window,
// which stays in the ring for K-1 more ticks — the observation is late by
// at most one tick, never lost, unless the observer stalls across a full
// ring revolution.
type WindowedHistogram struct {
	bounds []float64
	k      int // windows in the ring
	stride int // len(bounds)+1 counts per window
	cur    atomic.Uint64
	counts []atomic.Uint64 // k * stride bucket counts
	totals []atomic.Uint64 // per-window observation counts
	sums   []atomicFloat   // per-window value sums
}

// NewWindowedHistogram builds a ring of k windows over the given bucket
// upper bounds (nil selects DefBuckets). k < 2 selects 2: a single window
// would empty completely on every tick instead of sliding.
func NewWindowedHistogram(buckets []float64, k int) *WindowedHistogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: windowed histogram buckets not strictly increasing at %d: %v", i, buckets))
		}
	}
	if k < 2 {
		k = 2
	}
	stride := len(buckets) + 1
	return &WindowedHistogram{
		bounds: append([]float64(nil), buckets...),
		k:      k,
		stride: stride,
		counts: make([]atomic.Uint64, k*stride),
		totals: make([]atomic.Uint64, k),
		sums:   make([]atomicFloat, k),
	}
}

// Observe records one value into the current window. Lock-free and
// allocation-free; safe to call concurrently with Rotate.
func (h *WindowedHistogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	w := int(h.cur.Load())
	h.counts[w*h.stride+i].Add(1)
	h.totals[w].Add(1)
	h.sums[w].Add(v)
}

// Rotate retires the oldest window: it is cleared and becomes the new
// current window. Call on a fixed wall-clock tick (window span / K); calling
// more than K times in a row empties the ring entirely, which is the correct
// behavior after the ticker goroutine was blocked for longer than the whole
// window — the data it would have aged out is stale either way.
func (h *WindowedHistogram) Rotate() {
	next := (int(h.cur.Load()) + 1) % h.k
	for i := 0; i < h.stride; i++ {
		h.counts[next*h.stride+i].Store(0)
	}
	h.totals[next].Store(0)
	h.sums[next].bits.Store(0)
	h.cur.Store(uint64(next))
}

// Windows returns the ring size K.
func (h *WindowedHistogram) Windows() int { return h.k }

// Count returns the observations currently in the ring (the sliding window).
func (h *WindowedHistogram) Count() uint64 {
	var total uint64
	for i := range h.totals {
		total += h.totals[i].Load()
	}
	return total
}

// Sum returns the sum of the values currently in the ring.
func (h *WindowedHistogram) Sum() float64 {
	var s float64
	for i := range h.sums {
		s += h.sums[i].Value()
	}
	return s
}

// Quantile estimates the q-quantile over the sliding window, with the same
// interpolation and empty-bucket semantics as Histogram.Quantile. An empty
// ring reports 0.
func (h *WindowedHistogram) Quantile(q float64) float64 {
	counts := h.snapshotCounts()
	var total uint64
	for _, n := range counts {
		total += n
	}
	return quantileFromCounts(h.bounds, counts, total, q)
}

// snapshotCounts aggregates per-bucket counts across every window in the
// ring; the last entry is the +Inf bucket.
func (h *WindowedHistogram) snapshotCounts() []uint64 {
	out := make([]uint64, h.stride)
	for w := 0; w < h.k; w++ {
		for i := 0; i < h.stride; i++ {
			out[i] += h.counts[w*h.stride+i].Load()
		}
	}
	return out
}

// WindowedCounter is a rolling-window counter: Inc/Add hit the current
// window, Rotate retires the oldest, Total sums the ring. The SLO layer uses
// pairs of these for rolling request/error rates.
type WindowedCounter struct {
	cur  atomic.Uint64
	wins []atomic.Uint64
}

// NewWindowedCounter builds a ring of k windows (k < 2 selects 2).
func NewWindowedCounter(k int) *WindowedCounter {
	if k < 2 {
		k = 2
	}
	return &WindowedCounter{wins: make([]atomic.Uint64, k)}
}

// Inc adds one to the current window.
func (c *WindowedCounter) Inc() { c.wins[c.cur.Load()].Add(1) }

// Add adds n to the current window.
func (c *WindowedCounter) Add(n uint64) { c.wins[c.cur.Load()].Add(n) }

// Rotate clears the oldest window and makes it current.
func (c *WindowedCounter) Rotate() {
	next := (int(c.cur.Load()) + 1) % len(c.wins)
	c.wins[next].Store(0)
	c.cur.Store(uint64(next))
}

// Total returns the count currently in the ring (the sliding window).
func (c *WindowedCounter) Total() uint64 {
	var total uint64
	for i := range c.wins {
		total += c.wins[i].Load()
	}
	return total
}

// Rotator is anything holding ring windows advanced on a wall-clock tick.
type Rotator interface{ Rotate() }

// StartWindowTicker rotates every Rotator once per interval on a background
// goroutine and returns a stop function (idempotent, safe from any
// goroutine). Nothing is started for an empty Rotator list — callers gate the
// goroutine behind their own enable flag, matching the disabled-path
// discipline: windows off must mean no ticker goroutine at all.
func StartWindowTicker(interval time.Duration, rs ...Rotator) (stop func()) {
	if len(rs) == 0 {
		return func() {}
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	tick := time.NewTicker(interval)
	done := make(chan struct{})
	go func() {
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				for _, r := range rs {
					r.Rotate()
				}
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// WindowedHistogram returns the named windowed histogram, creating it with
// the given buckets and ring size on first use (later calls ignore both,
// like Histogram). Windowed histograms are exposed in the JSON snapshot
// under "windows" — not in the Prometheus text format, whose histogram type
// is cumulative-since-start by contract.
func (r *Registry) WindowedHistogram(name, help string, buckets []float64, k int) *WindowedHistogram {
	r.mu.RLock()
	h := r.windows[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.windows[name]; h != nil {
		return h
	}
	r.checkNew(name, help)
	h = NewWindowedHistogram(buckets, k)
	r.windows[name] = h
	return h
}
