package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strconv"
	"sync"
)

// cliHandler is a minimal slog.Handler that keeps the traditional CLI log
// shape the repo's scripts expect: "name: message key=value ...", one line
// per record, no timestamps, no level tags. Debug records are dropped unless
// verbose logging was requested.
type cliHandler struct {
	mu     *sync.Mutex
	w      io.Writer
	prefix string
	min    slog.Level
	attrs  string // preformatted " key=value" pairs from WithAttrs
	group  string // dotted group prefix for subsequent attr keys
}

// NewCLILogger returns a slog.Logger writing "name: msg k=v" lines to w.
// verbose enables debug-level records; info and above always pass.
func NewCLILogger(w io.Writer, name string, verbose bool) *slog.Logger {
	minLevel := slog.LevelInfo
	if verbose {
		minLevel = slog.LevelDebug
	}
	return slog.New(&cliHandler{mu: &sync.Mutex{}, w: w, prefix: name, min: minLevel})
}

func (h *cliHandler) Enabled(_ context.Context, l slog.Level) bool { return l >= h.min }

func (h *cliHandler) Handle(_ context.Context, r slog.Record) error {
	buf := make([]byte, 0, 128)
	if h.prefix != "" {
		buf = append(buf, h.prefix...)
		buf = append(buf, ": "...)
	}
	buf = append(buf, r.Message...)
	buf = append(buf, h.attrs...)
	r.Attrs(func(a slog.Attr) bool {
		buf = appendAttr(buf, h.group, a)
		return true
	})
	buf = append(buf, '\n')
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := h.w.Write(buf)
	return err
}

func (h *cliHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	h2 := *h
	buf := []byte(h.attrs)
	for _, a := range attrs {
		buf = appendAttr(buf, h.group, a)
	}
	h2.attrs = string(buf)
	return &h2
}

func (h *cliHandler) WithGroup(name string) slog.Handler {
	h2 := *h
	if name != "" {
		h2.group = h.group + name + "."
	}
	return &h2
}

func appendAttr(buf []byte, group string, a slog.Attr) []byte {
	v := a.Value.Resolve()
	if a.Key == "" && v.Kind() == slog.KindGroup {
		for _, ga := range v.Group() {
			buf = appendAttr(buf, group, ga)
		}
		return buf
	}
	if v.Kind() == slog.KindGroup {
		for _, ga := range v.Group() {
			buf = appendAttr(buf, group+a.Key+".", ga)
		}
		return buf
	}
	buf = append(buf, ' ')
	buf = append(buf, group...)
	buf = append(buf, a.Key...)
	buf = append(buf, '=')
	switch v.Kind() {
	case slog.KindFloat64:
		buf = strconv.AppendFloat(buf, v.Float64(), 'g', 6, 64)
	case slog.KindInt64:
		buf = strconv.AppendInt(buf, v.Int64(), 10)
	case slog.KindUint64:
		buf = strconv.AppendUint(buf, v.Uint64(), 10)
	case slog.KindBool:
		buf = strconv.AppendBool(buf, v.Bool())
	case slog.KindString:
		buf = appendQuotedIfNeeded(buf, v.String())
	default:
		buf = appendQuotedIfNeeded(buf, fmt.Sprint(v.Any()))
	}
	return buf
}

func appendQuotedIfNeeded(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '"' || s[i] == '=' || s[i] < 0x20 {
			return strconv.AppendQuote(buf, s)
		}
	}
	return append(buf, s...)
}
