package obs

import (
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestQuantileZeroSkipsEmptyLeadingBuckets is the regression test for the
// Quantile(0) bug: with all mass in a high bucket, q=0 must report the lower
// edge of the first non-empty bucket, not the first bucket's upper bound.
func TestQuantileZeroSkipsEmptyLeadingBuckets(t *testing.T) {
	h := newHistogram([]float64{0.1, 0.25, 0.5, 1})
	for i := 0; i < 10; i++ {
		h.Observe(0.3) // lands in (0.25, 0.5]
	}
	if got := h.Quantile(0); got != 0.25 {
		t.Fatalf("Quantile(0) = %v, want 0.25 (lower edge of the first non-empty bucket)", got)
	}
	// q>0 interpolates inside the occupied bucket as before.
	if got := h.Quantile(0.5); got <= 0.25 || got > 0.5 {
		t.Fatalf("Quantile(0.5) = %v, want in (0.25, 0.5]", got)
	}
	// Mass only in the +Inf bucket clamps to the last finite bound.
	h2 := newHistogram([]float64{0.1, 0.25})
	h2.Observe(7)
	if got := h2.Quantile(0); got != 0.25 {
		t.Fatalf("+Inf-only Quantile(0) = %v, want 0.25", got)
	}
	// Mass in the first bucket still reports 0 (its lower edge).
	h3 := newHistogram([]float64{0.1, 0.25})
	h3.Observe(0.05)
	if got := h3.Quantile(0); got != 0 {
		t.Fatalf("first-bucket Quantile(0) = %v, want 0", got)
	}
}

func TestWindowedHistogramQuantileAndRotation(t *testing.T) {
	w := NewWindowedHistogram([]float64{0.1, 0.25, 0.5, 1}, 3)
	if got := w.Quantile(0.99); got != 0 {
		t.Fatalf("empty ring Quantile = %v, want 0", got)
	}
	if w.Count() != 0 || w.Sum() != 0 {
		t.Fatalf("empty ring count/sum = %d/%v", w.Count(), w.Sum())
	}
	for i := 0; i < 8; i++ {
		w.Observe(0.2)
	}
	w.Rotate()
	for i := 0; i < 2; i++ {
		w.Observe(0.7)
	}
	// Partially filled ring (2 of 3 windows hold data): quantiles aggregate
	// both windows. 8 observations in (0.1,0.25], 2 in (0.5,1].
	if got := w.Count(); got != 10 {
		t.Fatalf("count after partial fill = %d, want 10", got)
	}
	if got := w.Quantile(0.5); got <= 0.1 || got > 0.25 {
		t.Fatalf("p50 = %v, want in (0.1, 0.25]", got)
	}
	if got := w.Quantile(0.99); got <= 0.5 || got > 1 {
		t.Fatalf("p99 = %v, want in (0.5, 1]", got)
	}
	if got := w.Quantile(0); got != 0.1 {
		t.Fatalf("windowed Quantile(0) = %v, want 0.1", got)
	}
	wantSum := 8*0.2 + 2*0.7
	if got := w.Sum(); math.Abs(got-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, wantSum)
	}

	// Two more rotations age out the first window's 8 observations.
	w.Rotate()
	w.Rotate()
	if got := w.Count(); got != 2 {
		t.Fatalf("count after aging = %d, want 2 (only the 0.7s remain)", got)
	}
	if got := w.Quantile(0.5); got <= 0.5 || got > 1 {
		t.Fatalf("p50 after aging = %v, want in (0.5, 1]", got)
	}
}

// TestWindowedHistogramTickSkew models a ticker goroutine that was blocked
// past the whole window span and then fires its backlog in a burst: rotating
// more than K times in a row must empty the ring completely and report 0,
// and fresh observations afterwards must be recorded normally.
func TestWindowedHistogramTickSkew(t *testing.T) {
	w := NewWindowedHistogram(nil, 4)
	for i := 0; i < 100; i++ {
		w.Observe(0.01)
	}
	for i := 0; i < w.Windows()+3; i++ {
		w.Rotate()
	}
	if got := w.Count(); got != 0 {
		t.Fatalf("count after burst rotation = %d, want 0 (all windows aged out)", got)
	}
	if got := w.Quantile(0.99); got != 0 {
		t.Fatalf("all-windows-empty Quantile = %v, want 0", got)
	}
	if got := w.Sum(); got != 0 {
		t.Fatalf("all-windows-empty Sum = %v, want 0", got)
	}
	w.Observe(0.3)
	if got, q := w.Count(), w.Quantile(1); got != 1 || q <= 0.25 || q > 0.5 {
		t.Fatalf("post-burst observe: count %d quantile %v", got, q)
	}
}

// TestWindowedHistogramObserveRacesRotate hammers Observe from several
// goroutines while another rotates continuously; under -race this pins the
// lock-free contract. An observation may land in a window that has already
// been retired (late by one tick) but is only lost if its goroutine stalls
// across a whole ring revolution, so the aggregate count stays within
// [total - lost-window slack, total].
func TestWindowedHistogramObserveRacesRotate(t *testing.T) {
	w := NewWindowedHistogram(nil, 4)
	const workers = 4
	const perWorker = 5000
	var wg sync.WaitGroup
	stopRotate := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopRotate:
				return
			default:
				w.Rotate()
			}
		}
	}()
	var obsWG sync.WaitGroup
	for g := 0; g < workers; g++ {
		obsWG.Add(1)
		go func(g int) {
			defer obsWG.Done()
			for i := 0; i < perWorker; i++ {
				w.Observe(float64(i%100) / 1000)
			}
		}(g)
	}
	obsWG.Wait()
	close(stopRotate)
	wg.Wait()
	// Rotation kept clearing windows, so most observations are gone; the
	// assertions are about safety, not retention: no crash, no negative
	// drift, quantiles readable mid-churn.
	if got := w.Count(); got > workers*perWorker {
		t.Fatalf("count %d exceeds observations %d", got, workers*perWorker)
	}
	_ = w.Quantile(0.99)

	// Without concurrent rotation every observation must be retained.
	w2 := NewWindowedHistogram(nil, 4)
	var wg2 sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			for i := 0; i < perWorker; i++ {
				w2.Observe(0.001)
			}
		}()
	}
	wg2.Wait()
	if got := w2.Count(); got != workers*perWorker {
		t.Fatalf("rotation-free count = %d, want %d", got, workers*perWorker)
	}
}

func TestWindowedCounter(t *testing.T) {
	c := NewWindowedCounter(3)
	c.Inc()
	c.Add(4)
	if got := c.Total(); got != 5 {
		t.Fatalf("total = %d, want 5", got)
	}
	c.Rotate()
	c.Inc()
	if got := c.Total(); got != 6 {
		t.Fatalf("total after rotate = %d, want 6", got)
	}
	c.Rotate()
	c.Rotate() // ages out the first window's 5
	if got := c.Total(); got != 1 {
		t.Fatalf("total after aging = %d, want 1", got)
	}
}

func TestStartWindowTickerRotates(t *testing.T) {
	w := NewWindowedHistogram(nil, 2)
	w.Observe(0.5)
	stop := StartWindowTicker(5*time.Millisecond, w)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for w.Count() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("ticker never aged out the observation")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	stop() // idempotent
	// No ticker goroutine at all for an empty rotator list.
	stopEmpty := StartWindowTicker(time.Millisecond)
	stopEmpty()
}

func TestRegistryWindowedHistogram(t *testing.T) {
	r := NewRegistry()
	w := r.WindowedHistogram("lat_window_seconds", "rolling latency", nil, 6)
	if again := r.WindowedHistogram("lat_window_seconds", "", []float64{1}, 2); again != w {
		t.Fatal("re-registration returned a different windowed histogram")
	}
	w.Observe(0.002)
	w.Observe(0.004)
	snap := r.Snapshot()
	ws, ok := snap.Windows["lat_window_seconds"]
	if !ok {
		t.Fatalf("windowed histogram missing from snapshot: %+v", snap.Windows)
	}
	if ws.Count != 2 || ws.Windows != 6 || ws.P99 <= 0 {
		t.Fatalf("window snapshot %+v", ws)
	}
	// Name collisions across kinds still panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic registering a counter over a windowed histogram name")
			}
		}()
		r.Counter("lat_window_seconds", "")
	}()
	// A registry with no windows omits the section from JSON entirely.
	empty := NewRegistry()
	empty.Counter("c_total", "").Inc()
	var sb strings.Builder
	if err := empty.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "windows") {
		t.Fatalf("window-free snapshot mentions windows:\n%s", sb.String())
	}
}

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 0.5})
	h.Observe(0.05) // untraced: no exemplar
	h.ObserveExemplar(0.3, "4bf92f3577b34da6a3ce929d0e0e4736")
	h.ObserveExemplar(0.4, "00f067aa0ba902b7aa00000000000001") // same bucket: replaces
	h.ObserveExemplar(7, "00f067aa0ba902b7aa00000000000002")   // +Inf bucket

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, `lat_seconds_bucket{le="0.5"} 3 # {trace_id="00f067aa0ba902b7aa00000000000001"} 0.4`) {
		t.Fatalf("bucket exemplar line missing or stale:\n%s", text)
	}
	if !strings.Contains(text, `lat_seconds_bucket{le="+Inf"} 4 # {trace_id="00f067aa0ba902b7aa00000000000002"} 7`) {
		t.Fatalf("+Inf exemplar line missing:\n%s", text)
	}
	if strings.Contains(text, `le="0.1"} 1 #`) {
		t.Fatalf("untraced bucket grew an exemplar:\n%s", text)
	}

	snap := r.Snapshot()
	hs := snap.Histograms["lat_seconds"]
	if len(hs.Exemplars) != 2 {
		t.Fatalf("snapshot exemplars = %+v, want entries for 0.5 and +Inf", hs.Exemplars)
	}
	if ex := hs.Exemplars["0.5"]; ex.TraceID != "00f067aa0ba902b7aa00000000000001" || ex.Value != 0.4 || ex.UnixSec <= 0 {
		t.Fatalf("0.5 exemplar %+v", ex)
	}
	if ex := hs.Exemplars["+Inf"]; ex.TraceID != "00f067aa0ba902b7aa00000000000002" {
		t.Fatalf("+Inf exemplar %+v", ex)
	}

	// Exemplar-free histograms keep the exact pre-exemplar exposition.
	r2 := NewRegistry()
	r2.Histogram("plain_seconds", "", []float64{1}).Observe(0.5)
	var sb2 strings.Builder
	if err := r2.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb2.String(), "#  {") || strings.Contains(sb2.String(), "} 1 #") {
		t.Fatalf("exemplar-free output changed:\n%s", sb2.String())
	}
	if hs2 := r2.Snapshot().Histograms["plain_seconds"]; hs2.Exemplars != nil {
		t.Fatalf("exemplar-free snapshot has exemplars: %+v", hs2.Exemplars)
	}
}

func TestRuntimeSampler(t *testing.T) {
	r := NewRegistry()
	stop := StartRuntimeSampler(r, time.Millisecond)
	defer stop()
	snap := r.Snapshot()
	if snap.Gauges["go_goroutines"] <= 0 {
		t.Fatalf("go_goroutines = %v, want > 0", snap.Gauges["go_goroutines"])
	}
	if snap.Gauges["go_heap_inuse_bytes"] <= 0 || snap.Gauges["go_sys_bytes"] <= 0 {
		t.Fatalf("heap gauges not sampled: %+v", snap.Gauges)
	}
	// Force a GC and wait for the sampler to pick up the pause.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		time.Sleep(3 * time.Millisecond)
		snap = r.Snapshot()
		if snap.Counters["go_gc_runs_total"] > 0 && snap.Histograms["go_gc_pause_seconds"].Count > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sampler never observed a GC: %+v", snap.Counters)
		}
	}
	stop()
	stop() // idempotent

	// A registry without the sampler exposes no go_* series at all.
	var sb strings.Builder
	if err := NewRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "go_") {
		t.Fatalf("sampler-free registry has go_* series:\n%s", sb.String())
	}
}
