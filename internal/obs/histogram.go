package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency buckets (seconds), spanning a
// microsecond to ten seconds — wide enough for both per-query serving
// latencies and whole training runs.
var DefBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets are the default buckets for counts (result sizes, fan-outs).
var SizeBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Histogram is a fixed-bucket histogram with lock-free observation. Bucket
// counts are non-cumulative internally and cumulated at exposition time.
// Each bucket can additionally carry one exemplar — the most recent traced
// observation that landed in it (see ObserveExemplar) — linking the
// aggregate distribution back to a concrete /debug/traces/{id} tree.
type Histogram struct {
	bounds    []float64 // strictly increasing upper bounds (le); +Inf implicit
	counts    []atomic.Uint64
	exemplars []atomic.Pointer[Exemplar] // per bucket; nil until a traced observation lands
	count     atomic.Uint64
	sum       atomicFloat
}

// Exemplar is one traced observation retained at bucket level: the trace ID
// of the request that produced it, the observed value, and the wall-clock
// time it was recorded. Exposed in OpenMetrics "# {trace_id=...}" syntax on
// /metrics and in the JSON snapshot, it answers "show me one real request
// behind this bucket".
type Exemplar struct {
	TraceID string  `json:"trace_id"`
	Value   float64 `json:"value"`
	UnixSec float64 `json:"unix_sec"`
}

// atomicFloat is a float64 updated by CAS on its bit pattern.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) Value() float64 { return bitsFloat(f.bits.Load()) }

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not strictly increasing at %d: %v", i, buckets))
		}
	}
	bounds := append([]float64(nil), buckets...)
	return &Histogram{
		bounds:    bounds,
		counts:    make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. v <= le
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveExemplar records one value and retains (traceID, v, now) as the
// bucket's exemplar, replacing any previous one. Unlike Observe this
// allocates (the exemplar cell), so call sites use it only for traced
// requests — untraced traffic takes the allocation-free Observe path and the
// exposition output stays byte-identical when tracing is off.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{
			TraceID: traceID,
			Value:   v,
			UnixSec: float64(time.Now().UnixNano()) / 1e9,
		})
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the bucket holding the target rank. Values beyond the last finite
// bound are reported as that bound; an empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	return quantileFromCounts(h.bounds, h.snapshotCounts(), h.count.Load(), q)
}

// quantileFromCounts is the shared quantile scan of Histogram and
// WindowedHistogram: counts are per-bucket (non-cumulative) with the +Inf
// bucket last. Empty buckets are skipped, so q=0 reports the lower edge of
// the first *non-empty* bucket rather than the first bucket's upper bound —
// a histogram whose entire mass sits in (0.25, 0.5] answers Quantile(0) with
// 0.25, not 1e-6.
func quantileFromCounts(bounds []float64, counts []uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	lo := 0.0
	for i, c := range counts {
		n := float64(c)
		hi := bounds[len(bounds)-1] // +Inf bucket clamps to last bound
		if i < len(bounds) {
			hi = bounds[i]
		}
		if n > 0 && cum+n >= target {
			if i >= len(bounds) {
				return hi
			}
			if target <= cum {
				// q=0 (or an exact bucket boundary): the target rank sits at
				// the bucket's lower edge; interpolating would overshoot.
				return lo
			}
			return lo + (hi-lo)*(target-cum)/n
		}
		cum += n
		lo = hi
	}
	return lo
}

// snapshotCounts returns per-bucket (non-cumulative) counts; the last entry
// is the +Inf bucket.
func (h *Histogram) snapshotCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// snapshotExemplars returns the per-bucket exemplars (nil where no traced
// observation has landed); the last entry is the +Inf bucket.
func (h *Histogram) snapshotExemplars() []*Exemplar {
	out := make([]*Exemplar, len(h.exemplars))
	for i := range h.exemplars {
		out[i] = h.exemplars[i].Load()
	}
	return out
}
