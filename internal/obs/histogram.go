package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// DefBuckets are the default latency buckets (seconds), spanning a
// microsecond to ten seconds — wide enough for both per-query serving
// latencies and whole training runs.
var DefBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets are the default buckets for counts (result sizes, fan-outs).
var SizeBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Histogram is a fixed-bucket histogram with lock-free observation. Bucket
// counts are non-cumulative internally and cumulated at exposition time.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds (le); +Inf implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomicFloat
}

// atomicFloat is a float64 updated by CAS on its bit pattern.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) Value() float64 { return bitsFloat(f.bits.Load()) }

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not strictly increasing at %d: %v", i, buckets))
		}
	}
	bounds := append([]float64(nil), buckets...)
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. v <= le
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the bucket holding the target rank. Values beyond the last finite
// bound are reported as that bound; an empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	lo := 0.0
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		hi := h.bounds[len(h.bounds)-1] // +Inf bucket clamps to last bound
		if i < len(h.bounds) {
			hi = h.bounds[i]
		}
		if cum+n >= target {
			if n == 0 || i >= len(h.bounds) {
				return hi
			}
			return lo + (hi-lo)*(target-cum)/n
		}
		cum += n
		lo = hi
	}
	return lo
}

// snapshotCounts returns per-bucket (non-cumulative) counts; the last entry
// is the +Inf bucket.
func (h *Histogram) snapshotCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}
