package obs

import "log/slog"

// ProgressEvent is one training-progress report. Every iterative model
// family emits one event per outer iteration (Gibbs sweep for lda/bpmf,
// epoch for lstm/gru/sgns) when a Progress hook is installed in its Config.
type ProgressEvent struct {
	Model        string  // family name: "lda", "lstm", "gru", "bpmf", "sgns"
	Iteration    int     // 1-based iteration just completed
	Total        int     // total planned iterations
	Loss         float64 // family-specific: LDA in-sample log-likelihood, lstm/gru mean per-token NLL, bpmf train RMSE, sgns mean pair NLL
	TokensPerSec float64 // training throughput over the iteration (tokens, ratings or pairs per second)
}

// Progress is the per-iteration training callback carried by model Configs.
// A nil hook (the default) is never invoked and skips every hook-only
// computation, so training is bit-identical with and without instrumentation.
type Progress func(ProgressEvent)

// SlogProgress returns a Progress hook that logs one structured line per
// iteration through l — the -progress flag of the cmd/ binaries.
func SlogProgress(l *slog.Logger) Progress {
	return func(ev ProgressEvent) {
		l.Info("progress",
			"model", ev.Model,
			"iter", ev.Iteration,
			"total", ev.Total,
			"loss", ev.Loss,
			"tokens_per_sec", ev.TokensPerSec,
		)
	}
}
