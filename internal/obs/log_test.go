package obs

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// failWriter returns a fixed error so Handle's error propagation is visible.
type failWriter struct{ err error }

func (f failWriter) Write([]byte) (int, error) { return 0, f.err }

func TestCLILoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	h := NewCLILogger(&buf, "x", false).Handler()
	if h.Enabled(context.Background(), slog.LevelDebug) {
		t.Fatal("debug enabled without verbose")
	}
	for _, l := range []slog.Level{slog.LevelInfo, slog.LevelWarn, slog.LevelError} {
		if !h.Enabled(context.Background(), l) {
			t.Fatalf("level %v disabled", l)
		}
	}
	if !NewCLILogger(&buf, "x", true).Handler().Enabled(context.Background(), slog.LevelDebug) {
		t.Fatal("debug disabled with verbose")
	}
}

func TestCLILoggerNoPrefix(t *testing.T) {
	var buf bytes.Buffer
	NewCLILogger(&buf, "", false).Info("bare")
	if got := buf.String(); got != "bare\n" {
		t.Fatalf("line %q, want %q", got, "bare\n")
	}
}

func TestCLILoggerValueKinds(t *testing.T) {
	var buf bytes.Buffer
	logger := NewCLILogger(&buf, "k", false)
	logger.Info("kinds",
		"u", uint64(18446744073709551615),
		"b", true,
		"f", 0.125,
		"neg", -42,
		"d", 1500*time.Millisecond, // default kind, fmt.Sprint
	)
	got := buf.String()
	want := "k: kinds u=18446744073709551615 b=true f=0.125 neg=-42 d=1.5s\n"
	if got != want {
		t.Fatalf("line %q, want %q", got, want)
	}

	buf.Reset()
	logger.Info("floats", "nan", math.NaN(), "inf", math.Inf(1))
	if got := buf.String(); got != "k: floats nan=NaN inf=+Inf\n" {
		t.Fatalf("float specials %q", got)
	}
}

func TestCLILoggerQuoting(t *testing.T) {
	var buf bytes.Buffer
	logger := NewCLILogger(&buf, "q", false)
	logger.Info("quoting",
		"space", "a b",
		"eq", "a=b",
		"quote", `a"b`,
		"ctl", "a\nb",
		"plain", "a-b_c/d",
	)
	got := buf.String()
	want := "q: quoting space=\"a b\" eq=\"a=b\" quote=\"a\\\"b\" ctl=\"a\\nb\" plain=a-b_c/d\n"
	if got != want {
		t.Fatalf("line %q, want %q", got, want)
	}
}

func TestCLILoggerGroups(t *testing.T) {
	var buf bytes.Buffer
	logger := NewCLILogger(&buf, "g", false)

	// Inline slog.Group values get dotted keys; an empty-key group inlines
	// its members without a prefix (the slog convention).
	logger.Info("grouped",
		slog.Group("req", slog.String("path", "/v1/similar/3"), slog.Int("status", 200)),
		slog.Group("", slog.String("flat", "yes")),
	)
	got := buf.String()
	want := "g: grouped req.path=/v1/similar/3 req.status=200 flat=yes\n"
	if got != want {
		t.Fatalf("line %q, want %q", got, want)
	}

	// Nested WithGroup prefixes stack, and WithGroup("") is a no-op.
	buf.Reset()
	logger.WithGroup("a").WithGroup("").WithGroup("b").Info("deep", "k", 1)
	if got, want := buf.String(), "g: deep a.b.k=1\n"; got != want {
		t.Fatalf("nested groups %q, want %q", got, want)
	}

	// WithAttrs snapshots the current group; attrs added later on a derived
	// logger must not retroactively change the earlier prefix.
	buf.Reset()
	base := NewCLILogger(&buf, "g", false).With("v", 1)
	base.WithGroup("sub").Info("mix", "k", 2)
	if got, want := buf.String(), "g: mix v=1 sub.k=2\n"; got != want {
		t.Fatalf("with+group %q, want %q", got, want)
	}
}

type valuer struct{}

func (valuer) LogValue() slog.Value { return slog.StringValue("resolved") }

func TestCLILoggerResolvesLogValuer(t *testing.T) {
	var buf bytes.Buffer
	NewCLILogger(&buf, "r", false).Info("v", "x", valuer{})
	if got, want := buf.String(), "r: v x=resolved\n"; got != want {
		t.Fatalf("LogValuer %q, want %q", got, want)
	}
}

func TestCLILoggerWriteErrorPropagates(t *testing.T) {
	boom := errors.New("disk full")
	h := NewCLILogger(failWriter{err: boom}, "e", false).Handler()
	var rec slog.Record
	rec = slog.NewRecord(time.Time{}, slog.LevelInfo, "msg", 0)
	if err := h.Handle(context.Background(), rec); !errors.Is(err, boom) {
		t.Fatalf("Handle error = %v, want %v", err, boom)
	}
}

func TestCLILoggerConcurrentLines(t *testing.T) {
	var buf bytes.Buffer
	logger := NewCLILogger(&buf, "c", false)
	const lines = 64
	var wg sync.WaitGroup
	wg.Add(lines)
	for i := 0; i < lines; i++ {
		go func(i int) {
			defer wg.Done()
			logger.Info("line", "i", i)
		}(i)
	}
	wg.Wait()
	got := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(got) != lines {
		t.Fatalf("wrote %d lines, want %d", len(got), lines)
	}
	for _, line := range got {
		if !strings.HasPrefix(line, "c: line i=") {
			t.Fatalf("interleaved line %q", line)
		}
	}
}

func TestSlogProgressAllFields(t *testing.T) {
	var buf bytes.Buffer
	p := SlogProgress(NewCLILogger(&buf, "train", false))
	p(ProgressEvent{Model: "gru", Iteration: 1, Total: 14, Loss: 2.5, TokensPerSec: 1234.5})
	got := buf.String()
	want := "train: progress model=gru iter=1 total=14 loss=2.5 tokens_per_sec=1234.5\n"
	if got != want {
		t.Fatalf("progress line %q, want %q", got, want)
	}

	// NaN loss (e.g. an epoch with zero tokens) must not corrupt the line.
	buf.Reset()
	p(ProgressEvent{Model: "lstm", Iteration: 2, Total: 3, Loss: math.NaN(), TokensPerSec: math.Inf(1)})
	if got := buf.String(); !strings.Contains(got, "loss=NaN") || !strings.Contains(got, "tokens_per_sec=+Inf") {
		t.Fatalf("special-value progress line %q", got)
	}
}
