package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes every metric in Prometheus text exposition format
// (version 0.0.4), sorted by metric name so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	type entry struct {
		name string
		c    *Counter
		g    *Gauge
		h    *Histogram
		help string
	}
	r.mu.RLock()
	entries := make([]entry, 0, len(r.help))
	for name, c := range r.counters {
		entries = append(entries, entry{name: name, c: c, help: r.help[name]})
	}
	for name, g := range r.gauges {
		entries = append(entries, entry{name: name, g: g, help: r.help[name]})
	}
	for name, h := range r.hists {
		entries = append(entries, entry{name: name, h: h, help: r.help[name]})
	}
	r.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })

	bw := bufio.NewWriter(w)
	for _, e := range entries {
		if e.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", e.name, escapeHelp(e.help))
		}
		switch {
		case e.c != nil:
			fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", e.name, e.name, e.c.Value())
		case e.g != nil:
			fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", e.name, e.name, formatFloat(e.g.Value()))
		case e.h != nil:
			fmt.Fprintf(bw, "# TYPE %s histogram\n", e.name)
			counts := e.h.snapshotCounts()
			var cum uint64
			for i, b := range e.h.bounds {
				cum += counts[i]
				fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", e.name, formatFloat(b), cum)
			}
			cum += counts[len(counts)-1]
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", e.name, cum)
			fmt.Fprintf(bw, "%s_sum %s\n", e.name, formatFloat(e.h.Sum()))
			fmt.Fprintf(bw, "%s_count %d\n", e.name, e.h.Count())
		}
	}
	return bw.Flush()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// HistogramSnapshot is the JSON-friendly view of one histogram.
type HistogramSnapshot struct {
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"` // upper bounds; the final implicit bucket is +Inf
	Counts []uint64  `json:"counts"` // per-bucket counts, len(bounds)+1
	P50    float64   `json:"p50"`
	P90    float64   `json:"p90"`
	P99    float64   `json:"p99"`
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the current value of every metric.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()
	for name, c := range counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range hists {
		s.Histograms[name] = HistogramSnapshot{
			Count:  h.Count(),
			Sum:    h.Sum(),
			Bounds: append([]float64(nil), h.bounds...),
			Counts: h.snapshotCounts(),
			P50:    h.Quantile(0.50),
			P90:    h.Quantile(0.90),
			P99:    h.Quantile(0.99),
		}
	}
	return s
}

// WriteJSON writes an indented JSON snapshot of the registry.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteJSONFile dumps the JSON snapshot to path (the machine-readable trace
// cmd/ibtrain and cmd/ibeval leave next to their outputs). The write is
// atomic — temp file, fsync, rename — so a crash mid-dump never leaves a
// truncated snapshot. This duplicates internal/snapshot.Atomic because that
// package depends on obs for its counters and cannot be imported here.
func (r *Registry) WriteJSONFile(path string) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = r.WriteJSON(f); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
