package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes every metric in Prometheus text exposition format
// (version 0.0.4), sorted by metric name so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	type entry struct {
		name string
		c    *Counter
		g    *Gauge
		h    *Histogram
		help string
	}
	r.mu.RLock()
	entries := make([]entry, 0, len(r.help))
	for name, c := range r.counters {
		entries = append(entries, entry{name: name, c: c, help: r.help[name]})
	}
	for name, g := range r.gauges {
		entries = append(entries, entry{name: name, g: g, help: r.help[name]})
	}
	for name, h := range r.hists {
		entries = append(entries, entry{name: name, h: h, help: r.help[name]})
	}
	r.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })

	bw := bufio.NewWriter(w)
	for _, e := range entries {
		if e.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", e.name, escapeHelp(e.help))
		}
		switch {
		case e.c != nil:
			fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", e.name, e.name, e.c.Value())
		case e.g != nil:
			fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", e.name, e.name, formatFloat(e.g.Value()))
		case e.h != nil:
			fmt.Fprintf(bw, "# TYPE %s histogram\n", e.name)
			counts := e.h.snapshotCounts()
			exemplars := e.h.snapshotExemplars()
			var cum uint64
			for i, b := range e.h.bounds {
				cum += counts[i]
				fmt.Fprintf(bw, "%s_bucket{le=%q} %d", e.name, formatFloat(b), cum)
				writeExemplar(bw, exemplars[i])
				bw.WriteByte('\n')
			}
			cum += counts[len(counts)-1]
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d", e.name, cum)
			writeExemplar(bw, exemplars[len(exemplars)-1])
			bw.WriteByte('\n')
			fmt.Fprintf(bw, "%s_sum %s\n", e.name, formatFloat(e.h.Sum()))
			fmt.Fprintf(bw, "%s_count %d\n", e.name, e.h.Count())
		}
	}
	return bw.Flush()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// writeExemplar appends an OpenMetrics exemplar annotation to a bucket line:
// `... 42 # {trace_id="<id>"} <value> <unix-ts>`. Buckets with no traced
// observation get no annotation, so output with tracing off is byte-identical
// to the pre-exemplar format.
func writeExemplar(bw *bufio.Writer, ex *Exemplar) {
	if ex == nil {
		return
	}
	fmt.Fprintf(bw, " # {trace_id=%q} %s %s",
		ex.TraceID, formatFloat(ex.Value), strconv.FormatFloat(ex.UnixSec, 'f', 3, 64))
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// HistogramSnapshot is the JSON-friendly view of one histogram.
type HistogramSnapshot struct {
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"` // upper bounds; the final implicit bucket is +Inf
	Counts []uint64  `json:"counts"` // per-bucket counts, len(bounds)+1
	P50    float64   `json:"p50"`
	P90    float64   `json:"p90"`
	P99    float64   `json:"p99"`
	// Exemplars maps a bucket's upper bound (formatted like the Prometheus
	// le label, "+Inf" for the overflow bucket) to the most recent traced
	// observation that landed in it. Omitted entirely when no traced
	// observation has been recorded, keeping pre-exemplar snapshots
	// byte-identical.
	Exemplars map[string]Exemplar `json:"exemplars,omitempty"`
}

// WindowSnapshot is the JSON-friendly view of one windowed histogram: counts
// and quantiles over the sliding window only.
type WindowSnapshot struct {
	Windows int     `json:"windows"` // ring size K
	Count   uint64  `json:"count"`
	Sum     float64 `json:"sum"`
	P50     float64 `json:"p50"`
	P90     float64 `json:"p90"`
	P99     float64 `json:"p99"`
	P999    float64 `json:"p999"`
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Windows    map[string]WindowSnapshot    `json:"windows,omitempty"`
}

// Snapshot copies the current value of every metric.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	windows := make(map[string]*WindowedHistogram, len(r.windows))
	for k, v := range r.windows {
		windows[k] = v
	}
	r.mu.RUnlock()
	for name, c := range counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range hists {
		hs := HistogramSnapshot{
			Count:  h.Count(),
			Sum:    h.Sum(),
			Bounds: append([]float64(nil), h.bounds...),
			Counts: h.snapshotCounts(),
			P50:    h.Quantile(0.50),
			P90:    h.Quantile(0.90),
			P99:    h.Quantile(0.99),
		}
		for i, ex := range h.snapshotExemplars() {
			if ex == nil {
				continue
			}
			if hs.Exemplars == nil {
				hs.Exemplars = make(map[string]Exemplar)
			}
			le := "+Inf"
			if i < len(h.bounds) {
				le = formatFloat(h.bounds[i])
			}
			hs.Exemplars[le] = *ex
		}
		s.Histograms[name] = hs
	}
	for name, w := range windows {
		if s.Windows == nil {
			s.Windows = make(map[string]WindowSnapshot)
		}
		s.Windows[name] = WindowSnapshot{
			Windows: w.Windows(),
			Count:   w.Count(),
			Sum:     w.Sum(),
			P50:     w.Quantile(0.50),
			P90:     w.Quantile(0.90),
			P99:     w.Quantile(0.99),
			P999:    w.Quantile(0.999),
		}
	}
	return s
}

// WriteJSON writes an indented JSON snapshot of the registry.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteJSONFile dumps the JSON snapshot to path (the machine-readable trace
// cmd/ibtrain and cmd/ibeval leave next to their outputs). The write is
// atomic — temp file, fsync, rename — so a crash mid-dump never leaves a
// truncated snapshot. This duplicates internal/snapshot.Atomic because that
// package depends on obs for its counters and cannot be imported here.
func (r *Registry) WriteJSONFile(path string) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = r.WriteJSON(f); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
