package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("requests_total", "ignored"); again != c {
		t.Fatal("second Counter call returned a different instance")
	}
	g := r.Gauge("temperature", "degrees")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestRegistryPanicsOnKindCollision(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering m as a gauge after counter did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestRegistryPanicsOnInvalidName(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	r.Counter("bad name!", "")
}

func TestValidAndSanitizedMetricNames(t *testing.T) {
	valid := []string{"a", "_x", "a_b:c", "lda_train_iterations_total", "A9"}
	for _, n := range valid {
		if !ValidMetricName(n) {
			t.Errorf("ValidMetricName(%q) = false, want true", n)
		}
	}
	invalid := []string{"", "9a", "a-b", "a.b", "a b"}
	for _, n := range invalid {
		if ValidMetricName(n) {
			t.Errorf("ValidMetricName(%q) = true, want false", n)
		}
	}
	cases := map[string]string{
		"lda.train":       "lda_train",
		"lda.train.sweep": "lda_train_sweep",
		"ok_name":         "ok_name",
		"9lives":          "_lives",
	}
	for in, want := range cases {
		if got := MetricName(in); got != want {
			t.Errorf("MetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestConcurrentHammering exercises every metric kind from many goroutines;
// run with -race to validate the lock-free update paths.
func TestConcurrentHammering(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("hammer_total", "")
			g := r.Gauge("hammer_gauge", "")
			h := r.Histogram("hammer_hist", "", []float64{0.25, 0.5, 0.75})
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 100)
				sp := r.StartSpan(fmt.Sprintf("hammer.worker%d", w))
				sp.End()
				if i%500 == 0 {
					r.Snapshot()
					var buf bytes.Buffer
					if err := r.WritePrometheus(&buf); err != nil {
						t.Errorf("WritePrometheus: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("hammer_total", "").Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := r.Gauge("hammer_gauge", "").Value(); got != workers*iters {
		t.Fatalf("gauge = %v, want %d", got, workers*iters)
	}
	if got := r.Histogram("hammer_hist", "", nil).Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5, 10})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v) / 10) // 0.1 .. 10.0 uniform
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	if got, want := h.Sum(), 505.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// Median of uniform(0.1, 10) is ~5; interpolation within [2,5] must land
	// in that bucket's range.
	p50 := h.Quantile(0.5)
	if p50 < 2 || p50 > 5.001 {
		t.Fatalf("p50 = %v, want within (2, 5]", p50)
	}
	// Out-of-range q clamps rather than panics.
	if got := h.Quantile(-1); got < 0 {
		t.Fatalf("Quantile(-1) = %v, want >= 0", got)
	}
	if got := h.Quantile(2); got > 10 {
		t.Fatalf("Quantile(2) = %v, want <= last bound", got)
	}
	// Values above the last bound land in +Inf and clamp to the last bound.
	h2 := newHistogram([]float64{1})
	h2.Observe(100)
	if got := h2.Quantile(0.99); got != 1 {
		t.Fatalf("overflow quantile = %v, want clamp to 1", got)
	}
}

func TestHistogramPanicsOnUnsortedBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing buckets did not panic")
		}
	}()
	newHistogram([]float64{1, 1})
}

// TestPrometheusGolden locks the exposition format byte-for-byte.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("beta_total", "counts beta\nwith newline").Add(7)
	r.Gauge("alpha_ratio", "a ratio").Set(0.25)
	h := r.Histogram("gamma_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP alpha_ratio a ratio
# TYPE alpha_ratio gauge
alpha_ratio 0.25
# HELP beta_total counts beta\nwith newline
# TYPE beta_total counter
beta_total 7
# HELP gamma_seconds latency
# TYPE gamma_seconds histogram
gamma_seconds_bucket{le="0.1"} 1
gamma_seconds_bucket{le="1"} 2
gamma_seconds_bucket{le="+Inf"} 3
gamma_seconds_sum 3.55
gamma_seconds_count 3
`
	if got := buf.String(); got != want {
		t.Fatalf("Prometheus output mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestSpanNesting(t *testing.T) {
	r := NewRegistry()
	parent := r.StartSpan("lda.train")
	child := parent.Child("sweep")
	if !parent.Active() || !child.Active() {
		t.Fatal("spans on an enabled registry must be active")
	}
	time.Sleep(time.Millisecond)
	if d := child.End(); d <= 0 {
		t.Fatalf("child duration = %v, want > 0", d)
	}
	if d := parent.End(); d <= 0 {
		t.Fatalf("parent duration = %v, want > 0", d)
	}
	snap := r.Snapshot()
	for _, name := range []string{"lda_train_seconds", "lda_train_sweep_seconds"} {
		hs, ok := snap.Histograms[name]
		if !ok {
			t.Fatalf("histogram %s missing from snapshot; have %v", name, snap.Histograms)
		}
		if hs.Count != 1 {
			t.Fatalf("%s count = %d, want 1", name, hs.Count)
		}
	}
}

func TestDisabledSpansRecordNothing(t *testing.T) {
	r := NewRegistry()
	r.SetSpansEnabled(false)
	sp := r.StartSpan("quiet.path")
	if sp.Active() {
		t.Fatal("span active despite spans disabled")
	}
	if child := sp.Child("inner"); child.Active() {
		t.Fatal("child of inactive span is active")
	}
	if d := sp.End(); d != 0 {
		t.Fatalf("inactive span End = %v, want 0", d)
	}
	if snap := r.Snapshot(); len(snap.Histograms) != 0 {
		t.Fatalf("disabled spans created histograms: %v", snap.Histograms)
	}
	r.SetSpansEnabled(true)
	if !r.SpansEnabled() {
		t.Fatal("SpansEnabled = false after re-enable")
	}
}

func TestSnapshotAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(3)
	r.Gauge("g", "").Set(1.5)
	r.Histogram("h_seconds", "", []float64{1}).Observe(0.5)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if snap.Counters["c_total"] != 3 {
		t.Fatalf("counters = %v, want c_total=3", snap.Counters)
	}
	if snap.Gauges["g"] != 1.5 {
		t.Fatalf("gauges = %v, want g=1.5", snap.Gauges)
	}
	hs := snap.Histograms["h_seconds"]
	if hs.Count != 1 || hs.Sum != 0.5 {
		t.Fatalf("histogram snapshot = %+v, want count 1 sum 0.5", hs)
	}
	if len(hs.Counts) != len(hs.Bounds)+1 {
		t.Fatalf("counts len %d, want bounds len %d + 1", len(hs.Counts), len(hs.Bounds))
	}
}

func TestDebugServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("debug_test_total", "").Inc()
	srv, err := StartDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.Contains(body, "debug_test_total 1") {
		t.Fatalf("/metrics body missing counter:\n%s", body)
	}
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Fatalf("/metrics content type = %q, want Prometheus text", ctype)
	}
	body, _ = get("/metrics.json")
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json is not a Snapshot: %v", err)
	}
	body, _ = get("/debug/vars")
	if !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars missing expvar memstats:\n%.200s", body)
	}
	body, _ = get("/debug/pprof/cmdline")
	if body == "" {
		t.Fatal("/debug/pprof/cmdline returned empty body")
	}
}

func TestCLILoggerFormat(t *testing.T) {
	var buf bytes.Buffer
	logger := NewCLILogger(&buf, "ibtest", false)
	logger.Info("model written", "path", "out.gob", "topics", 3, "perplexity", 8.5)
	logger.Debug("hidden unless verbose")
	got := buf.String()
	want := "ibtest: model written path=out.gob topics=3 perplexity=8.5\n"
	if got != want {
		t.Fatalf("log line = %q, want %q", got, want)
	}

	buf.Reset()
	verbose := NewCLILogger(&buf, "ibtest", true)
	verbose.Debug("now visible", "note", "two words")
	if got, want := buf.String(), "ibtest: now visible note=\"two words\"\n"; got != want {
		t.Fatalf("verbose log line = %q, want %q", got, want)
	}

	buf.Reset()
	derived := NewCLILogger(&buf, "ibtest", false).With("run", 7).WithGroup("lda")
	derived.Info("sweep", "iter", 2)
	if got, want := buf.String(), "ibtest: sweep run=7 lda.iter=2\n"; got != want {
		t.Fatalf("derived log line = %q, want %q", got, want)
	}
}

func TestSlogProgress(t *testing.T) {
	var buf bytes.Buffer
	p := SlogProgress(NewCLILogger(&buf, "train", false))
	p(ProgressEvent{Model: "lda", Iteration: 3, Total: 10, Loss: -123.5, TokensPerSec: 1000})
	got := buf.String()
	for _, frag := range []string{"progress", "model=lda", "iter=3", "total=10"} {
		if !strings.Contains(got, frag) {
			t.Fatalf("progress line %q missing %q", got, frag)
		}
	}
}
