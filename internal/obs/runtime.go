package obs

import (
	"runtime"
	"sync"
	"time"
)

// GCPauseBuckets span the realistic stop-the-world pause range: 10us to
// 500ms. Sub-bucket resolution matters here because a GC pause sits directly
// on the serving tail — a 5ms pause is invisible in a p50 but is the p999.
var GCPauseBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
}

// StartRuntimeSampler starts a goroutine that samples Go runtime health into
// r every interval (interval <= 0 selects 10s) as the go_* series:
//
//	go_goroutines            gauge      live goroutines
//	go_heap_inuse_bytes      gauge      bytes in in-use heap spans
//	go_heap_alloc_bytes      gauge      bytes of live allocated heap objects
//	go_sys_bytes             gauge      total bytes obtained from the OS
//	go_gc_runs_total         counter    completed GC cycles since sampling began
//	go_gc_pause_seconds      histogram  stop-the-world pause durations
//	go_uptime_seconds        gauge      seconds since the sampler started
//
// The returned stop function is idempotent. Nothing is registered until the
// first call, so binaries that never start the sampler expose a byte-identical
// /metrics — the disabled-path discipline the serving invariance tests pin.
//
// The cost of one sample is one runtime.ReadMemStats (a brief
// stop-the-world), so intervals below ~1s are only for tests.
func StartRuntimeSampler(r *Registry, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	goroutines := r.Gauge("go_goroutines", "live goroutines")
	heapInuse := r.Gauge("go_heap_inuse_bytes", "bytes in in-use heap spans")
	heapAlloc := r.Gauge("go_heap_alloc_bytes", "bytes of live allocated heap objects")
	sysBytes := r.Gauge("go_sys_bytes", "total bytes of virtual address space obtained from the OS")
	gcRuns := r.Counter("go_gc_runs_total", "completed GC cycles observed by the runtime sampler")
	gcPause := r.Histogram("go_gc_pause_seconds", "stop-the-world GC pause durations", GCPauseBuckets)
	uptime := r.Gauge("go_uptime_seconds", "seconds since the runtime sampler started")

	started := time.Now()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	lastNumGC := ms.NumGC

	sample := func() {
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heapInuse.Set(float64(ms.HeapInuse))
		heapAlloc.Set(float64(ms.HeapAlloc))
		sysBytes.Set(float64(ms.Sys))
		uptime.Set(time.Since(started).Seconds())
		// PauseNs is a circular buffer of the last 256 pause durations,
		// indexed by GC cycle number; replay only the cycles completed since
		// the previous sample so each pause is observed exactly once.
		numGC := ms.NumGC
		if delta := numGC - lastNumGC; delta > 0 {
			gcRuns.Add(uint64(delta))
			if delta > uint32(len(ms.PauseNs)) {
				delta = uint32(len(ms.PauseNs)) // sampler outrun; older pauses are lost
			}
			for c := numGC - delta; c < numGC; c++ {
				gcPause.Observe(float64(ms.PauseNs[c%uint32(len(ms.PauseNs))]) / 1e9)
			}
			lastNumGC = numGC
		}
	}
	sample() // publish a first reading immediately so /metrics is never empty

	tick := time.NewTicker(interval)
	done := make(chan struct{})
	go func() {
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				sample()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
