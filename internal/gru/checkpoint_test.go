package gru

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/rng"
)

// ckSeqs builds a small varied corpus for checkpoint tests.
func ckSeqs(n, v int, g *rng.RNG) [][]int {
	seqs := make([][]int, n)
	for i := range seqs {
		seqs[i] = make([]int, 3+g.Intn(5))
		for j := range seqs[i] {
			seqs[i][j] = g.Intn(v)
		}
	}
	return seqs
}

func modelBytes(t *testing.T, m *Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCheckpointHookDoesNotPerturbTraining(t *testing.T) {
	seqs := ckSeqs(20, 5, rng.New(4))
	cfg := Config{V: 5, Layers: 1, Hidden: 6, Epochs: 6, Dropout: 0.2}

	plain, _, err := Train(cfg, seqs, nil, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	hooked := cfg
	calls := 0
	hooked.CheckpointEvery = 2
	hooked.Checkpoint = func(*Checkpoint) error { calls++; return nil }
	ckRun, _, err := Train(hooked, seqs, nil, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("checkpoint hook never invoked")
	}
	if !bytes.Equal(modelBytes(t, plain), modelBytes(t, ckRun)) {
		t.Fatal("gob output differs with Checkpoint hook installed")
	}
}

func TestResumeMatchesUninterruptedRun(t *testing.T) {
	seqs := ckSeqs(25, 5, rng.New(7))
	valid := ckSeqs(5, 5, rng.New(8))
	cfg := Config{V: 5, Layers: 2, Hidden: 5, Epochs: 8, Dropout: 0.1}

	straight, _, err := Train(cfg, seqs, valid, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}

	var mid *Checkpoint
	hooked := cfg
	hooked.CheckpointEvery = 3
	hooked.Checkpoint = func(ck *Checkpoint) error {
		if mid == nil {
			mid = ck
		}
		return nil
	}
	if _, _, err := Train(hooked, seqs, valid, rng.New(99)); err != nil {
		t.Fatal(err)
	}
	if mid == nil {
		t.Fatal("no checkpoint captured")
	}
	var buf bytes.Buffer
	if err := mid.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resumed, _, err := Resume(context.Background(), loaded, seqs, valid, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(modelBytes(t, straight), modelBytes(t, resumed)) {
		t.Fatal("resumed model differs from uninterrupted run")
	}
}

func TestCancellationWritesFinalCheckpoint(t *testing.T) {
	seqs := ckSeqs(20, 4, rng.New(2))
	cfg := Config{V: 4, Layers: 1, Hidden: 5, Epochs: 10}

	ctx, cancel := context.WithCancel(context.Background())
	var last *Checkpoint
	calls := 0
	cfg.CheckpointEvery = 2
	cfg.Checkpoint = func(ck *Checkpoint) error {
		last = ck
		calls++
		if calls == 1 {
			cancel()
		}
		return nil
	}
	_, _, err := TrainContext(ctx, cfg, seqs, nil, rng.New(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if calls < 2 {
		t.Fatalf("cancellation must write a final checkpoint (calls = %d)", calls)
	}
	straight, _, err := Train(Config{V: 4, Layers: 1, Hidden: 5, Epochs: 10}, seqs, nil, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	resumed, _, err := Resume(context.Background(), last, seqs, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(modelBytes(t, straight), modelBytes(t, resumed)) {
		t.Fatal("resume after cancellation differs from uninterrupted run")
	}
}

func TestCheckpointHookErrorAbortsTraining(t *testing.T) {
	seqs := ckSeqs(15, 4, rng.New(2))
	boom := errors.New("disk full")
	cfg := Config{V: 4, Layers: 1, Hidden: 4, Epochs: 6, CheckpointEvery: 2}
	cfg.Checkpoint = func(*Checkpoint) error { return boom }
	if _, _, err := Train(cfg, seqs, nil, rng.New(1)); !errors.Is(err, boom) {
		t.Fatalf("want hook error surfaced, got %v", err)
	}
}

func TestLoadCheckpointRejectsCorruptState(t *testing.T) {
	seqs := ckSeqs(15, 4, rng.New(2))
	cfg := Config{V: 4, Layers: 1, Hidden: 4, Epochs: 6, CheckpointEvery: 2}
	var mid *Checkpoint
	cfg.Checkpoint = func(ck *Checkpoint) error { mid = ck; return nil }
	if _, _, err := Train(cfg, seqs, nil, rng.New(1)); err != nil {
		t.Fatal(err)
	}

	bad := *mid
	bad.Params.Emb = mid.Params.Emb[:3]
	var buf bytes.Buffer
	if err := bad.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(&buf); err == nil {
		t.Fatal("truncated embedding tensor accepted")
	}
}
