package gru

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/trace"
)

var (
	trainEpochs = obs.Default().Counter("gru_train_epochs_total",
		"training epochs completed across all GRU runs")
	trainTokens = obs.Default().Counter("gru_train_tokens_total",
		"tokens processed by BPTT across all GRU runs")
)

// TrainStats records the learning curve.
type TrainStats struct {
	TrainLoss  []float64
	ValidPerpl []float64
}

type adam struct{ m, v []float64 }

func newAdam(n int) *adam { return &adam{m: make([]float64, n), v: make([]float64, n)} }

func (a *adam) update(param, grad []float64, lr float64, step int) {
	const (
		beta1 = 0.9
		beta2 = 0.999
		eps   = 1e-8
	)
	bc1 := 1 - math.Pow(beta1, float64(step))
	bc2 := 1 - math.Pow(beta2, float64(step))
	for i, g := range grad {
		if g == 0 {
			continue
		}
		a.m[i] = beta1*a.m[i] + (1-beta1)*g
		a.v[i] = beta2*a.v[i] + (1-beta2)*g*g
		param[i] -= lr * (a.m[i] / bc1) / (math.Sqrt(a.v[i]/bc2) + eps)
	}
}

type grads struct {
	emb    []float64
	cells  []struct{ wx, wh, b []float64 }
	wo, bo []float64
}

func newGrads(m *Model) *grads {
	g := &grads{
		emb: make([]float64, len(m.Emb.Data)),
		wo:  make([]float64, len(m.Wo.Data)),
		bo:  make([]float64, len(m.Bo)),
	}
	for range m.Cells {
		g.cells = append(g.cells, struct{ wx, wh, b []float64 }{})
	}
	for l, c := range m.Cells {
		g.cells[l].wx = make([]float64, len(c.Wx.Data))
		g.cells[l].wh = make([]float64, len(c.Wh.Data))
		g.cells[l].b = make([]float64, len(c.B))
	}
	return g
}

func (g *grads) each(fn func(xs []float64)) {
	fn(g.emb)
	fn(g.wo)
	fn(g.bo)
	for l := range g.cells {
		fn(g.cells[l].wx)
		fn(g.cells[l].wh)
		fn(g.cells[l].b)
	}
}

func (g *grads) zero() {
	g.each(func(xs []float64) {
		for i := range xs {
			xs[i] = 0
		}
	})
}

func (g *grads) globalNorm() float64 {
	var s float64
	g.each(func(xs []float64) {
		for _, v := range xs {
			s += v * v
		}
	})
	return math.Sqrt(s)
}

func (g *grads) scale(f float64) {
	g.each(func(xs []float64) {
		for i := range xs {
			xs[i] *= f
		}
	})
}

// validateSeqs range-checks every token against the vocabulary and requires
// a non-empty training corpus.
func validateSeqs(v int, train, valid [][]int) error {
	var nTokens int
	for si, seq := range train {
		for _, tok := range seq {
			if tok < 0 || tok >= v {
				return fmt.Errorf("gru: train sequence %d token %d outside [0,%d)", si, tok, v)
			}
		}
		nTokens += len(seq)
	}
	if nTokens == 0 {
		return fmt.Errorf("gru: training corpus has no tokens")
	}
	for si, seq := range valid {
		for _, tok := range seq {
			if tok < 0 || tok >= v {
				return fmt.Errorf("gru: valid sequence %d token %d outside [0,%d)", si, tok, v)
			}
		}
	}
	return nil
}

// optimizer holds the per-tensor Adam moments, keyed by tensor name
// ("emb", "wo", "bo", "wx<l>", "wh<l>", "b<l>").
type optimizer map[string]*adam

func newOptimizer(m *Model) optimizer {
	opt := optimizer{
		"emb": newAdam(len(m.Emb.Data)),
		"wo":  newAdam(len(m.Wo.Data)),
		"bo":  newAdam(len(m.Bo)),
	}
	for l, c := range m.Cells {
		opt[fmt.Sprintf("wx%d", l)] = newAdam(len(c.Wx.Data))
		opt[fmt.Sprintf("wh%d", l)] = newAdam(len(c.Wh.Data))
		opt[fmt.Sprintf("b%d", l)] = newAdam(len(c.B))
	}
	return opt
}

// Train fits a GRU language model with Adam, per-sequence updates and
// global-norm clipping (the same regime as internal/lstm with Adam).
func Train(cfg Config, train, valid [][]int, g *rng.RNG) (*Model, TrainStats, error) {
	return TrainContext(context.Background(), cfg, train, valid, g)
}

// TrainContext is Train with cooperative cancellation: ctx is checked at
// every epoch boundary, and on cancellation a final checkpoint is handed to
// cfg.Checkpoint (when set) before returning an error wrapping ctx.Err().
func TrainContext(ctx context.Context, cfg Config, train, valid [][]int, g *rng.RNG) (*Model, TrainStats, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, TrainStats{}, err
	}
	if err := validateSeqs(cfg.V, train, valid); err != nil {
		return nil, TrainStats{}, err
	}
	model := newModel(cfg, g)
	return trainLoop(ctx, cfg, model, newOptimizer(model), 0, 0, TrainStats{}, train, valid, g)
}

// Resume continues an interrupted run from a checkpoint. train and valid
// must be the same sequences the original call received; hooks supplies
// Progress/Checkpoint/CheckpointEvery for the continued run while the
// training schedule comes from the checkpoint. A resumed run draws the same
// random stream as the uninterrupted one, so the final model is
// bit-identical.
func Resume(ctx context.Context, ck *Checkpoint, train, valid [][]int, hooks Config) (*Model, TrainStats, error) {
	cfg := ck.Cfg.config()
	cfg.Progress = hooks.Progress
	cfg.Checkpoint = hooks.Checkpoint
	cfg.CheckpointEvery = hooks.CheckpointEvery
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, TrainStats{}, fmt.Errorf("gru: checkpoint carries invalid config: %w", err)
	}
	if err := ck.validate(); err != nil {
		return nil, TrainStats{}, err
	}
	if err := validateSeqs(cfg.V, train, valid); err != nil {
		return nil, TrainStats{}, err
	}
	model, err := ck.Params.model()
	if err != nil {
		return nil, TrainStats{}, err
	}
	opt := newOptimizer(model)
	if err := opt.restore(ck.Adam); err != nil {
		return nil, TrainStats{}, err
	}
	g, err := rng.FromState(ck.RNG)
	if err != nil {
		return nil, TrainStats{}, fmt.Errorf("gru: checkpoint RNG state: %w", err)
	}
	stats := TrainStats{
		TrainLoss:  append([]float64(nil), ck.TrainLoss...),
		ValidPerpl: append([]float64(nil), ck.ValidPerpl...),
	}
	return trainLoop(ctx, cfg, model, opt, ck.Epoch, ck.Step, stats, train, valid, g)
}

// trainLoop runs epochs startEpoch..Epochs-1 over the model in place.
func trainLoop(ctx context.Context, cfg Config, model *Model, opt optimizer, startEpoch, startStep int, stats TrainStats, train, valid [][]int, g *rng.RNG) (*Model, TrainStats, error) {
	gr := newGrads(model)

	sp := obs.Start("gru.train")
	// Each epoch (and each checkpoint write) becomes a child span when ctx
	// carries an active trace; spans never touch model state or the RNG
	// stream, so traced and untraced runs are bit-identical.
	traced := trace.FromContext(ctx) != nil
	checkpoint := func(ck *Checkpoint) error {
		var csp *trace.Span
		if traced {
			_, csp = trace.Start(ctx, "gru.train.checkpoint")
			csp.AttrInt("epoch", int64(ck.Epoch))
		}
		err := cfg.Checkpoint(ck)
		if err != nil {
			csp.Error(err)
		}
		csp.End()
		return err
	}
	order := make([]int, len(train))
	step := startStep
	for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			if cfg.Checkpoint != nil {
				if cerr := checkpoint(snapshotState(&cfg, model, opt, epoch, step, stats, g)); cerr != nil {
					return nil, stats, fmt.Errorf("gru: writing cancellation checkpoint: %w", cerr)
				}
			}
			return nil, stats, fmt.Errorf("gru: training interrupted after epoch %d/%d: %w", epoch, cfg.Epochs, err)
		}
		var epsp *trace.Span
		if traced {
			_, epsp = trace.Start(ctx, "gru.train.epoch")
			epsp.AttrInt("epoch", int64(epoch))
		}
		var epochStart time.Time
		if cfg.Progress != nil {
			epochStart = time.Now()
		}
		// Reset to the identity before shuffling so the visit order is a pure
		// function of the RNG state at the epoch boundary — required for
		// checkpoint resume to replay the identical sequence order.
		for i := range order {
			order[i] = i
		}
		g.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var lossSum float64
		var lossTokens int
		for _, si := range order {
			seq := train[si]
			if len(seq) == 0 {
				continue
			}
			gr.zero()
			loss := model.bptt(seq, cfg.Dropout, gr, g)
			lossSum += loss
			lossTokens += len(seq)
			if norm := gr.globalNorm(); norm > cfg.ClipNorm {
				gr.scale(cfg.ClipNorm / norm)
			}
			step++
			opt["emb"].update(model.Emb.Data, gr.emb, cfg.LearnRate, step)
			opt["wo"].update(model.Wo.Data, gr.wo, cfg.LearnRate, step)
			opt["bo"].update(model.Bo, gr.bo, cfg.LearnRate, step)
			for l := range model.Cells {
				opt[fmt.Sprintf("wx%d", l)].update(model.Cells[l].Wx.Data, gr.cells[l].wx, cfg.LearnRate, step)
				opt[fmt.Sprintf("wh%d", l)].update(model.Cells[l].Wh.Data, gr.cells[l].wh, cfg.LearnRate, step)
				opt[fmt.Sprintf("b%d", l)].update(model.Cells[l].B, gr.cells[l].b, cfg.LearnRate, step)
			}
		}
		if lossTokens > 0 {
			stats.TrainLoss = append(stats.TrainLoss, lossSum/float64(lossTokens))
		}
		if len(valid) > 0 {
			stats.ValidPerpl = append(stats.ValidPerpl, model.Perplexity(valid))
		}
		trainEpochs.Inc()
		trainTokens.Add(uint64(lossTokens))
		if cfg.Progress != nil {
			elapsed := time.Since(epochStart).Seconds()
			tps := math.Inf(1)
			if elapsed > 0 {
				tps = float64(lossTokens) / elapsed
			}
			meanNLL := math.NaN()
			if lossTokens > 0 {
				meanNLL = lossSum / float64(lossTokens)
			}
			cfg.Progress(obs.ProgressEvent{
				Model: "gru", Iteration: epoch + 1, Total: cfg.Epochs,
				Loss: meanNLL, TokensPerSec: tps,
			})
		}
		epsp.End()
		if cfg.Checkpoint != nil && cfg.CheckpointEvery > 0 &&
			(epoch+1)%cfg.CheckpointEvery == 0 && epoch+1 < cfg.Epochs {
			if err := checkpoint(snapshotState(&cfg, model, opt, epoch+1, step, stats, g)); err != nil {
				return nil, stats, fmt.Errorf("gru: checkpoint hook at epoch %d: %w", epoch+1, err)
			}
		}
	}
	sp.End()
	return model, stats, nil
}

// bptt runs forward+backward over one sequence, accumulating gradients.
func (m *Model) bptt(seq []int, p float64, gr *grads, g *rng.RNG) float64 {
	hd := m.Hidden
	T := len(seq)
	L := m.Layers
	keep := 1 - p

	inputs := make([]int, T)
	inputs[0] = m.bosToken()
	copy(inputs[1:], seq[:T-1])

	caches := make([][]stepCache, L)
	inMasks := make([][][]float64, L)
	for l := 0; l < L; l++ {
		caches[l] = make([]stepCache, T)
		inMasks[l] = make([][]float64, T)
	}
	topMasks := make([][]float64, T)

	sampleMask := func() []float64 {
		if p == 0 {
			return nil
		}
		mask := make([]float64, hd)
		for j := range mask {
			if g.Float64() < keep {
				mask[j] = 1 / keep
			}
		}
		return mask
	}
	applyMask := func(x, mask []float64) []float64 {
		if mask == nil {
			return x
		}
		out := make([]float64, len(x))
		for j := range x {
			out[j] = x[j] * mask[j]
		}
		return out
	}

	h := make([][]float64, L)
	for l := range h {
		h[l] = make([]float64, hd)
	}
	var loss float64
	dlogitsAll := make([][]float64, T)
	topH := make([][]float64, T)
	for t := 0; t < T; t++ {
		x := m.Emb.Row(inputs[t])
		for l := 0; l < L; l++ {
			inMasks[l][t] = sampleMask()
			xin := applyMask(x, inMasks[l][t])
			h[l] = m.step(l, xin, h[l], &caches[l][t])
			x = h[l]
		}
		topMasks[t] = sampleMask()
		ht := applyMask(x, topMasks[t])
		topH[t] = ht
		logits := m.Logits(ht)
		lse := mat.LogSumExp(logits)
		loss += lse - logits[seq[t]]
		dl := make([]float64, m.V)
		for j := range dl {
			dl[j] = math.Exp(logits[j] - lse)
		}
		dl[seq[t]] -= 1
		dlogitsAll[t] = dl
	}

	dhNext := make([][]float64, L)
	for l := range dhNext {
		dhNext[l] = make([]float64, hd)
	}
	daz := make([]float64, hd)
	dar := make([]float64, hd)
	dac := make([]float64, hd)
	tmp := make([]float64, hd)
	for t := T - 1; t >= 0; t-- {
		dl := dlogitsAll[t]
		for j := range dl {
			g0 := dl[j]
			wrow := gr.wo[j*hd : (j+1)*hd]
			for k := 0; k < hd; k++ {
				wrow[k] += g0 * topH[t][k]
			}
			gr.bo[j] += g0
		}
		dhTop := make([]float64, hd)
		mat.MulVecTransTo(dhTop, m.Wo, dl)
		if topMasks[t] != nil {
			for k := 0; k < hd; k++ {
				dhTop[k] *= topMasks[t][k]
			}
		}
		dFromAbove := dhTop
		for l := L - 1; l >= 0; l-- {
			cc := &caches[l][t]
			c := &m.Cells[l]
			dh := make([]float64, hd)
			for k := 0; k < hd; k++ {
				dh[k] = dFromAbove[k] + dhNext[l][k]
			}
			dhPrev := make([]float64, hd)
			for k := 0; k < hd; k++ {
				dcand := dh[k] * cc.z[k]
				dz := dh[k] * (cc.cand[k] - cc.hPrev[k])
				dhPrev[k] = dh[k] * (1 - cc.z[k])
				dac[k] = dcand * (1 - cc.cand[k]*cc.cand[k])
				daz[k] = dz * cc.z[k] * (1 - cc.z[k])
			}
			// d(rh) = Wh_candᵀ dac
			candRows := mat.FromSlice(hd, hd, c.Wh.Data[2*hd*hd:3*hd*hd])
			mat.MulVecTransTo(tmp, candRows, dac)
			for k := 0; k < hd; k++ {
				dr := tmp[k] * cc.hPrev[k]
				dhPrev[k] += tmp[k] * cc.r[k]
				dar[k] = dr * cc.r[k] * (1 - cc.r[k])
			}
			// parameter gradients
			cw := &gr.cells[l]
			for block, da := range [][]float64{daz, dar, dac} {
				hvec := cc.hPrev
				if block == 2 {
					hvec = cc.rh
				}
				for j := 0; j < hd; j++ {
					gj := da[j]
					if gj == 0 {
						continue
					}
					row := block*hd + j
					wxRow := cw.wx[row*hd : (row+1)*hd]
					whRow := cw.wh[row*hd : (row+1)*hd]
					for k := 0; k < hd; k++ {
						wxRow[k] += gj * cc.x[k]
						whRow[k] += gj * hvec[k]
					}
					cw.b[row] += gj
				}
			}
			// dx and remaining dhPrev contributions
			dx := make([]float64, hd)
			for block, da := range [][]float64{daz, dar, dac} {
				rows := mat.FromSlice(hd, hd, c.Wx.Data[block*hd*hd:(block+1)*hd*hd])
				mat.MulVecTransTo(tmp, rows, da)
				for k := 0; k < hd; k++ {
					dx[k] += tmp[k]
				}
			}
			for block, da := range [][]float64{daz, dar} {
				rows := mat.FromSlice(hd, hd, c.Wh.Data[block*hd*hd:(block+1)*hd*hd])
				mat.MulVecTransTo(tmp, rows, da)
				for k := 0; k < hd; k++ {
					dhPrev[k] += tmp[k]
				}
			}
			dhNext[l] = dhPrev
			if inMasks[l][t] != nil {
				for k := 0; k < hd; k++ {
					dx[k] *= inMasks[l][t][k]
				}
			}
			dFromAbove = dx
		}
		row := gr.emb[inputs[t]*hd : (inputs[t]+1)*hd]
		for k := 0; k < hd; k++ {
			row[k] += dFromAbove[k]
		}
	}
	return loss
}
