package gru

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{V: 0, Layers: 1, Hidden: 4},
		{V: 5, Layers: 0, Hidden: 4},
		{V: 5, Layers: 4, Hidden: 4},
		{V: 5, Layers: 1, Hidden: 0},
		{V: 5, Layers: 1, Hidden: 4, Dropout: 1},
	}
	for i, cfg := range bad {
		if _, _, err := Train(cfg, [][]int{{0, 1}}, nil, rng.New(1)); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
	if _, _, err := Train(Config{V: 3, Layers: 1, Hidden: 4}, [][]int{{9}}, nil, rng.New(1)); err == nil {
		t.Fatal("bad token accepted")
	}
	if _, _, err := Train(Config{V: 3, Layers: 1, Hidden: 4}, [][]int{{}}, nil, rng.New(1)); err == nil {
		t.Fatal("empty corpus accepted")
	}
}

// TestGradientCheck verifies the hand-written GRU backward pass against
// centered finite differences.
func TestGradientCheck(t *testing.T) {
	cfg := Config{V: 4, Layers: 2, Hidden: 3, Epochs: 1, InitScale: 0.3}
	cfg.fillDefaults()
	g := rng.New(7)
	m := newModel(cfg, g)
	seq := []int{1, 3, 0, 2, 2}

	gr := newGrads(m)
	gr.zero()
	m.bptt(seq, 0, gr, g)

	lossOf := func() float64 {
		gr2 := newGrads(m)
		return m.bptt(seq, 0, gr2, g)
	}
	const eps = 1e-6
	check := func(name string, params, grads []float64) {
		for _, idx := range []int{0, len(params) / 2, len(params) - 1} {
			orig := params[idx]
			params[idx] = orig + eps
			lp := lossOf()
			params[idx] = orig - eps
			lm := lossOf()
			params[idx] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := grads[idx]
			denom := math.Max(1e-4, math.Abs(numeric)+math.Abs(analytic))
			if math.Abs(numeric-analytic)/denom > 2e-3 {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", name, idx, analytic, numeric)
			}
		}
	}
	check("emb", m.Emb.Data, gr.emb)
	check("wo", m.Wo.Data, gr.wo)
	check("bo", m.Bo, gr.bo)
	for l := 0; l < cfg.Layers; l++ {
		check("wx", m.Cells[l].Wx.Data, gr.cells[l].wx)
		check("wh", m.Cells[l].Wh.Data, gr.cells[l].wh)
		check("b", m.Cells[l].B, gr.cells[l].b)
	}
}

func TestLearnsDeterministicSequence(t *testing.T) {
	seqs := make([][]int, 60)
	for i := range seqs {
		seqs[i] = []int{0, 1, 2, 3}
	}
	m, stats, err := Train(Config{V: 4, Layers: 1, Hidden: 12, Epochs: 10, LearnRate: 1e-2}, seqs, nil, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if p := m.Perplexity(seqs); p > 1.4 {
		t.Fatalf("perplexity = %v on deterministic data", p)
	}
	if mat.ArgMax(m.NextDist([]int{0, 1})) != 2 {
		t.Fatal("alternation not learned")
	}
	if stats.TrainLoss[len(stats.TrainLoss)-1] >= stats.TrainLoss[0] {
		t.Fatal("loss did not decrease")
	}
}

func TestNextDistIsDistribution(t *testing.T) {
	seqs := [][]int{{0, 1, 2, 3, 4}, {4, 3, 2, 1, 0}}
	m, _, err := Train(Config{V: 5, Layers: 2, Hidden: 6, Epochs: 2}, seqs, nil, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	for _, hist := range [][]int{nil, {0}, {0, 1, 2}} {
		d := m.NextDist(hist)
		var s float64
		for _, p := range d {
			if p < 0 || p > 1 {
				t.Fatalf("bad probability %v", p)
			}
			s += p
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("NextDist(%v) sums to %v", hist, s)
		}
	}
}

func TestDropoutTrainingStable(t *testing.T) {
	seqs := make([][]int, 30)
	for i := range seqs {
		seqs[i] = []int{0, 1, 2, 3}
	}
	m, _, err := Train(Config{V: 4, Layers: 2, Hidden: 8, Epochs: 4, Dropout: 0.4, LearnRate: 1e-2}, seqs, nil, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if p := m.Perplexity(seqs); p > 3 || math.IsNaN(p) {
		t.Fatalf("dropout training diverged: %v", p)
	}
}

func TestParameterCountBelowLSTM(t *testing.T) {
	cfg := Config{V: 38, Layers: 1, Hidden: 100, Epochs: 1}
	cfg.fillDefaults()
	m := newModel(cfg, rng.New(1))
	// GRU recurrent block: 3/4 of the LSTM's 8H² ≈ 60000 + embeddings.
	lstmCellParams := 8*100*100 + 4*100
	gruCellParams := 6*100*100 + 3*100
	if got := m.ParameterCount(); got >= lstmCellParams+39*100+38*100+38 {
		t.Fatalf("GRU parameter count %d not below LSTM equivalent", got)
	}
	wantCell := gruCellParams
	got := m.ParameterCount() - len(m.Emb.Data) - len(m.Wo.Data) - len(m.Bo)
	if got != wantCell {
		t.Fatalf("cell parameters = %d, want %d", got, wantCell)
	}
}

func TestDeterministicTraining(t *testing.T) {
	seqs := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}}
	m1, _, err := Train(Config{V: 3, Layers: 1, Hidden: 4, Epochs: 2}, seqs, nil, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := Train(Config{V: 3, Layers: 1, Hidden: 4, Epochs: 2}, seqs, nil, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(m1.Emb, m2.Emb, 0) {
		t.Fatal("training not deterministic")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	seqs := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}}
	m, _, err := Train(Config{V: 4, Layers: 2, Hidden: 6, Epochs: 2}, seqs, nil, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, hist := range [][]int{nil, {0}, {1, 2, 3}} {
		a, b := m.NextDist(hist), got.NextDist(hist)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-15 {
				t.Fatal("loaded model differs")
			}
		}
	}
	if _, err := Load(bytes.NewBufferString("junk")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestPerplexityEdgeCases(t *testing.T) {
	cfg := Config{V: 3, Layers: 1, Hidden: 4, InitScale: 0.01, Epochs: 1}
	cfg.fillDefaults()
	m := newModel(cfg, rng.New(17))
	if !math.IsInf(m.Perplexity(nil), 1) {
		t.Fatal("no-token perplexity should be +Inf")
	}
	if p := m.Perplexity([][]int{{0, 1, 2}}); math.Abs(p-3) > 0.3 {
		t.Fatalf("untrained perplexity = %v, want ~3", p)
	}
}
