package gru

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/rng"
	"repro/internal/snapshot"
)

// AdamState is the serialized first/second moment vectors of one tensor's
// Adam optimizer.
type AdamState struct {
	M, V []float64
}

// Checkpoint is a complete, self-owned snapshot of a GRU training run at an
// epoch boundary: parameters, optimizer moments, learning curves and RNG
// state. Resume continues from it to a model bit-identical to the
// uninterrupted run.
type Checkpoint struct {
	Cfg        ConfigState
	Epoch      int // completed epochs; training resumes at this epoch
	Step       int // global Adam step counter
	Params     gobModel
	Adam       map[string]AdamState
	TrainLoss  []float64
	ValidPerpl []float64
	RNG        [4]uint64
}

// snapshotState deep-copies all mutable training state into a Checkpoint.
// It draws no random numbers, so hooked runs train bit-identically.
func snapshotState(cfg *Config, m *Model, opt optimizer, epoch, step int, stats TrainStats, g *rng.RNG) *Checkpoint {
	ck := &Checkpoint{
		Cfg:        cfg.state(),
		Epoch:      epoch,
		Step:       step,
		Params:     m.gobCopy(),
		Adam:       make(map[string]AdamState, len(opt)),
		TrainLoss:  append([]float64(nil), stats.TrainLoss...),
		ValidPerpl: append([]float64(nil), stats.ValidPerpl...),
		RNG:        g.State(),
	}
	for k, a := range opt {
		ck.Adam[k] = AdamState{
			M: append([]float64(nil), a.m...),
			V: append([]float64(nil), a.v...),
		}
	}
	return ck
}

// restore copies saved Adam moments into a freshly built optimizer,
// rejecting missing or misshapen tensors.
func (opt optimizer) restore(saved map[string]AdamState) error {
	if len(saved) != len(opt) {
		return fmt.Errorf("gru: checkpoint has %d optimizer tensors, model needs %d", len(saved), len(opt))
	}
	for k, a := range opt {
		s, ok := saved[k]
		if !ok {
			return fmt.Errorf("gru: checkpoint missing optimizer state for %q", k)
		}
		if len(s.M) != len(a.m) || len(s.V) != len(a.v) {
			return fmt.Errorf("gru: optimizer state %q has wrong shape", k)
		}
		copy(a.m, s.M)
		copy(a.v, s.V)
	}
	return nil
}

func (ck *Checkpoint) validate() error {
	if ck.Epoch < 0 || ck.Epoch > ck.Cfg.Epochs {
		return fmt.Errorf("gru: checkpoint epoch %d outside [0,%d]", ck.Epoch, ck.Cfg.Epochs)
	}
	if ck.Step < 0 {
		return fmt.Errorf("gru: checkpoint step %d is negative", ck.Step)
	}
	if ck.Params.V != ck.Cfg.V || ck.Params.Layers != ck.Cfg.Layers || ck.Params.Hidden != ck.Cfg.Hidden {
		return fmt.Errorf("gru: checkpoint parameters (%d/%d/%d) do not match its config (%d/%d/%d)",
			ck.Params.V, ck.Params.Layers, ck.Params.Hidden, ck.Cfg.V, ck.Cfg.Layers, ck.Cfg.Hidden)
	}
	if _, err := ck.Params.model(); err != nil {
		return err
	}
	for k, s := range ck.Adam {
		if len(s.M) != len(s.V) {
			return fmt.Errorf("gru: optimizer state %q has mismatched moment lengths", k)
		}
	}
	return nil
}

// Save serializes the checkpoint into a checksummed snapshot container of
// kind KindCheckpoint.
func (ck *Checkpoint) Save(w io.Writer) error {
	return snapshot.Write(w, KindCheckpoint, func(w io.Writer) error {
		return gob.NewEncoder(w).Encode(ck)
	})
}

// LoadCheckpoint deserializes and validates a checkpoint written by Save.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	ck := new(Checkpoint)
	if err := snapshot.Read(r, KindCheckpoint, func(r io.Reader) error {
		return gob.NewDecoder(r).Decode(ck)
	}); err != nil {
		return nil, fmt.Errorf("gru: loading checkpoint: %w", err)
	}
	if err := ck.validate(); err != nil {
		return nil, err
	}
	return ck, nil
}

// gob assigns wire type ids from a process-global registry at first encode,
// so a model encoded after a checkpoint would carry different type ids than
// one encoded in a fresh process. Pin this package's wire types in a fixed
// order at init so model files are byte-identical regardless of what else
// the process encoded first.
func init() {
	enc := gob.NewEncoder(io.Discard)
	_ = enc.Encode(gobModel{})
	_ = enc.Encode(Checkpoint{})
}
