// Package gru implements a Gated Recurrent Unit language model (Cho et al.
// 2014) with the same interface as internal/lstm. The paper's Section 3.4
// discusses GRUs as the simpler alternative to LSTM, citing the empirical
// findings of Chung et al. 2014 and Greff et al. 2016 that GRUs can win on
// some datasets but do not beat LSTM in general; this package exists to
// reproduce that comparison on install-base data (the GRU-vs-LSTM ablation
// in internal/eval).
package gru

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"

	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/snapshot"
)

// Snapshot container kinds for GRU artifacts.
const (
	KindModel      = "gru-model"
	KindCheckpoint = "gru-checkpoint"
)

// Config parameterizes model construction and training. Fields mirror
// lstm.Config.
type Config struct {
	V      int
	Layers int // 1..3
	Hidden int

	Dropout   float64
	Epochs    int
	LearnRate float64 // Adam; 0 selects 3e-3
	ClipNorm  float64 // 0 selects 5
	InitScale float64 // 0 selects 0.08

	// Progress, when non-nil, is invoked after every epoch with the mean
	// per-token training NLL and token throughput. The hook never touches
	// the training RNG, so models are bit-identical with and without it.
	Progress obs.Progress

	// Checkpoint, when non-nil, receives a full snapshot of the parameters,
	// optimizer moments and RNG state every CheckpointEvery completed
	// epochs (and once more on context cancellation). The snapshot owns
	// its memory; the hook draws no random numbers, so checkpointed runs
	// train bit-identically to unhooked runs. A hook error aborts training.
	Checkpoint func(*Checkpoint) error
	// CheckpointEvery is the epoch interval between Checkpoint calls;
	// 0 disables periodic checkpoints (a cancellation checkpoint is still
	// written when Checkpoint is set).
	CheckpointEvery int
}

// ConfigState is the hookless, serializable part of Config that checkpoints
// embed, so Resume continues under exactly the schedule the run started
// with.
type ConfigState struct {
	V, Layers, Hidden              int
	Dropout                        float64
	Epochs                         int
	LearnRate, ClipNorm, InitScale float64
}

func (c *Config) state() ConfigState {
	return ConfigState{
		V: c.V, Layers: c.Layers, Hidden: c.Hidden,
		Dropout: c.Dropout, Epochs: c.Epochs,
		LearnRate: c.LearnRate, ClipNorm: c.ClipNorm, InitScale: c.InitScale,
	}
}

func (cs ConfigState) config() Config {
	return Config{
		V: cs.V, Layers: cs.Layers, Hidden: cs.Hidden,
		Dropout: cs.Dropout, Epochs: cs.Epochs,
		LearnRate: cs.LearnRate, ClipNorm: cs.ClipNorm, InitScale: cs.InitScale,
	}
}

func (c *Config) fillDefaults() {
	if c.LearnRate == 0 {
		c.LearnRate = 3e-3
	}
	if c.ClipNorm == 0 {
		c.ClipNorm = 5
	}
	if c.InitScale == 0 {
		c.InitScale = 0.08
	}
	if c.Epochs == 0 {
		c.Epochs = 14
	}
}

func (c *Config) validate() error {
	if c.V < 1 {
		return fmt.Errorf("gru: V must be positive, got %d", c.V)
	}
	if c.Layers < 1 || c.Layers > 3 {
		return fmt.Errorf("gru: Layers must be 1..3, got %d", c.Layers)
	}
	if c.Hidden < 1 {
		return fmt.Errorf("gru: Hidden must be positive, got %d", c.Hidden)
	}
	if c.Dropout < 0 || c.Dropout >= 1 {
		return fmt.Errorf("gru: Dropout must be in [0,1), got %v", c.Dropout)
	}
	if c.Epochs < 1 {
		return fmt.Errorf("gru: Epochs must be positive, got %d", c.Epochs)
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("gru: CheckpointEvery must be >= 0, got %d", c.CheckpointEvery)
	}
	return nil
}

// cell holds one GRU layer's parameters. The 3H-stacked gate order is
// (update z, reset r, candidate h̃). Wx maps the layer input, Wh the
// recurrent state (for the candidate row block, Wh multiplies r⊙h).
type cell struct {
	Wx *mat.Matrix // 3H x H
	Wh *mat.Matrix // 3H x H
	B  []float64   // 3H
}

// Model is a trained GRU language model.
type Model struct {
	V, Layers, Hidden int

	Emb   *mat.Matrix // (V+1) x H, row V = BOS
	Cells []cell
	Wo    *mat.Matrix // V x H
	Bo    []float64
}

func (m *Model) bosToken() int { return m.V }

func newModel(cfg Config, g *rng.RNG) *Model {
	h := cfg.Hidden
	m := &Model{V: cfg.V, Layers: cfg.Layers, Hidden: h}
	uniform := func(dst []float64) {
		for i := range dst {
			dst[i] = (2*g.Float64() - 1) * cfg.InitScale
		}
	}
	m.Emb = mat.New(cfg.V+1, h)
	uniform(m.Emb.Data)
	for l := 0; l < cfg.Layers; l++ {
		c := cell{Wx: mat.New(3*h, h), Wh: mat.New(3*h, h), B: make([]float64, 3*h)}
		uniform(c.Wx.Data)
		uniform(c.Wh.Data)
		m.Cells = append(m.Cells, c)
	}
	m.Wo = mat.New(cfg.V, h)
	uniform(m.Wo.Data)
	m.Bo = make([]float64, cfg.V)
	return m
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// stepCache records one timestep of one layer for BPTT.
type stepCache struct {
	x     []float64 // layer input (after dropout)
	hPrev []float64
	z, r  []float64
	rh    []float64 // r ⊙ hPrev
	cand  []float64 // h̃
	h     []float64
}

// step advances one GRU layer by one timestep.
func (m *Model) step(l int, x, hPrev []float64, cache *stepCache) []float64 {
	hd := m.Hidden
	c := &m.Cells[l]
	// input contribution for all three gates
	pre := make([]float64, 3*hd)
	mat.MulVecTo(pre, c.Wx, x)
	// recurrent contribution: z and r rows use hPrev
	tmp := make([]float64, hd)
	for block := 0; block < 2; block++ {
		rows := mat.FromSlice(hd, hd, c.Wh.Data[block*hd*hd:(block+1)*hd*hd])
		mat.MulVecTo(tmp, rows, hPrev)
		for j := 0; j < hd; j++ {
			pre[block*hd+j] += tmp[j]
		}
	}
	z := make([]float64, hd)
	r := make([]float64, hd)
	for j := 0; j < hd; j++ {
		z[j] = sigmoid(pre[j] + c.B[j])
		r[j] = sigmoid(pre[hd+j] + c.B[hd+j])
	}
	// candidate uses r ⊙ hPrev
	rh := make([]float64, hd)
	for j := 0; j < hd; j++ {
		rh[j] = r[j] * hPrev[j]
	}
	candRows := mat.FromSlice(hd, hd, c.Wh.Data[2*hd*hd:3*hd*hd])
	mat.MulVecTo(tmp, candRows, rh)
	cand := make([]float64, hd)
	h := make([]float64, hd)
	for j := 0; j < hd; j++ {
		cand[j] = math.Tanh(pre[2*hd+j] + tmp[j] + c.B[2*hd+j])
		h[j] = (1-z[j])*hPrev[j] + z[j]*cand[j]
	}
	if cache != nil {
		cache.x = append([]float64(nil), x...)
		cache.hPrev = append([]float64(nil), hPrev...)
		cache.z, cache.r, cache.rh, cache.cand, cache.h = z, r, rh, cand, h
	}
	return h
}

// State carries per-layer hidden activations.
type State struct{ H [][]float64 }

// NewState returns the zero state.
func (m *Model) NewState() *State {
	s := &State{H: make([][]float64, m.Layers)}
	for l := range s.H {
		s.H[l] = make([]float64, m.Hidden)
	}
	return s
}

// Forward consumes one token and returns the top hidden state.
func (m *Model) Forward(token int, s *State) []float64 {
	x := m.Emb.Row(token)
	for l := 0; l < m.Layers; l++ {
		s.H[l] = m.step(l, x, s.H[l], nil)
		x = s.H[l]
	}
	return x
}

// Logits projects a hidden state to vocabulary scores.
func (m *Model) Logits(h []float64) []float64 {
	out := make([]float64, m.V)
	mat.MulVecTo(out, m.Wo, h)
	for j := range out {
		out[j] += m.Bo[j]
	}
	return out
}

// NextDist returns the next-product distribution after a history.
func (m *Model) NextDist(history []int) []float64 {
	s := m.NewState()
	h := m.Forward(m.bosToken(), s)
	for _, tok := range history {
		if tok < 0 || tok >= m.V {
			panic(fmt.Sprintf("gru: token %d outside vocabulary [0,%d)", tok, m.V))
		}
		h = m.Forward(tok, s)
	}
	logits := m.Logits(h)
	mat.Softmax(logits, logits)
	return logits
}

// Perplexity computes per-token test perplexity (teacher forcing).
func (m *Model) Perplexity(seqs [][]int) float64 {
	var logSum float64
	var n int
	for _, seq := range seqs {
		if len(seq) == 0 {
			continue
		}
		s := m.NewState()
		h := m.Forward(m.bosToken(), s)
		for _, tok := range seq {
			logits := m.Logits(h)
			logSum += logits[tok] - mat.LogSumExp(logits)
			n++
			h = m.Forward(tok, s)
		}
	}
	if n == 0 {
		return math.Inf(1)
	}
	return math.Exp(-logSum / float64(n))
}

// ParameterCount returns the number of trainable parameters (GRU cells have
// 3/4 of the LSTM's recurrent parameters, the simplification the paper's
// Section 3.4 discusses).
func (m *Model) ParameterCount() int {
	n := len(m.Emb.Data) + len(m.Wo.Data) + len(m.Bo)
	for _, c := range m.Cells {
		n += len(c.Wx.Data) + len(c.Wh.Data) + len(c.B)
	}
	return n
}

type gobCell struct {
	Wx, Wh, B []float64
}

type gobModel struct {
	V, Layers, Hidden int
	Emb               []float64
	Cells             []gobCell
	Wo, Bo            []float64
}

// gobView builds the serialized form. The slices alias the live model;
// callers that outlive the model's next mutation must deep-copy.
func (m *Model) gobView() gobModel {
	g := gobModel{V: m.V, Layers: m.Layers, Hidden: m.Hidden, Emb: m.Emb.Data, Wo: m.Wo.Data, Bo: m.Bo}
	for _, c := range m.Cells {
		g.Cells = append(g.Cells, gobCell{Wx: c.Wx.Data, Wh: c.Wh.Data, B: c.B})
	}
	return g
}

// gobCopy is gobView with every tensor deep-copied, for checkpoints taken
// while training continues to mutate the parameters.
func (m *Model) gobCopy() gobModel {
	g := m.gobView()
	g.Emb = append([]float64(nil), g.Emb...)
	g.Wo = append([]float64(nil), g.Wo...)
	g.Bo = append([]float64(nil), g.Bo...)
	for i := range g.Cells {
		g.Cells[i].Wx = append([]float64(nil), g.Cells[i].Wx...)
		g.Cells[i].Wh = append([]float64(nil), g.Cells[i].Wh...)
		g.Cells[i].B = append([]float64(nil), g.Cells[i].B...)
	}
	return g
}

// model validates tensor shapes and reassembles a Model.
func (g *gobModel) model() (*Model, error) {
	h := g.Hidden
	if g.V < 1 || h < 1 || g.Layers != len(g.Cells) ||
		len(g.Emb) != (g.V+1)*h || len(g.Wo) != g.V*h || len(g.Bo) != g.V {
		return nil, fmt.Errorf("gru: corrupt model")
	}
	m := &Model{
		V: g.V, Layers: g.Layers, Hidden: h,
		Emb: mat.FromSlice(g.V+1, h, g.Emb),
		Wo:  mat.FromSlice(g.V, h, g.Wo),
		Bo:  g.Bo,
	}
	for _, c := range g.Cells {
		if len(c.Wx) != 3*h*h || len(c.Wh) != 3*h*h || len(c.B) != 3*h {
			return nil, fmt.Errorf("gru: corrupt cell")
		}
		m.Cells = append(m.Cells, cell{
			Wx: mat.FromSlice(3*h, h, c.Wx),
			Wh: mat.FromSlice(3*h, h, c.Wh),
			B:  c.B,
		})
	}
	return m, nil
}

// Save serializes the model into a checksummed snapshot container of kind
// KindModel.
func (m *Model) Save(w io.Writer) error {
	return snapshot.Write(w, KindModel, func(w io.Writer) error {
		return gob.NewEncoder(w).Encode(m.gobView())
	})
}

// Load deserializes a model written by Save. Truncated, bit-flipped and
// wrong-kind files fail the container's integrity checks before any gob
// decoding runs.
func Load(r io.Reader) (*Model, error) {
	var g gobModel
	if err := snapshot.Read(r, KindModel, func(r io.Reader) error {
		return gob.NewDecoder(r).Decode(&g)
	}); err != nil {
		return nil, fmt.Errorf("gru: loading model: %w", err)
	}
	return g.model()
}
