// Package mat provides dense matrix and vector operations used by the
// model substrates (BPMF Gibbs sampling, LSTM training, t-SNE, clustering).
//
// The package is deliberately small and allocation-conscious: matrices are
// row-major float64 slices, and most operations offer an in-place or
// destination-passing variant so hot loops (Gibbs sweeps, BPTT steps) can
// reuse buffers.
package mat

import (
	"fmt"
	"math"
)

// Matrix is a dense, row-major matrix of float64 values.
//
// A Matrix may be frozen: its Data then aliases read-only memory (typically
// an IBSNAP v2 mmap, where a write would fault with SIGSEGV on the
// PROT_READ mapping) and the in-place mutators panic with a clear message
// instead. Training and other writers call Mutable to get a private copy —
// copy-on-train, so the zero-copy serving path stays safe.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
	frozen     bool      // unexported: ignored by gob, never serialized
}

// FrozenFromSlice wraps data like FromSlice and marks the matrix frozen.
// Use for matrices aliasing read-only memory (mmap-backed model sections).
func FrozenFromSlice(rows, cols int, data []float64) *Matrix {
	m := FromSlice(rows, cols, data)
	m.frozen = true
	return m
}

// Freeze marks m read-only: subsequent in-place mutators panic. Freezing is
// irreversible on this header; use Mutable for a writable copy.
func (m *Matrix) Freeze() { m.frozen = true }

// Frozen reports whether m rejects in-place mutation.
func (m *Matrix) Frozen() bool { return m.frozen }

// Mutable returns m if it is writable, or a deep writable copy if frozen.
// Callers that might hold an mmap-aliased matrix (anything loaded through
// the v2 snapshot path) must route writes through Mutable.
func (m *Matrix) Mutable() *Matrix {
	if !m.frozen {
		return m
	}
	return m.Clone()
}

// mutable panics when m is frozen; every in-place mutator calls it first so
// a write to an mmap-backed matrix fails loudly instead of faulting.
func (m *Matrix) mutable(op string) {
	if m.frozen {
		panic("mat: " + op + " on frozen matrix (mmap-backed? use Mutable() for a writable copy)")
	}
}

// New returns a zero-valued Rows×Cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (row-major, length rows*cols) in a Matrix without copying.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.mutable("Set")
	m.Data[i*m.Cols+j] = v
}

// Row returns a view of row i (no copy). The view is writable Go-wise even
// on a frozen matrix — it is the caller's contract not to write through
// views of frozen matrices (reads are the serving hot path and cannot
// afford a per-row branch; a write to an mmap-backed row faults).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// CopyFrom copies src into m. Dimensions must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	m.mutable("CopyFrom")
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("mat: CopyFrom dimension mismatch")
	}
	copy(m.Data, src.Data)
}

// Zero sets every element of m to zero.
func (m *Matrix) Zero() {
	m.mutable("Zero")
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element of m to v.
func (m *Matrix) Fill(v float64) {
	m.mutable("Fill")
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Scale multiplies every element of m by s, in place.
func (m *Matrix) Scale(s float64) {
	m.mutable("Scale")
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddInPlace adds b to m element-wise, in place.
func (m *Matrix) AddInPlace(b *Matrix) {
	m.mutable("AddInPlace")
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("mat: AddInPlace dimension mismatch")
	}
	for i := range m.Data {
		m.Data[i] += b.Data[i]
	}
}

// SubInPlace subtracts b from m element-wise, in place.
func (m *Matrix) SubInPlace(b *Matrix) {
	m.mutable("SubInPlace")
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("mat: SubInPlace dimension mismatch")
	}
	for i := range m.Data {
		m.Data[i] -= b.Data[i]
	}
}

// AxpyInPlace performs m += alpha*b element-wise.
func (m *Matrix) AxpyInPlace(alpha float64, b *Matrix) {
	m.mutable("AxpyInPlace")
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("mat: AxpyInPlace dimension mismatch")
	}
	for i := range m.Data {
		m.Data[i] += alpha * b.Data[i]
	}
}

// Transpose returns a newly allocated transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// Mul computes a*b into a new matrix.
func Mul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	MulTo(out, a, b)
	return out
}

// MulTo computes dst = a*b. dst must be pre-sized a.Rows×b.Cols and must not
// alias a or b.
func MulTo(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("mat: MulTo destination dimension mismatch")
	}
	dst.Zero()
	// ikj loop order: streams through b and dst rows for cache friendliness.
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MulVec computes a * x for a vector x of length a.Cols.
func MulVec(a *Matrix, x []float64) []float64 {
	out := make([]float64, a.Rows)
	MulVecTo(out, a, x)
	return out
}

// MulVecTo computes dst = a*x. dst must have length a.Rows and not alias x.
func MulVecTo(dst []float64, a *Matrix, x []float64) {
	if a.Cols != len(x) {
		panic("mat: MulVec dimension mismatch")
	}
	if len(dst) != a.Rows {
		panic("mat: MulVecTo destination length mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// MulVecTransTo computes dst = aᵀ*x (length a.Cols) without materializing aᵀ.
func MulVecTransTo(dst []float64, a *Matrix, x []float64) {
	if a.Rows != len(x) {
		panic("mat: MulVecTrans dimension mismatch")
	}
	if len(dst) != a.Cols {
		panic("mat: MulVecTransTo destination length mismatch")
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < a.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := a.Row(i)
		for j, v := range row {
			dst[j] += xi * v
		}
	}
}

// OuterAccum accumulates dst += alpha * x yᵀ where dst is len(x)×len(y).
func OuterAccum(dst *Matrix, alpha float64, x, y []float64) {
	if dst.Rows != len(x) || dst.Cols != len(y) {
		panic("mat: OuterAccum dimension mismatch")
	}
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := dst.Row(i)
		a := alpha * xi
		for j, yj := range y {
			row[j] += a * yj
		}
	}
}

// Symmetrize replaces m with (m + mᵀ)/2. m must be square.
func (m *Matrix) Symmetrize() {
	m.mutable("Symmetrize")
	if m.Rows != m.Cols {
		panic("mat: Symmetrize on non-square matrix")
	}
	n := m.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (m.Data[i*n+j] + m.Data[j*n+i]) / 2
			m.Data[i*n+j] = v
			m.Data[j*n+i] = v
		}
	}
}

// Trace returns the trace of a square matrix.
func (m *Matrix) Trace() float64 {
	if m.Rows != m.Cols {
		panic("mat: Trace on non-square matrix")
	}
	var t float64
	for i := 0; i < m.Rows; i++ {
		t += m.Data[i*m.Cols+i]
	}
	return t
}

// MaxAbs returns the largest absolute value in m (0 for an empty matrix).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Equal reports whether a and b have identical shape and every pair of
// elements differs by at most tol.
func Equal(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := fmt.Sprintf("%dx%d[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}
