package mat

import (
	"errors"
	"math"
)

// ErrNotSPD is returned when a Cholesky factorization encounters a matrix
// that is not symmetric positive definite.
var ErrNotSPD = errors.New("mat: matrix is not symmetric positive definite")

// Cholesky computes the lower-triangular factor L such that a = L Lᵀ.
// a must be square and symmetric positive definite; only the lower triangle
// of a is read.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("mat: Cholesky of non-square matrix")
	}
	n := a.Rows
	l := New(n, n)
	for j := 0; j < n; j++ {
		var d float64 = a.At(j, j)
		lrow := l.Row(j)
		for k := 0; k < j; k++ {
			d -= lrow[k] * lrow[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotSPD
		}
		ljj := math.Sqrt(d)
		lrow[j] = ljj
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			irow := l.Row(i)
			for k := 0; k < j; k++ {
				s -= irow[k] * lrow[k]
			}
			irow[j] = s / ljj
		}
	}
	return l, nil
}

// CholeskyJittered factors a, adding jitter*I (doubling on each failure, up
// to maxTries) when a is numerically indefinite. It is used by samplers whose
// scatter matrices can become near-singular.
func CholeskyJittered(a *Matrix, jitter float64, maxTries int) (*Matrix, error) {
	l, err := Cholesky(a)
	if err == nil {
		return l, nil
	}
	work := a.Clone()
	for t := 0; t < maxTries; t++ {
		for i := 0; i < work.Rows; i++ {
			work.Data[i*work.Cols+i] += jitter
		}
		if l, err = Cholesky(work); err == nil {
			return l, nil
		}
		jitter *= 10
	}
	return nil, err
}

// SolveLowerTri solves L x = b for lower-triangular L (forward substitution).
func SolveLowerTri(l *Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic("mat: SolveLowerTri dimension mismatch")
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * x[k]
		}
		x[i] = s / row[i]
	}
	return x
}

// SolveUpperTriFromLowerT solves Lᵀ x = b given lower-triangular L
// (back substitution against the transpose, without materializing it).
func SolveUpperTriFromLowerT(l *Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic("mat: SolveUpperTriFromLowerT dimension mismatch")
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// SolveSPD solves a x = b for symmetric positive definite a via Cholesky.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	y := SolveLowerTri(l, b)
	return SolveUpperTriFromLowerT(l, y), nil
}

// InverseSPD computes the inverse of a symmetric positive definite matrix.
func InverseSPD(a *Matrix) (*Matrix, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := New(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		y := SolveLowerTri(l, e)
		x := SolveUpperTriFromLowerT(l, y)
		for i := 0; i < n; i++ {
			inv.Data[i*n+j] = x[i]
		}
	}
	inv.Symmetrize()
	return inv, nil
}

// LogDetFromChol returns log|A| given A's lower Cholesky factor L,
// i.e. 2 Σ log L_ii.
func LogDetFromChol(l *Matrix) float64 {
	var s float64
	for i := 0; i < l.Rows; i++ {
		s += math.Log(l.At(i, i))
	}
	return 2 * s
}
