package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDotNormKnown(t *testing.T) {
	x := []float64{3, 4}
	if Dot(x, x) != 25 {
		t.Fatalf("Dot = %v", Dot(x, x))
	}
	if Norm2(x) != 5 {
		t.Fatalf("Norm2 = %v", Norm2(x))
	}
}

func TestCauchySchwarzProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		x, y := make([]float64, n), make([]float64, n)
		for i := range x {
			x[i], y[i] = r.NormFloat64(), r.NormFloat64()
		}
		return math.Abs(Dot(x, y)) <= Norm2(x)*Norm2(y)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubAxpyVec(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	s := AddVec(x, y)
	if s[0] != 5 || s[2] != 9 {
		t.Fatalf("AddVec = %v", s)
	}
	d := SubVec(y, x)
	if d[0] != 3 || d[2] != 3 {
		t.Fatalf("SubVec = %v", d)
	}
	AxpyVec(2, x, y) // y += 2x
	if y[0] != 6 || y[2] != 12 {
		t.Fatalf("AxpyVec = %v", y)
	}
}

func TestNormalizeSumsToOneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.Float64() + 0.01
		}
		Normalize(x)
		return almostEq(SumVec(x), 1, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeDegenerate(t *testing.T) {
	x := []float64{0, 0, 0, 0}
	Normalize(x)
	for _, v := range x {
		if !almostEq(v, 0.25, 1e-12) {
			t.Fatalf("degenerate Normalize = %v", x)
		}
	}
	y := []float64{math.NaN(), 1}
	Normalize(y)
	if !almostEq(y[0], 0.5, 1e-12) {
		t.Fatalf("NaN Normalize = %v", y)
	}
}

func TestSqDistTriangleProperty(t *testing.T) {
	// sqrt(SqDist) obeys triangle inequality
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a, b, c := make([]float64, n), make([]float64, n), make([]float64, n)
		for i := 0; i < n; i++ {
			a[i], b[i], c[i] = r.NormFloat64(), r.NormFloat64(), r.NormFloat64()
		}
		dab := math.Sqrt(SqDist(a, b))
		dbc := math.Sqrt(SqDist(b, c))
		dac := math.Sqrt(SqDist(a, c))
		return dac <= dab+dbc+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCosineSim(t *testing.T) {
	if got := CosineSim([]float64{1, 0}, []float64{0, 1}); !almostEq(got, 0, 1e-12) {
		t.Fatalf("orthogonal cos = %v", got)
	}
	if got := CosineSim([]float64{2, 2}, []float64{1, 1}); !almostEq(got, 1, 1e-12) {
		t.Fatalf("parallel cos = %v", got)
	}
	if got := CosineSim([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Fatalf("zero-vector cos = %v", got)
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax(nil) != -1 {
		t.Fatal("ArgMax(nil) != -1")
	}
	if ArgMax([]float64{1, 5, 5, 2}) != 1 {
		t.Fatal("ArgMax should return first max")
	}
}

func TestLogSumExpStability(t *testing.T) {
	x := []float64{1000, 1000}
	if got := LogSumExp(x); !almostEq(got, 1000+math.Log(2), 1e-9) {
		t.Fatalf("LogSumExp = %v", got)
	}
	if got := LogSumExp([]float64{-2000, -2000}); !almostEq(got, -2000+math.Log(2), 1e-9) {
		t.Fatalf("LogSumExp small = %v", got)
	}
	if got := LogSumExp(nil); !math.IsInf(got, -1) {
		t.Fatalf("LogSumExp(nil) = %v", got)
	}
}

func TestSoftmaxProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64() * 10
		}
		out := make([]float64, n)
		Softmax(out, x)
		if !almostEq(SumVec(out), 1, 1e-9) {
			return false
		}
		for _, v := range out {
			if v < 0 || v > 1 {
				return false
			}
		}
		// order preserved
		return ArgMax(out) == ArgMax(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxAliasing(t *testing.T) {
	x := []float64{1, 2, 3}
	Softmax(x, x)
	if !almostEq(SumVec(x), 1, 1e-12) {
		t.Fatalf("aliased softmax = %v", x)
	}
}
