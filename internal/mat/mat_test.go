package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMatrix(r *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}

func TestNewAndAtSet(t *testing.T) {
	m := New(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("unexpected shape: %+v", m)
	}
	m.Set(1, 2, 7.5)
	if m.At(1, 2) != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", m.At(1, 2))
	}
	if m.At(0, 0) != 0 {
		t.Fatalf("fresh matrix not zeroed")
	}
}

func TestFromSliceNoCopy(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	m := FromSlice(2, 2, d)
	d[0] = 9
	if m.At(0, 0) != 9 {
		t.Fatal("FromSlice should wrap, not copy")
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestIdentity(t *testing.T) {
	i3 := Identity(3)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			want := 0.0
			if r == c {
				want = 1
			}
			if i3.At(r, c) != want {
				t.Fatalf("Identity(3)[%d,%d] = %v", r, c, i3.At(r, c))
			}
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := Mul(a, b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !Equal(got, want, 1e-12) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulIdentityProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(6)
		m := randMatrix(r, n, n)
		return Equal(Mul(m, Identity(n)), m, 1e-12) && Equal(Mul(Identity(n), m), m, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randMatrix(r, 2+r.Intn(4), 2+r.Intn(4))
		b := randMatrix(r, a.Cols, 2+r.Intn(4))
		c := randMatrix(r, b.Cols, 2+r.Intn(4))
		return Equal(Mul(Mul(a, b), c), Mul(a, Mul(b, c)), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randMatrix(r, 1+r.Intn(5), 1+r.Intn(5))
		return Equal(a.Transpose().Transpose(), a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeMulProperty(t *testing.T) {
	// (AB)ᵀ == Bᵀ Aᵀ
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randMatrix(r, 2+r.Intn(4), 2+r.Intn(4))
		b := randMatrix(r, a.Cols, 2+r.Intn(4))
		return Equal(Mul(a, b).Transpose(), Mul(b.Transpose(), a.Transpose()), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := randMatrix(r, 4, 5)
	x := make([]float64, 5)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	got := MulVec(a, x)
	xm := FromSlice(5, 1, x)
	want := Mul(a, xm)
	for i := range got {
		if math.Abs(got[i]-want.At(i, 0)) > 1e-12 {
			t.Fatalf("MulVec[%d] = %v, want %v", i, got[i], want.At(i, 0))
		}
	}
}

func TestMulVecTransTo(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	a := randMatrix(r, 4, 3)
	x := []float64{1, -2, 0.5, 3}
	dst := make([]float64, 3)
	MulVecTransTo(dst, a, x)
	want := MulVec(a.Transpose(), x)
	for i := range dst {
		if math.Abs(dst[i]-want[i]) > 1e-12 {
			t.Fatalf("MulVecTransTo[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestOuterAccum(t *testing.T) {
	dst := New(2, 3)
	OuterAccum(dst, 2, []float64{1, 2}, []float64{3, 4, 5})
	want := FromSlice(2, 3, []float64{6, 8, 10, 12, 16, 20})
	if !Equal(dst, want, 1e-12) {
		t.Fatalf("OuterAccum = %v, want %v", dst, want)
	}
	// accumulate again: doubles
	OuterAccum(dst, 2, []float64{1, 2}, []float64{3, 4, 5})
	want.Scale(2)
	if !Equal(dst, want, 1e-12) {
		t.Fatalf("second OuterAccum = %v, want %v", dst, want)
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{5, 6, 7, 8})
	c := a.Clone()
	c.AddInPlace(b)
	if !Equal(c, FromSlice(2, 2, []float64{6, 8, 10, 12}), 0) {
		t.Fatal("AddInPlace wrong")
	}
	c.SubInPlace(b)
	if !Equal(c, a, 0) {
		t.Fatal("SubInPlace wrong")
	}
	c.Scale(3)
	if !Equal(c, FromSlice(2, 2, []float64{3, 6, 9, 12}), 0) {
		t.Fatal("Scale wrong")
	}
	c.AxpyInPlace(-1, FromSlice(2, 2, []float64{3, 6, 9, 12}))
	if c.MaxAbs() != 0 {
		t.Fatal("AxpyInPlace wrong")
	}
}

func TestSymmetrizeAndTrace(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 4, 2, 3})
	m.Symmetrize()
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Fatalf("Symmetrize wrong: %v", m)
	}
	if m.Trace() != 4 {
		t.Fatalf("Trace = %v, want 4", m.Trace())
	}
}

func TestCholeskyRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		// build SPD matrix a = g gᵀ + n*I
		g := randMatrix(r, n, n)
		a := Mul(g, g.Transpose())
		for i := 0; i < n; i++ {
			a.Data[i*n+i] += float64(n)
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		return Equal(Mul(l, l.Transpose()), a, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected ErrNotSPD")
	}
}

func TestCholeskyJittered(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 1, 1, 1}) // PSD but singular
	l, err := CholeskyJittered(a, 1e-8, 20)
	if err != nil {
		t.Fatalf("CholeskyJittered failed: %v", err)
	}
	if l.At(0, 0) <= 0 {
		t.Fatal("invalid factor")
	}
}

func TestSolveSPDProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		g := randMatrix(r, n, n)
		a := Mul(g, g.Transpose())
		for i := 0; i < n; i++ {
			a.Data[i*n+i] += float64(n)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		b := MulVec(a, x)
		got, err := SolveSPD(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestInverseSPD(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	n := 5
	g := randMatrix(r, n, n)
	a := Mul(g, g.Transpose())
	for i := 0; i < n; i++ {
		a.Data[i*n+i] += float64(n)
	}
	inv, err := InverseSPD(a)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(Mul(a, inv), Identity(n), 1e-8) {
		t.Fatalf("A * A⁻¹ != I")
	}
}

func TestLogDetFromChol(t *testing.T) {
	// diag(4, 9): |A| = 36, log = log 36
	a := FromSlice(2, 2, []float64{4, 0, 0, 9})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := LogDetFromChol(l); math.Abs(got-math.Log(36)) > 1e-12 {
		t.Fatalf("LogDet = %v, want %v", got, math.Log(36))
	}
}

func TestRowColClone(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	row := m.Row(1)
	row[0] = 40 // Row is a view
	if m.At(1, 0) != 40 {
		t.Fatal("Row should be a view")
	}
	col := m.Col(2)
	col[0] = 99 // Col is a copy
	if m.At(0, 2) == 99 {
		t.Fatal("Col should be a copy")
	}
	cl := m.Clone()
	cl.Set(0, 0, -1)
	if m.At(0, 0) == -1 {
		t.Fatal("Clone should deep-copy")
	}
}

func TestMulPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mul(New(2, 3), New(2, 3))
}
