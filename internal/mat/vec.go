package mat

import "math"

// Vector helpers operate on plain []float64 slices so callers can use them
// on matrix rows without conversion.

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: Dot length mismatch")
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// AddVec computes x + y into a new slice.
func AddVec(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("mat: AddVec length mismatch")
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] + y[i]
	}
	return out
}

// SubVec computes x - y into a new slice.
func SubVec(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("mat: SubVec length mismatch")
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] - y[i]
	}
	return out
}

// AxpyVec performs y += alpha*x in place.
func AxpyVec(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mat: AxpyVec length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// ScaleVec multiplies x by s in place.
func ScaleVec(s float64, x []float64) {
	for i := range x {
		x[i] *= s
	}
}

// SumVec returns the sum of the elements of x.
func SumVec(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Normalize scales x in place so its elements sum to 1. If the sum is zero
// or non-finite the vector is set uniform. Returns the original sum.
func Normalize(x []float64) float64 {
	s := SumVec(x)
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		u := 1.0 / float64(len(x))
		for i := range x {
			x[i] = u
		}
		return s
	}
	inv := 1 / s
	for i := range x {
		x[i] *= inv
	}
	return s
}

// SqDist returns the squared Euclidean distance between x and y.
func SqDist(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: SqDist length mismatch")
	}
	var s float64
	for i, v := range x {
		d := v - y[i]
		s += d * d
	}
	return s
}

// CosineSim returns the cosine similarity of x and y, or 0 when either
// vector is all-zero.
func CosineSim(x, y []float64) float64 {
	nx, ny := Norm2(x), Norm2(y)
	if nx == 0 || ny == 0 {
		return 0
	}
	return Dot(x, y) / (nx * ny)
}

// ArgMax returns the index of the largest element (first on ties), or -1 for
// an empty slice.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best, arg := x[0], 0
	for i, v := range x[1:] {
		if v > best {
			best, arg = v, i+1
		}
	}
	return arg
}

// LogSumExp returns log Σ exp(x_i) computed stably.
func LogSumExp(x []float64) float64 {
	if len(x) == 0 {
		return math.Inf(-1)
	}
	mx := x[0]
	for _, v := range x[1:] {
		if v > mx {
			mx = v
		}
	}
	if math.IsInf(mx, -1) {
		return mx
	}
	var s float64
	for _, v := range x {
		s += math.Exp(v - mx)
	}
	return mx + math.Log(s)
}

// Softmax writes the softmax of x into dst (may alias x).
func Softmax(dst, x []float64) {
	if len(dst) != len(x) {
		panic("mat: Softmax length mismatch")
	}
	lse := LogSumExp(x)
	for i, v := range x {
		dst[i] = math.Exp(v - lse)
	}
}
