package mat

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"
)

func mustPanicFrozen(t *testing.T, op string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("%s on frozen matrix did not panic", op)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "frozen") {
			t.Fatalf("%s panic = %v, want a frozen-matrix message", op, r)
		}
	}()
	fn()
}

func TestFrozenMatrixRejectsMutation(t *testing.T) {
	m := FrozenFromSlice(2, 2, []float64{1, 2, 3, 4})
	if !m.Frozen() {
		t.Fatal("FrozenFromSlice not frozen")
	}
	other := New(2, 2)
	mustPanicFrozen(t, "Set", func() { m.Set(0, 0, 9) })
	mustPanicFrozen(t, "Zero", func() { m.Zero() })
	mustPanicFrozen(t, "Fill", func() { m.Fill(1) })
	mustPanicFrozen(t, "Scale", func() { m.Scale(2) })
	mustPanicFrozen(t, "AddInPlace", func() { m.AddInPlace(other) })
	mustPanicFrozen(t, "SubInPlace", func() { m.SubInPlace(other) })
	mustPanicFrozen(t, "AxpyInPlace", func() { m.AxpyInPlace(1, other) })
	mustPanicFrozen(t, "CopyFrom", func() { m.CopyFrom(other) })
	mustPanicFrozen(t, "Symmetrize", func() { m.Symmetrize() })
	// Reads stay available.
	if m.At(1, 0) != 3 || m.Row(1)[1] != 4 || m.Trace() != 5 {
		t.Fatal("reads on frozen matrix broken")
	}
}

func TestMutableCopiesOnlyWhenFrozen(t *testing.T) {
	w := FromSlice(1, 2, []float64{1, 2})
	if w.Mutable() != w {
		t.Fatal("Mutable copied a writable matrix")
	}
	f := FrozenFromSlice(1, 2, []float64{1, 2})
	c := f.Mutable()
	if c == f || c.Frozen() {
		t.Fatal("Mutable on frozen matrix must return a writable copy")
	}
	c.Set(0, 0, 9)
	if f.At(0, 0) != 1 {
		t.Fatal("copy aliases the frozen matrix")
	}
	// Clone of a frozen matrix is also writable.
	cl := f.Clone()
	if cl.Frozen() {
		t.Fatal("Clone inherited frozen")
	}
	cl.Set(0, 1, 7)
}

// TestFrozenInvisibleToGob pins the serialization contract: frozen is an
// in-memory property only, so a gob round trip of a Matrix value ignores it
// and determinism tests comparing gob bytes cannot be affected by it.
func TestFrozenInvisibleToGob(t *testing.T) {
	frozen := FrozenFromSlice(1, 2, []float64{1, 2})
	thawed := FromSlice(1, 2, []float64{1, 2})
	enc := func(m *Matrix) []byte {
		var b bytes.Buffer
		if err := gob.NewEncoder(&b).Encode(m); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	if !bytes.Equal(enc(frozen), enc(thawed)) {
		t.Fatal("frozen flag leaked into gob bytes")
	}
	var back Matrix
	if err := gob.NewDecoder(bytes.NewReader(enc(frozen))).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if back.Frozen() {
		t.Fatal("decoded matrix claims frozen")
	}
	back.Set(0, 0, 5)
}
