// Package chh implements Conditional Heavy Hitters over product-acquisition
// streams: (context, item) pairs whose conditional probability
// P(item | context) is high. The paper's recommender baseline uses *exact*
// conditional heavy hitters with context depth 2 (Mirylenka et al., The VLDB
// Journal 24(3), 2015), i.e. exact time-dependent association rules on the
// previous one or two products. A space-bounded streaming variant is also
// provided for corpora whose context universe does not fit in memory.
package chh

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"repro/internal/snapshot"
)

// KindModel is the snapshot container kind for serialized exact-CHH models.
const KindModel = "chh-model"

// Exact counts every (context, next) pair exactly. With the paper's
// vocabulary (M = 38) the context universe is tiny (38 + 38² contexts), so
// exact counting is the reference implementation.
type Exact struct {
	V     int // vocabulary size
	Depth int // maximum context depth (1 or 2)

	// Depth-1 statistics: count1[prev][next], total1[prev].
	Count1 map[int][]float64
	Total1 map[int]float64
	// Depth-2 statistics: count2[{prev2, prev1}][next], total2[...].
	Count2 map[[2]int][]float64
	Total2 map[[2]int]float64
	// Unconditional counts, the depth-0 fallback.
	Count0 []float64
	Total0 float64
}

// NewExact creates an empty exact-CHH model. depth must be 1 or 2; the
// paper chooses 2 based on its trigram sequentiality tests.
func NewExact(v, depth int) (*Exact, error) {
	if v < 1 {
		return nil, fmt.Errorf("chh: vocabulary size must be positive, got %d", v)
	}
	if depth != 1 && depth != 2 {
		return nil, fmt.Errorf("chh: depth must be 1 or 2, got %d", depth)
	}
	e := &Exact{
		V:      v,
		Depth:  depth,
		Count1: make(map[int][]float64),
		Total1: make(map[int]float64),
		Count0: make([]float64, v),
	}
	if depth == 2 {
		e.Count2 = make(map[[2]int][]float64)
		e.Total2 = make(map[[2]int]float64)
	}
	return e, nil
}

// Fit accumulates transition counts from acquisition sequences. It may be
// called repeatedly (streaming updates).
func (e *Exact) Fit(sequences [][]int) error {
	for si, seq := range sequences {
		for i, tok := range seq {
			if tok < 0 || tok >= e.V {
				return fmt.Errorf("chh: sequence %d token %d outside [0,%d)", si, tok, e.V)
			}
			e.Count0[tok]++
			e.Total0++
			if i >= 1 {
				prev := seq[i-1]
				row := e.Count1[prev]
				if row == nil {
					row = make([]float64, e.V)
					e.Count1[prev] = row
				}
				row[tok]++
				e.Total1[prev]++
			}
			if e.Depth == 2 && i >= 2 {
				key := [2]int{seq[i-2], seq[i-1]}
				row := e.Count2[key]
				if row == nil {
					row = make([]float64, e.V)
					e.Count2[key] = row
				}
				row[tok]++
				e.Total2[key]++
			}
		}
	}
	return nil
}

// CondProb returns the conditional probability P(next | context) using the
// deepest context with support, backing off depth 2 -> 1 -> 0. The context
// slice holds earlier tokens first; only its last Depth entries are used.
func (e *Exact) CondProb(context []int, next int) float64 {
	if next < 0 || next >= e.V {
		return 0
	}
	n := len(context)
	if e.Depth == 2 && n >= 2 {
		key := [2]int{context[n-2], context[n-1]}
		if tot := e.Total2[key]; tot > 0 {
			return e.Count2[key][next] / tot
		}
	}
	if n >= 1 {
		prev := context[n-1]
		if tot := e.Total1[prev]; tot > 0 {
			return e.Count1[prev][next] / tot
		}
	}
	if e.Total0 > 0 {
		return e.Count0[next] / e.Total0
	}
	return 0
}

// Dist returns the full conditional next-product distribution for a context.
func (e *Exact) Dist(context []int) []float64 {
	out := make([]float64, e.V)
	for next := 0; next < e.V; next++ {
		out[next] = e.CondProb(context, next)
	}
	return out
}

// HeavyHitter is one discovered conditional heavy hitter.
type HeavyHitter struct {
	Context []int   // 1 or 2 earlier tokens, oldest first
	Item    int     //
	Prob    float64 // P(item | context)
	Support float64 // number of times the context occurred
}

// HeavyHitters lists all (context, item) pairs with conditional probability
// at least phi and context support at least minSupport, sorted by
// probability descending (ties: higher support first, then lexicographic).
func (e *Exact) HeavyHitters(phi, minSupport float64) []HeavyHitter {
	var out []HeavyHitter
	for prev, row := range e.Count1 {
		tot := e.Total1[prev]
		if tot < minSupport {
			continue
		}
		for next, c := range row {
			if p := c / tot; p >= phi && c > 0 {
				out = append(out, HeavyHitter{Context: []int{prev}, Item: next, Prob: p, Support: tot})
			}
		}
	}
	if e.Depth == 2 {
		for key, row := range e.Count2 {
			tot := e.Total2[key]
			if tot < minSupport {
				continue
			}
			for next, c := range row {
				if p := c / tot; p >= phi && c > 0 {
					out = append(out, HeavyHitter{Context: []int{key[0], key[1]}, Item: next, Prob: p, Support: tot})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prob != out[j].Prob {
			return out[i].Prob > out[j].Prob
		}
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		if len(out[i].Context) != len(out[j].Context) {
			return len(out[i].Context) < len(out[j].Context)
		}
		for k := range out[i].Context {
			if out[i].Context[k] != out[j].Context[k] {
				return out[i].Context[k] < out[j].Context[k]
			}
		}
		return out[i].Item < out[j].Item
	})
	return out
}

type gobExact struct {
	V      int
	Depth  int
	Count1 map[int][]float64
	Total1 map[int]float64
	Count2 map[[2]int][]float64
	Total2 map[[2]int]float64
	Count0 []float64
	Total0 float64
}

// Save serializes the model into a checksummed snapshot container of kind
// KindModel.
func (e *Exact) Save(w io.Writer) error {
	return snapshot.Write(w, KindModel, func(w io.Writer) error {
		return gob.NewEncoder(w).Encode(gobExact(*e))
	})
}

// Load deserializes a model written by Save, rejecting containers whose
// payload decodes to an inconsistent model.
func Load(r io.Reader) (*Exact, error) {
	var g gobExact
	if err := snapshot.Read(r, KindModel, func(r io.Reader) error {
		return gob.NewDecoder(r).Decode(&g)
	}); err != nil {
		return nil, fmt.Errorf("chh: loading model: %w", err)
	}
	if g.V < 1 || (g.Depth != 1 && g.Depth != 2) || len(g.Count0) != g.V {
		return nil, fmt.Errorf("chh: corrupt model (V %d, depth %d)", g.V, g.Depth)
	}
	for _, counts := range g.Count1 {
		if len(counts) != g.V {
			return nil, fmt.Errorf("chh: corrupt depth-1 table")
		}
	}
	for _, counts := range g.Count2 {
		if len(counts) != g.V {
			return nil, fmt.Errorf("chh: corrupt depth-2 table")
		}
	}
	e := Exact(g)
	return &e, nil
}
