package chh

import (
	"fmt"
	"sort"
)

// Sparse is a space-bounded streaming approximation of conditional heavy
// hitters in the spirit of the "Sparse" algorithm of Mirylenka et al.
// (VLDB Journal 2015): it keeps at most Budget (context, item) counters and,
// when full, evicts the entries with the smallest counts (SpaceSaving-style,
// crediting the evicted count floor to new arrivals so counts remain
// overestimates). Context depth is fixed at 1 for the streaming variant; the
// exact model covers depth 2 for the paper's vocabulary sizes.
type Sparse struct {
	V      int
	Budget int // max number of (context, item) counters

	counts map[[2]int]float64 // {context, item} -> (over)count
	totals map[int]float64    // context -> exact total occurrences
	floor  float64            // count credited to new entries after evictions
}

// NewSparse creates a streaming CHH sketch holding at most budget counters.
func NewSparse(v, budget int) (*Sparse, error) {
	if v < 1 {
		return nil, fmt.Errorf("chh: vocabulary size must be positive, got %d", v)
	}
	if budget < 1 {
		return nil, fmt.Errorf("chh: budget must be positive, got %d", budget)
	}
	return &Sparse{
		V:      v,
		Budget: budget,
		counts: make(map[[2]int]float64, budget+1),
		totals: make(map[int]float64),
	}, nil
}

// Observe feeds one (context, item) transition into the sketch.
func (s *Sparse) Observe(context, item int) error {
	if context < 0 || context >= s.V || item < 0 || item >= s.V {
		return fmt.Errorf("chh: transition (%d,%d) outside vocabulary [0,%d)", context, item, s.V)
	}
	s.totals[context]++
	key := [2]int{context, item}
	if c, ok := s.counts[key]; ok {
		s.counts[key] = c + 1
		return nil
	}
	if len(s.counts) >= s.Budget {
		s.evictMin()
	}
	s.counts[key] = s.floor + 1
	return nil
}

// evictMin removes one minimum-count entry and raises the admission floor,
// keeping counts overestimates of true frequencies (SpaceSaving invariant).
func (s *Sparse) evictMin() {
	var minKey [2]int
	minVal := -1.0
	for k, v := range s.counts {
		if minVal < 0 || v < minVal {
			minKey, minVal = k, v
		}
	}
	delete(s.counts, minKey)
	if minVal > s.floor {
		s.floor = minVal
	}
}

// FitSequences feeds every adjacent transition of the sequences.
func (s *Sparse) FitSequences(sequences [][]int) error {
	for _, seq := range sequences {
		for i := 1; i < len(seq); i++ {
			if err := s.Observe(seq[i-1], seq[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// CondProb estimates P(item | context); unseen pairs give 0.
func (s *Sparse) CondProb(context, item int) float64 {
	tot := s.totals[context]
	if tot == 0 {
		return 0
	}
	p := s.counts[[2]int{context, item}] / tot
	if p > 1 {
		p = 1 // counts are overestimates; clamp
	}
	return p
}

// HeavyHitters lists tracked pairs with estimated conditional probability at
// least phi and context support at least minSupport, sorted like Exact.
func (s *Sparse) HeavyHitters(phi, minSupport float64) []HeavyHitter {
	var out []HeavyHitter
	for key := range s.counts {
		tot := s.totals[key[0]]
		if tot < minSupport {
			continue
		}
		if p := s.CondProb(key[0], key[1]); p >= phi {
			out = append(out, HeavyHitter{Context: []int{key[0]}, Item: key[1], Prob: p, Support: tot})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prob != out[j].Prob {
			return out[i].Prob > out[j].Prob
		}
		if out[i].Context[0] != out[j].Context[0] {
			return out[i].Context[0] < out[j].Context[0]
		}
		return out[i].Item < out[j].Item
	})
	return out
}

// Size returns the number of counters currently held.
func (s *Sparse) Size() int { return len(s.counts) }
