package chh

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/rng"
)

func mustExact(t *testing.T, v, depth int) *Exact {
	t.Helper()
	e, err := NewExact(v, depth)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewExactValidation(t *testing.T) {
	if _, err := NewExact(0, 1); err == nil {
		t.Fatal("v=0 accepted")
	}
	if _, err := NewExact(5, 3); err == nil {
		t.Fatal("depth=3 accepted")
	}
	if _, err := NewExact(5, 0); err == nil {
		t.Fatal("depth=0 accepted")
	}
}

func TestFitRejectsBadTokens(t *testing.T) {
	e := mustExact(t, 3, 2)
	if err := e.Fit([][]int{{0, 7}}); err == nil {
		t.Fatal("bad token accepted")
	}
}

func TestCondProbDepth1(t *testing.T) {
	e := mustExact(t, 3, 1)
	// transitions: 0->1 three times, 0->2 once
	if err := e.Fit([][]int{{0, 1}, {0, 1}, {0, 1}, {0, 2}}); err != nil {
		t.Fatal(err)
	}
	if got := e.CondProb([]int{0}, 1); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("P(1|0) = %v, want 0.75", got)
	}
	if got := e.CondProb([]int{0}, 2); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("P(2|0) = %v, want 0.25", got)
	}
}

func TestCondProbDepth2AndBackoff(t *testing.T) {
	e := mustExact(t, 4, 2)
	// context (0,1) always followed by 2; context (3,1) always followed by 0
	if err := e.Fit([][]int{{0, 1, 2}, {0, 1, 2}, {3, 1, 0}}); err != nil {
		t.Fatal(err)
	}
	if got := e.CondProb([]int{0, 1}, 2); got != 1 {
		t.Fatalf("P(2|0,1) = %v, want 1 (depth-2 context)", got)
	}
	if got := e.CondProb([]int{3, 1}, 0); got != 1 {
		t.Fatalf("P(0|3,1) = %v, want 1", got)
	}
	// unseen depth-2 context (2,1) backs off to depth-1 P(.|1): 2/3 for 2
	if got := e.CondProb([]int{2, 1}, 2); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("backoff P(2|?,1) = %v, want 2/3", got)
	}
	// unseen depth-1 context backs off to unconditional
	got := e.CondProb([]int{2}, 2)
	want := e.Count0[2] / e.Total0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("depth-0 backoff = %v, want %v", got, want)
	}
	// empty context: unconditional
	if got := e.CondProb(nil, 1); math.Abs(got-e.Count0[1]/e.Total0) > 1e-12 {
		t.Fatalf("empty-context prob = %v", got)
	}
}

func TestCondProbOutOfRange(t *testing.T) {
	e := mustExact(t, 3, 1)
	if e.CondProb([]int{0}, 9) != 0 || e.CondProb([]int{0}, -1) != 0 {
		t.Fatal("out-of-range item should have probability 0")
	}
	// untrained model: everything 0
	if e.CondProb([]int{0}, 1) != 0 {
		t.Fatal("untrained model should return 0")
	}
}

func TestDistSumsToOneWhenTrained(t *testing.T) {
	e := mustExact(t, 5, 2)
	g := rng.New(1)
	seqs := make([][]int, 100)
	for i := range seqs {
		s := make([]int, 6)
		for j := range s {
			s[j] = g.Intn(5)
		}
		seqs[i] = s
	}
	if err := e.Fit(seqs); err != nil {
		t.Fatal(err)
	}
	for _, ctx := range [][]int{{0}, {1, 2}, {4, 4}, nil} {
		d := e.Dist(ctx)
		var sum float64
		for _, p := range d {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("Dist(%v) sums to %v", ctx, sum)
		}
	}
}

func TestHeavyHitters(t *testing.T) {
	e := mustExact(t, 4, 2)
	seqs := [][]int{{0, 1}, {0, 1}, {0, 1}, {0, 2}, {3, 3}}
	if err := e.Fit(seqs); err != nil {
		t.Fatal(err)
	}
	hh := e.HeavyHitters(0.7, 2)
	// (0)->1 with prob 0.75 qualifies; (3)->3 has support 1 < 2, excluded
	found := false
	for _, h := range hh {
		if len(h.Context) == 1 && h.Context[0] == 0 && h.Item == 1 {
			found = true
			if math.Abs(h.Prob-0.75) > 1e-12 {
				t.Fatalf("HH prob = %v", h.Prob)
			}
		}
		if h.Context[0] == 3 {
			t.Fatal("low-support context leaked into heavy hitters")
		}
	}
	if !found {
		t.Fatalf("expected heavy hitter (0)->1, got %+v", hh)
	}
	// sorted by probability descending
	for i := 1; i < len(hh); i++ {
		if hh[i].Prob > hh[i-1].Prob+1e-12 {
			t.Fatal("heavy hitters not sorted")
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	e := mustExact(t, 4, 2)
	if err := e.Fit([][]int{{0, 1, 2, 3}, {3, 2, 1, 0}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, ctx := range [][]int{{0}, {0, 1}, {2, 1}} {
		for item := 0; item < 4; item++ {
			if math.Abs(e.CondProb(ctx, item)-got.CondProb(ctx, item)) > 1e-15 {
				t.Fatalf("loaded model differs at %v -> %d", ctx, item)
			}
		}
	}
	if _, err := Load(bytes.NewBufferString("junk")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSparseMatchesExactWhenUnbounded(t *testing.T) {
	g := rng.New(9)
	seqs := make([][]int, 200)
	for i := range seqs {
		s := make([]int, 10)
		for j := range s {
			s[j] = g.Intn(6)
		}
		seqs[i] = s
	}
	e := mustExact(t, 6, 1)
	if err := e.Fit(seqs); err != nil {
		t.Fatal(err)
	}
	s, err := NewSparse(6, 1000) // budget >> universe: exact
	if err != nil {
		t.Fatal(err)
	}
	if err := s.FitSequences(seqs); err != nil {
		t.Fatal(err)
	}
	for ctx := 0; ctx < 6; ctx++ {
		for item := 0; item < 6; item++ {
			ep := e.CondProb([]int{ctx}, item)
			sp := s.CondProb(ctx, item)
			if math.Abs(ep-sp) > 1e-12 {
				t.Fatalf("unbounded sparse differs: P(%d|%d) exact %v sparse %v", item, ctx, ep, sp)
			}
		}
	}
}

func TestSparseBudgetRespectedAndOverestimates(t *testing.T) {
	g := rng.New(11)
	s, err := NewSparse(20, 25)
	if err != nil {
		t.Fatal(err)
	}
	e := mustExact(t, 20, 1)
	var seqs [][]int
	for i := 0; i < 300; i++ {
		seq := make([]int, 8)
		for j := range seq {
			// skewed so some pairs are genuinely heavy
			if g.Float64() < 0.5 {
				seq[j] = g.Intn(3)
			} else {
				seq[j] = g.Intn(20)
			}
		}
		seqs = append(seqs, seq)
	}
	if err := s.FitSequences(seqs); err != nil {
		t.Fatal(err)
	}
	if err := e.Fit(seqs); err != nil {
		t.Fatal(err)
	}
	if s.Size() > 25 {
		t.Fatalf("budget exceeded: %d counters", s.Size())
	}
	// SpaceSaving invariant: tracked counts overestimate true counts.
	for key, c := range s.counts {
		var truth float64
		if row := e.Count1[key[0]]; row != nil {
			truth = row[key[1]]
		}
		if c+1e-9 < truth {
			t.Fatalf("count underestimates truth for %v: %v < %v", key, c, truth)
		}
	}
	// A genuinely heavy transition should be retained and detected.
	hh := s.HeavyHitters(0.1, 50)
	if len(hh) == 0 {
		t.Fatal("no heavy hitters found in skewed stream")
	}
}

func TestSparseValidation(t *testing.T) {
	if _, err := NewSparse(0, 5); err == nil {
		t.Fatal("v=0 accepted")
	}
	if _, err := NewSparse(5, 0); err == nil {
		t.Fatal("budget=0 accepted")
	}
	s, _ := NewSparse(3, 5)
	if err := s.Observe(0, 9); err == nil {
		t.Fatal("bad item accepted")
	}
	if s.CondProb(1, 1) != 0 {
		t.Fatal("unseen context should give 0")
	}
}
