// Package shadow closes the live-quality loop over the ANN fast path: a
// deterministic 1-in-N sampler re-executes sampled ANN-served queries as
// exact full scans off the critical path and compares the answers, turning
// "how good is the index right now" from an offline benchmark number into a
// live serving signal.
//
// The design mirrors internal/chaos's determinism discipline: every sampling
// decision is drawn from one seeded internal/rng stream under a mutex, in
// query-arrival order, so a drill replays exactly from its seed. The exact
// re-execution never touches the serving path: sampled queries enter a
// bounded queue feeding one dedicated worker goroutine, and when the queue is
// full the sample is dropped and counted (shadow_dropped_total) instead of
// blocking — served p99 is untouched by construction, and a delta test pins
// the disabled path to byte-identical responses with zero metric additions.
//
// Each processed sample yields recall@k, top-1 agreement, mean rank
// displacement and max score drift of the served (approximate) answer against
// the exact one. Results feed a sliding-window recall series (the
// ann_observed_recall gauge is the windowed mean), divergence histograms with
// trace exemplars, and a bounded worst-divergence ring served as GET
// /debug/recall — each entry carries the trace id of the offending request so
// it resolves at /debug/traces/{id}. The sampler also keeps the last M
// sampled queries with their served answers; /admin/reload replays them
// against an incoming generation before the swap (CanaryDiff) and reports the
// generation diff, optionally refusing the swap under a guard threshold.
package shadow

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Defaults; a zero Config field selects the matching constant.
const (
	// DefaultQueue bounds the sample queue between the request path and the
	// shadow worker; a full queue drops (and counts) instead of blocking.
	DefaultQueue = 64
	// DefaultWorst is the worst-divergence ring capacity of /debug/recall.
	DefaultWorst = 16
	// DefaultRecent is M, the replay buffer replayed by the reload canary.
	DefaultRecent = 32
	// DefaultTimeout bounds one exact re-execution on the shadow worker.
	DefaultTimeout = 5 * time.Second
	// DefaultWindow is the sliding span of the observed-recall series.
	DefaultWindow = time.Minute
	// DefaultBuckets is the ring size K of the observed-recall window.
	DefaultBuckets = 6
)

// Config parameterizes a Sampler. SampleN is the only required field.
type Config struct {
	// SampleN samples 1 in N eligible queries (1 = every query). Values
	// below 1 are invalid — callers gate construction on SampleN >= 1, so a
	// disabled deployment never constructs a Sampler at all (no goroutine,
	// no metrics: the PR 5/6 disabled-path discipline).
	SampleN int
	// Seed seeds the sampling-decision stream. Decisions are drawn from this
	// single stream in query-arrival order, so a drill with a pinned seed and
	// request sequence replays the exact same sample set. Default 1.
	Seed int64
	// Queue bounds the sample queue. Default DefaultQueue.
	Queue int
	// Worst bounds the worst-divergence ring. Default DefaultWorst.
	Worst int
	// Recent is M, the sampled-query replay buffer consulted by the reload
	// canary. Default DefaultRecent.
	Recent int
	// Timeout bounds each exact re-execution. Default DefaultTimeout.
	Timeout time.Duration
	// Window and Buckets shape the sliding observed-recall series, like the
	// SLO window: Buckets rings of Window/Buckets each.
	Window  time.Duration
	Buckets int
	// ExactFault, when set, is consulted before every exact re-execution; a
	// non-nil return aborts the sample and counts in
	// shadow_exact_errors_total. It is the chaos-drill hook: fault the
	// shadow path deterministically without touching the serving path.
	ExactFault func() error
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Queue <= 0 {
		c.Queue = DefaultQueue
	}
	if c.Worst <= 0 {
		c.Worst = DefaultWorst
	}
	if c.Recent <= 0 {
		c.Recent = DefaultRecent
	}
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.Buckets < 2 {
		c.Buckets = DefaultBuckets
	}
	return c
}

// Result is one ranked answer entry, the common shape of served and exact
// answers ({company id, similarity score} in rank order).
type Result struct {
	ID    int64   `json:"id"`
	Score float64 `json:"score"`
}

// Query is the replayable description of one sampled request — everything
// needed to re-execute it against another serving generation.
type Query struct {
	Kind    string      `json:"kind"` // "similar" or "whitespace"
	ID      int         `json:"id,omitempty"`
	Clients []int       `json:"clients,omitempty"`
	K       int         `json:"k"`
	Filter  core.Filter `json:"-"`
}

// Sample is one enqueued shadow job. Exact re-executes the query as an exact
// scan against the generation the request was served from; Release drops the
// generation reference the submitter acquired for the sample (it runs exactly
// once, whether the sample is processed, dropped on saturation, or drained at
// Close).
type Sample struct {
	Query   Query
	Served  []Result
	TraceID string
	Exact   func(ctx context.Context) ([]Result, error)
	Release func()
}

// Divergence is the served-vs-exact comparison of one sample.
type Divergence struct {
	// Recall is |served ∩ exact| / |exact| (1 when the exact answer is
	// empty): the fraction of the true top-k the ANN answer found.
	Recall float64
	// Top1 reports whether the first-ranked ids agree.
	Top1 bool
	// MeanDisplacement is the mean |served rank − exact rank| over ids
	// present in both answers.
	MeanDisplacement float64
	// MaxDrift is the max |served score − exact score| over common ids.
	MaxDrift float64
	// Missing lists exact-answer ids absent from the served answer, in exact
	// rank order.
	Missing []int64
}

// Diverge compares a served (approximate) answer against the exact one.
func Diverge(served, exact []Result) Divergence {
	d := Divergence{Recall: 1, Top1: true}
	servedRank := make(map[int64]int, len(served))
	for i, r := range served {
		servedRank[r.ID] = i
	}
	var hits, common int
	var dispSum float64
	for i, r := range exact {
		si, ok := servedRank[r.ID]
		if !ok {
			d.Missing = append(d.Missing, r.ID)
			continue
		}
		hits++
		common++
		if diff := si - i; diff < 0 {
			dispSum += float64(-diff)
		} else {
			dispSum += float64(diff)
		}
		if drift := served[si].Score - r.Score; drift < 0 {
			if -drift > d.MaxDrift {
				d.MaxDrift = -drift
			}
		} else if drift > d.MaxDrift {
			d.MaxDrift = drift
		}
	}
	if len(exact) > 0 {
		d.Recall = float64(hits) / float64(len(exact))
	}
	if common > 0 {
		d.MeanDisplacement = dispSum / float64(common)
	}
	if len(served) > 0 || len(exact) > 0 {
		d.Top1 = len(served) > 0 && len(exact) > 0 && served[0].ID == exact[0].ID
	}
	return d
}

// Entry is one worst-divergence ring element of /debug/recall.
type Entry struct {
	Seq              uint64    `json:"seq"`
	Kind             string    `json:"kind"`
	QueryID          int       `json:"query_id,omitempty"`
	Clients          []int     `json:"clients,omitempty"`
	K                int       `json:"k"`
	FilterKey        string    `json:"filter_key"`
	Recall           float64   `json:"recall"`
	Top1             bool      `json:"top1_agree"`
	MeanDisplacement float64   `json:"mean_rank_displacement"`
	MaxDrift         float64   `json:"max_score_drift"`
	Missing          []int64   `json:"missing_ids,omitempty"`
	TraceID          string    `json:"trace_id,omitempty"`
	Time             time.Time `json:"time"`
}

// replayEntry is one replay-buffer element: the query, the answer served at
// sample time, and the recall it scored then — the baseline the reload canary
// diffs the incoming generation against.
type replayEntry struct {
	q      Query
	served []Result
	recall float64
}

// Sampler owns the shadow pipeline: decision stream, queue, worker, metrics,
// worst ring and replay buffer. A nil *Sampler is inert — Sample reports
// false and Submit, Close and Routes are no-ops — so callers wire it
// unconditionally and gate only construction.
type Sampler struct {
	cfg     Config
	started time.Time

	dmu sync.Mutex // decision stream; drawn in arrival order like chaos
	g   *rng.RNG

	queue chan Sample
	done  chan struct{}
	wg    sync.WaitGroup
	cmu   sync.RWMutex // closed flag; Submit holds R, Close holds W
	close bool

	stopTicker func()

	samples  *obs.Counter
	dropped  *obs.Counter
	exactErr *obs.Counter
	recall   *obs.Gauge
	recallW  *obs.WindowedHistogram
	disp     *obs.Histogram
	drift    *obs.Histogram

	canaries   *obs.Counter
	refusals   *obs.Counter
	canJaccard *obs.Gauge
	canDelta   *obs.Gauge

	rmu        sync.Mutex
	seq        uint64
	worst      []Entry
	recent     []replayEntry
	recentNext int
	recentN    int
}

// New builds a Sampler and starts its worker and window ticker. Every metric
// below registers here — lazily, never at package init — so a deployment
// without shadow sampling adds no metric names at all. Call Close to release
// the worker and ticker.
func New(cfg Config) *Sampler {
	cfg = cfg.withDefaults()
	if cfg.SampleN < 1 {
		cfg.SampleN = 1
	}
	r := obs.Default()
	s := &Sampler{
		cfg:     cfg,
		started: time.Now(),
		g:       rng.New(cfg.Seed),
		queue:   make(chan Sample, cfg.Queue),
		done:    make(chan struct{}),
		samples: r.Counter("shadow_samples_total",
			"sampled ANN-served queries whose exact shadow re-execution completed"),
		dropped: r.Counter("shadow_dropped_total",
			"shadow samples dropped because the bounded queue was full (served latency is never blocked on)"),
		exactErr: r.Counter("shadow_exact_errors_total",
			"shadow exact re-executions that failed (deadline, cancelled scan, or injected drill fault)"),
		recall: r.Gauge("ann_observed_recall",
			"mean recall@k of ANN-served answers against exact shadow re-executions over the sliding window"),
		recallW: r.WindowedHistogram("ann_observed_recall_window",
			"sliding-window distribution of per-sample ANN recall@k (shadow-sampled)",
			recallBuckets, cfg.Buckets),
		disp: r.Histogram("shadow_rank_displacement",
			"mean absolute rank displacement of ANN-served answers vs exact, per shadow sample",
			displacementBuckets),
		drift: r.Histogram("shadow_score_drift",
			"max absolute similarity-score drift of ANN-served answers vs exact, per shadow sample",
			driftBuckets),
		canaries: r.Counter("shadow_reload_canaries_total",
			"reload canary replays executed against an incoming generation before the swap"),
		refusals: r.Counter("shadow_reload_refusals_total",
			"reloads refused because the canary generation diff breached the -reload-guard threshold"),
		canJaccard: r.Gauge("shadow_reload_diff_jaccard",
			"mean result-set Jaccard similarity between the serving and incoming generations in the last reload canary"),
		canDelta: r.Gauge("shadow_reload_diff_recall_delta",
			"canary recall minus sampled recall in the last reload canary (negative = incoming generation is worse)"),
		worst:  make([]Entry, 0, cfg.Worst),
		recent: make([]replayEntry, cfg.Recent),
	}
	s.recall.Set(0)
	s.stopTicker = obs.StartWindowTicker(cfg.Window/time.Duration(cfg.Buckets), s.recallW)
	s.wg.Add(1)
	go s.worker()
	return s
}

var (
	recallBuckets       = []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99}
	displacementBuckets = []float64{0.5, 1, 2, 4, 8, 16, 32}
	driftBuckets        = []float64{1e-9, 1e-6, 1e-4, 1e-3, 0.01, 0.05, 0.1, 0.5}
)

// Sample draws one deterministic sampling decision. Call exactly once per
// eligible query (an ANN-served /v1/similar or /v1/whitespace cache miss), in
// arrival order — the decisions come from a single seeded stream, so a pinned
// request sequence replays the same sample set from the same seed. Nil-safe.
func (s *Sampler) Sample() bool {
	if s == nil {
		return false
	}
	s.dmu.Lock()
	hit := s.g.Intn(s.cfg.SampleN) == 0
	s.dmu.Unlock()
	return hit
}

// Submit enqueues one sample without ever blocking the caller: a full queue
// drops the sample and counts it. Release runs exactly once on every path.
// Nil-safe.
func (s *Sampler) Submit(smp Sample) {
	if s == nil {
		if smp.Release != nil {
			smp.Release()
		}
		return
	}
	s.cmu.RLock()
	defer s.cmu.RUnlock()
	if s.close {
		smp.Release()
		return
	}
	select {
	case s.queue <- smp:
	default:
		s.dropped.Inc()
		smp.Release()
	}
}

// worker is the single dedicated shadow goroutine: it drains the queue,
// re-executes each sample exactly and folds the divergence into the metrics,
// worst ring and replay buffer.
func (s *Sampler) worker() {
	defer s.wg.Done()
	for {
		select {
		case smp := <-s.queue:
			s.process(smp)
		case <-s.done:
			// Close already flipped the flag, so no new samples can enter;
			// release the queued remainder without processing.
			for {
				select {
				case smp := <-s.queue:
					smp.Release()
				default:
					return
				}
			}
		}
	}
}

func (s *Sampler) process(smp Sample) {
	defer smp.Release()
	var err error
	if f := s.cfg.ExactFault; f != nil {
		err = f()
	}
	var exact []Result
	if err == nil {
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.Timeout)
		exact, err = smp.Exact(ctx)
		cancel()
	}
	if err != nil {
		s.exactErr.Inc()
		return
	}
	d := Diverge(smp.Served, exact)
	s.samples.Inc()
	s.recallW.Observe(d.Recall)
	if n := s.recallW.Count(); n > 0 {
		s.recall.Set(s.recallW.Sum() / float64(n))
	}
	// A traced sample leaves its trace ID as a bucket exemplar, so a p99
	// divergence bucket links straight to the offending request's span tree.
	if smp.TraceID != "" {
		s.disp.ObserveExemplar(d.MeanDisplacement, smp.TraceID)
		s.drift.ObserveExemplar(d.MaxDrift, smp.TraceID)
	} else {
		s.disp.Observe(d.MeanDisplacement)
		s.drift.Observe(d.MaxDrift)
	}
	s.record(smp, d)
}

// record folds one processed sample into the worst-divergence ring and the
// replay buffer.
func (s *Sampler) record(smp Sample, d Divergence) {
	e := Entry{
		Kind:             smp.Query.Kind,
		QueryID:          smp.Query.ID,
		Clients:          smp.Query.Clients,
		K:                smp.Query.K,
		FilterKey:        smp.Query.Filter.Key(),
		Recall:           d.Recall,
		Top1:             d.Top1,
		MeanDisplacement: d.MeanDisplacement,
		MaxDrift:         d.MaxDrift,
		Missing:          d.Missing,
		TraceID:          smp.TraceID,
		Time:             time.Now().UTC(),
	}
	s.rmu.Lock()
	s.seq++
	e.Seq = s.seq
	s.worst = append(s.worst, e)
	sort.Slice(s.worst, func(a, b int) bool {
		if s.worst[a].Recall != s.worst[b].Recall {
			return s.worst[a].Recall < s.worst[b].Recall
		}
		return s.worst[a].Seq > s.worst[b].Seq // newer first among equals
	})
	if len(s.worst) > s.cfg.Worst {
		s.worst = s.worst[:s.cfg.Worst]
	}
	s.recent[s.recentNext] = replayEntry{q: smp.Query, served: smp.Served, recall: d.Recall}
	s.recentNext = (s.recentNext + 1) % len(s.recent)
	if s.recentN < len(s.recent) {
		s.recentN++
	}
	s.rmu.Unlock()
}

// ObservedRecall returns the sliding-window mean recall and the sample count
// it is estimated from. Nil-safe (0, 0): the SLO layer treats an absent or
// empty-window sampler as "no data, no burn".
func (s *Sampler) ObservedRecall() (mean float64, samples uint64) {
	if s == nil {
		return 0, 0
	}
	n := s.recallW.Count()
	if n == 0 {
		return 0, 0
	}
	return s.recallW.Sum() / float64(n), n
}

// Status is the GET /debug/recall body.
type Status struct {
	Enabled       bool    `json:"enabled"`
	SampleOneIn   int     `json:"sample_one_in"`
	WindowSec     float64 `json:"window_seconds"`
	Samples       uint64  `json:"samples_total"`
	Dropped       uint64  `json:"dropped_total"`
	ExactErrors   uint64  `json:"exact_errors_total"`
	WindowSamples uint64  `json:"window_samples"`
	Recall        float64 `json:"observed_recall"`
	RecallP50     float64 `json:"recall_p50"`
	Worst         []Entry `json:"worst"`
}

// Status snapshots the sampler for /debug/recall.
func (s *Sampler) Status() Status {
	mean, n := s.ObservedRecall()
	out := Status{
		Enabled:       true,
		SampleOneIn:   s.cfg.SampleN,
		WindowSec:     s.cfg.Window.Seconds(),
		Samples:       s.samples.Value(),
		Dropped:       s.dropped.Value(),
		ExactErrors:   s.exactErr.Value(),
		WindowSamples: n,
		Recall:        mean,
		RecallP50:     s.recallW.Quantile(0.5),
	}
	s.rmu.Lock()
	out.Worst = append([]Entry(nil), s.worst...)
	s.rmu.Unlock()
	if out.Worst == nil {
		out.Worst = []Entry{} // render [] rather than null before any sample
	}
	return out
}

// Handler serves GET /debug/recall.
func (s *Sampler) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Status())
	})
}

// Routes returns the /debug/recall route for a debug mux, or nothing on a
// nil sampler — the disabled path leaves every route set unchanged.
func (s *Sampler) Routes() []obs.Route {
	if s == nil {
		return nil
	}
	return []obs.Route{{Pattern: "GET /debug/recall", Handler: s.Handler()}}
}

// GenerationDiff is the reload canary verdict: the last M sampled queries
// replayed against the incoming generation, diffed against what the serving
// generation answered at sample time.
type GenerationDiff struct {
	// Queries counts replayed queries (Errors of them failed and are
	// excluded from the aggregates).
	Queries int `json:"queries"`
	Errors  int `json:"errors,omitempty"`
	// MeanJaccard / MinJaccard aggregate the per-query Jaccard similarity of
	// the served result-id sets between the two generations.
	MeanJaccard float64 `json:"mean_jaccard"`
	MinJaccard  float64 `json:"min_jaccard"`
	// SampledRecall is the mean recall these queries scored when sampled;
	// CanaryRecall is their recall on the incoming generation; RecallDelta is
	// canary minus sampled (negative = the incoming generation is worse).
	SampledRecall float64 `json:"sampled_recall"`
	CanaryRecall  float64 `json:"canary_recall"`
	RecallDelta   float64 `json:"recall_delta"`
}

// Exec re-executes one replayed query against an incoming generation,
// returning its served-path (approximate, when that generation routes scans
// through a pruner) and exact answers.
type Exec func(ctx context.Context, q Query) (served, exact []Result, err error)

// CanaryDiff replays the replay buffer against an incoming generation via
// exec and aggregates the generation diff. ok is false when no sampled
// queries are buffered yet (nothing to diff — callers proceed with the
// reload). The shadow_reload_diff_* gauges are set to the aggregates so the
// diff of the most recent reload is scrapeable.
func (s *Sampler) CanaryDiff(ctx context.Context, exec Exec) (diff GenerationDiff, ok bool) {
	if s == nil {
		return GenerationDiff{}, false
	}
	s.rmu.Lock()
	entries := make([]replayEntry, 0, s.recentN)
	// Oldest first: recentNext points at the slot the next sample overwrites.
	for i := 0; i < s.recentN; i++ {
		entries = append(entries, s.recent[(s.recentNext-s.recentN+i+len(s.recent))%len(s.recent)])
	}
	s.rmu.Unlock()
	if len(entries) == 0 {
		return GenerationDiff{}, false
	}
	diff.Queries = len(entries)
	diff.MinJaccard = 1
	var jSum, oldSum, newSum float64
	var scored int
	for _, e := range entries {
		served, exact, err := exec(ctx, e.q)
		if err != nil {
			diff.Errors++
			continue
		}
		scored++
		j := jaccard(e.served, served)
		jSum += j
		if j < diff.MinJaccard {
			diff.MinJaccard = j
		}
		oldSum += e.recall
		newSum += Diverge(served, exact).Recall
	}
	if scored == 0 {
		diff.MinJaccard = 0
		s.canaries.Inc()
		return diff, true
	}
	diff.MeanJaccard = jSum / float64(scored)
	diff.SampledRecall = oldSum / float64(scored)
	diff.CanaryRecall = newSum / float64(scored)
	diff.RecallDelta = diff.CanaryRecall - diff.SampledRecall
	s.canaries.Inc()
	s.canJaccard.Set(diff.MeanJaccard)
	s.canDelta.Set(diff.RecallDelta)
	return diff, true
}

// RecordRefusal counts one guarded reload refusal.
func (s *Sampler) RecordRefusal() {
	if s != nil {
		s.refusals.Inc()
	}
}

// jaccard is |a ∩ b| / |a ∪ b| over result-id sets (1 when both are empty).
func jaccard(a, b []Result) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	set := make(map[int64]bool, len(a))
	for _, r := range a {
		set[r.ID] = true
	}
	var inter int
	union := len(set)
	seen := make(map[int64]bool, len(b))
	for _, r := range b {
		if seen[r.ID] {
			continue
		}
		seen[r.ID] = true
		if set[r.ID] {
			inter++
		} else {
			union++
		}
	}
	return float64(inter) / float64(union)
}

// Close stops the worker and window ticker, releasing any queued samples'
// generation references without processing them. Safe on nil and safe to
// call twice.
func (s *Sampler) Close() {
	if s == nil {
		return
	}
	s.cmu.Lock()
	if s.close {
		s.cmu.Unlock()
		return
	}
	s.close = true
	s.cmu.Unlock()
	close(s.done)
	s.wg.Wait()
	s.stopTicker()
}
