package shadow

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func results(ids ...int64) []Result {
	out := make([]Result, len(ids))
	for i, id := range ids {
		out[i] = Result{ID: id, Score: 1 - float64(i)*0.1}
	}
	return out
}

func TestDiverge(t *testing.T) {
	// Identical answers: perfect recall, agreement, no displacement or drift.
	d := Diverge(results(3, 1, 2), results(3, 1, 2))
	if d.Recall != 1 || !d.Top1 || d.MeanDisplacement != 0 || d.MaxDrift != 0 || len(d.Missing) != 0 {
		t.Fatalf("identical answers diverged: %+v", d)
	}

	// Served missed one exact id and leads with the wrong one.
	d = Diverge(results(1, 3, 9), results(3, 1, 2))
	if got, want := d.Recall, 2.0/3.0; got != want {
		t.Fatalf("recall = %g, want %g", got, want)
	}
	if d.Top1 {
		t.Fatal("top1 should disagree")
	}
	if len(d.Missing) != 1 || d.Missing[0] != 2 {
		t.Fatalf("missing = %v, want [2]", d.Missing)
	}
	// ids 3 and 1 swapped ranks: displacement 1 each, mean 1.
	if d.MeanDisplacement != 1 {
		t.Fatalf("mean displacement = %g, want 1", d.MeanDisplacement)
	}

	// Score drift: same ids, shifted scores.
	served := []Result{{ID: 7, Score: 0.9}, {ID: 8, Score: 0.5}}
	exact := []Result{{ID: 7, Score: 0.95}, {ID: 8, Score: 0.5}}
	d = Diverge(served, exact)
	if got := d.MaxDrift; got < 0.049 || got > 0.051 {
		t.Fatalf("max drift = %g, want ~0.05", got)
	}

	// Empty exact answer: vacuous perfection.
	d = Diverge(nil, nil)
	if d.Recall != 1 || !d.Top1 {
		t.Fatalf("empty answers should be perfect: %+v", d)
	}
	// Served empty, exact not: zero recall, all missing.
	d = Diverge(nil, results(1, 2))
	if d.Recall != 0 || d.Top1 || len(d.Missing) != 2 {
		t.Fatalf("empty served should miss everything: %+v", d)
	}
}

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []Result
		want float64
	}{
		{results(1, 2, 3), results(1, 2, 3), 1},
		{results(1, 2), results(3, 4), 0},
		{results(1, 2, 3), results(2, 3, 4), 0.5},
		{nil, nil, 1},
		{results(1), nil, 0},
	}
	for i, c := range cases {
		if got := jaccard(c.a, c.b); got != c.want {
			t.Fatalf("case %d: jaccard = %g, want %g", i, got, c.want)
		}
	}
}

// TestSampleDeterminism pins the chaos-style decision discipline: one seeded
// stream drawn in arrival order, so two samplers with the same seed and rate
// make the same decision sequence, and a different seed diverges.
func TestSampleDeterminism(t *testing.T) {
	mk := func(seed int64) []bool {
		s := New(Config{SampleN: 3, Seed: seed})
		defer s.Close()
		out := make([]bool, 200)
		for i := range out {
			out[i] = s.Sample()
		}
		return out
	}
	a, b, c := mk(11), mk(11), mk(12)
	var hits int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at decision %d", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("1-in-3 sampling hit %d of %d decisions", hits, len(a))
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical decision streams")
	}
	// A nil sampler never samples.
	var nilS *Sampler
	if nilS.Sample() {
		t.Fatal("nil sampler sampled")
	}
}

func TestProcessWorstRingAndCanary(t *testing.T) {
	s := New(Config{SampleN: 1, Worst: 2, Recent: 4, Queue: 8})
	defer s.Close()
	base := s.samples.Value()

	var releases atomic.Int64
	submit := func(kind string, id int, served, exact []Result) {
		s.Submit(Sample{
			Query:   Query{Kind: kind, ID: id, K: len(exact), Filter: core.Filter{Country: "US"}},
			Served:  served,
			TraceID: fmt.Sprintf("%032x", id),
			Exact:   func(context.Context) ([]Result, error) { return exact, nil },
			Release: func() { releases.Add(1) },
		})
	}
	submit("similar", 1, results(1, 2, 3), results(1, 2, 3)) // recall 1
	submit("similar", 2, results(1, 9), results(1, 2))       // recall 0.5
	submit("whitespace", 3, results(7), results(8))          // recall 0
	waitFor(t, "3 processed samples", func() bool { return s.samples.Value() >= base+3 })
	if got := releases.Load(); got != 3 {
		t.Fatalf("%d releases, want 3", got)
	}

	st := s.Status()
	if !st.Enabled || st.SampleOneIn != 1 {
		t.Fatalf("status header wrong: %+v", st)
	}
	if len(st.Worst) != 2 {
		t.Fatalf("worst ring holds %d entries, want capacity 2", len(st.Worst))
	}
	if st.Worst[0].Recall != 0 || st.Worst[0].Kind != "whitespace" {
		t.Fatalf("worst entry should be the recall-0 whitespace query: %+v", st.Worst[0])
	}
	if st.Worst[1].Recall != 0.5 || st.Worst[1].QueryID != 2 {
		t.Fatalf("second-worst should be the recall-0.5 query: %+v", st.Worst[1])
	}
	if st.Worst[0].TraceID == "" {
		t.Fatal("worst entry lost its trace id")
	}
	if st.Worst[0].FilterKey != (core.Filter{Country: "US"}).Key() {
		t.Fatalf("filter key = %q", st.Worst[0].FilterKey)
	}

	// Canary replay: an incoming generation that answers every query with the
	// same ids has Jaccard 1; one answering disjoint ids has Jaccard 0.
	sameExec := func(_ context.Context, q Query) ([]Result, []Result, error) {
		switch q.ID {
		case 1:
			return results(1, 2, 3), results(1, 2, 3), nil
		case 2:
			return results(1, 9), results(1, 2), nil
		default:
			return results(7), results(8), nil
		}
	}
	diff, ok := s.CanaryDiff(context.Background(), sameExec)
	if !ok {
		t.Fatal("canary found no replay buffer")
	}
	if diff.Queries != 3 || diff.Errors != 0 {
		t.Fatalf("canary replayed %d queries, %d errors", diff.Queries, diff.Errors)
	}
	if diff.MeanJaccard != 1 || diff.MinJaccard != 1 {
		t.Fatalf("identical generation should have Jaccard 1: %+v", diff)
	}
	if diff.RecallDelta != 0 {
		t.Fatalf("identical generation should have zero recall delta: %+v", diff)
	}

	disjoint := func(_ context.Context, q Query) ([]Result, []Result, error) {
		return results(100, 101), results(100, 101), nil
	}
	diff, ok = s.CanaryDiff(context.Background(), disjoint)
	if !ok || diff.MeanJaccard != 0 {
		t.Fatalf("disjoint generation should have Jaccard 0: %+v ok=%v", diff, ok)
	}
	if diff.CanaryRecall != 1 {
		t.Fatalf("disjoint generation is internally consistent, canary recall = %g", diff.CanaryRecall)
	}

	// Per-query replay errors are counted and skipped.
	failing := func(_ context.Context, q Query) ([]Result, []Result, error) {
		if q.ID == 2 {
			return nil, nil, errors.New("id out of range on incoming corpus")
		}
		return results(1), results(1), nil
	}
	diff, ok = s.CanaryDiff(context.Background(), failing)
	if !ok || diff.Errors != 1 || diff.Queries != 3 {
		t.Fatalf("failing replay: %+v ok=%v", diff, ok)
	}
}

func TestExactFaultCountsErrors(t *testing.T) {
	injected := errors.New("injected drill fault")
	var calls atomic.Int64
	s := New(Config{SampleN: 1, ExactFault: func() error {
		if calls.Add(1)%2 == 1 {
			return injected
		}
		return nil
	}})
	defer s.Close()
	errBase, okBase := s.exactErr.Value(), s.samples.Value()

	var releases atomic.Int64
	for i := 0; i < 4; i++ {
		s.Submit(Sample{
			Query:   Query{Kind: "similar", ID: i, K: 1},
			Served:  results(1),
			Exact:   func(context.Context) ([]Result, error) { return results(1), nil },
			Release: func() { releases.Add(1) },
		})
	}
	waitFor(t, "4 samples resolved", func() bool {
		return (s.exactErr.Value()-errBase)+(s.samples.Value()-okBase) >= 4
	})
	if got := s.exactErr.Value() - errBase; got != 2 {
		t.Fatalf("exact errors = %d, want 2 (every other sample faulted)", got)
	}
	if got := s.samples.Value() - okBase; got != 2 {
		t.Fatalf("processed samples = %d, want 2", got)
	}
	if releases.Load() != 4 {
		t.Fatalf("%d releases, want 4 (faulted samples must release too)", releases.Load())
	}
}

// TestSubmitNeverBlocks pins the off-critical-path contract: with the worker
// wedged and the queue full, Submit returns immediately, drops, counts, and
// still releases the sample's generation reference.
func TestSubmitNeverBlocks(t *testing.T) {
	s := New(Config{SampleN: 1, Queue: 1})
	defer s.Close()
	dropBase := s.dropped.Value()

	processing := make(chan struct{})
	unblock := make(chan struct{})
	var releases atomic.Int64
	mk := func(block bool) Sample {
		return Sample{
			Query:  Query{Kind: "similar", K: 1},
			Served: results(1),
			Exact: func(context.Context) ([]Result, error) {
				if block {
					close(processing)
					<-unblock
				}
				return results(1), nil
			},
			Release: func() { releases.Add(1) },
		}
	}
	s.Submit(mk(true)) // worker picks this up and wedges
	<-processing
	s.Submit(mk(false)) // sits in the 1-slot queue
	done := make(chan struct{})
	go func() {
		s.Submit(mk(false)) // queue full: must drop, not block
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Submit blocked on a full queue")
	}
	if got := s.dropped.Value() - dropBase; got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
	waitFor(t, "dropped sample released", func() bool { return releases.Load() >= 1 })
	close(unblock)
	waitFor(t, "all samples released", func() bool { return releases.Load() == 3 })
}

// TestCloseReleasesQueued pins that Close never strands a generation
// reference: queued-but-unprocessed samples are released, and Submit after
// Close releases immediately.
func TestCloseReleasesQueued(t *testing.T) {
	s := New(Config{SampleN: 1, Queue: 4})
	processing := make(chan struct{})
	unblock := make(chan struct{})
	var releases atomic.Int64
	s.Submit(Sample{
		Query: Query{Kind: "similar", K: 1}, Served: results(1),
		Exact: func(context.Context) ([]Result, error) {
			close(processing)
			<-unblock
			return results(1), nil
		},
		Release: func() { releases.Add(1) },
	})
	<-processing
	for i := 0; i < 3; i++ { // queue these behind the wedged worker
		s.Submit(Sample{
			Query: Query{Kind: "similar", K: 1}, Served: results(1),
			Exact:   func(context.Context) ([]Result, error) { return results(1), nil },
			Release: func() { releases.Add(1) },
		})
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(unblock)
	}()
	s.Close()
	if got := releases.Load(); got != 4 {
		t.Fatalf("%d releases after Close, want 4", got)
	}
	s.Submit(Sample{Release: func() { releases.Add(1) }})
	if got := releases.Load(); got != 5 {
		t.Fatalf("Submit after Close must release immediately, got %d", got)
	}
	s.Close() // double Close is safe
}

// TestNilSamplerIsInert pins the disabled-path contract on the nil receiver.
func TestNilSamplerIsInert(t *testing.T) {
	var s *Sampler
	if s.Routes() != nil {
		t.Fatal("nil sampler returned routes")
	}
	if mean, n := s.ObservedRecall(); mean != 0 || n != 0 {
		t.Fatal("nil sampler reported recall")
	}
	if _, ok := s.CanaryDiff(context.Background(), nil); ok {
		t.Fatal("nil sampler produced a canary diff")
	}
	released := false
	s.Submit(Sample{Release: func() { released = true }})
	if !released {
		t.Fatal("nil sampler must release submitted samples")
	}
	s.RecordRefusal()
	s.Close()
}
