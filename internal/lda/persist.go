// LDA model persistence across both IBSNAP container generations.
//
// Save writes the v2 flat container natively: a fixed-size binary "meta"
// section plus the phi matrix as a raw little-endian float64 blob, so a
// loader can point mat.Matrix rows straight at an mmap of the file. SaveV1
// (lda.go) remains the legacy gob writer; Load sniffs the header version
// and accepts either, and LoadFile adds the zero-copy mapped path that
// ibserve uses for startup and /admin/reload.
//
// Compatibility contract, pinned by TestV1V2LoadIdentical: a model saved in
// either format loads to a gob-byte-identical in-memory Model.
package lda

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/mat"
	"repro/internal/snapshot"
)

// v2 section names and the fixed meta layout (little-endian):
// K int64, V int64, Alpha float64, Beta float64, InferIters int64.
const (
	sectionMeta = "meta"
	sectionPhi  = "phi"
	metaLen     = 40
)

// Save serializes the model as an IBSNAP v2 flat container of kind
// KindModel: O(sections) to open, mmap-aliasable phi. Readers older than
// the v2 format reject the file with a VersionError (use SaveV1 for them).
func (m *Model) Save(w io.Writer) error {
	b := snapshot.NewBuilder(KindModel)
	meta := make([]byte, metaLen)
	binary.LittleEndian.PutUint64(meta[0:], uint64(int64(m.K)))
	binary.LittleEndian.PutUint64(meta[8:], uint64(int64(m.V)))
	binary.LittleEndian.PutUint64(meta[16:], math.Float64bits(m.Alpha))
	binary.LittleEndian.PutUint64(meta[24:], math.Float64bits(m.Beta))
	binary.LittleEndian.PutUint64(meta[32:], uint64(int64(m.InferIters)))
	if err := b.AddSection(sectionMeta, meta); err != nil {
		return err
	}
	if err := b.AddFloat64(sectionPhi, m.Phi.Data); err != nil {
		return err
	}
	return b.Write(w)
}

// modelFromV2 decodes a parsed v2 container. When frozen is set (the mmap
// path) the phi matrix aliases the mapping read-only; otherwise it aliases
// the heap buffer and stays writable.
func modelFromV2(f *snapshot.File, frozen bool) (*Model, error) {
	if f.Kind() != KindModel {
		return nil, &snapshot.KindError{Want: KindModel, Got: f.Kind()}
	}
	meta, err := f.Section(sectionMeta)
	if err != nil {
		return nil, fmt.Errorf("lda: loading model: %w", err)
	}
	if len(meta) != metaLen {
		return nil, fmt.Errorf("lda: corrupt model meta section (%d bytes, want %d)", len(meta), metaLen)
	}
	k := int64(binary.LittleEndian.Uint64(meta[0:]))
	v := int64(binary.LittleEndian.Uint64(meta[8:]))
	alpha := math.Float64frombits(binary.LittleEndian.Uint64(meta[16:]))
	beta := math.Float64frombits(binary.LittleEndian.Uint64(meta[24:]))
	iters := int64(binary.LittleEndian.Uint64(meta[32:]))
	if k < 1 || v < 1 || k*v > int64(math.MaxInt) || iters < 0 {
		return nil, fmt.Errorf("lda: corrupt model (K=%d, V=%d)", k, v)
	}
	phi, err := f.Float64Section(sectionPhi)
	if err != nil {
		return nil, fmt.Errorf("lda: loading model: %w", err)
	}
	if int64(len(phi)) != k*v {
		return nil, fmt.Errorf("lda: corrupt model (K=%d, V=%d, phi=%d)", k, v, len(phi))
	}
	var pm *mat.Matrix
	if frozen {
		pm = mat.FrozenFromSlice(int(k), int(v), phi)
	} else {
		pm = mat.FromSlice(int(k), int(v), phi)
	}
	return &Model{
		K: int(k), V: int(v), Alpha: alpha, Beta: beta,
		Phi: pm, InferIters: int(iters),
	}, nil
}

// Load deserializes a model from either container generation, dispatching
// on the sniffed header version: v1 gob (legacy) or v2 flat. The stream is
// fully buffered either way (v1's reader buffers the payload to checksum
// it; v2 parses in place), so Load from a reader is O(bytes) — the
// zero-copy path is LoadFile.
func Load(r io.Reader) (*Model, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("lda: loading model: %w", err)
	}
	ver, err := snapshot.SniffVersion(data)
	if err != nil {
		return nil, fmt.Errorf("lda: loading model: %w", err)
	}
	switch ver {
	case 1:
		return loadV1(bytes.NewReader(data))
	case snapshot.Version2:
		f, err := snapshot.OpenV2(data)
		if err != nil {
			return nil, fmt.Errorf("lda: loading model: %w", err)
		}
		defer f.Close()
		return modelFromV2(f, false)
	default:
		return nil, fmt.Errorf("lda: loading model: %w", &snapshot.VersionError{Got: ver})
	}
}

// LoadFile loads the model at path through the fastest route its format
// allows. A v2 container is mmapped: phi aliases the mapping (frozen
// matrix, copy-on-train via Mutable) and loading is O(sections). A v1
// container falls back to the buffered gob decode. The returned close
// function releases the mapping and must not run before every reference to
// the model's matrices is unreachable — in ibserve that is when the last
// in-flight request against the generation completes.
func LoadFile(path string) (*Model, func() error, error) {
	ver, err := snapshot.FileVersion(path)
	if err != nil {
		return nil, nil, fmt.Errorf("lda: loading %s: %w", path, err)
	}
	if ver != snapshot.Version2 {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		m, err := Load(f)
		if err != nil {
			return nil, nil, fmt.Errorf("lda: loading %s: %w", path, err)
		}
		return m, func() error { return nil }, nil
	}
	mf, err := snapshot.Map(path, snapshot.MapOptions{})
	if err != nil {
		return nil, nil, fmt.Errorf("lda: mapping %s: %w", path, err)
	}
	m, err := modelFromV2(mf, true)
	if err != nil {
		mf.Close()
		return nil, nil, fmt.Errorf("lda: loading %s: %w", path, err)
	}
	return m, mf.Close, nil
}
