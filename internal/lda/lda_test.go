package lda

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
)

// twoTopicDocs builds a corpus with two disjoint planted topics:
// words 0-4 (topic A) and words 5-9 (topic B). Half the documents draw from
// A, half from B.
func twoTopicDocs(n int, g *rng.RNG) [][]int {
	docs := make([][]int, n)
	for d := range docs {
		base := 0
		if d%2 == 1 {
			base = 5
		}
		ln := 4 + g.Intn(3)
		doc := make([]int, ln)
		for i := range doc {
			doc[i] = base + g.Intn(5)
		}
		docs[d] = doc
	}
	return docs
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Topics: 0, V: 5},
		{Topics: 2, V: 0},
		{Topics: 2, V: 5, Alpha: -1},
		{Topics: 2, V: 5, Iterations: -5},
	}
	for i, cfg := range bad {
		if _, err := Train(cfg, [][]int{{0}}, nil, rng.New(1)); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestTrainRejectsBadTokens(t *testing.T) {
	if _, err := Train(Config{Topics: 2, V: 3}, [][]int{{0, 7}}, nil, rng.New(1)); err == nil {
		t.Fatal("out-of-range token accepted")
	}
	if _, err := Train(Config{Topics: 2, V: 3}, [][]int{{0}}, [][]float64{{1, 2}}, rng.New(1)); err == nil {
		t.Fatal("mismatched weights accepted")
	}
	if _, err := Train(Config{Topics: 2, V: 3}, [][]int{{0}}, [][]float64{{-1}}, rng.New(1)); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := Train(Config{Topics: 2, V: 3}, [][]int{{0}, {1}}, [][]float64{{1}}, rng.New(1)); err == nil {
		t.Fatal("short weights slice accepted")
	}
}

func TestPhiRowsAreDistributions(t *testing.T) {
	g := rng.New(2)
	docs := twoTopicDocs(200, g)
	m, err := Train(Config{Topics: 2, V: 10, BurnIn: 20, Iterations: 60}, docs, nil, g)
	if err != nil {
		t.Fatal(err)
	}
	for z := 0; z < m.K; z++ {
		row := m.Phi.Row(z)
		var s float64
		for _, p := range row {
			if p <= 0 || p > 1 {
				t.Fatalf("phi[%d] has invalid probability %v", z, p)
			}
			s += p
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("phi[%d] sums to %v", z, s)
		}
	}
}

func TestRecoversPlantedTopics(t *testing.T) {
	g := rng.New(3)
	docs := twoTopicDocs(400, g)
	m, err := Train(Config{Topics: 2, V: 10, Alpha: 0.5, BurnIn: 30, Iterations: 80}, docs, nil, g)
	if err != nil {
		t.Fatal(err)
	}
	// Each topic should concentrate nearly all its mass on one 5-word block.
	for z := 0; z < 2; z++ {
		row := m.Phi.Row(z)
		var massA, massB float64
		for w := 0; w < 5; w++ {
			massA += row[w]
		}
		for w := 5; w < 10; w++ {
			massB += row[w]
		}
		if math.Max(massA, massB) < 0.9 {
			t.Fatalf("topic %d not separated: A=%v B=%v", z, massA, massB)
		}
	}
	// The two topics must specialize on different blocks.
	a0 := 0.0
	for w := 0; w < 5; w++ {
		a0 += m.Phi.At(0, w)
	}
	a1 := 0.0
	for w := 0; w < 5; w++ {
		a1 += m.Phi.At(1, w)
	}
	if (a0 > 0.5) == (a1 > 0.5) {
		t.Fatal("both topics collapsed onto the same word block")
	}
}

func TestInferThetaSeparatesDocs(t *testing.T) {
	g := rng.New(5)
	docs := twoTopicDocs(400, g)
	m, err := Train(Config{Topics: 2, V: 10, Alpha: 0.5, BurnIn: 30, Iterations: 80}, docs, nil, g)
	if err != nil {
		t.Fatal(err)
	}
	thetaA := m.InferTheta([]int{0, 1, 2, 3, 4}, g)
	thetaB := m.InferTheta([]int{5, 6, 7, 8, 9}, g)
	// Each should be dominated by a different topic.
	if mat.ArgMax(thetaA) == mat.ArgMax(thetaB) {
		t.Fatalf("thetas not separated: %v vs %v", thetaA, thetaB)
	}
	for _, th := range [][]float64{thetaA, thetaB} {
		var s float64
		for _, v := range th {
			if v < 0 {
				t.Fatalf("negative theta %v", th)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("theta sums to %v", s)
		}
	}
	// empty document: uniform prior
	thetaE := m.InferTheta(nil, g)
	for _, v := range thetaE {
		if math.Abs(v-0.5) > 1e-12 {
			t.Fatalf("empty doc theta = %v, want uniform", thetaE)
		}
	}
}

func TestPerplexityBeatsUniformOnStructuredData(t *testing.T) {
	g := rng.New(7)
	train := twoTopicDocs(400, g)
	test := twoTopicDocs(100, g)
	m, err := Train(Config{Topics: 2, V: 10, Alpha: 0.5, BurnIn: 30, Iterations: 80}, train, nil, g)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Perplexity(test, g)
	// Uniform over 10 words has perplexity 10; with two planted 5-word
	// topics the model should approach ~5.
	if p >= 8 {
		t.Fatalf("perplexity = %v, want << 10 on structured data", p)
	}
	if p < 1 {
		t.Fatalf("perplexity = %v < 1 is impossible", p)
	}
	if !math.IsInf(m.Perplexity(nil, g), 1) {
		t.Fatal("empty test set should give +Inf")
	}
}

func TestWordDistSumsToOne(t *testing.T) {
	g := rng.New(9)
	docs := twoTopicDocs(100, g)
	m, err := Train(Config{Topics: 3, V: 10, BurnIn: 10, Iterations: 30}, docs, nil, g)
	if err != nil {
		t.Fatal(err)
	}
	theta := m.InferTheta(docs[0], g)
	d := m.WordDist(theta)
	var s float64
	for _, p := range d {
		s += p
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("word distribution sums to %v", s)
	}
}

func TestRepresentationsShape(t *testing.T) {
	g := rng.New(11)
	docs := twoTopicDocs(50, g)
	m, err := Train(Config{Topics: 4, V: 10, BurnIn: 10, Iterations: 30}, docs, nil, g)
	if err != nil {
		t.Fatal(err)
	}
	b := m.Representations(docs, g)
	if b.Rows != 50 || b.Cols != 4 {
		t.Fatalf("representations shape %dx%d", b.Rows, b.Cols)
	}
	for i := 0; i < b.Rows; i++ {
		var s float64
		for _, v := range b.Row(i) {
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestProductEmbeddings(t *testing.T) {
	g := rng.New(13)
	docs := twoTopicDocs(300, g)
	m, err := Train(Config{Topics: 2, V: 10, Alpha: 0.5, BurnIn: 30, Iterations: 80}, docs, nil, g)
	if err != nil {
		t.Fatal(err)
	}
	e := m.ProductEmbeddings()
	if e.Rows != 10 || e.Cols != 2 {
		t.Fatalf("embedding shape %dx%d", e.Rows, e.Cols)
	}
	// words from the same planted topic should have similar embeddings,
	// words from different topics dissimilar
	same := mat.CosineSim(e.Row(0), e.Row(1))
	diff := mat.CosineSim(e.Row(0), e.Row(6))
	if same <= diff {
		t.Fatalf("embedding similarity: same-topic %v <= cross-topic %v", same, diff)
	}
}

func TestTopWords(t *testing.T) {
	g := rng.New(15)
	docs := twoTopicDocs(300, g)
	m, err := Train(Config{Topics: 2, V: 10, Alpha: 0.5, BurnIn: 30, Iterations: 80}, docs, nil, g)
	if err != nil {
		t.Fatal(err)
	}
	top := m.TopWords(0, 5)
	if len(top) != 5 {
		t.Fatalf("TopWords returned %d", len(top))
	}
	// all from one planted block
	lo, hi := 0, 0
	for _, w := range top {
		if w < 5 {
			lo++
		} else {
			hi++
		}
	}
	if lo != 5 && hi != 5 {
		t.Fatalf("top words mixed blocks: %v", top)
	}
	// descending probability
	row := m.Phi.Row(0)
	for i := 1; i < len(top); i++ {
		if row[top[i]] > row[top[i-1]]+1e-12 {
			t.Fatal("top words not sorted by probability")
		}
	}
	// n > V clamps
	if got := m.TopWords(0, 100); len(got) != 10 {
		t.Fatalf("clamped TopWords = %d", len(got))
	}
}

func TestParameterCount(t *testing.T) {
	m := &Model{K: 4, V: 38}
	if m.ParameterCount() != 4+4*38 {
		t.Fatalf("ParameterCount = %d, want 156 (the paper's LDA4 figure)", m.ParameterCount())
	}
}

func TestWeightedTrainingRuns(t *testing.T) {
	g := rng.New(17)
	docs := twoTopicDocs(100, g)
	weights := make([][]float64, len(docs))
	for d, doc := range docs {
		w := make([]float64, len(doc))
		for i := range w {
			w[i] = 0.5 + g.Float64()
		}
		weights[d] = w
	}
	m, err := Train(Config{Topics: 2, V: 10, BurnIn: 10, Iterations: 30}, docs, weights, g)
	if err != nil {
		t.Fatal(err)
	}
	for z := 0; z < 2; z++ {
		var s float64
		for _, p := range m.Phi.Row(z) {
			s += p
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("weighted phi[%d] sums to %v", z, s)
		}
	}
}

func TestDeterminism(t *testing.T) {
	docs := twoTopicDocs(100, rng.New(21))
	m1, err := Train(Config{Topics: 2, V: 10, BurnIn: 5, Iterations: 20}, docs, nil, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(Config{Topics: 2, V: 10, BurnIn: 5, Iterations: 20}, docs, nil, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(m1.Phi, m2.Phi, 0) {
		t.Fatal("training not deterministic under identical seeds")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	g := rng.New(23)
	docs := twoTopicDocs(100, g)
	m, err := Train(Config{Topics: 3, V: 10, BurnIn: 5, Iterations: 20}, docs, nil, g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.K != m.K || got.V != m.V || got.Alpha != m.Alpha || got.Beta != m.Beta {
		t.Fatalf("metadata mismatch: %+v", got)
	}
	if !mat.Equal(got.Phi, m.Phi, 0) {
		t.Fatal("phi mismatch after round trip")
	}
	if _, err := Load(bytes.NewBufferString("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestEmptyDocumentsTolerated(t *testing.T) {
	g := rng.New(25)
	docs := [][]int{{}, {0, 1}, {}, {2, 3}}
	m, err := Train(Config{Topics: 2, V: 4, BurnIn: 5, Iterations: 15}, docs, nil, g)
	if err != nil {
		t.Fatal(err)
	}
	b := m.Representations(docs, g)
	if b.Rows != 4 {
		t.Fatalf("rows = %d", b.Rows)
	}
}
