// Package lda implements Latent Dirichlet Allocation estimated by collapsed
// Gibbs sampling — the paper's best-performing model for company-product
// data. Companies are documents, product categories are words. The package
// supports the paper's two input variants (binary bag-of-words and TF-IDF
// token weights), held-out perplexity by fold-in inference, per-company
// topic mixtures (the learned company features B) and per-product topic
// embeddings (used for the paper's t-SNE Figures 8-9).
package lda

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/rng"
)

var (
	trainRuns = obs.Default().Counter("lda_train_runs_total",
		"completed lda.Train calls")
	trainIterations = obs.Default().Counter("lda_train_iterations_total",
		"collapsed-Gibbs sweeps completed across all LDA training runs")
	trainTokens = obs.Default().Counter("lda_train_tokens_total",
		"token-topic assignments resampled across all LDA training runs")
)

// Config parameterizes LDA training.
type Config struct {
	Topics int // number of latent topics K (the paper sweeps 2..16)
	V      int // vocabulary size M

	// Alpha is the symmetric document-topic prior; 0 selects 1/K, the
	// default of the gensim implementation the paper used. Beta is the
	// symmetric topic-word prior; 0 selects 0.01.
	Alpha, Beta float64

	// Gibbs schedule: BurnIn sweeps discarded, then Iterations sweeps of
	// which every SampleLag-th contributes to the posterior mean of phi.
	// Zero values select 50 / 150 / 5.
	BurnIn, Iterations, SampleLag int

	// InferIterations controls fold-in inference on held-out documents
	// (burn-in half, averaging half). Zero selects 30.
	InferIterations int

	// Progress, when non-nil, is invoked after every Gibbs sweep with the
	// sweep number, the in-sample log-likelihood under the current count
	// estimates, and token throughput. The hook is outside the sampler's
	// random-number stream, so trained models are bit-identical with and
	// without it.
	Progress obs.Progress
}

func (c *Config) fillDefaults() {
	if c.Alpha == 0 {
		c.Alpha = 1 / float64(c.Topics)
	}
	if c.Beta == 0 {
		c.Beta = 0.01
	}
	if c.BurnIn == 0 {
		c.BurnIn = 50
	}
	if c.Iterations == 0 {
		c.Iterations = 150
	}
	if c.SampleLag == 0 {
		c.SampleLag = 5
	}
	if c.InferIterations == 0 {
		c.InferIterations = 30
	}
}

func (c *Config) validate() error {
	if c.Topics < 1 {
		return fmt.Errorf("lda: Topics must be >= 1, got %d", c.Topics)
	}
	if c.V < 1 {
		return fmt.Errorf("lda: V must be >= 1, got %d", c.V)
	}
	if c.Alpha < 0 || c.Beta < 0 {
		return fmt.Errorf("lda: priors must be non-negative")
	}
	if c.BurnIn < 0 || c.Iterations < 1 || c.SampleLag < 1 || c.InferIterations < 2 {
		return fmt.Errorf("lda: invalid Gibbs schedule (burnin %d, iters %d, lag %d, infer %d)",
			c.BurnIn, c.Iterations, c.SampleLag, c.InferIterations)
	}
	return nil
}

// Model is a trained LDA model. Phi holds the posterior-mean topic-word
// distributions; each row sums to 1.
type Model struct {
	K, V        int
	Alpha, Beta float64
	Phi         *mat.Matrix // K x V
	InferIters  int
}

// Train runs collapsed Gibbs sampling on the documents. docs[d] lists the
// token ids of document d (for the binary install-base input every owned
// category appears once). weights, when non-nil, gives a positive weight per
// token (the TF-IDF input variant); nil means unit weights. Documents may be
// empty; they simply contribute nothing.
func Train(cfg Config, docs [][]int, weights [][]float64, g *rng.RNG) (*Model, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if weights != nil && len(weights) != len(docs) {
		return nil, fmt.Errorf("lda: weights length %d != docs length %d", len(weights), len(docs))
	}
	k, v := cfg.Topics, cfg.V

	// token-level state
	type token struct {
		doc, word int
		weight    float64
		topic     int
	}
	var tokens []token
	for d, doc := range docs {
		for i, w := range doc {
			if w < 0 || w >= v {
				return nil, fmt.Errorf("lda: document %d has token %d outside [0,%d)", d, w, v)
			}
			wt := 1.0
			if weights != nil {
				if len(weights[d]) != len(doc) {
					return nil, fmt.Errorf("lda: weights[%d] length %d != doc length %d", d, len(weights[d]), len(doc))
				}
				wt = weights[d][i]
				if wt <= 0 || math.IsNaN(wt) {
					return nil, fmt.Errorf("lda: weights must be positive, got %v", wt)
				}
			}
			tokens = append(tokens, token{doc: d, word: w, weight: wt})
		}
	}

	// count matrices (weighted)
	nzw := mat.New(k, v)         // topic-word
	nz := make([]float64, k)     // topic totals
	ndz := mat.New(len(docs), k) // doc-topic
	alpha, beta := cfg.Alpha, cfg.Beta
	vbeta := float64(v) * beta

	// random initialization
	for i := range tokens {
		t := &tokens[i]
		t.topic = g.Intn(k)
		nzw.Data[t.topic*v+t.word] += t.weight
		nz[t.topic] += t.weight
		ndz.Data[t.doc*k+t.topic] += t.weight
	}

	sp := obs.Start("lda.train")
	// The progress hook's in-sample log-likelihood reads the current count
	// matrices only — no random draws — so installing a hook never perturbs
	// the sampler's stream. Both the per-document weight totals and the
	// scan are skipped entirely when the hook is unset.
	var logLik func() float64
	if cfg.Progress != nil {
		docW := make([]float64, len(docs))
		for i := range tokens {
			docW[tokens[i].doc] += tokens[i].weight
		}
		logLik = func() float64 {
			var ll float64
			for i := range tokens {
				t := &tokens[i]
				drow := ndz.Row(t.doc)
				denomD := docW[t.doc] + alpha*float64(k)
				var p float64
				for z := 0; z < k; z++ {
					p += (drow[z] + alpha) / denomD * (nzw.Data[z*v+t.word] + beta) / (nz[z] + vbeta)
				}
				ll += t.weight * math.Log(p)
			}
			return ll
		}
	}

	probs := make([]float64, k)
	phiAcc := mat.New(k, v)
	samples := 0
	total := cfg.BurnIn + cfg.Iterations
	for sweep := 0; sweep < total; sweep++ {
		var sweepStart time.Time
		if cfg.Progress != nil {
			sweepStart = time.Now()
		}
		for i := range tokens {
			t := &tokens[i]
			// remove token from counts
			nzw.Data[t.topic*v+t.word] -= t.weight
			nz[t.topic] -= t.weight
			ndz.Data[t.doc*k+t.topic] -= t.weight
			// full conditional
			drow := ndz.Row(t.doc)
			for z := 0; z < k; z++ {
				probs[z] = (drow[z] + alpha) * (nzw.Data[z*v+t.word] + beta) / (nz[z] + vbeta)
			}
			t.topic = g.Categorical(probs)
			// add back
			nzw.Data[t.topic*v+t.word] += t.weight
			nz[t.topic] += t.weight
			ndz.Data[t.doc*k+t.topic] += t.weight
		}
		trainIterations.Inc()
		trainTokens.Add(uint64(len(tokens)))
		if cfg.Progress != nil {
			elapsed := time.Since(sweepStart).Seconds()
			tps := math.Inf(1)
			if elapsed > 0 {
				tps = float64(len(tokens)) / elapsed
			}
			cfg.Progress(obs.ProgressEvent{
				Model: "lda", Iteration: sweep + 1, Total: total,
				Loss:         logLik(),
				TokensPerSec: tps,
			})
		}
		if sweep >= cfg.BurnIn && (sweep-cfg.BurnIn)%cfg.SampleLag == 0 {
			for z := 0; z < k; z++ {
				denom := nz[z] + vbeta
				for w := 0; w < v; w++ {
					phiAcc.Data[z*v+w] += (nzw.Data[z*v+w] + beta) / denom
				}
			}
			samples++
		}
	}
	if samples == 0 { // schedule too short to sample; use final state
		for z := 0; z < k; z++ {
			denom := nz[z] + vbeta
			for w := 0; w < v; w++ {
				phiAcc.Data[z*v+w] += (nzw.Data[z*v+w] + beta) / denom
			}
		}
		samples = 1
	}
	phiAcc.Scale(1 / float64(samples))
	// normalize rows exactly
	for z := 0; z < k; z++ {
		mat.Normalize(phiAcc.Row(z))
	}
	trainRuns.Inc()
	sp.End()
	return &Model{K: k, V: v, Alpha: alpha, Beta: beta, Phi: phiAcc, InferIters: cfg.InferIterations}, nil
}

// InferTheta estimates the topic mixture of a (possibly unseen) document by
// fold-in Gibbs sampling with Phi fixed. Empty documents return the prior
// mean (uniform).
func (m *Model) InferTheta(doc []int, g *rng.RNG) []float64 {
	theta := make([]float64, m.K)
	if len(doc) == 0 {
		for z := range theta {
			theta[z] = 1 / float64(m.K)
		}
		return theta
	}
	assign := make([]int, len(doc))
	ndk := make([]float64, m.K)
	for i, w := range doc {
		if w < 0 || w >= m.V {
			panic(fmt.Sprintf("lda: token %d outside vocabulary [0,%d)", w, m.V))
		}
		assign[i] = g.Intn(m.K)
		ndk[assign[i]]++
	}
	probs := make([]float64, m.K)
	burn := m.InferIters / 2
	thetaAcc := make([]float64, m.K)
	samples := 0
	for it := 0; it < m.InferIters; it++ {
		for i, w := range doc {
			ndk[assign[i]]--
			for z := 0; z < m.K; z++ {
				probs[z] = (ndk[z] + m.Alpha) * m.Phi.Data[z*m.V+w]
			}
			assign[i] = g.Categorical(probs)
			ndk[assign[i]]++
		}
		if it >= burn {
			denom := float64(len(doc)) + m.Alpha*float64(m.K)
			for z := 0; z < m.K; z++ {
				thetaAcc[z] += (ndk[z] + m.Alpha) / denom
			}
			samples++
		}
	}
	for z := 0; z < m.K; z++ {
		theta[z] = thetaAcc[z] / float64(samples)
	}
	mat.Normalize(theta)
	return theta
}

// WordProb returns P(w | theta) = Σ_z theta_z Phi_zw.
func (m *Model) WordProb(theta []float64, w int) float64 {
	var p float64
	for z := 0; z < m.K; z++ {
		p += theta[z] * m.Phi.Data[z*m.V+w]
	}
	return p
}

// WordDist returns the full P(w | theta) distribution.
func (m *Model) WordDist(theta []float64) []float64 {
	out := make([]float64, m.V)
	for w := 0; w < m.V; w++ {
		out[w] = m.WordProb(theta, w)
	}
	return out
}

// Perplexity computes held-out perplexity by leave-one-out document
// completion: each test token is scored under the topic mixture inferred
// from all the *other* tokens of its document, so no token is used to infer
// the mixture that predicts it. (Plain fold-in — inferring theta from the
// full document including the scored token — lets large-K models overfit
// the evaluation and destroys the U-shaped perplexity-vs-topics curve the
// paper reports in Figure 2; leave-one-out keeps the evaluation honest
// while giving the exchangeable model its full bidirectional context.)
// Single-token documents are scored under the prior-mean mixture.
func (m *Model) Perplexity(docs [][]int, g *rng.RNG) float64 {
	var logSum float64
	var n int
	rest := make([]int, 0, 64)
	for _, doc := range docs {
		if len(doc) == 0 {
			continue
		}
		if len(doc) == 1 {
			theta := m.InferTheta(nil, g)
			logSum += math.Log(m.WordProb(theta, doc[0]))
			n++
			continue
		}
		for i, w := range doc {
			rest = rest[:0]
			rest = append(rest, doc[:i]...)
			rest = append(rest, doc[i+1:]...)
			theta := m.InferTheta(rest, g)
			logSum += math.Log(m.WordProb(theta, w))
			n++
		}
	}
	if n == 0 {
		return math.Inf(1)
	}
	return math.Exp(-logSum / float64(n))
}

// Representations infers the company feature matrix B (N x K): row d is the
// topic mixture of document d. This is the representation used for company
// similarity search and clustering.
func (m *Model) Representations(docs [][]int, g *rng.RNG) *mat.Matrix {
	out := mat.New(len(docs), m.K)
	for d, doc := range docs {
		copy(out.Row(d), m.InferTheta(doc, g))
	}
	return out
}

// ProductEmbeddings returns the V x K matrix whose row w is
// P(topic | product w) ∝ Phi_zw, the product embedding in topic space that
// the paper projects with t-SNE (Figures 8-9).
func (m *Model) ProductEmbeddings() *mat.Matrix {
	out := mat.New(m.V, m.K)
	for w := 0; w < m.V; w++ {
		row := out.Row(w)
		for z := 0; z < m.K; z++ {
			row[z] = m.Phi.Data[z*m.V+w]
		}
		mat.Normalize(row)
	}
	return out
}

// TopWords returns the n highest-probability words of topic z, for
// interpretability reporting (the paper stresses LDA's interpretable
// parameters as a key advantage for marketing use).
func (m *Model) TopWords(z, n int) []int {
	if z < 0 || z >= m.K {
		panic(fmt.Sprintf("lda: topic %d out of range", z))
	}
	idx := make([]int, m.V)
	for i := range idx {
		idx[i] = i
	}
	row := m.Phi.Row(z)
	// partial selection sort: n is small
	if n > m.V {
		n = m.V
	}
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < m.V; j++ {
			if row[idx[j]] > row[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:n]
}

// ParameterCount returns the number of free parameters, nt + nt*M, the
// figure the paper uses when contrasting LDA's ~156 parameters with the
// LSTM's ~50,000.
func (m *Model) ParameterCount() int { return m.K + m.K*m.V }

type gobModel struct {
	K, V        int
	Alpha, Beta float64
	PhiData     []float64
	InferIters  int
}

// Save serializes the model with encoding/gob.
func (m *Model) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(gobModel{
		K: m.K, V: m.V, Alpha: m.Alpha, Beta: m.Beta,
		PhiData: m.Phi.Data, InferIters: m.InferIters,
	})
}

// Load deserializes a model written by Save.
func Load(r io.Reader) (*Model, error) {
	var g gobModel
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("lda: decoding model: %w", err)
	}
	if g.K < 1 || g.V < 1 || len(g.PhiData) != g.K*g.V {
		return nil, fmt.Errorf("lda: corrupt model (K=%d, V=%d, phi=%d)", g.K, g.V, len(g.PhiData))
	}
	return &Model{
		K: g.K, V: g.V, Alpha: g.Alpha, Beta: g.Beta,
		Phi: mat.FromSlice(g.K, g.V, g.PhiData), InferIters: g.InferIters,
	}, nil
}
