// Package lda implements Latent Dirichlet Allocation estimated by collapsed
// Gibbs sampling — the paper's best-performing model for company-product
// data. Companies are documents, product categories are words. The package
// supports the paper's two input variants (binary bag-of-words and TF-IDF
// token weights), held-out perplexity by fold-in inference, per-company
// topic mixtures (the learned company features B) and per-product topic
// embeddings (used for the paper's t-SNE Figures 8-9).
package lda

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// Snapshot container kinds for LDA artifacts.
const (
	KindModel      = "lda-model"
	KindCheckpoint = "lda-checkpoint"
)

var (
	trainRuns = obs.Default().Counter("lda_train_runs_total",
		"completed lda.Train calls")
	trainIterations = obs.Default().Counter("lda_train_iterations_total",
		"collapsed-Gibbs sweeps completed across all LDA training runs")
	trainTokens = obs.Default().Counter("lda_train_tokens_total",
		"token-topic assignments resampled across all LDA training runs")
)

// Config parameterizes LDA training.
type Config struct {
	Topics int // number of latent topics K (the paper sweeps 2..16)
	V      int // vocabulary size M

	// Alpha is the symmetric document-topic prior; 0 selects 1/K, the
	// default of the gensim implementation the paper used. Beta is the
	// symmetric topic-word prior; 0 selects 0.01.
	Alpha, Beta float64

	// Gibbs schedule: BurnIn sweeps discarded, then Iterations sweeps of
	// which every SampleLag-th contributes to the posterior mean of phi.
	// Zero values select 50 / 150 / 5.
	BurnIn, Iterations, SampleLag int

	// InferIterations controls fold-in inference on held-out documents
	// (burn-in half, averaging half). Zero selects 30.
	InferIterations int

	// Progress, when non-nil, is invoked after every Gibbs sweep with the
	// sweep number, the in-sample log-likelihood under the current count
	// estimates, and token throughput. The hook is outside the sampler's
	// random-number stream, so trained models are bit-identical with and
	// without it.
	Progress obs.Progress

	// Checkpoint, when non-nil, receives a full sampler snapshot every
	// CheckpointEvery completed sweeps (and once more on context
	// cancellation). The snapshot owns its memory and stays valid after
	// training continues. Like Progress, the hook draws no random numbers,
	// so checkpointed runs train bit-identically to unhooked runs. A hook
	// error aborts training.
	Checkpoint func(*Checkpoint) error
	// CheckpointEvery is the sweep interval between Checkpoint calls;
	// 0 disables periodic checkpoints (a cancellation checkpoint is still
	// written when Checkpoint is set).
	CheckpointEvery int
}

// ConfigState is the hookless, serializable part of Config that checkpoints
// embed, so Resume continues under exactly the schedule the run started
// with.
type ConfigState struct {
	Topics, V                     int
	Alpha, Beta                   float64
	BurnIn, Iterations, SampleLag int
	InferIterations               int
}

func (c *Config) state() ConfigState {
	return ConfigState{
		Topics: c.Topics, V: c.V, Alpha: c.Alpha, Beta: c.Beta,
		BurnIn: c.BurnIn, Iterations: c.Iterations, SampleLag: c.SampleLag,
		InferIterations: c.InferIterations,
	}
}

func (cs ConfigState) config() Config {
	return Config{
		Topics: cs.Topics, V: cs.V, Alpha: cs.Alpha, Beta: cs.Beta,
		BurnIn: cs.BurnIn, Iterations: cs.Iterations, SampleLag: cs.SampleLag,
		InferIterations: cs.InferIterations,
	}
}

func (c *Config) fillDefaults() {
	if c.Alpha == 0 {
		c.Alpha = 1 / float64(c.Topics)
	}
	if c.Beta == 0 {
		c.Beta = 0.01
	}
	if c.BurnIn == 0 {
		c.BurnIn = 50
	}
	if c.Iterations == 0 {
		c.Iterations = 150
	}
	if c.SampleLag == 0 {
		c.SampleLag = 5
	}
	if c.InferIterations == 0 {
		c.InferIterations = 30
	}
}

func (c *Config) validate() error {
	if c.Topics < 1 {
		return fmt.Errorf("lda: Topics must be >= 1, got %d", c.Topics)
	}
	if c.V < 1 {
		return fmt.Errorf("lda: V must be >= 1, got %d", c.V)
	}
	if c.Alpha < 0 || c.Beta < 0 {
		return fmt.Errorf("lda: priors must be non-negative")
	}
	if c.BurnIn < 0 || c.Iterations < 1 || c.SampleLag < 1 || c.InferIterations < 2 {
		return fmt.Errorf("lda: invalid Gibbs schedule (burnin %d, iters %d, lag %d, infer %d)",
			c.BurnIn, c.Iterations, c.SampleLag, c.InferIterations)
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("lda: CheckpointEvery must be >= 0, got %d", c.CheckpointEvery)
	}
	return nil
}

// Model is a trained LDA model. Phi holds the posterior-mean topic-word
// distributions; each row sums to 1.
type Model struct {
	K, V        int
	Alpha, Beta float64
	Phi         *mat.Matrix // K x V
	InferIters  int
}

// token is one token-topic assignment of the collapsed sampler.
type token struct {
	doc, word int
	weight    float64
	topic     int
}

// buildTokens flattens docs (and optional per-token weights) into sampler
// tokens, validating ranges. The flattening order is deterministic, which
// checkpoint/resume relies on to rebind saved assignments to tokens.
func buildTokens(cfg *Config, docs [][]int, weights [][]float64) ([]token, error) {
	if weights != nil && len(weights) != len(docs) {
		return nil, fmt.Errorf("lda: weights length %d != docs length %d", len(weights), len(docs))
	}
	var tokens []token
	for d, doc := range docs {
		for i, w := range doc {
			if w < 0 || w >= cfg.V {
				return nil, fmt.Errorf("lda: document %d has token %d outside [0,%d)", d, w, cfg.V)
			}
			wt := 1.0
			if weights != nil {
				if len(weights[d]) != len(doc) {
					return nil, fmt.Errorf("lda: weights[%d] length %d != doc length %d", d, len(weights[d]), len(doc))
				}
				wt = weights[d][i]
				if wt <= 0 || math.IsNaN(wt) {
					return nil, fmt.Errorf("lda: weights must be positive, got %v", wt)
				}
			}
			tokens = append(tokens, token{doc: d, word: w, weight: wt})
		}
	}
	return tokens, nil
}

// sampler is the complete mutable state of one collapsed-Gibbs run; it is
// what a Checkpoint captures and what Resume reconstructs.
type sampler struct {
	cfg     Config
	tokens  []token
	nzw     *mat.Matrix // topic-word counts
	nz      []float64   // topic totals
	ndz     *mat.Matrix // doc-topic counts
	phiAcc  *mat.Matrix // posterior-mean accumulator
	samples int
	g       *rng.RNG
}

// rebuildCounts recomputes the count matrices from the current token-topic
// assignments (their sufficient statistics).
func (s *sampler) rebuildCounts() {
	k, v := s.cfg.Topics, s.cfg.V
	for i := range s.tokens {
		t := &s.tokens[i]
		s.nzw.Data[t.topic*v+t.word] += t.weight
		s.nz[t.topic] += t.weight
		s.ndz.Data[t.doc*k+t.topic] += t.weight
	}
}

// snapshotState captures the sampler at a completed-sweep boundary. All
// slices are copied, so the checkpoint stays valid while training continues.
func (s *sampler) snapshotState(sweep int) *Checkpoint {
	ck := &Checkpoint{
		Cfg:     s.cfg.state(),
		Sweep:   sweep,
		Samples: s.samples,
		PhiAcc:  append([]float64(nil), s.phiAcc.Data...),
		RNG:     s.g.State(),
	}
	ck.Assignments = make([]int, len(s.tokens))
	for i := range s.tokens {
		ck.Assignments[i] = s.tokens[i].topic
	}
	return ck
}

// Train runs collapsed Gibbs sampling on the documents. docs[d] lists the
// token ids of document d (for the binary install-base input every owned
// category appears once). weights, when non-nil, gives a positive weight per
// token (the TF-IDF input variant); nil means unit weights. Documents may be
// empty; they simply contribute nothing.
func Train(cfg Config, docs [][]int, weights [][]float64, g *rng.RNG) (*Model, error) {
	return TrainContext(context.Background(), cfg, docs, weights, g)
}

// TrainContext is Train with cooperative cancellation: ctx is checked at
// every sweep boundary, and on cancellation a final checkpoint is handed to
// cfg.Checkpoint (when set) before returning an error wrapping ctx.Err().
func TrainContext(ctx context.Context, cfg Config, docs [][]int, weights [][]float64, g *rng.RNG) (*Model, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	tokens, err := buildTokens(&cfg, docs, weights)
	if err != nil {
		return nil, err
	}
	k, v := cfg.Topics, cfg.V
	s := &sampler{
		cfg: cfg, tokens: tokens, g: g,
		nzw: mat.New(k, v), nz: make([]float64, k), ndz: mat.New(len(docs), k),
		phiAcc: mat.New(k, v),
	}
	// random initialization
	for i := range s.tokens {
		s.tokens[i].topic = g.Intn(k)
	}
	s.rebuildCounts()
	return s.run(ctx, 0)
}

// Resume continues an interrupted run from a checkpoint. docs and weights
// must be the same inputs the original Train call received (the checkpoint
// stores assignments per token, not the corpus itself); hooks supplies
// Progress/Checkpoint/CheckpointEvery for the continued run while the
// training schedule comes from the checkpoint. A resumed run draws the same
// random stream as the uninterrupted one, so the final model is
// bit-identical.
func Resume(ctx context.Context, ck *Checkpoint, docs [][]int, weights [][]float64, hooks Config) (*Model, error) {
	cfg := ck.Cfg.config()
	cfg.Progress = hooks.Progress
	cfg.Checkpoint = hooks.Checkpoint
	cfg.CheckpointEvery = hooks.CheckpointEvery
	if err := cfg.validate(); err != nil {
		return nil, fmt.Errorf("lda: checkpoint carries invalid config: %w", err)
	}
	if err := ck.validate(); err != nil {
		return nil, err
	}
	tokens, err := buildTokens(&cfg, docs, weights)
	if err != nil {
		return nil, err
	}
	if len(tokens) != len(ck.Assignments) {
		return nil, fmt.Errorf("lda: checkpoint has %d token assignments but corpus has %d tokens — resume needs the original corpus",
			len(ck.Assignments), len(tokens))
	}
	for i, z := range ck.Assignments {
		tokens[i].topic = z
	}
	g, err := rng.FromState(ck.RNG)
	if err != nil {
		return nil, fmt.Errorf("lda: checkpoint RNG state: %w", err)
	}
	k, v := cfg.Topics, cfg.V
	s := &sampler{
		cfg: cfg, tokens: tokens, g: g,
		nzw: mat.New(k, v), nz: make([]float64, k), ndz: mat.New(len(docs), k),
		phiAcc:  mat.FromSlice(k, v, append([]float64(nil), ck.PhiAcc...)),
		samples: ck.Samples,
	}
	s.rebuildCounts()
	return s.run(ctx, ck.Sweep)
}

// run executes Gibbs sweeps startSweep..total-1 and finalizes the model.
func (s *sampler) run(ctx context.Context, startSweep int) (*Model, error) {
	cfg := s.cfg
	k, v := cfg.Topics, cfg.V
	tokens := s.tokens
	nzw, nz, ndz := s.nzw, s.nz, s.ndz
	alpha, beta := cfg.Alpha, cfg.Beta
	vbeta := float64(v) * beta
	phiAcc := s.phiAcc
	g := s.g

	sp := obs.Start("lda.train")
	// Each sweep (and each checkpoint write) becomes a child span when the
	// caller's ctx carries an active trace — ibtrain -trace turns a training
	// run into one tree of per-sweep timings. Spans never touch the sampler
	// state or its RNG stream, so traced and untraced runs are bit-identical.
	traced := trace.FromContext(ctx) != nil
	checkpoint := func(ck *Checkpoint) error {
		var csp *trace.Span
		if traced {
			_, csp = trace.Start(ctx, "lda.train.checkpoint")
			csp.AttrInt("sweep", int64(ck.Sweep))
		}
		err := cfg.Checkpoint(ck)
		if err != nil {
			csp.Error(err)
		}
		csp.End()
		return err
	}
	// The progress hook's in-sample log-likelihood reads the current count
	// matrices only — no random draws — so installing a hook never perturbs
	// the sampler's stream. Both the per-document weight totals and the
	// scan are skipped entirely when the hook is unset.
	var logLik func() float64
	if cfg.Progress != nil {
		docW := make([]float64, ndz.Rows)
		for i := range tokens {
			docW[tokens[i].doc] += tokens[i].weight
		}
		logLik = func() float64 {
			var ll float64
			for i := range tokens {
				t := &tokens[i]
				drow := ndz.Row(t.doc)
				denomD := docW[t.doc] + alpha*float64(k)
				var p float64
				for z := 0; z < k; z++ {
					p += (drow[z] + alpha) / denomD * (nzw.Data[z*v+t.word] + beta) / (nz[z] + vbeta)
				}
				ll += t.weight * math.Log(p)
			}
			return ll
		}
	}

	probs := make([]float64, k)
	total := cfg.BurnIn + cfg.Iterations
	for sweep := startSweep; sweep < total; sweep++ {
		if err := ctx.Err(); err != nil {
			if cfg.Checkpoint != nil {
				if cerr := checkpoint(s.snapshotState(sweep)); cerr != nil {
					return nil, fmt.Errorf("lda: writing cancellation checkpoint: %w", cerr)
				}
			}
			return nil, fmt.Errorf("lda: training interrupted after sweep %d/%d: %w", sweep, total, err)
		}
		var swsp *trace.Span
		if traced {
			_, swsp = trace.Start(ctx, "lda.train.sweep")
			swsp.AttrInt("sweep", int64(sweep))
		}
		var sweepStart time.Time
		if cfg.Progress != nil {
			sweepStart = time.Now()
		}
		for i := range tokens {
			t := &tokens[i]
			// remove token from counts
			nzw.Data[t.topic*v+t.word] -= t.weight
			nz[t.topic] -= t.weight
			ndz.Data[t.doc*k+t.topic] -= t.weight
			// full conditional
			drow := ndz.Row(t.doc)
			for z := 0; z < k; z++ {
				probs[z] = (drow[z] + alpha) * (nzw.Data[z*v+t.word] + beta) / (nz[z] + vbeta)
			}
			t.topic = g.Categorical(probs)
			// add back
			nzw.Data[t.topic*v+t.word] += t.weight
			nz[t.topic] += t.weight
			ndz.Data[t.doc*k+t.topic] += t.weight
		}
		trainIterations.Inc()
		trainTokens.Add(uint64(len(tokens)))
		if cfg.Progress != nil {
			elapsed := time.Since(sweepStart).Seconds()
			tps := math.Inf(1)
			if elapsed > 0 {
				tps = float64(len(tokens)) / elapsed
			}
			cfg.Progress(obs.ProgressEvent{
				Model: "lda", Iteration: sweep + 1, Total: total,
				Loss:         logLik(),
				TokensPerSec: tps,
			})
		}
		if sweep >= cfg.BurnIn && (sweep-cfg.BurnIn)%cfg.SampleLag == 0 {
			for z := 0; z < k; z++ {
				denom := nz[z] + vbeta
				for w := 0; w < v; w++ {
					phiAcc.Data[z*v+w] += (nzw.Data[z*v+w] + beta) / denom
				}
			}
			s.samples++
		}
		swsp.End()
		if cfg.Checkpoint != nil && cfg.CheckpointEvery > 0 &&
			(sweep+1)%cfg.CheckpointEvery == 0 && sweep+1 < total {
			if err := checkpoint(s.snapshotState(sweep + 1)); err != nil {
				return nil, fmt.Errorf("lda: checkpoint hook after sweep %d: %w", sweep+1, err)
			}
		}
	}
	if s.samples == 0 { // schedule too short to sample; use final state
		for z := 0; z < k; z++ {
			denom := nz[z] + vbeta
			for w := 0; w < v; w++ {
				phiAcc.Data[z*v+w] += (nzw.Data[z*v+w] + beta) / denom
			}
		}
		s.samples = 1
	}
	out := phiAcc.Clone()
	out.Scale(1 / float64(s.samples))
	// normalize rows exactly
	for z := 0; z < k; z++ {
		mat.Normalize(out.Row(z))
	}
	trainRuns.Inc()
	sp.End()
	return &Model{K: k, V: v, Alpha: alpha, Beta: beta, Phi: out, InferIters: cfg.InferIterations}, nil
}

// InferTheta estimates the topic mixture of a (possibly unseen) document by
// fold-in Gibbs sampling with Phi fixed. Empty documents return the prior
// mean (uniform).
func (m *Model) InferTheta(doc []int, g *rng.RNG) []float64 {
	theta := make([]float64, m.K)
	if len(doc) == 0 {
		for z := range theta {
			theta[z] = 1 / float64(m.K)
		}
		return theta
	}
	assign := make([]int, len(doc))
	ndk := make([]float64, m.K)
	for i, w := range doc {
		if w < 0 || w >= m.V {
			panic(fmt.Sprintf("lda: token %d outside vocabulary [0,%d)", w, m.V))
		}
		assign[i] = g.Intn(m.K)
		ndk[assign[i]]++
	}
	probs := make([]float64, m.K)
	burn := m.InferIters / 2
	thetaAcc := make([]float64, m.K)
	samples := 0
	for it := 0; it < m.InferIters; it++ {
		for i, w := range doc {
			ndk[assign[i]]--
			for z := 0; z < m.K; z++ {
				probs[z] = (ndk[z] + m.Alpha) * m.Phi.Data[z*m.V+w]
			}
			assign[i] = g.Categorical(probs)
			ndk[assign[i]]++
		}
		if it >= burn {
			denom := float64(len(doc)) + m.Alpha*float64(m.K)
			for z := 0; z < m.K; z++ {
				thetaAcc[z] += (ndk[z] + m.Alpha) / denom
			}
			samples++
		}
	}
	for z := 0; z < m.K; z++ {
		theta[z] = thetaAcc[z] / float64(samples)
	}
	mat.Normalize(theta)
	return theta
}

// WordProb returns P(w | theta) = Σ_z theta_z Phi_zw.
func (m *Model) WordProb(theta []float64, w int) float64 {
	var p float64
	for z := 0; z < m.K; z++ {
		p += theta[z] * m.Phi.Data[z*m.V+w]
	}
	return p
}

// WordDist returns the full P(w | theta) distribution.
func (m *Model) WordDist(theta []float64) []float64 {
	out := make([]float64, m.V)
	for w := 0; w < m.V; w++ {
		out[w] = m.WordProb(theta, w)
	}
	return out
}

// Perplexity computes held-out perplexity by leave-one-out document
// completion: each test token is scored under the topic mixture inferred
// from all the *other* tokens of its document, so no token is used to infer
// the mixture that predicts it. (Plain fold-in — inferring theta from the
// full document including the scored token — lets large-K models overfit
// the evaluation and destroys the U-shaped perplexity-vs-topics curve the
// paper reports in Figure 2; leave-one-out keeps the evaluation honest
// while giving the exchangeable model its full bidirectional context.)
// Single-token documents are scored under the prior-mean mixture.
func (m *Model) Perplexity(docs [][]int, g *rng.RNG) float64 {
	var logSum float64
	var n int
	rest := make([]int, 0, 64)
	for _, doc := range docs {
		if len(doc) == 0 {
			continue
		}
		if len(doc) == 1 {
			theta := m.InferTheta(nil, g)
			logSum += math.Log(m.WordProb(theta, doc[0]))
			n++
			continue
		}
		for i, w := range doc {
			rest = rest[:0]
			rest = append(rest, doc[:i]...)
			rest = append(rest, doc[i+1:]...)
			theta := m.InferTheta(rest, g)
			logSum += math.Log(m.WordProb(theta, w))
			n++
		}
	}
	if n == 0 {
		return math.Inf(1)
	}
	return math.Exp(-logSum / float64(n))
}

// Representations infers the company feature matrix B (N x K): row d is the
// topic mixture of document d. This is the representation used for company
// similarity search and clustering.
func (m *Model) Representations(docs [][]int, g *rng.RNG) *mat.Matrix {
	out := mat.New(len(docs), m.K)
	for d, doc := range docs {
		copy(out.Row(d), m.InferTheta(doc, g))
	}
	return out
}

// ProductEmbeddings returns the V x K matrix whose row w is
// P(topic | product w) ∝ Phi_zw, the product embedding in topic space that
// the paper projects with t-SNE (Figures 8-9).
func (m *Model) ProductEmbeddings() *mat.Matrix {
	out := mat.New(m.V, m.K)
	for w := 0; w < m.V; w++ {
		row := out.Row(w)
		for z := 0; z < m.K; z++ {
			row[z] = m.Phi.Data[z*m.V+w]
		}
		mat.Normalize(row)
	}
	return out
}

// TopWords returns the n highest-probability words of topic z, for
// interpretability reporting (the paper stresses LDA's interpretable
// parameters as a key advantage for marketing use).
func (m *Model) TopWords(z, n int) []int {
	if z < 0 || z >= m.K {
		panic(fmt.Sprintf("lda: topic %d out of range", z))
	}
	idx := make([]int, m.V)
	for i := range idx {
		idx[i] = i
	}
	row := m.Phi.Row(z)
	// partial selection sort: n is small
	if n > m.V {
		n = m.V
	}
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < m.V; j++ {
			if row[idx[j]] > row[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:n]
}

// ParameterCount returns the number of free parameters, nt + nt*M, the
// figure the paper uses when contrasting LDA's ~156 parameters with the
// LSTM's ~50,000.
func (m *Model) ParameterCount() int { return m.K + m.K*m.V }

type gobModel struct {
	K, V        int
	Alpha, Beta float64
	PhiData     []float64
	InferIters  int
}

// SaveV1 serializes the model into the legacy v1 (gob payload) snapshot
// container of kind KindModel. New writes should prefer Save (the v2 flat
// container); SaveV1 exists for fleets still running v1-only readers.
func (m *Model) SaveV1(w io.Writer) error {
	return snapshot.Write(w, KindModel, func(w io.Writer) error {
		return gob.NewEncoder(w).Encode(gobModel{
			K: m.K, V: m.V, Alpha: m.Alpha, Beta: m.Beta,
			PhiData: m.Phi.Data, InferIters: m.InferIters,
		})
	})
}

// loadV1 deserializes a model written by SaveV1. Truncated, bit-flipped and
// wrong-kind files fail the container's integrity checks before any gob
// decoding runs.
func loadV1(r io.Reader) (*Model, error) {
	var g gobModel
	if err := snapshot.Read(r, KindModel, func(r io.Reader) error {
		return gob.NewDecoder(r).Decode(&g)
	}); err != nil {
		return nil, fmt.Errorf("lda: loading model: %w", err)
	}
	if g.K < 1 || g.V < 1 || len(g.PhiData) != g.K*g.V {
		return nil, fmt.Errorf("lda: corrupt model (K=%d, V=%d, phi=%d)", g.K, g.V, len(g.PhiData))
	}
	return &Model{
		K: g.K, V: g.V, Alpha: g.Alpha, Beta: g.Beta,
		Phi: mat.FromSlice(g.K, g.V, g.PhiData), InferIters: g.InferIters,
	}, nil
}

// Checkpoint is a complete sampler snapshot at a sweep boundary: resuming
// from it replays the remaining sweeps on the identical random stream, so
// the final model matches an uninterrupted run byte for byte.
type Checkpoint struct {
	Cfg         ConfigState
	Sweep       int   // completed sweeps
	Assignments []int // per-token topic assignment, in corpus order
	PhiAcc      []float64
	Samples     int
	RNG         [4]uint64
}

// validate checks internal consistency (corpus-dependent checks happen in
// Resume once the documents are known).
func (ck *Checkpoint) validate() error {
	cfg := ck.Cfg.config()
	if err := cfg.validate(); err != nil {
		return fmt.Errorf("lda: checkpoint config: %w", err)
	}
	total := cfg.BurnIn + cfg.Iterations
	if ck.Sweep < 0 || ck.Sweep > total {
		return fmt.Errorf("lda: checkpoint sweep %d outside schedule of %d", ck.Sweep, total)
	}
	if ck.Samples < 0 {
		return fmt.Errorf("lda: checkpoint has negative sample count %d", ck.Samples)
	}
	if len(ck.PhiAcc) != cfg.Topics*cfg.V {
		return fmt.Errorf("lda: checkpoint phi accumulator has %d entries, want %d",
			len(ck.PhiAcc), cfg.Topics*cfg.V)
	}
	for i, z := range ck.Assignments {
		if z < 0 || z >= cfg.Topics {
			return fmt.Errorf("lda: checkpoint assignment %d is topic %d outside [0,%d)", i, z, cfg.Topics)
		}
	}
	return nil
}

// Save serializes the checkpoint into a snapshot container of kind
// KindCheckpoint.
func (ck *Checkpoint) Save(w io.Writer) error {
	return snapshot.Write(w, KindCheckpoint, func(w io.Writer) error {
		return gob.NewEncoder(w).Encode(ck)
	})
}

// LoadCheckpoint deserializes and validates a checkpoint written by Save.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	ck := &Checkpoint{}
	if err := snapshot.Read(r, KindCheckpoint, func(r io.Reader) error {
		return gob.NewDecoder(r).Decode(ck)
	}); err != nil {
		return nil, fmt.Errorf("lda: loading checkpoint: %w", err)
	}
	if err := ck.validate(); err != nil {
		return nil, err
	}
	return ck, nil
}

// gob assigns wire type ids from a process-global registry at first encode,
// so a model encoded after a checkpoint would carry different type ids than
// one encoded in a fresh process. Pin this package's wire types in a fixed
// order at init so model files are byte-identical regardless of what else
// the process encoded first.
func init() {
	enc := gob.NewEncoder(io.Discard)
	_ = enc.Encode(gobModel{})
	_ = enc.Encode(Checkpoint{})
}
