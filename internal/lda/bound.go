package lda

import (
	"math"

	"repro/internal/rng"
)

// digamma returns the logarithmic derivative of the gamma function, using
// the standard shift-up recurrence plus asymptotic series.
func digamma(x float64) float64 {
	var r float64
	for x < 6 {
		r -= 1 / x
		x++
	}
	f := 1 / (x * x)
	return r + math.Log(x) - 0.5/x -
		f*(1.0/12-f*(1.0/120-f*(1.0/252-f*(1.0/240-f/132))))
}

// dirichletKL returns KL(Dir(gamma) || Dir(alpha)) for a symmetric prior
// with concentration alpha.
func dirichletKL(gamma []float64, alpha float64) float64 {
	var gSum float64
	for _, g := range gamma {
		gSum += g
	}
	k := float64(len(gamma))
	aSum := alpha * k
	lgammaSumG, _ := math.Lgamma(gSum)
	lgammaSumA, _ := math.Lgamma(aSum)
	lgammaA, _ := math.Lgamma(alpha)
	kl := lgammaSumG - lgammaSumA + k*lgammaA
	dgSum := digamma(gSum)
	for _, g := range gamma {
		lg, _ := math.Lgamma(g)
		kl -= lg
		kl += (g - alpha) * (digamma(g) - dgSum)
	}
	return kl
}

// BoundPerplexity computes held-out perplexity from a per-word variational
// bound, the measure reported by gensim's log_perplexity that the paper
// used: for each document a posterior Dir(gamma) over topics is estimated by
// fold-in Gibbs on the full document, and the bound per corpus is
//
//	Σ_d [ Σ_{w∈d} ln p(w | E[theta_d]) - KL(Dir(gamma_d) || Dir(alpha)) ]
//
// divided by the total token count and exponentiated. Unlike the raw
// full-document fold-in likelihood, the KL term penalizes models whose
// per-document posteriors stray far from the prior, which grows with the
// number of topics and restores the paper's U-shaped perplexity-vs-topics
// curve (Figure 2) while keeping the full-document topic estimate the
// gensim measure uses.
func (m *Model) BoundPerplexity(docs [][]int, g *rng.RNG) float64 {
	var bound float64
	var n int
	for _, doc := range docs {
		if len(doc) == 0 {
			continue
		}
		gamma := m.inferGamma(doc, g)
		var gSum float64
		for _, v := range gamma {
			gSum += v
		}
		theta := make([]float64, m.K)
		for z := range theta {
			theta[z] = gamma[z] / gSum
		}
		for _, w := range doc {
			bound += math.Log(m.WordProb(theta, w))
			n++
		}
		bound -= dirichletKL(gamma, m.Alpha)
	}
	if n == 0 {
		return math.Inf(1)
	}
	return math.Exp(-bound / float64(n))
}

// inferGamma runs fold-in Gibbs on the document and returns the mean
// posterior pseudo-counts gamma_k = E[n_dk] + alpha.
func (m *Model) inferGamma(doc []int, g *rng.RNG) []float64 {
	assign := make([]int, len(doc))
	ndk := make([]float64, m.K)
	for i := range doc {
		assign[i] = g.Intn(m.K)
		ndk[assign[i]]++
	}
	probs := make([]float64, m.K)
	burn := m.InferIters / 2
	acc := make([]float64, m.K)
	samples := 0
	for it := 0; it < m.InferIters; it++ {
		for i, w := range doc {
			ndk[assign[i]]--
			for z := 0; z < m.K; z++ {
				probs[z] = (ndk[z] + m.Alpha) * m.Phi.Data[z*m.V+w]
			}
			assign[i] = g.Categorical(probs)
			ndk[assign[i]]++
		}
		if it >= burn {
			for z := 0; z < m.K; z++ {
				acc[z] += ndk[z]
			}
			samples++
		}
	}
	gamma := make([]float64, m.K)
	for z := 0; z < m.K; z++ {
		gamma[z] = acc[z]/float64(samples) + m.Alpha
	}
	return gamma
}
