package lda

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/rng"
)

// modelBytes serializes a model for byte-identity comparison.
func modelBytes(t *testing.T, m *Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCheckpointHookDoesNotPerturbTraining(t *testing.T) {
	docs := twoTopicDocs(40, rng.New(11))
	cfg := Config{Topics: 2, V: 10, BurnIn: 10, Iterations: 20}

	plain, err := Train(cfg, docs, nil, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}

	hooked := cfg
	calls := 0
	hooked.CheckpointEvery = 4
	hooked.Checkpoint = func(*Checkpoint) error { calls++; return nil }
	ckRun, err := Train(hooked, docs, nil, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("checkpoint hook never invoked")
	}
	if !bytes.Equal(modelBytes(t, plain), modelBytes(t, ckRun)) {
		t.Fatal("gob output differs with Checkpoint hook installed")
	}
}

func TestResumeMatchesUninterruptedRun(t *testing.T) {
	docs := twoTopicDocs(50, rng.New(3))
	cfg := Config{Topics: 3, V: 10, BurnIn: 8, Iterations: 22, SampleLag: 3}

	straight, err := Train(cfg, docs, nil, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}

	// Capture a mid-run checkpoint, round-trip it through its serialized
	// form, and resume from it.
	var mid *Checkpoint
	hooked := cfg
	hooked.CheckpointEvery = 13
	hooked.Checkpoint = func(ck *Checkpoint) error {
		if mid == nil {
			mid = ck
		}
		return nil
	}
	if _, err := Train(hooked, docs, nil, rng.New(99)); err != nil {
		t.Fatal(err)
	}
	if mid == nil {
		t.Fatal("no checkpoint captured")
	}
	var buf bytes.Buffer
	if err := mid.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(context.Background(), loaded, docs, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(modelBytes(t, straight), modelBytes(t, resumed)) {
		t.Fatal("resumed model differs from uninterrupted run")
	}
}

func TestResumeMatchesWithWeights(t *testing.T) {
	docs := twoTopicDocs(30, rng.New(5))
	weights := make([][]float64, len(docs))
	wg := rng.New(8)
	for d, doc := range docs {
		weights[d] = make([]float64, len(doc))
		for i := range doc {
			weights[d][i] = 0.5 + wg.Float64()
		}
	}
	cfg := Config{Topics: 2, V: 10, BurnIn: 5, Iterations: 15}

	straight, err := Train(cfg, docs, weights, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	var mid *Checkpoint
	hooked := cfg
	hooked.CheckpointEvery = 9
	hooked.Checkpoint = func(ck *Checkpoint) error {
		mid = ck
		return nil
	}
	if _, err := Train(hooked, docs, weights, rng.New(7)); err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(context.Background(), mid, docs, weights, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(modelBytes(t, straight), modelBytes(t, resumed)) {
		t.Fatal("resumed TF-IDF model differs from uninterrupted run")
	}
}

func TestCancellationWritesFinalCheckpoint(t *testing.T) {
	docs := twoTopicDocs(30, rng.New(2))
	cfg := Config{Topics: 2, V: 10, BurnIn: 10, Iterations: 30}

	ctx, cancel := context.WithCancel(context.Background())
	var last *Checkpoint
	calls := 0
	cfg.CheckpointEvery = 5
	cfg.Checkpoint = func(ck *Checkpoint) error {
		last = ck
		calls++
		if calls == 1 {
			cancel() // cancel mid-run; trainer must flush one final checkpoint
		}
		return nil
	}
	_, err := TrainContext(ctx, cfg, docs, nil, rng.New(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if calls < 2 {
		t.Fatalf("cancellation must write a final checkpoint (calls = %d)", calls)
	}
	// The final checkpoint resumes to the same model as a straight run.
	straight, err := Train(Config{Topics: 2, V: 10, BurnIn: 10, Iterations: 30}, docs, nil, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(context.Background(), last, docs, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(modelBytes(t, straight), modelBytes(t, resumed)) {
		t.Fatal("resume after cancellation differs from uninterrupted run")
	}
}

func TestResumeRejectsWrongCorpus(t *testing.T) {
	docs := twoTopicDocs(30, rng.New(2))
	cfg := Config{Topics: 2, V: 10, BurnIn: 5, Iterations: 10, CheckpointEvery: 4}
	var mid *Checkpoint
	cfg.Checkpoint = func(ck *Checkpoint) error { mid = ck; return nil }
	if _, err := Train(cfg, docs, nil, rng.New(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(context.Background(), mid, docs[:10], nil, Config{}); err == nil {
		t.Fatal("resume with a different corpus must fail")
	}
}

func TestCheckpointHookErrorAbortsTraining(t *testing.T) {
	docs := twoTopicDocs(20, rng.New(2))
	boom := errors.New("disk full")
	cfg := Config{Topics: 2, V: 10, BurnIn: 2, Iterations: 10, CheckpointEvery: 3}
	cfg.Checkpoint = func(*Checkpoint) error { return boom }
	if _, err := Train(cfg, docs, nil, rng.New(1)); !errors.Is(err, boom) {
		t.Fatalf("want hook error surfaced, got %v", err)
	}
}

func TestLoadCheckpointRejectsCorruptState(t *testing.T) {
	docs := twoTopicDocs(20, rng.New(2))
	cfg := Config{Topics: 2, V: 10, BurnIn: 2, Iterations: 10, CheckpointEvery: 3}
	var mid *Checkpoint
	cfg.Checkpoint = func(ck *Checkpoint) error { mid = ck; return nil }
	if _, err := Train(cfg, docs, nil, rng.New(1)); err != nil {
		t.Fatal(err)
	}

	bad := *mid
	bad.Assignments = append([]int(nil), mid.Assignments...)
	bad.Assignments[0] = 99 // topic out of range
	var buf bytes.Buffer
	if err := bad.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(&buf); err == nil {
		t.Fatal("out-of-range assignment accepted")
	}

	bad2 := *mid
	bad2.PhiAcc = mid.PhiAcc[:3]
	buf.Reset()
	if err := bad2.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(&buf); err == nil {
		t.Fatal("short phi accumulator accepted")
	}
}
