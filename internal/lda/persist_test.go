package lda

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rng"
	"repro/internal/snapshot"
)

// fixtureModel trains the small deterministic model behind both the
// in-test property checks and the committed testdata fixtures. Do not
// change its parameters: the fixtures pin the on-disk formats.
func fixtureModel(t *testing.T) *Model {
	t.Helper()
	g := rng.New(42)
	docs := make([][]int, 30)
	for d := range docs {
		doc := make([]int, 12)
		for i := range doc {
			if d%2 == 0 {
				doc[i] = g.Intn(4)
			} else {
				doc[i] = 4 + g.Intn(4)
			}
		}
		docs[d] = doc
	}
	m, err := Train(Config{Topics: 3, V: 8, BurnIn: 10, Iterations: 30}, docs, nil, g)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func gobBytes(t *testing.T, m *Model) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(gobModel{
		K: m.K, V: m.V, Alpha: m.Alpha, Beta: m.Beta,
		PhiData: m.Phi.Data, InferIters: m.InferIters,
	}); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestV1V2LoadIdentical is the cross-format property test: a model saved as
// legacy v1 gob and as native v2 flat container must load back to
// gob-byte-identical in-memory models (which both match the original).
func TestV1V2LoadIdentical(t *testing.T) {
	m := fixtureModel(t)

	var v1, v2 bytes.Buffer
	if err := m.SaveV1(&v1); err != nil {
		t.Fatal(err)
	}
	if err := m.Save(&v2); err != nil {
		t.Fatal(err)
	}
	if ver, _ := snapshot.SniffVersion(v1.Bytes()); ver != 1 {
		t.Fatalf("SaveV1 wrote version %d", ver)
	}
	if ver, _ := snapshot.SniffVersion(v2.Bytes()); ver != snapshot.Version2 {
		t.Fatalf("Save wrote version %d, want %d", ver, snapshot.Version2)
	}

	fromV1, err := Load(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatalf("loading v1: %v", err)
	}
	fromV2, err := Load(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatalf("loading v2: %v", err)
	}

	want := gobBytes(t, m)
	if !bytes.Equal(gobBytes(t, fromV1), want) {
		t.Fatal("v1 round trip is not gob-identical to the original")
	}
	if !bytes.Equal(gobBytes(t, fromV2), want) {
		t.Fatal("v2 round trip is not gob-identical to the original")
	}
}

// TestLoadFileMapped exercises the zero-copy path: a v2 file loads through
// mmap with a frozen phi matrix, inference works against the mapping, and
// the close function releases it. A v1 file goes through the legacy decode
// with a no-op closer.
func TestLoadFileMapped(t *testing.T) {
	m := fixtureModel(t)
	dir := t.TempDir()

	v2path := filepath.Join(dir, "model_v2.ibsnap")
	if err := snapshot.Atomic(v2path, m.Save); err != nil {
		t.Fatal(err)
	}
	mapped, closeFn, err := LoadFile(v2path)
	if err != nil {
		t.Fatal(err)
	}
	if !mapped.Phi.Frozen() {
		t.Fatal("v2 LoadFile returned a writable phi (must be frozen: it may alias a PROT_READ mapping)")
	}
	if !bytes.Equal(gobBytes(t, mapped), gobBytes(t, m)) {
		t.Fatal("mapped model is not gob-identical to the original")
	}
	// Inference (a pure read of phi) must work against the mapping, and be
	// identical to the heap-resident model's answer.
	doc := []int{0, 1, 2, 5}
	got := mapped.InferTheta(doc, rng.New(7))
	want := m.InferTheta(doc, rng.New(7))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("InferTheta[%d] = %v via mmap, %v via heap", i, got[i], want[i])
		}
	}
	// Training-style mutation must be rejected loudly, and Mutable must
	// offer the copy-on-train escape.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("writing a frozen mmap-backed phi did not panic")
			}
		}()
		mapped.Phi.Set(0, 0, 1)
	}()
	writable := mapped.Phi.Mutable()
	writable.Set(0, 0, 1)
	if err := closeFn(); err != nil {
		t.Fatalf("close: %v", err)
	}

	v1path := filepath.Join(dir, "model_v1.ibsnap")
	if err := snapshot.Atomic(v1path, m.SaveV1); err != nil {
		t.Fatal(err)
	}
	legacy, closeLegacy, err := LoadFile(v1path)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Phi.Frozen() {
		t.Fatal("v1 LoadFile froze a heap-resident model")
	}
	if !bytes.Equal(gobBytes(t, legacy), gobBytes(t, m)) {
		t.Fatal("v1 LoadFile model is not gob-identical to the original")
	}
	if err := closeLegacy(); err != nil {
		t.Fatalf("v1 close: %v", err)
	}
}

// TestCompatFixtures round-trips the committed on-disk fixtures: the same
// model saved by both format generations at the time the v2 format was
// introduced. This is the gate scripts/check_snapshot_compat.sh runs — if
// either file stops loading, or they stop agreeing, legacy compatibility
// broke.
func TestCompatFixtures(t *testing.T) {
	v1m, closeV1, err := LoadFile(filepath.Join("testdata", "model_v1.ibsnap"))
	if err != nil {
		t.Fatalf("committed v1 fixture no longer loads: %v", err)
	}
	defer closeV1()
	v2m, closeV2, err := LoadFile(filepath.Join("testdata", "model_v2.ibsnap"))
	if err != nil {
		t.Fatalf("committed v2 fixture no longer loads: %v", err)
	}
	defer closeV2()
	if v1m.K != 3 || v1m.V != 8 {
		t.Fatalf("v1 fixture decoded to K=%d V=%d, want 3x8", v1m.K, v1m.V)
	}
	if !bytes.Equal(gobBytes(t, v1m), gobBytes(t, v2m)) {
		t.Fatal("v1 and v2 fixtures no longer load to the same model")
	}
	// The fixtures were written by fixtureModel; regenerating must be a
	// no-op unless the training algorithm itself changed (which would be a
	// determinism break caught here).
	if !bytes.Equal(gobBytes(t, fixtureModel(t)), gobBytes(t, v1m)) {
		t.Fatal("fixtureModel no longer reproduces the committed fixtures (training determinism broke?)")
	}
}

// TestRegenerateFixtures rewrites the committed testdata fixtures when
// LDA_REGEN_FIXTURES=1 is set. Run it only when the fixture model's
// training parameters change deliberately; commit the result.
func TestRegenerateFixtures(t *testing.T) {
	if os.Getenv("LDA_REGEN_FIXTURES") != "1" {
		t.Skip("set LDA_REGEN_FIXTURES=1 to rewrite testdata fixtures")
	}
	m := fixtureModel(t)
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := snapshot.Atomic(filepath.Join("testdata", "model_v1.ibsnap"), m.SaveV1); err != nil {
		t.Fatal(err)
	}
	if err := snapshot.Atomic(filepath.Join("testdata", "model_v2.ibsnap"), m.Save); err != nil {
		t.Fatal(err)
	}
}
