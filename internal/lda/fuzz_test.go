package lda

import (
	"bytes"
	"testing"

	"repro/internal/rng"
)

// FuzzLoad feeds arbitrary bytes to the model loader: truncated and
// bit-flipped inputs must produce errors, never panics.
func FuzzLoad(f *testing.F) {
	docs := twoTopicDocs(10, rng.New(1))
	m, err := Train(Config{Topics: 2, V: 10, BurnIn: 2, Iterations: 4}, docs, nil, rng.New(1))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/3]) // truncated
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x08
	f.Add(flipped) // bit-flipped payload
	f.Add([]byte{})
	f.Add([]byte("IBSNAP"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Load(bytes.NewReader(data))
		if err != nil && m != nil {
			t.Fatal("Load returned both a model and an error")
		}
		if err == nil && (m.K < 1 || m.V < 1) {
			t.Fatalf("accepted model with invalid shape %dx%d", m.K, m.V)
		}
	})
}

// FuzzLoadCheckpoint does the same for the checkpoint loader.
func FuzzLoadCheckpoint(f *testing.F) {
	docs := twoTopicDocs(10, rng.New(1))
	cfg := Config{Topics: 2, V: 10, BurnIn: 2, Iterations: 6, CheckpointEvery: 3}
	var mid *Checkpoint
	cfg.Checkpoint = func(ck *Checkpoint) error { mid = ck; return nil }
	if _, err := Train(cfg, docs, nil, rng.New(1)); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mid.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x01
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := LoadCheckpoint(bytes.NewReader(data))
		if err == nil {
			if verr := ck.validate(); verr != nil {
				t.Fatalf("LoadCheckpoint accepted an invalid checkpoint: %v", verr)
			}
		}
	})
}
