package lda

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/obs"
	"repro/internal/rng"
)

// TestProgressHookDoesNotPerturbTraining is the gob-byte-identity guarantee:
// installing a Progress hook must not touch the sampler's RNG stream, so the
// trained model is bit-for-bit the same with and without it.
func TestProgressHookDoesNotPerturbTraining(t *testing.T) {
	docs := twoTopicDocs(40, rng.New(11))
	cfg := Config{Topics: 2, V: 10, BurnIn: 10, Iterations: 20}

	plain, err := Train(cfg, docs, nil, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}

	var events []obs.ProgressEvent
	hooked := cfg
	hooked.Progress = func(ev obs.ProgressEvent) { events = append(events, ev) }
	instrumented, err := Train(hooked, docs, nil, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}

	var a, b bytes.Buffer
	if err := plain.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := instrumented.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("gob output differs with Progress hook installed")
	}

	wantCalls := cfg.BurnIn + cfg.Iterations
	if len(events) != wantCalls {
		t.Fatalf("Progress called %d times, want %d (BurnIn+Iterations)", len(events), wantCalls)
	}
	for i, ev := range events {
		if ev.Model != "lda" {
			t.Fatalf("event %d model = %q, want lda", i, ev.Model)
		}
		if ev.Iteration != i+1 {
			t.Fatalf("event %d iteration = %d, want %d", i, ev.Iteration, i+1)
		}
		if ev.Total != wantCalls {
			t.Fatalf("event %d total = %d, want %d", i, ev.Total, wantCalls)
		}
		if math.IsNaN(ev.Loss) || ev.Loss >= 0 {
			t.Fatalf("event %d loss = %v, want finite negative log-likelihood", i, ev.Loss)
		}
	}
	// Gibbs sampling should raise the in-sample log-likelihood from the
	// random initial assignment to the planted two-topic structure.
	if first, last := events[0].Loss, events[len(events)-1].Loss; last <= first {
		t.Fatalf("log-likelihood did not improve: first %v, last %v", first, last)
	}
}

// TestTrainCountersAdvance checks the registry counters move with training.
func TestTrainCountersAdvance(t *testing.T) {
	runs0 := obs.Default().Counter("lda_train_runs_total", "").Value()
	iters0 := obs.Default().Counter("lda_train_iterations_total", "").Value()

	docs := twoTopicDocs(10, rng.New(13))
	cfg := Config{Topics: 2, V: 10, BurnIn: 2, Iterations: 4}
	if _, err := Train(cfg, docs, nil, rng.New(1)); err != nil {
		t.Fatal(err)
	}

	if got := obs.Default().Counter("lda_train_runs_total", "").Value(); got != runs0+1 {
		t.Fatalf("lda_train_runs_total advanced by %d, want 1", got-runs0)
	}
	if got := obs.Default().Counter("lda_train_iterations_total", "").Value(); got != iters0+6 {
		t.Fatalf("lda_train_iterations_total advanced by %d, want 6", got-iters0)
	}
}
