// Package core implements the paper's deployed application (Section 6): a
// company-similarity index over learned LDA representations with business
// filtering (industry, location, employees, revenue), top-k similar-company
// search, and gap-based product recommendations — products that similar
// companies own but the target lacks, weighted by company similarity.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/trace"
)

// Serving-path metrics. Candidate counters are accumulated locally per query
// and added once, so the per-candidate hot loop carries no atomic traffic.
var (
	topkLatency = obs.Default().Histogram("topk_latency_seconds",
		"end-to-end latency of similarity top-k queries", obs.DefBuckets)
	topkRequests = obs.Default().Counter("topk_requests_total",
		"similarity top-k queries served")
	topkAdmitted = obs.Default().Counter("topk_candidates_admitted_total",
		"candidate companies that passed the business filter during top-k scans")
	topkFiltered = obs.Default().Counter("topk_candidates_filtered_total",
		"candidate companies rejected by the business filter during top-k scans")
	recRequests = obs.Default().Counter("recommend_requests_total",
		"gap-based product recommendation queries served")
	recFanout = obs.Default().Histogram("recommend_fanout_products",
		"number of recommended product categories per recommendation query", obs.SizeBuckets)
	wsLatency = obs.Default().Histogram("whitespace_latency_seconds",
		"end-to-end latency of white-space prospect queries", obs.DefBuckets)
	wsRequests = obs.Default().Counter("whitespace_requests_total",
		"white-space prospect queries served")
	topkErrors = obs.Default().Counter("topk_errors_total",
		"similarity top-k queries that failed (invalid arguments or cancelled)")
	recErrors = obs.Default().Counter("recommend_errors_total",
		"recommendation queries that failed (invalid arguments or cancelled)")
	wsErrors = obs.Default().Counter("whitespace_errors_total",
		"white-space queries that failed (invalid arguments or cancelled)")
	indexCompanies = obs.Default().Gauge("index_companies",
		"companies in the most recently built similarity index")
	annTopkQueries = obs.Default().Counter("ann_topk_queries_total",
		"top-k queries answered through the ANN candidate pruner (exact scans are topk_requests_total minus this)")
	annWhitespaceQueries = obs.Default().Counter("ann_whitespace_queries_total",
		"white-space queries answered through the ANN candidate pruner")
	annTopkCandidates = obs.Default().Counter("ann_topk_candidates_scanned_total",
		"candidate companies the ANN pruner admitted into top-k re-rank pools")
	annWhitespaceCandidates = obs.Default().Counter("ann_whitespace_candidates_scanned_total",
		"candidate companies the ANN pruner admitted into white-space re-rank pools")
	annCellsProbed = obs.Default().Counter("ann_cells_probed_total",
		"centroid cells scanned across all ANN-pruned queries")
)

// Metric selects the vector distance used for company similarity.
type Metric int

const (
	// Cosine similarity: the default for topic mixtures.
	Cosine Metric = iota
	// Euclidean converts distance d to similarity 1/(1+d).
	Euclidean
)

// String names the metric.
func (m Metric) String() string {
	if m == Euclidean {
		return "euclidean"
	}
	return "cosine"
}

// Filter restricts similarity search results, mirroring the tool's filtering
// capabilities "based on industry, location, number of employees and
// revenue". Zero values mean "any".
type Filter struct {
	SIC2         int
	Country      string
	MinEmployees int
	MaxEmployees int
	MinRevenueM  float64
	MaxRevenueM  float64
}

// Admits reports whether a company passes the filter.
func (f Filter) Admits(c *corpus.Company) bool {
	if f.SIC2 != 0 && c.SIC2 != f.SIC2 {
		return false
	}
	if f.Country != "" && c.Country != f.Country {
		return false
	}
	if f.MinEmployees != 0 && c.Employees < f.MinEmployees {
		return false
	}
	if f.MaxEmployees != 0 && c.Employees > f.MaxEmployees {
		return false
	}
	if f.MinRevenueM != 0 && c.RevenueM < f.MinRevenueM {
		return false
	}
	if f.MaxRevenueM != 0 && c.RevenueM > f.MaxRevenueM {
		return false
	}
	return true
}

// Key returns a canonical compact encoding of the filter. Two filters admit
// the same companies iff their keys are equal, so response caches can key on
// endpoint + query id + Key(). Country is a free-form client-supplied string
// interpolated into the `|`-delimited key, so it is quoted: with %q every
// field boundary is unforgeable by construction and the encoding stays
// injective no matter what bytes (pipes, the other fields' prefixes, quotes)
// a crafted request smuggles into the country — a collision here would serve
// one filter's cached response to a differently-filtered request.
func (f Filter) Key() string {
	return fmt.Sprintf("s%d|c%q|e%d:%d|r%g:%g",
		f.SIC2, f.Country, f.MinEmployees, f.MaxEmployees, f.MinRevenueM, f.MaxRevenueM)
}

// Match is one similarity-search hit.
type Match struct {
	CompanyID  int
	Similarity float64
}

// Index is the in-memory similarity index: one representation vector per
// company (row i of reps belongs to corpus company i). An index may be
// restricted to one partition of the corpus (SetPartition) for sharded
// serving: the representations stay complete — so query vectors and
// recommendation scoring remain available for any company — but the
// candidate scans visit only the owned partition, and a scatter-gather
// merge of every partition's answers under the package's total orders
// reproduces the unpartitioned answer byte for byte.
type Index struct {
	Corpus *corpus.Corpus
	Reps   *mat.Matrix
	Metric Metric

	part, parts int // candidate-scan partition; parts <= 1 scans everything

	pruner Pruner // nil = exact full scan (the default escape hatch)
}

// Pruner narrows a candidate scan to an approximate pool — the ANN fast
// path. Implementations (internal/ann's coarse k-means router) return, for a
// set of query vectors, the union of their probed cells: one slice per cell,
// ascending company ids within a cell, disjoint cells in ascending order.
// The scan re-ranks the pool exactly (same scorer, same filter, same total
// order), so pruning only ever affects which candidates are considered,
// never how survivors are ranked. A Pruner must be safe for concurrent use
// and deterministic: identical queries yield identical pools at any worker
// count.
type Pruner interface {
	Candidates(queries [][]float64) [][]int64
	Info() PrunerInfo
}

// PrunerInfo describes an installed candidate pruner for health reporting.
type PrunerInfo struct {
	Cells  int  // coarse cells in the index
	NProbe int  // cells probed per query vector
	Mapped bool // centroids and postings alias an mmap (IBSNAP v2)
}

// SetPruner installs an approximate candidate source on the index's scans;
// nil restores the exact full scan. Install at build time, before serving —
// the field is not synchronized. Partitioning composes: a pruned scan on a
// partitioned index still visits only owned candidates, so per-shard pruned
// answers merge (MergeTopK) byte-identically to an unsharded pruned server.
func (ix *Index) SetPruner(p Pruner) { ix.pruner = p }

// Pruner returns the installed candidate pruner, nil when scans are exact.
func (ix *Index) Pruner() Pruner { return ix.pruner }

// PartitionOf maps a company id to its partition in [0, parts): FNV-1a over
// the id's eight little-endian bytes, mod parts. The hash is fixed — never
// change it — so the split is byte-stable across processes, platforms and
// releases, which is what lets shard processes agree on ownership without
// coordination. parts <= 1 maps everything to partition 0.
func PartitionOf(id, parts int) int {
	if parts <= 1 {
		return 0
	}
	h := uint64(14695981039346656037) // FNV-1a 64-bit offset basis
	v := uint64(id)
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= 1099511628211 // FNV-1a 64-bit prime
	}
	return int(h % uint64(parts))
}

// SetPartition restricts the index's candidate scans to partition part of
// parts (per PartitionOf). Call once at build time, before serving; parts of
// 0 or 1 restores the full scan.
func (ix *Index) SetPartition(part, parts int) error {
	if parts <= 1 {
		ix.part, ix.parts = 0, 0
		return nil
	}
	if part < 0 || part >= parts {
		return fmt.Errorf("core: partition %d outside [0,%d)", part, parts)
	}
	ix.part, ix.parts = part, parts
	return nil
}

// Partition reports the scan restriction: the partition index and count
// (0, 1 when unpartitioned).
func (ix *Index) Partition() (part, parts int) {
	if ix.parts <= 1 {
		return 0, 1
	}
	return ix.part, ix.parts
}

// owns reports whether company i is a scan candidate on this index.
func (ix *Index) owns(i int) bool {
	return ix.parts <= 1 || PartitionOf(i, ix.parts) == ix.part
}

// OwnedCompanies counts the companies this index's candidate scans visit.
func (ix *Index) OwnedCompanies() int {
	if ix.parts <= 1 {
		return ix.Corpus.N()
	}
	var n int
	for i := 0; i < ix.Corpus.N(); i++ {
		if ix.owns(i) {
			n++
		}
	}
	return n
}

// NewIndex validates shapes and builds an index.
func NewIndex(c *corpus.Corpus, reps *mat.Matrix, metric Metric) (*Index, error) {
	if reps.Rows != c.N() {
		return nil, fmt.Errorf("core: %d representation rows for %d companies", reps.Rows, c.N())
	}
	if reps.Cols < 1 {
		return nil, fmt.Errorf("core: empty representations")
	}
	indexCompanies.Set(float64(c.N()))
	return &Index{Corpus: c, Reps: reps, Metric: metric}, nil
}

// similarity computes the similarity between two representation vectors.
func (ix *Index) similarity(a, b []float64) float64 {
	switch ix.Metric {
	case Euclidean:
		return 1 / (1 + math.Sqrt(mat.SqDist(a, b)))
	default:
		return mat.CosineSim(a, b)
	}
}

// TopK returns the k companies most similar to company id (excluding
// itself) that pass the filter, sorted by descending similarity with
// deterministic id tie-breaks.
func (ix *Index) TopK(id, k int, f Filter) ([]Match, error) {
	return ix.TopKContext(context.Background(), id, k, f)
}

// TopKContext is TopK with a deadline- or cancellation-carrying context
// threaded into the sharded candidate scan, for serving paths that enforce
// per-request deadlines. A cancelled query returns ctx.Err() and counts
// toward topk_errors_total, not topk_requests_total.
func (ix *Index) TopKContext(ctx context.Context, id, k int, f Filter) ([]Match, error) {
	if id < 0 || id >= ix.Corpus.N() {
		topkErrors.Inc()
		return nil, fmt.Errorf("core: company id %d outside [0,%d)", id, ix.Corpus.N())
	}
	return ix.topKByVector(ctx, ix.Reps.Row(id), k, f, id)
}

// TopKByVector searches with an explicit query vector (e.g. the inferred
// representation of a company outside the corpus).
func (ix *Index) TopKByVector(query []float64, k int, f Filter) ([]Match, error) {
	return ix.TopKByVectorContext(context.Background(), query, k, f)
}

// TopKByVectorContext is TopKByVector with a per-request context.
func (ix *Index) TopKByVectorContext(ctx context.Context, query []float64, k int, f Filter) ([]Match, error) {
	if len(query) != ix.Reps.Cols {
		topkErrors.Inc()
		return nil, fmt.Errorf("core: query dimension %d, index dimension %d", len(query), ix.Reps.Cols)
	}
	return ix.topKByVector(ctx, query, k, f, -1)
}

// MatchBetter is the total order of the candidate scans: similarity
// descending with deterministic id tie-breaks. Being total, the top-k it
// selects is unique, so sharded selection returns exactly what a full sort
// would at any shard or worker count. Exported so scatter-gather routers can
// merge per-shard answers under the exact order the scans used.
func MatchBetter(a, b Match) bool {
	if a.Similarity != b.Similarity {
		return a.Similarity > b.Similarity
	}
	return a.CompanyID < b.CompanyID
}

// topkHeap is a bounded selection heap: a min-heap under better holding at
// most k elements, with the worst retained element at the root. Pushing N
// candidates costs O(N log k) instead of the O(N log N) of sorting the full
// candidate set. better must be a total order so the selected top-k is
// unique regardless of push order or sharding.
type topkHeap[T any] struct {
	k      int
	better func(a, b T) bool
	m      []T
}

func newTopkHeap[T any](k int, better func(a, b T) bool) *topkHeap[T] {
	return &topkHeap[T]{k: k, better: better}
}

// push offers a candidate, evicting the worst retained element when full.
func (h *topkHeap[T]) push(c T) {
	if len(h.m) < h.k {
		h.m = append(h.m, c)
		// sift up: a parent better than its child violates the worst-at-root
		// invariant, so swap until the parent is worse (or we reach the root)
		i := len(h.m) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !h.better(h.m[p], h.m[i]) {
				break
			}
			h.m[i], h.m[p] = h.m[p], h.m[i]
			i = p
		}
		return
	}
	if !h.better(c, h.m[0]) {
		return
	}
	h.m[0] = c
	// sift down: move the new root below any worse descendant
	i := 0
	for {
		worst := i
		if l := 2*i + 1; l < len(h.m) && h.better(h.m[worst], h.m[l]) {
			worst = l
		}
		if r := 2*i + 2; r < len(h.m) && h.better(h.m[worst], h.m[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h.m[i], h.m[worst] = h.m[worst], h.m[i]
		i = worst
	}
}

// sorted drains the heap into best-first order.
func (h *topkHeap[T]) sorted() []T {
	out := h.m
	sort.Slice(out, func(a, b int) bool { return h.better(out[a], out[b]) })
	return out
}

// MergeTopK combines per-shard bounded-heap selections into the global
// top-k: concatenate (at most shards*k elements), sort under the same total
// order, truncate. Deterministic because the order is total — which is why a
// scatter-gather router merging per-process shard answers with this function
// (under MatchBetter or ProspectBetter) reproduces the unsharded answer
// exactly, regardless of response arrival order.
func MergeTopK[T any](shards [][]T, k int, better func(a, b T) bool) []T {
	var total int
	for _, s := range shards {
		total += len(s)
	}
	merged := make([]T, 0, total)
	for _, s := range shards {
		merged = append(merged, s...)
	}
	sort.Slice(merged, func(a, b int) bool { return better(merged[a], merged[b]) })
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged
}

func (ix *Index) topKByVector(ctx context.Context, query []float64, k int, f Filter, exclude int) ([]Match, error) {
	if k < 1 {
		topkErrors.Inc()
		return nil, fmt.Errorf("core: k must be positive, got %d", k)
	}
	start := time.Now()
	n := ix.Corpus.N()
	// The scan span parents the per-shard spans par.ForEachShard records, so
	// a traced request decomposes into its shard fan-out.
	ctx, sp := trace.Start(ctx, "core.topk")
	sp.AttrInt("k", int64(k))
	sp.AttrInt("candidates", int64(n))
	sc := NewScorer(ix.Metric, query)
	type shardOut struct {
		matches            []Match
		admitted, rejected uint64
	}
	var out []shardOut
	var err error
	if ix.pruner != nil {
		cells := ix.pruner.Candidates([][]float64{query})
		var pool int64
		for _, cell := range cells {
			pool += int64(len(cell))
		}
		sp.Attr("mode", "ann")
		sp.AttrInt("cells_probed", int64(len(cells)))
		sp.AttrInt("pool", pool)
		annTopkQueries.Inc()
		annTopkCandidates.Add(uint64(pool))
		annCellsProbed.Add(uint64(len(cells)))
		out = make([]shardOut, len(cells))
		err = par.ForEach(ctx, len(cells), func(ci int) error {
			h := newTopkHeap(k, MatchBetter)
			var admitted, rejected uint64
			for _, id := range cells[ci] {
				i := int(id)
				if i == exclude || !ix.owns(i) {
					continue
				}
				if !f.Admits(&ix.Corpus.Companies[i]) {
					rejected++
					continue
				}
				admitted++
				h.push(Match{CompanyID: i, Similarity: sc.Score(ix.Reps.Row(i))})
			}
			out[ci] = shardOut{matches: h.sorted(), admitted: admitted, rejected: rejected}
			return nil
		})
	} else {
		out = make([]shardOut, par.NumShards(n))
		err = par.ForEachShard(ctx, n, func(s, lo, hi int) error {
			h := newTopkHeap(k, MatchBetter)
			var admitted, rejected uint64
			for i := lo; i < hi; i++ {
				if i == exclude || !ix.owns(i) {
					continue
				}
				if !f.Admits(&ix.Corpus.Companies[i]) {
					rejected++
					continue
				}
				admitted++
				h.push(Match{CompanyID: i, Similarity: sc.Score(ix.Reps.Row(i))})
			}
			out[s] = shardOut{matches: h.sorted(), admitted: admitted, rejected: rejected}
			return nil
		})
	}
	if err != nil {
		topkErrors.Inc()
		sp.Error(err)
		sp.End()
		return nil, err
	}
	var admitted, rejected uint64
	perShard := make([][]Match, len(out))
	for s := range out {
		perShard[s] = out[s].matches
		admitted += out[s].admitted
		rejected += out[s].rejected
	}
	matches := MergeTopK(perShard, k, MatchBetter)
	sp.AttrInt("admitted", int64(admitted))
	sp.AttrInt("filtered", int64(rejected))
	sp.End()
	topkRequests.Inc()
	topkAdmitted.Add(admitted)
	topkFiltered.Add(rejected)
	topkLatency.Observe(time.Since(start).Seconds())
	return matches, nil
}

// ProductRecommendation is one gap-based recommendation: a category the
// target lacks, scored by the similarity-weighted share of similar companies
// that own it ("the strength of the recommendation is measured via the
// strength of the company similarity").
type ProductRecommendation struct {
	Category int
	Name     string
	Strength float64 // in [0,1]: similarity-weighted ownership among peers
	Owners   int     // peers owning the category
}

// RecommendFromSimilar finds the target's top-k similar companies (after
// filtering) and recommends the products they own that the target lacks.
func (ix *Index) RecommendFromSimilar(id, k int, f Filter) ([]ProductRecommendation, error) {
	return ix.RecommendFromSimilarContext(context.Background(), id, k, f)
}

// RecommendFromSimilarContext is RecommendFromSimilar with a per-request
// context. Every successfully served query — including one whose answer is
// empty because the filter admits no peers — counts toward
// recommend_requests_total and observes its fan-out; failed queries count
// toward recommend_errors_total only.
func (ix *Index) RecommendFromSimilarContext(ctx context.Context, id, k int, f Filter) ([]ProductRecommendation, error) {
	ctx, sp := trace.Start(ctx, "core.recommend")
	sp.AttrInt("peers_wanted", int64(k))
	peers, err := ix.TopKContext(ctx, id, k, f)
	if err != nil {
		recErrors.Inc()
		sp.Error(err)
		sp.End()
		return nil, err
	}
	out := ix.recommendFromPeers(id, peers)
	sp.AttrInt("fanout", int64(len(out)))
	sp.End()
	recRequests.Inc()
	recFanout.Observe(float64(len(out)))
	return out, nil
}

// RecommendFromPeers scores gap-based recommendations for id over an
// explicitly supplied peer set — the shard-side half of two-phase sharded
// recommendation, where a router first scatter-gathers the global top-k
// peers (each shard scanning its partition) and then asks one shard to score
// the merged set. Given the peers the unpartitioned TopK would select, the
// result is byte-identical to RecommendFromSimilar. Served queries count
// toward recommend_requests_total exactly like the single-process path.
func (ix *Index) RecommendFromPeers(id int, peers []Match) ([]ProductRecommendation, error) {
	if id < 0 || id >= ix.Corpus.N() {
		recErrors.Inc()
		return nil, fmt.Errorf("core: company id %d outside [0,%d)", id, ix.Corpus.N())
	}
	for _, p := range peers {
		if p.CompanyID < 0 || p.CompanyID >= ix.Corpus.N() {
			recErrors.Inc()
			return nil, fmt.Errorf("core: peer id %d outside [0,%d)", p.CompanyID, ix.Corpus.N())
		}
	}
	out := ix.recommendFromPeers(id, peers)
	recRequests.Inc()
	recFanout.Observe(float64(len(out)))
	return out, nil
}

// recommendFromPeers scores the gap-based recommendations for id given its
// already-selected peer set. An empty peer set, or one whose similarities
// are all non-positive, yields no recommendations.
func (ix *Index) recommendFromPeers(id int, peers []Match) []ProductRecommendation {
	if len(peers) == 0 {
		return nil
	}
	target := &ix.Corpus.Companies[id]
	owned := make(map[int]bool)
	for _, a := range target.Acquisitions {
		owned[a.Category] = true
	}
	// Sparse accumulation: peers own a handful of categories, so a dense
	// corpus-vocabulary-sized tally (two O(M) slices allocated and zeroed per
	// query) wastes nearly all its work. The map holds only touched
	// categories; per-category weights still accumulate in peer order, and the
	// keys are walked in ascending category order like the dense loop did, so
	// the output is gob-byte-identical (pinned by
	// TestRecommendFromPeersSparseMatchesDense).
	type tally struct {
		weight float64
		owners int
	}
	gaps := make(map[int]tally, 16)
	var totalSim float64
	for _, p := range peers {
		sim := math.Max(p.Similarity, 0)
		totalSim += sim
		for _, a := range ix.Corpus.Companies[p.CompanyID].Acquisitions {
			if owned[a.Category] {
				continue
			}
			t := gaps[a.Category]
			t.weight += sim
			t.owners++
			gaps[a.Category] = t
		}
	}
	if totalSim == 0 {
		return nil
	}
	cats := make([]int, 0, len(gaps))
	for cat := range gaps {
		cats = append(cats, cat)
	}
	sort.Ints(cats)
	out := make([]ProductRecommendation, 0, len(cats))
	for _, cat := range cats {
		t := gaps[cat]
		out = append(out, ProductRecommendation{
			Category: cat,
			Name:     ix.Corpus.Catalog.Name(cat),
			Strength: t.weight / totalSim,
			Owners:   t.owners,
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Strength != out[b].Strength {
			return out[a].Strength > out[b].Strength
		}
		return out[a].Category < out[b].Category
	})
	return out
}

// Whitespace identifies prospect companies similar to an existing client
// set: for each non-client company passing the filter, the similarity to
// its nearest client. This is the paper's white-space motivation — "identify
// companies that are similar to existing clients and therefore have a high
// potential of becoming new customers".
type WhitespaceProspect struct {
	CompanyID     int
	NearestClient int
	Similarity    float64
}

// Whitespace ranks non-client companies by their similarity to the nearest
// client, returning the top k.
func (ix *Index) Whitespace(clientIDs []int, k int, f Filter) ([]WhitespaceProspect, error) {
	return ix.WhitespaceContext(context.Background(), clientIDs, k, f)
}

// WhitespaceContext is Whitespace with a per-request context. Only queries
// that pass argument validation and complete the scan count toward
// whitespace_requests_total / whitespace_latency_seconds; rejected or
// cancelled queries count toward whitespace_errors_total.
func (ix *Index) WhitespaceContext(ctx context.Context, clientIDs []int, k int, f Filter) ([]WhitespaceProspect, error) {
	if k < 1 {
		wsErrors.Inc()
		return nil, fmt.Errorf("core: k must be positive, got %d", k)
	}
	if len(clientIDs) == 0 {
		wsErrors.Inc()
		return nil, fmt.Errorf("core: empty client set")
	}
	isClient := make(map[int]bool, len(clientIDs))
	clientRows := make([][]float64, len(clientIDs))
	for ci, id := range clientIDs {
		if id < 0 || id >= ix.Corpus.N() {
			wsErrors.Inc()
			return nil, fmt.Errorf("core: client id %d outside [0,%d)", id, ix.Corpus.N())
		}
		isClient[id] = true
		clientRows[ci] = ix.Reps.Row(id)
	}
	start := time.Now()
	n := ix.Corpus.N()
	ctx, sp := trace.Start(ctx, "core.whitespace")
	sp.AttrInt("clients", int64(len(clientIDs)))
	sp.AttrInt("k", int64(k))
	sp.AttrInt("candidates", int64(n))
	// One kernel per client hoists the client norms out of the O(n·clients)
	// hot loop; scorers are read-only and shared across scan goroutines.
	scorers := make([]*Scorer, len(clientRows))
	for ci, crow := range clientRows {
		scorers[ci] = NewScorer(ix.Metric, crow)
	}
	score := func(h *topkHeap[WhitespaceProspect], i int) {
		rowI := ix.Reps.Row(i)
		best := WhitespaceProspect{CompanyID: i, NearestClient: -1, Similarity: math.Inf(-1)}
		for ci := range scorers {
			if sim := scorers[ci].Score(rowI); sim > best.Similarity {
				best.Similarity, best.NearestClient = sim, clientIDs[ci]
			}
		}
		h.push(best)
	}
	var shards [][]WhitespaceProspect
	var err error
	if ix.pruner != nil {
		cells := ix.pruner.Candidates(clientRows)
		var pool int64
		for _, cell := range cells {
			pool += int64(len(cell))
		}
		sp.Attr("mode", "ann")
		sp.AttrInt("cells_probed", int64(len(cells)))
		sp.AttrInt("pool", pool)
		annWhitespaceQueries.Inc()
		annWhitespaceCandidates.Add(uint64(pool))
		annCellsProbed.Add(uint64(len(cells)))
		shards = make([][]WhitespaceProspect, len(cells))
		err = par.ForEach(ctx, len(cells), func(ci int) error {
			h := newTopkHeap(k, ProspectBetter)
			for _, id := range cells[ci] {
				i := int(id)
				if !ix.owns(i) || isClient[i] || !f.Admits(&ix.Corpus.Companies[i]) {
					continue
				}
				score(h, i)
			}
			shards[ci] = h.sorted()
			return nil
		})
	} else {
		shards = make([][]WhitespaceProspect, par.NumShards(n))
		err = par.ForEachShard(ctx, n, func(s, lo, hi int) error {
			h := newTopkHeap(k, ProspectBetter)
			for i := lo; i < hi; i++ {
				if !ix.owns(i) || isClient[i] || !f.Admits(&ix.Corpus.Companies[i]) {
					continue
				}
				score(h, i)
			}
			shards[s] = h.sorted()
			return nil
		})
	}
	if err != nil {
		wsErrors.Inc()
		sp.Error(err)
		sp.End()
		return nil, err
	}
	out := MergeTopK(shards, k, ProspectBetter)
	sp.End()
	wsRequests.Inc()
	wsLatency.Observe(time.Since(start).Seconds())
	return out, nil
}

// ProspectBetter is the total order for white-space prospects: similarity
// descending with deterministic id tie-breaks. Exported for scatter-gather
// merges, like MatchBetter.
func ProspectBetter(a, b WhitespaceProspect) bool {
	if a.Similarity != b.Similarity {
		return a.Similarity > b.Similarity
	}
	return a.CompanyID < b.CompanyID
}
