package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/par"
	"repro/internal/rng"
)

// TestPartitionOfPinned pins the FNV-1a partition hash: shard processes agree
// on ownership only because every build computes the same mapping, so any
// change to these values is a wire-compatibility break.
func TestPartitionOfPinned(t *testing.T) {
	pinned := map[[2]int]int{
		{0, 3}:    1,
		{1, 3}:    0,
		{2, 3}:    0,
		{3, 3}:    2,
		{17, 3}:   2,
		{0, 2}:    1,
		{41, 5}:   3,
		{1000, 7}: 2,
	}
	for in, want := range pinned {
		if got := PartitionOf(in[0], in[1]); got != want {
			t.Errorf("PartitionOf(%d, %d) = %d, want %d (pinned — changing the hash breaks cross-process sharding)",
				in[0], in[1], got, want)
		}
	}
	if PartitionOf(123, 1) != 0 || PartitionOf(123, 0) != 0 {
		t.Error("parts <= 1 must map everything to partition 0")
	}
}

// TestPartitionCoversDisjointly checks the partition is a disjoint cover of
// the id space at several shard counts.
func TestPartitionCoversDisjointly(t *testing.T) {
	for _, parts := range []int{2, 3, 5, 8} {
		counts := make([]int, parts)
		for id := 0; id < 10000; id++ {
			p := PartitionOf(id, parts)
			if p < 0 || p >= parts {
				t.Fatalf("PartitionOf(%d, %d) = %d outside range", id, parts, p)
			}
			counts[p]++
		}
		for p, n := range counts {
			// A uniform hash keeps partitions within a loose band of N/parts.
			if n < 10000/parts/2 || n > 10000*2/parts {
				t.Errorf("parts=%d partition %d holds %d of 10000 ids — badly unbalanced", parts, p, n)
			}
		}
	}
}

func testPartitionIndex(t *testing.T) (*Index, func(part, parts int) *Index) {
	t.Helper()
	cat := corpus.DefaultCatalog()
	m := cat.Size()
	companies := make([]corpus.Company, 60)
	for i := range companies {
		companies[i] = corpus.Company{
			ID: i, Name: fmt.Sprintf("co-%02d", i),
			Country: []string{"US", "DE", "GB"}[i%3], SIC2: 70 + i%4,
			Employees: 10 + i, RevenueM: float64(1 + i%9),
			Acquisitions: []corpus.Acquisition{
				{Category: i % m, First: corpus.Month(i % 12)},
				{Category: (i*7 + 3) % m, First: corpus.Month(i%12 + 1)},
			},
		}
		companies[i].SortAcquisitions()
	}
	c := corpus.New(cat, companies)
	g := rng.New(11)
	reps := mat.New(c.N(), 4)
	for i := 0; i < reps.Rows*reps.Cols; i++ {
		reps.Data[i] = g.Float64()
	}
	full, err := NewIndex(c, reps, Cosine)
	if err != nil {
		t.Fatal(err)
	}
	shard := func(part, parts int) *Index {
		ix, err := NewIndex(c, reps, Cosine)
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.SetPartition(part, parts); err != nil {
			t.Fatal(err)
		}
		return ix
	}
	return full, shard
}

// TestTopKPartition1vs3GobIdentical is the sharded merge contract: the
// per-partition TopK answers, merged under MatchBetter, are gob-byte-
// identical to the unpartitioned answer — at one worker and at four.
func TestTopKPartition1vs3GobIdentical(t *testing.T) {
	full, shard := testPartitionIndex(t)
	const parts = 3
	filters := []Filter{{}, {Country: "US"}, {SIC2: 71}, {MinEmployees: 30}}
	for _, workers := range []int{1, 4} {
		par.SetWorkers(workers)
		for _, f := range filters {
			for _, k := range []int{1, 5, 12} {
				want, err := full.TopK(7, k, f)
				if err != nil {
					t.Fatal(err)
				}
				perShard := make([][]Match, parts)
				for p := 0; p < parts; p++ {
					ms, err := shard(p, parts).TopK(7, k, f)
					if err != nil {
						t.Fatal(err)
					}
					perShard[p] = ms
				}
				got := MergeTopK(perShard, k, MatchBetter)
				if !bytes.Equal(gobBytes(t, want), gobBytes(t, got)) {
					t.Fatalf("workers=%d k=%d filter=%v: merged partition top-k differs from unpartitioned\nwant %v\ngot  %v",
						workers, k, f, want, got)
				}
			}
		}
	}
	par.SetWorkers(4)
}

// TestWhitespacePartitionGobIdentical does the same for white-space scans.
func TestWhitespacePartitionGobIdentical(t *testing.T) {
	full, shard := testPartitionIndex(t)
	const parts = 3
	clients := []int{2, 9, 33}
	want, err := full.Whitespace(clients, 8, Filter{})
	if err != nil {
		t.Fatal(err)
	}
	perShard := make([][]WhitespaceProspect, parts)
	for p := 0; p < parts; p++ {
		ps, err := shard(p, parts).Whitespace(clients, 8, Filter{})
		if err != nil {
			t.Fatal(err)
		}
		perShard[p] = ps
	}
	got := MergeTopK(perShard, 8, ProspectBetter)
	if !bytes.Equal(gobBytes(t, want), gobBytes(t, got)) {
		t.Fatalf("merged partition whitespace differs from unpartitioned\nwant %v\ngot  %v", want, got)
	}
}

// TestRecommendFromPeersMatchesSingleProcess proves the two-phase sharded
// recommendation path: global peers (merged from partitions) scored by
// RecommendFromPeers equal the single-process RecommendFromSimilar.
func TestRecommendFromPeersMatchesSingleProcess(t *testing.T) {
	full, shard := testPartitionIndex(t)
	const parts, peers = 3, 10
	want, err := full.RecommendFromSimilar(4, peers, Filter{})
	if err != nil {
		t.Fatal(err)
	}
	perShard := make([][]Match, parts)
	for p := 0; p < parts; p++ {
		ms, err := shard(p, parts).TopK(4, peers, Filter{})
		if err != nil {
			t.Fatal(err)
		}
		perShard[p] = ms
	}
	merged := MergeTopK(perShard, peers, MatchBetter)
	got, err := full.RecommendFromPeers(4, merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gobBytes(t, want), gobBytes(t, got)) {
		t.Fatalf("RecommendFromPeers(merged peers) differs from RecommendFromSimilar\nwant %v\ngot  %v", want, got)
	}
	if _, err := full.RecommendFromPeers(-1, nil); err == nil {
		t.Error("RecommendFromPeers accepted a negative id")
	}
	if _, err := full.RecommendFromPeers(0, []Match{{CompanyID: 10_000}}); err == nil {
		t.Error("RecommendFromPeers accepted an out-of-range peer")
	}
}

// TestSetPartitionValidation covers the partition setter edge cases.
func TestSetPartitionValidation(t *testing.T) {
	full, _ := testPartitionIndex(t)
	if err := full.SetPartition(3, 3); err == nil {
		t.Error("SetPartition(3, 3) should fail")
	}
	if err := full.SetPartition(-1, 3); err == nil {
		t.Error("SetPartition(-1, 3) should fail")
	}
	if err := full.SetPartition(0, 1); err != nil {
		t.Errorf("SetPartition(0, 1): %v", err)
	}
	if p, n := full.Partition(); p != 0 || n != 1 {
		t.Errorf("unpartitioned Partition() = %d, %d", p, n)
	}
	if err := full.SetPartition(2, 3); err != nil {
		t.Fatal(err)
	}
	if p, n := full.Partition(); p != 2 || n != 3 {
		t.Errorf("Partition() = %d, %d after SetPartition(2, 3)", p, n)
	}
	if own := full.OwnedCompanies(); own <= 0 || own >= full.Corpus.N() {
		t.Errorf("OwnedCompanies() = %d of %d — partition should own a strict subset", own, full.Corpus.N())
	}
	// A cancelled context still surfaces as an error on a partitioned scan.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := full.TopKContext(ctx, 0, 3, Filter{}); err == nil {
		t.Error("cancelled TopKContext on a partitioned index should fail")
	}
}
