package core

import (
	"bytes"
	"math"
	"sort"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
)

// TestScorerMatchesSimilarity is the kernel's bit-compatibility contract:
// every Score the blocked kernel produces must be bit-identical to the
// naive per-pair similarity the scans used before, for both metrics,
// including the zero-norm guards. Any drift here changes served results.
func TestScorerMatchesSimilarity(t *testing.T) {
	const n, d = 200, 7
	g := rng.New(29)
	rows := mat.New(n, d)
	for i := range rows.Data {
		rows.Data[i] = g.Float64() - 0.3 // mixed signs exercise cancellation
	}
	// Degenerate rows the guards must handle.
	for j := 0; j < d; j++ {
		rows.Row(3)[j] = 0
	}
	queries := [][]float64{rows.Row(0), rows.Row(n - 1), make([]float64, d)}
	for _, metric := range []Metric{Cosine, Euclidean} {
		ix := &Index{Metric: metric}
		for qi, q := range queries {
			sc := NewScorer(metric, q)
			for i := 0; i < n; i++ {
				got := sc.Score(rows.Row(i))
				want := ix.similarity(q, rows.Row(i))
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("metric=%v query=%d row=%d: Score=%v (bits %x) similarity=%v (bits %x)",
						metric, qi, i, got, math.Float64bits(got), want, math.Float64bits(want))
				}
			}
			// ScoreBlock must agree with Score on any sub-range.
			dst := make([]float64, n)
			for _, span := range [][2]int{{0, n}, {3, 4}, {n / 2, n}, {5, 5}} {
				lo, hi := span[0], span[1]
				sc.ScoreBlock(rows, lo, hi, dst[lo:hi])
				for i := lo; i < hi; i++ {
					if math.Float64bits(dst[i]) != math.Float64bits(sc.Score(rows.Row(i))) {
						t.Fatalf("metric=%v query=%d ScoreBlock[%d,%d) row %d differs from Score", metric, qi, lo, hi, i)
					}
				}
			}
		}
	}
}

// TestFilterKeyInjectionResistant extends the canonical-key test with
// adversarial countries: Country is the only client-controlled string in
// the serving cache key, and quoting it must keep field boundaries
// unforgeable — no crafted country may alias another filter's key.
func TestFilterKeyInjectionResistant(t *testing.T) {
	variants := []Filter{
		{Country: "US", MinEmployees: 1},
		{Country: "US|e1:0"},
		{Country: `US"|e1:0|r0:0`},
		{Country: "US|e1"},
		{Country: "US\x00DE"},
		{Country: "USDE"}, {Country: "US"}, {Country: "DE"},
		{SIC2: 1, Country: "US"},
		{Country: "1US"},
	}
	seen := make(map[string]int)
	for i, f := range variants {
		if j, dup := seen[f.Key()]; dup {
			t.Fatalf("filters %+v and %+v collide on cache key %q", variants[i], variants[j], f.Key())
		}
		seen[f.Key()] = i
	}
}

// denseRecommendFromPeers is the seed's O(M)-allocation implementation,
// kept verbatim as the behavioral reference for the sparse rewrite.
func denseRecommendFromPeers(ix *Index, id int, peers []Match) []ProductRecommendation {
	if len(peers) == 0 {
		return nil
	}
	target := &ix.Corpus.Companies[id]
	owned := make(map[int]bool)
	for _, a := range target.Acquisitions {
		owned[a.Category] = true
	}
	weight := make([]float64, ix.Corpus.M())
	owners := make([]int, ix.Corpus.M())
	var totalSim float64
	for _, p := range peers {
		sim := math.Max(p.Similarity, 0)
		totalSim += sim
		for _, a := range ix.Corpus.Companies[p.CompanyID].Acquisitions {
			if owned[a.Category] {
				continue
			}
			weight[a.Category] += sim
			owners[a.Category]++
		}
	}
	if totalSim == 0 {
		return nil
	}
	var out []ProductRecommendation
	for cat, w := range weight {
		if owners[cat] == 0 {
			continue
		}
		out = append(out, ProductRecommendation{
			Category: cat,
			Name:     ix.Corpus.Catalog.Name(cat),
			Strength: w / totalSim,
			Owners:   owners[cat],
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Strength != out[b].Strength {
			return out[a].Strength > out[b].Strength
		}
		return out[a].Category < out[b].Category
	})
	return out
}

// TestRecommendFromPeersSparseMatchesDense pins the sparse rewrite to the
// dense reference gob-byte-identically — same categories, same
// accumulation order (hence the same float bits), same sort — across peer
// sets including negative similarities, duplicate peers, empty peer sets
// and all-non-positive similarity sets.
func TestRecommendFromPeersSparseMatchesDense(t *testing.T) {
	c, reps := bigFixture(80)
	ix, err := NewIndex(c, reps, Cosine)
	if err != nil {
		t.Fatal(err)
	}
	peerSets := [][]Match{
		nil,
		{},
		{{CompanyID: 1, Similarity: 0.9}},
		{{CompanyID: 1, Similarity: -0.5}, {CompanyID: 2, Similarity: 0}},
		{{CompanyID: 7, Similarity: 0.8}, {CompanyID: 7, Similarity: 0.8}},
	}
	g := rng.New(41)
	for trial := 0; trial < 20; trial++ {
		var ps []Match
		for len(ps) < 12 {
			ps = append(ps, Match{CompanyID: g.Intn(c.N()), Similarity: g.Float64()*1.2 - 0.1})
		}
		peerSets = append(peerSets, ps)
	}
	for i, peers := range peerSets {
		for id := 0; id < 5; id++ {
			want := denseRecommendFromPeers(ix, id, peers)
			got := ix.recommendFromPeers(id, peers)
			if !bytes.Equal(gobBytes(t, want), gobBytes(t, got)) {
				t.Fatalf("peer set %d target %d: sparse output differs from dense reference\nwant %v\ngot  %v",
					i, id, want, got)
			}
		}
	}
}

// BenchmarkRecommendFromPeers measures the per-query allocation profile of
// the gap accumulation; the sparse rewrite's point is dropping the two
// O(M) slices the dense version allocated per query.
func BenchmarkRecommendFromPeers(b *testing.B) {
	c, reps := bigFixture(200)
	ix, err := NewIndex(c, reps, Cosine)
	if err != nil {
		b.Fatal(err)
	}
	peers := make([]Match, 10)
	for i := range peers {
		peers[i] = Match{CompanyID: 3*i + 1, Similarity: 1 - float64(i)*0.05}
	}
	b.Run("sparse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ix.recommendFromPeers(0, peers)
		}
	})
	b.Run("dense-reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			denseRecommendFromPeers(ix, 0, peers)
		}
	})
}
