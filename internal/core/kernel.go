package core

import (
	"math"

	"repro/internal/mat"
)

// Scorer is the blocked exact scoring kernel of the candidate scans: a
// query-bound similarity evaluator that hoists the per-query work — the
// metric dispatch and the query norm — out of the per-candidate loop and
// fuses the dot product with the candidate norm into one pass over the row,
// so a scan streams each Reps row through cache exactly once. A Scorer is
// immutable after construction and safe to share across scan goroutines.
//
// Bit-compatibility contract: Score(row) returns exactly what the naive
// per-pair path (mat.CosineSim / the Euclidean transform in
// Index.similarity) returns for the same operands, including the zero-norm
// guard — multiplication operand order and summation order are preserved —
// so switching the scans to the kernel changes no served byte. Pinned by
// TestScorerMatchesSimilarity.
type Scorer struct {
	metric Metric
	query  []float64
	qnorm  float64 // cached ‖query‖; cosine only
}

// NewScorer binds a query vector to a metric, precomputing the query norm.
func NewScorer(metric Metric, query []float64) *Scorer {
	s := &Scorer{metric: metric, query: query}
	if metric != Euclidean {
		s.qnorm = mat.Norm2(query)
	}
	return s
}

// Score returns similarity(query, row) under the bound metric.
func (s *Scorer) Score(row []float64) float64 {
	if s.metric == Euclidean {
		return 1 / (1 + math.Sqrt(mat.SqDist(s.query, row)))
	}
	var dot, rr float64
	for i, v := range s.query {
		dot += v * row[i]
		rr += row[i] * row[i]
	}
	rn := math.Sqrt(rr)
	if s.qnorm == 0 || rn == 0 {
		return 0
	}
	return dot / (s.qnorm * rn)
}

// ScoreBlock scores the contiguous row block [lo, hi) of m into
// dst[0:hi-lo], streaming the block's backing array front to back. This is
// the bulk entry the ANN router uses to rank centroid cells and the shape
// the kernel benchmark measures.
func (s *Scorer) ScoreBlock(m *mat.Matrix, lo, hi int, dst []float64) {
	if hi-lo > len(dst) {
		panic("core: ScoreBlock destination too short")
	}
	d := m.Cols
	data := m.Data[lo*d : hi*d]
	for r := 0; r < hi-lo; r++ {
		dst[r] = s.Score(data[r*d : (r+1)*d])
	}
}
