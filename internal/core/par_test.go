package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"

	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/par"
)

// bigFixture builds a corpus large enough for the candidate scan to split
// into several shards, with deterministic (formula-based) representations.
func bigFixture(n int) (*corpus.Corpus, *mat.Matrix) {
	cat := corpus.DefaultCatalog()
	companies := make([]corpus.Company, n)
	reps := mat.New(n, 4)
	for i := range companies {
		companies[i] = corpus.Company{
			ID: i, Name: fmt.Sprintf("C%03d", i),
			Country: []string{"US", "DE", "GB"}[i%3], SIC2: 70 + i%5,
			Employees: 10 + i, RevenueM: float64(1 + i%7),
			Acquisitions: []corpus.Acquisition{{Category: i % cat.Size(), First: 0}},
		}
		row := reps.Row(i)
		for k := range row {
			row[k] = float64((i*31+k*17)%97) / 97
		}
	}
	return corpus.New(cat, companies), reps
}

func TestTopKLargerThanN(t *testing.T) {
	c, reps := fixture()
	ix, _ := NewIndex(c, reps, Cosine)
	matches, err := ix.TopK(0, 50, Filter{})
	if err != nil {
		t.Fatal(err)
	}
	// k exceeds the candidate count: all 5 non-query companies come back,
	// sorted by descending similarity.
	if len(matches) != 5 {
		t.Fatalf("k>N returned %d matches, want 5", len(matches))
	}
	for i := 1; i < len(matches); i++ {
		if MatchBetter(matches[i], matches[i-1]) {
			t.Fatalf("matches out of order at %d: %+v", i, matches)
		}
	}
}

func TestTopKAllFiltered(t *testing.T) {
	c, reps := fixture()
	ix, _ := NewIndex(c, reps, Cosine)
	matches, err := ix.TopK(0, 3, Filter{Country: "FR"})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("all-filtered scan returned %+v", matches)
	}
}

func TestTopKEuclideanTies(t *testing.T) {
	// Rows 1 and 2 are exactly equidistant from row 0; the tie must break
	// toward the lower company id, at any worker count.
	cat := corpus.DefaultCatalog()
	companies := make([]corpus.Company, 3)
	for i := range companies {
		companies[i] = corpus.Company{ID: i, Name: fmt.Sprintf("T%d", i)}
	}
	c := corpus.New(cat, companies)
	reps := mat.FromSlice(3, 2, []float64{
		0, 0,
		1, 0,
		0, 1,
	})
	ix, err := NewIndex(c, reps, Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	matches, err := ix.TopK(0, 2, Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 || matches[0].Similarity != matches[1].Similarity {
		t.Fatalf("expected a two-way tie, got %+v", matches)
	}
	if matches[0].CompanyID != 1 || matches[1].CompanyID != 2 {
		t.Fatalf("tie not broken by id: %+v", matches)
	}
}

// TestWhitespacePinned pins the exact Whitespace ranking on the small
// fixture so the sharded bounded-heap scan cannot change results.
func TestWhitespacePinned(t *testing.T) {
	c, reps := fixture()
	ix, _ := NewIndex(c, reps, Cosine)
	prospects, err := ix.Whitespace([]int{0}, 10, Filter{})
	if err != nil {
		t.Fatal(err)
	}
	// Cosine similarity to company 0 orders the HW rows first, then the SW
	// rows by their residual first-topic weight.
	wantIDs := []int{1, 2, 5, 4, 3}
	if len(prospects) != len(wantIDs) {
		t.Fatalf("got %d prospects, want %d", len(prospects), len(wantIDs))
	}
	for i, p := range prospects {
		if p.CompanyID != wantIDs[i] {
			t.Fatalf("rank %d: company %d, want %d (%+v)", i, p.CompanyID, wantIDs[i], prospects)
		}
		if p.NearestClient != 0 {
			t.Fatalf("rank %d: nearest client %d, want 0", i, p.NearestClient)
		}
		if i > 0 && prospects[i].Similarity > prospects[i-1].Similarity {
			t.Fatal("prospects not sorted by similarity")
		}
	}
}

// TestTopkHeapMatchesFullSort cross-checks the bounded heap against a full
// sort for k values below, at, and above the candidate count, including
// heavy ties.
func TestTopkHeapMatchesFullSort(t *testing.T) {
	var all []Match
	for i := 0; i < 60; i++ {
		all = append(all, Match{CompanyID: i, Similarity: float64((i * 37) % 11)})
	}
	for _, k := range []int{1, 2, 7, 11, 59, 60, 61, 200} {
		h := newTopkHeap(k, MatchBetter)
		for _, m := range all {
			h.push(m)
		}
		got := h.sorted()
		want := MergeTopK([][]Match{append([]Match(nil), all...)}, k, MatchBetter)
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d selected, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("k=%d rank %d: heap %+v, sort %+v", k, i, got[i], want[i])
			}
		}
	}
}

func mustGob(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTopKWorkersGobIdentical proves the sharded candidate scans return
// gob-byte-identical results at workers=1 and workers=4.
func TestTopKWorkersGobIdentical(t *testing.T) {
	c, reps := bigFixture(150)
	for _, metric := range []Metric{Cosine, Euclidean} {
		ix, err := NewIndex(c, reps, metric)
		if err != nil {
			t.Fatal(err)
		}
		run := func(w int) (topk, ws []byte) {
			par.SetWorkers(w)
			defer par.SetWorkers(0)
			m, err := ix.TopK(0, 17, Filter{Country: "US"})
			if err != nil {
				t.Fatal(err)
			}
			p, err := ix.Whitespace([]int{0, 3, 7}, 23, Filter{})
			if err != nil {
				t.Fatal(err)
			}
			return mustGob(t, m), mustGob(t, p)
		}
		seqTopk, seqWS := run(1)
		parTopk, parWS := run(4)
		if !bytes.Equal(seqTopk, parTopk) {
			t.Fatalf("%v: TopK differs between workers=1 and workers=4", metric)
		}
		if !bytes.Equal(seqWS, parWS) {
			t.Fatalf("%v: Whitespace differs between workers=1 and workers=4", metric)
		}
	}
}
