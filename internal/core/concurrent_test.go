package core

// Concurrent-read safety of the shared Index: ibserve answers every request
// against one *Index from many goroutines at once, so the three query paths
// must be safe for concurrent use AND return exactly what a sequential
// caller gets. Run under -race (tier-1 does) this also proves the scans
// share no hidden mutable state.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/mat"
)

// servingFixture builds a 120-company index with deterministic
// representations and enough attribute variety to exercise the filters.
func servingFixture(t *testing.T) *Index {
	t.Helper()
	cat := corpus.DefaultCatalog()
	m := cat.Size()
	const n = 120
	const dim = 4
	countries := []string{"US", "DE", "GB", "FR"}
	companies := make([]corpus.Company, n)
	reps := mat.New(n, dim)
	for i := 0; i < n; i++ {
		companies[i] = corpus.Company{
			ID:        i,
			Name:      fmt.Sprintf("co-%03d", i),
			Country:   countries[i%len(countries)],
			SIC2:      70 + i%5,
			Employees: 10 + i*13%2000,
			RevenueM:  float64(1 + i*7%500),
			Acquisitions: []corpus.Acquisition{
				{Category: i % m, First: corpus.Month(i % 24)},
				{Category: (i*3 + 1) % m, First: corpus.Month(i%24 + 1)},
			},
		}
		companies[i].SortAcquisitions()
		for j := 0; j < dim; j++ {
			reps.Set(i, j, 0.1+float64((i*7+j*3)%11)/11)
		}
	}
	ix, err := NewIndex(corpus.New(cat, companies), reps, Cosine)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func gobBytes(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestConcurrentIndexReadsGobIdentical replays a fixed query mix
// sequentially to record expected answers, then hammers the same shared
// Index from many goroutines and asserts every concurrent answer is
// gob-byte-identical to its sequential counterpart.
func TestConcurrentIndexReadsGobIdentical(t *testing.T) {
	ix := servingFixture(t)
	filters := []Filter{
		{},
		{Country: "US"},
		{SIC2: 72},
		{MinEmployees: 100, MaxEmployees: 1500},
		{Country: "DE", MinRevenueM: 50},
	}
	type query struct {
		name string
		run  func() (any, error)
	}
	var queries []query
	for qi := 0; qi < 12; qi++ {
		id := qi * 9 % 120
		f := filters[qi%len(filters)]
		clients := []int{id, (id + 17) % 120, (id + 53) % 120}
		queries = append(queries,
			query{fmt.Sprintf("topk/%d", qi), func() (any, error) { return ix.TopK(id, 10, f) }},
			query{fmt.Sprintf("recommend/%d", qi), func() (any, error) { return ix.RecommendFromSimilar(id, 5, f) }},
			query{fmt.Sprintf("whitespace/%d", qi), func() (any, error) { return ix.Whitespace(clients, 8, f) }},
		)
	}

	expected := make([][]byte, len(queries))
	for i, q := range queries {
		out, err := q.run()
		if err != nil {
			t.Fatalf("%s: %v", q.name, err)
		}
		expected[i] = gobBytes(t, out)
	}

	const goroutines = 8
	const rounds = 5
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for off := 0; off < len(queries); off++ {
					// Each goroutine walks the queries at a different phase so
					// distinct paths overlap in time.
					i := (off + g*7 + r) % len(queries)
					out, err := queries[i].run()
					if err != nil {
						errs <- fmt.Errorf("%s: %v", queries[i].name, err)
						return
					}
					var buf bytes.Buffer
					if err := gob.NewEncoder(&buf).Encode(out); err != nil {
						errs <- err
						return
					}
					if !bytes.Equal(buf.Bytes(), expected[i]) {
						errs <- fmt.Errorf("%s: concurrent result differs from sequential", queries[i].name)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
