package core

import (
	"bytes"
	"context"
	"strings"

	"math"
	"testing"

	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/obs"
)

// fixture: 6 companies with 3-dimensional topic representations forming two
// groups (hardware-ish rows 0-2, software-ish rows 3-5).
func fixture() (*corpus.Corpus, *mat.Matrix) {
	cat := corpus.DefaultCatalog()
	companies := []corpus.Company{
		{ID: 0, Name: "HW-A", Country: "US", SIC2: 80, Employees: 100, RevenueM: 10,
			Acquisitions: []corpus.Acquisition{{Category: 0, First: 0}, {Category: 1, First: 1}}},
		{ID: 1, Name: "HW-B", Country: "US", SIC2: 80, Employees: 5000, RevenueM: 900,
			Acquisitions: []corpus.Acquisition{{Category: 0, First: 0}, {Category: 2, First: 1}}},
		{ID: 2, Name: "HW-C", Country: "DE", SIC2: 73, Employees: 50, RevenueM: 5,
			Acquisitions: []corpus.Acquisition{{Category: 1, First: 0}, {Category: 3, First: 1}}},
		{ID: 3, Name: "SW-A", Country: "US", SIC2: 73, Employees: 200, RevenueM: 20,
			Acquisitions: []corpus.Acquisition{{Category: 10, First: 0}, {Category: 11, First: 1}}},
		{ID: 4, Name: "SW-B", Country: "US", SIC2: 73, Employees: 300, RevenueM: 30,
			Acquisitions: []corpus.Acquisition{{Category: 10, First: 0}, {Category: 12, First: 1}}},
		{ID: 5, Name: "SW-C", Country: "GB", SIC2: 82, Employees: 400, RevenueM: 40,
			Acquisitions: []corpus.Acquisition{{Category: 11, First: 0}, {Category: 13, First: 1}}},
	}
	c := corpus.New(cat, companies)
	reps := mat.FromSlice(6, 3, []float64{
		0.9, 0.05, 0.05,
		0.85, 0.1, 0.05,
		0.8, 0.15, 0.05,
		0.05, 0.9, 0.05,
		0.1, 0.85, 0.05,
		0.15, 0.8, 0.05,
	})
	return c, reps
}

func TestNewIndexValidation(t *testing.T) {
	c, reps := fixture()
	if _, err := NewIndex(c, mat.New(3, 2), Cosine); err == nil {
		t.Fatal("row mismatch accepted")
	}
	if _, err := NewIndex(c, mat.New(6, 0), Cosine); err == nil {
		t.Fatal("zero-dim reps accepted")
	}
	if _, err := NewIndex(c, reps, Cosine); err != nil {
		t.Fatal(err)
	}
}

func TestTopKFindsGroup(t *testing.T) {
	c, reps := fixture()
	ix, err := NewIndex(c, reps, Cosine)
	if err != nil {
		t.Fatal(err)
	}
	matches, err := ix.TopK(0, 2, Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Fatalf("matches = %d", len(matches))
	}
	for _, m := range matches {
		if m.CompanyID != 1 && m.CompanyID != 2 {
			t.Fatalf("company 0's neighbors should be 1 and 2, got %d", m.CompanyID)
		}
		if m.CompanyID == 0 {
			t.Fatal("query company in its own results")
		}
	}
	// sorted by similarity descending
	if matches[0].Similarity < matches[1].Similarity {
		t.Fatal("results not sorted")
	}
}

func TestTopKEuclidean(t *testing.T) {
	c, reps := fixture()
	ix, _ := NewIndex(c, reps, Euclidean)
	matches, err := ix.TopK(3, 1, Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if matches[0].CompanyID != 4 {
		t.Fatalf("nearest to SW-A should be SW-B, got %d", matches[0].CompanyID)
	}
	if matches[0].Similarity <= 0 || matches[0].Similarity > 1 {
		t.Fatalf("euclidean similarity %v outside (0,1]", matches[0].Similarity)
	}
}

func TestTopKErrors(t *testing.T) {
	c, reps := fixture()
	ix, _ := NewIndex(c, reps, Cosine)
	if _, err := ix.TopK(99, 2, Filter{}); err == nil {
		t.Fatal("bad id accepted")
	}
	if _, err := ix.TopK(0, 0, Filter{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := ix.TopKByVector([]float64{1}, 2, Filter{}); err == nil {
		t.Fatal("bad query dimension accepted")
	}
}

func TestFilters(t *testing.T) {
	c, reps := fixture()
	ix, _ := NewIndex(c, reps, Cosine)
	// country filter
	matches, err := ix.TopK(0, 5, Filter{Country: "DE"})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].CompanyID != 2 {
		t.Fatalf("country filter: %+v", matches)
	}
	// industry filter
	matches, _ = ix.TopK(0, 5, Filter{SIC2: 80})
	if len(matches) != 1 || matches[0].CompanyID != 1 {
		t.Fatalf("industry filter: %+v", matches)
	}
	// employee range
	matches, _ = ix.TopK(0, 5, Filter{MinEmployees: 1000})
	if len(matches) != 1 || matches[0].CompanyID != 1 {
		t.Fatalf("employee filter: %+v", matches)
	}
	matches, _ = ix.TopK(1, 5, Filter{MaxEmployees: 60})
	if len(matches) != 1 || matches[0].CompanyID != 2 {
		t.Fatalf("max-employee filter: %+v", matches)
	}
	// revenue range
	matches, _ = ix.TopK(0, 5, Filter{MinRevenueM: 25, MaxRevenueM: 35})
	if len(matches) != 1 || matches[0].CompanyID != 4 {
		t.Fatalf("revenue filter: %+v", matches)
	}
}

func TestTopKByVector(t *testing.T) {
	c, reps := fixture()
	ix, _ := NewIndex(c, reps, Cosine)
	matches, err := ix.TopKByVector([]float64{0.05, 0.9, 0.05}, 1, Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if matches[0].CompanyID != 3 {
		t.Fatalf("query vector should match SW-A exactly, got %d", matches[0].CompanyID)
	}
	if math.Abs(matches[0].Similarity-1) > 1e-9 {
		t.Fatalf("identical vector similarity = %v", matches[0].Similarity)
	}
}

func TestRecommendFromSimilar(t *testing.T) {
	c, reps := fixture()
	ix, _ := NewIndex(c, reps, Cosine)
	// Company 0 owns {0, 1}; peers 1 and 2 own {0, 2} and {1, 3}.
	// Gap products: 2 (from peer 1) and 3 (from peer 2).
	recs, err := ix.RecommendFromSimilar(0, 2, Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("recommendations = %+v", recs)
	}
	got := map[int]ProductRecommendation{}
	for _, r := range recs {
		got[r.Category] = r
		if r.Strength <= 0 || r.Strength > 1 {
			t.Fatalf("strength %v out of (0,1]", r.Strength)
		}
		if r.Name == "" {
			t.Fatal("missing product name")
		}
		if r.Owners != 1 {
			t.Fatalf("owners = %d", r.Owners)
		}
	}
	if _, ok := got[2]; !ok {
		t.Fatal("category 2 not recommended")
	}
	if _, ok := got[3]; !ok {
		t.Fatal("category 3 not recommended")
	}
	// owned categories never recommended
	if _, ok := got[0]; ok {
		t.Fatal("owned category recommended")
	}
	// peer 1 is more similar to 0 than peer 2, so category 2 ranks first
	if recs[0].Category != 2 {
		t.Fatalf("ranking wrong: %+v", recs)
	}
}

func TestWhitespace(t *testing.T) {
	c, reps := fixture()
	ix, _ := NewIndex(c, reps, Cosine)
	// clients = {0}: the best prospects should be the other HW companies.
	prospects, err := ix.Whitespace([]int{0}, 2, Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(prospects) != 2 {
		t.Fatalf("prospects = %d", len(prospects))
	}
	for _, p := range prospects {
		if p.CompanyID != 1 && p.CompanyID != 2 {
			t.Fatalf("prospect %d should be a HW company", p.CompanyID)
		}
		if p.NearestClient != 0 {
			t.Fatalf("nearest client = %d", p.NearestClient)
		}
	}
	// clients never appear as prospects
	all, _ := ix.Whitespace([]int{0, 3}, 10, Filter{})
	for _, p := range all {
		if p.CompanyID == 0 || p.CompanyID == 3 {
			t.Fatal("client listed as prospect")
		}
	}
	// errors
	if _, err := ix.Whitespace(nil, 2, Filter{}); err == nil {
		t.Fatal("empty client set accepted")
	}
	if _, err := ix.Whitespace([]int{99}, 2, Filter{}); err == nil {
		t.Fatal("bad client id accepted")
	}
	if _, err := ix.Whitespace([]int{0}, 0, Filter{}); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestFilterAdmitsZeroValues(t *testing.T) {
	c, _ := fixture()
	f := Filter{}
	for i := range c.Companies {
		if !f.Admits(&c.Companies[i]) {
			t.Fatal("empty filter must admit everything")
		}
	}
}

// TestQueryMetricsExposed runs each query path and checks the default
// registry's Prometheus exposition carries the serving-path series.
func TestQueryMetricsExposed(t *testing.T) {
	c, reps := fixture()
	ix, err := NewIndex(c, reps, Cosine)
	if err != nil {
		t.Fatal(err)
	}
	req0 := obs.Default().Counter("topk_requests_total", "").Value()
	lat0 := obs.Default().Histogram("topk_latency_seconds", "", nil).Count()
	if _, err := ix.TopK(0, 3, Filter{Country: "US"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.RecommendFromSimilar(0, 3, Filter{}); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Whitespace([]int{0}, 3, Filter{}); err != nil {
		t.Fatal(err)
	}
	if got := obs.Default().Counter("topk_requests_total", "").Value(); got <= req0 {
		t.Fatalf("topk_requests_total did not advance (%d -> %d)", req0, got)
	}
	if got := obs.Default().Histogram("topk_latency_seconds", "", nil).Count(); got <= lat0 {
		t.Fatalf("topk_latency_seconds count did not advance (%d -> %d)", lat0, got)
	}

	var buf bytes.Buffer
	if err := obs.Default().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, name := range []string{
		"# TYPE topk_latency_seconds histogram",
		"topk_latency_seconds_bucket{le=\"+Inf\"}",
		"# TYPE topk_requests_total counter",
		"topk_candidates_admitted_total",
		"topk_candidates_filtered_total",
		"# TYPE recommend_fanout_products histogram",
		"whitespace_latency_seconds_sum",
		"# TYPE index_companies gauge",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("/metrics exposition missing %q", name)
		}
	}
}

// TestMetricCountsServedVsErrors pins the served/error counter contract:
// every successfully served query increments its *_requests_total exactly
// once — including queries whose answer is empty — and every failed query
// increments only its *_errors_total.
func TestMetricCountsServedVsErrors(t *testing.T) {
	c, reps := fixture()
	ix, err := NewIndex(c, reps, Cosine)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.Default()
	counter := func(name string) uint64 { return reg.Counter(name, "").Value() }
	histCount := func(name string) uint64 { return reg.Histogram(name, "", nil).Count() }

	// Recommendation with a filter admitting no peers is still a served
	// request: one recommend_requests_total tick and one fan-out
	// observation (of 0), no error tick.
	rec0, recErr0, fan0 := counter("recommend_requests_total"), counter("recommend_errors_total"), histCount("recommend_fanout_products")
	out, err := ix.RecommendFromSimilar(0, 3, Filter{Country: "XX"})
	if err != nil || len(out) != 0 {
		t.Fatalf("empty-peer recommendation: out=%v err=%v", out, err)
	}
	if got := counter("recommend_requests_total"); got != rec0+1 {
		t.Fatalf("recommend_requests_total %d, want %d (empty answers are served requests)", got, rec0+1)
	}
	if got := histCount("recommend_fanout_products"); got != fan0+1 {
		t.Fatalf("recommend_fanout_products count %d, want %d", got, fan0+1)
	}
	if got := counter("recommend_errors_total"); got != recErr0 {
		t.Fatalf("recommend_errors_total moved on a served request (%d -> %d)", recErr0, got)
	}

	// Peers whose similarities are all exactly 0 (orthogonal vectors) also
	// yield a served, empty recommendation.
	oc := corpus.New(corpus.DefaultCatalog(), []corpus.Company{
		{ID: 0, Acquisitions: []corpus.Acquisition{{Category: 0, First: 0}}},
		{ID: 1, Acquisitions: []corpus.Acquisition{{Category: 1, First: 0}}},
	})
	oreps := mat.FromSlice(2, 2, []float64{1, 0, 0, 1})
	oix, err := NewIndex(oc, oreps, Cosine)
	if err != nil {
		t.Fatal(err)
	}
	rec0 = counter("recommend_requests_total")
	if out, err = oix.RecommendFromSimilar(0, 1, Filter{}); err != nil || len(out) != 0 {
		t.Fatalf("zero-similarity recommendation: out=%v err=%v", out, err)
	}
	if got := counter("recommend_requests_total"); got != rec0+1 {
		t.Fatalf("zero-similarity query not counted as served (%d, want %d)", got, rec0+1)
	}

	// Recommendation for an invalid id fails: error tick only (plus the
	// underlying top-k error tick).
	rec0, recErr0 = counter("recommend_requests_total"), counter("recommend_errors_total")
	if _, err = ix.RecommendFromSimilar(-1, 3, Filter{}); err == nil {
		t.Fatal("invalid id accepted")
	}
	if got := counter("recommend_requests_total"); got != rec0 {
		t.Fatalf("failed recommendation counted as served (%d -> %d)", rec0, got)
	}
	if got := counter("recommend_errors_total"); got != recErr0+1 {
		t.Fatalf("recommend_errors_total %d, want %d", got, recErr0+1)
	}

	// Whitespace with an out-of-range client id fails before serving: no
	// request tick, no latency observation, one error tick.
	ws0, wsErr0, lat0 := counter("whitespace_requests_total"), counter("whitespace_errors_total"), histCount("whitespace_latency_seconds")
	if _, err = ix.Whitespace([]int{999}, 3, Filter{}); err == nil {
		t.Fatal("out-of-range client id accepted")
	}
	if _, err = ix.Whitespace(nil, 3, Filter{}); err == nil {
		t.Fatal("empty client set accepted")
	}
	if _, err = ix.Whitespace([]int{0}, 0, Filter{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if got := counter("whitespace_requests_total"); got != ws0 {
		t.Fatalf("failed whitespace queries counted as served (%d -> %d)", ws0, got)
	}
	if got := histCount("whitespace_latency_seconds"); got != lat0 {
		t.Fatalf("failed whitespace queries observed latency (%d -> %d)", lat0, got)
	}
	if got := counter("whitespace_errors_total"); got != wsErr0+3 {
		t.Fatalf("whitespace_errors_total %d, want %d", got, wsErr0+3)
	}

	// A served whitespace query ticks requests and latency exactly once.
	ws0, lat0 = counter("whitespace_requests_total"), histCount("whitespace_latency_seconds")
	if _, err = ix.Whitespace([]int{0}, 3, Filter{}); err != nil {
		t.Fatal(err)
	}
	if got := counter("whitespace_requests_total"); got != ws0+1 {
		t.Fatalf("whitespace_requests_total %d, want %d", got, ws0+1)
	}
	if got := histCount("whitespace_latency_seconds"); got != lat0+1 {
		t.Fatalf("whitespace_latency_seconds count %d, want %d", got, lat0+1)
	}

	// Top-k argument failures tick topk_errors_total, never requests.
	tk0, tkErr0 := counter("topk_requests_total"), counter("topk_errors_total")
	if _, err = ix.TopK(99, 3, Filter{}); err == nil {
		t.Fatal("invalid id accepted")
	}
	if _, err = ix.TopK(0, 0, Filter{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err = ix.TopKByVector([]float64{1}, 3, Filter{}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if got := counter("topk_requests_total"); got != tk0 {
		t.Fatalf("failed top-k queries counted as served (%d -> %d)", tk0, got)
	}
	if got := counter("topk_errors_total"); got != tkErr0+3 {
		t.Fatalf("topk_errors_total %d, want %d", got, tkErr0+3)
	}
}

// TestContextCancellationCountsAsError checks the Context query variants
// surface ctx.Err() and count the query as an error, not a served request.
func TestContextCancellationCountsAsError(t *testing.T) {
	c, reps := fixture()
	ix, err := NewIndex(c, reps, Cosine)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reg := obs.Default()
	counter := func(name string) uint64 { return reg.Counter(name, "").Value() }

	tk0, tkErr0 := counter("topk_requests_total"), counter("topk_errors_total")
	if _, err := ix.TopKContext(ctx, 0, 3, Filter{}); err == nil {
		t.Fatal("cancelled top-k succeeded")
	}
	if got := counter("topk_requests_total"); got != tk0 {
		t.Fatalf("cancelled top-k counted as served (%d -> %d)", tk0, got)
	}
	if got := counter("topk_errors_total"); got != tkErr0+1 {
		t.Fatalf("topk_errors_total %d, want %d", got, tkErr0+1)
	}

	ws0, wsErr0 := counter("whitespace_requests_total"), counter("whitespace_errors_total")
	if _, err := ix.WhitespaceContext(ctx, []int{0}, 3, Filter{}); err == nil {
		t.Fatal("cancelled whitespace succeeded")
	}
	if got := counter("whitespace_requests_total"); got != ws0 {
		t.Fatalf("cancelled whitespace counted as served (%d -> %d)", ws0, got)
	}
	if got := counter("whitespace_errors_total"); got != wsErr0+1 {
		t.Fatalf("whitespace_errors_total %d, want %d", got, wsErr0+1)
	}

	recErr0 := counter("recommend_errors_total")
	if _, err := ix.RecommendFromSimilarContext(ctx, 0, 3, Filter{}); err == nil {
		t.Fatal("cancelled recommendation succeeded")
	}
	if got := counter("recommend_errors_total"); got != recErr0+1 {
		t.Fatalf("recommend_errors_total %d, want %d", got, recErr0+1)
	}
}

// TestFilterKeyCanonical checks Filter.Key distinguishes filters that admit
// different sets and is stable for equal filters.
func TestFilterKeyCanonical(t *testing.T) {
	a := Filter{SIC2: 73, Country: "US", MinEmployees: 10, MaxRevenueM: 5.5}
	b := Filter{SIC2: 73, Country: "US", MinEmployees: 10, MaxRevenueM: 5.5}
	if a.Key() != b.Key() {
		t.Fatalf("equal filters disagree: %q vs %q", a.Key(), b.Key())
	}
	variants := []Filter{
		{}, {SIC2: 73}, {Country: "US"}, {MinEmployees: 10}, {MaxEmployees: 10},
		{MinRevenueM: 1}, {MaxRevenueM: 1}, a,
		// Country is client-supplied: delimiter-bearing values must not
		// forge other fields (see TestFilterKeyInjectionResistant).
		{Country: "US|e10:0"}, {Country: "US", MinEmployees: 10},
	}
	seen := make(map[string]int)
	for i, f := range variants {
		if j, dup := seen[f.Key()]; dup {
			t.Fatalf("filters %d and %d collide on key %q", i, j, f.Key())
		}
		seen[f.Key()] = i
	}
}
