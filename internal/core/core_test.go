package core

import (
	"bytes"
	"strings"

	"math"
	"testing"

	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/obs"
)

// fixture: 6 companies with 3-dimensional topic representations forming two
// groups (hardware-ish rows 0-2, software-ish rows 3-5).
func fixture() (*corpus.Corpus, *mat.Matrix) {
	cat := corpus.DefaultCatalog()
	companies := []corpus.Company{
		{ID: 0, Name: "HW-A", Country: "US", SIC2: 80, Employees: 100, RevenueM: 10,
			Acquisitions: []corpus.Acquisition{{Category: 0, First: 0}, {Category: 1, First: 1}}},
		{ID: 1, Name: "HW-B", Country: "US", SIC2: 80, Employees: 5000, RevenueM: 900,
			Acquisitions: []corpus.Acquisition{{Category: 0, First: 0}, {Category: 2, First: 1}}},
		{ID: 2, Name: "HW-C", Country: "DE", SIC2: 73, Employees: 50, RevenueM: 5,
			Acquisitions: []corpus.Acquisition{{Category: 1, First: 0}, {Category: 3, First: 1}}},
		{ID: 3, Name: "SW-A", Country: "US", SIC2: 73, Employees: 200, RevenueM: 20,
			Acquisitions: []corpus.Acquisition{{Category: 10, First: 0}, {Category: 11, First: 1}}},
		{ID: 4, Name: "SW-B", Country: "US", SIC2: 73, Employees: 300, RevenueM: 30,
			Acquisitions: []corpus.Acquisition{{Category: 10, First: 0}, {Category: 12, First: 1}}},
		{ID: 5, Name: "SW-C", Country: "GB", SIC2: 82, Employees: 400, RevenueM: 40,
			Acquisitions: []corpus.Acquisition{{Category: 11, First: 0}, {Category: 13, First: 1}}},
	}
	c := corpus.New(cat, companies)
	reps := mat.FromSlice(6, 3, []float64{
		0.9, 0.05, 0.05,
		0.85, 0.1, 0.05,
		0.8, 0.15, 0.05,
		0.05, 0.9, 0.05,
		0.1, 0.85, 0.05,
		0.15, 0.8, 0.05,
	})
	return c, reps
}

func TestNewIndexValidation(t *testing.T) {
	c, reps := fixture()
	if _, err := NewIndex(c, mat.New(3, 2), Cosine); err == nil {
		t.Fatal("row mismatch accepted")
	}
	if _, err := NewIndex(c, mat.New(6, 0), Cosine); err == nil {
		t.Fatal("zero-dim reps accepted")
	}
	if _, err := NewIndex(c, reps, Cosine); err != nil {
		t.Fatal(err)
	}
}

func TestTopKFindsGroup(t *testing.T) {
	c, reps := fixture()
	ix, err := NewIndex(c, reps, Cosine)
	if err != nil {
		t.Fatal(err)
	}
	matches, err := ix.TopK(0, 2, Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Fatalf("matches = %d", len(matches))
	}
	for _, m := range matches {
		if m.CompanyID != 1 && m.CompanyID != 2 {
			t.Fatalf("company 0's neighbors should be 1 and 2, got %d", m.CompanyID)
		}
		if m.CompanyID == 0 {
			t.Fatal("query company in its own results")
		}
	}
	// sorted by similarity descending
	if matches[0].Similarity < matches[1].Similarity {
		t.Fatal("results not sorted")
	}
}

func TestTopKEuclidean(t *testing.T) {
	c, reps := fixture()
	ix, _ := NewIndex(c, reps, Euclidean)
	matches, err := ix.TopK(3, 1, Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if matches[0].CompanyID != 4 {
		t.Fatalf("nearest to SW-A should be SW-B, got %d", matches[0].CompanyID)
	}
	if matches[0].Similarity <= 0 || matches[0].Similarity > 1 {
		t.Fatalf("euclidean similarity %v outside (0,1]", matches[0].Similarity)
	}
}

func TestTopKErrors(t *testing.T) {
	c, reps := fixture()
	ix, _ := NewIndex(c, reps, Cosine)
	if _, err := ix.TopK(99, 2, Filter{}); err == nil {
		t.Fatal("bad id accepted")
	}
	if _, err := ix.TopK(0, 0, Filter{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := ix.TopKByVector([]float64{1}, 2, Filter{}); err == nil {
		t.Fatal("bad query dimension accepted")
	}
}

func TestFilters(t *testing.T) {
	c, reps := fixture()
	ix, _ := NewIndex(c, reps, Cosine)
	// country filter
	matches, err := ix.TopK(0, 5, Filter{Country: "DE"})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].CompanyID != 2 {
		t.Fatalf("country filter: %+v", matches)
	}
	// industry filter
	matches, _ = ix.TopK(0, 5, Filter{SIC2: 80})
	if len(matches) != 1 || matches[0].CompanyID != 1 {
		t.Fatalf("industry filter: %+v", matches)
	}
	// employee range
	matches, _ = ix.TopK(0, 5, Filter{MinEmployees: 1000})
	if len(matches) != 1 || matches[0].CompanyID != 1 {
		t.Fatalf("employee filter: %+v", matches)
	}
	matches, _ = ix.TopK(1, 5, Filter{MaxEmployees: 60})
	if len(matches) != 1 || matches[0].CompanyID != 2 {
		t.Fatalf("max-employee filter: %+v", matches)
	}
	// revenue range
	matches, _ = ix.TopK(0, 5, Filter{MinRevenueM: 25, MaxRevenueM: 35})
	if len(matches) != 1 || matches[0].CompanyID != 4 {
		t.Fatalf("revenue filter: %+v", matches)
	}
}

func TestTopKByVector(t *testing.T) {
	c, reps := fixture()
	ix, _ := NewIndex(c, reps, Cosine)
	matches, err := ix.TopKByVector([]float64{0.05, 0.9, 0.05}, 1, Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if matches[0].CompanyID != 3 {
		t.Fatalf("query vector should match SW-A exactly, got %d", matches[0].CompanyID)
	}
	if math.Abs(matches[0].Similarity-1) > 1e-9 {
		t.Fatalf("identical vector similarity = %v", matches[0].Similarity)
	}
}

func TestRecommendFromSimilar(t *testing.T) {
	c, reps := fixture()
	ix, _ := NewIndex(c, reps, Cosine)
	// Company 0 owns {0, 1}; peers 1 and 2 own {0, 2} and {1, 3}.
	// Gap products: 2 (from peer 1) and 3 (from peer 2).
	recs, err := ix.RecommendFromSimilar(0, 2, Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("recommendations = %+v", recs)
	}
	got := map[int]ProductRecommendation{}
	for _, r := range recs {
		got[r.Category] = r
		if r.Strength <= 0 || r.Strength > 1 {
			t.Fatalf("strength %v out of (0,1]", r.Strength)
		}
		if r.Name == "" {
			t.Fatal("missing product name")
		}
		if r.Owners != 1 {
			t.Fatalf("owners = %d", r.Owners)
		}
	}
	if _, ok := got[2]; !ok {
		t.Fatal("category 2 not recommended")
	}
	if _, ok := got[3]; !ok {
		t.Fatal("category 3 not recommended")
	}
	// owned categories never recommended
	if _, ok := got[0]; ok {
		t.Fatal("owned category recommended")
	}
	// peer 1 is more similar to 0 than peer 2, so category 2 ranks first
	if recs[0].Category != 2 {
		t.Fatalf("ranking wrong: %+v", recs)
	}
}

func TestWhitespace(t *testing.T) {
	c, reps := fixture()
	ix, _ := NewIndex(c, reps, Cosine)
	// clients = {0}: the best prospects should be the other HW companies.
	prospects, err := ix.Whitespace([]int{0}, 2, Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(prospects) != 2 {
		t.Fatalf("prospects = %d", len(prospects))
	}
	for _, p := range prospects {
		if p.CompanyID != 1 && p.CompanyID != 2 {
			t.Fatalf("prospect %d should be a HW company", p.CompanyID)
		}
		if p.NearestClient != 0 {
			t.Fatalf("nearest client = %d", p.NearestClient)
		}
	}
	// clients never appear as prospects
	all, _ := ix.Whitespace([]int{0, 3}, 10, Filter{})
	for _, p := range all {
		if p.CompanyID == 0 || p.CompanyID == 3 {
			t.Fatal("client listed as prospect")
		}
	}
	// errors
	if _, err := ix.Whitespace(nil, 2, Filter{}); err == nil {
		t.Fatal("empty client set accepted")
	}
	if _, err := ix.Whitespace([]int{99}, 2, Filter{}); err == nil {
		t.Fatal("bad client id accepted")
	}
	if _, err := ix.Whitespace([]int{0}, 0, Filter{}); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestFilterAdmitsZeroValues(t *testing.T) {
	c, _ := fixture()
	f := Filter{}
	for i := range c.Companies {
		if !f.Admits(&c.Companies[i]) {
			t.Fatal("empty filter must admit everything")
		}
	}
}

// TestQueryMetricsExposed runs each query path and checks the default
// registry's Prometheus exposition carries the serving-path series.
func TestQueryMetricsExposed(t *testing.T) {
	c, reps := fixture()
	ix, err := NewIndex(c, reps, Cosine)
	if err != nil {
		t.Fatal(err)
	}
	req0 := obs.Default().Counter("topk_requests_total", "").Value()
	lat0 := obs.Default().Histogram("topk_latency_seconds", "", nil).Count()
	if _, err := ix.TopK(0, 3, Filter{Country: "US"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.RecommendFromSimilar(0, 3, Filter{}); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Whitespace([]int{0}, 3, Filter{}); err != nil {
		t.Fatal(err)
	}
	if got := obs.Default().Counter("topk_requests_total", "").Value(); got <= req0 {
		t.Fatalf("topk_requests_total did not advance (%d -> %d)", req0, got)
	}
	if got := obs.Default().Histogram("topk_latency_seconds", "", nil).Count(); got <= lat0 {
		t.Fatalf("topk_latency_seconds count did not advance (%d -> %d)", lat0, got)
	}

	var buf bytes.Buffer
	if err := obs.Default().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, name := range []string{
		"# TYPE topk_latency_seconds histogram",
		"topk_latency_seconds_bucket{le=\"+Inf\"}",
		"# TYPE topk_requests_total counter",
		"topk_candidates_admitted_total",
		"topk_candidates_filtered_total",
		"# TYPE recommend_fanout_products histogram",
		"whitespace_latency_seconds_sum",
		"# TYPE index_companies gauge",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("/metrics exposition missing %q", name)
		}
	}
}
