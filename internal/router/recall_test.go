package router

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/obs"
	"repro/internal/shadow"
	"repro/internal/trace"
)

// fakeRecallShard stands up a stub shard that answers GET /debug/recall with
// a canned shadow.Status (st == nil answers 404, like a shard with sampling
// off — /readyz still says ready so the router treats it as healthy).
func fakeRecallShard(t *testing.T, st *shadow.Status) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("{\"status\":\"ready\"}\n"))
	})
	if st != nil {
		mux.HandleFunc("GET /debug/recall", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(st)
		})
	}
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func fleetRecall(t *testing.T, rt *Router) fleetRecallResponse {
	t.Helper()
	var h http.Handler
	for _, r := range rt.Routes() {
		if r.Pattern == "GET /debug/recall" {
			h = r.Handler
		}
	}
	if h == nil {
		t.Fatal("Routes() does not include GET /debug/recall")
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/recall", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("fleet /debug/recall status = %d, want 200", rec.Code)
	}
	var out fleetRecallResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("unmarshal fleet recall: %v\n%s", err, rec.Body.String())
	}
	return out
}

// TestFleetRecallAggregation drives the router's fleet recall view over four
// stub shards: two sampling (with different window weights and worst rings),
// one with sampling off (404), one down entirely. The fleet view must report
// the sample-weighted mean recall, merge the worst entries recall-ascending
// with shard annotations, and degrade the broken shards inline rather than
// failing the whole view.
func TestFleetRecallAggregation(t *testing.T) {
	s0 := fakeRecallShard(t, &shadow.Status{
		Enabled: true, SampleOneIn: 8, WindowSamples: 3, Recall: 0.9,
		Worst: []shadow.Entry{{Seq: 2, Kind: "similar", QueryID: 7, K: 10, Recall: 0.5, TraceID: "aa"}},
	})
	s1 := fakeRecallShard(t, &shadow.Status{
		Enabled: true, SampleOneIn: 8, WindowSamples: 1, Recall: 0.5,
		Worst: []shadow.Entry{{Seq: 5, Kind: "whitespace", K: 10, Recall: 0.8, TraceID: "bb"}},
	})
	s2 := fakeRecallShard(t, nil) // sampling off: 404
	s3 := fakeRecallShard(t, nil)
	deadURL := s3.URL
	s3.Close() // down entirely: transport error

	rt, err := New(Config{Shards: []string{s0.URL, s1.URL, s2.URL, deadURL},
		ProbeInterval: -1, HedgeQuantile: -1, Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)

	out := fleetRecall(t, rt)
	if len(out.Shards) != 4 {
		t.Fatalf("shards = %d, want 4", len(out.Shards))
	}
	if out.ShardsSampling != 2 {
		t.Errorf("shards_sampling = %d, want 2", out.ShardsSampling)
	}
	if out.WindowSamples != 4 {
		t.Errorf("window_samples = %d, want 4", out.WindowSamples)
	}
	// Weighted mean: (0.9*3 + 0.5*1) / 4 = 0.8.
	if out.ObservedRecall < 0.799 || out.ObservedRecall > 0.801 {
		t.Errorf("observed_recall = %v, want 0.8", out.ObservedRecall)
	}
	if !out.Shards[0].Sampling || out.Shards[0].Err != "" || out.Shards[0].Status == nil {
		t.Errorf("shard 0 = %+v, want sampling with status", out.Shards[0])
	}
	if out.Shards[2].Sampling || out.Shards[2].Err != "" {
		t.Errorf("shard 2 = %+v, want sampling off without error", out.Shards[2])
	}
	if out.Shards[3].Err == "" {
		t.Errorf("shard 3 = %+v, want inline error for a dead shard", out.Shards[3])
	}
	if len(out.Worst) != 2 {
		t.Fatalf("worst = %+v, want 2 merged entries", out.Worst)
	}
	if out.Worst[0].Recall != 0.5 || out.Worst[0].Shard != 0 || out.Worst[0].TraceID != "aa" {
		t.Errorf("worst[0] = %+v, want shard 0's recall-0.5 entry first", out.Worst[0])
	}
	if out.Worst[1].Recall != 0.8 || out.Worst[1].Shard != 1 {
		t.Errorf("worst[1] = %+v, want shard 1's recall-0.8 entry", out.Worst[1])
	}
}

// TestFleetRecallWorstTruncation pins the merged worst list to its cap: a
// shard ring larger than fleetWorstMax must come back truncated to the
// lowest-recall entries.
func TestFleetRecallWorstTruncation(t *testing.T) {
	st := &shadow.Status{Enabled: true, WindowSamples: 1, Recall: 0.5}
	for i := 0; i < fleetWorstMax+8; i++ {
		st.Worst = append(st.Worst, shadow.Entry{Seq: uint64(i + 1), Kind: "similar",
			K: 10, Recall: float64(i) / float64(fleetWorstMax+8)})
	}
	s0 := fakeRecallShard(t, st)
	rt, err := New(Config{Shards: []string{s0.URL}, ProbeInterval: -1, HedgeQuantile: -1, Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)

	out := fleetRecall(t, rt)
	if len(out.Worst) != fleetWorstMax {
		t.Fatalf("worst = %d entries, want truncated to %d", len(out.Worst), fleetWorstMax)
	}
	for i := 1; i < len(out.Worst); i++ {
		if out.Worst[i].Recall < out.Worst[i-1].Recall {
			t.Fatalf("worst not recall-ascending at %d: %v then %v", i,
				out.Worst[i-1].Recall, out.Worst[i].Recall)
		}
	}
}

// TestRouterLatencyExemplarAndTraceRoutes covers two observability contracts
// at once: a traced request must leave its trace ID as a bucket exemplar on
// the router_*_latency_seconds histogram, and the same trace must be
// inspectable through the trace debug routes that ibrouter mounts on its
// -debug-addr (list filtered by the router.similar root span, then resolved
// by ID).
func TestRouterLatencyExemplarAndTraceRoutes(t *testing.T) {
	tr := trace.NewTracer(64)
	tr.SetEnabled(true)
	tr.SetSampleRate(1)
	_, ts := newCluster(t, 2, Config{Tracer: tr}, nil)

	resp, _ := get(t, ts.URL, "/v1/similar/3?k=5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("similar status = %d, want 200", resp.StatusCode)
	}
	traceID := resp.Header.Get("traceparent")
	if len(traceID) < 35 {
		t.Fatalf("traceparent header = %q, want a W3C traceparent", traceID)
	}
	traceID = traceID[3:35] // 00-<32 hex trace id>-...

	hs, ok := obs.Default().Snapshot().Histograms["router_similar_latency_seconds"]
	if !ok {
		t.Fatal("router_similar_latency_seconds not registered")
	}
	found := false
	for _, ex := range hs.Exemplars {
		if ex.TraceID == traceID {
			found = true
		}
	}
	if !found {
		t.Errorf("no exemplar with trace %s on router_similar_latency_seconds: %+v", traceID, hs.Exemplars)
	}

	// The trace routes ibrouter serves on -debug-addr resolve the same trace.
	mux := http.NewServeMux()
	for _, rtr := range trace.Routes(tr) {
		mux.Handle(rtr.Pattern, rtr.Handler)
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces?endpoint=router.similar", nil))
	var list []trace.Summary
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatalf("unmarshal /debug/traces: %v", err)
	}
	if len(list) == 0 {
		t.Fatal("/debug/traces?endpoint=router.similar is empty, want the traced request")
	}
	found = false
	for _, s := range list {
		if s.TraceID == traceID {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace %s absent from /debug/traces list %+v", traceID, list)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces/"+traceID, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/traces/%s status = %d, want 200", traceID, rec.Code)
	}
}
