package router

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// Breaker states, exported on the per-shard router_shard{i}_breaker_state
// gauge so an operator can see at a glance which shard is isolated.
const (
	breakerClosed   = 0 // healthy: requests flow
	breakerHalfOpen = 1 // cooling finished: exactly one probe in flight
	breakerOpen     = 2 // tripped: requests skip the shard
)

// breaker is a per-shard circuit breaker: consecutive failures trip it open,
// an exponentially backed-off cooldown gates a single half-open probe, and a
// successful probe closes it again. It exists so one dead or blackholed shard
// costs the router a handful of timed-out requests — not one timeout per
// incoming query forever.
type breaker struct {
	mu        sync.Mutex
	state     int
	fails     int           // consecutive failures while closed
	cooldown  time.Duration // current open interval (doubles per failed probe)
	openUntil time.Time

	threshold   int
	baseCool    time.Duration
	maxCool     time.Duration
	stateMetric *obs.Gauge
}

func newBreaker(threshold int, cooldown, maxCooldown time.Duration, stateMetric *obs.Gauge) *breaker {
	return &breaker{
		threshold:   threshold,
		baseCool:    cooldown,
		maxCool:     maxCooldown,
		cooldown:    cooldown,
		stateMetric: stateMetric,
	}
}

func (b *breaker) setState(s int) {
	b.state = s
	b.stateMetric.Set(float64(s))
}

// Allow reports whether a request may go to the shard. probe is true for the
// single request admitted while half-open; its outcome (Success(true) /
// Failure(true)) decides whether the breaker closes or re-opens with a
// doubled cooldown.
func (b *breaker) Allow(now time.Time) (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if now.Before(b.openUntil) {
			return false, false
		}
		b.setState(breakerHalfOpen)
		return true, true
	default: // half-open: a probe is already in flight
		return false, false
	}
}

// Success records a request the shard answered (any HTTP status < 500).
func (b *breaker) Success(probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe || b.state == breakerHalfOpen {
		b.cooldown = b.baseCool
	}
	b.fails = 0
	if b.state != breakerClosed {
		// A stale non-probe success (dispatched before the trip) is still
		// first-hand evidence the shard answers; close rather than discard it.
		b.setState(breakerClosed)
	}
}

// Failure records a transport error or 5xx. The probe's failure re-opens
// with exponential backoff; while closed, the consecutive-failure counter
// trips at threshold.
func (b *breaker) Failure(now time.Time, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe || b.state == breakerHalfOpen {
		b.cooldown = min(b.cooldown*2, b.maxCool)
		b.openUntil = now.Add(b.cooldown)
		b.setState(breakerOpen)
		return
	}
	if b.state != breakerClosed {
		return // already open; stale failures add nothing
	}
	b.fails++
	if b.fails >= b.threshold {
		b.fails = 0
		b.cooldown = b.baseCool
		b.openUntil = now.Add(b.cooldown)
		b.setState(breakerOpen)
	}
}

// State returns the current breaker state constant.
func (b *breaker) State() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
