package router

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// latWindow is a small ring of recent successful shard latencies; its
// quantile sets the hedge delay, so the router hedges exactly the requests
// that are slower than this shard's own recent behaviour.
type latWindow struct {
	mu   sync.Mutex
	buf  []time.Duration
	next int
	full bool
}

const latWindowSize = 128

func newLatWindow() *latWindow { return &latWindow{buf: make([]time.Duration, latWindowSize)} }

func (w *latWindow) Record(d time.Duration) {
	w.mu.Lock()
	w.buf[w.next] = d
	w.next++
	if w.next == len(w.buf) {
		w.next, w.full = 0, true
	}
	w.mu.Unlock()
}

// Quantile returns the q-quantile of the recorded window, or 0 when empty.
func (w *latWindow) Quantile(q float64) time.Duration {
	w.mu.Lock()
	n := w.next
	if w.full {
		n = len(w.buf)
	}
	tmp := make([]time.Duration, n)
	copy(tmp, w.buf[:n])
	w.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	idx := int(q * float64(n-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return tmp[idx]
}

// shard is the router's view of one backend: its base URL, breaker,
// readiness flag (maintained by the probe loop), latency window and
// per-shard metric series (the obs registry has no labels, so each shard
// gets its own router_shard{i}_* names).
type shard struct {
	index int
	base  string // e.g. http://127.0.0.1:8081

	br    *breaker
	ready atomic.Bool
	lat   *latWindow

	mFanout    *obs.Histogram // router_shard{i}_fanout_latency_seconds
	mHedges    *obs.Counter   // router_shard{i}_hedges_total
	mHedgeWins *obs.Counter   // router_shard{i}_hedge_wins_total
	mFailures  *obs.Counter   // router_shard{i}_failures_total
}

func newShard(index int, base string) *shard {
	p := fmt.Sprintf("router_shard%d_", index)
	sh := &shard{
		index: index,
		base:  base,
		lat:   newLatWindow(),
		mFanout: obs.Default().Histogram(p+"fanout_latency_seconds",
			fmt.Sprintf("latency of answered fan-out calls to shard %d", index), obs.DefBuckets),
		mHedges: obs.Default().Counter(p+"hedges_total",
			fmt.Sprintf("hedge requests fired at shard %d after the quantile delay", index)),
		mHedgeWins: obs.Default().Counter(p+"hedge_wins_total",
			fmt.Sprintf("hedge requests to shard %d that answered before the original", index)),
		mFailures: obs.Default().Counter(p+"failures_total",
			fmt.Sprintf("fan-out calls to shard %d that failed (transport error or 5xx)", index)),
	}
	sh.ready.Store(true)
	return sh
}

// shardResult is one shard's answer to a fan-out call.
type shardResult struct {
	shard   int
	status  int
	body    []byte
	err     error
	skipped bool // breaker open or shard not ready; no request was sent
}

// failed reports whether the shard must be treated as missing: it never got
// the request, the transport failed, or it answered with a server error.
func (r shardResult) failed() bool {
	return r.skipped || r.err != nil || r.status >= 500
}

type attemptResult struct {
	status int
	body   []byte
	err    error
	hedge  bool
	dur    time.Duration
}

// call performs one hedged HTTP request against the shard. The original
// attempt starts immediately; if it has not answered after hedgeDelay a
// second identical attempt is fired and the first answer without a transport
// error wins — the loser's context is cancelled. Only answered attempts feed
// the latency window, so injected failures cannot drag the hedge delay up.
func (sh *shard) call(ctx context.Context, client *http.Client, method, url string,
	body []byte, header http.Header, hedgeDelay time.Duration) shardResult {
	actx, cancel := context.WithCancel(ctx)
	defer cancel() // first winner cancels the outstanding loser
	ch := make(chan attemptResult, 2)
	attempt := func(hedge bool) {
		start := time.Now()
		status, b, err := doRequest(actx, client, method, url, body, header)
		ch <- attemptResult{status: status, body: b, err: err, hedge: hedge, dur: time.Since(start)}
	}
	go attempt(false)
	outstanding := 1

	var hedgeC <-chan time.Time
	if hedgeDelay > 0 {
		t := time.NewTimer(hedgeDelay)
		defer t.Stop()
		hedgeC = t.C
	}
	var firstErr error
	for {
		select {
		case r := <-ch:
			outstanding--
			if r.err == nil {
				if r.hedge {
					sh.mHedgeWins.Inc()
				}
				sh.lat.Record(r.dur)
				sh.mFanout.Observe(r.dur.Seconds())
				return shardResult{shard: sh.index, status: r.status, body: r.body}
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if outstanding == 0 {
				// No attempt left in flight. A hedge not yet fired would hit
				// the same failing backend, so give up now.
				return shardResult{shard: sh.index, err: firstErr}
			}
		case <-hedgeC:
			hedgeC = nil
			sh.mHedges.Inc()
			outstanding++
			go attempt(true)
		case <-ctx.Done():
			return shardResult{shard: sh.index, err: ctx.Err()}
		}
	}
}

// doRequest is one plain HTTP exchange: nil error means the shard answered
// (whatever the status); an error is a transport-level failure.
func doRequest(ctx context.Context, client *http.Client, method, url string,
	body []byte, header http.Header) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return 0, nil, err
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}
