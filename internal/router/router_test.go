package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/lda"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/serve"
)

// The fixture corpus/model pair is trained once and shared; every server
// built from it constructs its own index, so partitioning never leaks
// between tests.
var fixtureOnce = sync.OnceValues(func() (*corpus.Corpus, *lda.Model) {
	cat := corpus.DefaultCatalog()
	m := cat.Size()
	countries := []string{"US", "DE", "GB"}
	companies := make([]corpus.Company, 40)
	for i := range companies {
		companies[i] = corpus.Company{
			ID:        i,
			Name:      fmt.Sprintf("co-%02d", i),
			Country:   countries[i%len(countries)],
			SIC2:      70 + i%4,
			Employees: 50 + i*37%900,
			RevenueM:  float64(5 + i*11%200),
			Acquisitions: []corpus.Acquisition{
				{Category: i % m, First: corpus.Month(i % 12)},
				{Category: (i*5 + 2) % m, First: corpus.Month(i%12 + 1)},
				{Category: (i*9 + 4) % m, First: corpus.Month(i%12 + 2)},
			},
		}
		companies[i].SortAcquisitions()
	}
	c := corpus.New(cat, companies)
	model, err := lda.TrainContext(context.Background(),
		lda.Config{Topics: 2, V: c.M(), BurnIn: 10, Iterations: 20, SampleLag: 5},
		c.Sets(), nil, rng.New(3))
	if err != nil {
		panic(err)
	}
	return c, model
})

// newShardServer stands up one serve.Server over the fixture, partitioned to
// part/parts (parts <= 1 builds the unsharded baseline). wrap, when non-nil,
// wraps the handler (e.g. in chaos middleware) before listening.
func newShardServer(t *testing.T, part, parts int, wrap func(http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	c, model := fixtureOnce()
	reps := model.Representations(c.Sets(), rng.New(7))
	ix, err := core.NewIndex(c, reps, core.Cosine)
	if err != nil {
		t.Fatal(err)
	}
	if parts > 1 {
		if err := ix.SetPartition(part, parts); err != nil {
			t.Fatal(err)
		}
	}
	s, err := serve.New(serve.Loaded{Index: ix, Model: model}, nil, serve.Config{Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	if wrap != nil {
		h = wrap(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts
}

// newCluster builds parts partitioned shards (wrap applies per shard index)
// and a router over them. Probing and hedging are off unless cfg sets them.
func newCluster(t *testing.T, parts int, cfg Config, wrap func(i int, h http.Handler) http.Handler) (*Router, *httptest.Server) {
	t.Helper()
	for i := 0; i < parts; i++ {
		var w func(http.Handler) http.Handler
		if wrap != nil {
			i := i
			w = func(h http.Handler) http.Handler { return wrap(i, h) }
		}
		cfg.Shards = append(cfg.Shards, newShardServer(t, i, parts, w).URL)
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = -1
	}
	if cfg.HedgeQuantile == 0 {
		cfg.HedgeQuantile = -1
	}
	cfg.Quiet = true
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts
}

func get(t *testing.T, base, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func post(t *testing.T, base, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func counterValue(name string) uint64 { return obs.Default().Counter(name, "").Value() }
func gaugeValue(name string) float64  { return obs.Default().Gauge(name, "").Value() }

// TestShards1vs3ByteIdentical is the router's merge contract at the HTTP
// layer: a healthy 3-shard fan-out answers byte-identically to one unsharded
// ibserve on every query endpoint, with no partial marker anywhere.
func TestShards1vs3ByteIdentical(t *testing.T) {
	single := newShardServer(t, 0, 1, nil)
	_, routed := newCluster(t, 3, Config{}, nil)

	gets := []string{
		"/v1/similar/7?k=5",
		"/v1/similar/3?k=12&country=US",
		"/v1/similar/11?k=4&min_employees=100",
		"/v1/recommend/4?peers=8",
		"/v1/recommend/9",
		"/v1/recommend/2?peers=6&country=DE",
	}
	for _, path := range gets {
		wantResp, want := get(t, single.URL, path)
		gotResp, got := get(t, routed.URL, path)
		if wantResp.StatusCode != http.StatusOK || gotResp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d vs %d", path, wantResp.StatusCode, gotResp.StatusCode)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s: sharded answer differs from unsharded\nwant %s\ngot  %s", path, want, got)
		}
		if gotResp.Header.Get("X-Partial") != "" {
			t.Errorf("%s: healthy fan-out set X-Partial", path)
		}
	}
	posts := []struct{ path, body string }{
		{"/v1/whitespace", `{"clients":[1,2,5],"k":6}`},
		{"/v1/whitespace", `{"clients":[3],"k":9,"filter":{"country":"GB"}}`},
		{"/v1/infer", `{"owned":[0,3,10],"k":4}`},
	}
	for _, tc := range posts {
		_, want := post(t, single.URL, tc.path, tc.body)
		gotResp, got := post(t, routed.URL, tc.path, tc.body)
		if gotResp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", tc.path, gotResp.StatusCode, got)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s %s: sharded answer differs from unsharded\nwant %s\ngot  %s", tc.path, tc.body, want, got)
		}
	}

	// Client errors pass through with the shard's verdict.
	resp, _ := get(t, routed.URL, "/v1/similar/9999")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("/v1/similar/9999 through the router: status %d, want 400", resp.StatusCode)
	}
}

// TestPartialDegradation blackholes one shard and checks the router degrades
// instead of failing: 200, partial:true, the missing shard named, X-Partial
// set, and the surviving shards' results still merged in order.
func TestPartialDegradation(t *testing.T) {
	_, routed := newCluster(t, 3, Config{Timeout: 600 * time.Millisecond},
		func(i int, h http.Handler) http.Handler {
			if i == 1 {
				return chaos.Middleware(chaos.Config{Blackhole: true}, h)
			}
			return h
		})

	partial0 := counterValue("router_partial_responses_total")
	resp, body := get(t, routed.URL, "/v1/similar/7?k=5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("blackholed shard should degrade, not fail: status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Partial") != "true" {
		t.Error("partial response missing the X-Partial header")
	}
	var sim similarResponse
	if err := json.Unmarshal(body, &sim); err != nil {
		t.Fatal(err)
	}
	if !sim.Partial {
		t.Error("partial response body lacks partial:true")
	}
	if len(sim.MissingShards) != 1 || sim.MissingShards[0] != 1 {
		t.Errorf("missing_shards = %v, want [1]", sim.MissingShards)
	}
	if len(sim.Matches) == 0 {
		t.Error("partial response should still carry the surviving shards' matches")
	}
	for i := 1; i < len(sim.Matches); i++ {
		if matchBetterJSON(sim.Matches[i], sim.Matches[i-1]) {
			t.Errorf("partial matches out of order at %d", i)
		}
	}
	if got := counterValue("router_partial_responses_total"); got != partial0+1 {
		t.Errorf("router_partial_responses_total delta = %d, want 1", got-partial0)
	}

	// POST fan-out degrades the same way.
	resp, body = post(t, routed.URL, "/v1/whitespace", `{"clients":[1,2],"k":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial whitespace: status %d: %s", resp.StatusCode, body)
	}
	var ws whitespaceResponse
	if err := json.Unmarshal(body, &ws); err != nil {
		t.Fatal(err)
	}
	if !ws.Partial || len(ws.MissingShards) != 1 || ws.MissingShards[0] != 1 {
		t.Errorf("whitespace partial = %v missing %v, want true [1]", ws.Partial, ws.MissingShards)
	}

	// Two-phase recommend survives a missing shard too: peers merge from the
	// healthy shards and a healthy shard scores them.
	resp, body = get(t, routed.URL, "/v1/recommend/4?peers=8")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial recommend: status %d: %s", resp.StatusCode, body)
	}
	var rec recommendResponse
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if !rec.Partial || len(rec.MissingShards) != 1 || rec.MissingShards[0] != 1 {
		t.Errorf("recommend partial = %v missing %v, want true [1]", rec.Partial, rec.MissingShards)
	}
}

// TestAllShardsDown checks the other edge: when nothing answers, the router
// fails loudly with 502 instead of inventing an empty result.
func TestAllShardsDown(t *testing.T) {
	_, routed := newCluster(t, 2, Config{Timeout: 400 * time.Millisecond},
		func(i int, h http.Handler) http.Handler {
			return chaos.Middleware(chaos.Config{Blackhole: true}, h)
		})
	resp, body := get(t, routed.URL, "/v1/similar/7?k=5")
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("all shards blackholed: status %d, want 502: %s", resp.StatusCode, body)
	}
}

// TestHedgingCutsStragglerTail injects a 250ms delay into 10% of one shard's
// requests and checks hedged retries rescue the stragglers: the hedge fires
// at ~HedgeMin and a fresh attempt (90% likely fast) wins. A hedge can
// itself draw the injected delay, so the assertion is statistical — strictly
// fewer slow answers than injected delays — rather than on the single worst
// request, which would flake on a double draw.
func TestHedgingCutsStragglerTail(t *testing.T) {
	const injected = 250 * time.Millisecond
	_, routed := newCluster(t, 3, Config{
		Timeout:       5 * time.Second,
		HedgeQuantile: 0.75,
		HedgeMin:      5 * time.Millisecond,
	}, func(i int, h http.Handler) http.Handler {
		if i == 2 {
			return chaos.Middleware(chaos.Config{Seed: 9, Latency: injected, LatencyProb: 0.1}, h)
		}
		return h
	})

	hedges0 := counterValue("router_shard2_hedges_total")
	wins0 := counterValue("router_shard2_hedge_wins_total")
	delays0 := counterValue("chaos_injected_delays_total")
	var slow int
	for i := 0; i < 80; i++ {
		start := time.Now()
		resp, body := get(t, routed.URL, fmt.Sprintf("/v1/similar/%d?k=5", i%40))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, body)
		}
		if time.Since(start) >= injected {
			slow++
		}
	}
	if hedges := counterValue("router_shard2_hedges_total") - hedges0; hedges == 0 {
		t.Error("no hedges fired against the straggling shard")
	}
	if wins := counterValue("router_shard2_hedge_wins_total") - wins0; wins == 0 {
		t.Error("no hedge ever beat the straggler")
	}
	// Without hedging every injected delay would surface as a >=250ms
	// answer; with it, only the (rare) requests whose hedge also drew the
	// delay stay slow. Require hedging to rescue more than half.
	delays := int(counterValue("chaos_injected_delays_total") - delays0)
	if delays == 0 {
		t.Fatal("chaos injected no delays — the straggler shard never straggled")
	}
	if 2*slow >= delays {
		t.Errorf("%d of %d injected straggles still answered >= %s — hedging rescued too few",
			slow, delays, injected)
	}
}

// TestHedgeLoserCancelled pins first-response-wins: once the hedge answers,
// the original in-flight request's context is cancelled rather than left
// running to completion.
func TestHedgeLoserCancelled(t *testing.T) {
	cancelled := make(chan struct{})
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			<-r.Context().Done() // original: hang until the router cancels us
			close(cancelled)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte("{\"ok\":true}\n"))
	}))
	defer ts.Close()

	sh := newShard(90, ts.URL)
	sh.br = newBreaker(5, time.Second, time.Second, obs.Default().Gauge("router_shard90_breaker_state", ""))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res := sh.call(ctx, &http.Client{}, http.MethodGet, ts.URL+"/x", nil, nil, 10*time.Millisecond)
	if res.err != nil || res.status != http.StatusOK {
		t.Fatalf("hedged call failed: status %d err %v", res.status, res.err)
	}
	select {
	case <-cancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("losing attempt was never cancelled after the hedge won")
	}
	if got := counterValue("router_shard90_hedge_wins_total"); got == 0 {
		t.Error("hedge win not counted")
	}
}

// TestBreakerUnit walks the breaker state machine: consecutive failures trip
// it, cooldown gates a single probe, a failed probe doubles the cooldown,
// and a successful probe closes it.
func TestBreakerUnit(t *testing.T) {
	g := obs.Default().Gauge("router_shard91_breaker_state", "")
	b := newBreaker(3, 100*time.Millisecond, 400*time.Millisecond, g)
	now := time.Now()

	for i := 0; i < 2; i++ {
		b.Failure(now, false)
	}
	if b.State() != breakerClosed {
		t.Fatal("breaker tripped before the threshold")
	}
	b.Failure(now, false)
	if b.State() != breakerOpen || g.Value() != breakerOpen {
		t.Fatalf("3 consecutive failures: state %d gauge %v, want open", b.State(), g.Value())
	}
	if ok, _ := b.Allow(now.Add(50 * time.Millisecond)); ok {
		t.Fatal("open breaker admitted a request before cooldown")
	}
	ok, probe := b.Allow(now.Add(150 * time.Millisecond))
	if !ok || !probe {
		t.Fatalf("cooldown elapsed: Allow = %v, %v, want probe", ok, probe)
	}
	if g.Value() != breakerHalfOpen {
		t.Fatalf("gauge %v during probe, want half-open", g.Value())
	}
	if ok, _ := b.Allow(now.Add(151 * time.Millisecond)); ok {
		t.Fatal("half-open breaker admitted a second request alongside the probe")
	}
	// Failed probe: re-open with doubled cooldown (200ms).
	t2 := now.Add(160 * time.Millisecond)
	b.Failure(t2, true)
	if b.State() != breakerOpen {
		t.Fatal("failed probe did not re-open the breaker")
	}
	if ok, _ := b.Allow(t2.Add(150 * time.Millisecond)); ok {
		t.Fatal("re-opened breaker ignored the doubled cooldown")
	}
	ok, probe = b.Allow(t2.Add(250 * time.Millisecond))
	if !ok || !probe {
		t.Fatal("doubled cooldown elapsed but no probe admitted")
	}
	b.Success(true)
	if b.State() != breakerClosed || g.Value() != breakerClosed {
		t.Fatal("successful probe did not close the breaker")
	}
	if ok, probe := b.Allow(t2.Add(300 * time.Millisecond)); !ok || probe {
		t.Fatal("closed breaker should admit plain requests")
	}
}

// TestBreakerIsolatesFailingShard drives the breaker through the router:
// a 5xx-spewing shard trips its breaker after the threshold, requests stop
// reaching it (degraded partial answers continue), and once healed, the
// half-open probe closes the breaker and full answers resume.
func TestBreakerIsolatesFailingShard(t *testing.T) {
	var unhealthy atomic.Bool
	unhealthy.Store(true)
	var shardHits atomic.Int32
	_, routed := newCluster(t, 3, Config{
		Timeout:          2 * time.Second,
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
	}, func(i int, h http.Handler) http.Handler {
		if i != 1 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			shardHits.Add(1)
			if unhealthy.Load() {
				http.Error(w, "boom", http.StatusInternalServerError)
				return
			}
			h.ServeHTTP(w, r)
		})
	})

	// Two failures trip the breaker (threshold 2); both answers degrade.
	for i := 0; i < 2; i++ {
		resp, body := get(t, routed.URL, "/v1/similar/7?k=5")
		if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Partial") != "true" {
			t.Fatalf("request %d against the failing shard: status %d partial %q: %s",
				i, resp.StatusCode, resp.Header.Get("X-Partial"), body)
		}
	}
	if got := gaugeValue("router_shard1_breaker_state"); got != breakerOpen {
		t.Fatalf("breaker state gauge = %v after threshold failures, want open (2)", got)
	}
	// While open, fan-outs skip the shard entirely.
	before := shardHits.Load()
	resp, _ := get(t, routed.URL, "/v1/similar/8?k=5")
	if resp.Header.Get("X-Partial") != "true" {
		t.Error("open breaker should still yield a partial answer")
	}
	if shardHits.Load() != before {
		t.Error("open breaker let a request through before cooldown")
	}

	// Heal the shard; after cooldown one probe goes through and closes it.
	unhealthy.Store(false)
	time.Sleep(60 * time.Millisecond)
	resp, body := get(t, routed.URL, "/v1/similar/9?k=5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe request failed: %s", body)
	}
	if got := gaugeValue("router_shard1_breaker_state"); got != breakerClosed {
		t.Fatalf("breaker state gauge = %v after successful probe, want closed (0)", got)
	}
	resp, _ = get(t, routed.URL, "/v1/similar/10?k=5")
	if resp.Header.Get("X-Partial") != "" {
		t.Error("healed cluster still answering partially")
	}
}

// TestReadyzProbeSkipsDrainingShard checks the readiness loop: a shard that
// flips /readyz to 503 is skipped like a tripped breaker, without burning
// failures, and rejoins once ready again.
func TestReadyzProbeSkipsDrainingShard(t *testing.T) {
	var draining atomic.Bool
	rt, routed := newCluster(t, 3, Config{
		Timeout:       2 * time.Second,
		ProbeInterval: 20 * time.Millisecond,
	}, func(i int, h http.Handler) http.Handler {
		if i != 2 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/readyz" && draining.Load() {
				http.Error(w, `{"status":"draining"}`, http.StatusServiceUnavailable)
				return
			}
			h.ServeHTTP(w, r)
		})
	})

	draining.Store(true)
	deadline := time.Now().Add(2 * time.Second)
	for rt.shards[2].ready.Load() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if rt.shards[2].ready.Load() {
		t.Fatal("probe loop never noticed the draining shard")
	}
	resp, body := get(t, routed.URL, "/v1/similar/7?k=5")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Partial") != "true" {
		t.Fatalf("draining shard: status %d partial %q: %s", resp.StatusCode, resp.Header.Get("X-Partial"), body)
	}
	if got := gaugeValue("router_shard2_breaker_state"); got != breakerClosed {
		t.Errorf("skipping a draining shard should not trip its breaker (gauge %v)", got)
	}

	draining.Store(false)
	deadline = time.Now().Add(2 * time.Second)
	for !rt.shards[2].ready.Load() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	resp, _ = get(t, routed.URL, "/v1/similar/8?k=5")
	if resp.Header.Get("X-Partial") != "" {
		t.Error("re-readied shard still being skipped")
	}
}

// TestRouterHealthAndReadyz covers the router's own health surface.
func TestRouterHealthAndReadyz(t *testing.T) {
	rt, routed := newCluster(t, 3, Config{}, nil)
	resp, body := get(t, routed.URL, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
	var h healthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || len(h.Shards) != 3 {
		t.Fatalf("healthz = %+v, want ok with 3 shards", h)
	}
	for i, sh := range h.Shards {
		if sh.Index != i || !sh.Ready || sh.Breaker != "closed" {
			t.Errorf("shard %d health = %+v", i, sh)
		}
	}
	resp, _ = get(t, routed.URL, "/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz status %d", resp.StatusCode)
	}
	rt.SetReady(false)
	resp, body = get(t, routed.URL, "/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("draining /readyz = %d %q", resp.StatusCode, body)
	}
}

// TestMergeTruncation checks the merge respects the echoed k: shards each
// return up to k matches, and the merged list is cut back to k, not 3k.
func TestMergeTruncation(t *testing.T) {
	_, routed := newCluster(t, 3, Config{}, nil)
	_, body := get(t, routed.URL, "/v1/similar/5?k=7")
	var sim similarResponse
	if err := json.Unmarshal(body, &sim); err != nil {
		t.Fatal(err)
	}
	if sim.K != 7 || len(sim.Matches) != 7 {
		t.Fatalf("k=7 merge returned k=%d with %d matches", sim.K, len(sim.Matches))
	}
}

// TestBodyCapReturns413 pins the request-body cap: an oversized POST body is
// rejected with 413 (counted as an endpoint error) before any shard fan-out,
// while an in-bounds body on the same router still answers.
func TestBodyCapReturns413(t *testing.T) {
	_, routed := newCluster(t, 2, Config{MaxBodyBytes: 256}, nil)

	before := counterValue("router_whitespace_errors_total")
	big := `{"clients":[1],"pad":"` + strings.Repeat("x", 1024) + `"}`
	resp, body := post(t, routed.URL, "/v1/whitespace", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized whitespace body: status %d %q, want 413", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "256") {
		t.Errorf("413 error body %q does not name the cap", body)
	}
	if got := counterValue("router_whitespace_errors_total") - before; got != 1 {
		t.Errorf("router_whitespace_errors_total rose by %d, want 1", got)
	}

	beforeInfer := counterValue("router_infer_errors_total")
	resp, _ = post(t, routed.URL, "/v1/infer", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized infer body: status %d, want 413", resp.StatusCode)
	}
	if got := counterValue("router_infer_errors_total") - beforeInfer; got != 1 {
		t.Errorf("router_infer_errors_total rose by %d, want 1", got)
	}

	// An in-bounds body on the same router still fans out and answers.
	resp, body = post(t, routed.URL, "/v1/whitespace", `{"clients":[1,5],"k":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-bounds whitespace body: status %d %q", resp.StatusCode, body)
	}
}
