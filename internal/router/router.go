// Package router is the scatter-gather front end over a set of ibserve
// shards. Each shard runs `ibserve -shard i/n` and owns one hash partition
// of the candidate scans (the representations are replicated, so any shard
// can also score recommendation peers); the router fans every query out to
// all shards, carves each shard's deadline out of the request budget (with a
// reserve kept back for the merge), hedges stragglers after a quantile
// delay, merges the partial top-k lists under the exact core total order —
// so a fully healthy fan-out is byte-identical to an unsharded server — and
// degrades to a "partial": true response naming the missing shards when some
// of them are down instead of failing the whole query.
//
// Per-shard circuit breakers (consecutive-failure trip, half-open probe,
// exponential cooldown) stop a dead shard from costing one timeout per
// request, and a background /readyz probe loop treats a draining shard
// exactly like one with a tripped breaker. Router metrics (fan-out latency,
// hedges fired and won, breaker state, partial responses) report into the
// shared obs registry next to the serve metrics, under the router_ prefix.
package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/trace"
)

var partialTotal = obs.Default().Counter("router_partial_responses_total",
	"queries answered with partial results because at least one shard was missing")

type endpointMetrics struct {
	requests *obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
}

func newEndpointMetrics(name string) endpointMetrics {
	return endpointMetrics{
		requests: obs.Default().Counter("router_"+name+"_requests_total",
			name+" queries answered by the router (including partial answers)"),
		errors: obs.Default().Counter("router_"+name+"_errors_total",
			name+" queries the router failed (bad arguments, every shard missing, or deadline)"),
		latency: obs.Default().Histogram("router_"+name+"_latency_seconds",
			"end-to-end latency of answered "+name+" queries", obs.DefBuckets),
	}
}

// Config parameterizes a Router. Zero values select the documented defaults.
type Config struct {
	// Shards are the base URLs of the ibserve shards, in partition order:
	// Shards[i] must run with -shard i/len(Shards).
	Shards []string
	// Timeout is the whole-request budget; a timeout_ms query parameter can
	// shrink it per request but never extend it. Default 5s.
	Timeout time.Duration
	// MergeReserve is the fraction of the remaining budget kept back from
	// the shard deadline for merging and marshalling. Default 0.1.
	MergeReserve float64
	// HedgeQuantile places the hedge delay at this quantile of the shard's
	// recent answered latencies; a request still unanswered after the delay
	// gets a second identical attempt, first answer wins. Default 0.9;
	// negative disables hedging.
	HedgeQuantile float64
	// HedgeMin floors the hedge delay, so an idle window (or a very fast
	// shard) cannot make the router hedge every request. Default 20ms.
	HedgeMin time.Duration
	// BreakerThreshold is the consecutive shard failures that trip its
	// breaker open. Default 5.
	BreakerThreshold int
	// BreakerCooldown is the first open interval; each failed half-open
	// probe doubles it up to BreakerMaxCooldown. Defaults 500ms / 10s.
	BreakerCooldown    time.Duration
	BreakerMaxCooldown time.Duration
	// ProbeInterval is the cadence of the background /readyz shard probe;
	// a not-ready shard is skipped like one with an open breaker. Default
	// 1s; negative disables probing.
	ProbeInterval time.Duration
	// DefaultK mirrors the shards' default result count; DefaultPeers the
	// recommendation peer count. They must match the shard configuration for
	// sharded answers to be byte-identical. Defaults 10 / 25.
	DefaultK     int
	DefaultPeers int
	// Logger receives access and degradation lines. Default slog.Default().
	Logger *slog.Logger
	// Tracer records request-scoped spans; the router joins an incoming W3C
	// traceparent and propagates one to every shard call.
	Tracer *trace.Tracer
	// SLO, when non-nil, tracks rolling router SLOs under the router_ metric
	// prefix, with /debug/slo served from Routes().
	SLO *serve.SLOConfig
	// MaxBodyBytes caps request bodies on the POST endpoints; an oversized
	// body gets 413. Default 1 MiB (matching ibserve); negative disables the
	// cap.
	MaxBodyBytes int64
	// Quiet suppresses access-log lines for successful requests.
	Quiet bool
}

func (c Config) withDefaults() Config {
	if c.Timeout == 0 {
		c.Timeout = 5 * time.Second
	}
	if c.MergeReserve == 0 {
		c.MergeReserve = 0.1
	}
	if c.HedgeQuantile == 0 {
		c.HedgeQuantile = 0.9
	}
	if c.HedgeMin == 0 {
		c.HedgeMin = 20 * time.Millisecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 500 * time.Millisecond
	}
	if c.BreakerMaxCooldown == 0 {
		c.BreakerMaxCooldown = 10 * time.Second
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = time.Second
	}
	if c.DefaultK == 0 {
		c.DefaultK = 10
	}
	if c.DefaultPeers == 0 {
		c.DefaultPeers = 25
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Tracer == nil {
		c.Tracer = trace.Default()
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxBodyBytes < 0 {
		c.MaxBodyBytes = 0
	}
	return c
}

// Router fans queries out to the shards and merges their answers.
type Router struct {
	cfg     Config
	shards  []*shard
	client  *http.Client
	mux     *http.ServeMux
	slo     *serve.SLOTracker
	ready   atomic.Bool
	started time.Time

	probeCancel context.CancelFunc
	probeDone   chan struct{}

	mSimilar    endpointMetrics
	mRecommend  endpointMetrics
	mWhitespace endpointMetrics
	mInfer      endpointMetrics
}

// New builds a Router over the configured shard URLs.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("router: no shards configured")
	}
	cfg = cfg.withDefaults()
	rt := &Router{
		cfg:         cfg,
		client:      &http.Client{},
		started:     time.Now(),
		mSimilar:    newEndpointMetrics("similar"),
		mRecommend:  newEndpointMetrics("recommend"),
		mWhitespace: newEndpointMetrics("whitespace"),
		mInfer:      newEndpointMetrics("infer"),
	}
	for i, base := range cfg.Shards {
		base = strings.TrimRight(base, "/")
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		if _, err := url.Parse(base); err != nil {
			return nil, fmt.Errorf("router: bad shard URL %q: %w", cfg.Shards[i], err)
		}
		sh := newShard(i, base)
		sh.br = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.BreakerMaxCooldown,
			obs.Default().Gauge(fmt.Sprintf("router_shard%d_breaker_state", i),
				fmt.Sprintf("breaker state of shard %d (0 closed, 1 half-open, 2 open)", i)))
		rt.shards = append(rt.shards, sh)
	}
	if cfg.SLO != nil {
		rt.slo = serve.NewSLOTracker(*cfg.SLO, "router", []string{"similar", "recommend", "whitespace", "infer"})
	}
	rt.ready.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", rt.handleHealth)
	mux.HandleFunc("GET /readyz", rt.handleReady)
	mux.HandleFunc("GET /v1/similar/{id}", rt.shell("similar", &rt.mSimilar, rt.handleSimilar))
	mux.HandleFunc("GET /v1/recommend/{id}", rt.shell("recommend", &rt.mRecommend, rt.handleRecommend))
	mux.HandleFunc("POST /v1/whitespace", rt.shell("whitespace", &rt.mWhitespace, rt.handleWhitespace))
	mux.HandleFunc("POST /v1/infer", rt.shell("infer", &rt.mInfer, rt.handleInfer))
	rt.mux = mux
	if cfg.ProbeInterval > 0 {
		ctx, cancel := context.WithCancel(context.Background())
		rt.probeCancel = cancel
		rt.probeDone = make(chan struct{})
		go rt.probeLoop(ctx)
	}
	return rt, nil
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Routes returns the router's debug routes for the -debug-addr mux:
// /debug/slo when SLO tracking is on, and the always-mounted fleet recall
// view GET /debug/recall, which scatters to every shard's /debug/recall and
// aggregates a sample-weighted fleet observed recall (shards without shadow
// sampling report "sampling": false rather than erroring the view).
func (rt *Router) Routes() []obs.Route {
	return append(rt.slo.Routes(),
		obs.Route{Pattern: "GET /debug/recall", Handler: http.HandlerFunc(rt.handleFleetRecall)})
}

// SetReady flips /readyz, mirroring the shard-side drain protocol.
func (rt *Router) SetReady(ok bool) { rt.ready.Store(ok) }

// Close stops the probe loop and the SLO ticker.
func (rt *Router) Close() {
	if rt.probeCancel != nil {
		rt.probeCancel()
		<-rt.probeDone
	}
	rt.slo.Close()
}

// probeLoop polls every shard's /readyz so draining or dead shards are
// skipped before their breaker has to learn the hard way.
func (rt *Router) probeLoop(ctx context.Context) {
	defer close(rt.probeDone)
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			var wg sync.WaitGroup
			for _, sh := range rt.shards {
				wg.Add(1)
				go func(sh *shard) {
					defer wg.Done()
					pctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeInterval)
					defer cancel()
					status, _, err := doRequest(pctx, rt.client, http.MethodGet, sh.base+"/readyz", nil, nil)
					sh.ready.Store(err == nil && status == http.StatusOK)
				}(sh)
			}
			wg.Wait()
		}
	}
}

// JSON response mirrors. These repeat the serve package's field order
// exactly and append the degradation fields at the end with omitempty, so a
// fully healthy fan-out marshals byte-identical to an unsharded ibserve.

type matchJSON struct {
	CompanyID  int     `json:"company_id"`
	Name       string  `json:"name"`
	Similarity float64 `json:"similarity"`
}

type similarResponse struct {
	CompanyID     int         `json:"company_id"`
	Name          string      `json:"name"`
	K             int         `json:"k"`
	Matches       []matchJSON `json:"matches"`
	Partial       bool        `json:"partial,omitempty"`
	MissingShards []int       `json:"missing_shards,omitempty"`
}

type recommendationJSON struct {
	Category int     `json:"category"`
	Name     string  `json:"name"`
	Strength float64 `json:"strength"`
	Owners   int     `json:"owners"`
}

type recommendResponse struct {
	CompanyID       int                  `json:"company_id"`
	Name            string               `json:"name"`
	Peers           int                  `json:"peers"`
	Recommendations []recommendationJSON `json:"recommendations"`
	Partial         bool                 `json:"partial,omitempty"`
	MissingShards   []int                `json:"missing_shards,omitempty"`
}

type prospectJSON struct {
	CompanyID     int     `json:"company_id"`
	Name          string  `json:"name"`
	NearestClient int     `json:"nearest_client"`
	Similarity    float64 `json:"similarity"`
}

type whitespaceResponse struct {
	K             int            `json:"k"`
	Prospects     []prospectJSON `json:"prospects"`
	Partial       bool           `json:"partial,omitempty"`
	MissingShards []int          `json:"missing_shards,omitempty"`
}

type inferResponse struct {
	Theta         []float64   `json:"theta"`
	K             int         `json:"k"`
	Matches       []matchJSON `json:"matches"`
	Partial       bool        `json:"partial,omitempty"`
	MissingShards []int       `json:"missing_shards,omitempty"`
}

type internalMatch struct {
	CompanyID  int     `json:"company_id"`
	Similarity float64 `json:"similarity"`
}

type internalRecommendRequest struct {
	CompanyID int             `json:"company_id"`
	Peers     int             `json:"peers"`
	Matches   []internalMatch `json:"matches"`
}

type shardHealthJSON struct {
	Index   int    `json:"index"`
	Addr    string `json:"addr"`
	Ready   bool   `json:"ready"`
	Breaker string `json:"breaker"`
}

type healthResponse struct {
	Status    string            `json:"status"`
	Shards    []shardHealthJSON `json:"shards"`
	UptimeSec float64           `json:"uptime_seconds"`
	Tracing   bool              `json:"tracing"`
	SLO       *sloHealthJSON    `json:"slo,omitempty"`
}

type sloHealthJSON struct {
	OK      bool     `json:"ok"`
	Burning []string `json:"burning,omitempty"`
}

var breakerNames = [...]string{"closed", "half-open", "open"}

func (rt *Router) handleHealth(w http.ResponseWriter, _ *http.Request) {
	resp := healthResponse{
		Status:    "ok",
		UptimeSec: time.Since(rt.started).Seconds(),
		Tracing:   rt.cfg.Tracer.Enabled(),
	}
	for _, sh := range rt.shards {
		resp.Shards = append(resp.Shards, shardHealthJSON{
			Index:   sh.index,
			Addr:    sh.base,
			Ready:   sh.ready.Load(),
			Breaker: breakerNames[sh.br.State()],
		})
	}
	if rt.slo != nil {
		st := rt.slo.Status()
		resp.SLO = &sloHealthJSON{OK: st.OK, Burning: st.Burning}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

func (rt *Router) handleReady(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if !rt.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("{\"status\":\"draining\"}\n"))
		return
	}
	_, _ = w.Write([]byte("{\"status\":\"ready\"}\n"))
}

// routerResponse is a shell handler's outcome: a fully rendered body (with
// trailing newline), its status, and the degradation markers.
type routerResponse struct {
	status  int // 0 means 200
	body    []byte
	partial bool
	missing []int
}

type apiError struct {
	status int
	err    error
}

func (e *apiError) Error() string { return e.err.Error() }
func (e *apiError) Unwrap() error { return e.err }

func badRequest(format string, args ...any) error {
	return &apiError{status: http.StatusBadRequest, err: fmt.Errorf(format, args...)}
}

// bodyError classifies a request-body read failure: a MaxBytesReader trip is
// the client sending too much (413, naming the cap), anything else a plain
// bad request.
func bodyError(err error) error {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return &apiError{status: http.StatusRequestEntityTooLarge,
			err: fmt.Errorf("router: request body exceeds %d bytes", mbe.Limit)}
	}
	return badRequest("router: reading request body: %v", err)
}

func statusFor(err error) int {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.status
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return http.StatusGatewayTimeout
	}
	return http.StatusBadRequest
}

type shellHandler func(ctx context.Context, r *http.Request) (routerResponse, error)

// shell wraps a fan-out handler with the router's request pipeline: deadline
// budget, trace join/propagation, disjoint served/error accounting, partial
// marking (X-Partial header + counter) and the access log line.
func (rt *Router) shell(name string, m *endpointMetrics, h shellHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx := r.Context()
		var sp *trace.Span
		if tp, ok := trace.ParseTraceparent(r.Header.Get("traceparent")); ok {
			ctx, sp = rt.cfg.Tracer.StartRemote(ctx, tp, "router."+name)
		} else {
			ctx, sp = rt.cfg.Tracer.Start(ctx, "router."+name)
		}
		if sp.Active() {
			sp.Attr("method", r.Method)
			sp.Attr("path", r.URL.Path)
			w.Header().Set("traceparent", trace.FormatTraceparent(sp.TraceID(), sp.SpanID()))
		}
		status := http.StatusOK
		defer func() {
			sp.AttrInt("status", int64(status))
			sp.End()
			rt.slo.Record(name, status, time.Since(start))
			rt.logRequest(r, name, status, time.Since(start), sp)
		}()

		ctx, cancel := context.WithTimeout(ctx, rt.requestTimeout(r))
		defer cancel()

		if r.Body != nil && rt.cfg.MaxBodyBytes > 0 {
			r.Body = http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes)
		}
		resp, err := h(ctx, r)
		if err != nil {
			m.errors.Inc()
			status = statusFor(err)
			sp.Error(err)
			rt.writeError(w, r, status, err)
			return
		}
		if resp.status == 0 {
			resp.status = http.StatusOK
		}
		status = resp.status
		if status >= 400 {
			// A shard's client-error verdict (bad id, bad filter) passed
			// through verbatim; it is the client's error, the router's too.
			m.errors.Inc()
		} else {
			m.requests.Inc()
			// A traced request leaves its trace ID as a bucket exemplar, the
			// same contract as the serve-side latency series: a p99 bucket on
			// the dashboard links straight to a span tree in /debug/traces.
			if sp.Active() {
				m.latency.ObserveExemplar(time.Since(start).Seconds(), sp.TraceID().String())
			} else {
				m.latency.Observe(time.Since(start).Seconds())
			}
		}
		if resp.partial {
			partialTotal.Inc()
			w.Header().Set("X-Partial", "true")
			sp.Attr("partial", fmt.Sprintf("%v", resp.missing))
		}
		w.Header().Set("Content-Type", "application/json")
		if status != http.StatusOK {
			w.WriteHeader(status)
		}
		_, _ = w.Write(resp.body)
	}
}

func (rt *Router) requestTimeout(r *http.Request) time.Duration {
	d := rt.cfg.Timeout
	if v := r.URL.Query().Get("timeout_ms"); v != "" {
		if ms, err := strconv.ParseFloat(v, 64); err == nil && ms > 0 {
			if t := time.Duration(ms * float64(time.Millisecond)); t < d {
				d = t
			}
		}
	}
	return d
}

func (rt *Router) logRequest(r *http.Request, name string, status int, dur time.Duration, sp *trace.Span) {
	attrs := []any{
		"endpoint", name,
		"method", r.Method,
		"path", r.URL.Path,
		"status", status,
		"dur_ms", float64(dur.Microseconds()) / 1e3,
	}
	if sp.Active() {
		attrs = append(attrs, "trace", sp.TraceID().String())
	}
	switch {
	case status >= 400:
		rt.cfg.Logger.Warn("request", attrs...)
	case !rt.cfg.Quiet:
		rt.cfg.Logger.Info("request", attrs...)
	}
	if slow := rt.cfg.Tracer.SlowThreshold(); slow > 0 && dur >= slow {
		rt.cfg.Logger.Warn("slow query", attrs...)
	}
}

func (rt *Router) writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	rt.cfg.Logger.Debug("request failed", "path", r.URL.Path, "status", status, "err", err.Error())
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// shardContext carves the shard deadline out of the request budget, keeping
// MergeReserve of the remaining time back for merging and marshalling.
func (rt *Router) shardContext(ctx context.Context) (context.Context, context.CancelFunc) {
	dl, ok := ctx.Deadline()
	if !ok {
		return context.WithCancel(ctx)
	}
	reserve := time.Duration(float64(time.Until(dl)) * rt.cfg.MergeReserve)
	return context.WithDeadline(ctx, dl.Add(-reserve))
}

// hedgeDelay places the hedge for one shard call: the configured quantile of
// the shard's recent answered latencies, floored at HedgeMin and capped at
// half the remaining budget (a hedge fired later than that cannot finish).
func (rt *Router) hedgeDelay(ctx context.Context, sh *shard) time.Duration {
	if rt.cfg.HedgeQuantile < 0 {
		return 0
	}
	d := sh.lat.Quantile(rt.cfg.HedgeQuantile)
	if d < rt.cfg.HedgeMin {
		d = rt.cfg.HedgeMin
	}
	if dl, ok := ctx.Deadline(); ok {
		if half := time.Until(dl) / 2; d > half {
			d = half
		}
	}
	return d
}

// traceHeader builds the headers propagated to every shard call: the W3C
// traceparent of the active span, so shard-side span trees join the router's
// distributed trace.
func traceHeader(sp *trace.Span, contentType string) http.Header {
	h := http.Header{}
	if contentType != "" {
		h.Set("Content-Type", contentType)
	}
	if sp.Active() {
		h.Set("traceparent", trace.FormatTraceparent(sp.TraceID(), sp.SpanID()))
	}
	return h
}

// fanout sends one identical request to every admissible shard and gathers
// the results in shard order. Skipped shards (open breaker, not ready) are
// marked without a network call; answered shards feed their breaker.
func (rt *Router) fanout(ctx context.Context, method, pathAndQuery string, body []byte, header http.Header) []shardResult {
	sctx, cancel := rt.shardContext(ctx)
	defer cancel()
	results := make([]shardResult, len(rt.shards))
	var wg sync.WaitGroup
	now := time.Now()
	for i, sh := range rt.shards {
		if !sh.ready.Load() {
			results[i] = shardResult{shard: i, skipped: true}
			continue
		}
		ok, probe := sh.br.Allow(now)
		if !ok {
			results[i] = shardResult{shard: i, skipped: true}
			continue
		}
		wg.Add(1)
		go func(i int, sh *shard, probe bool) {
			defer wg.Done()
			res := sh.call(sctx, rt.client, method, sh.base+pathAndQuery, body, header, rt.hedgeDelay(sctx, sh))
			if res.err != nil || res.status >= 500 {
				sh.mFailures.Inc()
				sh.br.Failure(time.Now(), probe)
			} else {
				sh.br.Success(probe)
			}
			results[i] = res
		}(i, sh, probe)
	}
	wg.Wait()
	return results
}

// classify splits fan-out results: shards that answered 2xx, the first
// client-error (4xx) verdict if any, and the sorted missing-shard list.
func classify(results []shardResult) (oks []shardResult, clientErr *shardResult, missing []int) {
	for i := range results {
		r := &results[i]
		switch {
		case r.failed():
			missing = append(missing, r.shard)
		case r.status >= 400:
			if clientErr == nil {
				clientErr = r
			}
		default:
			oks = append(oks, *r)
		}
	}
	sort.Ints(missing)
	return oks, clientErr, missing
}

// scatter runs the shared fan-out prologue for the single-phase endpoints:
// replay the request on every shard, pass a client error through verbatim,
// fail 502 when no shard answered, otherwise hand the 2xx bodies and the
// missing-shard list to merge (which stamps the degradation fields on the
// merged value itself so they marshal inside the response body).
func (rt *Router) scatter(ctx context.Context, r *http.Request, sp *trace.Span, body []byte,
	merge func(oks []shardResult, missing []int) (any, error)) (routerResponse, error) {
	contentType := ""
	if body != nil {
		contentType = "application/json"
	}
	results := rt.fanout(ctx, r.Method, r.URL.RequestURI(), body, traceHeader(sp, contentType))
	oks, clientErr, missing := classify(results)
	if clientErr != nil {
		return routerResponse{status: clientErr.status, body: clientErr.body}, nil
	}
	if len(oks) == 0 {
		return routerResponse{}, &apiError{status: http.StatusBadGateway,
			err: fmt.Errorf("router: all %d shards unavailable (missing %v)", len(rt.shards), missing)}
	}
	if len(missing) > 0 {
		rt.cfg.Logger.Warn("partial fan-out", "path", r.URL.Path, "missing", missing)
	}
	value, err := merge(oks, missing)
	if err != nil {
		return routerResponse{}, err
	}
	out, err := json.Marshal(value)
	if err != nil {
		return routerResponse{}, &apiError{status: http.StatusInternalServerError, err: err}
	}
	return routerResponse{body: append(out, '\n'), partial: len(missing) > 0, missing: missing}, nil
}

func matchBetterJSON(a, b matchJSON) bool {
	return core.MatchBetter(
		core.Match{CompanyID: a.CompanyID, Similarity: a.Similarity},
		core.Match{CompanyID: b.CompanyID, Similarity: b.Similarity})
}

func prospectBetterJSON(a, b prospectJSON) bool {
	return core.ProspectBetter(
		core.WhitespaceProspect{CompanyID: a.CompanyID, NearestClient: a.NearestClient, Similarity: a.Similarity},
		core.WhitespaceProspect{CompanyID: b.CompanyID, NearestClient: b.NearestClient, Similarity: b.Similarity})
}

func decodeShard[T any](r shardResult) (T, error) {
	var v T
	if err := json.Unmarshal(r.body, &v); err != nil {
		return v, &apiError{status: http.StatusBadGateway,
			err: fmt.Errorf("router: shard %d sent an unparseable body: %w", r.shard, err)}
	}
	return v, nil
}

func (rt *Router) handleSimilar(ctx context.Context, r *http.Request) (routerResponse, error) {
	sp := trace.FromContext(ctx)
	return rt.scatter(ctx, r, sp, nil, func(oks []shardResult, missing []int) (any, error) {
		perShard := make([][]matchJSON, len(oks))
		var merged similarResponse
		for i, res := range oks {
			v, err := decodeShard[similarResponse](res)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				merged = v
			}
			if v.K > merged.K {
				merged.K = v.K
			}
			perShard[i] = v.Matches
		}
		merged.Matches = core.MergeTopK(perShard, merged.K, matchBetterJSON)
		if merged.Matches == nil {
			merged.Matches = []matchJSON{}
		}
		merged.Partial = len(missing) > 0
		merged.MissingShards = missing
		return merged, nil
	})
}

func (rt *Router) handleWhitespace(ctx context.Context, r *http.Request) (routerResponse, error) {
	sp := trace.FromContext(ctx)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return routerResponse{}, bodyError(err)
	}
	return rt.scatter(ctx, r, sp, body, func(oks []shardResult, missing []int) (any, error) {
		perShard := make([][]prospectJSON, len(oks))
		var merged whitespaceResponse
		for i, res := range oks {
			v, err := decodeShard[whitespaceResponse](res)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				merged = v
			}
			if v.K > merged.K {
				merged.K = v.K
			}
			perShard[i] = v.Prospects
		}
		merged.Prospects = core.MergeTopK(perShard, merged.K, prospectBetterJSON)
		if merged.Prospects == nil {
			merged.Prospects = []prospectJSON{}
		}
		merged.Partial = len(missing) > 0
		merged.MissingShards = missing
		return merged, nil
	})
}

func (rt *Router) handleInfer(ctx context.Context, r *http.Request) (routerResponse, error) {
	sp := trace.FromContext(ctx)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return routerResponse{}, bodyError(err)
	}
	return rt.scatter(ctx, r, sp, body, func(oks []shardResult, missing []int) (any, error) {
		perShard := make([][]matchJSON, len(oks))
		var merged inferResponse
		for i, res := range oks {
			v, err := decodeShard[inferResponse](res)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				merged = v // theta is identical on every shard (full model)
			}
			if v.K > merged.K {
				merged.K = v.K
			}
			perShard[i] = v.Matches
		}
		merged.Matches = core.MergeTopK(perShard, merged.K, matchBetterJSON)
		if merged.Matches == nil {
			merged.Matches = []matchJSON{}
		}
		merged.Partial = len(missing) > 0
		merged.MissingShards = missing
		return merged, nil
	})
}

// handleRecommend is the two-phase sharded recommendation: recommendation
// strengths normalize over the global peer set, so per-shard recommend
// answers cannot be merged. Phase 1 scatters /v1/similar with k=peers and
// merges the global peer list; phase 2 posts it to one healthy shard's
// /internal/recommend (every shard holds the full representations) which
// scores exactly the peers an unsharded server would have used.
func (rt *Router) handleRecommend(ctx context.Context, r *http.Request) (routerResponse, error) {
	sp := trace.FromContext(ctx)
	id := r.PathValue("id")
	if _, err := strconv.Atoi(id); err != nil {
		return routerResponse{}, badRequest("router: company id %q is not an integer", id)
	}
	q := r.URL.Query()
	peers := rt.cfg.DefaultPeers
	if v := q.Get("peers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return routerResponse{}, badRequest("router: parameter peers=%q is not an integer", v)
		}
		if n != 0 { // an explicit 0 means "default", as on the shards
			peers = n
		}
	}
	// Phase 1: global top-peers peer set under the request's filters.
	phase1 := q
	phase1.Del("peers")
	phase1.Del("timeout_ms")
	phase1.Set("k", strconv.Itoa(peers))
	path := "/v1/similar/" + id + "?" + phase1.Encode()
	results := rt.fanout(ctx, http.MethodGet, path, nil, traceHeader(sp, ""))
	oks, clientErr, missing := classify(results)
	if clientErr != nil {
		return routerResponse{status: clientErr.status, body: clientErr.body}, nil
	}
	if len(oks) == 0 {
		return routerResponse{}, &apiError{status: http.StatusBadGateway,
			err: fmt.Errorf("router: all %d shards unavailable (missing %v)", len(rt.shards), missing)}
	}
	perShard := make([][]matchJSON, len(oks))
	var base similarResponse
	for i, res := range oks {
		v, err := decodeShard[similarResponse](res)
		if err != nil {
			return routerResponse{}, err
		}
		if i == 0 {
			base = v
		}
		perShard[i] = v.Matches
	}
	mergedPeers := core.MergeTopK(perShard, peers, matchBetterJSON)

	// Phase 2: one healthy shard scores the merged peers.
	req := internalRecommendRequest{CompanyID: base.CompanyID, Peers: peers,
		Matches: make([]internalMatch, len(mergedPeers))}
	for i, m := range mergedPeers {
		req.Matches[i] = internalMatch{CompanyID: m.CompanyID, Similarity: m.Similarity}
	}
	raw, err := json.Marshal(req)
	if err != nil {
		return routerResponse{}, &apiError{status: http.StatusInternalServerError, err: err}
	}
	sctx, cancel := rt.shardContext(ctx)
	defer cancel()
	header := traceHeader(sp, "application/json")
	var scored shardResult
	scoredOK := false
	for _, res := range oks {
		sh := rt.shards[res.shard]
		ok, probe := sh.br.Allow(time.Now())
		if !ok {
			continue
		}
		scored = sh.call(sctx, rt.client, http.MethodPost, sh.base+"/internal/recommend", raw, header,
			rt.hedgeDelay(sctx, sh))
		if scored.err != nil || scored.status >= 500 {
			sh.mFailures.Inc()
			sh.br.Failure(time.Now(), probe)
			continue
		}
		sh.br.Success(probe)
		scoredOK = true
		break
	}
	if !scoredOK {
		return routerResponse{}, &apiError{status: http.StatusBadGateway,
			err: errors.New("router: no shard could score the merged peer set")}
	}
	if scored.status >= 400 {
		return routerResponse{status: scored.status, body: scored.body}, nil
	}
	merged, err := decodeShard[recommendResponse](scored)
	if err != nil {
		return routerResponse{}, err
	}
	if merged.Recommendations == nil {
		merged.Recommendations = []recommendationJSON{}
	}
	merged.Partial = len(missing) > 0
	merged.MissingShards = missing
	if merged.Partial {
		rt.cfg.Logger.Warn("partial fan-out", "path", r.URL.Path, "missing", missing)
	}
	out, err := json.Marshal(merged)
	if err != nil {
		return routerResponse{}, &apiError{status: http.StatusInternalServerError, err: err}
	}
	return routerResponse{body: append(out, '\n'), partial: merged.Partial, missing: missing}, nil
}
