package router

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"repro/internal/shadow"
)

// fleetWorstMax bounds the merged worst-divergence list in the fleet view;
// each shard already bounds its own ring, this just keeps the aggregate body
// small when many shards sample.
const fleetWorstMax = 32

// fleetRecallShard is one shard's slice of the fleet recall view: either the
// shard's own /debug/recall status, a "sampling": false marker (the shard
// answered 404 — shadow sampling is off there), or an inline error when the
// shard could not be asked at all.
type fleetRecallShard struct {
	Shard    int            `json:"shard"`
	Addr     string         `json:"addr"`
	Sampling bool           `json:"sampling"`
	Err      string         `json:"error,omitempty"`
	Status   *shadow.Status `json:"status,omitempty"`
}

// fleetEntry is a shard worst-divergence entry annotated with the shard it
// came from, so a fleet-level triage can jump to the right shard's
// /debug/traces.
type fleetEntry struct {
	Shard int `json:"shard"`
	shadow.Entry
}

// fleetRecallResponse is the GET /debug/recall body on the router: per-shard
// statuses plus the sample-weighted fleet aggregate.
type fleetRecallResponse struct {
	Shards         []fleetRecallShard `json:"shards"`
	ShardsSampling int                `json:"shards_sampling"`
	WindowSamples  uint64             `json:"window_samples"`
	ObservedRecall float64            `json:"observed_recall"`
	Worst          []fleetEntry       `json:"worst"`
}

// handleFleetRecall fans GET /debug/recall out to every shard and merges the
// answers into one fleet view: the observed recall is the WindowSamples-
// weighted mean over sampling shards, and the worst-divergence lists merge
// recall-ascending. Shards that are down or not sampling are reported inline
// instead of failing the whole view — the fleet page stays useful during
// exactly the degraded episodes it exists to triage.
func (rt *Router) handleFleetRecall(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.Timeout)
	defer cancel()
	shards := make([]fleetRecallShard, len(rt.shards))
	var wg sync.WaitGroup
	for i, sh := range rt.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			out := fleetRecallShard{Shard: sh.index, Addr: sh.base}
			status, body, err := doRequest(ctx, rt.client, http.MethodGet, sh.base+"/debug/recall", nil, nil)
			switch {
			case err != nil:
				out.Err = err.Error()
			case status == http.StatusNotFound:
				// The shard serves but does not mount /debug/recall: shadow
				// sampling is off there. Not an error.
			case status != http.StatusOK:
				out.Err = fmt.Sprintf("shard answered %d", status)
			default:
				var st shadow.Status
				if uerr := json.Unmarshal(body, &st); uerr != nil {
					out.Err = "unparseable /debug/recall body: " + uerr.Error()
				} else {
					out.Sampling = st.Enabled
					out.Status = &st
				}
			}
			shards[i] = out
		}(i, sh)
	}
	wg.Wait()

	resp := fleetRecallResponse{Shards: shards, Worst: []fleetEntry{}}
	var weighted float64
	for _, s := range shards {
		if s.Status == nil || !s.Sampling {
			continue
		}
		resp.ShardsSampling++
		resp.WindowSamples += s.Status.WindowSamples
		weighted += s.Status.Recall * float64(s.Status.WindowSamples)
		for _, e := range s.Status.Worst {
			resp.Worst = append(resp.Worst, fleetEntry{Shard: s.Shard, Entry: e})
		}
	}
	if resp.WindowSamples > 0 {
		resp.ObservedRecall = weighted / float64(resp.WindowSamples)
	}
	sort.Slice(resp.Worst, func(a, b int) bool {
		if resp.Worst[a].Recall != resp.Worst[b].Recall {
			return resp.Worst[a].Recall < resp.Worst[b].Recall
		}
		return resp.Worst[a].Shard < resp.Worst[b].Shard
	})
	if len(resp.Worst) > fleetWorstMax {
		resp.Worst = resp.Worst[:fleetWorstMax]
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}
