package cluster

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/rng"
)

// CoClusterResult groups both the rows (companies) and the columns
// (products) of a binary matrix into k co-clusters.
type CoClusterResult struct {
	RowAssignment []int
	ColAssignment []int
}

// SpectralCoCluster implements Dhillon's (KDD 2001) spectral co-clustering:
// normalize A_n = D1^{-1/2} A D2^{-1/2}, take the top singular vector pairs,
// and k-means the stacked row/column embeddings. The paper applied this
// method (and PaCo) to its data and found only one meaningful co-cluster of
// globally popular products — the negative result motivating LDA. This
// implementation exists to reproduce that comparison.
func SpectralCoCluster(a *mat.Matrix, k int, g *rng.RNG) (*CoClusterResult, error) {
	if k < 2 {
		return nil, fmt.Errorf("cluster: co-clustering needs k >= 2")
	}
	n, m := a.Rows, a.Cols
	if n < k || m < k {
		return nil, fmt.Errorf("cluster: %dx%d matrix cannot form %d co-clusters", n, m, k)
	}
	// degree normalization with guard for empty rows/cols
	d1 := make([]float64, n)
	d2 := make([]float64, m)
	for i := 0; i < n; i++ {
		row := a.Row(i)
		for j, v := range row {
			d1[i] += v
			d2[j] += v
		}
	}
	an := mat.New(n, m)
	for i := 0; i < n; i++ {
		if d1[i] == 0 {
			continue
		}
		ri := 1 / math.Sqrt(d1[i])
		row := a.Row(i)
		out := an.Row(i)
		for j, v := range row {
			if v == 0 || d2[j] == 0 {
				continue
			}
			out[j] = v * ri / math.Sqrt(d2[j])
		}
	}
	// number of singular vector pairs: l = ceil(log2 k) (Dhillon), at least 1
	l := 1
	for (1 << l) < k {
		l++
	}
	if l >= m {
		l = m - 1
	}
	u, v, err := truncatedSVD(an, l+1, g) // first pair is trivial; keep l after it
	if err != nil {
		return nil, err
	}
	// drop the leading singular pair (constant direction), embed rows & cols
	emb := mat.New(n+m, l)
	for i := 0; i < n; i++ {
		for j := 0; j < l; j++ {
			emb.Set(i, j, u.At(i, j+1))
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < l; j++ {
			emb.Set(n+i, j, v.At(i, j+1))
		}
	}
	res, err := KMeans(emb, KMeansConfig{K: k, Restarts: 4}, g)
	if err != nil {
		return nil, err
	}
	return &CoClusterResult{
		RowAssignment: res.Assignment[:n],
		ColAssignment: res.Assignment[n:],
	}, nil
}

// truncatedSVD computes the top-r singular vector pairs of a (n x m) by
// orthogonal iteration on aᵀa: V spans the dominant right-singular subspace,
// then U = a V Σ⁻¹. Adequate for the small column spaces used here (m = 38).
func truncatedSVD(a *mat.Matrix, r int, g *rng.RNG) (u, v *mat.Matrix, err error) {
	n, m := a.Rows, a.Cols
	if r > m {
		r = m
	}
	ata := mat.Mul(a.Transpose(), a) // m x m
	// orthogonal iteration
	q := mat.New(m, r)
	for i := range q.Data {
		q.Data[i] = g.Norm()
	}
	gramSchmidt(q)
	tmp := mat.New(m, r)
	for it := 0; it < 200; it++ {
		mat.MulTo(tmp, ata, q)
		q.CopyFrom(tmp)
		gramSchmidt(q)
	}
	// singular values from Rayleigh quotients
	sigma := make([]float64, r)
	av := mat.Mul(a, q) // n x r
	for j := 0; j < r; j++ {
		var s float64
		for i := 0; i < n; i++ {
			s += av.At(i, j) * av.At(i, j)
		}
		sigma[j] = math.Sqrt(s)
	}
	u = mat.New(n, r)
	for j := 0; j < r; j++ {
		if sigma[j] < 1e-12 {
			continue // zero singular value: leave U column zero
		}
		inv := 1 / sigma[j]
		for i := 0; i < n; i++ {
			u.Set(i, j, av.At(i, j)*inv)
		}
	}
	return u, q, nil
}

// gramSchmidt orthonormalizes the columns of q in place (modified G-S).
func gramSchmidt(q *mat.Matrix) {
	m, r := q.Rows, q.Cols
	for j := 0; j < r; j++ {
		var norm float64
		for attempt := 0; attempt < 3; attempt++ {
			for k := 0; k < j; k++ {
				var dot float64
				for i := 0; i < m; i++ {
					dot += q.At(i, j) * q.At(i, k)
				}
				for i := 0; i < m; i++ {
					q.Set(i, j, q.At(i, j)-dot*q.At(i, k))
				}
			}
			norm = 0
			for i := 0; i < m; i++ {
				norm += q.At(i, j) * q.At(i, j)
			}
			norm = math.Sqrt(norm)
			if norm >= 1e-12 {
				break
			}
			// degenerate column: re-seed deterministically and re-project
			for i := 0; i < m; i++ {
				q.Set(i, j, math.Sin(float64(i*31+(j+attempt)*17+1)))
			}
		}
		for i := 0; i < m; i++ {
			q.Set(i, j, q.At(i, j)/norm)
		}
	}
}
