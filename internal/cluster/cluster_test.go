package cluster

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
)

// blobs generates k well-separated Gaussian clusters of size each.
func blobs(k, each, dim int, sep float64, g *rng.RNG) (*mat.Matrix, []int) {
	x := mat.New(k*each, dim)
	truth := make([]int, k*each)
	for c := 0; c < k; c++ {
		center := make([]float64, dim)
		for d := range center {
			center[d] = sep * float64(c) * math.Cos(float64(d+c))
		}
		center[0] = sep * float64(c)
		for i := 0; i < each; i++ {
			row := x.Row(c*each + i)
			for d := range row {
				row[d] = center[d] + 0.3*g.Norm()
			}
			truth[c*each+i] = c
		}
	}
	return x, truth
}

func TestKMeansValidation(t *testing.T) {
	x := mat.New(3, 2)
	if _, err := KMeans(x, KMeansConfig{K: 0}, rng.New(1)); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := KMeans(x, KMeansConfig{K: 5}, rng.New(1)); err == nil {
		t.Fatal("more clusters than points accepted")
	}
}

func TestKMeansRecoversBlobs(t *testing.T) {
	g := rng.New(3)
	x, _ := blobs(3, 40, 4, 10, g)
	res, err := KMeans(x, KMeansConfig{K: 3, Restarts: 5}, g)
	if err != nil {
		t.Fatal(err)
	}
	// cluster purity: every true cluster maps to one predicted cluster
	for c := 0; c < 3; c++ {
		counts := map[int]int{}
		for i := c * 40; i < (c+1)*40; i++ {
			counts[res.Assignment[i]]++
		}
		maxC := 0
		for _, v := range counts {
			if v > maxC {
				maxC = v
			}
		}
		if maxC < 38 {
			t.Fatalf("true cluster %d impure: %v", c, counts)
		}
	}
	if res.Inertia <= 0 {
		t.Fatalf("inertia = %v", res.Inertia)
	}
}

func TestKMeansInertiaDecreasesWithK(t *testing.T) {
	g := rng.New(5)
	x, _ := blobs(4, 30, 3, 6, g)
	prev := math.Inf(1)
	for _, k := range []int{1, 2, 4, 8} {
		res, err := KMeans(x, KMeansConfig{K: k, Restarts: 4}, g)
		if err != nil {
			t.Fatal(err)
		}
		if res.Inertia > prev*1.01 {
			t.Fatalf("inertia increased from %v to %v at k=%d", prev, res.Inertia, k)
		}
		prev = res.Inertia
	}
}

func TestKMeansDeterministic(t *testing.T) {
	x, _ := blobs(3, 20, 3, 8, rng.New(7))
	r1, err := KMeans(x, KMeansConfig{K: 3}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := KMeans(x, KMeansConfig{K: 3}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Assignment {
		if r1.Assignment[i] != r2.Assignment[i] {
			t.Fatal("k-means not deterministic under identical seeds")
		}
	}
}

func TestKMeansSinglePointClusters(t *testing.T) {
	// exactly K points: each its own cluster, inertia 0
	x := mat.FromSlice(3, 2, []float64{0, 0, 10, 0, 0, 10})
	res, err := KMeans(x, KMeansConfig{K: 3}, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-12 {
		t.Fatalf("inertia = %v, want 0", res.Inertia)
	}
	seen := map[int]bool{}
	for _, a := range res.Assignment {
		if seen[a] {
			t.Fatal("duplicate cluster for distinct points")
		}
		seen[a] = true
	}
}

func TestSilhouetteSeparatedVsOverlapping(t *testing.T) {
	g := rng.New(17)
	// well-separated blobs: silhouette near 1
	xs, truth := blobs(3, 30, 3, 20, g)
	s1, err := Silhouette(xs, truth, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s1 < 0.8 {
		t.Fatalf("separated silhouette = %v, want > 0.8", s1)
	}
	// overlapping blobs: much lower
	xo, truthO := blobs(3, 30, 3, 0.3, g)
	s2, err := Silhouette(xo, truthO, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s2 >= s1 {
		t.Fatalf("overlapping silhouette %v should be below separated %v", s2, s1)
	}
	if s2 < -1 || s1 > 1 {
		t.Fatal("silhouette out of [-1,1]")
	}
}

func TestSilhouetteRandomAssignmentNearZero(t *testing.T) {
	g := rng.New(19)
	x, _ := blobs(1, 100, 4, 0, g) // one blob, no structure
	assign := make([]int, 100)
	for i := range assign {
		assign[i] = g.Intn(3)
	}
	s, err := Silhouette(x, assign, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s) > 0.12 {
		t.Fatalf("random-assignment silhouette = %v, want ~0", s)
	}
}

func TestSilhouetteValidation(t *testing.T) {
	x := mat.New(4, 2)
	if _, err := Silhouette(x, []int{0, 1}, 2); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Silhouette(x, []int{0, 0, 0, 0}, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := Silhouette(x, []int{0, 1, 2, 5}, 3); err == nil {
		t.Fatal("out-of-range assignment accepted")
	}
}

func TestSilhouetteSampledMatchesFullOnSmallData(t *testing.T) {
	g := rng.New(23)
	x, truth := blobs(2, 25, 3, 10, g)
	full, err := Silhouette(x, truth, 2)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := SilhouetteSampled(x, truth, 2, 1000, g)
	if err != nil {
		t.Fatal(err)
	}
	if full != sampled {
		t.Fatalf("under-threshold sampling changed result: %v vs %v", full, sampled)
	}
	sub, err := SilhouetteSampled(x, truth, 2, 30, g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sub-full) > 0.15 {
		t.Fatalf("sampled silhouette %v too far from full %v", sub, full)
	}
}

func TestSpectralCoClusterBlockMatrix(t *testing.T) {
	// Block-diagonal binary matrix: rows 0-19 use cols 0-4, rows 20-39 use
	// cols 5-9. Spectral co-clustering must recover the two blocks.
	g := rng.New(29)
	a := mat.New(40, 10)
	for i := 0; i < 40; i++ {
		base := 0
		if i >= 20 {
			base = 5
		}
		for j := 0; j < 5; j++ {
			if g.Float64() < 0.8 {
				a.Set(i, base+j, 1)
			}
		}
		a.Set(i, base, 1) // guarantee non-empty rows
	}
	res, err := SpectralCoCluster(a, 2, g)
	if err != nil {
		t.Fatal(err)
	}
	// row purity
	agree := 0
	for i := 0; i < 20; i++ {
		if res.RowAssignment[i] == res.RowAssignment[0] {
			agree++
		}
	}
	for i := 20; i < 40; i++ {
		if res.RowAssignment[i] != res.RowAssignment[0] {
			agree++
		}
	}
	if agree < 36 {
		t.Fatalf("row co-clusters impure: %d/40 correct", agree)
	}
	// column purity
	colAgree := 0
	for j := 0; j < 5; j++ {
		if res.ColAssignment[j] == res.ColAssignment[0] {
			colAgree++
		}
	}
	for j := 5; j < 10; j++ {
		if res.ColAssignment[j] != res.ColAssignment[0] {
			colAgree++
		}
	}
	if colAgree < 9 {
		t.Fatalf("column co-clusters impure: %d/10 correct", colAgree)
	}
}

func TestSpectralCoClusterValidation(t *testing.T) {
	a := mat.New(5, 5)
	if _, err := SpectralCoCluster(a, 1, rng.New(1)); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := SpectralCoCluster(a, 9, rng.New(1)); err == nil {
		t.Fatal("k > dims accepted")
	}
}

func TestSpectralCoClusterToleratesEmptyRows(t *testing.T) {
	g := rng.New(31)
	a := mat.New(10, 6)
	for i := 0; i < 9; i++ { // last row all zero
		a.Set(i, i%6, 1)
		a.Set(i, (i+1)%6, 1)
	}
	if _, err := SpectralCoCluster(a, 2, g); err != nil {
		t.Fatalf("empty row crashed co-clustering: %v", err)
	}
}
