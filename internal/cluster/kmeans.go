// Package cluster implements k-means clustering with k-means++ seeding and
// silhouette-score evaluation, the tools behind the paper's company-
// clustering validation (Figure 7): company representations are clustered
// for a sweep of cluster counts and each clustering is scored by its
// silhouette coefficient.
//
// This trainer is the sequential reference implementation. The ANN coarse
// router (internal/ann) restructures the same Lloyd loop for worker-
// count-invariant parallelism — fixed-size row blocks and index-order
// float reductions — so serving indexes build on every core yet stay
// gob-byte-identical; changes to the algorithm here should be mirrored
// there deliberately, not silently diverged.
package cluster

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/rng"
)

// KMeansResult holds a clustering of n points into k clusters.
type KMeansResult struct {
	Centers    *mat.Matrix // k x d
	Assignment []int       // n, cluster index per point
	Inertia    float64     // sum of squared distances to assigned centers
	Iterations int         // Lloyd iterations actually run
}

// KMeansConfig parameterizes Lloyd's algorithm.
type KMeansConfig struct {
	K        int
	MaxIter  int     // 0 selects 100
	Tol      float64 // relative inertia improvement stop; 0 selects 1e-6
	Restarts int     // k-means++ restarts, best inertia wins; 0 selects 3
}

func (c *KMeansConfig) fillDefaults() {
	if c.MaxIter == 0 {
		c.MaxIter = 100
	}
	if c.Tol == 0 {
		c.Tol = 1e-6
	}
	if c.Restarts == 0 {
		c.Restarts = 3
	}
}

// KMeans clusters the rows of x into cfg.K clusters.
func KMeans(x *mat.Matrix, cfg KMeansConfig, g *rng.RNG) (*KMeansResult, error) {
	cfg.fillDefaults()
	if cfg.K < 1 {
		return nil, fmt.Errorf("cluster: K must be positive, got %d", cfg.K)
	}
	if x.Rows < cfg.K {
		return nil, fmt.Errorf("cluster: %d points cannot form %d clusters", x.Rows, cfg.K)
	}
	var best *KMeansResult
	for r := 0; r < cfg.Restarts; r++ {
		res := kmeansOnce(x, cfg, g)
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	return best, nil
}

func kmeansOnce(x *mat.Matrix, cfg KMeansConfig, g *rng.RNG) *KMeansResult {
	n, k := x.Rows, cfg.K
	centers := seedPlusPlus(x, k, g)
	assign := make([]int, n)
	counts := make([]int, k)
	prevInertia := math.Inf(1)
	var inertia float64
	iters := 0
	for it := 0; it < cfg.MaxIter; it++ {
		iters = it + 1
		// assignment step
		inertia = 0
		for i := 0; i < n; i++ {
			row := x.Row(i)
			bestD := math.Inf(1)
			bestC := 0
			for c := 0; c < k; c++ {
				if dist := mat.SqDist(row, centers.Row(c)); dist < bestD {
					bestD, bestC = dist, c
				}
			}
			assign[i] = bestC
			inertia += bestD
		}
		// update step
		centers.Zero()
		for c := range counts {
			counts[c] = 0
		}
		for i := 0; i < n; i++ {
			mat.AxpyVec(1, x.Row(i), centers.Row(assign[i]))
			counts[assign[i]]++
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// re-seed an empty cluster at the point farthest from its center
				far, farD := 0, -1.0
				for i := 0; i < n; i++ {
					if dd := mat.SqDist(x.Row(i), centers.Row(assign[i])); dd > farD {
						far, farD = i, dd
					}
				}
				copy(centers.Row(c), x.Row(far))
				continue
			}
			mat.ScaleVec(1/float64(counts[c]), centers.Row(c))
		}
		if prevInertia-inertia <= cfg.Tol*prevInertia {
			break
		}
		prevInertia = inertia
	}
	return &KMeansResult{Centers: centers, Assignment: assign, Inertia: inertia, Iterations: iters}
}

// seedPlusPlus picks k initial centers with the k-means++ D² weighting.
func seedPlusPlus(x *mat.Matrix, k int, g *rng.RNG) *mat.Matrix {
	n := x.Rows
	centers := mat.New(k, x.Cols)
	first := g.Intn(n)
	copy(centers.Row(0), x.Row(first))
	d2 := make([]float64, n)
	for i := 0; i < n; i++ {
		d2[i] = mat.SqDist(x.Row(i), centers.Row(0))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, v := range d2 {
			total += v
		}
		var pick int
		if total <= 0 {
			pick = g.Intn(n) // all points coincide with some center
		} else {
			pick = g.Categorical(d2)
		}
		copy(centers.Row(c), x.Row(pick))
		for i := 0; i < n; i++ {
			if dd := mat.SqDist(x.Row(i), centers.Row(c)); dd < d2[i] {
				d2[i] = dd
			}
		}
	}
	return centers
}

// Silhouette computes the mean silhouette coefficient of a clustering:
// s(i) = (b(i) - a(i)) / max(a(i), b(i)) with a(i) the mean intra-cluster
// distance and b(i) the mean distance to the nearest other cluster
// (Euclidean, matching sklearn's default used in the paper). Points in
// singleton clusters contribute 0, as in sklearn. The computation is
// O(n²·d); use SilhouetteSampled for large corpora.
func Silhouette(x *mat.Matrix, assign []int, k int) (float64, error) {
	n := x.Rows
	if len(assign) != n {
		return 0, fmt.Errorf("cluster: assignment length %d != points %d", len(assign), n)
	}
	if k < 2 {
		return 0, fmt.Errorf("cluster: silhouette needs at least 2 clusters")
	}
	counts := make([]int, k)
	for _, a := range assign {
		if a < 0 || a >= k {
			return 0, fmt.Errorf("cluster: assignment %d outside [0,%d)", a, k)
		}
		counts[a]++
	}
	sums := make([]float64, k)
	var total float64
	for i := 0; i < n; i++ {
		for c := range sums {
			sums[c] = 0
		}
		row := x.Row(i)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			sums[assign[j]] += math.Sqrt(mat.SqDist(row, x.Row(j)))
		}
		ci := assign[i]
		if counts[ci] <= 1 {
			continue // silhouette of singleton defined as 0
		}
		a := sums[ci] / float64(counts[ci]-1)
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == ci || counts[c] == 0 {
				continue
			}
			if m := sums[c] / float64(counts[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue // no other non-empty cluster
		}
		if mx := math.Max(a, b); mx > 0 {
			total += (b - a) / mx
		}
	}
	return total / float64(n), nil
}

// SilhouetteSampled estimates the silhouette on a uniform sample of at most
// maxPoints points (distances still measured against the sampled set), the
// standard practical treatment for ~10^5-10^6 companies.
func SilhouetteSampled(x *mat.Matrix, assign []int, k, maxPoints int, g *rng.RNG) (float64, error) {
	if x.Rows <= maxPoints {
		return Silhouette(x, assign, k)
	}
	idx := g.Perm(x.Rows)[:maxPoints]
	sub := mat.New(maxPoints, x.Cols)
	subAssign := make([]int, maxPoints)
	for i, j := range idx {
		copy(sub.Row(i), x.Row(j))
		subAssign[i] = assign[j]
	}
	return Silhouette(sub, subAssign, k)
}
