// ANN index persistence: an IBSNAP v2 flat container so ibserve opens the
// routing index via mmap at boot and reload instead of re-clustering.
//
// Layout (kind "ann-index"):
//
//	meta          fixed 64-byte little-endian block (see metaLen)
//	centroids     float64 blob, Cells*Dim, row-major
//	cell_offsets  int64 CSR offsets, Cells+1
//	cell_ids      int64 postings, N company ids grouped by cell
//
// The meta section carries a CRC-32C fingerprint of the representation
// matrix the index was clustered from; LoadFile callers compare it against
// Fingerprint of the representations they are about to route for, so a
// stale index (model retrained, corpus changed) is rebuilt instead of
// silently mis-routing.
package ann

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/snapshot"
)

// Kind is the IBSNAP container kind of a persisted ANN index.
const Kind = "ann-index"

// v2 section names and the fixed meta layout (little-endian): Cells int64,
// Dim int64, N int64, Metric int64, Seed int64, RepsCRC uint64,
// Inertia float64, Iters int64.
const (
	sectionMeta      = "meta"
	sectionCentroids = "centroids"
	sectionOffsets   = "cell_offsets"
	sectionIDs       = "cell_ids"
	metaLen          = 64
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Fingerprint returns a CRC-32C over the representation matrix's shape and
// row-major payload (little-endian), the value persisted in an index's meta
// section and compared on load. The polynomial matches the IBSNAP container
// checksums.
func Fingerprint(reps *mat.Matrix) uint32 {
	h := crc32.New(crcTable)
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(int64(reps.Rows)))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(int64(reps.Cols)))
	h.Write(hdr[:])
	buf := make([]byte, 0, 8192)
	for _, v := range reps.Data {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		if len(buf) == cap(buf) {
			h.Write(buf)
			buf = buf[:0]
		}
	}
	h.Write(buf)
	return h.Sum32()
}

// Save serializes the index as an IBSNAP v2 flat container of kind Kind.
func (ix *Index) Save(w io.Writer) error {
	b, err := ix.builder()
	if err != nil {
		return err
	}
	return b.Write(w)
}

// SaveFile atomically writes the index container to path.
func (ix *Index) SaveFile(path string) error {
	b, err := ix.builder()
	if err != nil {
		return err
	}
	return b.WriteFile(path)
}

func (ix *Index) builder() (*snapshot.Builder, error) {
	b := snapshot.NewBuilder(Kind)
	meta := make([]byte, metaLen)
	binary.LittleEndian.PutUint64(meta[0:], uint64(int64(ix.Cells())))
	binary.LittleEndian.PutUint64(meta[8:], uint64(int64(ix.Dim())))
	binary.LittleEndian.PutUint64(meta[16:], uint64(int64(ix.N)))
	binary.LittleEndian.PutUint64(meta[24:], uint64(int64(ix.Metric)))
	binary.LittleEndian.PutUint64(meta[32:], uint64(ix.Seed))
	binary.LittleEndian.PutUint64(meta[40:], uint64(ix.RepsCRC))
	binary.LittleEndian.PutUint64(meta[48:], math.Float64bits(ix.Inertia))
	binary.LittleEndian.PutUint64(meta[56:], uint64(int64(ix.Iters)))
	if err := b.AddSection(sectionMeta, meta); err != nil {
		return nil, err
	}
	if err := b.AddFloat64(sectionCentroids, ix.Centroids.Data); err != nil {
		return nil, err
	}
	if err := b.AddInt64(sectionOffsets, ix.Offsets); err != nil {
		return nil, err
	}
	if err := b.AddInt64(sectionIDs, ix.IDs); err != nil {
		return nil, err
	}
	return b, nil
}

// indexFromV2 decodes a parsed container, validating the CSR structure so a
// corrupt or hand-edited file cannot drive out-of-range candidate ids into
// the scans. The centroid matrix is frozen when the sections alias an mmap.
func indexFromV2(f *snapshot.File, frozen bool) (*Index, error) {
	if f.Kind() != Kind {
		return nil, &snapshot.KindError{Want: Kind, Got: f.Kind()}
	}
	meta, err := f.Section(sectionMeta)
	if err != nil {
		return nil, fmt.Errorf("ann: loading index: %w", err)
	}
	if len(meta) != metaLen {
		return nil, fmt.Errorf("ann: corrupt index meta section (%d bytes, want %d)", len(meta), metaLen)
	}
	cells := int64(binary.LittleEndian.Uint64(meta[0:]))
	dim := int64(binary.LittleEndian.Uint64(meta[8:]))
	n := int64(binary.LittleEndian.Uint64(meta[16:]))
	metric := int64(binary.LittleEndian.Uint64(meta[24:]))
	seed := int64(binary.LittleEndian.Uint64(meta[32:]))
	repsCRC := binary.LittleEndian.Uint64(meta[40:])
	inertia := math.Float64frombits(binary.LittleEndian.Uint64(meta[48:]))
	iters := int64(binary.LittleEndian.Uint64(meta[56:]))
	if cells < 1 || dim < 1 || n < cells || cells*dim > int64(math.MaxInt) ||
		repsCRC > math.MaxUint32 || iters < 0 || (metric != int64(core.Cosine) && metric != int64(core.Euclidean)) {
		return nil, fmt.Errorf("ann: corrupt index meta (cells=%d dim=%d n=%d metric=%d)", cells, dim, n, metric)
	}
	cents, err := f.Float64Section(sectionCentroids)
	if err != nil {
		return nil, fmt.Errorf("ann: loading index: %w", err)
	}
	if int64(len(cents)) != cells*dim {
		return nil, fmt.Errorf("ann: corrupt centroids (%d values for %dx%d)", len(cents), cells, dim)
	}
	offsets, err := f.Int64Section(sectionOffsets)
	if err != nil {
		return nil, fmt.Errorf("ann: loading index: %w", err)
	}
	ids, err := f.Int64Section(sectionIDs)
	if err != nil {
		return nil, fmt.Errorf("ann: loading index: %w", err)
	}
	if int64(len(offsets)) != cells+1 || offsets[0] != 0 || offsets[cells] != n || int64(len(ids)) != n {
		return nil, fmt.Errorf("ann: corrupt postings shape (%d offsets, %d ids for %d cells over %d companies)",
			len(offsets), len(ids), cells, n)
	}
	for c := int64(0); c < cells; c++ {
		lo, hi := offsets[c], offsets[c+1]
		if lo > hi {
			return nil, fmt.Errorf("ann: corrupt postings (cell %d offsets %d > %d)", c, lo, hi)
		}
		for j := lo; j < hi; j++ {
			if ids[j] < 0 || ids[j] >= n || (j > lo && ids[j] <= ids[j-1]) {
				return nil, fmt.Errorf("ann: corrupt postings (cell %d id %d at %d)", c, ids[j], j)
			}
		}
	}
	var cm *mat.Matrix
	if frozen {
		cm = mat.FrozenFromSlice(int(cells), int(dim), cents)
	} else {
		cm = mat.FromSlice(int(cells), int(dim), cents)
	}
	return &Index{
		Metric:  core.Metric(metric),
		Seed:    seed,
		RepsCRC: uint32(repsCRC),
		N:       int(n),
		Inertia: inertia,
		Iters:   int(iters),

		Centroids: cm,
		Offsets:   offsets,
		IDs:       ids,
		mapped:    frozen,
	}, nil
}

// LoadFile mmaps the index container at path: centroids and postings alias
// the mapping (zero copy, O(sections) open) and the returned close function
// releases it. Close must not run before the index leaves the serving path —
// in ibserve that is when the owning generation's last in-flight request
// finishes. Callers routing for a representation matrix should reject an
// index whose RepsCRC differs from Fingerprint of that matrix.
func LoadFile(path string) (*Index, func() error, error) {
	mf, err := snapshot.Map(path, snapshot.MapOptions{})
	if err != nil {
		return nil, nil, fmt.Errorf("ann: mapping %s: %w", path, err)
	}
	ix, err := indexFromV2(mf, true)
	if err != nil {
		mf.Close()
		return nil, nil, fmt.Errorf("ann: loading %s: %w", path, err)
	}
	mapOpensTotal.Inc()
	return ix, mf.Close, nil
}
