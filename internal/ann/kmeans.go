// Deterministic parallel k-means for the coarse router.
//
// internal/cluster's KMeans is the sequential reference implementation for
// the paper's Figure-7 clustering validation; this trainer restructures the
// same Lloyd loop for the par determinism contract so index builds can use
// every core and still be gob-byte-identical at any worker count:
//
//   - Randomness: the k-means++ seeding consumes one RNG stream strictly
//     sequentially (first center, then one Categorical draw per remaining
//     center). The parallel phases draw no randomness at all, so there is
//     nothing scheduling can reorder.
//   - Parallel phases (seeding distance updates, the assignment step) fan
//     out over fixed-size row blocks — trainBlock rows, independent of
//     par.Workers(), unlike par.NumShards — and perform only per-index pure
//     writes into preallocated slices (d2[i], assign[i]).
//   - Floating-point reductions (inertia, centroid sums) fold per-index
//     values in index order on one goroutine, never per-shard partials.
//
// Empty cells re-seed deterministically at the point farthest from its
// assigned center per the assignment pass (lowest index on ties); the
// stolen point is excluded so successive empty cells pick distinct points.
package ann

import (
	"context"
	"math"

	"repro/internal/mat"
	"repro/internal/par"
	"repro/internal/rng"
)

// trainBlock is the fixed parallel work unit in rows. It must never depend
// on the worker count: block boundaries are part of the deterministic
// schedule (not of any float reduction, but of the d2/assign write pattern's
// cache behavior) and keeping them fixed makes the parallel phases trivially
// worker-count-invariant.
const trainBlock = 512

// forBlocks runs fn over [lo, hi) row blocks of trainBlock rows in parallel.
// fn must only write per-index slots inside its block.
func forBlocks(n int, fn func(lo, hi int)) {
	blocks := (n + trainBlock - 1) / trainBlock
	_ = par.ForEach(context.Background(), blocks, func(b int) error {
		lo := b * trainBlock
		hi := lo + trainBlock
		if hi > n {
			hi = n
		}
		fn(lo, hi)
		return nil
	})
}

// train runs k-means++ seeding plus Lloyd iterations over the rows of x and
// returns the centers, per-row assignment, final inertia and iteration
// count. Distances are squared Euclidean over the topic simplex, matching
// internal/cluster; the serving metric only matters at query time.
func train(x *mat.Matrix, k, maxIter int, tol float64, g *rng.RNG) (*mat.Matrix, []int32, float64, int) {
	n := x.Rows
	centers := seed(x, k, g)
	assign := make([]int32, n)
	d2 := make([]float64, n) // distance to the assigned center, per row
	counts := make([]int, k)
	prev := math.Inf(1)
	var inertia float64
	iters := 0
	for it := 0; it < maxIter; it++ {
		iters = it + 1
		// Assignment step: per-index pure writes, parallel over fixed blocks.
		forBlocks(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				row := x.Row(i)
				bestD, bestC := math.Inf(1), 0
				for c := 0; c < k; c++ {
					if dist := mat.SqDist(row, centers.Row(c)); dist < bestD {
						bestD, bestC = dist, c
					}
				}
				assign[i] = int32(bestC)
				d2[i] = bestD
			}
		})
		// Reductions fold in index order: inertia, then the centroid sums.
		inertia = 0
		for _, v := range d2 {
			inertia += v
		}
		centers.Zero()
		for c := range counts {
			counts[c] = 0
		}
		for i := 0; i < n; i++ {
			c := int(assign[i])
			mat.AxpyVec(1, x.Row(i), centers.Row(c))
			counts[c]++
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				far, farD := 0, -1.0
				for i := 0; i < n; i++ {
					if d2[i] > farD {
						far, farD = i, d2[i]
					}
				}
				copy(centers.Row(c), x.Row(far))
				d2[far] = -1
				continue
			}
			mat.ScaleVec(1/float64(counts[c]), centers.Row(c))
		}
		if prev-inertia <= tol*prev {
			break
		}
		prev = inertia
	}
	return centers, assign, inertia, iters
}

// seed picks k initial centers with the k-means++ D² weighting. The RNG is
// consumed sequentially (Intn, then one Categorical per center); the
// distance-table updates between draws are parallel per-index writes.
func seed(x *mat.Matrix, k int, g *rng.RNG) *mat.Matrix {
	n := x.Rows
	centers := mat.New(k, x.Cols)
	copy(centers.Row(0), x.Row(g.Intn(n)))
	d2 := make([]float64, n)
	first := centers.Row(0)
	forBlocks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d2[i] = mat.SqDist(x.Row(i), first)
		}
	})
	for c := 1; c < k; c++ {
		var total float64
		for _, v := range d2 {
			total += v
		}
		var pick int
		if total <= 0 {
			pick = g.Intn(n) // all points coincide with some center
		} else {
			pick = g.Categorical(d2)
		}
		copy(centers.Row(c), x.Row(pick))
		cr := centers.Row(c)
		forBlocks(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if dd := mat.SqDist(x.Row(i), cr); dd < d2[i] {
					d2[i] = dd
				}
			}
		})
	}
	return centers
}
