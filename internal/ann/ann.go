// Package ann implements the sub-linear candidate source behind the core
// index's top-k scans: a coarse k-means router (IVF-style) over the LDA
// topic simplex. Build clusters the company representations into cells and
// records, per cell, the ascending list of member companies; at query time
// the router ranks cells by the query's similarity to their centroids and
// returns only the nprobe nearest cells' members as the candidate pool,
// which core re-ranks exactly through its bounded heaps and total orders.
// With nprobe raised to the cell count the pool is the whole corpus and the
// answer is byte-identical to the exact scan — the escape hatch, and the
// recall baseline BENCH_ann.json measures against.
//
// Determinism. Training follows the internal/par contract: the k-means++
// seeding consumes a single RNG stream sequentially before any fan-out, the
// parallel phases (distance evaluation over fixed-size row blocks that do
// not move with the worker count) perform only per-index pure writes, and
// every floating-point reduction folds per-index values in index order on
// one goroutine. An index built at workers=1 is gob-byte-identical to one
// built at workers=4, pinned in tests alongside the 3-shard router-merge
// equivalence.
//
// Persistence. Save writes an IBSNAP v2 container (centroids as a float64
// section, the cell postings as CSR int64 sections, plus a fixed meta
// section carrying a CRC-32C fingerprint of the representations the index
// was built from); LoadFile mmaps it so ibserve opens the index in
// O(sections) at boot and reload instead of re-clustering, refusing a file
// whose fingerprint does not match the representations it would route for.
package ann

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/rng"
)

var (
	buildsTotal = obs.Default().Counter("ann_index_builds_total",
		"ANN coarse-router indexes trained from representations")
	mapOpensTotal = obs.Default().Counter("ann_index_mmap_opens_total",
		"ANN indexes opened zero-copy from an IBSNAP v2 mapping")
	buildSeconds = obs.Default().Gauge("ann_index_build_seconds",
		"wall-clock duration of the most recent ANN index build")
)

// Index is a coarse k-means routing index over one representation matrix:
// Centroids holds the cell centers and Offsets/IDs the cell postings in CSR
// form — cell c's members are IDs[Offsets[c]:Offsets[c+1]], ascending. All
// routing state is in exported fields so the determinism tests can compare
// whole indexes gob-byte-identically; treat a built index as immutable.
type Index struct {
	Metric  core.Metric // similarity used to rank cells at query time
	Seed    int64       // k-means++ seeding stream
	RepsCRC uint32      // Fingerprint of the representations clustered
	N       int         // companies indexed (rows of the representations)
	Inertia float64     // final k-means inertia (sum of squared distances)
	Iters   int         // Lloyd iterations run

	Centroids *mat.Matrix // Cells() x Dim()
	Offsets   []int64     // len Cells()+1, CSR offsets into IDs
	IDs       []int64     // len N, company ids grouped by cell, ascending within each

	mapped bool // centroids and postings alias an IBSNAP v2 mapping
}

// Cells returns the coarse cell count.
func (ix *Index) Cells() int { return ix.Centroids.Rows }

// Dim returns the representation dimensionality.
func (ix *Index) Dim() int { return ix.Centroids.Cols }

// Mapped reports whether the index aliases an mmap (opened via LoadFile).
func (ix *Index) Mapped() bool { return ix.mapped }

// BuildConfig parameterizes Build. Zero values select the defaults.
type BuildConfig struct {
	Cells   int     // coarse cell count; 0 selects DefaultCells(n)
	MaxIter int     // Lloyd iteration cap; 0 selects 25
	Tol     float64 // relative inertia improvement stop; 0 selects 1e-4
	Seed    int64   // k-means++ RNG seed
}

func (c *BuildConfig) fillDefaults(n int) {
	if c.Cells == 0 {
		c.Cells = DefaultCells(n)
	}
	if c.MaxIter == 0 {
		c.MaxIter = 25
	}
	if c.Tol == 0 {
		c.Tol = 1e-4
	}
}

// DefaultCells is the √n rule of thumb for the coarse cell count, clamped
// to [1, n].
func DefaultCells(n int) int {
	if n < 1 {
		return 1
	}
	c := int(math.Round(math.Sqrt(float64(n))))
	if c < 1 {
		c = 1
	}
	if c > n {
		c = n
	}
	return c
}

// Build clusters the rows of reps into cfg.Cells coarse cells and assembles
// the routing index. Deterministic at any par worker count.
func Build(reps *mat.Matrix, metric core.Metric, cfg BuildConfig) (*Index, error) {
	n := reps.Rows
	if n < 1 || reps.Cols < 1 {
		return nil, fmt.Errorf("ann: cannot index an empty representation matrix (%dx%d)", n, reps.Cols)
	}
	cfg.fillDefaults(n)
	if cfg.Cells < 1 || cfg.Cells > n {
		return nil, fmt.Errorf("ann: %d cells outside [1,%d]", cfg.Cells, n)
	}
	start := time.Now()
	centroids, assign, inertia, iters := train(reps, cfg.Cells, cfg.MaxIter, cfg.Tol, rng.New(cfg.Seed))

	// CSR postings: counting sort by cell keeps each cell's ids ascending.
	counts := make([]int64, cfg.Cells)
	for _, c := range assign {
		counts[c]++
	}
	offsets := make([]int64, cfg.Cells+1)
	for c, cnt := range counts {
		offsets[c+1] = offsets[c] + cnt
	}
	ids := make([]int64, n)
	next := make([]int64, cfg.Cells)
	copy(next, offsets[:cfg.Cells])
	for i, c := range assign {
		ids[next[c]] = int64(i)
		next[c]++
	}

	buildsTotal.Inc()
	buildSeconds.Set(time.Since(start).Seconds())
	return &Index{
		Metric:  metric,
		Seed:    cfg.Seed,
		RepsCRC: Fingerprint(reps),
		N:       n,
		Inertia: inertia,
		Iters:   iters,

		Centroids: centroids,
		Offsets:   offsets,
		IDs:       ids,
	}, nil
}

// Router wires an Index into core's candidate scans (core.Pruner): each
// query vector probes its NProbe nearest cells (similarity descending,
// lower cell id on ties — a total order, so the probe set is unique) and
// the pool is the union of the probed cells' postings.
type Router struct {
	Index  *Index
	NProbe int // cells probed per query vector; clamped to [1, Cells()]
}

// nprobe returns NProbe clamped to the valid range.
func (r *Router) nprobe() int {
	np := r.NProbe
	if np < 1 {
		np = 1
	}
	if c := r.Index.Cells(); np > c {
		np = c
	}
	return np
}

// Candidates implements core.Pruner: the union of every query's probed
// cells, emitted as one ascending id slice per non-empty cell, cells in
// ascending order. The slices alias the index postings — callers must not
// mutate them.
func (r *Router) Candidates(queries [][]float64) [][]int64 {
	ix := r.Index
	cells := ix.Cells()
	np := r.nprobe()
	probe := make([]bool, cells)
	scores := make([]float64, cells)
	order := make([]int, cells)
	for _, q := range queries {
		sc := core.NewScorer(ix.Metric, q)
		sc.ScoreBlock(ix.Centroids, 0, cells, scores)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			ca, cb := order[a], order[b]
			if scores[ca] != scores[cb] {
				return scores[ca] > scores[cb]
			}
			return ca < cb
		})
		for _, c := range order[:np] {
			probe[c] = true
		}
	}
	out := make([][]int64, 0, np*len(queries))
	for c := 0; c < cells; c++ {
		if !probe[c] {
			continue
		}
		if ids := ix.IDs[ix.Offsets[c]:ix.Offsets[c+1]]; len(ids) > 0 {
			out = append(out, ids)
		}
	}
	return out
}

// Info implements core.Pruner for /healthz reporting.
func (r *Router) Info() core.PrunerInfo {
	return core.PrunerInfo{Cells: r.Index.Cells(), NProbe: r.nprobe(), Mapped: r.Index.mapped}
}
