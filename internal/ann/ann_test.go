package ann

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/par"
	"repro/internal/rng"
)

func gobBytes(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// testCorpus builds n companies with simplex-like representations in d
// dimensions, the shape the router sees in production.
func testCorpus(t *testing.T, n, d int) (*corpus.Corpus, *mat.Matrix) {
	t.Helper()
	cat := corpus.DefaultCatalog()
	m := cat.Size()
	companies := make([]corpus.Company, n)
	for i := range companies {
		companies[i] = corpus.Company{
			ID: i, Name: fmt.Sprintf("co-%03d", i),
			Country: []string{"US", "DE", "GB"}[i%3], SIC2: 70 + i%4,
			Employees: 10 + i, RevenueM: float64(1 + i%9),
			Acquisitions: []corpus.Acquisition{
				{Category: i % m, First: corpus.Month(i % 12)},
				{Category: (i*7 + 3) % m, First: corpus.Month(i%12 + 1)},
			},
		}
		companies[i].SortAcquisitions()
	}
	c := corpus.New(cat, companies)
	g := rng.New(11)
	reps := mat.New(n, d)
	for i := 0; i < n; i++ {
		row := reps.Row(i)
		for j := range row {
			row[j] = g.Float64()
		}
		mat.Normalize(row)
	}
	return c, reps
}

func testIndex(t *testing.T, c *corpus.Corpus, reps *mat.Matrix, metric core.Metric) *core.Index {
	t.Helper()
	ix, err := core.NewIndex(c, reps, metric)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestBuildWorkers1vs4GobIdentical is the training determinism contract:
// the whole index (centroids, postings, inertia) is gob-byte-identical at
// one worker and four, like everything else driven through internal/par.
func TestBuildWorkers1vs4GobIdentical(t *testing.T) {
	defer par.SetWorkers(4)
	_, reps := testCorpus(t, 300, 6)
	var want []byte
	for _, workers := range []int{1, 4} {
		par.SetWorkers(workers)
		ix, err := Build(reps, core.Cosine, BuildConfig{Cells: 16, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		got := gobBytes(t, ix)
		if want == nil {
			want = got
		} else if !bytes.Equal(want, got) {
			t.Fatalf("workers=%d: index differs from workers=1 build", workers)
		}
	}
}

// TestBuildPostingsCoverCorpus checks the CSR postings are a disjoint
// ascending cover of the id space.
func TestBuildPostingsCoverCorpus(t *testing.T) {
	_, reps := testCorpus(t, 257, 5) // not a multiple of trainBlock
	ix, err := Build(reps, core.Cosine, BuildConfig{Cells: 9, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Cells() != 9 || ix.N != 257 || len(ix.IDs) != 257 || len(ix.Offsets) != 10 {
		t.Fatalf("index shape: cells=%d n=%d ids=%d offsets=%d", ix.Cells(), ix.N, len(ix.IDs), len(ix.Offsets))
	}
	seen := make([]bool, ix.N)
	for c := 0; c < ix.Cells(); c++ {
		cell := ix.IDs[ix.Offsets[c]:ix.Offsets[c+1]]
		for j, id := range cell {
			if id < 0 || id >= int64(ix.N) {
				t.Fatalf("cell %d holds out-of-range id %d", c, id)
			}
			if j > 0 && cell[j-1] >= id {
				t.Fatalf("cell %d postings not strictly ascending at %d", c, j)
			}
			if seen[id] {
				t.Fatalf("id %d appears in more than one cell", id)
			}
			seen[id] = true
		}
	}
	for id, ok := range seen {
		if !ok {
			t.Fatalf("id %d missing from the postings", id)
		}
	}
	if ix.RepsCRC != Fingerprint(reps) {
		t.Error("RepsCRC does not match the representations the index was built from")
	}
}

// TestBuildValidation covers the Build argument edges.
func TestBuildValidation(t *testing.T) {
	_, reps := testCorpus(t, 20, 4)
	if _, err := Build(reps, core.Cosine, BuildConfig{Cells: 21}); err == nil {
		t.Error("Build accepted more cells than rows")
	}
	if _, err := Build(reps, core.Cosine, BuildConfig{Cells: -1}); err == nil {
		t.Error("Build accepted negative cells")
	}
	if _, err := Build(mat.New(0, 4), core.Cosine, BuildConfig{}); err == nil {
		t.Error("Build accepted an empty matrix")
	}
	ix, err := Build(reps, core.Cosine, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Cells() != DefaultCells(20) {
		t.Errorf("default cells = %d, want %d", ix.Cells(), DefaultCells(20))
	}
	if DefaultCells(100_000) != 316 {
		t.Errorf("DefaultCells(100000) = %d, want 316", DefaultCells(100_000))
	}
	if DefaultCells(1) != 1 || DefaultCells(0) != 1 {
		t.Error("DefaultCells must clamp to at least 1")
	}
}

// TestFullProbeMatchesExact is the escape-hatch contract: with nprobe equal
// to the cell count the pruned pool is the whole corpus, so every query
// path returns gob-byte-identical answers to the exact scan — for TopK,
// TopKByVector, Whitespace and recommendations, under filters, at one and
// four workers, for both metrics.
func TestFullProbeMatchesExact(t *testing.T) {
	defer par.SetWorkers(4)
	c, reps := testCorpus(t, 120, 5)
	for _, metric := range []core.Metric{core.Cosine, core.Euclidean} {
		annIx, err := Build(reps, metric, BuildConfig{Cells: 8, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		exact := testIndex(t, c, reps, metric)
		pruned := testIndex(t, c, reps, metric)
		pruned.SetPruner(&Router{Index: annIx, NProbe: annIx.Cells()})
		filters := []core.Filter{{}, {Country: "US"}, {SIC2: 71, MinEmployees: 20}}
		for _, workers := range []int{1, 4} {
			par.SetWorkers(workers)
			for _, f := range filters {
				for _, k := range []int{1, 7, 30} {
					want, err := exact.TopK(13, k, f)
					if err != nil {
						t.Fatal(err)
					}
					got, err := pruned.TopK(13, k, f)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(gobBytes(t, want), gobBytes(t, got)) {
						t.Fatalf("metric=%v workers=%d k=%d filter=%+v: full-probe TopK differs from exact\nwant %v\ngot  %v",
							metric, workers, k, f, want, got)
					}
					wantWS, err := exact.Whitespace([]int{2, 9, 33}, k, f)
					if err != nil {
						t.Fatal(err)
					}
					gotWS, err := pruned.Whitespace([]int{2, 9, 33}, k, f)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(gobBytes(t, wantWS), gobBytes(t, gotWS)) {
						t.Fatalf("metric=%v workers=%d k=%d filter=%+v: full-probe Whitespace differs from exact",
							metric, workers, k, f)
					}
				}
				wantRec, err := exact.RecommendFromSimilar(4, 10, f)
				if err != nil {
					t.Fatal(err)
				}
				gotRec, err := pruned.RecommendFromSimilar(4, 10, f)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(gobBytes(t, wantRec), gobBytes(t, gotRec)) {
					t.Fatalf("metric=%v filter=%+v: full-probe recommendations differ from exact", metric, f)
				}
			}
		}
	}
}

// TestPrunedPartition1vs3GobIdentical is the sharded composition contract:
// per-partition pruned answers, merged under the core total orders, are
// gob-byte-identical to the unsharded pruned server — every shard routes
// through the same index, prunes to the same pool and scans only its owned
// slice of it.
func TestPrunedPartition1vs3GobIdentical(t *testing.T) {
	defer par.SetWorkers(4)
	c, reps := testCorpus(t, 90, 4)
	annIx, err := Build(reps, core.Cosine, BuildConfig{Cells: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	router := &Router{Index: annIx, NProbe: 2}
	const parts = 3
	newPruned := func(part int, sharded bool) *core.Index {
		ix := testIndex(t, c, reps, core.Cosine)
		if sharded {
			if err := ix.SetPartition(part, parts); err != nil {
				t.Fatal(err)
			}
		}
		ix.SetPruner(router)
		return ix
	}
	full := newPruned(0, false)
	filters := []core.Filter{{}, {Country: "DE"}}
	for _, workers := range []int{1, 4} {
		par.SetWorkers(workers)
		for _, f := range filters {
			for _, k := range []int{1, 5, 12} {
				want, err := full.TopK(7, k, f)
				if err != nil {
					t.Fatal(err)
				}
				perShard := make([][]core.Match, parts)
				for p := 0; p < parts; p++ {
					ms, err := newPruned(p, true).TopK(7, k, f)
					if err != nil {
						t.Fatal(err)
					}
					perShard[p] = ms
				}
				got := core.MergeTopK(perShard, k, core.MatchBetter)
				if !bytes.Equal(gobBytes(t, want), gobBytes(t, got)) {
					t.Fatalf("workers=%d k=%d filter=%+v: merged pruned partitions differ from unsharded pruned answer\nwant %v\ngot  %v",
						workers, k, f, want, got)
				}
			}
		}
		// Whitespace composes the same way.
		want, err := full.Whitespace([]int{1, 8}, 9, core.Filter{})
		if err != nil {
			t.Fatal(err)
		}
		perShard := make([][]core.WhitespaceProspect, parts)
		for p := 0; p < parts; p++ {
			ps, err := newPruned(p, true).Whitespace([]int{1, 8}, 9, core.Filter{})
			if err != nil {
				t.Fatal(err)
			}
			perShard[p] = ps
		}
		got := core.MergeTopK(perShard, 9, core.ProspectBetter)
		if !bytes.Equal(gobBytes(t, want), gobBytes(t, got)) {
			t.Fatalf("workers=%d: merged pruned whitespace partitions differ from unsharded", workers)
		}
	}
}

// TestRouterProbeSubset checks pruning actually prunes: with nprobe=1 the
// pool is one cell per query, and the self-exclusion and recall semantics
// still hold (results are a subset of the corpus ranked under MatchBetter).
func TestRouterProbeSubset(t *testing.T) {
	c, reps := testCorpus(t, 100, 4)
	annIx, err := Build(reps, core.Cosine, BuildConfig{Cells: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := &Router{Index: annIx, NProbe: 1}
	pool := r.Candidates([][]float64{reps.Row(0)})
	if len(pool) != 1 {
		t.Fatalf("nprobe=1 single query probed %d cells, want 1", len(pool))
	}
	if len(pool[0]) == 0 || len(pool[0]) == annIx.N {
		t.Fatalf("nprobe=1 pool holds %d of %d companies — expected a strict non-empty subset", len(pool[0]), annIx.N)
	}
	// The query's own cell is probed: row 0's nearest centroid cell must
	// contain company 0 for a self-similarity query to find its neighbors.
	var found bool
	for _, id := range pool[0] {
		if id == 0 {
			found = true
		}
	}
	if !found {
		t.Error("company 0's own cell was not the top probe for its own representation")
	}
	ix := testIndex(t, c, reps, core.Cosine)
	ix.SetPruner(r)
	ms, err := ix.TopK(0, 5, core.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("pruned TopK returned nothing")
	}
	for i := 1; i < len(ms); i++ {
		if core.MatchBetter(ms[i], ms[i-1]) {
			t.Fatal("pruned TopK not sorted under MatchBetter")
		}
	}
	// NProbe clamping: absurd values degrade to the full cell range.
	if got := (&Router{Index: annIx, NProbe: 10_000}).Info(); got.NProbe != annIx.Cells() {
		t.Errorf("NProbe not clamped down: %d", got.NProbe)
	}
	if got := (&Router{Index: annIx, NProbe: -3}).Info(); got.NProbe != 1 {
		t.Errorf("NProbe not clamped up: %d", got.NProbe)
	}
}

// TestRouterMultiQueryUnion checks the whitespace shape: the pool for
// several client vectors is the deduplicated union of each one's probes.
func TestRouterMultiQueryUnion(t *testing.T) {
	_, reps := testCorpus(t, 100, 4)
	annIx, err := Build(reps, core.Cosine, BuildConfig{Cells: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := &Router{Index: annIx, NProbe: 2}
	queries := [][]float64{reps.Row(0), reps.Row(50), reps.Row(99)}
	pool := r.Candidates(queries)
	if len(pool) < 2 || len(pool) > 6 {
		t.Fatalf("union of 3 queries x nprobe=2 probed %d cells, want within [2,6]", len(pool))
	}
	seen := map[int64]bool{}
	for _, cell := range pool {
		for j, id := range cell {
			if j > 0 && cell[j-1] >= id {
				t.Fatal("cell postings not strictly ascending")
			}
			if seen[id] {
				t.Fatalf("id %d duplicated across cells", id)
			}
			seen[id] = true
		}
	}
}
