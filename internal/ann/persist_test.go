package ann

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/snapshot"
)

// fixtureIndex trains the small deterministic index the committed testdata
// fixture was written from. Do not change its parameters without
// regenerating the fixture (ANN_REGEN_FIXTURES=1) and calling the format
// break out in the PR.
func fixtureIndex(t *testing.T) *Index {
	t.Helper()
	g := rng.New(5)
	reps := mat.New(40, 4)
	for i := range reps.Data {
		reps.Data[i] = g.Float64()
	}
	ix, err := Build(reps, core.Cosine, BuildConfig{Cells: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestSaveLoadRoundTrip pins the mmap contract: a loaded index is
// gob-byte-identical to the one saved (the mapped flag and frozen centroid
// backing are runtime state, not model state), routes identically, and its
// centroids reject writes while the mapping is live.
func TestSaveLoadRoundTrip(t *testing.T) {
	ix := fixtureIndex(t)
	path := filepath.Join(t.TempDir(), "index.ibsnap")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, closeFn, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Mapped() {
		t.Error("LoadFile index does not report Mapped")
	}
	if !loaded.Centroids.Frozen() {
		t.Error("mmap-backed centroids must be frozen (they may alias a PROT_READ mapping)")
	}
	if !bytes.Equal(gobBytes(t, ix), gobBytes(t, loaded)) {
		t.Fatal("loaded index is not gob-identical to the saved one")
	}
	// Routing through the mapping must equal routing through the heap copy.
	q := [][]float64{ix.Centroids.Row(2)}
	heapPool := (&Router{Index: ix, NProbe: 2}).Candidates(q)
	mapPool := (&Router{Index: loaded, NProbe: 2}).Candidates(q)
	if len(heapPool) != len(mapPool) {
		t.Fatalf("mmap router probed %d cells, heap router %d", len(mapPool), len(heapPool))
	}
	for i := range heapPool {
		if len(heapPool[i]) != len(mapPool[i]) {
			t.Fatal("mmap router pool differs from heap router pool")
		}
		for j := range heapPool[i] {
			if heapPool[i][j] != mapPool[i][j] {
				t.Fatal("mmap router pool differs from heap router pool")
			}
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("writing a frozen mmap-backed centroid matrix did not panic")
			}
		}()
		loaded.Centroids.Set(0, 0, 1)
	}()
	if err := closeFn(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestLoadFileRejectsCorruption checks the structural validation: a
// container whose postings cannot safely drive candidate ids into the scans
// must be refused at load, not crash a query later.
func TestLoadFileRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	save := func(name string, ix *Index) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := ix.SaveFile(p); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name   string
		mutate func(ix *Index)
	}{
		{"ids-not-ascending", func(ix *Index) {
			c := 0
			for ix.Offsets[c+1]-ix.Offsets[c] < 2 {
				c++
			}
			lo := ix.Offsets[c]
			ix.IDs[lo], ix.IDs[lo+1] = ix.IDs[lo+1], ix.IDs[lo]
		}},
		{"id-out-of-range", func(ix *Index) { ix.IDs[0] = int64(ix.N) }},
		{"negative-id", func(ix *Index) { ix.IDs[len(ix.IDs)-1] = -1 }},
		{"offsets-not-anchored", func(ix *Index) { ix.Offsets[0] = 1 }},
		{"bad-metric", func(ix *Index) { ix.Metric = core.Metric(99) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ix := fixtureIndex(t)
			tc.mutate(ix)
			p := save(tc.name+".ibsnap", ix)
			if _, _, err := LoadFile(p); err == nil {
				t.Fatal("LoadFile accepted a corrupt index")
			}
		})
	}
	// Wrong container kind.
	p := filepath.Join(dir, "wrong-kind.ibsnap")
	b := snapshot.NewBuilder("company-model")
	if err := b.AddSection(sectionMeta, make([]byte, metaLen)); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteFile(p); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadFile(p); err == nil {
		t.Fatal("LoadFile accepted a container of the wrong kind")
	}
	// Truncated meta section.
	p = filepath.Join(dir, "short-meta.ibsnap")
	b = snapshot.NewBuilder(Kind)
	if err := b.AddSection(sectionMeta, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteFile(p); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadFile(p); err == nil {
		t.Fatal("LoadFile accepted a truncated meta section")
	}
	// Missing file surfaces the mapping error.
	if _, _, err := LoadFile(filepath.Join(dir, "does-not-exist.ibsnap")); err == nil {
		t.Fatal("LoadFile invented an index for a missing file")
	}
}

// TestFingerprintDetectsChange pins the staleness check ibserve relies on:
// any change to the representations — shape or a single value — changes the
// fingerprint, and re-hashing the same matrix does not.
func TestFingerprintDetectsChange(t *testing.T) {
	g := rng.New(3)
	reps := mat.New(30, 4)
	for i := range reps.Data {
		reps.Data[i] = g.Float64()
	}
	fp := Fingerprint(reps)
	if Fingerprint(reps) != fp {
		t.Fatal("Fingerprint is not deterministic")
	}
	alt := reps.Clone()
	alt.Data[17] += 1e-12
	if Fingerprint(alt) == fp {
		t.Error("Fingerprint missed a single-value change")
	}
	if Fingerprint(mat.FromSlice(15, 8, reps.Data)) == fp {
		t.Error("Fingerprint missed a reshape of the same payload")
	}
}

// TestCompatFixture is the gate scripts/check_snapshot_compat.sh runs for
// the ANN container: the committed fixture must keep loading through
// today's reader, and today's deterministic trainer must still reproduce
// it byte-for-byte.
func TestCompatFixture(t *testing.T) {
	loaded, closeFn, err := LoadFile(filepath.Join("testdata", "index_v2.ibsnap"))
	if err != nil {
		t.Fatalf("committed ANN fixture no longer loads: %v", err)
	}
	defer closeFn()
	if loaded.Cells() != 5 || loaded.Dim() != 4 || loaded.N != 40 {
		t.Fatalf("fixture decoded to cells=%d dim=%d n=%d, want 5x4 over 40", loaded.Cells(), loaded.Dim(), loaded.N)
	}
	if !bytes.Equal(gobBytes(t, fixtureIndex(t)), gobBytes(t, loaded)) {
		t.Fatal("fixtureIndex no longer reproduces the committed fixture (training determinism broke?)")
	}
}

// TestRegenerateFixture rewrites the committed fixture when
// ANN_REGEN_FIXTURES=1 is set. Run only on a deliberate format or trainer
// change; commit the result.
func TestRegenerateFixture(t *testing.T) {
	if os.Getenv("ANN_REGEN_FIXTURES") != "1" {
		t.Skip("set ANN_REGEN_FIXTURES=1 to rewrite the testdata fixture")
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fixtureIndex(t).SaveFile(filepath.Join("testdata", "index_v2.ibsnap")); err != nil {
		t.Fatal(err)
	}
}
