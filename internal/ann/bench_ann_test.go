package ann

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/load"
	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/shadow"
)

// benchCorpus synthesizes n companies with clustered d-dimensional
// representations: companies concentrate around a few dozen topic-mixture
// modes the way LDA representations do, which is the structure the coarse
// router exploits. Uniform random vectors would understate recall.
func benchCorpus(tb testing.TB, n, d int) (*corpus.Corpus, *mat.Matrix) {
	tb.Helper()
	cat := corpus.DefaultCatalog()
	m := cat.Size()
	companies := make([]corpus.Company, n)
	for i := range companies {
		companies[i] = corpus.Company{
			ID: i, Name: fmt.Sprintf("co-%06d", i),
			Country: []string{"US", "DE", "GB", "FR"}[i%4], SIC2: 70 + i%8,
			Employees: 10 + i%5000, RevenueM: float64(1 + i%400),
			Acquisitions: []corpus.Acquisition{
				{Category: i % m, First: corpus.Month(i % 12)},
				{Category: (i*7 + 3) % m, First: corpus.Month(i%12 + 1)},
			},
		}
	}
	c := corpus.New(cat, companies)
	g := rng.New(17)
	const modes = 40
	centers := mat.New(modes, d)
	for i := range centers.Data {
		centers.Data[i] = g.Float64()
	}
	reps := mat.New(n, d)
	for i := 0; i < n; i++ {
		mode := centers.Row(g.Intn(modes))
		row := reps.Row(i)
		for j := range row {
			row[j] = mode[j] + 0.08*(g.Float64()-0.5)
		}
		mat.Normalize(row)
	}
	return c, reps
}

// bestOf times fn reps times and returns the fastest wall-clock seconds.
func bestOf(reps int, fn func()) float64 {
	best := 0.0
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		if sec := time.Since(start).Seconds(); i == 0 || sec < best {
			best = sec
		}
	}
	return best
}

// TestWriteANNBench measures the coarse router against the exact scan at 1k
// and 100k companies — recall@10 vs the exact answer, per-query scan
// latency, the fused-kernel speedup over the naive per-pair similarity, and
// a served-path comparison driven through the ibload harness — and records
// the result as JSON. Gated behind BENCH_ANN_OUT so the regular run stays
// fast; regenerate the committed BENCH_ann.json with
//
//	BENCH_ANN_OUT=$PWD/BENCH_ann.json go test ./internal/ann/ -run TestWriteANNBench -timeout 30m
func TestWriteANNBench(t *testing.T) {
	out := os.Getenv("BENCH_ANN_OUT")
	if out == "" {
		t.Skip("set BENCH_ANN_OUT to record the ANN benchmark")
	}
	const (
		dims   = 16
		k      = 10
		nprobe = 8
	)
	runs := []map[string]any{}
	for _, companies := range []int{1_000, 100_000} {
		c, reps := benchCorpus(t, companies, dims)
		exact, err := core.NewIndex(c, reps, core.Cosine)
		if err != nil {
			t.Fatal(err)
		}
		buildStart := time.Now()
		annIx, err := Build(reps, core.Cosine, BuildConfig{Seed: 23})
		if err != nil {
			t.Fatal(err)
		}
		buildSec := time.Since(buildStart).Seconds()
		pruned, err := core.NewIndex(c, reps, core.Cosine)
		if err != nil {
			t.Fatal(err)
		}
		router := &Router{Index: annIx, NProbe: nprobe}
		pruned.SetPruner(router)

		// Recall@10 and scan latency over a deterministic query sample.
		queries := 200
		if queries > companies {
			queries = companies
		}
		stride := companies / queries
		var hits, wanted, pool int
		for qi := 0; qi < queries; qi++ {
			id := qi * stride
			want, err := exact.TopK(id, k, core.Filter{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := pruned.TopK(id, k, core.Filter{})
			if err != nil {
				t.Fatal(err)
			}
			inExact := make(map[int]bool, len(want))
			for _, m := range want {
				inExact[m.CompanyID] = true
			}
			for _, m := range got {
				if inExact[m.CompanyID] {
					hits++
				}
			}
			wanted += len(want)
			for _, cell := range router.Candidates([][]float64{reps.Row(id)}) {
				pool += len(cell)
			}
		}
		recall := float64(hits) / float64(wanted)
		scanQueries := func(ix *core.Index) func() {
			return func() {
				for qi := 0; qi < queries; qi++ {
					if _, err := ix.TopK(qi*stride, k, core.Filter{}); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		exactSec := bestOf(3, scanQueries(exact)) / float64(queries)
		annSec := bestOf(3, scanQueries(pruned)) / float64(queries)

		// Fused-kernel speedup on the full exact scan: the pre-kernel hot
		// path recomputed the query norm for every row (mat.CosineSim per
		// pair); the Scorer hoists it and streams contiguous rows.
		q := reps.Row(0)
		sink := 0.0
		naiveSec := bestOf(5, func() {
			for i := 0; i < companies; i++ {
				sink += mat.CosineSim(q, reps.Row(i))
			}
		})
		dst := make([]float64, companies)
		sc := core.NewScorer(core.Cosine, q)
		blockedSec := bestOf(5, func() {
			sc.ScoreBlock(reps, 0, companies, dst)
			sink += dst[companies-1]
		})

		// Served-path comparison through the ibload harness: the same
		// similar-heavy closed-loop replay against an exact server and the
		// routed one. The ANN server runs with shadow sampling on (every
		// cache-missed query re-executed exactly off the critical path), so
		// the benchmark also records the *live* observed recall the shadow
		// pipeline reports — the serving-time counterpart of the offline
		// recall_at_10 above, measured through the same code path operators
		// scrape at /debug/recall.
		ibload := map[string]any{}
		for _, target := range []struct {
			label  string
			ix     *core.Index
			shadow bool
		}{{"exact", exact, false}, {"ann", pruned, true}} {
			cfg := serve.Config{}
			if target.shadow {
				cfg.Shadow = &shadow.Config{SampleN: 1, Seed: 41}
			}
			srv, err := serve.New(serve.Loaded{Index: target.ix}, nil, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			gen := load.NewGenerator(c, load.GenConfig{
				Seed: 31, Mix: load.Mix{Similar: 1}, FilterProb: -1,
			})
			report, err := load.Run(context.Background(), gen, load.Config{
				BaseURL: ts.URL, Concurrency: 4,
				Duration: 2 * time.Second, Warmup: 500 * time.Millisecond,
				Label: fmt.Sprintf("%s_%d", target.label, companies),
			})
			if err != nil {
				ts.Close()
				t.Fatal(err)
			}
			if report.Total.Errors > 0 {
				ts.Close()
				t.Fatalf("%s replay at %d companies: %d errors", target.label, companies, report.Total.Errors)
			}
			ibload[target.label+"_p50_ms"] = report.Total.P50MS
			ibload[target.label+"_p99_ms"] = report.Total.P99MS
			ibload[target.label+"_qps"] = report.Total.QPS
			if target.shadow {
				// Let the shadow worker drain: poll until the processed-sample
				// total stops moving, then scrape the live verdict.
				var prev uint64
				for i := 0; i < 50; i++ {
					rs, serr := load.ScrapeRecall(ts.URL, time.Second)
					if serr != nil {
						ts.Close()
						t.Fatal(serr)
					}
					if rs != nil && rs.Samples > 0 && rs.Samples == prev {
						ibload["ann_observed_recall"] = rs.ObservedRecall
						ibload["ann_shadow_samples"] = rs.Samples
						ibload["ann_shadow_dropped"] = rs.Dropped
						break
					}
					if rs != nil {
						prev = rs.Samples
					}
					time.Sleep(100 * time.Millisecond)
				}
			}
			ts.Close()
			srv.Close()
		}

		runs = append(runs, map[string]any{
			"companies":                    companies,
			"dims":                         dims,
			"cells":                        annIx.Cells(),
			"nprobe":                       nprobe,
			"k":                            k,
			"build_seconds":                buildSec,
			"recall_at_10":                 recall,
			"mean_candidate_fraction":      float64(pool) / float64(queries) / float64(companies),
			"exact_scan_seconds_per_query": exactSec,
			"ann_scan_seconds_per_query":   annSec,
			"scan_speedup":                 exactSec / annSec,
			"kernel_naive_seconds":         naiveSec,
			"kernel_blocked_seconds":       blockedSec,
			"kernel_speedup":               naiveSec / blockedSec,
			"ibload":                       ibload,
		})
		_ = sink
	}
	report := map[string]any{
		"benchmark": "coarse-routed ANN (k-means cells, exact re-rank) vs exact scan: " +
			"recall@10, per-query scan latency, fused-kernel speedup, served-path ibload replay",
		"cpu_cores":  runtime.NumCPU(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"runs":       runs,
		"note": "Representations are mode-clustered unit vectors (LDA-like structure); " +
			"recall@10 is the fraction of the exact top-10 the routed scan returns, " +
			"averaged over 200 self-similarity queries at nprobe=8 with sqrt(n) cells. " +
			"scan_speedup compares whole TopK calls (prune + exact re-rank vs full scan), " +
			"kernel_speedup isolates the fused scorer against per-pair mat.CosineSim " +
			"which recomputes the query norm every row. ibload rows replay a " +
			"similar-only closed loop (4 workers, 2s measured after 500ms warmup) " +
			"against in-process servers; p50/p99 in milliseconds. The ann server " +
			"additionally runs shadow sampling at 1-in-1, so ann_observed_recall is " +
			"the live /debug/recall verdict after the replay's samples drain — the " +
			"serving-time counterpart of recall_at_10. At 1k companies the " +
			"scan is already cheap and routing overhead can eat the win — the ANN path " +
			"pays off at 100k, which is the point of measuring before approximating.",
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		t.Logf("companies=%v cells=%v: recall@10=%.3f scan %.1fx kernel %.1fx",
			r["companies"], r["cells"], r["recall_at_10"], r["scan_speedup"], r["kernel_speedup"])
	}
}
