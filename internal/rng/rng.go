// Package rng provides a deterministic, splittable random number generator
// and the probability-distribution samplers the model substrates need:
// Gaussian, Gamma, Beta, Dirichlet, categorical/multinomial, multivariate
// normal and Wishart.
//
// Every model in this repository takes an explicit *rng.RNG so experiments
// are reproducible bit-for-bit from a seed.
package rng

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/mat"
)

// RNG is a deterministic pseudo-random generator. It wraps math/rand's
// distribution machinery around a xoshiro256** source whose full state is
// four uint64 words, so a generator can be checkpointed mid-stream with
// State and reconstructed bit-exactly with FromState (the property the
// trainers' checkpoint/resume paths rely on).
type RNG struct {
	r   *rand.Rand
	src *xoshiro
}

// xoshiro is the xoshiro256** generator (Blackman & Vigna 2018). It
// implements rand.Source64. The wrapping rand.Rand keeps no hidden state of
// its own for the methods this package exposes (rand.Rand only buffers for
// Read, which RNG never calls), so the four state words are the complete
// generator state.
type xoshiro struct {
	s [4]uint64
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

func (x *xoshiro) Uint64() uint64 {
	s := &x.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func (x *xoshiro) Int63() int64 { return int64(x.Uint64() >> 1) }

// Seed initializes the state from a 64-bit seed by running splitmix64, the
// initialization Vigna recommends; it never produces the all-zero state.
func (x *xoshiro) Seed(seed int64) {
	z := uint64(seed)
	for i := range x.s {
		z += 0x9e3779b97f4a7c15
		w := z
		w = (w ^ w>>30) * 0xbf58476d1ce4e5b9
		w = (w ^ w>>27) * 0x94d049bb133111eb
		x.s[i] = w ^ w>>31
	}
}

// New returns an RNG seeded with seed.
func New(seed int64) *RNG {
	src := &xoshiro{}
	src.Seed(seed)
	return &RNG{r: rand.New(src), src: src}
}

// State returns the generator's complete internal state. Restoring it with
// FromState yields a generator that continues the exact same stream.
func (g *RNG) State() [4]uint64 {
	return g.src.s
}

// FromState reconstructs a generator from a State snapshot. The all-zero
// state (a fixed point of xoshiro that State can never return) is rejected.
func FromState(s [4]uint64) (*RNG, error) {
	if s == ([4]uint64{}) {
		return nil, errAllZeroState
	}
	src := &xoshiro{s: s}
	return &RNG{r: rand.New(src), src: src}, nil
}

var errAllZeroState = errors.New("rng: all-zero state is not a valid xoshiro256** state")

// Split derives an independent child generator from the current stream.
// Use it to give sub-tasks (e.g. per-company generation) their own streams
// without consuming unbounded state from the parent.
func (g *RNG) Split() *RNG {
	return New(g.r.Int63())
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform int in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Norm returns a standard normal sample.
func (g *RNG) Norm() float64 { return g.r.NormFloat64() }

// Gaussian returns a normal sample with the given mean and standard deviation.
func (g *RNG) Gaussian(mean, std float64) float64 {
	return mean + std*g.r.NormFloat64()
}

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool { return g.r.Float64() < p }

// Exponential returns a sample from Exp(rate).
func (g *RNG) Exponential(rate float64) float64 {
	return g.r.ExpFloat64() / rate
}

// Gamma samples from Gamma(shape, 1) using the Marsaglia–Tsang method,
// with the Ahrens–Dieter boost for shape < 1. Multiply by a scale parameter
// for general Gamma(shape, scale).
func (g *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("rng: Gamma shape must be positive")
	}
	if shape < 1 {
		// boost: Gamma(a) = Gamma(a+1) * U^(1/a)
		u := g.r.Float64()
		for u == 0 {
			u = g.r.Float64()
		}
		return g.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := g.r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := g.r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Beta samples from Beta(a, b).
func (g *RNG) Beta(a, b float64) float64 {
	x := g.Gamma(a)
	y := g.Gamma(b)
	return x / (x + y)
}

// Dirichlet samples from Dirichlet(alpha) into a new slice.
func (g *RNG) Dirichlet(alpha []float64) []float64 {
	out := make([]float64, len(alpha))
	g.DirichletTo(out, alpha)
	return out
}

// DirichletTo samples from Dirichlet(alpha) into dst.
func (g *RNG) DirichletTo(dst, alpha []float64) {
	if len(dst) != len(alpha) {
		panic("rng: DirichletTo length mismatch")
	}
	var sum float64
	for i, a := range alpha {
		v := g.Gamma(a)
		dst[i] = v
		sum += v
	}
	if sum == 0 {
		// All gammas underflowed; fall back to uniform.
		u := 1 / float64(len(dst))
		for i := range dst {
			dst[i] = u
		}
		return
	}
	for i := range dst {
		dst[i] /= sum
	}
}

// SymmetricDirichlet samples a k-dimensional Dirichlet with concentration
// alpha on every component.
func (g *RNG) SymmetricDirichlet(k int, alpha float64) []float64 {
	a := make([]float64, k)
	for i := range a {
		a[i] = alpha
	}
	return g.Dirichlet(a)
}

// Categorical samples an index with probability proportional to weights[i].
// Weights must be non-negative with a positive sum.
func (g *RNG) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 || math.IsNaN(total) {
		panic("rng: Categorical weights must have positive sum")
	}
	u := g.r.Float64() * total
	var acc float64
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1 // floating-point slack
}

// Multinomial draws n samples from Categorical(weights) and returns counts.
func (g *RNG) Multinomial(n int, weights []float64) []int {
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[g.Categorical(weights)]++
	}
	return counts
}

// MVNormal samples from N(mean, cov) where covChol is the lower Cholesky
// factor of the covariance matrix: x = mean + L z.
func (g *RNG) MVNormal(mean []float64, covChol *mat.Matrix) []float64 {
	n := len(mean)
	if covChol.Rows != n || covChol.Cols != n {
		panic("rng: MVNormal dimension mismatch")
	}
	z := make([]float64, n)
	for i := range z {
		z[i] = g.r.NormFloat64()
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		row := covChol.Row(i)
		s := mean[i]
		for j := 0; j <= i; j++ {
			s += row[j] * z[j]
		}
		out[i] = s
	}
	return out
}

// Wishart samples from Wishart(df, scale) using the Bartlett decomposition.
// scaleChol is the lower Cholesky factor of the scale matrix; df must be at
// least the dimension. The returned matrix is symmetric positive definite
// (almost surely).
func (g *RNG) Wishart(df float64, scaleChol *mat.Matrix) *mat.Matrix {
	p := scaleChol.Rows
	if df < float64(p) {
		panic("rng: Wishart df must be >= dimension")
	}
	// Bartlett factor A: lower triangular, A_ii ~ sqrt(chi2(df-i)),
	// A_ij ~ N(0,1) for i > j.
	a := mat.New(p, p)
	for i := 0; i < p; i++ {
		a.Set(i, i, math.Sqrt(g.ChiSquared(df-float64(i))))
		for j := 0; j < i; j++ {
			a.Set(i, j, g.r.NormFloat64())
		}
	}
	la := mat.Mul(scaleChol, a)
	w := mat.Mul(la, la.Transpose())
	w.Symmetrize()
	return w
}

// ChiSquared samples from a chi-squared distribution with df degrees of
// freedom (df may be fractional).
func (g *RNG) ChiSquared(df float64) float64 {
	return 2 * g.Gamma(df/2)
}

// Poisson samples from Poisson(lambda) by inversion for small lambda and a
// normal approximation above 500 (adequate for workload generation).
func (g *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 500 {
		v := math.Round(g.Gaussian(lambda, math.Sqrt(lambda)))
		if v < 0 {
			return 0
		}
		return int(v)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= g.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Zipf returns a sampler of ranks in [0, n) following a Zipf distribution
// with exponent s >= 0 (s=0 is uniform). Used for popularity-skewed
// product selection in the data generator.
func (g *RNG) Zipf(n int, s float64) func() int {
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), s)
	}
	return func() int { return g.Categorical(weights) }
}
