package rng

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce same stream")
		}
	}
	c := New(43)
	same := true
	a2 := New(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestSplitIndependence(t *testing.T) {
	g := New(1)
	c1 := g.Split()
	c2 := g.Split()
	if c1.Float64() == c2.Float64() && c1.Float64() == c2.Float64() {
		t.Fatal("split children should differ")
	}
}

func TestGaussianMoments(t *testing.T) {
	g := New(7)
	n := 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := g.Gaussian(3, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Fatalf("mean = %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.1 {
		t.Fatalf("variance = %v, want ~4", variance)
	}
}

func TestGammaMoments(t *testing.T) {
	g := New(11)
	for _, shape := range []float64{0.5, 1, 2.5, 10} {
		n := 100000
		var sum, sumsq float64
		for i := 0; i < n; i++ {
			v := g.Gamma(shape)
			if v < 0 {
				t.Fatalf("negative gamma sample %v", v)
			}
			sum += v
			sumsq += v * v
		}
		mean := sum / float64(n)
		variance := sumsq/float64(n) - mean*mean
		if math.Abs(mean-shape) > 0.15*shape+0.05 {
			t.Fatalf("Gamma(%v) mean = %v", shape, mean)
		}
		if math.Abs(variance-shape) > 0.25*shape+0.1 {
			t.Fatalf("Gamma(%v) variance = %v", shape, variance)
		}
	}
}

func TestGammaPanicsOnNonPositiveShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Gamma(0)
}

func TestBetaRangeAndMean(t *testing.T) {
	g := New(13)
	var sum float64
	n := 50000
	for i := 0; i < n; i++ {
		v := g.Beta(2, 5)
		if v < 0 || v > 1 {
			t.Fatalf("Beta out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / float64(n); math.Abs(mean-2.0/7.0) > 0.01 {
		t.Fatalf("Beta(2,5) mean = %v, want %v", mean, 2.0/7.0)
	}
}

func TestDirichletSimplexProperty(t *testing.T) {
	g := New(17)
	f := func(seed int64) bool {
		k := 2 + int(seed%7+7)%7
		alpha := make([]float64, k)
		for i := range alpha {
			alpha[i] = 0.1 + g.Float64()*3
		}
		p := g.Dirichlet(alpha)
		var s float64
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			s += v
		}
		return math.Abs(s-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDirichletMean(t *testing.T) {
	g := New(19)
	alpha := []float64{1, 2, 7}
	sum := make([]float64, 3)
	n := 50000
	for i := 0; i < n; i++ {
		p := g.Dirichlet(alpha)
		for j, v := range p {
			sum[j] += v
		}
	}
	for j, a := range alpha {
		want := a / 10
		if got := sum[j] / float64(n); math.Abs(got-want) > 0.01 {
			t.Fatalf("Dirichlet mean[%d] = %v, want %v", j, got, want)
		}
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	g := New(23)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	n := 100000
	for i := 0; i < n; i++ {
		counts[g.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight category sampled %d times", counts[1])
	}
	if got := float64(counts[0]) / float64(n); math.Abs(got-0.25) > 0.01 {
		t.Fatalf("category 0 freq = %v, want 0.25", got)
	}
}

func TestCategoricalPanicsOnZeroSum(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Categorical([]float64{0, 0})
}

func TestMultinomialTotal(t *testing.T) {
	g := New(29)
	counts := g.Multinomial(1000, []float64{1, 2, 3})
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 1000 {
		t.Fatalf("Multinomial total = %d", total)
	}
}

func TestMVNormalMoments(t *testing.T) {
	g := New(31)
	// cov = [[4, 2], [2, 3]]
	cov := mat.FromSlice(2, 2, []float64{4, 2, 2, 3})
	l, err := mat.Cholesky(cov)
	if err != nil {
		t.Fatal(err)
	}
	mean := []float64{1, -2}
	n := 100000
	var m0, m1, c00, c01, c11 float64
	for i := 0; i < n; i++ {
		x := g.MVNormal(mean, l)
		m0 += x[0]
		m1 += x[1]
		d0, d1 := x[0]-1, x[1]+2
		c00 += d0 * d0
		c01 += d0 * d1
		c11 += d1 * d1
	}
	fn := float64(n)
	if math.Abs(m0/fn-1) > 0.05 || math.Abs(m1/fn+2) > 0.05 {
		t.Fatalf("MVN mean = (%v, %v)", m0/fn, m1/fn)
	}
	if math.Abs(c00/fn-4) > 0.15 || math.Abs(c01/fn-2) > 0.15 || math.Abs(c11/fn-3) > 0.15 {
		t.Fatalf("MVN cov = (%v, %v, %v)", c00/fn, c01/fn, c11/fn)
	}
}

func TestWishartMean(t *testing.T) {
	g := New(37)
	// E[Wishart(df, V)] = df * V
	v := mat.FromSlice(2, 2, []float64{1, 0.3, 0.3, 2})
	l, err := mat.Cholesky(v)
	if err != nil {
		t.Fatal(err)
	}
	df := 5.0
	n := 20000
	acc := mat.New(2, 2)
	for i := 0; i < n; i++ {
		w := g.Wishart(df, l)
		acc.AddInPlace(w)
		// SPD check on a few samples
		if i < 100 {
			if _, err := mat.Cholesky(w); err != nil {
				t.Fatalf("Wishart sample not SPD: %v", w)
			}
		}
	}
	acc.Scale(1 / float64(n))
	want := v.Clone()
	want.Scale(df)
	if !mat.Equal(acc, want, 0.15) {
		t.Fatalf("Wishart mean = %v, want %v", acc, want)
	}
}

func TestChiSquaredMean(t *testing.T) {
	g := New(41)
	df := 7.0
	var sum float64
	n := 50000
	for i := 0; i < n; i++ {
		sum += g.ChiSquared(df)
	}
	if mean := sum / float64(n); math.Abs(mean-df) > 0.15 {
		t.Fatalf("ChiSquared mean = %v, want %v", mean, df)
	}
}

func TestPoissonMean(t *testing.T) {
	g := New(43)
	for _, lambda := range []float64{0.5, 4, 30} {
		var sum float64
		n := 50000
		for i := 0; i < n; i++ {
			sum += float64(g.Poisson(lambda))
		}
		if mean := sum / float64(n); math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Fatalf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
	if New(1).Poisson(0) != 0 {
		t.Fatal("Poisson(0) should be 0")
	}
}

func TestZipfSkew(t *testing.T) {
	g := New(47)
	sample := g.Zipf(10, 1.2)
	counts := make([]int, 10)
	for i := 0; i < 50000; i++ {
		counts[sample()]++
	}
	if counts[0] <= counts[5] || counts[5] <= counts[9] {
		t.Fatalf("Zipf counts not decreasing: %v", counts)
	}
	// s=0 is uniform
	u := g.Zipf(4, 0)
	uc := make([]int, 4)
	for i := 0; i < 40000; i++ {
		uc[u()]++
	}
	for _, c := range uc {
		if math.Abs(float64(c)-10000) > 500 {
			t.Fatalf("Zipf(s=0) not uniform: %v", uc)
		}
	}
}

func TestPermAndShuffle(t *testing.T) {
	g := New(53)
	p := g.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad perm %v", p)
		}
		seen[v] = true
	}
	xs := []int{1, 2, 3, 4, 5}
	g.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 15 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestExponentialMean(t *testing.T) {
	g := New(59)
	var sum float64
	n := 50000
	for i := 0; i < n; i++ {
		sum += g.Exponential(2)
	}
	if mean := sum / float64(n); math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Exponential(2) mean = %v, want 0.5", mean)
	}
}

func TestStateRoundTrip(t *testing.T) {
	g := New(42)
	// Burn a mixed workload so the state is mid-stream, not fresh.
	for i := 0; i < 100; i++ {
		g.Float64()
		g.Norm()
		g.Intn(7 + i)
		g.Gamma(0.5 + float64(i))
	}
	st := g.State()
	h, err := FromState(st)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if a, b := g.Float64(), h.Float64(); a != b {
			t.Fatalf("stream diverged at %d: %v != %v", i, a, b)
		}
		if a, b := g.Norm(), h.Norm(); a != b {
			t.Fatalf("Norm diverged at %d: %v != %v", i, a, b)
		}
		if a, b := g.Intn(1000), h.Intn(1000); a != b {
			t.Fatalf("Intn diverged at %d: %d != %d", i, a, b)
		}
	}
}

func TestStateDoesNotAliasGenerator(t *testing.T) {
	g := New(1)
	st := g.State()
	g.Float64()
	if st == g.State() {
		t.Fatal("State snapshot should be decoupled from the live generator")
	}
}

func TestFromStateRejectsAllZero(t *testing.T) {
	if _, err := FromState([4]uint64{}); err == nil {
		t.Fatal("all-zero state must be rejected")
	}
}
