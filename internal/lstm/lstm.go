// Package lstm implements a recurrent language model with LSTM units from
// scratch: token embeddings, 1-3 stacked LSTM layers with dropout on the
// non-recurrent connections (Zaremba et al. 2014, the regularization the
// paper uses), a softmax output layer, and full backpropagation through time
// with Adam. It reproduces the paper's sequential model family: the grid of
// {1,2,3} layers x {10,100,200,300} nodes evaluated in Figure 1.
//
// The paper trained with TensorFlow; this is a dependency-free reimplementation
// of the same architecture sized for a 38-category vocabulary.
package lstm

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"

	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/snapshot"
)

// Snapshot container kinds for LSTM artifacts.
const (
	KindModel      = "lstm-model"
	KindCheckpoint = "lstm-checkpoint"
)

// Config parameterizes model construction and training.
type Config struct {
	V      int // vocabulary size (38 product categories in the paper)
	Layers int // 1..3 hidden LSTM layers
	Hidden int // nodes per layer == product embedding size

	Dropout   float64 // drop probability on non-recurrent connections
	Epochs    int     // paper: 14
	LearnRate float64 // Adam step size; 0 selects 3e-3
	ClipNorm  float64 // global gradient-norm clip; 0 selects 5
	InitScale float64 // uniform init range; 0 selects 0.08

	// Optimizer selects the training rule: "adam" (default) or "sgd", the
	// latter following the recipe of Zaremba et al. 2014 that the paper
	// cites — plain SGD with a constant learning rate that decays
	// geometrically after a warm period.
	Optimizer string
	// SGD schedule (used when Optimizer == "sgd"); zeros select the
	// Zaremba medium-model values: lr 1.0, decay 0.8 starting after
	// epoch 6.
	SGDLearnRate  float64
	SGDDecay      float64
	SGDDecayAfter int

	// Progress, when non-nil, is invoked after every epoch with the mean
	// per-token training NLL and token throughput. The hook never touches
	// the training RNG, so models are bit-identical with and without it.
	Progress obs.Progress

	// Checkpoint, when non-nil, receives a full snapshot of the parameters,
	// optimizer moments and RNG state every CheckpointEvery completed
	// epochs (and once more on context cancellation). The snapshot owns
	// its memory; the hook draws no random numbers, so checkpointed runs
	// train bit-identically to unhooked runs. A hook error aborts training.
	Checkpoint func(*Checkpoint) error
	// CheckpointEvery is the epoch interval between Checkpoint calls;
	// 0 disables periodic checkpoints (a cancellation checkpoint is still
	// written when Checkpoint is set).
	CheckpointEvery int
}

// ConfigState is the hookless, serializable part of Config that checkpoints
// embed, so Resume continues under exactly the schedule the run started
// with.
type ConfigState struct {
	V, Layers, Hidden              int
	Dropout                        float64
	Epochs                         int
	LearnRate, ClipNorm, InitScale float64
	Optimizer                      string
	SGDLearnRate, SGDDecay         float64
	SGDDecayAfter                  int
}

func (c *Config) state() ConfigState {
	return ConfigState{
		V: c.V, Layers: c.Layers, Hidden: c.Hidden,
		Dropout: c.Dropout, Epochs: c.Epochs,
		LearnRate: c.LearnRate, ClipNorm: c.ClipNorm, InitScale: c.InitScale,
		Optimizer: c.Optimizer, SGDLearnRate: c.SGDLearnRate,
		SGDDecay: c.SGDDecay, SGDDecayAfter: c.SGDDecayAfter,
	}
}

func (cs ConfigState) config() Config {
	return Config{
		V: cs.V, Layers: cs.Layers, Hidden: cs.Hidden,
		Dropout: cs.Dropout, Epochs: cs.Epochs,
		LearnRate: cs.LearnRate, ClipNorm: cs.ClipNorm, InitScale: cs.InitScale,
		Optimizer: cs.Optimizer, SGDLearnRate: cs.SGDLearnRate,
		SGDDecay: cs.SGDDecay, SGDDecayAfter: cs.SGDDecayAfter,
	}
}

func (c *Config) fillDefaults() {
	if c.LearnRate == 0 {
		c.LearnRate = 3e-3
	}
	if c.ClipNorm == 0 {
		c.ClipNorm = 5
	}
	if c.InitScale == 0 {
		c.InitScale = 0.08
	}
	if c.Epochs == 0 {
		c.Epochs = 14
	}
	if c.Optimizer == "" {
		c.Optimizer = "adam"
	}
	if c.SGDLearnRate == 0 {
		c.SGDLearnRate = 1
	}
	if c.SGDDecay == 0 {
		c.SGDDecay = 0.8
	}
	if c.SGDDecayAfter == 0 {
		c.SGDDecayAfter = 6
	}
}

func (c *Config) validate() error {
	if c.V < 1 {
		return fmt.Errorf("lstm: V must be positive, got %d", c.V)
	}
	if c.Layers < 1 || c.Layers > 3 {
		return fmt.Errorf("lstm: Layers must be 1..3, got %d", c.Layers)
	}
	if c.Hidden < 1 {
		return fmt.Errorf("lstm: Hidden must be positive, got %d", c.Hidden)
	}
	if c.Dropout < 0 || c.Dropout >= 1 {
		return fmt.Errorf("lstm: Dropout must be in [0,1), got %v", c.Dropout)
	}
	if c.Epochs < 1 {
		return fmt.Errorf("lstm: Epochs must be positive, got %d", c.Epochs)
	}
	if c.Optimizer != "adam" && c.Optimizer != "sgd" {
		return fmt.Errorf("lstm: Optimizer must be \"adam\" or \"sgd\", got %q", c.Optimizer)
	}
	if c.SGDLearnRate < 0 || c.SGDDecay <= 0 || c.SGDDecay > 1 {
		return fmt.Errorf("lstm: invalid SGD schedule (lr %v, decay %v)", c.SGDLearnRate, c.SGDDecay)
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("lstm: CheckpointEvery must be >= 0, got %d", c.CheckpointEvery)
	}
	return nil
}

// cell holds the parameters of one LSTM layer. Gate order in the stacked
// 4H dimension is (input, forget, candidate, output).
type cell struct {
	Wx *mat.Matrix // 4H x H: input weights
	Wh *mat.Matrix // 4H x H: recurrent weights
	B  []float64   // 4H
}

// Model is a trained LSTM language model.
type Model struct {
	V, Layers, Hidden int

	Emb   *mat.Matrix // (V+1) x H; row V is the begin-of-sequence token
	Cells []cell      // Layers entries
	Wo    *mat.Matrix // V x H output projection
	Bo    []float64   // V output bias
}

// bosToken is the embedding row index of the begin-of-sequence marker.
func (m *Model) bosToken() int { return m.V }

// newModel allocates parameters with uniform(-scale, +scale) init and
// forget-gate bias +1 (standard practice for stable early training).
func newModel(cfg Config, g *rng.RNG) *Model {
	h := cfg.Hidden
	m := &Model{V: cfg.V, Layers: cfg.Layers, Hidden: h}
	uniform := func(dst []float64) {
		for i := range dst {
			dst[i] = (2*g.Float64() - 1) * cfg.InitScale
		}
	}
	m.Emb = mat.New(cfg.V+1, h)
	uniform(m.Emb.Data)
	for l := 0; l < cfg.Layers; l++ {
		c := cell{Wx: mat.New(4*h, h), Wh: mat.New(4*h, h), B: make([]float64, 4*h)}
		uniform(c.Wx.Data)
		uniform(c.Wh.Data)
		for j := h; j < 2*h; j++ {
			c.B[j] = 1 // forget gate bias
		}
		m.Cells = append(m.Cells, c)
	}
	m.Wo = mat.New(cfg.V, h)
	uniform(m.Wo.Data)
	m.Bo = make([]float64, cfg.V)
	return m
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// State carries the recurrent activations between timesteps.
type State struct {
	H, C [][]float64 // per layer
}

// NewState returns the zero state.
func (m *Model) NewState() *State {
	s := &State{H: make([][]float64, m.Layers), C: make([][]float64, m.Layers)}
	for l := 0; l < m.Layers; l++ {
		s.H[l] = make([]float64, m.Hidden)
		s.C[l] = make([]float64, m.Hidden)
	}
	return s
}

// stepCache records the activations of one timestep of one layer, for BPTT.
type stepCache struct {
	x           []float64 // layer input (after dropout)
	i, f, gc, o []float64 // gate activations
	cPrev       []float64
	c           []float64
	tanhC       []float64
	h           []float64
}

// step advances one LSTM layer by one timestep. When cache is non-nil the
// activations are recorded for backprop.
func (m *Model) step(l int, x, hPrev, cPrev []float64, cache *stepCache) (h, c []float64) {
	hd := m.Hidden
	cellP := &m.Cells[l]
	pre := make([]float64, 4*hd)
	mat.MulVecTo(pre, cellP.Wx, x)
	tmp := make([]float64, 4*hd)
	mat.MulVecTo(tmp, cellP.Wh, hPrev)
	for j := range pre {
		pre[j] += tmp[j] + cellP.B[j]
	}
	i := make([]float64, hd)
	f := make([]float64, hd)
	gc := make([]float64, hd)
	o := make([]float64, hd)
	c = make([]float64, hd)
	h = make([]float64, hd)
	tanhC := make([]float64, hd)
	for j := 0; j < hd; j++ {
		i[j] = sigmoid(pre[j])
		f[j] = sigmoid(pre[hd+j])
		gc[j] = math.Tanh(pre[2*hd+j])
		o[j] = sigmoid(pre[3*hd+j])
		c[j] = f[j]*cPrev[j] + i[j]*gc[j]
		tanhC[j] = math.Tanh(c[j])
		h[j] = o[j] * tanhC[j]
	}
	if cache != nil {
		cache.x = append([]float64(nil), x...)
		cache.i, cache.f, cache.gc, cache.o = i, f, gc, o
		cache.cPrev = append([]float64(nil), cPrev...)
		cache.c, cache.tanhC, cache.h = c, tanhC, h
	}
	return h, c
}

// Forward advances the full stack by one input token (embedding row index,
// which may be bosToken) and returns the top-layer hidden state. The state
// is updated in place. No dropout is applied (inference mode).
func (m *Model) Forward(token int, s *State) []float64 {
	x := m.Emb.Row(token)
	for l := 0; l < m.Layers; l++ {
		h, c := m.step(l, x, s.H[l], s.C[l], nil)
		s.H[l], s.C[l] = h, c
		x = h
	}
	return x
}

// Logits projects a top-layer hidden state to vocabulary scores.
func (m *Model) Logits(h []float64) []float64 {
	out := make([]float64, m.V)
	mat.MulVecTo(out, m.Wo, h)
	for j := range out {
		out[j] += m.Bo[j]
	}
	return out
}

// NextDist returns the next-product distribution after consuming history
// (earlier tokens first). An empty history conditions only on BOS.
func (m *Model) NextDist(history []int) []float64 {
	s := m.NewState()
	h := m.Forward(m.bosToken(), s)
	for _, tok := range history {
		if tok < 0 || tok >= m.V {
			panic(fmt.Sprintf("lstm: token %d outside vocabulary [0,%d)", tok, m.V))
		}
		h = m.Forward(tok, s)
	}
	logits := m.Logits(h)
	mat.Softmax(logits, logits)
	return logits
}

// Embed returns the top-layer hidden state after consuming the full history:
// the company embedding the paper derives from its RNN.
func (m *Model) Embed(history []int) []float64 {
	s := m.NewState()
	h := m.Forward(m.bosToken(), s)
	for _, tok := range history {
		h = m.Forward(tok, s)
	}
	return append([]float64(nil), h...)
}

// ProductEmbeddings returns the V x H learned product embedding matrix
// (excluding the BOS row).
func (m *Model) ProductEmbeddings() *mat.Matrix {
	out := mat.New(m.V, m.Hidden)
	copy(out.Data, m.Emb.Data[:m.V*m.Hidden])
	return out
}

// Perplexity computes the average per-token perplexity over the sequences,
// teacher-forcing each next-token prediction (inference mode, no dropout).
func (m *Model) Perplexity(seqs [][]int) float64 {
	var logSum float64
	var n int
	for _, seq := range seqs {
		if len(seq) == 0 {
			continue
		}
		s := m.NewState()
		h := m.Forward(m.bosToken(), s)
		for _, tok := range seq {
			logits := m.Logits(h)
			lse := mat.LogSumExp(logits)
			logSum += logits[tok] - lse
			n++
			h = m.Forward(tok, s)
		}
	}
	if n == 0 {
		return math.Inf(1)
	}
	return math.Exp(-logSum / float64(n))
}

// ParameterCount returns the number of trainable parameters.
func (m *Model) ParameterCount() int {
	n := len(m.Emb.Data) + len(m.Wo.Data) + len(m.Bo)
	for _, c := range m.Cells {
		n += len(c.Wx.Data) + len(c.Wh.Data) + len(c.B)
	}
	return n
}

type gobCell struct {
	Wx, Wh []float64
	B      []float64
}

type gobModel struct {
	V, Layers, Hidden int
	Emb               []float64
	Cells             []gobCell
	Wo                []float64
	Bo                []float64
}

// gobView builds the serialized form. The slices alias the live model;
// callers that outlive the model's next mutation must deep-copy.
func (m *Model) gobView() gobModel {
	g := gobModel{
		V: m.V, Layers: m.Layers, Hidden: m.Hidden,
		Emb: m.Emb.Data, Wo: m.Wo.Data, Bo: m.Bo,
	}
	for _, c := range m.Cells {
		g.Cells = append(g.Cells, gobCell{Wx: c.Wx.Data, Wh: c.Wh.Data, B: c.B})
	}
	return g
}

// gobCopy is gobView with every tensor deep-copied, for checkpoints taken
// while training continues to mutate the parameters.
func (m *Model) gobCopy() gobModel {
	g := m.gobView()
	g.Emb = append([]float64(nil), g.Emb...)
	g.Wo = append([]float64(nil), g.Wo...)
	g.Bo = append([]float64(nil), g.Bo...)
	for i := range g.Cells {
		g.Cells[i].Wx = append([]float64(nil), g.Cells[i].Wx...)
		g.Cells[i].Wh = append([]float64(nil), g.Cells[i].Wh...)
		g.Cells[i].B = append([]float64(nil), g.Cells[i].B...)
	}
	return g
}

// model validates tensor shapes and reassembles a Model.
func (g *gobModel) model() (*Model, error) {
	if g.V < 1 || g.Hidden < 1 || g.Layers != len(g.Cells) {
		return nil, fmt.Errorf("lstm: corrupt model header")
	}
	h := g.Hidden
	if len(g.Emb) != (g.V+1)*h || len(g.Wo) != g.V*h || len(g.Bo) != g.V {
		return nil, fmt.Errorf("lstm: corrupt model tensors")
	}
	m := &Model{
		V: g.V, Layers: g.Layers, Hidden: h,
		Emb: mat.FromSlice(g.V+1, h, g.Emb),
		Wo:  mat.FromSlice(g.V, h, g.Wo),
		Bo:  g.Bo,
	}
	for _, c := range g.Cells {
		if len(c.Wx) != 4*h*h || len(c.Wh) != 4*h*h || len(c.B) != 4*h {
			return nil, fmt.Errorf("lstm: corrupt cell tensors")
		}
		m.Cells = append(m.Cells, cell{
			Wx: mat.FromSlice(4*h, h, c.Wx),
			Wh: mat.FromSlice(4*h, h, c.Wh),
			B:  c.B,
		})
	}
	return m, nil
}

// Save serializes the model into a checksummed snapshot container of kind
// KindModel.
func (m *Model) Save(w io.Writer) error {
	return snapshot.Write(w, KindModel, func(w io.Writer) error {
		return gob.NewEncoder(w).Encode(m.gobView())
	})
}

// Load deserializes a model written by Save. Truncated, bit-flipped and
// wrong-kind files fail the container's integrity checks before any gob
// decoding runs.
func Load(r io.Reader) (*Model, error) {
	var g gobModel
	if err := snapshot.Read(r, KindModel, func(r io.Reader) error {
		return gob.NewDecoder(r).Decode(&g)
	}); err != nil {
		return nil, fmt.Errorf("lstm: loading model: %w", err)
	}
	return g.model()
}
