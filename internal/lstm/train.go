package lstm

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/trace"
)

var (
	trainEpochs = obs.Default().Counter("lstm_train_epochs_total",
		"training epochs completed across all LSTM runs")
	trainTokens = obs.Default().Counter("lstm_train_tokens_total",
		"tokens processed by BPTT across all LSTM runs")
)

// TrainStats records the learning curve of one training run.
type TrainStats struct {
	TrainLoss  []float64 // mean per-token NLL per epoch
	ValidPerpl []float64 // validation perplexity per epoch (empty without valid set)
}

// adam holds Adam moments for one parameter slice.
type adam struct {
	m, v []float64
}

func newAdam(n int) *adam { return &adam{m: make([]float64, n), v: make([]float64, n)} }

// sgdStep applies param -= lr * grad.
func sgdStep(param, grad []float64, lr float64) {
	for i, g := range grad {
		if g != 0 {
			param[i] -= lr * g
		}
	}
}

func (a *adam) update(param, grad []float64, lr float64, step int) {
	const (
		beta1 = 0.9
		beta2 = 0.999
		eps   = 1e-8
	)
	bc1 := 1 - math.Pow(beta1, float64(step))
	bc2 := 1 - math.Pow(beta2, float64(step))
	for i, g := range grad {
		if g == 0 {
			// Still decay moments for touched-but-zero grads is unnecessary;
			// skipping keeps sparse embedding updates cheap and is the
			// standard "lazy Adam" treatment.
			continue
		}
		a.m[i] = beta1*a.m[i] + (1-beta1)*g
		a.v[i] = beta2*a.v[i] + (1-beta2)*g*g
		param[i] -= lr * (a.m[i] / bc1) / (math.Sqrt(a.v[i]/bc2) + eps)
	}
}

// grads mirrors the model's parameter tensors.
type grads struct {
	emb   []float64
	cells []struct {
		wx, wh, b []float64
	}
	wo, bo []float64
}

func newGrads(m *Model) *grads {
	g := &grads{
		emb: make([]float64, len(m.Emb.Data)),
		wo:  make([]float64, len(m.Wo.Data)),
		bo:  make([]float64, len(m.Bo)),
	}
	for range m.Cells {
		g.cells = append(g.cells, struct{ wx, wh, b []float64 }{})
	}
	for l, c := range m.Cells {
		g.cells[l].wx = make([]float64, len(c.Wx.Data))
		g.cells[l].wh = make([]float64, len(c.Wh.Data))
		g.cells[l].b = make([]float64, len(c.B))
	}
	return g
}

func (g *grads) zero() {
	zero := func(xs []float64) {
		for i := range xs {
			xs[i] = 0
		}
	}
	zero(g.emb)
	zero(g.wo)
	zero(g.bo)
	for l := range g.cells {
		zero(g.cells[l].wx)
		zero(g.cells[l].wh)
		zero(g.cells[l].b)
	}
}

// globalNorm returns the L2 norm over all gradient tensors.
func (g *grads) globalNorm() float64 {
	var s float64
	add := func(xs []float64) {
		for _, v := range xs {
			s += v * v
		}
	}
	add(g.emb)
	add(g.wo)
	add(g.bo)
	for l := range g.cells {
		add(g.cells[l].wx)
		add(g.cells[l].wh)
		add(g.cells[l].b)
	}
	return math.Sqrt(s)
}

func (g *grads) scale(f float64) {
	sc := func(xs []float64) {
		for i := range xs {
			xs[i] *= f
		}
	}
	sc(g.emb)
	sc(g.wo)
	sc(g.bo)
	for l := range g.cells {
		sc(g.cells[l].wx)
		sc(g.cells[l].wh)
		sc(g.cells[l].b)
	}
}

// validateSeqs range-checks every token against the vocabulary and requires
// a non-empty training corpus.
func validateSeqs(v int, train, valid [][]int) error {
	var nTokens int
	for si, seq := range train {
		for _, tok := range seq {
			if tok < 0 || tok >= v {
				return fmt.Errorf("lstm: train sequence %d token %d outside [0,%d)", si, tok, v)
			}
		}
		nTokens += len(seq)
	}
	if nTokens == 0 {
		return fmt.Errorf("lstm: training corpus has no tokens")
	}
	for si, seq := range valid {
		for _, tok := range seq {
			if tok < 0 || tok >= v {
				return fmt.Errorf("lstm: valid sequence %d token %d outside [0,%d)", si, tok, v)
			}
		}
	}
	return nil
}

// optimizer holds the per-tensor Adam moments, keyed by tensor name
// ("emb", "wo", "bo", "wx<l>", "wh<l>", "b<l>").
type optimizer map[string]*adam

func newOptimizer(m *Model) optimizer {
	opt := optimizer{
		"emb": newAdam(len(m.Emb.Data)),
		"wo":  newAdam(len(m.Wo.Data)),
		"bo":  newAdam(len(m.Bo)),
	}
	for l, c := range m.Cells {
		opt[fmt.Sprintf("wx%d", l)] = newAdam(len(c.Wx.Data))
		opt[fmt.Sprintf("wh%d", l)] = newAdam(len(c.Wh.Data))
		opt[fmt.Sprintf("b%d", l)] = newAdam(len(c.B))
	}
	return opt
}

// Train fits an LSTM language model on the training sequences. When valid is
// non-empty, validation perplexity is recorded after each epoch (the paper
// holds out 10% for parameter validation). Sequences are processed one at a
// time (the corpus sequences are at most M=38 tokens long), with Adam
// updates per sequence and global-norm gradient clipping.
func Train(cfg Config, train, valid [][]int, g *rng.RNG) (*Model, TrainStats, error) {
	return TrainContext(context.Background(), cfg, train, valid, g)
}

// TrainContext is Train with cooperative cancellation: ctx is checked at
// every epoch boundary, and on cancellation a final checkpoint is handed to
// cfg.Checkpoint (when set) before returning an error wrapping ctx.Err().
func TrainContext(ctx context.Context, cfg Config, train, valid [][]int, g *rng.RNG) (*Model, TrainStats, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, TrainStats{}, err
	}
	if err := validateSeqs(cfg.V, train, valid); err != nil {
		return nil, TrainStats{}, err
	}
	model := newModel(cfg, g)
	return trainLoop(ctx, cfg, model, newOptimizer(model), 0, 0, TrainStats{}, train, valid, g)
}

// Resume continues an interrupted run from a checkpoint. train and valid
// must be the same sequences the original call received; hooks supplies
// Progress/Checkpoint/CheckpointEvery for the continued run while the
// training schedule comes from the checkpoint. A resumed run draws the same
// random stream as the uninterrupted one, so the final model is
// bit-identical.
func Resume(ctx context.Context, ck *Checkpoint, train, valid [][]int, hooks Config) (*Model, TrainStats, error) {
	cfg := ck.Cfg.config()
	cfg.Progress = hooks.Progress
	cfg.Checkpoint = hooks.Checkpoint
	cfg.CheckpointEvery = hooks.CheckpointEvery
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, TrainStats{}, fmt.Errorf("lstm: checkpoint carries invalid config: %w", err)
	}
	if err := ck.validate(); err != nil {
		return nil, TrainStats{}, err
	}
	if err := validateSeqs(cfg.V, train, valid); err != nil {
		return nil, TrainStats{}, err
	}
	model, err := ck.Params.model()
	if err != nil {
		return nil, TrainStats{}, err
	}
	opt := newOptimizer(model)
	if cfg.Optimizer == "adam" {
		if err := opt.restore(ck.Adam); err != nil {
			return nil, TrainStats{}, err
		}
	}
	g, err := rng.FromState(ck.RNG)
	if err != nil {
		return nil, TrainStats{}, fmt.Errorf("lstm: checkpoint RNG state: %w", err)
	}
	stats := TrainStats{
		TrainLoss:  append([]float64(nil), ck.TrainLoss...),
		ValidPerpl: append([]float64(nil), ck.ValidPerpl...),
	}
	return trainLoop(ctx, cfg, model, opt, ck.Epoch, ck.Step, stats, train, valid, g)
}

// trainLoop runs epochs startEpoch..Epochs-1 over the model in place.
func trainLoop(ctx context.Context, cfg Config, model *Model, opt optimizer, startEpoch, startStep int, stats TrainStats, train, valid [][]int, g *rng.RNG) (*Model, TrainStats, error) {
	gr := newGrads(model)

	sp := obs.Start("lstm.train")
	// Each epoch (and each checkpoint write) becomes a child span when ctx
	// carries an active trace; spans never touch model state or the RNG
	// stream, so traced and untraced runs are bit-identical.
	traced := trace.FromContext(ctx) != nil
	checkpoint := func(ck *Checkpoint) error {
		var csp *trace.Span
		if traced {
			_, csp = trace.Start(ctx, "lstm.train.checkpoint")
			csp.AttrInt("epoch", int64(ck.Epoch))
		}
		err := cfg.Checkpoint(ck)
		if err != nil {
			csp.Error(err)
		}
		csp.End()
		return err
	}
	order := make([]int, len(train))
	for i := range order {
		order[i] = i
	}
	step := startStep
	for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			if cfg.Checkpoint != nil {
				if cerr := checkpoint(snapshotState(&cfg, model, opt, epoch, step, stats, g)); cerr != nil {
					return nil, stats, fmt.Errorf("lstm: writing cancellation checkpoint: %w", cerr)
				}
			}
			return nil, stats, fmt.Errorf("lstm: training interrupted after epoch %d/%d: %w", epoch, cfg.Epochs, err)
		}
		var epsp *trace.Span
		if traced {
			_, epsp = trace.Start(ctx, "lstm.train.epoch")
			epsp.AttrInt("epoch", int64(epoch))
		}
		var epochStart time.Time
		if cfg.Progress != nil {
			epochStart = time.Now()
		}
		// SGD follows the Zaremba schedule: constant lr, geometric decay
		// after the warm period.
		sgdLR := cfg.SGDLearnRate
		if over := epoch - cfg.SGDDecayAfter; over > 0 {
			sgdLR *= math.Pow(cfg.SGDDecay, float64(over))
		}
		// Reset to the identity before shuffling so the visit order is a pure
		// function of the RNG state at the epoch boundary — required for
		// checkpoint resume to replay the identical sequence order.
		for i := range order {
			order[i] = i
		}
		g.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var lossSum float64
		var lossTokens int
		for _, si := range order {
			seq := train[si]
			if len(seq) == 0 {
				continue
			}
			gr.zero()
			loss := model.bptt(seq, cfg.Dropout, gr, g)
			lossSum += loss
			lossTokens += len(seq)
			if norm := gr.globalNorm(); norm > cfg.ClipNorm {
				gr.scale(cfg.ClipNorm / norm)
			}
			step++
			if cfg.Optimizer == "sgd" {
				sgdStep(model.Emb.Data, gr.emb, sgdLR)
				sgdStep(model.Wo.Data, gr.wo, sgdLR)
				sgdStep(model.Bo, gr.bo, sgdLR)
				for l := range model.Cells {
					sgdStep(model.Cells[l].Wx.Data, gr.cells[l].wx, sgdLR)
					sgdStep(model.Cells[l].Wh.Data, gr.cells[l].wh, sgdLR)
					sgdStep(model.Cells[l].B, gr.cells[l].b, sgdLR)
				}
			} else {
				opt["emb"].update(model.Emb.Data, gr.emb, cfg.LearnRate, step)
				opt["wo"].update(model.Wo.Data, gr.wo, cfg.LearnRate, step)
				opt["bo"].update(model.Bo, gr.bo, cfg.LearnRate, step)
				for l := range model.Cells {
					opt[fmt.Sprintf("wx%d", l)].update(model.Cells[l].Wx.Data, gr.cells[l].wx, cfg.LearnRate, step)
					opt[fmt.Sprintf("wh%d", l)].update(model.Cells[l].Wh.Data, gr.cells[l].wh, cfg.LearnRate, step)
					opt[fmt.Sprintf("b%d", l)].update(model.Cells[l].B, gr.cells[l].b, cfg.LearnRate, step)
				}
			}
		}
		if lossTokens > 0 {
			stats.TrainLoss = append(stats.TrainLoss, lossSum/float64(lossTokens))
		}
		if len(valid) > 0 {
			stats.ValidPerpl = append(stats.ValidPerpl, model.Perplexity(valid))
		}
		trainEpochs.Inc()
		trainTokens.Add(uint64(lossTokens))
		if cfg.Progress != nil {
			elapsed := time.Since(epochStart).Seconds()
			tps := math.Inf(1)
			if elapsed > 0 {
				tps = float64(lossTokens) / elapsed
			}
			meanNLL := math.NaN()
			if lossTokens > 0 {
				meanNLL = lossSum / float64(lossTokens)
			}
			cfg.Progress(obs.ProgressEvent{
				Model: "lstm", Iteration: epoch + 1, Total: cfg.Epochs,
				Loss: meanNLL, TokensPerSec: tps,
			})
		}
		epsp.End()
		if cfg.Checkpoint != nil && cfg.CheckpointEvery > 0 &&
			(epoch+1)%cfg.CheckpointEvery == 0 && epoch+1 < cfg.Epochs {
			if err := checkpoint(snapshotState(&cfg, model, opt, epoch+1, step, stats, g)); err != nil {
				return nil, stats, fmt.Errorf("lstm: checkpoint hook at epoch %d: %w", epoch+1, err)
			}
		}
	}
	sp.End()
	return model, stats, nil
}

// bptt runs one forward+backward pass over a sequence and accumulates
// gradients into gr, returning the total cross-entropy loss. Dropout with
// probability p is applied (inverted scaling) to non-recurrent connections:
// the input of every layer and the top hidden state before projection.
func (m *Model) bptt(seq []int, p float64, gr *grads, g *rng.RNG) float64 {
	hd := m.Hidden
	T := len(seq)
	L := m.Layers
	keep := 1 - p

	// Per-timestep inputs: BOS then seq[:T-1].
	inputs := make([]int, T)
	inputs[0] = m.bosToken()
	copy(inputs[1:], seq[:T-1])

	// Forward with caches.
	caches := make([][]stepCache, L) // [layer][time]
	inMasks := make([][][]float64, L)
	for l := 0; l < L; l++ {
		caches[l] = make([]stepCache, T)
		inMasks[l] = make([][]float64, T)
	}
	topMasks := make([][]float64, T)

	sampleMask := func() []float64 {
		if p == 0 {
			return nil
		}
		mask := make([]float64, hd)
		for j := range mask {
			if g.Float64() < keep {
				mask[j] = 1 / keep
			}
		}
		return mask
	}
	applyMask := func(x, mask []float64) []float64 {
		if mask == nil {
			return x
		}
		out := make([]float64, len(x))
		for j := range x {
			out[j] = x[j] * mask[j]
		}
		return out
	}

	h := make([][]float64, L)
	c := make([][]float64, L)
	for l := 0; l < L; l++ {
		h[l] = make([]float64, hd)
		c[l] = make([]float64, hd)
	}
	var loss float64
	dlogitsAll := make([][]float64, T)
	topH := make([][]float64, T) // dropped-out top hidden per timestep
	for t := 0; t < T; t++ {
		x := m.Emb.Row(inputs[t])
		for l := 0; l < L; l++ {
			inMasks[l][t] = sampleMask()
			xin := applyMask(x, inMasks[l][t])
			h[l], c[l] = m.step(l, xin, h[l], c[l], &caches[l][t])
			x = h[l]
		}
		topMasks[t] = sampleMask()
		ht := applyMask(x, topMasks[t])
		topH[t] = ht
		logits := m.Logits(ht)
		lse := mat.LogSumExp(logits)
		loss += lse - logits[seq[t]]
		// dlogits = softmax - onehot(target)
		dl := make([]float64, m.V)
		for j := range dl {
			dl[j] = math.Exp(logits[j] - lse)
		}
		dl[seq[t]] -= 1
		dlogitsAll[t] = dl
	}

	// Backward.
	dhNext := make([][]float64, L)
	dcNext := make([][]float64, L)
	for l := 0; l < L; l++ {
		dhNext[l] = make([]float64, hd)
		dcNext[l] = make([]float64, hd)
	}
	woMat := m.Wo
	dxBuf := make([]float64, hd)
	dpre := make([]float64, 4*hd)
	for t := T - 1; t >= 0; t-- {
		// output layer
		dl := dlogitsAll[t]
		for j := range dl {
			g0 := dl[j]
			wrow := gr.wo[j*hd : (j+1)*hd]
			for k := 0; k < hd; k++ {
				wrow[k] += g0 * topH[t][k]
			}
			gr.bo[j] += g0
		}
		// dh_top (through the output dropout mask)
		dhTop := make([]float64, hd)
		mat.MulVecTransTo(dhTop, woMat, dl)
		if topMasks[t] != nil {
			for k := 0; k < hd; k++ {
				dhTop[k] *= topMasks[t][k]
			}
		}
		// propagate down the stack
		dFromAbove := dhTop
		for l := L - 1; l >= 0; l-- {
			cc := &caches[l][t]
			dh := make([]float64, hd)
			for k := 0; k < hd; k++ {
				dh[k] = dFromAbove[k] + dhNext[l][k]
			}
			dc := dcNext[l]
			for k := 0; k < hd; k++ {
				tc := cc.tanhC[k]
				do := dh[k] * tc
				dck := dc[k] + dh[k]*cc.o[k]*(1-tc*tc)
				di := dck * cc.gc[k]
				dg := dck * cc.i[k]
				df := dck * cc.cPrev[k]
				dcPrev := dck * cc.f[k]
				dpre[k] = di * cc.i[k] * (1 - cc.i[k])
				dpre[hd+k] = df * cc.f[k] * (1 - cc.f[k])
				dpre[2*hd+k] = dg * (1 - cc.gc[k]*cc.gc[k])
				dpre[3*hd+k] = do * cc.o[k] * (1 - cc.o[k])
				dcNext[l][k] = dcPrev
			}
			// parameter grads
			cw := &gr.cells[l]
			hPrev := prevH(caches, l, t, hd)
			for j := 0; j < 4*hd; j++ {
				gj := dpre[j]
				if gj == 0 {
					continue
				}
				wxRow := cw.wx[j*hd : (j+1)*hd]
				whRow := cw.wh[j*hd : (j+1)*hd]
				for k := 0; k < hd; k++ {
					wxRow[k] += gj * cc.x[k]
					whRow[k] += gj * hPrev[k]
				}
				cw.b[j] += gj
			}
			// dx and dhPrev
			mat.MulVecTransTo(dxBuf, m.Cells[l].Wx, dpre)
			mat.MulVecTransTo(dhNext[l], m.Cells[l].Wh, dpre)
			// through the input dropout mask
			dx := append([]float64(nil), dxBuf...)
			if inMasks[l][t] != nil {
				for k := 0; k < hd; k++ {
					dx[k] *= inMasks[l][t][k]
				}
			}
			dFromAbove = dx
		}
		// embedding gradient
		row := gr.emb[inputs[t]*hd : (inputs[t]+1)*hd]
		for k := 0; k < hd; k++ {
			row[k] += dFromAbove[k]
		}
	}
	return loss
}

// prevH returns layer l's hidden state at time t-1 (zeros at t=0).
func prevH(caches [][]stepCache, l, t, hd int) []float64 {
	if t == 0 {
		return make([]float64, hd)
	}
	return caches[l][t-1].h
}
