package lstm

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{V: 0, Layers: 1, Hidden: 4},
		{V: 5, Layers: 0, Hidden: 4},
		{V: 5, Layers: 4, Hidden: 4},
		{V: 5, Layers: 1, Hidden: 0},
		{V: 5, Layers: 1, Hidden: 4, Dropout: 1},
		{V: 5, Layers: 1, Hidden: 4, Dropout: -0.5},
		{V: 5, Layers: 1, Hidden: 4, Epochs: -2},
	}
	for i, cfg := range bad {
		if _, _, err := Train(cfg, [][]int{{0, 1}}, nil, rng.New(1)); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
	if _, _, err := Train(Config{V: 3, Layers: 1, Hidden: 4}, [][]int{{0, 9}}, nil, rng.New(1)); err == nil {
		t.Fatal("bad train token accepted")
	}
	if _, _, err := Train(Config{V: 3, Layers: 1, Hidden: 4}, [][]int{{0, 1}}, [][]int{{7}}, rng.New(1)); err == nil {
		t.Fatal("bad valid token accepted")
	}
	if _, _, err := Train(Config{V: 3, Layers: 1, Hidden: 4}, [][]int{{}}, nil, rng.New(1)); err == nil {
		t.Fatal("empty corpus accepted")
	}
}

// numericalGradCheck compares BPTT gradients against centered finite
// differences on a tiny model. This is the strongest correctness check for
// a hand-written backward pass.
func TestGradientCheck(t *testing.T) {
	cfg := Config{V: 4, Layers: 2, Hidden: 3, Epochs: 1, InitScale: 0.3}
	cfg.fillDefaults()
	g := rng.New(7)
	m := newModel(cfg, g)
	seq := []int{1, 3, 0, 2, 2}

	gr := newGrads(m)
	gr.zero()
	m.bptt(seq, 0, gr, g)

	lossOf := func() float64 {
		gr2 := newGrads(m)
		return m.bptt(seq, 0, gr2, g)
	}
	const eps = 1e-6
	check := func(name string, params []float64, grads []float64) {
		for _, idx := range []int{0, len(params) / 3, len(params) - 1} {
			orig := params[idx]
			params[idx] = orig + eps
			lp := lossOf()
			params[idx] = orig - eps
			lm := lossOf()
			params[idx] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := grads[idx]
			denom := math.Max(1e-4, math.Abs(numeric)+math.Abs(analytic))
			if math.Abs(numeric-analytic)/denom > 2e-3 {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", name, idx, analytic, numeric)
			}
		}
	}
	check("emb", m.Emb.Data, gr.emb)
	check("wo", m.Wo.Data, gr.wo)
	check("bo", m.Bo, gr.bo)
	for l := 0; l < cfg.Layers; l++ {
		check("wx", m.Cells[l].Wx.Data, gr.cells[l].wx)
		check("wh", m.Cells[l].Wh.Data, gr.cells[l].wh)
		check("b", m.Cells[l].B, gr.cells[l].b)
	}
}

func TestLearnsDeterministicSequence(t *testing.T) {
	// All training sequences are 0,1,2,3. A working LSTM should drive
	// perplexity toward 1 and predict each next token confidently.
	seqs := make([][]int, 60)
	for i := range seqs {
		seqs[i] = []int{0, 1, 2, 3}
	}
	m, stats, err := Train(Config{V: 4, Layers: 1, Hidden: 12, Epochs: 10, LearnRate: 1e-2}, seqs, nil, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if p := m.Perplexity(seqs); p > 1.4 {
		t.Fatalf("perplexity = %v on deterministic data, want ~1", p)
	}
	d := m.NextDist([]int{0, 1})
	if mat.ArgMax(d) != 2 {
		t.Fatalf("after (0,1) the argmax should be 2, dist = %v", d)
	}
	// learning curve should improve
	first, last := stats.TrainLoss[0], stats.TrainLoss[len(stats.TrainLoss)-1]
	if last >= first {
		t.Fatalf("training loss did not decrease: %v -> %v", first, last)
	}
}

func TestCapturesOrderUnlikeUnigram(t *testing.T) {
	// Alternating 0,1,0,1 vs 1,0,1,0 — next token is fully determined by
	// the previous one.
	var seqs [][]int
	for i := 0; i < 40; i++ {
		seqs = append(seqs, []int{0, 1, 0, 1, 0, 1})
		seqs = append(seqs, []int{1, 0, 1, 0, 1, 0})
	}
	m, _, err := Train(Config{V: 2, Layers: 1, Hidden: 8, Epochs: 8, LearnRate: 1e-2}, seqs, nil, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	d0 := m.NextDist([]int{1, 0})
	d1 := m.NextDist([]int{0, 1})
	if d0[1] < 0.8 || d1[0] < 0.8 {
		t.Fatalf("alternation not learned: P(1|..0)=%v P(0|..1)=%v", d0[1], d1[0])
	}
}

func TestValidationCurveRecorded(t *testing.T) {
	seqs := [][]int{{0, 1, 2}, {2, 1, 0}, {0, 2, 1}}
	valid := [][]int{{0, 1, 2}}
	_, stats, err := Train(Config{V: 3, Layers: 1, Hidden: 4, Epochs: 3}, seqs, valid, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.ValidPerpl) != 3 {
		t.Fatalf("valid curve length = %d, want 3", len(stats.ValidPerpl))
	}
	for _, p := range stats.ValidPerpl {
		if p < 1 || math.IsNaN(p) {
			t.Fatalf("invalid perplexity %v", p)
		}
	}
}

func TestNextDistIsDistribution(t *testing.T) {
	seqs := [][]int{{0, 1, 2, 3, 4}, {4, 3, 2, 1, 0}}
	m, _, err := Train(Config{V: 5, Layers: 2, Hidden: 6, Epochs: 2}, seqs, nil, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	for _, hist := range [][]int{nil, {0}, {0, 1, 2}} {
		d := m.NextDist(hist)
		var s float64
		for _, p := range d {
			if p < 0 || p > 1 {
				t.Fatalf("bad probability %v", p)
			}
			s += p
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("NextDist(%v) sums to %v", hist, s)
		}
	}
}

func TestDropoutTrainingRuns(t *testing.T) {
	seqs := make([][]int, 30)
	for i := range seqs {
		seqs[i] = []int{0, 1, 2, 3}
	}
	m, _, err := Train(Config{V: 4, Layers: 2, Hidden: 8, Epochs: 4, Dropout: 0.3, LearnRate: 1e-2}, seqs, nil, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if p := m.Perplexity(seqs); p > 3 || math.IsNaN(p) {
		t.Fatalf("dropout training diverged: perplexity %v", p)
	}
}

func TestEmbedAndProductEmbeddings(t *testing.T) {
	seqs := [][]int{{0, 1, 2}, {2, 1, 0}}
	m, _, err := Train(Config{V: 3, Layers: 1, Hidden: 5, Epochs: 2}, seqs, nil, rng.New(15))
	if err != nil {
		t.Fatal(err)
	}
	e := m.Embed([]int{0, 1})
	if len(e) != 5 {
		t.Fatalf("Embed length = %d", len(e))
	}
	// must be a copy, not a view into state
	e[0] = 999
	e2 := m.Embed([]int{0, 1})
	if e2[0] == 999 {
		t.Fatal("Embed returned shared storage")
	}
	pe := m.ProductEmbeddings()
	if pe.Rows != 3 || pe.Cols != 5 {
		t.Fatalf("ProductEmbeddings shape %dx%d", pe.Rows, pe.Cols)
	}
	// deterministic histories give deterministic embeddings
	e3 := m.Embed([]int{0, 1})
	for i := range e2 {
		if e2[i] != e3[i] {
			t.Fatal("Embed not deterministic")
		}
	}
}

func TestPerplexityEdgeCases(t *testing.T) {
	m := newModel(Config{V: 3, Layers: 1, Hidden: 4, InitScale: 0.01, Epochs: 1, LearnRate: 1, ClipNorm: 1}, rng.New(17))
	if !math.IsInf(m.Perplexity(nil), 1) {
		t.Fatal("no-token perplexity should be +Inf")
	}
	// untrained near-zero weights => near-uniform => perplexity ~ V
	if p := m.Perplexity([][]int{{0, 1, 2}}); math.Abs(p-3) > 0.3 {
		t.Fatalf("untrained perplexity = %v, want ~3", p)
	}
}

func TestParameterCountDominatedByCells(t *testing.T) {
	cfg := Config{V: 38, Layers: 1, Hidden: 100, Epochs: 1}
	cfg.fillDefaults()
	m := newModel(cfg, rng.New(19))
	// The paper's lower bound: nc*(4nc+no) = 100*(400+100) = 50000.
	if m.ParameterCount() < 50000 {
		t.Fatalf("ParameterCount = %d, want >= 50000", m.ParameterCount())
	}
}

func TestDeterministicTraining(t *testing.T) {
	seqs := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}}
	m1, _, err := Train(Config{V: 3, Layers: 1, Hidden: 4, Epochs: 2}, seqs, nil, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := Train(Config{V: 3, Layers: 1, Hidden: 4, Epochs: 2}, seqs, nil, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(m1.Emb, m2.Emb, 0) || !mat.Equal(m1.Wo, m2.Wo, 0) {
		t.Fatal("training not deterministic under identical seeds")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	seqs := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}}
	m, _, err := Train(Config{V: 4, Layers: 2, Hidden: 6, Epochs: 2}, seqs, nil, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// identical predictions
	for _, hist := range [][]int{nil, {0}, {1, 2, 3}} {
		a, b := m.NextDist(hist), got.NextDist(hist)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-15 {
				t.Fatalf("loaded model predicts differently at %v", hist)
			}
		}
	}
	if _, err := Load(bytes.NewBufferString("junk")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestNextDistPanicsOnBadToken(t *testing.T) {
	m := newModel(Config{V: 3, Layers: 1, Hidden: 4, InitScale: 0.08, Epochs: 1, LearnRate: 1, ClipNorm: 5}, rng.New(25))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.NextDist([]int{5})
}
