package chaos

import (
	"context"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/obs"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
}

func counterValue(name string) uint64 { return obs.Default().Counter(name, "").Value() }

// TestDisabledPassthrough checks the zero config is a true no-op: the same
// handler value comes back and requests flow untouched.
func TestDisabledPassthrough(t *testing.T) {
	next := okHandler()
	if got := Middleware(Config{}, next); got == nil {
		t.Fatal("nil handler")
	} else if _, wrapped := got.(*injector); wrapped {
		t.Fatal("disabled config should return next unchanged, not wrap it")
	}
}

// TestErrorRateDeterministic pins the determinism contract: the same seed
// and arrival order produce the same injected-error pattern, and a 503 from
// the middleware never reaches the wrapped handler.
func TestErrorRateDeterministic(t *testing.T) {
	run := func(seed int64) []int {
		reached := 0
		h := Middleware(Config{Seed: seed, ErrorRate: 0.3},
			http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				reached++
				w.WriteHeader(http.StatusOK)
			}))
		codes := make([]int, 40)
		errs := 0
		for i := range codes {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/similar/1", nil))
			codes[i] = rec.Code
			if rec.Code == http.StatusServiceUnavailable {
				errs++
				if body := rec.Body.String(); body != "{\"error\":\"chaos: injected failure\"}\n" {
					t.Fatalf("injected error body = %q", body)
				}
			}
		}
		if reached+errs != len(codes) {
			t.Fatalf("handler reached %d + errors %d != %d requests", reached, errs, len(codes))
		}
		if errs == 0 || errs == len(codes) {
			t.Fatalf("error-rate 0.3 over %d requests injected %d errors — not a mix", len(codes), errs)
		}
		return codes
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, request %d: %d vs %d — decisions must replay", i, a[i], b[i])
		}
	}
}

// TestLatencyInjection checks injected delay is observable and counted.
func TestLatencyInjection(t *testing.T) {
	const delay = 30 * time.Millisecond
	h := Middleware(Config{Seed: 3, Latency: delay}, okHandler())
	before := counterValue("chaos_injected_delays_total")
	start := time.Now()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/similar/1", nil))
	if took := time.Since(start); took < delay {
		t.Fatalf("request took %s, want >= %s injected delay", took, delay)
	}
	if rec.Code != http.StatusOK {
		t.Fatalf("delayed request status %d, want 200", rec.Code)
	}
	if got := counterValue("chaos_injected_delays_total"); got != before+1 {
		t.Fatalf("chaos_injected_delays_total delta = %d, want 1", got-before)
	}
}

// TestBlackholeHangsUntilCancel checks a blackholed request writes nothing
// and returns only when the client context dies — the failure mode breakers
// and hedges must survive.
func TestBlackholeHangsUntilCancel(t *testing.T) {
	h := Middleware(Config{Blackhole: true}, okHandler())
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("GET", "/v1/similar/1", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		h.ServeHTTP(rec, req)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("blackholed request returned while the client was still waiting")
	case <-time.After(50 * time.Millisecond):
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("blackholed request did not return after client cancel")
	}
	if rec.Body.Len() != 0 {
		t.Fatalf("blackholed request wrote %q — must write nothing", rec.Body.String())
	}
}

// TestPathPrefixScopesFaults checks -chaos-path confines injection to the
// matching endpoint while others pass untouched.
func TestPathPrefixScopesFaults(t *testing.T) {
	h := Middleware(Config{Seed: 5, ErrorRate: 1, PathPrefix: "/v1/whitespace"}, okHandler())
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/similar/1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("non-matching path got %d, want 200", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "/v1/whitespace")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("matching path got %d, want injected 503", resp.StatusCode)
	}
}

// TestFlagsRoundTrip checks BindFlags parses into the middleware Config.
func TestFlagsRoundTrip(t *testing.T) {
	fs := flag.NewFlagSet("chaos-test", flag.ContinueOnError)
	f := BindFlags(fs)
	err := fs.Parse([]string{
		"-chaos-latency", "150ms", "-chaos-latency-prob", "0.4",
		"-chaos-error-rate", "0.1", "-chaos-seed", "42", "-chaos-path", "/v1",
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := f.Config()
	want := Config{Seed: 42, Latency: 150 * time.Millisecond, LatencyProb: 0.4,
		ErrorRate: 0.1, PathPrefix: "/v1"}
	if cfg != want {
		t.Fatalf("parsed config %+v, want %+v", cfg, want)
	}
	if !cfg.Enabled() {
		t.Fatal("parsed config should be enabled")
	}
	if s := cfg.String(); s == "" || s == "off" {
		t.Fatalf("String() = %q for an active config", s)
	}
	if (Config{}).String() != "off" {
		t.Fatal("zero config String() should be off")
	}
}
