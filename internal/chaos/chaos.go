// Package chaos is a deterministic, seeded fault-injection HTTP middleware:
// it wraps a handler and injects extra latency, 5xx errors, or full
// blackholes (requests that hang until the client gives up) according to a
// seeded RNG, so tests and drills can prove the serving stack's robustness
// mechanisms — hedged retries, circuit breakers, partial-result degradation
// — against repeatable faults instead of hoping production provides them.
//
// Determinism contract: decisions are drawn from one seeded stream in
// request-arrival order, so a sequential driver replays the exact same fault
// pattern run after run. (Under concurrent load the arrival order itself is
// scheduling-dependent; the per-request decision stream is still the same
// multiset.) Injections are counted on the shared obs registry
// (chaos_injected_delays_total, chaos_injected_errors_total,
// chaos_blackholed_total) so a chaos drill is observable next to the
// serving metrics it distorts.
package chaos

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
)

// Config parameterizes the injected faults. The zero Config injects nothing
// (Enabled reports false) and Middleware returns the handler unchanged.
type Config struct {
	// Seed drives the decision stream; the same seed and arrival order
	// reproduce the same faults. Default 1.
	Seed int64
	// Latency is the extra delay injected into a LatencyProb fraction of
	// requests (before the wrapped handler runs). Zero disables.
	Latency time.Duration
	// LatencyProb is the fraction of requests delayed; defaults to 1 when
	// Latency is set.
	LatencyProb float64
	// ErrorRate is the fraction of requests answered 503 without reaching
	// the wrapped handler.
	ErrorRate float64
	// Blackhole, when true, hangs every matching request until the client
	// disconnects (or the server shuts down) — no response bytes are ever
	// written. This is the "dead switch port" failure mode: the connection
	// opens but nothing comes back, so only client-side deadlines and
	// breakers can save the caller.
	Blackhole bool
	// PathPrefix restricts injection to request paths with this prefix
	// (e.g. "/v1/similar" to fault one endpoint); empty matches everything.
	PathPrefix string
}

// Enabled reports whether the config injects any fault.
func (c Config) Enabled() bool {
	return c.Latency > 0 || c.ErrorRate > 0 || c.Blackhole
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Latency > 0 && c.LatencyProb == 0 {
		c.LatencyProb = 1
	}
	return c
}

var (
	injectedDelays = obs.Default().Counter("chaos_injected_delays_total",
		"requests delayed by the chaos middleware")
	injectedErrors = obs.Default().Counter("chaos_injected_errors_total",
		"requests answered 503 by the chaos middleware")
	blackholed = obs.Default().Counter("chaos_blackholed_total",
		"requests hung by the chaos middleware until the client disconnected")
)

// injector is the middleware state: one seeded stream guarded by a mutex so
// decisions are drawn atomically in arrival order.
type injector struct {
	cfg  Config
	next http.Handler

	mu sync.Mutex
	g  *rng.RNG
}

// Middleware wraps next with fault injection per cfg. A config with nothing
// to inject returns next unchanged, so the disabled path costs nothing.
func Middleware(cfg Config, next http.Handler) http.Handler {
	if !cfg.Enabled() {
		return next
	}
	cfg = cfg.withDefaults()
	return &injector{cfg: cfg, next: next, g: rng.New(cfg.Seed)}
}

func (in *injector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if in.cfg.PathPrefix != "" && !strings.HasPrefix(r.URL.Path, in.cfg.PathPrefix) {
		in.next.ServeHTTP(w, r)
		return
	}
	if in.cfg.Blackhole {
		blackholed.Inc()
		// Hold the request open, never writing a byte: the handler returns
		// only when the client abandons the connection or the server exits.
		// The body must be drained first — the server detects a client
		// disconnect (and cancels r.Context()) through a background read it
		// only starts once the request body has been consumed.
		if r.Body != nil {
			_, _ = io.Copy(io.Discard, r.Body)
		}
		<-r.Context().Done()
		return
	}
	// Draw both decisions in a fixed order regardless of configuration, so
	// enabling one fault never shifts another's stream.
	in.mu.Lock()
	dropErr := in.g.Bernoulli(in.cfg.ErrorRate)
	delay := in.g.Bernoulli(in.cfg.LatencyProb) && in.cfg.Latency > 0
	in.mu.Unlock()
	if dropErr && in.cfg.ErrorRate > 0 {
		injectedErrors.Inc()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("{\"error\":\"chaos: injected failure\"}\n"))
		return
	}
	if delay {
		injectedDelays.Inc()
		select {
		case <-time.After(in.cfg.Latency):
		case <-r.Context().Done():
			return // client already gone; nothing to serve
		}
	}
	in.next.ServeHTTP(w, r)
}

// Flags is the chaos flag set the serving binaries expose.
type Flags struct {
	Latency     time.Duration
	LatencyProb float64
	ErrorRate   float64
	Blackhole   bool
	Seed        int64
	Path        string
}

// BindFlags registers the -chaos-* flags on fs and returns the destination
// struct (read after fs.Parse).
func BindFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.DurationVar(&f.Latency, "chaos-latency", 0,
		"inject this extra delay into a -chaos-latency-prob fraction of requests (0 disables)")
	fs.Float64Var(&f.LatencyProb, "chaos-latency-prob", 0,
		"fraction of requests delayed by -chaos-latency (default 1 when a latency is set)")
	fs.Float64Var(&f.ErrorRate, "chaos-error-rate", 0,
		"fraction of requests answered 503 before reaching the handler")
	fs.BoolVar(&f.Blackhole, "chaos-blackhole", false,
		"hang every request without responding (simulates a dead but connectable backend)")
	fs.Int64Var(&f.Seed, "chaos-seed", 1, "fault-decision seed (same seed + arrival order replays the same faults)")
	fs.StringVar(&f.Path, "chaos-path", "",
		"inject faults only into request paths with this prefix (empty = all)")
	return f
}

// Config converts the parsed flags into a middleware Config.
func (f *Flags) Config() Config {
	return Config{
		Seed:        f.Seed,
		Latency:     f.Latency,
		LatencyProb: f.LatencyProb,
		ErrorRate:   f.ErrorRate,
		Blackhole:   f.Blackhole,
		PathPrefix:  f.Path,
	}
}

// String describes the active faults for startup logs.
func (c Config) String() string {
	if !c.Enabled() {
		return "off"
	}
	c = c.withDefaults()
	var parts []string
	if c.Blackhole {
		parts = append(parts, "blackhole")
	}
	if c.Latency > 0 {
		parts = append(parts, fmt.Sprintf("latency=%s@%.2g", c.Latency, c.LatencyProb))
	}
	if c.ErrorRate > 0 {
		parts = append(parts, fmt.Sprintf("errors=%.2g", c.ErrorRate))
	}
	if c.PathPrefix != "" {
		parts = append(parts, "path="+c.PathPrefix)
	}
	return strings.Join(parts, ",")
}
