package snapshot

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// benchRepSet is the gob shape of the v1-era company-representation payload:
// a sorted id column plus a dense row-major representation matrix. The v2
// container carries the same data as an id-index section and an
// 8-byte-aligned float64 blob.
type benchRepSet struct {
	IDs        []int64
	Rows, Cols int
	Data       []float64
}

func buildBenchFiles(t *testing.T, dir string, companies, dims int) (v1path, v2path string) {
	t.Helper()
	set := benchRepSet{
		IDs:  make([]int64, companies),
		Rows: companies, Cols: dims,
		Data: make([]float64, companies*dims),
	}
	for i := range set.IDs {
		set.IDs[i] = int64(i * 3) // sorted, gappy ids like a real corpus
	}
	for i := range set.Data {
		set.Data[i] = float64(i%977) / 977
	}

	v1path = filepath.Join(dir, fmt.Sprintf("reps_%d_v1.ibsnap", companies))
	if err := Atomic(v1path, func(w io.Writer) error {
		return Write(w, "bench-reps", func(pw io.Writer) error {
			return gob.NewEncoder(pw).Encode(&set)
		})
	}); err != nil {
		t.Fatal(err)
	}

	b := NewBuilder("bench-reps")
	if err := b.AddIDIndex("ids", set.IDs); err != nil {
		t.Fatal(err)
	}
	if err := b.AddFloat64("reps", set.Data); err != nil {
		t.Fatal(err)
	}
	v2path = filepath.Join(dir, fmt.Sprintf("reps_%d_v2.ibsnap", companies))
	if err := b.WriteFile(v2path); err != nil {
		t.Fatal(err)
	}
	return v1path, v2path
}

func loadBenchV1(path string) (*benchRepSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var set benchRepSet
	if err := Read(f, "bench-reps", func(pr io.Reader) error {
		return gob.NewDecoder(pr).Decode(&set)
	}); err != nil {
		return nil, err
	}
	return &set, nil
}

// vmRSSBytes reads the process resident set from /proc/self/status;
// -1 when the platform does not expose it.
func vmRSSBytes() int64 {
	raw, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return -1
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return -1
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return -1
		}
		return kb * 1024
	}
	return -1
}

func heapBytes() int64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// measureLoad times fn (best of reps) and records the heap and RSS growth the
// loaded artifact retains, via the hold func keeping it referenced across the
// post-load GC.
func measureLoad(t *testing.T, reps int, fn func() (hold func(), err error)) (bestSec float64, heapDelta, rssDelta int64) {
	t.Helper()
	for i := 0; i < reps; i++ {
		heap0, rss0 := heapBytes(), vmRSSBytes()
		start := time.Now()
		hold, err := fn()
		if err != nil {
			t.Fatal(err)
		}
		sec := time.Since(start).Seconds()
		heap1, rss1 := heapBytes(), vmRSSBytes()
		hold()
		if i == 0 || sec < bestSec {
			bestSec = sec
			heapDelta = heap1 - heap0
			if rss0 >= 0 && rss1 >= 0 {
				rssDelta = rss1 - rss0
			} else {
				rssDelta = -1
			}
		}
	}
	return bestSec, heapDelta, rssDelta
}

// TestWriteSnapshotBench measures v1-gob decode vs v2-mmap open for a
// company-representation snapshot at 1k and 100k companies and records the
// result as JSON. Gated behind BENCH_SNAPSHOT_OUT so the regular run stays
// fast; regenerate the committed BENCH_snapshot.json with
//
//	BENCH_SNAPSHOT_OUT=BENCH_snapshot.json go test ./internal/snapshot/ -run TestWriteSnapshotBench
func TestWriteSnapshotBench(t *testing.T) {
	out := os.Getenv("BENCH_SNAPSHOT_OUT")
	if out == "" {
		t.Skip("set BENCH_SNAPSHOT_OUT to record the snapshot benchmark")
	}
	const dims = 64
	dir := t.TempDir()
	sizes := []int{1_000, 100_000}
	runs := []map[string]any{}
	for _, companies := range sizes {
		v1path, v2path := buildBenchFiles(t, dir, companies, dims)
		v1info, err := os.Stat(v1path)
		if err != nil {
			t.Fatal(err)
		}
		v2info, err := os.Stat(v2path)
		if err != nil {
			t.Fatal(err)
		}

		var sink float64
		v1sec, v1heap, v1rss := measureLoad(t, 5, func() (func(), error) {
			set, err := loadBenchV1(v1path)
			if err != nil {
				return nil, err
			}
			return func() { sink += set.Data[0] }, nil
		})
		v2sec, v2heap, v2rss := measureLoad(t, 5, func() (func(), error) {
			f, err := Map(v2path, MapOptions{SkipSectionCRC: true})
			if err != nil {
				return nil, err
			}
			// The real loader aliases matrix rows straight at the mapping:
			// touch nothing but the section table, as ibserve's reload does.
			if _, err := f.Section("reps"); err != nil {
				return nil, err
			}
			return func() { f.Close() }, nil
		})
		// Sanity: v2 open must not scale with the payload the way decode does.
		if v2sec > v1sec && companies == sizes[len(sizes)-1] {
			t.Logf("warning: v2 mmap open (%.6fs) not faster than v1 decode (%.6fs) at %d companies", v2sec, v1sec, companies)
		}
		runs = append(runs, map[string]any{
			"companies":            companies,
			"dims":                 dims,
			"v1_file_bytes":        v1info.Size(),
			"v2_file_bytes":        v2info.Size(),
			"v1_gob_load_seconds":  v1sec,
			"v2_mmap_open_seconds": v2sec,
			"v1_heap_delta_bytes":  v1heap,
			"v2_heap_delta_bytes":  v2heap,
			"v1_rss_delta_bytes":   v1rss,
			"v2_rss_delta_bytes":   v2rss,
			"speedup":              v1sec / v2sec,
		})
		_ = sink
	}
	report := map[string]any{
		"benchmark": "IBSNAP model-container load: v1 gob decode vs v2 mmap zero-copy open, " +
			"company-representation snapshot (id index + row-major float64 matrix)",
		"cpu_cores":  runtime.NumCPU(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"runs":       runs,
		"note": "v1 must decode the whole gob payload into fresh heap before the first " +
			"query, so load time and heap growth scale with the corpus. v2 opens the " +
			"mapping and parses only the section table (O(sections)); matrix rows alias " +
			"the page cache, pages fault in lazily on first access, and per-section " +
			"CRCs verify on first use (skipped here to isolate open cost; ibserve " +
			"verifies lazily). rss_delta_bytes is -1 where /proc/self/status is " +
			"unavailable. Latencies are best-of-5; heap/rss deltas are from the best run " +
			"with a GC fence on both sides.",
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		t.Logf("companies=%v: v1 %.4fs vs v2 %.6fs (%.0fx), heap %v vs %v bytes",
			r["companies"], r["v1_gob_load_seconds"], r["v2_mmap_open_seconds"], r["speedup"],
			r["v1_heap_delta_bytes"], r["v2_heap_delta_bytes"])
	}
}
