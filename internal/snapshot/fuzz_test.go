package snapshot

import (
	"bytes"
	"io"
	"testing"
)

// FuzzRead feeds arbitrary bytes to the container reader: it must reject
// anything malformed with an error and never panic, and any accepted input
// must hand decode exactly the checksummed payload.
func FuzzRead(f *testing.F) {
	var valid bytes.Buffer
	if err := Write(&valid, "fuzz-model", func(w io.Writer) error {
		_, err := w.Write([]byte("seed payload bytes"))
		return err
	}); err != nil {
		f.Fatal(err)
	}
	b := valid.Bytes()
	f.Add(b)
	f.Add(b[:len(b)/2])     // truncated mid-payload
	f.Add(b[:9])            // truncated mid-header
	f.Add([]byte{})         // empty
	f.Add([]byte("IBSNAP")) // magic only
	flipped := append([]byte(nil), b...)
	flipped[len(flipped)-3] ^= 0x10
	f.Add(flipped) // bit-flipped payload
	hdrFlip := append([]byte(nil), b...)
	hdrFlip[8] ^= 0xff
	f.Add(hdrFlip) // mangled kind length

	f.Fuzz(func(t *testing.T, data []byte) {
		var got []byte
		err := Read(bytes.NewReader(data), "fuzz-model", func(r io.Reader) error {
			var derr error
			got, derr = io.ReadAll(r)
			return derr
		})
		if err == nil {
			// Accepted input must re-serialize to a container whose
			// payload round-trips.
			var rt bytes.Buffer
			if werr := Write(&rt, "fuzz-model", func(w io.Writer) error {
				_, e := w.Write(got)
				return e
			}); werr != nil {
				t.Fatalf("round-trip write failed: %v", werr)
			}
		}
		// ReadKind must likewise never panic.
		ReadKind(bytes.NewReader(data))
	})
}
