// IBSNAP format version 2: a flat, seekable binary container designed for
// mmap zero-copy loading of large models. Where a v1 container is one opaque
// checksummed payload (typically a gob stream, so loading is O(bytes) decode
// plus a heap-doubling copy), a v2 container is a section table over raw,
// 8-byte-aligned blobs: a loader parses the table — O(sections) — and points
// matrix rows directly at the mapped file, so a multi-GB model costs neither
// decode time nor Go heap.
//
// Layout (integers big-endian in the header/table, matching v1; blob
// payloads little-endian for zero-copy aliasing on little-endian hosts):
//
//	offset  size  field
//	0       6     magic "IBSNAP"
//	6       2     format version (2)
//	8       2     kind length n
//	10      n     kind (e.g. "lda-model")
//	10+n    4     section count S
//	...           S section entries:
//	                2  name length L
//	                L  name
//	                8  section offset (from file start)
//	                8  section length in bytes
//	                4  CRC-32C of the section bytes
//	...     4     CRC-32C of every byte above (the header checksum)
//	...           zero padding to the first 8-byte boundary
//	...           section payloads, each starting 8-byte aligned,
//	              zero padding between and after them
//
// Integrity policy: the header checksum is always verified on open, so a
// torn or bit-flipped table can never mis-direct a read. Per-section CRCs
// are verified by Section/Float64Section and friends on the first access of
// each section by default; Map callers that re-open a file they have already
// verified (a serving reload remapping the same bytes) can skip payload
// verification to keep a generation swap O(sections) — see MapOptions.
//
// Alignment: every section offset is a multiple of 8, and mmap returns
// page-aligned base addresses, so a float64 blob can be reinterpreted
// in place. Writers producing unaligned tables are rejected by the reader.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/obs"
)

// Version2 is the flat-container format version.
const Version2 = 2

// maxSections bounds the section count so a corrupt table cannot drive a
// huge allocation before the header checksum is verified.
const maxSections = 4096

var (
	mmapLoads = obs.Default().Counter("snapshot_mmap_loads_total",
		"v2 containers opened through the zero-copy mmap path")
	fallbackLoads = obs.Default().Counter("snapshot_map_fallback_loads_total",
		"v2 containers opened through the read-at fallback (no mmap available)")
	sectionVerifies = obs.Default().Counter("snapshot_section_verifies_total",
		"v2 sections whose CRC-32C was verified")
)

// Builder assembles a v2 container in memory. Sections keep insertion
// order; names must be unique and non-empty.
type Builder struct {
	kind     string
	names    map[string]bool
	sections []builderSection
}

type builderSection struct {
	name string
	data []byte
}

// NewBuilder starts a v2 container of the given kind (the same kind strings
// the v1 container uses, e.g. lda.KindModel).
func NewBuilder(kind string) *Builder {
	return &Builder{kind: kind, names: map[string]bool{}}
}

// AddSection appends a raw byte section. The builder aliases data; do not
// mutate it before Write.
func (b *Builder) AddSection(name string, data []byte) error {
	if name == "" || len(name) > maxKindLen {
		return fmt.Errorf("snapshot: invalid section name %q", name)
	}
	if b.names[name] {
		return fmt.Errorf("snapshot: duplicate section %q", name)
	}
	if len(b.sections) >= maxSections {
		return fmt.Errorf("snapshot: too many sections (max %d)", maxSections)
	}
	b.names[name] = true
	b.sections = append(b.sections, builderSection{name: name, data: data})
	return nil
}

// AddFloat64 appends vals as a little-endian float64 blob.
func (b *Builder) AddFloat64(name string, vals []float64) error {
	data := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(data[8*i:], math.Float64bits(v))
	}
	return b.AddSection(name, data)
}

// AddFloat32 appends vals as a little-endian float32 blob.
func (b *Builder) AddFloat32(name string, vals []float32) error {
	data := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(data[4*i:], math.Float32bits(v))
	}
	return b.AddSection(name, data)
}

// AddInt64 appends vals as a little-endian int64 blob.
func (b *Builder) AddInt64(name string, vals []int64) error {
	data := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(data[8*i:], uint64(v))
	}
	return b.AddSection(name, data)
}

// AddIDIndex appends a sorted id index section: the ids must be strictly
// increasing, so readers can map an id to its row (its position in the
// section) by binary search. This is the lookup structure for matrix blobs
// whose rows are keyed by company id.
func (b *Builder) AddIDIndex(name string, ids []int64) error {
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			return fmt.Errorf("snapshot: id index %q is not strictly increasing at position %d (%d after %d)",
				name, i, ids[i], ids[i-1])
		}
	}
	return b.AddInt64(name, ids)
}

// align8 rounds n up to the next multiple of 8.
func align8(n uint64) uint64 { return (n + 7) &^ 7 }

// Write emits the complete container. w must be positioned at what will be
// file offset 0 (section offsets are absolute).
func (b *Builder) Write(w io.Writer) error {
	if b.kind == "" || len(b.kind) > maxKindLen {
		return fmt.Errorf("snapshot: invalid kind %q", b.kind)
	}
	// Header + table first, so section offsets are known.
	var hdr bytes.Buffer
	hdr.Write(magic[:])
	var u16 [2]byte
	binary.BigEndian.PutUint16(u16[:], Version2)
	hdr.Write(u16[:])
	binary.BigEndian.PutUint16(u16[:], uint16(len(b.kind)))
	hdr.Write(u16[:])
	hdr.WriteString(b.kind)
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], uint32(len(b.sections)))
	hdr.Write(u32[:])

	// Table size is data-independent, so offsets can be computed up front.
	tableLen := 0
	for _, s := range b.sections {
		tableLen += 2 + len(s.name) + 8 + 8 + 4
	}
	// Sections start after header + table + header CRC, 8-byte aligned.
	off := align8(uint64(hdr.Len()+tableLen) + 4)
	offsets := make([]uint64, len(b.sections))
	for i, s := range b.sections {
		offsets[i] = off
		off = align8(off + uint64(len(s.data)))
	}
	for i, s := range b.sections {
		binary.BigEndian.PutUint16(u16[:], uint16(len(s.name)))
		hdr.Write(u16[:])
		hdr.WriteString(s.name)
		var u64 [8]byte
		binary.BigEndian.PutUint64(u64[:], offsets[i])
		hdr.Write(u64[:])
		binary.BigEndian.PutUint64(u64[:], uint64(len(s.data)))
		hdr.Write(u64[:])
		binary.BigEndian.PutUint32(u32[:], crc32.Checksum(s.data, crcTable))
		hdr.Write(u32[:])
	}
	binary.BigEndian.PutUint32(u32[:], crc32.Checksum(hdr.Bytes(), crcTable))
	hdr.Write(u32[:])

	if _, err := w.Write(hdr.Bytes()); err != nil {
		return fmt.Errorf("snapshot: writing v2 header: %w", err)
	}
	pos := uint64(hdr.Len())
	var pad [8]byte
	for i, s := range b.sections {
		if n := offsets[i] - pos; n > 0 {
			if _, err := w.Write(pad[:n]); err != nil {
				return fmt.Errorf("snapshot: writing v2 padding: %w", err)
			}
			pos += n
		}
		if _, err := w.Write(s.data); err != nil {
			return fmt.Errorf("snapshot: writing v2 section %s: %w", s.name, err)
		}
		pos += uint64(len(s.data))
	}
	writesTotal.Inc()
	return nil
}

// WriteFile writes the container to path with the package's crash-safe
// Atomic discipline (temp file, fsync, rename, directory fsync).
func (b *Builder) WriteFile(path string) error {
	return Atomic(path, b.Write)
}

// Section is one entry of a parsed v2 section table.
type Section struct {
	Name   string
	Offset uint64
	Len    uint64
	CRC    uint32
}

// File is an opened v2 container: the parsed section table over the raw file
// bytes, which may be an mmap (zero-copy) or a heap buffer (fallback).
// A File is safe for concurrent readers after Open/Map returns, except that
// the lazy per-section CRC bookkeeping makes first accesses of the same
// section race-benign but not atomic — serve-path callers verify up front.
type File struct {
	kind     string
	data     []byte
	sections []Section
	byName   map[string]int
	verified []bool // per section; set once its CRC has been checked
	mapped   bool
	closeFn  func() error
	verify   bool // verify section CRCs on first access
}

// MappedFile names a Map-opened File in serving code, where the mmap
// lifetime rules (close only after the last aliased matrix is unreachable)
// are the point.
type MappedFile = File

// mapReadFallback reads the whole container into memory and parses it as
// v2 — the path for platforms without mmap, or filesystems that refuse it.
// Same API as a real mapping; Mapped() reports false.
func mapReadFallback(path string, opts MapOptions) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	mf, perr := parseV2(data)
	if perr != nil {
		return nil, corrupt(fmt.Errorf("%s: %w", path, perr))
	}
	mf.verify = !opts.SkipSectionCRC
	fallbackLoads.Inc()
	readsTotal.Inc()
	return mf, nil
}

// MapOptions tunes Map.
type MapOptions struct {
	// SkipSectionCRC disables per-section checksum verification on access.
	// The header/table checksum is always verified. Use only when re-opening
	// a file that was fully verified earlier in the process lifetime (a
	// serving reload remapping the same generation bytes): it keeps the swap
	// O(sections) instead of O(bytes).
	SkipSectionCRC bool
}

// OpenV2 parses a v2 container from bytes already in memory. The returned
// File aliases data.
func OpenV2(data []byte) (*File, error) {
	f, err := parseV2(data)
	if err != nil {
		return nil, corrupt(err)
	}
	readsTotal.Inc()
	return f, nil
}

// parseV2 validates the header, table and bounds. It does not touch section
// payload bytes (that is the per-section CRC check, done lazily).
func parseV2(data []byte) (*File, error) {
	if len(data) < 14 {
		return nil, fmt.Errorf("%w: v2 header", ErrTruncated)
	}
	if !bytes.Equal(data[:6], magic[:]) {
		return nil, ErrNotSnapshot
	}
	if v := binary.BigEndian.Uint16(data[6:8]); v != Version2 {
		return nil, fmt.Errorf("snapshot: not a v2 container (version %d): %w", v, ErrNotSnapshot)
	}
	kindLen := int(binary.BigEndian.Uint16(data[8:10]))
	if kindLen == 0 || kindLen > maxKindLen {
		return nil, fmt.Errorf("snapshot: invalid kind length %d: %w", kindLen, ErrNotSnapshot)
	}
	pos := 10 + kindLen
	if len(data) < pos+4 {
		return nil, fmt.Errorf("%w: v2 header", ErrTruncated)
	}
	kind := string(data[10:pos])
	count := binary.BigEndian.Uint32(data[pos : pos+4])
	pos += 4
	if count > maxSections {
		return nil, fmt.Errorf("snapshot: section count %d exceeds the %d cap: %w", count, maxSections, ErrNotSnapshot)
	}
	f := &File{
		kind:     kind,
		data:     data,
		sections: make([]Section, 0, count),
		byName:   make(map[string]int, count),
		verify:   true,
	}
	for i := uint32(0); i < count; i++ {
		if len(data) < pos+2 {
			return nil, fmt.Errorf("%w: v2 section table", ErrTruncated)
		}
		nameLen := int(binary.BigEndian.Uint16(data[pos : pos+2]))
		pos += 2
		if nameLen == 0 || nameLen > maxKindLen || len(data) < pos+nameLen+20 {
			return nil, fmt.Errorf("%w: v2 section table entry %d", ErrTruncated, i)
		}
		name := string(data[pos : pos+nameLen])
		pos += nameLen
		sec := Section{
			Name:   name,
			Offset: binary.BigEndian.Uint64(data[pos : pos+8]),
			Len:    binary.BigEndian.Uint64(data[pos+8 : pos+16]),
			CRC:    binary.BigEndian.Uint32(data[pos+16 : pos+20]),
		}
		pos += 20
		if _, dup := f.byName[name]; dup {
			return nil, fmt.Errorf("snapshot: duplicate v2 section %q", name)
		}
		f.byName[name] = len(f.sections)
		f.sections = append(f.sections, sec)
	}
	if len(data) < pos+4 {
		return nil, fmt.Errorf("%w: v2 header checksum", ErrTruncated)
	}
	want := binary.BigEndian.Uint32(data[pos : pos+4])
	if crc32.Checksum(data[:pos], crcTable) != want {
		return nil, fmt.Errorf("snapshot: v2 header checksum mismatch: %w", ErrChecksum)
	}
	// Bounds and alignment of every section, before any payload access.
	for _, sec := range f.sections {
		if sec.Offset%8 != 0 {
			return nil, fmt.Errorf("snapshot: v2 section %q offset %d is not 8-byte aligned", sec.Name, sec.Offset)
		}
		end := sec.Offset + sec.Len
		if end < sec.Offset || end > uint64(len(data)) {
			return nil, fmt.Errorf("%w: v2 section %q [%d,%d) outside the %d-byte file",
				ErrTruncated, sec.Name, sec.Offset, end, len(data))
		}
	}
	f.verified = make([]bool, len(f.sections))
	return f, nil
}

// Kind returns the container's kind string.
func (f *File) Kind() string { return f.kind }

// Mapped reports whether the file bytes are an mmap (true) or a heap copy.
func (f *File) Mapped() bool { return f.mapped }

// Sections returns the parsed section table, in file order.
func (f *File) Sections() []Section { return f.sections }

// Close releases the mapping (or heap buffer). Any []byte or []float64
// obtained from a mapped File is invalid after Close — serving code must
// hold the File for as long as aliased matrices are reachable.
func (f *File) Close() error {
	if f.closeFn != nil {
		fn := f.closeFn
		f.closeFn = nil
		return fn()
	}
	return nil
}

// Section returns the raw bytes of the named section, verifying its CRC on
// first access (unless disabled via MapOptions). The bytes alias the mapping
// — do not mutate, and do not use after Close.
func (f *File) Section(name string) ([]byte, error) {
	i, ok := f.byName[name]
	if !ok {
		return nil, fmt.Errorf("snapshot: no section %q in %s container", name, f.kind)
	}
	sec := f.sections[i]
	b := f.data[sec.Offset : sec.Offset+sec.Len]
	if f.verify && !f.verified[i] {
		if crc32.Checksum(b, crcTable) != sec.CRC {
			return nil, corrupt(fmt.Errorf("snapshot: section %q: %w", name, ErrChecksum))
		}
		sectionVerifies.Inc()
		f.verified[i] = true
	}
	return b, nil
}

// Verify checks every section checksum (the full-file integrity pass; load
// paths that need O(sections) open defer or skip it instead).
func (f *File) Verify() error {
	for _, sec := range f.sections {
		if _, err := f.Section(sec.Name); err != nil {
			return err
		}
	}
	return nil
}

// Float64Section returns the named section as []float64. On a little-endian
// host with a mapped or heap-resident file this is a zero-copy reinterpret
// of the section bytes (the blob encoding is little-endian); on a big-endian
// host it decodes into a fresh slice. The section length must be a multiple
// of 8.
func (f *File) Float64Section(name string) ([]float64, error) {
	b, err := f.Section(name)
	if err != nil {
		return nil, err
	}
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("snapshot: section %q length %d is not a whole float64 count", name, len(b))
	}
	n := len(b) / 8
	if n == 0 {
		return nil, nil
	}
	if hostLittleEndian {
		return aliasFloat64(b, n), nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

// Float32Section returns the named section decoded as []float32 (copied on
// big-endian hosts, aliased otherwise).
func (f *File) Float32Section(name string) ([]float32, error) {
	b, err := f.Section(name)
	if err != nil {
		return nil, err
	}
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("snapshot: section %q length %d is not a whole float32 count", name, len(b))
	}
	n := len(b) / 4
	if n == 0 {
		return nil, nil
	}
	if hostLittleEndian {
		return aliasFloat32(b, n), nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out, nil
}

// Int64Section returns the named section decoded as []int64 (aliased on
// little-endian hosts).
func (f *File) Int64Section(name string) ([]int64, error) {
	b, err := f.Section(name)
	if err != nil {
		return nil, err
	}
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("snapshot: section %q length %d is not a whole int64 count", name, len(b))
	}
	n := len(b) / 8
	if n == 0 {
		return nil, nil
	}
	if hostLittleEndian {
		return aliasInt64(b, n), nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

// IDIndex is a sorted company-id index section: position i holds the id of
// row i of the companion matrix blob.
type IDIndex struct{ ids []int64 }

// IDIndexSection loads and validates the named sorted id index.
func (f *File) IDIndexSection(name string) (IDIndex, error) {
	ids, err := f.Int64Section(name)
	if err != nil {
		return IDIndex{}, err
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			return IDIndex{}, corrupt(fmt.Errorf("snapshot: id index %q not strictly increasing at %d", name, i))
		}
	}
	return IDIndex{ids: ids}, nil
}

// Len returns the number of indexed ids.
func (ix IDIndex) Len() int { return len(ix.ids) }

// ID returns the id stored at row.
func (ix IDIndex) ID(row int) int64 { return ix.ids[row] }

// Lookup returns the row of id, by binary search.
func (ix IDIndex) Lookup(id int64) (row int, ok bool) {
	i := sort.Search(len(ix.ids), func(j int) bool { return ix.ids[j] >= id })
	if i < len(ix.ids) && ix.ids[i] == id {
		return i, true
	}
	return 0, false
}

// FileVersion reads the container format version at path (1 or 2) without
// reading any payload, for dispatching a file of unknown vintage.
func FileVersion(path string) (uint16, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var hdr [8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, corrupt(fmt.Errorf("%w: header: %v", ErrTruncated, err))
	}
	if !bytes.Equal(hdr[:6], magic[:]) {
		return 0, corrupt(ErrNotSnapshot)
	}
	return binary.BigEndian.Uint16(hdr[6:8]), nil
}

// SniffVersion inspects an in-memory container's format version.
func SniffVersion(data []byte) (uint16, error) {
	if len(data) < 8 {
		return 0, ErrTruncated
	}
	if !bytes.Equal(data[:6], magic[:]) {
		return 0, ErrNotSnapshot
	}
	return binary.BigEndian.Uint16(data[6:8]), nil
}
