// Package snapshot provides the crash-safe persistence container used by
// every model Save/Load path, the trainers' checkpoint files, and the corpus
// writer. It solves two independent problems:
//
//   - Integrity: a serialized payload is wrapped in a small versioned header
//     (magic, format version, model kind, payload length, CRC-32C) so that a
//     loader can distinguish "truncated file", "bit-flipped payload", "wrong
//     model kind" and "file from a future version" with precise errors
//     instead of surfacing cryptic gob failures.
//
//   - Atomicity: WriteFile and Atomic place files by writing to a temporary
//     sibling, fsyncing it, renaming it over the destination and fsyncing
//     the directory, so a crash (even kill -9) mid-save either preserves the
//     old file or installs the complete new one — never a torn file.
//
// Container layout (all integers big-endian):
//
//	offset  size  field
//	0       6     magic "IBSNAP"
//	6       2     format version (currently 1)
//	8       2     kind length n
//	10      n     kind (e.g. "lda-model", "lstm-checkpoint")
//	10+n    8     payload length m
//	18+n    4     CRC-32C (Castagnoli) of the payload
//	22+n    m     payload
//
// Version policy: the version is bumped only for incompatible header layout
// changes; payload evolution is the owning package's concern (each payload
// is a gob stream or JSONL document that carries its own structure). Readers
// reject versions newer than they understand rather than guessing.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/obs"
)

// Version is the container format version this package writes.
const Version = 1

var magic = [6]byte{'I', 'B', 'S', 'N', 'A', 'P'}

// maxKindLen bounds the kind string so a corrupt length field cannot drive
// a huge allocation.
const maxKindLen = 256

var (
	writesTotal = obs.Default().Counter("snapshot_writes_total",
		"snapshot containers written (models, checkpoints, corpora)")
	readsTotal = obs.Default().Counter("snapshot_reads_total",
		"snapshot containers read and verified successfully")
	corruptionsTotal = obs.Default().Counter("snapshot_corruptions_total",
		"snapshot reads rejected as truncated, bit-flipped or malformed")
	checkpointWrites = obs.Default().Counter("checkpoint_writes_total",
		"training checkpoints written (snapshot kinds ending in -checkpoint)")
	checkpointReads = obs.Default().Counter("checkpoint_resumes_total",
		"training checkpoints read back for resume")
)

// Sentinel errors, matchable with errors.Is. Reads that fail integrity
// checks always wrap one of these (or *KindError / *VersionError).
var (
	// ErrNotSnapshot reports that the stream does not start with the
	// container magic — it is some other file format entirely.
	ErrNotSnapshot = errors.New("snapshot: bad magic (not a snapshot file)")
	// ErrTruncated reports that the stream ended before the declared
	// header or payload length was read.
	ErrTruncated = errors.New("snapshot: truncated")
	// ErrChecksum reports that the payload bytes do not match the header
	// checksum (bit flips, torn writes that somehow kept the length).
	ErrChecksum = errors.New("snapshot: payload checksum mismatch")
)

// KindError reports a container holding a different kind of payload than
// the reader asked for (e.g. loading an LSTM file as an LDA model).
type KindError struct {
	Want, Got string
}

func (e *KindError) Error() string {
	return fmt.Sprintf("snapshot: kind mismatch: file holds %q, want %q", e.Got, e.Want)
}

// VersionError reports a container written by a future format version.
type VersionError struct {
	Got uint16
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("snapshot: format version %d is newer than supported version %d", e.Got, Version)
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Write serializes one container to w: the payload produced by encode,
// wrapped in the versioned, checksummed header. The payload is buffered in
// memory to compute its length and CRC before any header byte is emitted.
func Write(w io.Writer, kind string, encode func(io.Writer) error) error {
	if kind == "" || len(kind) > maxKindLen {
		return fmt.Errorf("snapshot: invalid kind %q", kind)
	}
	var payload bytes.Buffer
	if err := encode(&payload); err != nil {
		return fmt.Errorf("snapshot: encoding %s payload: %w", kind, err)
	}
	hdr := make([]byte, 0, 22+len(kind))
	hdr = append(hdr, magic[:]...)
	hdr = binary.BigEndian.AppendUint16(hdr, Version)
	hdr = binary.BigEndian.AppendUint16(hdr, uint16(len(kind)))
	hdr = append(hdr, kind...)
	hdr = binary.BigEndian.AppendUint64(hdr, uint64(payload.Len()))
	hdr = binary.BigEndian.AppendUint32(hdr, crc32.Checksum(payload.Bytes(), crcTable))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("snapshot: writing %s header: %w", kind, err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("snapshot: writing %s payload: %w", kind, err)
	}
	writesTotal.Inc()
	if strings.HasSuffix(kind, "-checkpoint") {
		checkpointWrites.Inc()
	}
	return nil
}

// readHeader parses and validates everything up to the payload. It returns
// the kind, payload length and expected CRC.
func readHeader(r io.Reader) (kind string, payloadLen uint64, crc uint32, err error) {
	var fixed [10]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return "", 0, 0, corrupt(fmt.Errorf("%w: header: %v", ErrTruncated, err))
	}
	if !bytes.Equal(fixed[:6], magic[:]) {
		return "", 0, 0, corrupt(ErrNotSnapshot)
	}
	if v := binary.BigEndian.Uint16(fixed[6:8]); v > Version {
		return "", 0, 0, corrupt(&VersionError{Got: v})
	}
	kindLen := int(binary.BigEndian.Uint16(fixed[8:10]))
	if kindLen == 0 || kindLen > maxKindLen {
		return "", 0, 0, corrupt(fmt.Errorf("snapshot: invalid kind length %d: %w", kindLen, ErrNotSnapshot))
	}
	rest := make([]byte, kindLen+12)
	if _, err := io.ReadFull(r, rest); err != nil {
		return "", 0, 0, corrupt(fmt.Errorf("%w: header: %v", ErrTruncated, err))
	}
	kind = string(rest[:kindLen])
	payloadLen = binary.BigEndian.Uint64(rest[kindLen : kindLen+8])
	crc = binary.BigEndian.Uint32(rest[kindLen+8:])
	return kind, payloadLen, crc, nil
}

// corrupt counts one rejected read and passes the error through.
func corrupt(err error) error {
	corruptionsTotal.Inc()
	return err
}

// Read verifies one container from r and hands the verified payload to
// decode. The expected kind must match the file's kind exactly; the payload
// is fully read and checksummed before decode sees a single byte, so decode
// never observes truncated or bit-flipped input.
func Read(r io.Reader, kind string, decode func(io.Reader) error) error {
	got, payloadLen, crc, err := readHeader(r)
	if err != nil {
		return err
	}
	if got != kind {
		return &KindError{Want: kind, Got: got}
	}
	// Read exactly payloadLen bytes. LimitReader + ReadAll avoids trusting
	// a corrupt length field with a single huge allocation only up to the
	// actual stream size.
	payload, err := io.ReadAll(io.LimitReader(r, int64(payloadLen)))
	if err != nil {
		return corrupt(fmt.Errorf("%w: payload: %v", ErrTruncated, err))
	}
	if uint64(len(payload)) != payloadLen {
		return corrupt(fmt.Errorf("%w: payload is %d bytes, header declares %d",
			ErrTruncated, len(payload), payloadLen))
	}
	if crc32.Checksum(payload, crcTable) != crc {
		return corrupt(ErrChecksum)
	}
	if err := decode(bytes.NewReader(payload)); err != nil {
		return fmt.Errorf("snapshot: decoding %s payload: %w", kind, err)
	}
	readsTotal.Inc()
	if strings.HasSuffix(kind, "-checkpoint") {
		checkpointReads.Inc()
	}
	return nil
}

// ReadKind returns the kind recorded in a container header without reading
// the payload. Use it to dispatch a file of unknown model family.
func ReadKind(r io.Reader) (string, error) {
	kind, _, _, err := readHeader(r)
	return kind, err
}

// FileKind returns the kind recorded in the container at path.
func FileKind(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	return ReadKind(f)
}

// Atomic writes whatever write produces to path crash-safely: the bytes go
// to a temporary file in the same directory, which is fsynced, closed and
// renamed over path, and the directory is fsynced so the rename itself is
// durable. A crash at any point leaves either the old file or the complete
// new one. The content need not be a snapshot container (the corpus writer
// uses Atomic with plain JSONL).
func Atomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("snapshot: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("snapshot: fsyncing %s: %w", tmpName, err)
	}
	// os.CreateTemp makes the file 0600; installing that over the
	// destination would silently tighten perms on every artifact and ignore
	// the umask. Match an existing destination's mode, or default to 0644.
	mode := os.FileMode(0o644)
	if st, statErr := os.Stat(path); statErr == nil {
		mode = st.Mode().Perm()
	}
	if err = tmp.Chmod(mode); err != nil {
		return fmt.Errorf("snapshot: setting mode on %s: %w", tmpName, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("snapshot: closing %s: %w", tmpName, err)
	}
	if err = os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("snapshot: renaming into place: %w", err)
	}
	if err = syncDir(dir); err != nil {
		return err
	}
	return nil
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Platforms whose directory handles reject Sync (e.g. Windows) are not made
// to fail the write for it.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("snapshot: opening directory for fsync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, errors.ErrUnsupported) {
		return fmt.Errorf("snapshot: fsyncing directory %s: %w", dir, err)
	}
	return nil
}

// WriteFile writes one container to path atomically.
func WriteFile(path, kind string, encode func(io.Writer) error) error {
	return Atomic(path, func(w io.Writer) error {
		return Write(w, kind, encode)
	})
}

// ReadFile reads and verifies the container at path. Errors are annotated
// with the path.
func ReadFile(path, kind string, decode func(io.Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Read(f, kind, decode); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}
