//go:build unix

package snapshot

import (
	"fmt"
	"os"
	"syscall"
)

// Map opens the v2 container at path through mmap: the section table is
// parsed and checksummed, but payload bytes stay on disk until first touch
// (and off the Go heap always), so opening is O(sections) regardless of
// model size. If the filesystem refuses mmap, Map falls back to reading the
// file into memory — same API, heap-resident bytes, Mapped() == false.
func Map(path string, opts MapOptions) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size <= 0 || size != int64(int(size)) {
		return nil, corrupt(fmt.Errorf("%s: %w: %d-byte file cannot be a v2 container", path, ErrTruncated, size))
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return mapReadFallback(path, opts)
	}
	mf, perr := parseV2(data)
	if perr != nil {
		syscall.Munmap(data)
		return nil, corrupt(fmt.Errorf("%s: %w", path, perr))
	}
	mf.mapped = true
	mf.verify = !opts.SkipSectionCRC
	mf.closeFn = func() error { return syscall.Munmap(data) }
	mmapLoads.Inc()
	readsTotal.Inc()
	return mf, nil
}
