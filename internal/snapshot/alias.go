package snapshot

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// hostLittleEndian reports whether this machine stores integers
// little-endian — the precondition for reinterpreting v2 blob bytes in
// place instead of decoding them.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// The alias helpers reinterpret a section's bytes as a typed slice without
// copying. Callers guarantee len(b) covers n elements and the host is
// little-endian; alignment is rechecked at runtime (mmap bases are
// page-aligned and v2 offsets are 8-aligned, but a heap buffer handed to
// OpenV2 could in principle start anywhere) and falls back to a copy.

func aliasFloat64(b []byte, n int) []float64 {
	p := unsafe.Pointer(&b[0])
	if uintptr(p)%8 != 0 {
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
		}
		return out
	}
	return unsafe.Slice((*float64)(p), n)
}

func aliasFloat32(b []byte, n int) []float32 {
	p := unsafe.Pointer(&b[0])
	if uintptr(p)%4 != 0 {
		out := make([]float32, n)
		for i := range out {
			out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
		}
		return out
	}
	return unsafe.Slice((*float32)(p), n)
}

func aliasInt64(b []byte, n int) []int64 {
	p := unsafe.Pointer(&b[0])
	if uintptr(p)%8 != 0 {
		out := make([]int64, n)
		for i := range out {
			out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
		}
		return out
	}
	return unsafe.Slice((*int64)(p), n)
}
