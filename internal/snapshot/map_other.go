//go:build !unix

package snapshot

// Map opens the v2 container at path. This platform has no mmap support, so
// the file is read into memory; the File API is identical but Mapped()
// reports false and memory cost is O(bytes).
func Map(path string, opts MapOptions) (*File, error) {
	return mapReadFallback(path, opts)
}
