package snapshot

import (
	"bytes"
	"testing"
)

// FuzzReadV2 feeds arbitrary bytes to the v2 container parser: it must
// reject anything malformed with an error and never panic; any accepted
// input must survive a full Verify-or-error pass and section decoding
// without panicking.
func FuzzReadV2(f *testing.F) {
	b := NewBuilder("fuzz-v2")
	if err := b.AddSection("meta", []byte(`{"k":3}`)); err != nil {
		f.Fatal(err)
	}
	if err := b.AddFloat64("phi", []float64{0.5, 1.5, -2}); err != nil {
		f.Fatal(err)
	}
	if err := b.AddFloat32("half", []float32{1, 2}); err != nil {
		f.Fatal(err)
	}
	if err := b.AddIDIndex("ids", []int64{1, 5, 9}); err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := b.Write(&valid); err != nil {
		f.Fatal(err)
	}
	v := valid.Bytes()
	f.Add(v)
	f.Add(v[:len(v)/2])     // truncated mid-sections
	f.Add(v[:13])           // truncated mid-header
	f.Add([]byte{})         // empty
	f.Add([]byte("IBSNAP")) // magic only
	tableFlip := append([]byte(nil), v...)
	tableFlip[24] ^= 0x08
	f.Add(tableFlip) // bit-flipped section table
	payloadFlip := append([]byte(nil), v...)
	payloadFlip[len(payloadFlip)-3] ^= 0x10
	f.Add(payloadFlip) // bit-flipped payload (header still parses)
	countFlip := append([]byte(nil), v...)
	countFlip[20] ^= 0xff
	f.Add(countFlip) // mangled section count

	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := OpenV2(data)
		if err != nil {
			return
		}
		defer file.Close()
		// Whatever parsed must be traversable without panics: every section
		// either verifies or reports a checksum error, and typed decoders
		// must handle odd lengths gracefully.
		_ = file.Verify()
		for _, sec := range file.Sections() {
			_, _ = file.Section(sec.Name)
			_, _ = file.Float64Section(sec.Name)
			_, _ = file.Float32Section(sec.Name)
			_, _ = file.Int64Section(sec.Name)
			_, _ = file.IDIndexSection(sec.Name)
		}
		// Version sniffing must agree this is v2.
		if ver, err := SniffVersion(data); err != nil || ver != Version2 {
			t.Fatalf("accepted container sniffs as version %d (%v)", ver, err)
		}
	})
}
