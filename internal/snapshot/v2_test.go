package snapshot

import (
	"bytes"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"
	"unsafe"
)

// buildTestV2 assembles a representative container: float64 matrix, float32
// matrix, raw metadata bytes and a sorted id index.
func buildTestV2(t *testing.T) (*Builder, []float64, []float32, []int64) {
	t.Helper()
	f64 := []float64{0, 1.5, -2.25, math.Pi, math.Inf(1), math.SmallestNonzeroFloat64}
	f32 := []float32{1, -1, 0.5, float32(math.Pi)}
	ids := []int64{3, 7, 40, 1000, 999999}
	b := NewBuilder("test-kind")
	if err := b.AddSection("meta", []byte(`{"k":2,"v":3}`)); err != nil {
		t.Fatal(err)
	}
	if err := b.AddFloat64("phi", f64); err != nil {
		t.Fatal(err)
	}
	if err := b.AddFloat32("reps32", f32); err != nil {
		t.Fatal(err)
	}
	if err := b.AddIDIndex("ids", ids); err != nil {
		t.Fatal(err)
	}
	return b, f64, f32, ids
}

func checkV2Contents(t *testing.T, f *File, f64 []float64, f32 []float32, ids []int64) {
	t.Helper()
	if f.Kind() != "test-kind" {
		t.Fatalf("kind = %q, want test-kind", f.Kind())
	}
	meta, err := f.Section("meta")
	if err != nil {
		t.Fatal(err)
	}
	if string(meta) != `{"k":2,"v":3}` {
		t.Fatalf("meta section = %q", meta)
	}
	gf64, err := f.Float64Section("phi")
	if err != nil {
		t.Fatal(err)
	}
	if len(gf64) != len(f64) {
		t.Fatalf("phi has %d values, want %d", len(gf64), len(f64))
	}
	for i, v := range f64 {
		if gf64[i] != v && !(math.IsNaN(v) && math.IsNaN(gf64[i])) {
			t.Fatalf("phi[%d] = %v, want %v", i, gf64[i], v)
		}
	}
	gf32, err := f.Float32Section("reps32")
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range f32 {
		if gf32[i] != v {
			t.Fatalf("reps32[%d] = %v, want %v", i, gf32[i], v)
		}
	}
	ix, err := f.IDIndexSection("ids")
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != len(ids) {
		t.Fatalf("id index has %d entries, want %d", ix.Len(), len(ids))
	}
	for row, id := range ids {
		if ix.ID(row) != id {
			t.Fatalf("ix.ID(%d) = %d, want %d", row, ix.ID(row), id)
		}
		got, ok := ix.Lookup(id)
		if !ok || got != row {
			t.Fatalf("Lookup(%d) = %d,%v, want %d,true", id, got, ok, row)
		}
	}
	if _, ok := ix.Lookup(4); ok {
		t.Fatal("Lookup(4) found a row for an absent id")
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestV2RoundTripInMemory(t *testing.T) {
	b, f64, f32, ids := buildTestV2(t)
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if v, err := SniffVersion(buf.Bytes()); err != nil || v != Version2 {
		t.Fatalf("SniffVersion = %d, %v; want %d, nil", v, err, Version2)
	}
	f, err := OpenV2(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Mapped() {
		t.Fatal("in-memory open claims to be mapped")
	}
	checkV2Contents(t, f, f64, f32, ids)
}

func TestV2MapRoundTrip(t *testing.T) {
	b, f64, f32, ids := buildTestV2(t)
	path := filepath.Join(t.TempDir(), "model.ibsnap")
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if v, err := FileVersion(path); err != nil || v != Version2 {
		t.Fatalf("FileVersion = %d, %v; want %d, nil", v, err, Version2)
	}
	f, err := Map(path, MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkV2Contents(t, f, f64, f32, ids)
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestV2MapZeroCopy proves the mmap loader aliases the mapping rather than
// copying: the float64 slice must point inside the mapped region.
func TestV2MapZeroCopy(t *testing.T) {
	if !hostLittleEndian {
		t.Skip("zero-copy aliasing requires a little-endian host")
	}
	b, f64, _, _ := buildTestV2(t)
	path := filepath.Join(t.TempDir(), "model.ibsnap")
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := Map(path, MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if !f.Mapped() {
		t.Skip("mmap unavailable on this filesystem; fallback path exercised elsewhere")
	}
	vals, err := f.Float64Section("phi")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := f.Section("phi")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != len(f64) {
		t.Fatalf("got %d values, want %d", len(vals), len(f64))
	}
	// Same backing memory: writing through is impossible (PROT_READ), but the
	// addresses must coincide.
	if got, want := unsafe.Pointer(&vals[0]), unsafe.Pointer(&raw[0]); got != want {
		t.Fatalf("Float64Section copied: slice base %p, section base %p", got, want)
	}
}

func TestV2SectionAlignment(t *testing.T) {
	b := NewBuilder("align-kind")
	// Deliberately odd-length sections to force padding.
	if err := b.AddSection("a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := b.AddFloat64("b", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSection("c", []byte("yyy")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := OpenV2(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, sec := range f.Sections() {
		if sec.Offset%8 != 0 {
			t.Fatalf("section %q at unaligned offset %d", sec.Name, sec.Offset)
		}
	}
	if got, _ := f.Section("c"); string(got) != "yyy" {
		t.Fatalf("section c = %q", got)
	}
}

func TestV2CorruptionDetection(t *testing.T) {
	b, _, _, _ := buildTestV2(t)
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	t.Run("truncated header", func(t *testing.T) {
		if _, err := OpenV2(valid[:10]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[0] = 'X'
		if _, err := OpenV2(bad); !errors.Is(err, ErrNotSnapshot) {
			t.Fatalf("err = %v, want ErrNotSnapshot", err)
		}
	})
	t.Run("flipped table bit", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[20] ^= 0x40 // inside the section table
		if _, err := OpenV2(bad); !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrNotSnapshot) {
			t.Fatalf("err = %v, want an integrity error", err)
		}
	})
	t.Run("flipped payload bit", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[len(bad)-5] ^= 0x01 // inside the last section's payload
		f, err := OpenV2(bad)
		if err != nil {
			t.Fatalf("open (header intact) should succeed, got %v", err)
		}
		defer f.Close()
		if err := f.Verify(); !errors.Is(err, ErrChecksum) {
			t.Fatalf("Verify = %v, want ErrChecksum", err)
		}
	})
	t.Run("payload flip skipped when disabled", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[len(bad)-5] ^= 0x01
		f, err := OpenV2(bad)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		f.verify = false // what MapOptions.SkipSectionCRC sets
		if _, err := f.Section("ids"); err != nil {
			t.Fatalf("unverified access should pass through: %v", err)
		}
	})
	t.Run("v1 reader rejects v2 with VersionError", func(t *testing.T) {
		var ve *VersionError
		err := Read(bytes.NewReader(valid), "test-kind", func(r io.Reader) error { return nil })
		if !errors.As(err, &ve) || ve.Got != Version2 {
			t.Fatalf("v1 Read of v2 file = %v, want VersionError{2}", err)
		}
	})
	t.Run("v2 opener rejects v1", func(t *testing.T) {
		var v1 bytes.Buffer
		if err := Write(&v1, "test-kind", func(w io.Writer) error {
			_, err := w.Write([]byte("payload"))
			return err
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenV2(v1.Bytes()); err == nil {
			t.Fatal("OpenV2 accepted a v1 container")
		}
	})
}

func TestV2EmptyAndMissingSections(t *testing.T) {
	b := NewBuilder("edge-kind")
	if err := b.AddFloat64("empty", nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := OpenV2(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	vals, err := f.Float64Section("empty")
	if err != nil || len(vals) != 0 {
		t.Fatalf("empty section = %v, %v", vals, err)
	}
	if _, err := f.Section("absent"); err == nil {
		t.Fatal("Section(absent) succeeded")
	}
}

func TestV2BuilderRejects(t *testing.T) {
	b := NewBuilder("k")
	if err := b.AddSection("dup", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSection("dup", []byte("b")); err == nil {
		t.Fatal("duplicate section accepted")
	}
	if err := b.AddSection("", []byte("a")); err == nil {
		t.Fatal("empty section name accepted")
	}
	if err := b.AddIDIndex("ids", []int64{1, 1}); err == nil {
		t.Fatal("non-increasing id index accepted")
	}
	if err := b.AddIDIndex("ids2", []int64{5, 3}); err == nil {
		t.Fatal("decreasing id index accepted")
	}
}

// TestAtomicInstallsReadableMode pins the fix for Atomic installing
// os.CreateTemp's 0600 temp file over the destination: fresh files get
// 0644, and overwrites preserve the destination's existing mode.
func TestAtomicInstallsReadableMode(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")
	writeBody := func(w io.Writer) error {
		_, err := w.Write([]byte("content\n"))
		return err
	}
	if err := Atomic(path, writeBody); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Mode().Perm(); got != 0o644 {
		t.Fatalf("fresh install mode = %o, want 0644", got)
	}
	// Overwriting keeps the destination's existing (tighter) mode.
	if err := os.Chmod(path, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := Atomic(path, writeBody); err != nil {
		t.Fatal(err)
	}
	st, err = os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Mode().Perm(); got != 0o600 {
		t.Fatalf("overwrite mode = %o, want preserved 0600", got)
	}
}
