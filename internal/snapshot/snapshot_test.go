package snapshot

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// enc returns an encode func writing the given bytes.
func enc(b []byte) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := w.Write(b)
		return err
	}
}

// dec returns a decode func capturing all payload bytes into dst.
func dec(dst *[]byte) func(io.Reader) error {
	return func(r io.Reader) error {
		b, err := io.ReadAll(r)
		*dst = b
		return err
	}
}

func container(t *testing.T, kind string, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, kind, enc(payload)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	payload := []byte("the payload \x00\x01\x02 with binary bytes")
	b := container(t, "test-model", payload)
	var got []byte
	if err := Read(bytes.NewReader(b), "test-model", dec(&got)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %q != %q", got, payload)
	}
}

func TestEmptyPayloadRoundTrips(t *testing.T) {
	b := container(t, "test-model", nil)
	var got []byte
	if err := Read(bytes.NewReader(b), "test-model", dec(&got)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("want empty payload, got %d bytes", len(got))
	}
}

func TestKindMismatch(t *testing.T) {
	b := container(t, "lda-model", []byte("x"))
	err := Read(bytes.NewReader(b), "lstm-model", func(io.Reader) error { return nil })
	var ke *KindError
	if !errors.As(err, &ke) {
		t.Fatalf("want KindError, got %v", err)
	}
	if ke.Got != "lda-model" || ke.Want != "lstm-model" {
		t.Fatalf("KindError fields: %+v", ke)
	}
	if !strings.Contains(err.Error(), "lda-model") {
		t.Fatalf("error should name the actual kind: %v", err)
	}
}

func TestNotSnapshot(t *testing.T) {
	for _, b := range [][]byte{
		[]byte("{\"format\":\"installbase-corpus/v1\"}\n"),
		[]byte("GOBGOBGOBGOB"),
		bytes.Repeat([]byte{0}, 64),
	} {
		err := Read(bytes.NewReader(b), "x", func(io.Reader) error { return nil })
		if !errors.Is(err, ErrNotSnapshot) {
			t.Fatalf("want ErrNotSnapshot for %q, got %v", b[:6], err)
		}
	}
}

func TestTruncationDetectedAtEveryLength(t *testing.T) {
	b := container(t, "test-model", []byte("some payload that is long enough to truncate"))
	for n := 0; n < len(b); n++ {
		err := Read(bytes.NewReader(b[:n]), "test-model", func(io.Reader) error { return nil })
		if err == nil {
			t.Fatalf("truncation to %d/%d bytes not detected", n, len(b))
		}
		// Every prefix must fail with a structured error, not a decode
		// error: magic/kind prefixes give ErrTruncated, a cut inside the
		// payload gives ErrTruncated, never a clean read.
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrNotSnapshot) {
			t.Fatalf("truncation to %d bytes: unexpected error %v", n, err)
		}
	}
}

func TestBitFlipDetectedEverywhere(t *testing.T) {
	payload := []byte("bit flip target payload")
	orig := container(t, "test-model", payload)
	for i := 0; i < len(orig); i++ {
		b := append([]byte(nil), orig...)
		b[i] ^= 0x40
		var got []byte
		err := Read(bytes.NewReader(b), "test-model", dec(&got))
		if err == nil {
			t.Fatalf("bit flip at byte %d not detected", i)
		}
	}
}

func TestFutureVersionRejected(t *testing.T) {
	b := container(t, "test-model", []byte("x"))
	b[6], b[7] = 0xff, 0xff // version field
	err := Read(bytes.NewReader(b), "test-model", func(io.Reader) error { return nil })
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("want VersionError, got %v", err)
	}
	if ve.Got != 0xffff {
		t.Fatalf("VersionError.Got = %d", ve.Got)
	}
}

func TestReadKind(t *testing.T) {
	b := container(t, "bpmf-checkpoint", []byte("payload"))
	kind, err := ReadKind(bytes.NewReader(b))
	if err != nil || kind != "bpmf-checkpoint" {
		t.Fatalf("ReadKind = %q, %v", kind, err)
	}
}

func TestWriteRejectsBadKind(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, "", enc(nil)); err == nil {
		t.Fatal("empty kind accepted")
	}
	if err := Write(&buf, strings.Repeat("k", maxKindLen+1), enc(nil)); err == nil {
		t.Fatal("oversized kind accepted")
	}
}

func TestEncodeErrorWritesNothing(t *testing.T) {
	var buf bytes.Buffer
	boom := errors.New("boom")
	err := Write(&buf, "test-model", func(io.Writer) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("want encode error surfaced, got %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("failed encode still wrote %d bytes", buf.Len())
	}
}

func TestWriteFileReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.snap")
	payload := []byte("file payload")
	if err := WriteFile(path, "test-model", enc(payload)); err != nil {
		t.Fatal(err)
	}
	var got []byte
	if err := ReadFile(path, "test-model", dec(&got)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch through file round trip")
	}
	if kind, err := FileKind(path); err != nil || kind != "test-model" {
		t.Fatalf("FileKind = %q, %v", kind, err)
	}
}

func TestReadFileAnnotatesPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.snap")
	if err := os.WriteFile(path, []byte("not a snapshot at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := ReadFile(path, "test-model", func(io.Reader) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "m.snap") {
		t.Fatalf("error should carry the path: %v", err)
	}
	if !errors.Is(err, ErrNotSnapshot) {
		t.Fatalf("want ErrNotSnapshot through the wrap, got %v", err)
	}
}

func TestAtomicPreservesOldFileOnFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.snap")
	if err := Atomic(path, enc([]byte("good old content"))); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("mid-write crash")
	err := Atomic(path, func(w io.Writer) error {
		w.Write([]byte("partial new"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want write error surfaced, got %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "good old content" {
		t.Fatalf("old file clobbered: %q", got)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

func TestAtomicCreatesFreshFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.snap")
	if err := Atomic(path, enc([]byte("v1"))); err != nil {
		t.Fatal(err)
	}
	if err := Atomic(path, enc([]byte("v2"))); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "v2" {
		t.Fatalf("got %q", got)
	}
}

func TestCheckpointKindsCounted(t *testing.T) {
	before := checkpointWrites.Value()
	b := container(t, "lda-checkpoint", []byte("ck"))
	if checkpointWrites.Value() != before+1 {
		t.Fatal("checkpoint write not counted")
	}
	beforeReads := checkpointReads.Value()
	if err := Read(bytes.NewReader(b), "lda-checkpoint", func(io.Reader) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if checkpointReads.Value() != beforeReads+1 {
		t.Fatal("checkpoint resume not counted")
	}
}

func TestCorruptionCounted(t *testing.T) {
	before := corruptionsTotal.Value()
	b := container(t, "test-model", []byte("payload"))
	b[len(b)-1] ^= 1
	Read(bytes.NewReader(b), "test-model", func(io.Reader) error { return nil })
	if corruptionsTotal.Value() != before+1 {
		t.Fatal("corruption not counted")
	}
}
