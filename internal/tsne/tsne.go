// Package tsne implements exact t-distributed Stochastic Neighbor Embedding
// (van der Maaten & Hinton 2008): perplexity-calibrated Gaussian input
// affinities, Student-t output affinities, early exaggeration and
// momentum gradient descent. The paper uses t-SNE to project the LDA product
// embeddings (38 points in topic space) to 2-D (Figures 8-9); at that scale
// the exact O(n²) algorithm is the right tool.
package tsne

import (
	"context"
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/par"
	"repro/internal/rng"
)

// Config parameterizes a t-SNE run.
type Config struct {
	OutputDims int     // 0 selects 2
	Perplexity float64 // effective neighbor count; 0 selects min(30, (n-1)/3)
	Iterations int     // 0 selects 500
	LearnRate  float64 // 0 selects 100
	// EarlyExaggeration multiplies input affinities for the first quarter of
	// the iterations. 0 selects 4.
	EarlyExaggeration float64
}

func (c *Config) fillDefaults(n int) {
	if c.OutputDims == 0 {
		c.OutputDims = 2
	}
	if c.Perplexity == 0 {
		c.Perplexity = math.Min(30, math.Max(2, float64(n-1)/3))
	}
	if c.Iterations == 0 {
		c.Iterations = 500
	}
	if c.LearnRate == 0 {
		c.LearnRate = 100
	}
	if c.EarlyExaggeration == 0 {
		c.EarlyExaggeration = 4
	}
}

// Embed projects the rows of x to Config.OutputDims dimensions.
func Embed(x *mat.Matrix, cfg Config, g *rng.RNG) (*mat.Matrix, error) {
	n := x.Rows
	if n < 3 {
		return nil, fmt.Errorf("tsne: need at least 3 points, got %d", n)
	}
	cfg.fillDefaults(n)
	if cfg.Perplexity >= float64(n) {
		return nil, fmt.Errorf("tsne: perplexity %v must be below n=%d", cfg.Perplexity, n)
	}
	if cfg.OutputDims < 1 || cfg.Iterations < 1 || cfg.LearnRate <= 0 {
		return nil, fmt.Errorf("tsne: invalid config %+v", cfg)
	}

	p := inputAffinities(x, cfg.Perplexity)

	// init
	d := cfg.OutputDims
	y := mat.New(n, d)
	for i := range y.Data {
		y.Data[i] = 1e-2 * g.Norm()
	}
	vel := mat.New(n, d)
	grad := mat.New(n, d)
	q := mat.New(n, n)
	num := mat.New(n, n)
	rowSums := make([]float64, n)

	exagStop := cfg.Iterations / 4
	for iter := 0; iter < cfg.Iterations; iter++ {
		exag := 1.0
		if iter < exagStop {
			exag = cfg.EarlyExaggeration
		}
		// Output affinities. Each task i owns the pairs (i, j>i): it writes
		// the two mirror cells of num (touched by no other task) and its own
		// rowSums slot. The global qSum folds the per-row partials in index
		// order afterwards, so the sum is bit-identical at any worker count.
		_ = par.ForEach(context.Background(), n, func(i int) error {
			yi := y.Row(i)
			s := 0.0
			for j := i + 1; j < n; j++ {
				nu := 1 / (1 + mat.SqDist(yi, y.Row(j)))
				num.Set(i, j, nu)
				num.Set(j, i, nu)
				s += 2 * nu
			}
			rowSums[i] = s
			return nil
		})
		var qSum float64
		for _, s := range rowSums {
			qSum += s
		}
		if qSum < 1e-300 {
			qSum = 1e-300
		}
		for i := range q.Data {
			v := num.Data[i] / qSum
			if v < 1e-12 {
				v = 1e-12
			}
			q.Data[i] = v
		}
		// gradient: 4 Σ_j (p_ij - q_ij) num_ij (y_i - y_j); task i writes
		// only grad.Row(i) and keeps the sequential per-row fold order.
		grad.Zero()
		_ = par.ForEach(context.Background(), n, func(i int) error {
			yi := y.Row(i)
			gi := grad.Row(i)
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				mult := 4 * (exag*p.At(i, j) - q.At(i, j)) * num.At(i, j)
				yj := y.Row(j)
				for k := 0; k < d; k++ {
					gi[k] += mult * (yi[k] - yj[k])
				}
			}
			return nil
		})
		momentum := 0.5
		if iter >= exagStop {
			momentum = 0.8
		}
		for i := range y.Data {
			vel.Data[i] = momentum*vel.Data[i] - cfg.LearnRate*grad.Data[i]
			y.Data[i] += vel.Data[i]
		}
		// recentre
		means := make([]float64, d)
		for i := 0; i < n; i++ {
			row := y.Row(i)
			for k := 0; k < d; k++ {
				means[k] += row[k]
			}
		}
		for k := range means {
			means[k] /= float64(n)
		}
		for i := 0; i < n; i++ {
			row := y.Row(i)
			for k := 0; k < d; k++ {
				row[k] -= means[k]
			}
		}
	}
	return y, nil
}

// inputAffinities computes the symmetrized input probability matrix P with
// per-point bandwidths calibrated to the target perplexity by bisection.
func inputAffinities(x *mat.Matrix, perplexity float64) *mat.Matrix {
	n := x.Rows
	d2 := mat.New(n, n)
	// Pairwise distances: task i owns the pairs (i, j>i), so the mirror
	// writes are cell-disjoint across tasks.
	_ = par.ForEach(context.Background(), n, func(i int) error {
		xi := x.Row(i)
		for j := i + 1; j < n; j++ {
			dist := mat.SqDist(xi, x.Row(j))
			d2.Set(i, j, dist)
			d2.Set(j, i, dist)
		}
		return nil
	})
	target := math.Log(perplexity)
	p := mat.New(n, n)
	// Per-point bandwidth calibration is independent across points: task i
	// bisects with its own scratch row and writes only p's row i.
	_ = par.ForEach(context.Background(), n, func(i int) error {
		row := make([]float64, n)
		// bisection on beta = 1/(2 sigma^2)
		betaLo, betaHi := 0.0, math.Inf(1)
		beta := 1.0
		for it := 0; it < 64; it++ {
			var sum, hSum float64
			for j := 0; j < n; j++ {
				if j == i {
					row[j] = 0
					continue
				}
				v := math.Exp(-beta * d2.At(i, j))
				row[j] = v
				sum += v
			}
			if sum < 1e-300 {
				sum = 1e-300
			}
			// Shannon entropy H = log(sum) + beta * E[d²]
			for j := 0; j < n; j++ {
				if j != i && row[j] > 0 {
					hSum += row[j] * d2.At(i, j)
				}
			}
			h := math.Log(sum) + beta*hSum/sum
			diff := h - target
			if math.Abs(diff) < 1e-5 {
				break
			}
			if diff > 0 { // entropy too high -> sharpen
				betaLo = beta
				if math.IsInf(betaHi, 1) {
					beta *= 2
				} else {
					beta = (beta + betaHi) / 2
				}
			} else {
				betaHi = beta
				if betaLo == 0 {
					beta /= 2
				} else {
					beta = (beta + betaLo) / 2
				}
			}
		}
		var sum float64
		for j := 0; j < n; j++ {
			sum += row[j]
		}
		if sum < 1e-300 {
			sum = 1e-300
		}
		for j := 0; j < n; j++ {
			p.Set(i, j, row[j]/sum)
		}
		return nil
	})
	// symmetrize: p_ij = (p_j|i + p_i|j) / 2n, floored
	out := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := (p.At(i, j) + p.At(j, i)) / (2 * float64(n))
			if v < 1e-12 {
				v = 1e-12
			}
			out.Set(i, j, v)
		}
	}
	return out
}
