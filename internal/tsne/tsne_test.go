package tsne

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
)

// clusters builds two tight groups of points in high dimension.
func clusters(g *rng.RNG) (*mat.Matrix, []int) {
	n, d := 30, 8
	x := mat.New(n, d)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		base := 0.0
		if i >= n/2 {
			base = 12
			labels[i] = 1
		}
		row := x.Row(i)
		for k := range row {
			row[k] = base + 0.5*g.Norm()
		}
	}
	return x, labels
}

func TestValidation(t *testing.T) {
	g := rng.New(1)
	if _, err := Embed(mat.New(2, 3), Config{}, g); err == nil {
		t.Fatal("n=2 accepted")
	}
	if _, err := Embed(mat.New(10, 3), Config{Perplexity: 50}, g); err == nil {
		t.Fatal("perplexity >= n accepted")
	}
	if _, err := Embed(mat.New(10, 3), Config{LearnRate: -1}, g); err == nil {
		t.Fatal("negative learn rate accepted")
	}
}

func TestOutputShapeAndFiniteness(t *testing.T) {
	g := rng.New(3)
	x, _ := clusters(g)
	y, err := Embed(x, Config{Iterations: 200}, g)
	if err != nil {
		t.Fatal(err)
	}
	if y.Rows != 30 || y.Cols != 2 {
		t.Fatalf("shape %dx%d", y.Rows, y.Cols)
	}
	for _, v := range y.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite embedding value %v", v)
		}
	}
}

func TestSeparatesClusters(t *testing.T) {
	g := rng.New(6)
	x, labels := clusters(g)
	y, err := Embed(x, Config{Iterations: 400, Perplexity: 8}, g)
	if err != nil {
		t.Fatal(err)
	}
	// mean within-cluster distance must be well below between-cluster distance
	var within, between float64
	var nw, nb int
	for i := 0; i < y.Rows; i++ {
		for j := i + 1; j < y.Rows; j++ {
			d := math.Sqrt(mat.SqDist(y.Row(i), y.Row(j)))
			if labels[i] == labels[j] {
				within += d
				nw++
			} else {
				between += d
				nb++
			}
		}
	}
	within /= float64(nw)
	between /= float64(nb)
	if between < 2*within {
		t.Fatalf("clusters not separated: within %v, between %v", within, between)
	}
}

func TestPreservesNeighborhoods(t *testing.T) {
	// Points on a line: nearest neighbors in input should mostly remain
	// neighbors in the embedding.
	g := rng.New(7)
	n := 20
	x := mat.New(n, 5)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for k := range row {
			row[k] = float64(i) * 2
		}
		row[0] += 0.1 * g.Norm()
	}
	y, err := Embed(x, Config{Iterations: 400, Perplexity: 4}, g)
	if err != nil {
		t.Fatal(err)
	}
	// For interior points, at least one of the two line-neighbors must be
	// among the 3 nearest embedded neighbors.
	hits := 0
	for i := 2; i < n-2; i++ {
		type nd struct {
			j int
			d float64
		}
		var ds []nd
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			ds = append(ds, nd{j, mat.SqDist(y.Row(i), y.Row(j))})
		}
		for a := 1; a < len(ds); a++ {
			for b := a; b > 0 && ds[b].d < ds[b-1].d; b-- {
				ds[b], ds[b-1] = ds[b-1], ds[b]
			}
		}
		for _, cand := range ds[:3] {
			if cand.j == i-1 || cand.j == i+1 {
				hits++
				break
			}
		}
	}
	if hits < (n-4)*3/4 {
		t.Fatalf("neighborhoods destroyed: only %d/%d interior points kept a line neighbor", hits, n-4)
	}
}

func TestCentered(t *testing.T) {
	g := rng.New(9)
	x, _ := clusters(g)
	y, err := Embed(x, Config{Iterations: 150}, g)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < y.Cols; k++ {
		var s float64
		for i := 0; i < y.Rows; i++ {
			s += y.At(i, k)
		}
		if math.Abs(s/float64(y.Rows)) > 1e-9 {
			t.Fatalf("embedding not centered in dim %d: mean %v", k, s/float64(y.Rows))
		}
	}
}

func TestDeterministic(t *testing.T) {
	x, _ := clusters(rng.New(11))
	y1, err := Embed(x, Config{Iterations: 100}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	y2, err := Embed(x, Config{Iterations: 100}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(y1, y2, 0) {
		t.Fatal("t-SNE not deterministic under identical seeds")
	}
}

func TestDuplicatePointsTolerated(t *testing.T) {
	g := rng.New(13)
	x := mat.New(10, 3)
	for i := 0; i < 10; i++ {
		row := x.Row(i)
		for k := range row {
			row[k] = float64(i / 2) // pairs of identical points
		}
	}
	y, err := Embed(x, Config{Iterations: 150, Perplexity: 3}, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range y.Data {
		if math.IsNaN(v) {
			t.Fatal("NaN with duplicate points")
		}
	}
}

func TestThreeDimensionalOutput(t *testing.T) {
	g := rng.New(15)
	x, _ := clusters(g)
	y, err := Embed(x, Config{OutputDims: 3, Iterations: 100}, g)
	if err != nil {
		t.Fatal(err)
	}
	if y.Cols != 3 {
		t.Fatalf("cols = %d", y.Cols)
	}
}
