package bpmf

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/rng"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Rank: 0},
		{Rank: 2, Alpha: -1},
		{Rank: 2, Beta0: -1},
		{Rank: 2, Samples: -1, Burn: -1},
		{Rank: 2, ClipLo: 1, ClipHi: 0.5},
	}
	for i, cfg := range bad {
		if _, err := Train(cfg, 3, 3, []Rating{{0, 0, 1}}, rng.New(1)); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
	if _, err := Train(Config{Rank: 2}, 0, 3, nil, rng.New(1)); err == nil {
		t.Fatal("zero users accepted")
	}
	if _, err := Train(Config{Rank: 2}, 3, 3, []Rating{{5, 0, 1}}, rng.New(1)); err == nil {
		t.Fatal("out-of-range rating accepted")
	}
}

// lowRankRatings builds a noiseless rank-1 rating matrix in [0, 1]:
// r_ij = a_i * b_j.
func lowRankRatings(n, m int, g *rng.RNG) ([]Rating, [][]float64) {
	a := make([]float64, n)
	b := make([]float64, m)
	for i := range a {
		a[i] = 0.3 + 0.7*g.Float64()
	}
	for j := range b {
		b[j] = 0.3 + 0.7*g.Float64()
	}
	var ratings []Rating
	truth := make([][]float64, n)
	for i := 0; i < n; i++ {
		truth[i] = make([]float64, m)
		for j := 0; j < m; j++ {
			truth[i][j] = a[i] * b[j]
			ratings = append(ratings, Rating{User: i, Item: j, Value: truth[i][j]})
		}
	}
	return ratings, truth
}

func TestRecoversLowRankMatrix(t *testing.T) {
	g := rng.New(3)
	ratings, truth := lowRankRatings(30, 10, g)
	m, err := Train(Config{Rank: 2, Alpha: 25, Burn: 15, Samples: 25}, 30, 10, ratings, g)
	if err != nil {
		t.Fatal(err)
	}
	var se, n float64
	for i := 0; i < 30; i++ {
		for j := 0; j < 10; j++ {
			d := m.Predict(i, j) - truth[i][j]
			se += d * d
			n++
		}
	}
	rmse := math.Sqrt(se / n)
	if rmse > 0.08 {
		t.Fatalf("RMSE = %v on noiseless rank-1 data, want < 0.08", rmse)
	}
}

func TestHeldOutGeneralization(t *testing.T) {
	g := rng.New(5)
	ratings, _ := lowRankRatings(40, 12, g)
	// hold out every 7th rating
	var train, test []Rating
	for idx, r := range ratings {
		if idx%7 == 0 {
			test = append(test, r)
		} else {
			train = append(train, r)
		}
	}
	m, err := Train(Config{Rank: 3, Burn: 15, Samples: 25}, 40, 12, train, g)
	if err != nil {
		t.Fatal(err)
	}
	if rmse := m.RMSE(test); rmse > 0.12 {
		t.Fatalf("held-out RMSE = %v, want < 0.12", rmse)
	}
}

func TestDegeneratesOnDenseBinaryOwnership(t *testing.T) {
	// The paper's setting: only positive (value 1) ratings observed on a
	// dense ownership matrix. BPMF should predict ~1 nearly everywhere,
	// making recommendations useless (Figures 5-6).
	g := rng.New(7)
	n, mItems := 60, 15
	var ratings []Rating
	for i := 0; i < n; i++ {
		for j := 0; j < mItems; j++ {
			if g.Float64() < 0.4 { // dense ownership
				ratings = append(ratings, Rating{User: i, Item: j, Value: 1})
			}
		}
	}
	m, err := Train(Config{Rank: 5, Alpha: 25, Burn: 15, Samples: 25}, n, mItems, ratings, g)
	if err != nil {
		t.Fatal(err)
	}
	scores := m.ScoreDistribution()
	var above09 int
	for _, s := range scores {
		if s > 0.9 {
			above09++
		}
	}
	frac := float64(above09) / float64(len(scores))
	if frac < 0.8 {
		t.Fatalf("only %.1f%% of scores above 0.9; expected degenerate near-1 predictions", 100*frac)
	}
}

func TestScoresClipped(t *testing.T) {
	g := rng.New(9)
	ratings, _ := lowRankRatings(20, 8, g)
	m, err := Train(Config{Rank: 2, Burn: 5, Samples: 10}, 20, 8, ratings, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range m.Scores.Data {
		if s < 0 || s > 1 {
			t.Fatalf("score %v outside [0,1]", s)
		}
	}
}

func TestDeterminism(t *testing.T) {
	ratings, _ := lowRankRatings(15, 6, rng.New(11))
	m1, err := Train(Config{Rank: 2, Burn: 5, Samples: 5}, 15, 6, ratings, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(Config{Rank: 2, Burn: 5, Samples: 5}, 15, 6, ratings, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.Scores.Data {
		if m1.Scores.Data[i] != m2.Scores.Data[i] {
			t.Fatal("BPMF not deterministic under identical seeds")
		}
	}
}

func TestUsersWithNoRatings(t *testing.T) {
	// Cold-start rows must still sample from the prior without crashing.
	g := rng.New(13)
	ratings := []Rating{{0, 0, 1}, {0, 1, 1}, {1, 0, 1}}
	m, err := Train(Config{Rank: 2, Burn: 5, Samples: 5}, 5, 4, ratings, g)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 4; j++ {
		s := m.Predict(4, j) // user 4 has no ratings
		if math.IsNaN(s) || s < 0 || s > 1 {
			t.Fatalf("cold-start prediction invalid: %v", s)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	g := rng.New(15)
	ratings, _ := lowRankRatings(10, 5, g)
	m, err := Train(Config{Rank: 2, Burn: 3, Samples: 4}, 10, 5, ratings, g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != m.N || got.M != m.M || got.Rank != m.Rank {
		t.Fatalf("metadata mismatch %+v", got)
	}
	for i := range m.Scores.Data {
		if got.Scores.Data[i] != m.Scores.Data[i] {
			t.Fatal("score mismatch after round trip")
		}
	}
	if _, err := Load(bytes.NewBufferString("bad")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestRMSEEdgeCases(t *testing.T) {
	m := &Model{N: 1, M: 1, Rank: 1}
	if !math.IsNaN(m.RMSE(nil)) {
		t.Fatal("RMSE of empty ratings should be NaN")
	}
}
