package bpmf

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/snapshot"
)

// Checkpoint is a complete, self-owned snapshot of a BPMF Gibbs run at a
// sweep boundary: both factor matrices, the posterior-score accumulator and
// RNG state. Resume continues from it to a model bit-identical to the
// uninterrupted run.
type Checkpoint struct {
	Cfg      ConfigState
	N, M     int
	Sweep    int // completed sweeps; sampling resumes at this sweep
	U, V     []float64
	ScoreAcc []float64
	Kept     int // samples accumulated into ScoreAcc so far
	RNG      [4]uint64
}

// snapshotState deep-copies all mutable sampler state into a Checkpoint.
// It draws no random numbers, so hooked runs sample bit-identically.
func snapshotState(cfg *Config, u, v, scoreAcc *mat.Matrix, kept, sweep int, g *rng.RNG) *Checkpoint {
	return &Checkpoint{
		Cfg:      cfg.state(),
		N:        u.Rows,
		M:        v.Rows,
		Sweep:    sweep,
		U:        append([]float64(nil), u.Data...),
		V:        append([]float64(nil), v.Data...),
		ScoreAcc: append([]float64(nil), scoreAcc.Data...),
		Kept:     kept,
		RNG:      g.State(),
	}
}

func (ck *Checkpoint) validate() error {
	total := ck.Cfg.Burn + ck.Cfg.Samples
	if ck.N < 1 || ck.M < 1 || ck.Cfg.Rank < 1 {
		return fmt.Errorf("bpmf: checkpoint has invalid dimensions %dx%d rank %d", ck.N, ck.M, ck.Cfg.Rank)
	}
	if ck.Sweep < 0 || ck.Sweep > total {
		return fmt.Errorf("bpmf: checkpoint sweep %d outside [0,%d]", ck.Sweep, total)
	}
	if ck.Kept < 0 || ck.Kept > ck.Cfg.Samples {
		return fmt.Errorf("bpmf: checkpoint kept %d outside [0,%d]", ck.Kept, ck.Cfg.Samples)
	}
	if len(ck.U) != ck.N*ck.Cfg.Rank || len(ck.V) != ck.M*ck.Cfg.Rank {
		return fmt.Errorf("bpmf: checkpoint factor matrices have wrong shape")
	}
	if len(ck.ScoreAcc) != ck.N*ck.M {
		return fmt.Errorf("bpmf: checkpoint score accumulator has %d entries, want %d", len(ck.ScoreAcc), ck.N*ck.M)
	}
	return nil
}

// Save serializes the checkpoint into a checksummed snapshot container of
// kind KindCheckpoint.
func (ck *Checkpoint) Save(w io.Writer) error {
	return snapshot.Write(w, KindCheckpoint, func(w io.Writer) error {
		return gob.NewEncoder(w).Encode(ck)
	})
}

// LoadCheckpoint deserializes and validates a checkpoint written by Save.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	ck := new(Checkpoint)
	if err := snapshot.Read(r, KindCheckpoint, func(r io.Reader) error {
		return gob.NewDecoder(r).Decode(ck)
	}); err != nil {
		return nil, fmt.Errorf("bpmf: loading checkpoint: %w", err)
	}
	if err := ck.validate(); err != nil {
		return nil, err
	}
	return ck, nil
}

// gob assigns wire type ids from a process-global registry at first encode,
// so a model encoded after a checkpoint would carry different type ids than
// one encoded in a fresh process. Pin this package's wire types in a fixed
// order at init so model files are byte-identical regardless of what else
// the process encoded first.
func init() {
	enc := gob.NewEncoder(io.Discard)
	_ = enc.Encode(gobModel{})
	_ = enc.Encode(Checkpoint{})
}
