// Package bpmf implements Bayesian Probabilistic Matrix Factorization
// (Salakhutdinov & Mnih, ICML 2008) with the full Gibbs sampler over
// user/item factor matrices and Normal-Wishart hyperpriors. This is the
// matrix-factorization comparator of the paper's Section 5.2: on the dense
// binary company-product matrix (with ownership encoded as rating 1) its
// predictive scores collapse into a narrow band near 1 for almost every
// company-product pair, which is exactly the degenerate behaviour the paper
// reports in Figures 5-6.
package bpmf

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// Snapshot container kinds for BPMF artifacts.
const (
	KindModel      = "bpmf-model"
	KindCheckpoint = "bpmf-checkpoint"
)

var (
	trainSweeps = obs.Default().Counter("bpmf_train_sweeps_total",
		"Gibbs sweeps completed across all BPMF training runs")
	trainRatings = obs.Default().Counter("bpmf_train_ratings_total",
		"observed ratings visited per sweep across all BPMF training runs")
)

// Rating is one observed (company, product, value) entry. The paper's
// ranking transformation feeds value 1 for owned products.
type Rating struct {
	User, Item int
	Value      float64
}

// Config parameterizes the Gibbs sampler.
type Config struct {
	Rank  int     // latent dimensionality D
	Alpha float64 // observation precision; 0 selects 2
	Beta0 float64 // prior pseudo-count for the Normal-Wishart; 0 selects 2

	Burn, Samples int // Gibbs schedule; 0 selects 20 / 30

	// ClipLo/ClipHi bound per-sample predictions before averaging, the
	// standard BPMF treatment (ratings live in a known range). Both zero
	// selects [0, 1], matching the binary ranking input.
	ClipLo, ClipHi float64

	// Progress, when non-nil, is invoked after every Gibbs sweep with the
	// training RMSE under the current factor draw and rating throughput
	// (TokensPerSec counts ratings). The hook draws no random numbers, so
	// trained models are bit-identical with and without it.
	Progress obs.Progress

	// Checkpoint, when non-nil, receives a full snapshot of the factor
	// matrices, score accumulator and RNG state every CheckpointEvery
	// completed sweeps (and once more on context cancellation). The snapshot
	// owns its memory; the hook draws no random numbers, so checkpointed
	// runs sample bit-identically to unhooked runs. A hook error aborts
	// training.
	Checkpoint func(*Checkpoint) error
	// CheckpointEvery is the sweep interval between Checkpoint calls;
	// 0 disables periodic checkpoints (a cancellation checkpoint is still
	// written when Checkpoint is set).
	CheckpointEvery int
}

// ConfigState is the hookless, serializable part of Config that checkpoints
// embed (captured after defaulting), so Resume continues under exactly the
// schedule the run started with.
type ConfigState struct {
	Rank           int
	Alpha, Beta0   float64
	Burn, Samples  int
	ClipLo, ClipHi float64
}

func (c *Config) state() ConfigState {
	return ConfigState{
		Rank: c.Rank, Alpha: c.Alpha, Beta0: c.Beta0,
		Burn: c.Burn, Samples: c.Samples,
		ClipLo: c.ClipLo, ClipHi: c.ClipHi,
	}
}

func (cs ConfigState) config() Config {
	return Config{
		Rank: cs.Rank, Alpha: cs.Alpha, Beta0: cs.Beta0,
		Burn: cs.Burn, Samples: cs.Samples,
		ClipLo: cs.ClipLo, ClipHi: cs.ClipHi,
	}
}

func (c *Config) fillDefaults() {
	if c.Alpha == 0 {
		c.Alpha = 2
	}
	if c.Beta0 == 0 {
		c.Beta0 = 2
	}
	if c.Burn == 0 {
		c.Burn = 20
	}
	if c.Samples == 0 {
		c.Samples = 30
	}
	if c.ClipLo == 0 && c.ClipHi == 0 {
		c.ClipHi = 1
	}
}

func (c *Config) validate() error {
	if c.Rank < 1 {
		return fmt.Errorf("bpmf: Rank must be positive, got %d", c.Rank)
	}
	if c.Alpha <= 0 || c.Beta0 <= 0 {
		return fmt.Errorf("bpmf: Alpha and Beta0 must be positive")
	}
	if c.Burn < 0 || c.Samples < 1 {
		return fmt.Errorf("bpmf: invalid Gibbs schedule (burn %d, samples %d)", c.Burn, c.Samples)
	}
	if c.ClipHi <= c.ClipLo {
		return fmt.Errorf("bpmf: ClipHi must exceed ClipLo")
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("bpmf: CheckpointEvery must be >= 0, got %d", c.CheckpointEvery)
	}
	return nil
}

// Model holds the posterior-mean predictive scores. For the paper's scale
// (N up to ~10^6 users but M = 38 items) the full score matrix is modest.
type Model struct {
	N, M   int
	Rank   int
	Scores *mat.Matrix // N x M posterior-mean predictions, clipped
}

// Predict returns the posterior-mean predictive score for (user, item).
func (m *Model) Predict(user, item int) float64 { return m.Scores.At(user, item) }

// indexRatings buckets ratings by user and item, range-checking each entry.
func indexRatings(n, mItems int, ratings []Rating) (byUser, byItem [][]Rating, err error) {
	byUser = make([][]Rating, n)
	byItem = make([][]Rating, mItems)
	for _, r := range ratings {
		if r.User < 0 || r.User >= n || r.Item < 0 || r.Item >= mItems {
			return nil, nil, fmt.Errorf("bpmf: rating (%d,%d) outside %dx%d", r.User, r.Item, n, mItems)
		}
		byUser[r.User] = append(byUser[r.User], r)
		byItem[r.Item] = append(byItem[r.Item], r)
	}
	return byUser, byItem, nil
}

// Train runs the BPMF Gibbs sampler on the observed ratings.
func Train(cfg Config, n, mItems int, ratings []Rating, g *rng.RNG) (*Model, error) {
	return TrainContext(context.Background(), cfg, n, mItems, ratings, g)
}

// TrainContext is Train with cooperative cancellation: ctx is checked at
// every sweep boundary, and on cancellation a final checkpoint is handed to
// cfg.Checkpoint (when set) before returning an error wrapping ctx.Err().
func TrainContext(ctx context.Context, cfg Config, n, mItems int, ratings []Rating, g *rng.RNG) (*Model, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if n < 1 || mItems < 1 {
		return nil, fmt.Errorf("bpmf: need positive matrix dimensions, got %dx%d", n, mItems)
	}
	byUser, byItem, err := indexRatings(n, mItems, ratings)
	if err != nil {
		return nil, err
	}

	d := cfg.Rank
	// factor matrices, initialized with small noise
	u := mat.New(n, d)
	v := mat.New(mItems, d)
	for i := range u.Data {
		u.Data[i] = 0.1 * g.Norm()
	}
	for i := range v.Data {
		v.Data[i] = 0.1 * g.Norm()
	}
	return trainLoop(ctx, cfg, ratings, byUser, byItem, u, v, mat.New(n, mItems), 0, 0, g)
}

// Resume continues an interrupted run from a checkpoint. ratings must be the
// same set the original call received; hooks supplies Progress/Checkpoint/
// CheckpointEvery for the continued run while the Gibbs schedule comes from
// the checkpoint. A resumed run draws the same random stream as the
// uninterrupted one, so the final model is bit-identical.
func Resume(ctx context.Context, ck *Checkpoint, ratings []Rating, hooks Config) (*Model, error) {
	cfg := ck.Cfg.config()
	cfg.Progress = hooks.Progress
	cfg.Checkpoint = hooks.Checkpoint
	cfg.CheckpointEvery = hooks.CheckpointEvery
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, fmt.Errorf("bpmf: checkpoint carries invalid config: %w", err)
	}
	if err := ck.validate(); err != nil {
		return nil, err
	}
	byUser, byItem, err := indexRatings(ck.N, ck.M, ratings)
	if err != nil {
		return nil, err
	}
	u := mat.FromSlice(ck.N, cfg.Rank, append([]float64(nil), ck.U...))
	v := mat.FromSlice(ck.M, cfg.Rank, append([]float64(nil), ck.V...))
	scoreAcc := mat.FromSlice(ck.N, ck.M, append([]float64(nil), ck.ScoreAcc...))
	g, err := rng.FromState(ck.RNG)
	if err != nil {
		return nil, fmt.Errorf("bpmf: checkpoint RNG state: %w", err)
	}
	return trainLoop(ctx, cfg, ratings, byUser, byItem, u, v, scoreAcc, ck.Kept, ck.Sweep, g)
}

// trainLoop runs sweeps startSweep..Burn+Samples-1, mutating the factor
// matrices and score accumulator in place.
func trainLoop(ctx context.Context, cfg Config, ratings []Rating, byUser, byItem [][]Rating, u, v, scoreAcc *mat.Matrix, kept, startSweep int, g *rng.RNG) (*Model, error) {
	n, mItems := u.Rows, v.Rows
	sp := obs.Start("bpmf.train")
	// Each sweep (and each checkpoint write) becomes a child span when ctx
	// carries an active trace; spans never touch the factor matrices or the
	// RNG stream, so traced and untraced runs are bit-identical.
	traced := trace.FromContext(ctx) != nil
	checkpoint := func(ck *Checkpoint) error {
		var csp *trace.Span
		if traced {
			_, csp = trace.Start(ctx, "bpmf.train.checkpoint")
			csp.AttrInt("sweep", int64(ck.Sweep))
		}
		err := cfg.Checkpoint(ck)
		if err != nil {
			csp.Error(err)
		}
		csp.End()
		return err
	}
	total := cfg.Burn + cfg.Samples
	for sweep := startSweep; sweep < total; sweep++ {
		if err := ctx.Err(); err != nil {
			if cfg.Checkpoint != nil {
				if cerr := checkpoint(snapshotState(&cfg, u, v, scoreAcc, kept, sweep, g)); cerr != nil {
					return nil, fmt.Errorf("bpmf: writing cancellation checkpoint: %w", cerr)
				}
			}
			return nil, fmt.Errorf("bpmf: training interrupted after sweep %d/%d: %w", sweep, total, err)
		}
		var swsp *trace.Span
		if traced {
			_, swsp = trace.Start(ctx, "bpmf.train.sweep")
			swsp.AttrInt("sweep", int64(sweep))
		}
		var sweepStart time.Time
		if cfg.Progress != nil {
			sweepStart = time.Now()
		}
		muU, lamU, err := sampleHyper(u, cfg.Beta0, g)
		if err != nil {
			return nil, fmt.Errorf("bpmf: sampling user hyperparameters: %w", err)
		}
		if err := sampleFactors(u, v, byUser, muU, lamU, cfg.Alpha, g); err != nil {
			return nil, fmt.Errorf("bpmf: sampling user factors: %w", err)
		}
		muV, lamV, err := sampleHyper(v, cfg.Beta0, g)
		if err != nil {
			return nil, fmt.Errorf("bpmf: sampling item hyperparameters: %w", err)
		}
		if err := sampleFactors(v, u, byItemSwapped(byItem), muV, lamV, cfg.Alpha, g); err != nil {
			return nil, fmt.Errorf("bpmf: sampling item factors: %w", err)
		}
		if sweep >= cfg.Burn {
			// Score accumulation is RNG-free and each task touches only its
			// own accumulator row with unchanged per-row arithmetic order, so
			// the fan-out is bit-identical at any worker count.
			_ = par.ForEach(context.Background(), n, func(i int) error {
				urow := u.Row(i)
				srow := scoreAcc.Row(i)
				for j := 0; j < mItems; j++ {
					p := mat.Dot(urow, v.Row(j))
					if p < cfg.ClipLo {
						p = cfg.ClipLo
					}
					if p > cfg.ClipHi {
						p = cfg.ClipHi
					}
					srow[j] += p
				}
				return nil
			})
			kept++
		}
		trainSweeps.Inc()
		trainRatings.Add(uint64(len(ratings)))
		if cfg.Progress != nil {
			var sq float64
			for _, r := range ratings {
				diff := mat.Dot(u.Row(r.User), v.Row(r.Item)) - r.Value
				sq += diff * diff
			}
			rmse := math.NaN()
			if len(ratings) > 0 {
				rmse = math.Sqrt(sq / float64(len(ratings)))
			}
			elapsed := time.Since(sweepStart).Seconds()
			tps := math.Inf(1)
			if elapsed > 0 {
				tps = float64(len(ratings)) / elapsed
			}
			cfg.Progress(obs.ProgressEvent{
				Model: "bpmf", Iteration: sweep + 1, Total: total,
				Loss: rmse, TokensPerSec: tps,
			})
		}
		swsp.End()
		if cfg.Checkpoint != nil && cfg.CheckpointEvery > 0 &&
			(sweep+1)%cfg.CheckpointEvery == 0 && sweep+1 < total {
			if err := checkpoint(snapshotState(&cfg, u, v, scoreAcc, kept, sweep+1, g)); err != nil {
				return nil, fmt.Errorf("bpmf: checkpoint hook at sweep %d: %w", sweep+1, err)
			}
		}
	}
	scoreAcc.Scale(1 / float64(kept))
	sp.End()
	return &Model{N: n, M: mItems, Rank: cfg.Rank, Scores: scoreAcc}, nil
}

// byItemSwapped flips (user, item) so sampleFactors can treat items as the
// "users" of the transposed problem.
func byItemSwapped(byItem [][]Rating) [][]Rating {
	out := make([][]Rating, len(byItem))
	for j, rs := range byItem {
		sw := make([]Rating, len(rs))
		for k, r := range rs {
			sw[k] = Rating{User: r.Item, Item: r.User, Value: r.Value}
		}
		out[j] = sw
	}
	return out
}

// sampleHyper draws (mu, Lambda) from the Normal-Wishart posterior given the
// factor matrix rows (Salakhutdinov & Mnih, Eq. 14). Priors: mu0 = 0,
// W0 = I, nu0 = D.
func sampleHyper(f *mat.Matrix, beta0 float64, g *rng.RNG) ([]float64, *mat.Matrix, error) {
	n := float64(f.Rows)
	d := f.Cols
	mean := make([]float64, d)
	for i := 0; i < f.Rows; i++ {
		mat.AxpyVec(1, f.Row(i), mean)
	}
	if f.Rows > 0 {
		mat.ScaleVec(1/n, mean)
	}
	// scatter S = 1/n Σ (x - mean)(x - mean)ᵀ
	s := mat.New(d, d)
	diff := make([]float64, d)
	for i := 0; i < f.Rows; i++ {
		row := f.Row(i)
		for k := 0; k < d; k++ {
			diff[k] = row[k] - mean[k]
		}
		mat.OuterAccum(s, 1, diff, diff)
	}
	if f.Rows > 0 {
		s.Scale(1 / n)
	}
	// posterior Wishart parameters
	beta := beta0 + n
	nu := float64(d) + n
	// W*⁻¹ = W0⁻¹ + n S + (beta0 n / beta) mean meanᵀ   (mu0 = 0)
	winv := mat.Identity(d)
	winv.AxpyInPlace(n, s)
	mat.OuterAccum(winv, beta0*n/beta, mean, mean)
	w, err := mat.InverseSPD(winv)
	if err != nil {
		return nil, nil, err
	}
	wchol, err := mat.CholeskyJittered(w, 1e-10, 12)
	if err != nil {
		return nil, nil, err
	}
	lambda := g.Wishart(nu, wchol)
	// mu ~ N(mu*, (beta Lambda)⁻¹), mu* = n mean / beta (mu0 = 0)
	muStar := make([]float64, d)
	for k := 0; k < d; k++ {
		muStar[k] = n * mean[k] / beta
	}
	prec := lambda.Clone()
	prec.Scale(beta)
	cov, err := mat.InverseSPD(prec)
	if err != nil {
		return nil, nil, err
	}
	cchol, err := mat.CholeskyJittered(cov, 1e-12, 12)
	if err != nil {
		return nil, nil, err
	}
	mu := g.MVNormal(muStar, cchol)
	return mu, lambda, nil
}

// sampleFactors resamples every row of f from its Gaussian full conditional
// given the other-side factors in other and the per-row observed ratings.
func sampleFactors(f, other *mat.Matrix, obs [][]Rating, mu []float64, lambda *mat.Matrix, alpha float64, g *rng.RNG) error {
	d := f.Cols
	lamMu := mat.MulVec(lambda, mu)
	prec := mat.New(d, d)
	rhs := make([]float64, d)
	for i := 0; i < f.Rows; i++ {
		prec.CopyFrom(lambda)
		copy(rhs, lamMu)
		for _, r := range obs[i] {
			vrow := other.Row(r.Item)
			mat.OuterAccum(prec, alpha, vrow, vrow)
			mat.AxpyVec(alpha*r.Value, vrow, rhs)
		}
		cov, err := mat.InverseSPD(prec)
		if err != nil {
			return err
		}
		mean := mat.MulVec(cov, rhs)
		cchol, err := mat.CholeskyJittered(cov, 1e-12, 12)
		if err != nil {
			return err
		}
		copy(f.Row(i), g.MVNormal(mean, cchol))
	}
	return nil
}

type gobModel struct {
	N, M, Rank int
	Scores     []float64
}

// Save serializes the model into a checksummed snapshot container of kind
// KindModel.
func (m *Model) Save(w io.Writer) error {
	return snapshot.Write(w, KindModel, func(w io.Writer) error {
		return gob.NewEncoder(w).Encode(gobModel{N: m.N, M: m.M, Rank: m.Rank, Scores: m.Scores.Data})
	})
}

// Load deserializes a model written by Save. Truncated, bit-flipped and
// wrong-kind files fail the container's integrity checks before any gob
// decoding runs.
func Load(r io.Reader) (*Model, error) {
	var g gobModel
	if err := snapshot.Read(r, KindModel, func(r io.Reader) error {
		return gob.NewDecoder(r).Decode(&g)
	}); err != nil {
		return nil, fmt.Errorf("bpmf: loading model: %w", err)
	}
	if g.N < 1 || g.M < 1 || len(g.Scores) != g.N*g.M {
		return nil, fmt.Errorf("bpmf: corrupt model")
	}
	return &Model{N: g.N, M: g.M, Rank: g.Rank, Scores: mat.FromSlice(g.N, g.M, g.Scores)}, nil
}

// ScoreDistribution returns all predicted scores flattened, for the paper's
// Figure 5 boxplot.
func (m *Model) ScoreDistribution() []float64 {
	out := make([]float64, len(m.Scores.Data))
	copy(out, m.Scores.Data)
	return out
}

// RMSE computes root-mean-squared error of predictions against ratings.
func (m *Model) RMSE(ratings []Rating) float64 {
	if len(ratings) == 0 {
		return math.NaN()
	}
	var s float64
	for _, r := range ratings {
		d := m.Predict(r.User, r.Item) - r.Value
		s += d * d
	}
	return math.Sqrt(s / float64(len(ratings)))
}
