package bpmf

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/rng"
)

func modelBytes(t *testing.T, m *Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCheckpointHookDoesNotPerturbTraining(t *testing.T) {
	ratings, _ := lowRankRatings(12, 8, rng.New(3))
	cfg := Config{Rank: 2, Burn: 4, Samples: 6}

	plain, err := Train(cfg, 12, 8, ratings, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	hooked := cfg
	calls := 0
	hooked.CheckpointEvery = 3
	hooked.Checkpoint = func(*Checkpoint) error { calls++; return nil }
	ckRun, err := Train(hooked, 12, 8, ratings, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("checkpoint hook never invoked")
	}
	if !bytes.Equal(modelBytes(t, plain), modelBytes(t, ckRun)) {
		t.Fatal("gob output differs with Checkpoint hook installed")
	}
}

func TestResumeMatchesUninterruptedRun(t *testing.T) {
	ratings, _ := lowRankRatings(12, 8, rng.New(5))
	cfg := Config{Rank: 2, Burn: 5, Samples: 7}

	straight, err := Train(cfg, 12, 8, ratings, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}

	// Capture a post-burn-in checkpoint (the accumulator must round-trip
	// too), serialize it, and resume.
	var mid *Checkpoint
	hooked := cfg
	hooked.CheckpointEvery = 7
	hooked.Checkpoint = func(ck *Checkpoint) error {
		if mid == nil {
			mid = ck
		}
		return nil
	}
	if _, err := Train(hooked, 12, 8, ratings, rng.New(99)); err != nil {
		t.Fatal(err)
	}
	if mid == nil {
		t.Fatal("no checkpoint captured")
	}
	if mid.Kept == 0 {
		t.Fatalf("checkpoint at sweep %d should carry accumulated samples", mid.Sweep)
	}
	var buf bytes.Buffer
	if err := mid.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(context.Background(), loaded, ratings, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(modelBytes(t, straight), modelBytes(t, resumed)) {
		t.Fatal("resumed model differs from uninterrupted run")
	}
}

func TestCancellationWritesFinalCheckpoint(t *testing.T) {
	ratings, _ := lowRankRatings(10, 6, rng.New(2))
	cfg := Config{Rank: 2, Burn: 4, Samples: 8}

	ctx, cancel := context.WithCancel(context.Background())
	var last *Checkpoint
	calls := 0
	cfg.CheckpointEvery = 3
	cfg.Checkpoint = func(ck *Checkpoint) error {
		last = ck
		calls++
		if calls == 1 {
			cancel()
		}
		return nil
	}
	_, err := TrainContext(ctx, cfg, 10, 6, ratings, rng.New(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if calls < 2 {
		t.Fatalf("cancellation must write a final checkpoint (calls = %d)", calls)
	}
	straight, err := Train(Config{Rank: 2, Burn: 4, Samples: 8}, 10, 6, ratings, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(context.Background(), last, ratings, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(modelBytes(t, straight), modelBytes(t, resumed)) {
		t.Fatal("resume after cancellation differs from uninterrupted run")
	}
}

func TestCheckpointHookErrorAbortsTraining(t *testing.T) {
	ratings, _ := lowRankRatings(8, 5, rng.New(2))
	boom := errors.New("disk full")
	cfg := Config{Rank: 2, Burn: 2, Samples: 6, CheckpointEvery: 2}
	cfg.Checkpoint = func(*Checkpoint) error { return boom }
	if _, err := Train(cfg, 8, 5, ratings, rng.New(1)); !errors.Is(err, boom) {
		t.Fatalf("want hook error surfaced, got %v", err)
	}
}

func TestLoadCheckpointRejectsCorruptState(t *testing.T) {
	ratings, _ := lowRankRatings(8, 5, rng.New(2))
	cfg := Config{Rank: 2, Burn: 2, Samples: 6, CheckpointEvery: 3}
	var mid *Checkpoint
	cfg.Checkpoint = func(ck *Checkpoint) error { mid = ck; return nil }
	if _, err := Train(cfg, 8, 5, ratings, rng.New(1)); err != nil {
		t.Fatal(err)
	}

	bad := *mid
	bad.U = mid.U[:3] // truncated factor matrix
	var buf bytes.Buffer
	if err := bad.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(&buf); err == nil {
		t.Fatal("truncated factor matrix accepted")
	}

	bad2 := *mid
	bad2.Kept = 99 // more samples than the schedule allows
	buf.Reset()
	if err := bad2.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(&buf); err == nil {
		t.Fatal("impossible kept count accepted")
	}
}
