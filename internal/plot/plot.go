// Package plot renders the paper's figures as standalone SVG files using
// only the standard library: line charts (perplexity curves, accuracy
// sweeps, silhouette curves), scatter plots with labels (the t-SNE product
// projections) and box plots (the BPMF score distribution). The goal is not
// a general charting library but faithful, dependency-free renderings of
// the eight figures this repository reproduces.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/snapshot"
)

// Series is one named line of a line chart.
type Series struct {
	Name string
	X, Y []float64
	// Dashed draws the series with a dashed stroke.
	Dashed bool
}

// palette cycles through visually distinct stroke colors.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#e377c2", "#17becf", "#bcbd22", "#7f7f7f",
}

// LineChart describes a multi-series line chart.
type LineChart struct {
	Title          string
	XLabel, YLabel string
	Series         []Series
	Width, Height  int  // 0 selects 720x480
	LegendAtBottom bool //
	YMinZero       bool // force the y-axis to start at 0
}

// axis computes nice bounds and returns (min, max).
func axisBounds(vals []float64, forceZero bool) (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if math.IsInf(lo, 1) { // no finite data
		return 0, 1
	}
	if forceZero && lo > 0 {
		lo = 0
	}
	if hi == lo {
		hi = lo + 1
	}
	pad := (hi - lo) * 0.06
	return lo - pad, hi + pad
}

// SVG renders the chart.
func (c *LineChart) SVG() string {
	w, h := c.Width, c.Height
	if w == 0 {
		w = 720
	}
	if h == 0 {
		h = 480
	}
	const mL, mR, mT, mB = 64, 24, 40, 56
	pw, ph := float64(w-mL-mR), float64(h-mT-mB)

	var allX, allY []float64
	for _, s := range c.Series {
		allX = append(allX, s.X...)
		allY = append(allY, s.Y...)
	}
	xmin, xmax := axisBounds(allX, false)
	ymin, ymax := axisBounds(allY, c.YMinZero)
	tx := func(x float64) float64 { return float64(mL) + (x-xmin)/(xmax-xmin)*pw }
	ty := func(y float64) float64 { return float64(mT) + (1-(y-ymin)/(ymax-ymin))*ph }

	var b strings.Builder
	header(&b, w, h)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="16" text-anchor="middle" font-family="sans-serif">%s</text>`+"\n", w/2, escape(c.Title))
	// axes
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n", mL, h-mB, w-mR, h-mB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n", mL, mT, mL, h-mB)
	// ticks: 5 per axis
	for i := 0; i <= 5; i++ {
		fx := xmin + (xmax-xmin)*float64(i)/5
		fy := ymin + (ymax-ymin)*float64(i)/5
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#333"/>`+"\n", tx(fx), h-mB, tx(fx), h-mB+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle" font-family="sans-serif">%s</text>`+"\n", tx(fx), h-mB+18, fmtTick(fx))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#333"/>`+"\n", mL-5, ty(fy), mL, ty(fy))
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end" font-family="sans-serif">%s</text>`+"\n", mL-8, ty(fy)+4, fmtTick(fy))
	}
	// axis labels
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="13" text-anchor="middle" font-family="sans-serif">%s</text>`+"\n", mL+int(pw/2), h-12, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" font-size="13" text-anchor="middle" font-family="sans-serif" transform="rotate(-90 16 %d)">%s</text>`+"\n", mT+int(ph/2), mT+int(ph/2), escape(c.YLabel))
	// series
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		dash := ""
		if s.Dashed {
			dash = ` stroke-dasharray="6,4"`
		}
		var pts []string
		for i := range s.X {
			if i < len(s.Y) && !math.IsNaN(s.Y[i]) {
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", tx(s.X[i]), ty(s.Y[i])))
			}
		}
		if len(pts) > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"%s/>`+"\n", strings.Join(pts, " "), color, dash)
		}
		for i := range s.X {
			if i < len(s.Y) && !math.IsNaN(s.Y[i]) {
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", tx(s.X[i]), ty(s.Y[i]), color)
			}
		}
		// legend
		lx, ly := w-mR-150, mT+18*si+6
		if c.LegendAtBottom {
			lx, ly = mL+140*si, h-30
		}
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"%s/>`+"\n", lx, ly, lx+22, ly, color, dash)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" font-family="sans-serif">%s</text>`+"\n", lx+28, ly+4, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// LabeledPoint is one labeled scatter point (a t-SNE product).
type LabeledPoint struct {
	Label string
	Group int // color index
	X, Y  float64
}

// Scatter describes a labeled scatter plot.
type Scatter struct {
	Title         string
	Points        []LabeledPoint
	Width, Height int
}

// SVG renders the scatter plot.
func (s *Scatter) SVG() string {
	w, h := s.Width, s.Height
	if w == 0 {
		w = 760
	}
	if h == 0 {
		h = 560
	}
	const m = 48
	var xs, ys []float64
	for _, p := range s.Points {
		xs = append(xs, p.X)
		ys = append(ys, p.Y)
	}
	xmin, xmax := axisBounds(xs, false)
	ymin, ymax := axisBounds(ys, false)
	tx := func(x float64) float64 { return m + (x-xmin)/(xmax-xmin)*float64(w-2*m) }
	ty := func(y float64) float64 { return m + (1-(y-ymin)/(ymax-ymin))*float64(h-2*m) }

	var b strings.Builder
	header(&b, w, h)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="16" text-anchor="middle" font-family="sans-serif">%s</text>`+"\n", w/2, escape(s.Title))
	for _, p := range s.Points {
		color := palette[p.Group%len(palette)]
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="4" fill="%s" fill-opacity="0.85"/>`+"\n", tx(p.X), ty(p.Y), color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" font-family="sans-serif">%s</text>`+"\n", tx(p.X)+6, ty(p.Y)+3, escape(p.Label))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// Box describes a single-box box plot (the paper's Figure 5).
type Box struct {
	Title                    string
	Min, Q1, Median, Q3, Max float64
	WhiskerLo, WhiskerHi     float64
	Outliers                 []float64
	Width, Height            int
}

// SVG renders the box plot.
func (bx *Box) SVG() string {
	w, h := bx.Width, bx.Height
	if w == 0 {
		w = 320
	}
	if h == 0 {
		h = 480
	}
	const m = 56
	vals := append([]float64{bx.Min, bx.Max}, bx.Outliers...)
	ymin, ymax := axisBounds(vals, false)
	ty := func(y float64) float64 { return m + (1-(y-ymin)/(ymax-ymin))*float64(h-2*m) }
	cx := float64(w) / 2
	bw := float64(w) * 0.25

	var b strings.Builder
	header(&b, w, h)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="14" text-anchor="middle" font-family="sans-serif">%s</text>`+"\n", w/2, escape(bx.Title))
	// y ticks
	for i := 0; i <= 5; i++ {
		fy := ymin + (ymax-ymin)*float64(i)/5
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end" font-family="sans-serif">%s</text>`+"\n", int(cx-bw)-14, ty(fy)+4, fmtTick(fy))
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n", cx-bw-8, ty(fy), cx+bw+8, ty(fy))
	}
	// whiskers
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#333"/>`+"\n", cx, ty(bx.WhiskerLo), cx, ty(bx.Q1))
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#333"/>`+"\n", cx, ty(bx.Q3), cx, ty(bx.WhiskerHi))
	for _, y := range []float64{bx.WhiskerLo, bx.WhiskerHi} {
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#333"/>`+"\n", cx-bw/2, ty(y), cx+bw/2, ty(y))
	}
	// box + median
	fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#9ecae1" stroke="#333"/>`+"\n",
		cx-bw, ty(bx.Q3), 2*bw, ty(bx.Q1)-ty(bx.Q3))
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#d62728" stroke-width="2"/>`+"\n",
		cx-bw, ty(bx.Median), cx+bw, ty(bx.Median))
	// outliers
	for _, o := range bx.Outliers {
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="none" stroke="#333"/>`+"\n", cx, ty(o))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func header(b *strings.Builder, w, h int) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
}

func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 100000:
		return fmt.Sprintf("%.0fk", v/1000)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// WriteFile writes svg content to path atomically (temp file + fsync +
// rename), so an interrupted run never leaves a truncated figure behind.
func WriteFile(path, svg string) error {
	return snapshot.Atomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, svg)
		return err
	})
}
