package plot

import (
	"encoding/xml"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// validXML checks the SVG is well-formed XML.
func validXML(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("invalid XML: %v\n%s", err, svg[:min(len(svg), 400)])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestLineChartSVG(t *testing.T) {
	c := &LineChart{
		Title:  "Figure 2: perplexity vs topics",
		XLabel: "number of latent topics",
		YLabel: "perplexity",
		Series: []Series{
			{Name: "binary", X: []float64{2, 3, 4}, Y: []float64{26.9, 23.8, 23.8}},
			{Name: "TF-IDF", X: []float64{2, 3, 4}, Y: []float64{28.1, 24.0, 26.0}, Dashed: true},
		},
	}
	svg := c.SVG()
	validXML(t, svg)
	for _, want := range []string{"polyline", "binary", "TF-IDF", "perplexity", "stroke-dasharray"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
}

func TestLineChartHandlesNaN(t *testing.T) {
	c := &LineChart{
		Series: []Series{{Name: "s", X: []float64{0, 1, 2}, Y: []float64{1, math.NaN(), 3}}},
	}
	svg := c.SVG()
	validXML(t, svg)
	if strings.Contains(svg, "NaN") {
		t.Fatal("NaN leaked into SVG")
	}
}

func TestLineChartEmptyAndConstant(t *testing.T) {
	// no data at all
	empty := &LineChart{Title: "empty"}
	validXML(t, empty.SVG())
	// constant series (zero range axes)
	flat := &LineChart{Series: []Series{{Name: "flat", X: []float64{1, 2}, Y: []float64{5, 5}}}}
	svg := flat.SVG()
	validXML(t, svg)
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Fatal("degenerate axis leaked non-finite values")
	}
}

func TestScatterSVG(t *testing.T) {
	s := &Scatter{
		Title: "Figure 8: LDA3 product embeddings",
		Points: []LabeledPoint{
			{Label: "server_HW", Group: 0, X: 1, Y: 2},
			{Label: "commerce & retail", Group: 1, X: -3, Y: 4},
		},
	}
	svg := s.SVG()
	validXML(t, svg)
	if !strings.Contains(svg, "server_HW") {
		t.Fatal("label missing")
	}
	if !strings.Contains(svg, "&amp;") {
		t.Fatal("ampersand not escaped")
	}
}

func TestBoxSVG(t *testing.T) {
	b := &Box{
		Title: "Figure 5: BPMF scores",
		Min:   0.85, Q1: 0.94, Median: 0.956, Q3: 0.968, Max: 0.999,
		WhiskerLo: 0.9, WhiskerHi: 0.999,
		Outliers: []float64{0.85, 0.86},
	}
	svg := b.SVG()
	validXML(t, svg)
	if !strings.Contains(svg, "rect") || !strings.Contains(svg, "circle") {
		t.Fatal("box or outliers missing")
	}
}

func TestWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fig.svg")
	c := &LineChart{Series: []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{1, 2}}}}
	if err := WriteFile(path, c.SVG()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Fatal("file does not start with <svg")
	}
}

func TestTickFormatting(t *testing.T) {
	cases := map[float64]string{
		250000: "250k",
		150:    "150",
		2.5:    "2.5",
		0.034:  "0.03",
	}
	for v, want := range cases {
		if got := fmtTick(v); got != want {
			t.Fatalf("fmtTick(%v) = %q, want %q", v, got, want)
		}
	}
}
