package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// SLO defaults; a zero SLOConfig field selects the matching constant.
const (
	// DefaultSLOWindow is the rolling window the objectives are evaluated
	// over. One minute matches the shortest alerting window an operator
	// would page on.
	DefaultSLOWindow = time.Minute
	// DefaultSLOBuckets is the ring size K: the window slides in steps of
	// Window/K, so 6 buckets give 10s granularity on the default window.
	DefaultSLOBuckets = 6
	// DefaultSLOAvailability is the availability objective (non-5xx
	// fraction of requests) when the config leaves it zero.
	DefaultSLOAvailability = 0.999
	// DefaultSLOLatency is the per-endpoint p99 latency objective applied
	// to endpoints with no explicit entry.
	DefaultSLOLatency = 100 * time.Millisecond
)

// SLOConfig declares the serving objectives the server tracks over a rolling
// window: one availability objective shared by every query endpoint, and a
// p99 latency objective per endpoint (the "default" key is the fallback).
// Zero values select the Default* constants above.
type SLOConfig struct {
	// Window is the rolling evaluation span.
	Window time.Duration
	// Buckets is the ring size K; the window advances in Window/K steps.
	Buckets int
	// Availability is the objective fraction of requests answered without a
	// server error (status < 500), e.g. 0.999 for "three nines".
	Availability float64
	// Latency maps endpoint name (similar, recommend, whitespace, infer) to
	// its p99 latency objective. The "default" entry covers endpoints with
	// no explicit one; missing entirely selects DefaultSLOLatency.
	Latency map[string]time.Duration
	// Recall is the observed-recall objective in (0, 1), evaluated against a
	// RecallSource (the shadow sampler's sliding-window mean) when one is
	// attached. Zero disables the recall objective — /debug/slo and /healthz
	// bodies stay exactly as before.
	Recall float64
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Window <= 0 {
		c.Window = DefaultSLOWindow
	}
	if c.Buckets < 2 {
		c.Buckets = DefaultSLOBuckets
	}
	if c.Availability <= 0 || c.Availability >= 1 {
		c.Availability = DefaultSLOAvailability
	}
	if c.Recall < 0 || c.Recall >= 1 {
		c.Recall = 0
	}
	return c
}

// latencyObjective resolves the objective for one endpoint.
func (c SLOConfig) latencyObjective(endpoint string) time.Duration {
	if d, ok := c.Latency[endpoint]; ok && d > 0 {
		return d
	}
	if d, ok := c.Latency["default"]; ok && d > 0 {
		return d
	}
	return DefaultSLOLatency
}

// ParseLatencyObjectives parses the -slo-latency flag syntax: a
// comma-separated list of endpoint=duration pairs, e.g.
// "default=100ms,similar=50ms". An empty string yields nil (all defaults).
func ParseLatencyObjectives(s string) (map[string]time.Duration, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	out := make(map[string]time.Duration)
	for _, part := range strings.Split(s, ",") {
		name, raw, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("serve: latency objective %q is not endpoint=duration", part)
		}
		d, err := time.ParseDuration(strings.TrimSpace(raw))
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("serve: latency objective %q has a bad duration", part)
		}
		out[strings.TrimSpace(name)] = d
	}
	return out, nil
}

// sloEndpoint is the rolling state of one endpoint: a windowed latency
// histogram (registered as <prefix>_<name>_latency_window_seconds so the
// JSON snapshot exposes the sliding quantiles) and windowed request/error
// counters feeding the error-budget math.
type sloEndpoint struct {
	name       string
	latencyObj time.Duration
	latency    *obs.WindowedHistogram
	requests   *obs.WindowedCounter
	errors     *obs.WindowedCounter
}

// SLOTracker owns per-endpoint rolling SLO state and the shared rotation
// ticker. It is the reusable half of the serving SLO layer: internal/serve
// feeds it from the request shell, and a scatter-gather router (or any other
// front end) can construct its own under a different metric prefix and mount
// its /debug/slo route on the shared debug listener. A nil *SLOTracker is
// inert: Record, Close and Routes are no-ops.
type SLOTracker struct {
	cfg      SLOConfig
	started  time.Time
	order    []string
	trackers map[string]*sloEndpoint
	stop     func()
	recall   RecallSource // nil = no recall objective evaluated
}

// RecallSource supplies the observed result-quality signal the recall
// objective is evaluated against: a sliding-window mean recall and the
// sample count it rests on. internal/shadow's Sampler implements it.
type RecallSource interface {
	ObservedRecall() (mean float64, samples uint64)
}

// SetRecallSource attaches the observed-recall signal. Call before serving;
// with no source (or a zero cfg.Recall) the recall objective is skipped and
// Status output is unchanged. Nil-safe.
func (s *SLOTracker) SetRecallSource(src RecallSource) {
	if s != nil {
		s.recall = src
	}
}

// NewSLOTracker builds trackers for the given endpoints and starts one
// ticker rotating every tracker each Window/Buckets. The windowed latency
// histograms register as <prefix>_<endpoint>_latency_window_seconds, so two
// trackers in one process (e.g. a router and an embedded shard in tests)
// must use distinct prefixes. The caller must Close the tracker to release
// the ticker goroutine.
func NewSLOTracker(cfg SLOConfig, prefix string, endpoints []string) *SLOTracker {
	cfg = cfg.withDefaults()
	set := &SLOTracker{
		cfg:      cfg,
		started:  time.Now(),
		order:    append([]string(nil), endpoints...),
		trackers: make(map[string]*sloEndpoint, len(endpoints)),
	}
	rotators := make([]obs.Rotator, 0, 3*len(endpoints))
	for _, name := range endpoints {
		tr := &sloEndpoint{
			name:       name,
			latencyObj: cfg.latencyObjective(name),
			latency: obs.Default().WindowedHistogram(
				prefix+"_"+name+"_latency_window_seconds",
				"rolling-window latency of served "+name+" queries (SLO evaluation window)",
				obs.DefBuckets, cfg.Buckets),
			requests: obs.NewWindowedCounter(cfg.Buckets),
			errors:   obs.NewWindowedCounter(cfg.Buckets),
		}
		set.trackers[name] = tr
		rotators = append(rotators, tr.latency, tr.requests, tr.errors)
	}
	set.stop = obs.StartWindowTicker(cfg.Window/time.Duration(cfg.Buckets), rotators...)
	return set
}

// Record folds one finished request into the endpoint's rolling window:
// every request counts toward availability, server errors (status >= 500 —
// saturation, deadline, internal failure) consume error budget, and latency
// is observed for answered requests only (status < 400) so client mistakes
// cannot dilute the latency distribution. Nil tracker (SLOs off) is a no-op,
// keeping the disabled path free of metric deltas.
func (s *SLOTracker) Record(endpoint string, status int, dur time.Duration) {
	if s == nil {
		return
	}
	tr := s.trackers[endpoint]
	if tr == nil {
		return
	}
	tr.requests.Inc()
	if status >= 500 {
		tr.errors.Inc()
	}
	if status < 400 {
		tr.latency.Observe(dur.Seconds())
	}
}

// Close stops the rotation ticker. Safe on nil and safe to call twice.
func (s *SLOTracker) Close() {
	if s != nil && s.stop != nil {
		s.stop()
	}
}

// SLOEndpointStatus is one endpoint's rolling evaluation in /debug/slo.
type SLOEndpointStatus struct {
	Endpoint string `json:"endpoint"`
	// Requests and Errors count over the rolling window only.
	Requests uint64  `json:"requests"`
	Errors   uint64  `json:"errors"`
	QPS      float64 `json:"qps"`
	// ErrorRate is Errors/Requests; 0 when the window is empty.
	ErrorRate             float64 `json:"error_rate"`
	AvailabilityObjective float64 `json:"availability_objective"`
	// ErrorBudget is the allowed error fraction, 1 - objective.
	ErrorBudget float64 `json:"error_budget"`
	// BurnRate is ErrorRate/ErrorBudget: 1.0 means errors are arriving at
	// exactly the rate that exhausts the budget; >1 is an active burn.
	BurnRate float64 `json:"burn_rate"`
	// BudgetRemaining is the unspent fraction of the window's error budget,
	// max(0, 1 - BurnRate).
	BudgetRemaining    float64 `json:"error_budget_remaining"`
	LatencyObjectiveMS float64 `json:"latency_objective_ms"`
	P50MS              float64 `json:"p50_ms"`
	P90MS              float64 `json:"p90_ms"`
	P99MS              float64 `json:"p99_ms"`
	P999MS             float64 `json:"p999_ms"`
	AvailabilityOK     bool    `json:"availability_ok"`
	LatencyOK          bool    `json:"latency_ok"`
	OK                 bool    `json:"ok"`
}

// SLORecallStatus is the recall objective's rolling evaluation: the third
// SLO pillar next to availability and latency, fed by shadow sampling. The
// burn rate is the quality analogue of the availability one — missed-recall
// fraction over allowed-miss fraction, (1−observed)/(1−objective) — so 1.0
// means the index is decaying at exactly the tolerated rate.
type SLORecallStatus struct {
	Objective float64 `json:"objective"`
	Observed  float64 `json:"observed"`
	// Samples is the shadow-sample count behind Observed over the window; a
	// zero-sample window is reported but never evaluated (no data, no burn).
	Samples  uint64  `json:"samples"`
	BurnRate float64 `json:"burn_rate"`
	OK       bool    `json:"ok"`
}

// SLOStatus is the full /debug/slo body.
type SLOStatus struct {
	WindowSec    float64             `json:"window_seconds"`
	Buckets      int                 `json:"buckets"`
	Availability float64             `json:"availability_objective"`
	OK           bool                `json:"ok"`
	Burning      []string            `json:"burning,omitempty"` // endpoints (or "recall") currently violating an objective
	Endpoints    []SLOEndpointStatus `json:"endpoints"`
	// Recall is present only when a recall objective and source are
	// configured (-slo-recall with -shadow-sample); nil keeps the body
	// byte-identical to a latency/availability-only tracker.
	Recall *SLORecallStatus `json:"recall,omitempty"`
}

// Status evaluates every tracker against its objectives right now.
func (s *SLOTracker) Status() SLOStatus {
	out := SLOStatus{
		WindowSec:    s.cfg.Window.Seconds(),
		Buckets:      s.cfg.Buckets,
		Availability: s.cfg.Availability,
		OK:           true,
	}
	// QPS over a freshly started server divides by elapsed time, not the
	// full window, so a 5s-old process doesn't report 1/12th of its rate.
	span := time.Since(s.started).Seconds()
	if w := s.cfg.Window.Seconds(); span > w {
		span = w
	}
	for _, name := range s.order {
		tr := s.trackers[name]
		req, errs := tr.requests.Total(), tr.errors.Total()
		st := SLOEndpointStatus{
			Endpoint:              name,
			Requests:              req,
			Errors:                errs,
			AvailabilityObjective: s.cfg.Availability,
			ErrorBudget:           1 - s.cfg.Availability,
			LatencyObjectiveMS:    float64(tr.latencyObj) / float64(time.Millisecond),
			P50MS:                 tr.latency.Quantile(0.50) * 1e3,
			P90MS:                 tr.latency.Quantile(0.90) * 1e3,
			P99MS:                 tr.latency.Quantile(0.99) * 1e3,
			P999MS:                tr.latency.Quantile(0.999) * 1e3,
		}
		if span > 0 {
			st.QPS = float64(req) / span
		}
		if req > 0 {
			st.ErrorRate = float64(errs) / float64(req)
		}
		st.BurnRate = st.ErrorRate / st.ErrorBudget
		st.BudgetRemaining = 1 - st.BurnRate
		if st.BudgetRemaining < 0 {
			st.BudgetRemaining = 0
		}
		st.AvailabilityOK = st.BurnRate <= 1
		st.LatencyOK = st.P99MS <= st.LatencyObjectiveMS
		st.OK = st.AvailabilityOK && st.LatencyOK
		if !st.OK {
			out.OK = false
			out.Burning = append(out.Burning, name)
		}
		out.Endpoints = append(out.Endpoints, st)
	}
	if s.cfg.Recall > 0 && s.recall != nil {
		mean, n := s.recall.ObservedRecall()
		rs := &SLORecallStatus{Objective: s.cfg.Recall, Observed: mean, Samples: n, OK: true}
		if n > 0 {
			rs.BurnRate = (1 - mean) / (1 - s.cfg.Recall)
			rs.OK = rs.BurnRate <= 1
		}
		if !rs.OK {
			out.OK = false
			out.Burning = append(out.Burning, "recall")
		}
		out.Recall = rs
	}
	sort.Strings(out.Burning)
	return out
}

// sloHealthJSON is the one-line SLO summary folded into /healthz when SLO
// tracking is on; omitted entirely (json omitempty on a nil pointer) when
// off, so the disabled-path /healthz body is byte-identical.
type sloHealthJSON struct {
	OK      bool     `json:"ok"`
	Burning []string `json:"burning,omitempty"`
}

// handleSLO serves GET /debug/slo: the JSON evaluation by default, or an
// aligned human-readable table with ?format=text.
func (s *SLOTracker) handleSLO(w http.ResponseWriter, r *http.Request) {
	st := s.Status()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeSLOText(w, st)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
}

func writeSLOText(w http.ResponseWriter, st SLOStatus) {
	overall := "OK"
	if !st.OK {
		overall = "BURNING: " + strings.Join(st.Burning, ", ")
	}
	fmt.Fprintf(w, "SLO %s  window=%gs  availability objective=%.4f\n\n",
		overall, st.WindowSec, st.Availability)
	fmt.Fprintf(w, "%-12s %8s %6s %8s %8s %9s %9s %9s %10s %s\n",
		"endpoint", "req", "err", "qps", "burn", "p50ms", "p99ms", "p999ms", "obj_ms", "status")
	for _, e := range st.Endpoints {
		status := "ok"
		switch {
		case !e.AvailabilityOK && !e.LatencyOK:
			status = "burning(avail,lat)"
		case !e.AvailabilityOK:
			status = "burning(avail)"
		case !e.LatencyOK:
			status = "burning(lat)"
		}
		fmt.Fprintf(w, "%-12s %8d %6d %8.1f %8.2f %9.3f %9.3f %9.3f %10g %s\n",
			e.Endpoint, e.Requests, e.Errors, e.QPS, e.BurnRate,
			e.P50MS, e.P99MS, e.P999MS, e.LatencyObjectiveMS, status)
	}
	if rc := st.Recall; rc != nil {
		status := "ok"
		if !rc.OK {
			status = "burning(recall)"
		}
		if rc.Samples == 0 {
			status = "no data"
		}
		fmt.Fprintf(w, "\nrecall       observed=%.4f objective=%.4f samples=%d burn=%.2f %s\n",
			rc.Observed, rc.Objective, rc.Samples, rc.BurnRate, status)
	}
}

// Routes returns the tracker's /debug/slo route for a -debug-addr mux, or
// nothing on a nil tracker — the debug listener's route set is unchanged on
// the disabled path.
func (s *SLOTracker) Routes() []obs.Route {
	if s == nil {
		return nil
	}
	return []obs.Route{{Pattern: "GET /debug/slo", Handler: http.HandlerFunc(s.handleSLO)}}
}

// SLORoutes returns the /debug/slo route for the -debug-addr mux, or nothing
// when SLO tracking is off — the debug listener's route set is unchanged on
// the disabled path.
func (s *Server) SLORoutes() []obs.Route { return s.slo.Routes() }

// ShadowRoutes returns the /debug/recall route for the -debug-addr mux, or
// nothing when shadow sampling is off (same disabled-path contract as
// SLORoutes). The same route is also mounted on the serving mux so routers
// and load generators can scrape it without knowing the debug address.
func (s *Server) ShadowRoutes() []obs.Route { return s.shadow.Routes() }

// Close releases the server's background resources: the shadow sampler (its
// worker drains, releasing any generation references queued samples hold),
// the SLO rotation ticker, and the live generation's reference (so an
// mmap-backed model is unmapped once in-flight requests drain). Stop routing
// traffic here before Close; straggler requests that arrive anyway answer 503
// (current() refuses the dead generation) rather than touch unmapped memory.
// Safe to call more than once: the current-generation release is guarded so a
// double Close cannot double-unmap.
func (s *Server) Close() {
	s.shadow.Close()
	s.slo.Close()
	if s.closed.CompareAndSwap(false, true) {
		s.cur.Load().release()
	}
}
