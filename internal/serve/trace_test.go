package serve

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/trace"
)

// withWorkers pins the par pool size for a test (workers=1 makes shard scans
// sequential, so a traced root's duration deterministically bounds the sum of
// its shard children) and restores the previous size on cleanup.
func withWorkers(t *testing.T, n int) {
	t.Helper()
	prev := par.Workers()
	par.SetWorkers(n)
	t.Cleanup(func() { par.SetWorkers(prev) })
}

// newServeTracer returns a private enabled tracer so tests never mutate
// trace.Default(), which other packages share.
func newServeTracer(sample float64) *trace.Tracer {
	tr := trace.NewTracer(64)
	tr.SetEnabled(true)
	tr.SetSampleRate(sample)
	return tr
}

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// findSpans walks the exported tree depth-first collecting spans by name.
func findSpans(root *trace.SpanJSON, name string) []*trace.SpanJSON {
	var out []*trace.SpanJSON
	if root == nil {
		return out
	}
	if root.Name == name {
		out = append(out, root)
	}
	for _, c := range root.Children {
		out = append(out, findSpans(c, name)...)
	}
	return out
}

func attrValue(sp *trace.SpanJSON, key string) (string, bool) {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// TestTraceSpanTreeForSimilar drives a traced /v1/similar query and asserts
// the acceptance shape: serve.similar -> core.topk -> par.shard, with the
// root duration bounding the sum of the shard scans (workers=1 keeps the
// shards sequential so the inequality is deterministic, not probabilistic).
func TestTraceSpanTreeForSimilar(t *testing.T) {
	withWorkers(t, 1)
	tr := newServeTracer(1)
	s, _, _ := newTestServer(t, Config{Tracer: tr, Quiet: true, Logger: discardLogger()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/similar/3?k=5")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	tp, ok := trace.ParseTraceparent(resp.Header.Get("traceparent"))
	if !ok {
		t.Fatalf("response traceparent %q did not parse", resp.Header.Get("traceparent"))
	}

	tj, ok := tr.Get(tp.TraceID.String())
	if !ok {
		t.Fatalf("trace %s not retained", tp.TraceID)
	}
	if tj.Name != "serve.similar" || tj.Root == nil || tj.Root.Name != "serve.similar" {
		t.Fatalf("root span %+v, want serve.similar", tj.Root)
	}
	if tj.Retained != trace.RetainedSampled {
		t.Fatalf("retained %q, want %q", tj.Retained, trace.RetainedSampled)
	}
	if v, ok := attrValue(tj.Root, "status"); !ok || v != "200" {
		t.Fatalf("root status attr %q ok=%v", v, ok)
	}
	if v, ok := attrValue(tj.Root, "path"); !ok || v != "/v1/similar/3" {
		t.Fatalf("root path attr %q ok=%v", v, ok)
	}

	topk := findSpans(tj.Root, "core.topk")
	if len(topk) != 1 {
		t.Fatalf("found %d core.topk spans, want 1", len(topk))
	}
	shards := findSpans(topk[0], "par.shard")
	if len(shards) == 0 {
		t.Fatal("no par.shard spans under core.topk")
	}
	var shardSum int64
	for _, sh := range shards {
		if _, ok := attrValue(sh, "shard"); !ok {
			t.Fatalf("par.shard span missing shard attr: %+v", sh)
		}
		shardSum += sh.DurUS
	}
	if topk[0].DurUS < shardSum {
		t.Fatalf("core.topk duration %dus < shard sum %dus", topk[0].DurUS, shardSum)
	}
	if tj.Root.DurUS < shardSum {
		t.Fatalf("root duration %dus < shard sum %dus", tj.Root.DurUS, shardSum)
	}
	if tj.Root.DurUS != tj.DurUS {
		t.Fatalf("trace duration %dus != root span %dus", tj.DurUS, tj.Root.DurUS)
	}
}

// TestTailSamplingRetention pins the retention rules end to end: at sample
// rate zero a fast successful request is sampled out, a failed request is
// always retained as an error, and once the slow threshold is below the
// request duration the next success is retained as slow.
func TestTailSamplingRetention(t *testing.T) {
	tr := newServeTracer(0)
	s, _, _ := newTestServer(t, Config{Tracer: tr, Quiet: true, Logger: discardLogger()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	mustGet := func(path string, want int) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}

	mustGet("/v1/similar/3?k=5", http.StatusOK)
	if got := tr.Traces("", 0, -1); len(got) != 0 {
		t.Fatalf("fast success retained at sample rate 0: %+v", got)
	}

	mustGet("/v1/similar/notanid?k=5", http.StatusBadRequest)
	errs := tr.Traces("serve.similar", 0, -1)
	if len(errs) != 1 {
		t.Fatalf("retained %d traces after failure, want 1", len(errs))
	}
	if !errs[0].Error || errs[0].Retained != trace.RetainedError {
		t.Fatalf("failure trace %+v, want retained=%q", errs[0], trace.RetainedError)
	}
	if tj, ok := tr.Get(errs[0].TraceID); !ok || tj.Root == nil || tj.Root.Error == "" {
		t.Fatalf("error trace tree missing root error: %+v", tj)
	}

	tr.SetSlowThreshold(time.Nanosecond)
	mustGet("/v1/similar/4?k=5", http.StatusOK)
	slow := tr.Traces("", 0, 1)
	if len(slow) != 1 || slow[0].Retained != trace.RetainedSlow {
		t.Fatalf("slow trace %+v, want retained=%q", slow, trace.RetainedSlow)
	}
}

// TestTraceparentPropagation sends a W3C traceparent header and asserts the
// server joins the caller's trace: same trace ID echoed with a fresh span ID,
// and the retained tree records the remote parent.
func TestTraceparentPropagation(t *testing.T) {
	const inbound = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	tr := newServeTracer(1)
	s, _, _ := newTestServer(t, Config{Tracer: tr, Quiet: true, Logger: discardLogger()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/similar/5?k=3", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", inbound)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	echo, ok := trace.ParseTraceparent(resp.Header.Get("traceparent"))
	if !ok {
		t.Fatalf("echoed traceparent %q did not parse", resp.Header.Get("traceparent"))
	}
	if echo.TraceID.String() != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("echoed trace ID %s, want the inbound one", echo.TraceID)
	}
	if echo.Parent.String() == "b7ad6b7169203331" {
		t.Fatal("echoed span ID is the caller's parent, want the server's root span")
	}

	tj, ok := tr.Get(echo.TraceID.String())
	if !ok {
		t.Fatal("joined trace not retained")
	}
	if tj.RemoteParent != "b7ad6b7169203331" {
		t.Fatalf("remote parent %q", tj.RemoteParent)
	}
	if tj.Root.ParentID != tj.RemoteParent {
		t.Fatalf("root parent %q != remote parent %q", tj.Root.ParentID, tj.RemoteParent)
	}
}

// traceInvarianceMetrics is every serving-path series the tracing work must
// not perturb: per-endpoint request/error counters plus the core scan
// counters underneath them.
var traceInvarianceMetrics = []string{
	"serve_similar_requests_total", "serve_similar_errors_total",
	"serve_recommend_requests_total", "serve_recommend_errors_total",
	"serve_whitespace_requests_total", "serve_whitespace_errors_total",
	"serve_infer_requests_total", "serve_infer_errors_total",
	"serve_throttled_total", "serve_cache_hits_total", "serve_cache_misses_total",
	"topk_requests_total", "topk_errors_total",
	"topk_candidates_admitted_total", "topk_candidates_filtered_total",
}

var traceInvarianceHistograms = []string{
	"serve_similar_latency_seconds", "serve_recommend_latency_seconds",
	"serve_whitespace_latency_seconds", "serve_infer_latency_seconds",
	"topk_latency_seconds",
}

func snapshotMetrics() map[string]uint64 {
	out := make(map[string]uint64, len(traceInvarianceMetrics)+len(traceInvarianceHistograms))
	for _, name := range traceInvarianceMetrics {
		out[name] = obs.Default().Counter(name, "").Value()
	}
	for _, name := range traceInvarianceHistograms {
		out[name+"_count"] = obs.Default().Histogram(name, "", nil).Count()
	}
	return out
}

// TestTracingMetricAndResponseInvariance runs an identical request mix
// against a tracing-off server and a tracing-on (sample rate 1) server and
// asserts the responses are byte-identical and every serving metric moved by
// exactly the same delta. This is the "off by default costs nothing, on
// changes nothing observable" acceptance criterion.
func TestTracingMetricAndResponseInvariance(t *testing.T) {
	type reqSpec struct {
		method, path, body string
		status             int
	}
	// Mix of cold queries, a cache-hit repeat, a POST body path and two
	// failure shapes so both requests and errors counters move.
	specs := []reqSpec{
		{http.MethodGet, "/v1/similar/3?k=5", "", http.StatusOK},
		{http.MethodGet, "/v1/similar/3?k=5", "", http.StatusOK}, // cache hit
		{http.MethodGet, "/v1/recommend/7?peers=5", "", http.StatusOK},
		{http.MethodPost, "/v1/whitespace", `{"clients":[1,2,3],"k":4}`, http.StatusOK},
		{http.MethodPost, "/v1/infer", `{"owned":[0,1],"k":3}`, http.StatusOK},
		{http.MethodGet, "/v1/similar/notanid", "", http.StatusBadRequest},
		{http.MethodPost, "/v1/whitespace", `{not json`, http.StatusBadRequest},
	}

	run := func(tracer *trace.Tracer) ([]string, map[string]uint64) {
		t.Helper()
		s, _, _ := newTestServer(t, Config{Tracer: tracer, Quiet: true, Logger: discardLogger()})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		before := snapshotMetrics()
		bodies := make([]string, 0, len(specs))
		for _, spec := range specs {
			req, err := http.NewRequest(spec.method, ts.URL+spec.path, strings.NewReader(spec.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := ts.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != spec.status {
				t.Fatalf("%s %s: status %d, want %d", spec.method, spec.path, resp.StatusCode, spec.status)
			}
			bodies = append(bodies, string(body))
		}
		after := snapshotMetrics()
		deltas := make(map[string]uint64, len(after))
		for name, v := range after {
			deltas[name] = v - before[name]
		}
		return bodies, deltas
	}

	off := trace.NewTracer(16) // disabled: every span takes the nil fast path
	offBodies, offDeltas := run(off)
	onBodies, onDeltas := run(newServeTracer(1))

	for i := range specs {
		if offBodies[i] != onBodies[i] {
			t.Errorf("%s %s: response differs with tracing on\noff: %s\non:  %s",
				specs[i].method, specs[i].path, offBodies[i], onBodies[i])
		}
	}
	for name, want := range offDeltas {
		if got := onDeltas[name]; got != want {
			t.Errorf("metric %s: delta %d with tracing on, %d off", name, got, want)
		}
	}
	// Sanity: the mix exercised both success and failure counters.
	if offDeltas["serve_similar_requests_total"] == 0 || offDeltas["serve_similar_errors_total"] == 0 {
		t.Fatalf("request mix did not move both similar counters: %+v", offDeltas)
	}
	if got := off.Traces("", 0, -1); len(got) != 0 {
		t.Fatalf("disabled tracer retained %d traces", len(got))
	}
}

// TestConcurrentTracedLoad hammers a traced server from many goroutines with
// a mix of good and bad requests; under -race this exercises the span tree,
// ring rotation and tail-sampling paths concurrently. Every retained trace
// must still export as a coherent tree.
func TestConcurrentTracedLoad(t *testing.T) {
	tr := trace.NewTracer(8) // small ring so pushes wrap many times
	tr.SetEnabled(true)
	tr.SetSampleRate(1)
	s, _, _ := newTestServer(t, Config{Tracer: tr, Quiet: true, Logger: discardLogger()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	paths := []string{
		"/v1/similar/1?k=3",
		"/v1/similar/2?k=4",
		"/v1/recommend/3?peers=4",
		"/v1/similar/notanid",
	}
	const workers = 8
	const perWorker = 16
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, err := ts.Client().Get(ts.URL + paths[(w+i)%len(paths)])
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()

	sums := tr.Traces("", 0, -1)
	if len(sums) == 0 || len(sums) > tr.Capacity() {
		t.Fatalf("retained %d traces, want 1..%d", len(sums), tr.Capacity())
	}
	for _, sum := range sums {
		tj, ok := tr.Get(sum.TraceID)
		if !ok {
			t.Fatalf("retained trace %s not gettable", sum.TraceID)
		}
		if tj.Root == nil || !strings.HasPrefix(tj.Root.Name, "serve.") {
			t.Fatalf("trace %s has malformed root: %+v", sum.TraceID, tj.Root)
		}
	}
}

// TestRequestTimeoutParam pins the timeout_ms contract: the parameter can
// only shrink the configured deadline, never extend it.
func TestRequestTimeoutParam(t *testing.T) {
	s, _, _ := newTestServer(t, Config{Timeout: 100 * time.Millisecond, Quiet: true, Logger: discardLogger()})
	cases := []struct {
		query string
		want  time.Duration
	}{
		{"", 100 * time.Millisecond},
		{"timeout_ms=5", 5 * time.Millisecond},
		{"timeout_ms=0.5", 500 * time.Microsecond},
		{"timeout_ms=500", 100 * time.Millisecond}, // capped at cfg.Timeout
		{"timeout_ms=0", 100 * time.Millisecond},
		{"timeout_ms=-3", 100 * time.Millisecond},
		{"timeout_ms=junk", 100 * time.Millisecond},
	}
	for _, tc := range cases {
		r := httptest.NewRequest(http.MethodGet, "/v1/similar/1?"+tc.query, nil)
		if got := s.requestTimeout(r); got != tc.want {
			t.Errorf("timeout for %q = %v, want %v", tc.query, got, tc.want)
		}
	}
}
