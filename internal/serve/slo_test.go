package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseLatencyObjectives(t *testing.T) {
	got, err := ParseLatencyObjectives("default=100ms, similar=50ms,infer=2s")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]time.Duration{
		"default": 100 * time.Millisecond,
		"similar": 50 * time.Millisecond,
		"infer":   2 * time.Second,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for k, d := range want {
		if got[k] != d {
			t.Fatalf("objective %s = %v, want %v", k, got[k], d)
		}
	}
	if got, err := ParseLatencyObjectives("  "); err != nil || got != nil {
		t.Fatalf("blank input: %v, %v", got, err)
	}
	for _, bad := range []string{"similar", "similar=", "similar=fast", "similar=-5ms", "similar=0s"} {
		if _, err := ParseLatencyObjectives(bad); err == nil {
			t.Errorf("ParseLatencyObjectives(%q) did not fail", bad)
		}
	}

	cfg := SLOConfig{Latency: want}
	if d := cfg.latencyObjective("similar"); d != 50*time.Millisecond {
		t.Fatalf("explicit objective %v", d)
	}
	if d := cfg.latencyObjective("recommend"); d != 100*time.Millisecond {
		t.Fatalf("default-key fallback %v", d)
	}
	if d := (SLOConfig{}).latencyObjective("recommend"); d != DefaultSLOLatency {
		t.Fatalf("constant fallback %v", d)
	}
}

// TestSLOStatusAndDebugEndpoint drives a mixed workload through an
// SLO-tracking server and pins the rolling evaluation: request and error
// counts over the window, the burn-rate and budget math, /debug/slo in both
// formats, and the /healthz summary.
func TestSLOStatusAndDebugEndpoint(t *testing.T) {
	s, _, _ := newTestServer(t, Config{
		Quiet:  true,
		Logger: discardLogger(),
		SLO: &SLOConfig{
			Window:       time.Hour, // no rotation mid-test
			Availability: 0.999,
			// Generous objectives so LatencyOK is deterministic for the
			// healthy endpoints.
			Latency: map[string]time.Duration{"default": 10 * time.Second},
		},
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 4; i++ {
		if resp := getJSON(t, ts, "/v1/similar/3?k=3", nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("similar status %d", resp.StatusCode)
		}
	}
	// A 400 counts as a request but neither an error nor a latency sample.
	if resp := getJSON(t, ts, "/v1/similar/notanid", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatal("bad request not rejected")
	}
	// A saturation 503 is a server error: it consumes error budget.
	s.sem <- struct{}{}
	func() {
		defer func() { <-s.sem }()
		r := httptest.NewRequest(http.MethodGet, "/v1/recommend/2?timeout_ms=5", nil)
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, r)
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("saturated status %d, want 503", w.Code)
		}
	}()

	tsSLO := httptest.NewServer(http.HandlerFunc(s.slo.handleSLO))
	defer tsSLO.Close()
	var st SLOStatus
	if resp := getJSON(t, tsSLO, "/debug/slo", &st); resp.StatusCode != http.StatusOK {
		t.Fatal("debug/slo not served")
	}
	if st.WindowSec != 3600 || st.Availability != 0.999 || st.Buckets != DefaultSLOBuckets {
		t.Fatalf("config echo %+v", st)
	}
	byName := map[string]SLOEndpointStatus{}
	for _, e := range st.Endpoints {
		byName[e.Endpoint] = e
	}
	sim := byName["similar"]
	if sim.Requests != 5 || sim.Errors != 0 {
		t.Fatalf("similar window counts %+v", sim)
	}
	if !sim.OK || !sim.AvailabilityOK || !sim.LatencyOK || sim.BurnRate != 0 || sim.BudgetRemaining != 1 {
		t.Fatalf("healthy endpoint evaluated unhealthy: %+v", sim)
	}
	if sim.P99MS <= 0 || sim.P50MS > sim.P999MS {
		t.Fatalf("windowed quantiles %+v", sim)
	}
	if sim.QPS <= 0 {
		t.Fatalf("QPS %v", sim.QPS)
	}
	rec := byName["recommend"]
	if rec.Requests != 1 || rec.Errors != 1 {
		t.Fatalf("recommend window counts %+v", rec)
	}
	// errRate 1.0 against a 0.001 budget: burn rate ~1000, budget gone.
	if rec.ErrorRate != 1 || rec.BurnRate < 999 || rec.BurnRate > 1001 || rec.BudgetRemaining != 0 {
		t.Fatalf("burn math %+v", rec)
	}
	if rec.AvailabilityOK || rec.OK {
		t.Fatalf("burning endpoint evaluated OK: %+v", rec)
	}
	if st.OK || len(st.Burning) == 0 || st.Burning[0] != "recommend" {
		t.Fatalf("overall status %+v burning %v", st.OK, st.Burning)
	}

	// Text rendering carries the same story.
	resp, err := tsSLO.Client().Get(tsSLO.URL + "/debug/slo?format=text")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(text), "BURNING: recommend") || !strings.Contains(string(text), "burning(avail)") {
		t.Fatalf("text rendering:\n%s", text)
	}

	// /healthz folds in the one-line summary.
	var health healthResponse
	getJSON(t, ts, "/healthz", &health)
	if health.SLO == nil || health.SLO.OK || len(health.SLO.Burning) != 1 {
		t.Fatalf("healthz slo summary %+v", health.SLO)
	}

	// SLORoutes exposes exactly the /debug/slo mount.
	if routes := s.SLORoutes(); len(routes) != 1 || routes[0].Pattern != "GET /debug/slo" {
		t.Fatalf("SLORoutes %+v", routes)
	}
}

// TestSLOMetricAndResponseInvariance is the disabled-path pin for the SLO
// layer, mirroring the tracing invariance suite: an identical request mix
// against an SLO-off and an SLO-on server must produce byte-identical query
// responses and move every pre-existing serving metric by exactly the same
// delta. SLO tracking may add new series; it must never perturb old ones.
func TestSLOMetricAndResponseInvariance(t *testing.T) {
	type reqSpec struct {
		method, path, body string
		status             int
	}
	specs := []reqSpec{
		{http.MethodGet, "/v1/similar/3?k=5", "", http.StatusOK},
		{http.MethodGet, "/v1/similar/3?k=5", "", http.StatusOK}, // cache hit
		{http.MethodGet, "/v1/recommend/7?peers=5", "", http.StatusOK},
		{http.MethodPost, "/v1/whitespace", `{"clients":[1,2,3],"k":4}`, http.StatusOK},
		{http.MethodPost, "/v1/infer", `{"owned":[0,1],"k":3}`, http.StatusOK},
		{http.MethodGet, "/v1/similar/notanid", "", http.StatusBadRequest},
	}
	run := func(slo *SLOConfig) ([]string, map[string]uint64, *Server) {
		t.Helper()
		s, _, _ := newTestServer(t, Config{Quiet: true, Logger: discardLogger(), SLO: slo})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		before := snapshotMetrics()
		bodies := make([]string, 0, len(specs))
		for _, spec := range specs {
			req, err := http.NewRequest(spec.method, ts.URL+spec.path, strings.NewReader(spec.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := ts.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != spec.status {
				t.Fatalf("%s %s: status %d, want %d", spec.method, spec.path, resp.StatusCode, spec.status)
			}
			bodies = append(bodies, string(body))
		}
		after := snapshotMetrics()
		deltas := make(map[string]uint64, len(after))
		for name, v := range after {
			deltas[name] = v - before[name]
		}
		return bodies, deltas, s
	}

	offBodies, offDeltas, offSrv := run(nil)
	onBodies, onDeltas, onSrv := run(&SLOConfig{Window: time.Hour})
	defer onSrv.Close()

	for i := range specs {
		if offBodies[i] != onBodies[i] {
			t.Errorf("%s %s: response differs with SLO tracking on\noff: %s\non:  %s",
				specs[i].method, specs[i].path, offBodies[i], onBodies[i])
		}
	}
	for name, want := range offDeltas {
		if got := onDeltas[name]; got != want {
			t.Errorf("metric %s: delta %d with SLO on, %d off", name, got, want)
		}
	}
	if offDeltas["serve_similar_requests_total"] == 0 || offDeltas["serve_similar_errors_total"] == 0 {
		t.Fatalf("request mix did not move both similar counters: %+v", offDeltas)
	}

	// The disabled path exposes no SLO surface at all: no routes, no
	// tracker state, no slo key in /healthz.
	if routes := offSrv.SLORoutes(); routes != nil {
		t.Fatalf("SLO-off server mounted routes: %+v", routes)
	}
	offSrv.Close() // no-op, must not panic
	tsOff := httptest.NewServer(offSrv.Handler())
	defer tsOff.Close()
	resp, err := tsOff.Client().Get(tsOff.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(raw), `"slo"`) {
		t.Fatalf("SLO-off healthz mentions slo:\n%s", raw)
	}
}

// TestCacheEvictionCounter pins the new eviction series with delta
// assertions: filling a 2-entry cache with 3 distinct queries evicts exactly
// one, and re-querying the evicted key misses again.
func TestCacheEvictionCounter(t *testing.T) {
	s, _, _ := newTestServer(t, Config{CacheSize: 2, Quiet: true, Logger: discardLogger()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	evict0, misses0 := counterValue("serve_cache_evictions_total"), counterValue("serve_cache_misses_total")
	getJSON(t, ts, "/v1/similar/1?k=3", nil)
	getJSON(t, ts, "/v1/similar/2?k=3", nil)
	if got := counterValue("serve_cache_evictions_total"); got != evict0 {
		t.Fatalf("eviction before capacity (%d -> %d)", evict0, got)
	}
	getJSON(t, ts, "/v1/similar/3?k=3", nil) // evicts the id=1 entry
	if got := counterValue("serve_cache_evictions_total"); got != evict0+1 {
		t.Fatalf("serve_cache_evictions_total %d, want %d", got, evict0+1)
	}
	getJSON(t, ts, "/v1/similar/1?k=3", nil) // evicted: a miss (and evicts id=2)
	if got := counterValue("serve_cache_misses_total"); got != misses0+4 {
		t.Fatalf("serve_cache_misses_total %d, want %d", got, misses0+4)
	}
	if got := counterValue("serve_cache_evictions_total"); got != evict0+2 {
		t.Fatalf("serve_cache_evictions_total %d, want %d", got, evict0+2)
	}
}

// TestDisabledCacheCountsMisses pins that a caching-disabled server still
// counts every cacheable lookup as a miss (the hit ratio denominator stays
// meaningful) and never a hit.
func TestDisabledCacheCountsMisses(t *testing.T) {
	s, _, _ := newTestServer(t, Config{CacheSize: -1, Quiet: true, Logger: discardLogger()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	hits0, misses0 := counterValue("serve_cache_hits_total"), counterValue("serve_cache_misses_total")
	getJSON(t, ts, "/v1/similar/5?k=3", nil)
	getJSON(t, ts, "/v1/similar/5?k=3", nil)
	if got := counterValue("serve_cache_hits_total"); got != hits0 {
		t.Fatalf("disabled cache produced hits (%d -> %d)", hits0, got)
	}
	if got := counterValue("serve_cache_misses_total"); got != misses0+2 {
		t.Fatalf("serve_cache_misses_total %d, want %d", got, misses0+2)
	}
}
