package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/shadow"
)

func gaugeValue(name string) float64 { return obs.Default().Gauge(name, "").Value() }

// getBodyClose drains and closes an already-issued response (the chaos test
// needs the status code AND the body from one round trip).
func getBodyClose(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// waitCounter polls until the named counter reaches want or the deadline
// passes (the shadow worker is asynchronous by design, so tests wait for the
// queue to drain instead of sleeping blind).
func waitCounter(t *testing.T, name string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if counterValue(name) >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("%s = %d, want >= %d within 5s", name, counterValue(name), want)
}

// newShadowServer builds an ANN-routed server (cells/nprobe approximate, so
// divergence is possible) with the given shadow/reload configuration.
func newShadowServer(t *testing.T, cfg Config) (*Server, *core.Index) {
	t.Helper()
	s, ix, _ := newTestServer(t, cfg)
	ix.SetPruner(annRouter(t, ix, 5, 2))
	return s, ix
}

// TestShadowDisabledInvariance pins the disabled-path contract from both
// sides: with shadow sampling off, serving traffic registers no new metric
// names and /healthz carries no shadow block; and turning sampling ON
// changes no served byte — the same request sequence answers byte-identically
// on a sampling and a non-sampling server over the same index configuration.
func TestShadowDisabledInvariance(t *testing.T) {
	on, _ := newShadowServer(t, Config{Shadow: &shadow.Config{SampleN: 1, Seed: 5}})
	off, _ := newShadowServer(t, Config{})
	tsOn := httptest.NewServer(on.Handler())
	defer tsOn.Close()
	tsOff := httptest.NewServer(off.Handler())
	defer tsOff.Close()
	defer on.shadow.Close()

	names0 := strings.Join(obs.Default().Names(), "\n")
	paths := []string{"/v1/similar/0?k=5", "/v1/similar/7?k=3&country=US", "/v1/similar/7?k=3&country=US"}
	for _, p := range paths {
		respOff := getBody(t, tsOff, p)
		respOn := getBody(t, tsOn, p)
		if string(respOff) != string(respOn) {
			t.Fatalf("%s diverges with sampling on:\noff: %s\non:  %s", p, respOff, respOn)
		}
	}
	for i := 0; i < 2; i++ { // POST surface too, twice to cover the cache-hit path
		var respOff, respOn whitespaceResponse
		postJSON(t, tsOff, "/v1/whitespace", whitespaceRequest{Clients: []int{1, 2}, K: 5}, &respOff)
		postJSON(t, tsOn, "/v1/whitespace", whitespaceRequest{Clients: []int{1, 2}, K: 5}, &respOn)
		if fmt.Sprintf("%+v", respOff) != fmt.Sprintf("%+v", respOn) {
			t.Fatalf("whitespace diverges with sampling on:\noff: %+v\non:  %+v", respOff, respOn)
		}
	}
	if names1 := strings.Join(obs.Default().Names(), "\n"); names1 != names0 {
		t.Fatalf("serving traffic registered new metric names:\nbefore:\n%s\nafter:\n%s", names0, names1)
	}

	// The healthz shadow block exists exactly when sampling is on.
	var rawOff, rawOn map[string]any
	getJSON(t, tsOff, "/healthz", &rawOff)
	getJSON(t, tsOn, "/healthz", &rawOn)
	if _, ok := rawOff["shadow"]; ok {
		t.Fatalf("non-sampling /healthz carries a shadow block: %+v", rawOff["shadow"])
	}
	if _, ok := rawOn["shadow"]; !ok {
		t.Fatal("sampling /healthz omits the shadow block")
	}

	// /debug/recall mounts on the main mux only with sampling on.
	if resp := getJSON(t, tsOff, "/debug/recall", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("non-sampling /debug/recall = %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, tsOn, "/debug/recall", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("sampling /debug/recall = %d, want 200", resp.StatusCode)
	}
}

// TestShadowSamplingPopulates drives distinct (cache-missing) queries through
// an ANN server sampling at 1-in-1 and asserts the full observability
// surface fills in: processed-sample counters, the ann_observed_recall
// gauge, the /debug/recall worst ring with replayable query descriptions,
// and the /healthz shadow summary. Cache hits must not consume samples.
func TestShadowSamplingPopulates(t *testing.T) {
	s, _ := newShadowServer(t, Config{Shadow: &shadow.Config{SampleN: 1, Seed: 7}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.shadow.Close()

	samples0 := counterValue("shadow_samples_total")
	for i := 0; i < 6; i++ {
		if resp := getJSON(t, ts, fmt.Sprintf("/v1/similar/%d?k=5", i*3), nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("similar %d: status %d", i, resp.StatusCode)
		}
	}
	getJSON(t, ts, "/v1/similar/0?k=5", nil) // cache hit: no decision, no sample
	postJSON(t, ts, "/v1/whitespace", whitespaceRequest{Clients: []int{1, 2}, K: 5}, nil)
	waitCounter(t, "shadow_samples_total", samples0+7)
	if got := counterValue("shadow_samples_total"); got != samples0+7 {
		t.Fatalf("shadow_samples_total = %d, want exactly %d (cache hits must not sample)", got, samples0+7)
	}

	if recall := gaugeValue("ann_observed_recall"); recall <= 0 || recall > 1 {
		t.Fatalf("ann_observed_recall = %v, want in (0, 1]", recall)
	}
	mean, n := s.shadow.ObservedRecall()
	if n < 7 || mean <= 0 {
		t.Fatalf("ObservedRecall = (%v, %d), want >= 7 window samples", mean, n)
	}

	var st shadow.Status
	getJSON(t, ts, "/debug/recall", &st)
	if !st.Enabled || st.SampleOneIn != 1 || len(st.Worst) == 0 {
		t.Fatalf("/debug/recall = %+v, want enabled with worst entries", st)
	}
	kinds := map[string]bool{}
	for _, e := range st.Worst {
		kinds[e.Kind] = true
		if e.K != 5 {
			t.Fatalf("worst entry k = %d, want 5: %+v", e.K, e)
		}
	}
	if !kinds["similar"] || !kinds["whitespace"] {
		t.Fatalf("worst ring kinds = %v, want both similar and whitespace", kinds)
	}

	var h healthResponse
	getJSON(t, ts, "/healthz", &h)
	if h.Shadow == nil || h.Shadow.SampleOneIn != 1 || h.Shadow.WindowSamples < 7 {
		t.Fatalf("/healthz shadow = %+v, want sample_one_in=1 with window samples", h.Shadow)
	}
	if h.Shadow.ObservedRecall != mean {
		t.Fatalf("/healthz observed_recall = %v, want %v", h.Shadow.ObservedRecall, mean)
	}
}

// TestReloadCanaryAndGuard exercises the reload canary end to end: an
// identical incoming generation reports a clean diff (Jaccard 1, zero recall
// delta) and swaps; a scrambled generation under -reload-guard is refused
// with 409, counted, and leaves the serving generation in place; and the
// guard stands down once the incoming generation is healthy again.
func TestReloadCanaryAndGuard(t *testing.T) {
	s, ix, m := newTestServer(t, Config{})
	_ = s // fixture only; the guarded server below is the one that serves
	ix.SetPruner(annRouter(t, ix, 5, 2))
	c := ix.Corpus

	newGen := func(reps *mat.Matrix) *core.Index {
		g, err := core.NewIndex(c, reps, ix.Metric)
		if err != nil {
			t.Fatal(err)
		}
		g.SetPruner(annRouter(t, g, 5, 2))
		return g
	}
	good := newGen(ix.Reps)
	// The "bad" generation maps every company onto the reverse row order:
	// same ids, same shapes, completely different neighbourhoods — exactly
	// the silent-corruption case the canary exists to catch.
	rev := mat.New(ix.Reps.Rows, ix.Reps.Cols)
	for i := 0; i < ix.Reps.Rows; i++ {
		copy(rev.Row(i), ix.Reps.Row(ix.Reps.Rows-1-i))
	}
	bad := newGen(rev)

	incoming := good
	srv, err := New(Loaded{Index: ix, Model: m}, func(ctx context.Context) (Loaded, error) {
		return Loaded{Index: incoming, Model: m}, nil
	}, Config{Shadow: &shadow.Config{SampleN: 1, Seed: 11}, ReloadGuard: 0.999, Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.shadow.Close()

	// An empty replay buffer means nothing to diff: the reload proceeds with
	// no canary block at all.
	var resp reloadResponse
	if r := postJSON(t, ts, "/admin/reload", nil, &resp); r.StatusCode != http.StatusOK {
		t.Fatalf("reload with empty buffer = %d, want 200", r.StatusCode)
	}
	if resp.Canary != nil || resp.Generation != 2 {
		t.Fatalf("empty-buffer reload = %+v, want gen 2 without canary", resp)
	}

	samples0 := counterValue("shadow_samples_total")
	for i := 0; i < 5; i++ {
		getJSON(t, ts, fmt.Sprintf("/v1/similar/%d?k=5", i*7), nil)
	}
	waitCounter(t, "shadow_samples_total", samples0+5)

	// Identical incoming generation: clean diff, swap allowed.
	canaries0 := counterValue("shadow_reload_canaries_total")
	refusals0 := counterValue("shadow_reload_refusals_total")
	resp = reloadResponse{}
	if r := postJSON(t, ts, "/admin/reload", nil, &resp); r.StatusCode != http.StatusOK {
		t.Fatalf("clean reload = %d, want 200", r.StatusCode)
	}
	if resp.Canary == nil || !resp.Reloaded || resp.Generation != 3 {
		t.Fatalf("clean reload = %+v, want gen 3 with canary", resp)
	}
	if resp.Canary.Queries != 5 || resp.Canary.Errors != 0 ||
		resp.Canary.MeanJaccard != 1 || resp.Canary.MinJaccard != 1 || resp.Canary.RecallDelta != 0 {
		t.Fatalf("clean canary = %+v, want 5 queries at Jaccard 1 with zero recall delta", resp.Canary)
	}
	if got := counterValue("shadow_reload_canaries_total"); got != canaries0+1 {
		t.Fatalf("shadow_reload_canaries_total = %d, want %d", got, canaries0+1)
	}

	// Scrambled incoming generation: the guard refuses the swap with 409,
	// counts the refusal, and keeps serving the old generation.
	incoming = bad
	r := postJSON(t, ts, "/admin/reload", nil, nil)
	if r.StatusCode != http.StatusConflict {
		t.Fatalf("scrambled reload = %d, want 409", r.StatusCode)
	}
	if got := counterValue("shadow_reload_refusals_total"); got != refusals0+1 {
		t.Fatalf("shadow_reload_refusals_total = %d, want %d", got, refusals0+1)
	}
	if j := gaugeValue("shadow_reload_diff_jaccard"); j >= 0.999 {
		t.Fatalf("shadow_reload_diff_jaccard = %v, want < 0.999 for the scrambled generation", j)
	}
	// The refused generation never took traffic: queries still answer from
	// the healthy index, identically to before the refused reload.
	before := getBody(t, ts, "/v1/similar/0?k=5")
	incoming = good
	resp = reloadResponse{}
	if r := postJSON(t, ts, "/admin/reload", nil, &resp); r.StatusCode != http.StatusOK {
		t.Fatalf("recovered reload = %d, want 200", r.StatusCode)
	}
	if resp.Generation != 4 {
		t.Fatalf("recovered reload generation = %d, want 4 (the refusal must not burn a generation)", resp.Generation)
	}
	after := getBody(t, ts, "/v1/similar/0?k=5")
	if string(before) != string(after) {
		t.Fatalf("healthy reload changed answers:\nbefore: %s\nafter:  %s", before, after)
	}
}

// TestShadowChaosComposition is the drill-compatibility contract: with chaos
// fault injection in front of the handler AND the shadow exact path failing
// deterministically (ExactFault), served responses stay byte-identical to a
// non-sampling server behind the same chaos seed, serve_*_errors_total never
// moves (chaos 503s short-circuit before the handler; shadow failures are
// off-path by construction), and the injected shadow failures land in
// shadow_exact_errors_total instead.
func TestShadowChaosComposition(t *testing.T) {
	cc := chaos.Config{Seed: 9, ErrorRate: 0.4}
	on, _ := newShadowServer(t, Config{Shadow: &shadow.Config{
		SampleN: 1, Seed: 3,
		ExactFault: func() error { return errors.New("injected shadow drill fault") },
	}})
	off, _ := newShadowServer(t, Config{})
	tsOn := httptest.NewServer(chaos.Middleware(cc, on.Handler()))
	defer tsOn.Close()
	tsOff := httptest.NewServer(chaos.Middleware(cc, off.Handler()))
	defer tsOff.Close()
	defer on.shadow.Close()

	serveErrs0 := counterValue("serve_similar_errors_total")
	exactErrs0 := counterValue("shadow_exact_errors_total")
	samples0 := counterValue("shadow_samples_total")
	var served uint64
	for i := 0; i < 25; i++ {
		path := fmt.Sprintf("/v1/similar/%d?k=5", i)
		respOff, err := tsOff.Client().Get(tsOff.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		bodyOff := getBodyClose(t, respOff)
		respOn, err := tsOn.Client().Get(tsOn.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		bodyOn := getBodyClose(t, respOn)
		if respOff.StatusCode != respOn.StatusCode || string(bodyOff) != string(bodyOn) {
			t.Fatalf("%s diverges under chaos: off=(%d, %s) on=(%d, %s)",
				path, respOff.StatusCode, bodyOff, respOn.StatusCode, bodyOn)
		}
		if respOn.StatusCode == http.StatusOK {
			served++
		}
	}
	if served == 0 || served == 25 {
		t.Fatalf("chaos injected %d/25 failures, want a mix to make the composition meaningful", 25-served)
	}

	// Every served (cache-missing, distinct-id) query was sampled and its
	// exact leg failed through ExactFault: the drill faults land in
	// shadow_exact_errors_total, never in the serving error counters.
	waitCounter(t, "shadow_exact_errors_total", exactErrs0+served)
	if got := counterValue("shadow_exact_errors_total"); got != exactErrs0+served {
		t.Fatalf("shadow_exact_errors_total = %d, want exactly %d", got, exactErrs0+served)
	}
	if got := counterValue("shadow_samples_total"); got != samples0 {
		t.Fatalf("shadow_samples_total moved by %d, want 0 (every exact leg faulted)", got-samples0)
	}
	if got := counterValue("serve_similar_errors_total"); got != serveErrs0 {
		t.Fatalf("serve_similar_errors_total moved by %d under chaos+shadow, want 0", got-serveErrs0)
	}
}
