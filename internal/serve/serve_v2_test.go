package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/lda"
	"repro/internal/rng"
	"repro/internal/snapshot"
)

// trainTestModel trains the deterministic fixture model used by the
// cross-format serving tests.
func trainTestModel(t *testing.T) *lda.Model {
	t.Helper()
	c := testCorpus()
	m, err := lda.TrainContext(context.Background(),
		lda.Config{Topics: 2, V: c.M(), BurnIn: 10, Iterations: 20, SampleLag: 5},
		c.Sets(), nil, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// serverOverModelFile stands a Server over the model snapshot at path,
// loading it exactly the way ibserve does (lda.LoadFile → mmap for v2,
// legacy gob decode for v1; model Close wired into the generation).
func serverOverModelFile(t *testing.T, path string) *Server {
	t.Helper()
	m, closeFn, err := lda.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	c := testCorpus()
	reps := m.Representations(c.Sets(), rng.New(7))
	ix, err := core.NewIndex(c, reps, core.Cosine)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Loaded{Index: ix, Model: m, Close: closeFn}, nil, Config{Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func fetch(t *testing.T, ts *httptest.Server, method, path, body string) (int, string) {
	t.Helper()
	var resp *http.Response
	var err error
	if method == http.MethodGet {
		resp, err = ts.Client().Get(ts.URL + path)
	} else {
		resp, err = ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
	}
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw)
}

// TestV1V2ServeByteIdentical pins the fleet-compatibility acceptance
// criterion: an LDA model saved as IBSNAP v2 (mmap-served) answers every
// query endpoint byte-identically to the same model loaded from legacy v1
// gob.
func TestV1V2ServeByteIdentical(t *testing.T) {
	m := trainTestModel(t)
	dir := t.TempDir()
	v1path := filepath.Join(dir, "model_v1.ibsnap")
	v2path := filepath.Join(dir, "model_v2.ibsnap")
	if err := snapshot.Atomic(v1path, m.SaveV1); err != nil {
		t.Fatal(err)
	}
	if err := snapshot.Atomic(v2path, m.Save); err != nil {
		t.Fatal(err)
	}

	sV1 := serverOverModelFile(t, v1path)
	sV2 := serverOverModelFile(t, v2path)
	if !sV2.cur.Load().model.Phi.Frozen() {
		t.Fatal("v2 server is not serving from a frozen (mapping-aliased) phi")
	}
	if sV1.cur.Load().model.Phi.Frozen() {
		t.Fatal("v1 server unexpectedly froze its phi")
	}
	tsV1 := httptest.NewServer(sV1.Handler())
	defer tsV1.Close()
	tsV2 := httptest.NewServer(sV2.Handler())
	defer tsV2.Close()

	queries := []struct {
		method, path, body string
	}{
		{http.MethodGet, "/v1/similar/7?k=5", ""},
		{http.MethodGet, "/v1/similar/0?k=3&country=US", ""},
		{http.MethodGet, "/v1/recommend/12?peers=10", ""},
		{http.MethodPost, "/v1/whitespace", `{"clients":[1,5,9],"k":5}`},
		{http.MethodPost, "/v1/infer", `{"owned":[0,4,7],"k":5}`},
	}
	for _, q := range queries {
		st1, body1 := fetch(t, tsV1, q.method, q.path, q.body)
		st2, body2 := fetch(t, tsV2, q.method, q.path, q.body)
		if st1 != http.StatusOK || st2 != http.StatusOK {
			t.Fatalf("%s %s: status v1=%d v2=%d", q.method, q.path, st1, st2)
		}
		if body1 != body2 {
			t.Fatalf("%s %s: responses differ\nv1: %s\nv2: %s", q.method, q.path, body1, body2)
		}
	}
}

// TestReloadV2UsesMmapNotDecode pins the other tentpole acceptance
// criterion: /admin/reload of a v2 snapshot goes through the mmap loader —
// O(sections), no payload re-decode — and installs a mapping-aliased model.
func TestReloadV2UsesMmapNotDecode(t *testing.T) {
	m := trainTestModel(t)
	dir := t.TempDir()
	v2path := filepath.Join(dir, "model.ibsnap")
	if err := snapshot.Atomic(v2path, m.Save); err != nil {
		t.Fatal(err)
	}
	s := serverOverModelFile(t, v2path)
	s.load = func(context.Context) (Loaded, error) {
		mm, closeFn, err := lda.LoadFile(v2path)
		if err != nil {
			return Loaded{}, err
		}
		c := testCorpus()
		reps := mm.Representations(c.Sets(), rng.New(7))
		ix, err := core.NewIndex(c, reps, core.Cosine)
		if err != nil {
			_ = closeFn()
			return Loaded{}, err
		}
		return Loaded{Index: ix, Model: mm, Close: closeFn}, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	mmap0 := counterValue("snapshot_mmap_loads_total")
	fallback0 := counterValue("snapshot_map_fallback_loads_total")
	if code, body := fetch(t, ts, http.MethodPost, "/admin/reload", ""); code != http.StatusOK {
		t.Fatalf("reload: %d %s", code, body)
	}
	mmapDelta := counterValue("snapshot_mmap_loads_total") - mmap0
	fallbackDelta := counterValue("snapshot_map_fallback_loads_total") - fallback0
	if mmapDelta+fallbackDelta != 1 {
		t.Fatalf("reload opened %d mmap + %d fallback containers, want exactly 1 total", mmapDelta, fallbackDelta)
	}
	st := s.cur.Load()
	if !st.model.Phi.Frozen() {
		t.Fatal("reloaded generation is not serving from a frozen (mapping-aliased) phi")
	}
	// A post-reload query must serve fine off the new mapping.
	if code, _ := fetch(t, ts, http.MethodGet, "/v1/similar/3?k=3", ""); code != http.StatusOK {
		t.Fatalf("post-reload query: %d", code)
	}
}

// TestGenerationCloseDeferredUntilRelease pins the mapped-generation
// lifetime rule: a reload must not close (munmap) the old generation while
// a request still holds it; the close runs when the last holder releases.
func TestGenerationCloseDeferredUntilRelease(t *testing.T) {
	var closed atomic.Int32
	s, ix, m := newTestServer(t, Config{})
	// Rebuild the initial generation with a close recorder.
	first := &state{ix: ix, model: m, cache: newLRU(16), gen: 1,
		close: func() error { closed.Add(1); return nil }}
	first.refs.Store(1)
	s.cur.Store(first)
	s.load = func(context.Context) (Loaded, error) {
		return Loaded{Index: ix, Model: m}, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Simulate an in-flight request: take a reference like limited() does.
	held := s.current()
	if held != first {
		t.Fatal("current() did not return the installed generation")
	}

	if code, body := fetch(t, ts, http.MethodPost, "/admin/reload", ""); code != http.StatusOK {
		t.Fatalf("reload: %d %s", code, body)
	}
	if got := closed.Load(); got != 0 {
		t.Fatalf("old generation closed %d times while a request still held it", got)
	}
	// The request finishes: the deferred close must fire now, exactly once.
	held.release()
	if got := closed.Load(); got != 1 {
		t.Fatalf("old generation closed %d times after final release, want 1", got)
	}
	// A dead generation must refuse new references (the use-after-munmap
	// guard), while the live one keeps serving.
	if first.acquire() {
		t.Fatal("acquire succeeded on a closed generation")
	}
	if code, _ := fetch(t, ts, http.MethodGet, "/v1/similar/1?k=2", ""); code != http.StatusOK {
		t.Fatalf("query after generation swap: %d", code)
	}
}

// TestServerCloseReleasesGeneration covers shutdown: Close drops the
// current generation's birth reference (unmapping a v2 model) and is safe
// to call twice.
func TestServerCloseReleasesGeneration(t *testing.T) {
	var closed atomic.Int32
	s, ix, m := newTestServer(t, Config{})
	gen := &state{ix: ix, model: m, cache: newLRU(16), gen: 1,
		close: func() error { closed.Add(1); return nil }}
	gen.refs.Store(1)
	s.cur.Store(gen)
	s.Close()
	s.Close()
	if got := closed.Load(); got != 1 {
		t.Fatalf("generation closed %d times across double Close, want 1", got)
	}
}
