package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/ann"
	"repro/internal/core"
)

// TestNegativeKAndPeersRejected covers the signed-parameter edge on every
// query surface: a negative k or peer count — in the query string or a JSON
// body, where it bypasses the unsigned-looking defaults — must 400 through
// statusFor via core's argument validation and count only toward the
// endpoint's serve_*_errors_total, never toward served requests.
func TestNegativeKAndPeersRejected(t *testing.T) {
	s, _, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		endpoint string // counter family
		method   string
		path     string
		body     string
	}{
		{"similar", http.MethodGet, "/v1/similar/0?k=-1", ""},
		{"recommend", http.MethodGet, "/v1/recommend/0?peers=-3", ""},
		{"whitespace", http.MethodPost, "/v1/whitespace", `{"clients":[1,2],"k":-5}`},
		{"whitespace", http.MethodPost, "/v1/whitespace", `{"clients":[1,2],"k":-1,"filter":{"country":"US"}}`},
		{"infer", http.MethodPost, "/v1/infer", `{"owned":[1,2],"k":-2}`},
		{"infer", http.MethodPost, "/v1/infer", `{"owned":[3],"k":-9999}`},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s_%s", tc.endpoint, tc.path), func(t *testing.T) {
			served0 := counterValue("serve_" + tc.endpoint + "_requests_total")
			errs0 := counterValue("serve_" + tc.endpoint + "_errors_total")
			var resp *http.Response
			var err error
			if tc.method == http.MethodGet {
				resp, err = ts.Client().Get(ts.URL + tc.path)
			} else {
				resp, err = ts.Client().Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
			}
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400\n%s", resp.StatusCode, body)
			}
			if got := counterValue("serve_" + tc.endpoint + "_requests_total"); got != served0 {
				t.Errorf("negative argument counted as served (%d -> %d)", served0, got)
			}
			if got := counterValue("serve_" + tc.endpoint + "_errors_total"); got != errs0+1 {
				t.Errorf("serve_%s_errors_total %d, want %d", tc.endpoint, got, errs0+1)
			}
		})
	}
}

// annRouter builds a coarse router over the server's index representations.
func annRouter(t *testing.T, ix *core.Index, cells, nprobe int) *ann.Router {
	t.Helper()
	annIx, err := ann.Build(ix.Reps, ix.Metric, ann.BuildConfig{Cells: cells, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	return &ann.Router{Index: annIx, NProbe: nprobe}
}

// TestHealthzANNBlock checks /healthz reports the routing index exactly
// when one is installed.
func TestHealthzANNBlock(t *testing.T) {
	s, ix, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var h healthResponse
	getJSON(t, ts, "/healthz", &h)
	if h.ANN != nil {
		t.Fatalf("exact-scan server advertises an ANN block: %+v", h.ANN)
	}
	ix.SetPruner(annRouter(t, ix, 5, 2))
	h = healthResponse{}
	getJSON(t, ts, "/healthz", &h)
	if h.ANN == nil {
		t.Fatal("ANN-routed server omits the healthz ann block")
	}
	if h.ANN.Cells != 5 || h.ANN.NProbe != 2 || h.ANN.Mapped {
		t.Fatalf("ann block = %+v, want cells=5 nprobe=2 mapped=false", h.ANN)
	}
}

// TestServeANNFullProbeByteIdentical pins the serving-level escape hatch:
// with the router probing every cell, all five query endpoints return
// byte-for-byte the responses of the exact-scan server over the same
// corpus, model and cache configuration.
func TestServeANNFullProbeByteIdentical(t *testing.T) {
	exact, ix, m := newTestServer(t, Config{})
	ix2, err := core.NewIndex(ix.Corpus, ix.Reps, ix.Metric)
	if err != nil {
		t.Fatal(err)
	}
	ix2.SetPruner(annRouter(t, ix2, 6, 6))
	pruned, err := New(Loaded{Index: ix2, Model: m}, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tsExact := httptest.NewServer(exact.Handler())
	defer tsExact.Close()
	tsPruned := httptest.NewServer(pruned.Handler())
	defer tsPruned.Close()

	requests := []struct {
		method, path, body string
	}{
		{http.MethodGet, "/v1/similar/0?k=7", ""},
		{http.MethodGet, "/v1/similar/11?k=5&country=US&min_employees=60", ""},
		{http.MethodGet, "/v1/recommend/3?peers=8", ""},
		{http.MethodPost, "/v1/whitespace", `{"clients":[0,5,9],"k":6}`},
		{http.MethodPost, "/v1/infer", `{"owned":[1,4,7],"k":5}`},
		{http.MethodPost, "/internal/recommend", `{"company_id":2,"matches":[{"company_id":5,"similarity":0.8},{"company_id":9,"similarity":0.6}]}`},
	}
	fetch := func(ts *httptest.Server, method, path, body string) []byte {
		t.Helper()
		var resp *http.Response
		var err error
		if method == http.MethodGet {
			resp, err = ts.Client().Get(ts.URL + path)
		} else {
			resp, err = ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
		}
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s %s: status %d\n%s", method, path, resp.StatusCode, b)
		}
		return b
	}
	for _, rq := range requests {
		want := fetch(tsExact, rq.method, rq.path, rq.body)
		got := fetch(tsPruned, rq.method, rq.path, rq.body)
		if !bytes.Equal(want, got) {
			t.Errorf("%s %s: full-probe ANN response differs from exact scan\nexact:  %s\npruned: %s",
				rq.method, rq.path, want, got)
		}
	}
}

// TestHealthzDuringReloads hammers /healthz concurrently with admin
// reloads: the handler holds a generation reference like the query paths,
// so no request may observe a torn generation (the pre-fix bare
// s.cur.Load() could race the last release of a retiring generation).
func TestHealthzDuringReloads(t *testing.T) {
	s, ix, m := newTestServer(t, Config{CacheSize: 8})
	s.load = func(ctx context.Context) (Loaded, error) { return Loaded{Index: ix, Model: m}, nil }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				resp, err := ts.Client().Get(ts.URL + "/healthz")
				if err != nil {
					errs <- err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("healthz %d: status %d", i, resp.StatusCode)
					return
				}
				var h healthResponse
				if err := json.Unmarshal(body, &h); err != nil {
					errs <- fmt.Errorf("healthz %d: %v\n%s", i, err, body)
					return
				}
				if h.Status != "ok" || h.Companies != ix.Corpus.N() {
					errs <- fmt.Errorf("healthz %d: torn response %+v", i, h)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 15; i++ {
			resp, err := ts.Client().Post(ts.URL+"/admin/reload", "application/json", nil)
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("reload %d: status %d", i, resp.StatusCode)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
