package serve

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// Cache metrics live with the cache itself so every lookup path is counted
// identically: get ticks exactly one of hits/misses (a nil, disabled cache
// always misses), and put ticks evictions when a full cache drops its LRU
// entry. The hit ratio and eviction rate together tell whether CacheSize is
// sized to the live key population.
var (
	cacheHits = obs.Default().Counter("serve_cache_hits_total",
		"query responses answered from the LRU response cache")
	cacheMisses = obs.Default().Counter("serve_cache_misses_total",
		"cacheable query responses computed against the index")
	cacheEvictions = obs.Default().Counter("serve_cache_evictions_total",
		"LRU response-cache entries evicted to make room for new responses")
)

// lru is a small, mutex-guarded response cache mapping canonical request
// keys (endpoint + query id + filter key) to marshalled response bodies.
// One lru belongs to exactly one loaded model state: a hot reload installs a
// fresh cache together with the new index, so a stale answer can never
// outlive the index it was computed from. A nil *lru is a valid, always-miss
// cache (caching disabled).
type lru struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *lruEntry
	items map[string]*list.Element
}

type lruEntry struct {
	key  string
	body []byte
}

// newLRU returns a cache holding at most capacity entries, or nil (caching
// disabled) when capacity < 1.
func newLRU(capacity int) *lru {
	if capacity < 1 {
		return nil
	}
	return &lru{cap: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached body for key and refreshes its recency.
func (c *lru) get(key string) ([]byte, bool) {
	if c == nil {
		cacheMisses.Inc()
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		cacheMisses.Inc()
		return nil, false
	}
	c.order.MoveToFront(el)
	cacheHits.Inc()
	return el.Value.(*lruEntry).body, true
}

// put stores body under key, evicting the least recently used entry when
// the cache is full.
func (c *lru) put(key string, body []byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).body = body
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, body: body})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		cacheEvictions.Inc()
	}
}

// len reports the number of cached entries.
func (c *lru) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
