// Package serve implements the HTTP query service over the Section 6
// similarity index — the paper's deployed sales tool, which "allows for
// searching companies similar to a given company" with business filters,
// gap-based product recommendations and white-space prospecting, exposed as
// a JSON API a load balancer can sit in front of.
//
// The server wraps one atomically swappable serving state (index + model +
// response cache) behind four query endpoints and one admin endpoint:
//
//	GET  /v1/similar/{id}    top-k similar companies
//	GET  /v1/recommend/{id}  gap-based product recommendations
//	POST /v1/whitespace      white-space prospects for a client set
//	POST /v1/infer           score an out-of-corpus company (fold-in inference)
//	POST /admin/reload       hot-swap the model/index, invalidating the cache
//	GET  /healthz            liveness + loaded-state shape
//
// Every query endpoint accepts the core.Filter fields (sic2, country,
// min_employees, max_employees, min_revenue_m, max_revenue_m) as URL query
// parameters (GET) or a "filter" JSON object (POST), runs under a
// per-request deadline threaded into the sharded index scans, and passes
// through a bounded-concurrency semaphore so a traffic spike degrades into
// fast 503s instead of unbounded goroutine pile-up. Per-endpoint counters
// and latency histograms report into the shared obs registry, which the
// ibserve binary exposes on its -debug-addr listener; served requests and
// failures are counted disjointly (serve_*_requests_total vs
// serve_*_errors_total), matching the corrected core metric semantics.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/lda"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/shadow"
	"repro/internal/trace"
)

// Server-wide metrics. Per-endpoint series are created in newEndpointMetrics.
var (
	inflight = obs.Default().Gauge("serve_inflight_requests",
		"query requests currently executing inside the concurrency semaphore")
	throttled = obs.Default().Counter("serve_throttled_total",
		"query requests rejected 503 because the semaphore stayed full until the request deadline")
	reloadsTotal = obs.Default().Counter("serve_reloads_total",
		"successful hot model reloads (each swaps the index and empties the cache)")
)

// endpointMetrics is the per-endpoint served/error/latency triple. Served
// requests and failures are disjoint: a request ticks exactly one of
// requests or errors.
type endpointMetrics struct {
	requests *obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
}

func newEndpointMetrics(name string) endpointMetrics {
	return endpointMetrics{
		requests: obs.Default().Counter("serve_"+name+"_requests_total",
			name+" queries served"),
		errors: obs.Default().Counter("serve_"+name+"_errors_total",
			name+" queries that failed (bad arguments, saturation or deadline)"),
		latency: obs.Default().Histogram("serve_"+name+"_latency_seconds",
			"end-to-end latency of served "+name+" queries", obs.DefBuckets),
	}
}

// Config parameterizes a Server. Zero values select the documented defaults.
type Config struct {
	// DefaultK is the result count when a request omits k. Default 10.
	DefaultK int
	// DefaultPeers is the peer count consulted by /v1/recommend when the
	// request omits peers. Default 25, the ibrec default.
	DefaultPeers int
	// MaxConcurrent bounds the query requests executing at once, sized like
	// the par worker pool by default (par.Workers()); excess requests wait
	// until their deadline and then fail fast with 503.
	MaxConcurrent int
	// Timeout is the per-request deadline threaded into the index scans.
	// Default 5s.
	Timeout time.Duration
	// CacheSize is the LRU response-cache capacity in entries. Default 256;
	// negative disables caching.
	CacheSize int
	// MaxBodyBytes caps the request bodies of the POST endpoints
	// (/v1/whitespace, /v1/infer, /admin/reload); an oversized body fails
	// with 413 and counts toward the endpoint's serve_*_errors_total.
	// Default 1 MiB; negative disables the cap.
	MaxBodyBytes int64
	// Seed drives the fold-in inference RNG of /v1/infer. Each request uses
	// a fresh stream seeded here, so identical requests get identical
	// representations regardless of interleaving. Default 1.
	Seed int64
	// Logger receives access, slow-query, request-failure and reload lines.
	// Default slog.Default().
	Logger *slog.Logger
	// Tracer records request-scoped span trees when enabled (trace.Default()
	// when nil). Disabled tracing leaves every response and every serve/core
	// metric exactly as before — spans take the nil fast path.
	Tracer *trace.Tracer
	// Quiet suppresses the per-request access-log lines for successful
	// requests; failed requests (status >= 400) and slow queries are still
	// logged.
	Quiet bool
	// SLO, when non-nil, enables rolling-window SLO tracking: per-endpoint
	// windowed latency quantiles, error budgets and burn rates served on
	// GET /debug/slo (mount SLORoutes on the debug mux) and summarized in
	// /healthz. Nil keeps the disabled path inert: no ticker goroutine, no
	// extra metrics, byte-identical responses.
	SLO *SLOConfig
	// Shadow, when non-nil with SampleN >= 1, enables shadow-sampled
	// exact-vs-ANN quality observability: 1 in SampleN ANN-served similar and
	// whitespace cache misses are re-executed as exact scans off the critical
	// path (bounded queue, dedicated worker, drop-and-count on saturation)
	// and diffed against the served answer into the ann_observed_recall
	// window, GET /debug/recall, and the /admin/reload canary. Nil keeps the
	// disabled path inert like SLO: no goroutine, no metric registrations,
	// byte-identical responses.
	Shadow *shadow.Config
	// ReloadGuard, when positive, makes /admin/reload refuse the generation
	// swap if the shadow canary's mean result-set Jaccard between the serving
	// and incoming generations falls below it (409 Conflict; the incoming
	// generation is closed). Requires Shadow; zero (the default) reports the
	// canary diff without ever refusing.
	ReloadGuard float64
}

func (c Config) withDefaults() Config {
	if c.DefaultK == 0 {
		c.DefaultK = 10
	}
	if c.DefaultPeers == 0 {
		c.DefaultPeers = 25
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = par.Workers()
	}
	if c.Timeout == 0 {
		c.Timeout = 5 * time.Second
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxBodyBytes < 0 {
		c.MaxBodyBytes = 0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Tracer == nil {
		c.Tracer = trace.Default()
	}
	return c
}

// Loaded is one complete serving generation as produced by a Loader: the
// index, the optional model behind /v1/infer, and an optional Close that
// releases whatever backs their memory — for an IBSNAP v2 model that is the
// munmap of the mapping the matrices alias. Close runs only after the last
// in-flight request against the generation finishes (see state.release);
// leave it nil for heap-resident generations.
type Loaded struct {
	Index *core.Index
	Model *lda.Model
	Close func() error
}

// Loader rebuilds the serving state from the backing store; /admin/reload
// invokes it and atomically installs the result. The model may be nil when
// the deployment does not serve /v1/infer.
type Loader func(ctx context.Context) (Loaded, error)

var generationCloseErrors = obs.Default().Counter("serve_generation_close_errors_total",
	"serving generations whose Close (munmap) failed on release")

// state is one immutable serving generation: queries load it once at entry
// and keep using it even if a reload swaps the pointer mid-request, so hot
// reloads never disturb in-flight work. gen numbers generations from 1 so
// access logs and /healthz can attribute a response to the reload that
// produced its index.
//
// A generation is refcounted because its matrices may alias an mmap: refs
// starts at 1 (the reference held by Server.cur), every request holds one
// for its duration, and the close func (munmap) runs exactly when the count
// hits zero — after a reload swapped the generation out AND the last
// in-flight request against it finished.
type state struct {
	ix    *core.Index
	model *lda.Model
	cache *lru
	gen   uint64
	refs  atomic.Int64
	close func() error // nil for heap-resident generations
}

// acquire takes a reference, failing if the generation is already dead
// (refs hit zero — its mapping may be unmapped). The CAS loop is what makes
// the load-then-acquire window in Server.current safe: an increment from
// zero is impossible, so a request can never resurrect a generation whose
// munmap already ran.
func (st *state) acquire() bool {
	for {
		n := st.refs.Load()
		if n == 0 {
			return false
		}
		if st.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// release drops one reference and closes the generation's backing (munmap)
// when the last reference goes. Close errors cannot be surfaced to any
// request — the generation is already gone — so they count in a metric.
func (st *state) release() {
	if st.refs.Add(-1) == 0 && st.close != nil {
		if err := st.close(); err != nil {
			generationCloseErrors.Inc()
		}
	}
}

// current returns the live generation with a reference held; the caller
// must release() it. The retry terminates because a failed acquire means
// either a reload both swapped cur and dropped the old generation's birth
// reference in between — the next Load observes the new pointer — or
// Server.Close dropped the final generation's birth reference, in which
// case cur never changes again: current returns nil and the caller must
// answer 503 rather than touch a possibly-unmapped generation. (Close
// stores closed before releasing, so a failed acquire against the closed
// server always observes the flag.)
func (s *Server) current() *state {
	for {
		if st := s.cur.Load(); st.acquire() {
			return st
		}
		if s.closed.Load() {
			return nil
		}
	}
}

// Server answers similarity, recommendation, white-space and inference
// queries over an atomically swappable core.Index.
type Server struct {
	cfg     Config
	load    Loader
	cur     atomic.Pointer[state]
	sem     chan struct{}
	mux     *http.ServeMux
	started time.Time
	gens    atomic.Uint64   // generation counter; the live state carries its value
	slo     *SLOTracker     // nil when Config.SLO is nil (SLO tracking off)
	shadow  *shadow.Sampler // nil when Config.Shadow is nil (shadow sampling off)
	ready   atomic.Bool     // /readyz state; flipped false when draining begins
	closed  atomic.Bool     // Close ran; guards the current generation's release

	mSimilar    endpointMetrics
	mRecommend  endpointMetrics
	mWhitespace endpointMetrics
	mInfer      endpointMetrics
	mReload     endpointMetrics
}

// New builds a Server over an already-loaded generation. init.Model may be
// nil (then /v1/infer answers 501); load may be nil (then /admin/reload
// answers 501). init.Close, when set, runs once the initial generation has
// been swapped out by a reload and drained.
func New(init Loaded, load Loader, cfg Config) (*Server, error) {
	ix, model := init.Index, init.Model
	if ix == nil {
		return nil, errors.New("serve: nil index")
	}
	cfg = cfg.withDefaults()
	if err := checkState(ix, model); err != nil {
		return nil, err
	}
	registerBuildInfo()
	s := &Server{
		cfg:         cfg,
		load:        load,
		sem:         make(chan struct{}, cfg.MaxConcurrent),
		started:     time.Now(),
		mSimilar:    newEndpointMetrics("similar"),
		mRecommend:  newEndpointMetrics("recommend"),
		mWhitespace: newEndpointMetrics("whitespace"),
		mInfer:      newEndpointMetrics("infer"),
		mReload:     newEndpointMetrics("reload"),
	}
	if cfg.Shadow != nil && cfg.Shadow.SampleN >= 1 {
		s.shadow = shadow.New(*cfg.Shadow)
	}
	if cfg.SLO != nil {
		s.slo = NewSLOTracker(*cfg.SLO, "serve", []string{"similar", "recommend", "whitespace", "infer"})
		if s.shadow != nil {
			s.slo.SetRecallSource(s.shadow)
		}
	}
	s.ready.Store(true)
	first := &state{ix: ix, model: model, cache: newLRU(cfg.CacheSize), gen: s.gens.Add(1), close: init.Close}
	first.refs.Store(1)
	s.cur.Store(first)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /v1/similar/{id}", s.limited("similar", &s.mSimilar, s.handleSimilar))
	mux.HandleFunc("GET /v1/recommend/{id}", s.limited("recommend", &s.mRecommend, s.handleRecommend))
	mux.HandleFunc("POST /v1/whitespace", s.limited("whitespace", &s.mWhitespace, s.handleWhitespace))
	mux.HandleFunc("POST /v1/infer", s.limited("infer", &s.mInfer, s.handleInfer))
	mux.HandleFunc("POST /internal/recommend", s.limited("recommend", &s.mRecommend, s.handleInternalRecommend))
	mux.HandleFunc("POST /admin/reload", s.handleReload)
	// With shadow sampling on, /debug/recall also mounts on the main mux so
	// routers and load generators — which only know the serving address —
	// can scrape observed recall; off, the route set is unchanged.
	for _, rt := range s.shadow.Routes() {
		mux.Handle(rt.Pattern, rt.Handler)
	}
	s.mux = mux
	return s, nil
}

// SetReady flips the /readyz state. Flip it to false at the start of a
// graceful shutdown — before connection draining begins — so load balancers
// and routers stop sending new work while in-flight requests finish; a
// scatter-gather router treats a not-ready shard exactly like one with a
// tripped breaker.
func (s *Server) SetReady(ok bool) { s.ready.Store(ok) }

// Ready reports the /readyz state.
func (s *Server) Ready() bool { return s.ready.Load() }

// handleReady serves GET /readyz: 200 while serving, 503 once draining. It
// is distinct from /healthz (liveness): a draining process is still alive
// and answering in-flight queries, it just must not receive new ones.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("{\"status\":\"draining\"}\n"))
		return
	}
	_, _ = w.Write([]byte("{\"status\":\"ready\"}\n"))
}

// buildInfo is resolved once: the Go toolchain, main-module version and VCS
// revision baked into the binary, reported by /healthz and mirrored as the
// ib_build_info gauge.
type buildInfoJSON struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module,omitempty"`
	Version   string `json:"version,omitempty"`
	Revision  string `json:"vcs_revision,omitempty"`
}

var readBuildInfo = sync.OnceValue(func() buildInfoJSON {
	out := buildInfoJSON{GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	out.Module = bi.Main.Path
	out.Version = bi.Main.Version
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" {
			out.Revision = kv.Value
		}
	}
	return out
})

// registerBuildInfo publishes the constant-1 ib_build_info gauge whose help
// string carries the build identity (the registry has no labels, so the
// metadata rides in the metric help, Prometheus build_info style).
var registerBuildInfo = sync.OnceFunc(func() {
	bi := readBuildInfo()
	obs.Default().Gauge("ib_build_info",
		fmt.Sprintf("build info (constant 1): go_version=%s module=%s version=%s vcs_revision=%s",
			bi.GoVersion, bi.Module, bi.Version, bi.Revision)).Set(1)
})

// checkState validates that a (index, model) pair can serve together: the
// index rows must be the model's topic mixtures for /v1/infer to search
// them with an inferred theta.
func checkState(ix *core.Index, model *lda.Model) error {
	if model == nil {
		return nil
	}
	if ix.Reps.Cols != model.K {
		return fmt.Errorf("serve: index dimension %d does not match model topics %d", ix.Reps.Cols, model.K)
	}
	if ix.Corpus.M() != model.V {
		return fmt.Errorf("serve: corpus has %d categories, model %d", ix.Corpus.M(), model.V)
	}
	return nil
}

// Handler returns the service's HTTP handler, ready to mount on a listener.
func (s *Server) Handler() http.Handler { return s.mux }

// Index returns the current serving index (the generation new requests see).
func (s *Server) Index() *core.Index { return s.cur.Load().ix }

// apiError pairs an HTTP status with the underlying error.
type apiError struct {
	status int
	err    error
}

func (e *apiError) Error() string { return e.err.Error() }
func (e *apiError) Unwrap() error { return e.err }

func badRequest(format string, args ...any) error {
	return &apiError{status: http.StatusBadRequest, err: fmt.Errorf(format, args...)}
}

// bodyError classifies a request-body decode failure: a MaxBytesReader trip
// becomes 413 with the limit named, anything else is a plain 400.
func bodyError(endpoint string, err error) error {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return &apiError{status: http.StatusRequestEntityTooLarge,
			err: fmt.Errorf("serve: %s request body exceeds the %d-byte limit", endpoint, mbe.Limit)}
	}
	return badRequest("serve: bad %s request body: %v", endpoint, err)
}

// statusFor maps an error to its response status: explicit apiError status,
// 504 for deadline/cancellation, else 400 (the remaining errors are core's
// argument validation).
func statusFor(err error) int {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.status
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return http.StatusGatewayTimeout
	}
	return http.StatusBadRequest
}

// response is one handler result: either pre-marshalled bytes (cache hit)
// or a value to marshal, optionally stored under cacheKey afterwards.
type response struct {
	value    any
	raw      []byte
	cacheKey string
}

type handlerFunc func(ctx context.Context, st *state, r *http.Request) (response, error)

// limited wraps a query handler with the serving pipeline: per-request
// deadline, bounded concurrency, state capture, disjoint served/error
// accounting and response marshalling (plus cache fill for cacheable
// responses). It is also the request-scoped observability shell: each request
// runs under a "serve.<name>" root span — joining the caller's distributed
// trace when a W3C traceparent header is presented, and echoing the assigned
// IDs back in the response's traceparent header — and ends with one
// structured access-log line plus a dedicated slow-query line when the
// duration reaches the tracer's slow threshold.
func (s *Server) limited(name string, m *endpointMetrics, h handlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx := r.Context()
		var sp *trace.Span
		if tp, ok := trace.ParseTraceparent(r.Header.Get("traceparent")); ok {
			ctx, sp = s.cfg.Tracer.StartRemote(ctx, tp, "serve."+name)
		} else {
			ctx, sp = s.cfg.Tracer.Start(ctx, "serve."+name)
		}
		if sp.Active() {
			sp.Attr("method", r.Method)
			sp.Attr("path", r.URL.Path)
			w.Header().Set("traceparent", trace.FormatTraceparent(sp.TraceID(), sp.SpanID()))
		}
		status := http.StatusOK
		defer func() {
			sp.AttrInt("status", int64(status))
			sp.End()
			s.slo.Record(name, status, time.Since(start))
			s.logRequest(r, name, status, time.Since(start), sp)
		}()

		ctx, cancel := context.WithTimeout(ctx, s.requestTimeout(r))
		defer cancel()
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			throttled.Inc()
			m.errors.Inc()
			status = http.StatusServiceUnavailable
			err := errors.New("serve: saturated, retry later")
			sp.Error(err)
			s.writeError(w, r, status, err)
			return
		}
		defer func() { <-s.sem }()
		inflight.Add(1)
		defer inflight.Add(-1)

		// Bound POST bodies before the handler decodes them: a body past the
		// cap surfaces as *http.MaxBytesError from the JSON decoder and maps
		// to 413 (and MaxBytesReader also closes the connection, so a huge
		// upload stops early instead of being read to the end and discarded).
		if r.Body != nil && s.cfg.MaxBodyBytes > 0 {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}

		// Hold a reference on the generation for the whole request: a reload
		// swapping it out must not munmap its matrices under our feet.
		st := s.current()
		if st == nil { // Server.Close ran; the last generation is gone
			m.errors.Inc()
			status = http.StatusServiceUnavailable
			err := errors.New("serve: server closed")
			sp.Error(err)
			s.writeError(w, r, status, err)
			return
		}
		defer st.release()
		resp, err := h(ctx, st, r)
		if err != nil {
			m.errors.Inc()
			status = statusFor(err)
			sp.Error(err)
			s.writeError(w, r, status, err)
			return
		}
		body := resp.raw
		if body == nil {
			if body, err = json.Marshal(resp.value); err != nil {
				m.errors.Inc()
				status = http.StatusInternalServerError
				sp.Error(err)
				s.writeError(w, r, status, err)
				return
			}
			body = append(body, '\n')
			if resp.cacheKey != "" {
				st.cache.put(resp.cacheKey, body)
			}
		}
		m.requests.Inc()
		// Traced requests leave their trace ID as a bucket exemplar on the
		// latency histogram; untraced traffic keeps the allocation-free path.
		if sp.Active() {
			m.latency.ObserveExemplar(time.Since(start).Seconds(), sp.TraceID().String())
		} else {
			m.latency.Observe(time.Since(start).Seconds())
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
	}
}

// requestTimeout returns the per-request deadline: cfg.Timeout, optionally
// tightened by a timeout_ms query parameter. The parameter can only shrink
// the deadline — it is capped at cfg.Timeout — so clients can bound their own
// tail latency but never extend the server's.
func (s *Server) requestTimeout(r *http.Request) time.Duration {
	d := s.cfg.Timeout
	if v := r.URL.Query().Get("timeout_ms"); v != "" {
		if ms, err := strconv.ParseFloat(v, 64); err == nil && ms > 0 {
			if t := time.Duration(ms * float64(time.Millisecond)); t < d {
				d = t
			}
		}
	}
	return d
}

// logRequest emits one structured access-log line per request: endpoint,
// method, path, status, duration, serving generation and — when traced — the
// trace ID to paste into /debug/traces/{id}. Failures (status >= 400) log at
// Warn and survive Quiet; successes log at Info unless Quiet. Requests at or
// over the tracer's slow threshold additionally get a dedicated slow-query
// line, which also survives Quiet.
func (s *Server) logRequest(r *http.Request, name string, status int, dur time.Duration, sp *trace.Span) {
	attrs := []any{
		"endpoint", name,
		"method", r.Method,
		"path", r.URL.Path,
		"status", status,
		"dur_ms", float64(dur.Microseconds()) / 1e3,
		"gen", s.cur.Load().gen,
	}
	if sp.Active() {
		attrs = append(attrs, "trace", sp.TraceID().String())
	}
	switch {
	case status >= 400:
		s.cfg.Logger.Warn("request", attrs...)
	case !s.cfg.Quiet:
		s.cfg.Logger.Info("request", attrs...)
	}
	if slow := s.cfg.Tracer.SlowThreshold(); slow > 0 && dur >= slow {
		s.cfg.Logger.Warn("slow query", attrs...)
	}
}

func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	s.cfg.Logger.Debug("request failed", "path", r.URL.Path, "status", status, "err", err.Error())
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// filterParams mirrors core.Filter in the JSON body shape of the POST
// endpoints; zero values mean "any", as in core.
type filterParams struct {
	SIC2         int     `json:"sic2,omitempty"`
	Country      string  `json:"country,omitempty"`
	MinEmployees int     `json:"min_employees,omitempty"`
	MaxEmployees int     `json:"max_employees,omitempty"`
	MinRevenueM  float64 `json:"min_revenue_m,omitempty"`
	MaxRevenueM  float64 `json:"max_revenue_m,omitempty"`
}

func (p filterParams) filter() core.Filter {
	return core.Filter{
		SIC2: p.SIC2, Country: p.Country,
		MinEmployees: p.MinEmployees, MaxEmployees: p.MaxEmployees,
		MinRevenueM: p.MinRevenueM, MaxRevenueM: p.MaxRevenueM,
	}
}

// filterFromQuery parses the core.Filter fields from URL query parameters.
func filterFromQuery(q url.Values) (core.Filter, error) {
	var f core.Filter
	var err error
	if f.SIC2, err = intParam(q, "sic2"); err != nil {
		return f, err
	}
	f.Country = q.Get("country")
	if f.MinEmployees, err = intParam(q, "min_employees"); err != nil {
		return f, err
	}
	if f.MaxEmployees, err = intParam(q, "max_employees"); err != nil {
		return f, err
	}
	if f.MinRevenueM, err = floatParam(q, "min_revenue_m"); err != nil {
		return f, err
	}
	if f.MaxRevenueM, err = floatParam(q, "max_revenue_m"); err != nil {
		return f, err
	}
	return f, nil
}

func intParam(q url.Values, name string) (int, error) {
	v := q.Get(name)
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, badRequest("serve: parameter %s=%q is not an integer", name, v)
	}
	return n, nil
}

func floatParam(q url.Values, name string) (float64, error) {
	v := q.Get(name)
	if v == "" {
		return 0, nil
	}
	x, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, badRequest("serve: parameter %s=%q is not a number", name, v)
	}
	return x, nil
}

// pathID parses the {id} path segment.
func pathID(r *http.Request) (int, error) {
	raw := r.PathValue("id")
	id, err := strconv.Atoi(raw)
	if err != nil {
		return 0, badRequest("serve: company id %q is not an integer", raw)
	}
	return id, nil
}

// JSON response shapes.

type matchJSON struct {
	CompanyID  int     `json:"company_id"`
	Name       string  `json:"name"`
	Similarity float64 `json:"similarity"`
}

type similarResponse struct {
	CompanyID int         `json:"company_id"`
	Name      string      `json:"name"`
	K         int         `json:"k"`
	Matches   []matchJSON `json:"matches"`
}

type recommendationJSON struct {
	Category int     `json:"category"`
	Name     string  `json:"name"`
	Strength float64 `json:"strength"`
	Owners   int     `json:"owners"`
}

type recommendResponse struct {
	CompanyID       int                  `json:"company_id"`
	Name            string               `json:"name"`
	Peers           int                  `json:"peers"`
	Recommendations []recommendationJSON `json:"recommendations"`
}

type prospectJSON struct {
	CompanyID     int     `json:"company_id"`
	Name          string  `json:"name"`
	NearestClient int     `json:"nearest_client"`
	Similarity    float64 `json:"similarity"`
}

type whitespaceRequest struct {
	Clients []int        `json:"clients"`
	K       int          `json:"k,omitempty"`
	Filter  filterParams `json:"filter"`
}

type whitespaceResponse struct {
	K         int            `json:"k"`
	Prospects []prospectJSON `json:"prospects"`
}

type inferRequest struct {
	Owned  []int        `json:"owned"`
	K      int          `json:"k,omitempty"`
	Filter filterParams `json:"filter"`
}

type inferResponse struct {
	Theta   []float64   `json:"theta"`
	K       int         `json:"k"`
	Matches []matchJSON `json:"matches"`
}

type healthResponse struct {
	Status     string         `json:"status"`
	Companies  int            `json:"companies"`
	Dim        int            `json:"dim"`
	Topics     int            `json:"topics,omitempty"`
	Vocab      int            `json:"vocab"`
	Cached     int            `json:"cached"`
	Generation uint64         `json:"generation"`
	UptimeSec  float64        `json:"uptime_seconds"`
	Tracing    bool           `json:"tracing"`
	Build      buildInfoJSON  `json:"build"`
	SLO        *sloHealthJSON `json:"slo,omitempty"` // present only with SLO tracking on
	// Partition is present only on a shard-mode server (ibserve -shard i/n):
	// which slice of the corpus this process's candidate scans own.
	Partition *partitionJSON `json:"partition,omitempty"`
	// ANN is present only when an approximate candidate router is installed
	// (ibserve -ann): the coarse index shape the scans prune through.
	ANN *annJSON `json:"ann,omitempty"`
	// Shadow is present only with shadow sampling on (-shadow-sample): the
	// live observed-recall summary (full detail at GET /debug/recall).
	Shadow *shadowHealthJSON `json:"shadow,omitempty"`
}

// shadowHealthJSON is the one-line shadow summary folded into /healthz when
// sampling is on; omitted (nil pointer, omitempty) when off so the disabled
// path's /healthz body is byte-identical.
type shadowHealthJSON struct {
	SampleOneIn    int     `json:"sample_one_in"`
	ObservedRecall float64 `json:"observed_recall"`
	WindowSamples  uint64  `json:"window_samples"`
}

type partitionJSON struct {
	Index     int `json:"index"`
	Of        int `json:"of"`
	Companies int `json:"companies"` // companies this partition owns
}

type annJSON struct {
	Cells  int  `json:"cells"`
	NProbe int  `json:"nprobe"`
	Mapped bool `json:"mapped"` // index opened zero-copy from an IBSNAP v2 mmap
}

type reloadResponse struct {
	Companies   int    `json:"companies"`
	Dim         int    `json:"dim"`
	Topics      int    `json:"topics,omitempty"`
	Invalidated int    `json:"invalidated"`
	Generation  uint64 `json:"generation"`
	Reloaded    bool   `json:"reloaded"`
	// Canary is present only when shadow sampling had queries to replay: the
	// generation diff measured against the incoming state before the swap.
	Canary *shadow.GenerationDiff `json:"canary,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	// Hold a reference like the query paths do: the partition block's
	// OwnedCompanies walk (and any future index read here) must not race a
	// reload releasing the generation's mmap. A bare s.cur.Load() could
	// observe a generation whose last reference — and mapping — is being
	// dropped concurrently.
	st := s.current()
	if st == nil { // Server.Close ran; the last generation is gone
		s.writeError(w, r, http.StatusServiceUnavailable, errors.New("serve: server closed"))
		return
	}
	defer st.release()
	resp := healthResponse{
		Status:     "ok",
		Companies:  st.ix.Corpus.N(),
		Dim:        st.ix.Reps.Cols,
		Vocab:      st.ix.Corpus.M(),
		Cached:     st.cache.len(),
		Generation: st.gen,
		UptimeSec:  time.Since(s.started).Seconds(),
		Tracing:    s.cfg.Tracer.Enabled(),
		Build:      readBuildInfo(),
	}
	if st.model != nil {
		resp.Topics = st.model.K
	}
	if s.slo != nil {
		slo := s.slo.Status()
		resp.SLO = &sloHealthJSON{OK: slo.OK, Burning: slo.Burning}
	}
	if part, parts := st.ix.Partition(); parts > 1 {
		resp.Partition = &partitionJSON{Index: part, Of: parts, Companies: st.ix.OwnedCompanies()}
	}
	if p := st.ix.Pruner(); p != nil {
		info := p.Info()
		resp.ANN = &annJSON{Cells: info.Cells, NProbe: info.NProbe, Mapped: info.Mapped}
	}
	if s.shadow != nil {
		mean, n := s.shadow.ObservedRecall()
		resp.Shadow = &shadowHealthJSON{
			SampleOneIn:    s.cfg.Shadow.SampleN,
			ObservedRecall: mean,
			WindowSamples:  n,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

func (s *Server) matches(st *state, ms []core.Match) []matchJSON {
	out := make([]matchJSON, len(ms))
	for i, m := range ms {
		out[i] = matchJSON{
			CompanyID:  m.CompanyID,
			Name:       st.ix.Corpus.Companies[m.CompanyID].Name,
			Similarity: m.Similarity,
		}
	}
	return out
}

// shadowMatches and shadowProspects convert core answers into the shadow
// package's generation-neutral result shape.
func shadowMatches(ms []core.Match) []shadow.Result {
	out := make([]shadow.Result, len(ms))
	for i, m := range ms {
		out[i] = shadow.Result{ID: int64(m.CompanyID), Score: m.Similarity}
	}
	return out
}

func shadowProspects(ps []core.WhitespaceProspect) []shadow.Result {
	out := make([]shadow.Result, len(ps))
	for i, p := range ps {
		out[i] = shadow.Result{ID: int64(p.CompanyID), Score: p.Similarity}
	}
	return out
}

// shadowScan re-executes a sampled query against ix through the index's
// configured scan path — exact when ix carries no pruner (the shadow
// re-execution and the canary's exact leg), ANN when it does (the canary's
// served leg).
func shadowScan(ctx context.Context, ix *core.Index, q shadow.Query) ([]shadow.Result, error) {
	if q.Kind == "whitespace" {
		ps, err := ix.WhitespaceContext(ctx, q.Clients, q.K, q.Filter)
		if err != nil {
			return nil, err
		}
		return shadowProspects(ps), nil
	}
	ms, err := ix.TopKContext(ctx, q.ID, q.K, q.Filter)
	if err != nil {
		return nil, err
	}
	return shadowMatches(ms), nil
}

// shadowSubmit enqueues one sampled query for exact re-execution. The sample
// holds its own reference on the generation it was served from — the shadow
// worker's exact scan must never race a reload's munmap — and the exact leg
// runs on a pruner-free shallow copy of the index (the copy preserves the
// scan partition; Corpus and Reps are shared, not copied).
func (s *Server) shadowSubmit(ctx context.Context, st *state, q shadow.Query, served []shadow.Result) {
	if !st.acquire() {
		return // generation already dead (Server.Close raced the request)
	}
	exactIx := *st.ix
	exactIx.SetPruner(nil)
	smp := shadow.Sample{
		Query:  q,
		Served: served,
		Exact: func(ctx context.Context) ([]shadow.Result, error) {
			return shadowScan(ctx, &exactIx, q)
		},
		Release: st.release,
	}
	if sp := trace.FromContext(ctx); sp.Active() {
		smp.TraceID = sp.TraceID().String()
	}
	s.shadow.Submit(smp)
}

func (s *Server) handleSimilar(ctx context.Context, st *state, r *http.Request) (response, error) {
	id, err := pathID(r)
	if err != nil {
		return response{}, err
	}
	q := r.URL.Query()
	k, err := intParam(q, "k")
	if err != nil {
		return response{}, err
	}
	if k == 0 {
		k = s.cfg.DefaultK
	}
	f, err := filterFromQuery(q)
	if err != nil {
		return response{}, err
	}
	key := fmt.Sprintf("similar|%d|%d|%s", id, k, f.Key())
	if body, ok := st.cache.get(key); ok {
		return response{raw: body}, nil
	}
	// The sampling decision is drawn before the scan, once per eligible query
	// (ANN-served cache miss), so the decision stream depends only on the
	// request sequence — a failed scan still consumes its decision.
	sampled := s.shadow != nil && st.ix.Pruner() != nil && s.shadow.Sample()
	ms, err := st.ix.TopKContext(ctx, id, k, f)
	if err != nil {
		return response{}, err
	}
	if sampled {
		s.shadowSubmit(ctx, st, shadow.Query{Kind: "similar", ID: id, K: k, Filter: f}, shadowMatches(ms))
	}
	return response{
		value: similarResponse{
			CompanyID: id,
			Name:      st.ix.Corpus.Companies[id].Name,
			K:         k,
			Matches:   s.matches(st, ms),
		},
		cacheKey: key,
	}, nil
}

func (s *Server) handleRecommend(ctx context.Context, st *state, r *http.Request) (response, error) {
	id, err := pathID(r)
	if err != nil {
		return response{}, err
	}
	q := r.URL.Query()
	peers, err := intParam(q, "peers")
	if err != nil {
		return response{}, err
	}
	if peers == 0 {
		peers = s.cfg.DefaultPeers
	}
	f, err := filterFromQuery(q)
	if err != nil {
		return response{}, err
	}
	key := fmt.Sprintf("recommend|%d|%d|%s", id, peers, f.Key())
	if body, ok := st.cache.get(key); ok {
		return response{raw: body}, nil
	}
	recs, err := st.ix.RecommendFromSimilarContext(ctx, id, peers, f)
	if err != nil {
		return response{}, err
	}
	out := make([]recommendationJSON, len(recs))
	for i, rec := range recs {
		out[i] = recommendationJSON{
			Category: rec.Category, Name: rec.Name,
			Strength: rec.Strength, Owners: rec.Owners,
		}
	}
	return response{
		value: recommendResponse{
			CompanyID:       id,
			Name:            st.ix.Corpus.Companies[id].Name,
			Peers:           peers,
			Recommendations: out,
		},
		cacheKey: key,
	}, nil
}

func (s *Server) handleWhitespace(ctx context.Context, st *state, r *http.Request) (response, error) {
	var req whitespaceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return response{}, bodyError("whitespace", err)
	}
	k := req.K
	if k == 0 {
		k = s.cfg.DefaultK
	}
	f := req.Filter.filter()
	sampled := s.shadow != nil && st.ix.Pruner() != nil && s.shadow.Sample()
	prospects, err := st.ix.WhitespaceContext(ctx, req.Clients, k, f)
	if err != nil {
		return response{}, err
	}
	if sampled {
		q := shadow.Query{Kind: "whitespace", Clients: append([]int(nil), req.Clients...), K: k, Filter: f}
		s.shadowSubmit(ctx, st, q, shadowProspects(prospects))
	}
	out := make([]prospectJSON, len(prospects))
	for i, p := range prospects {
		out[i] = prospectJSON{
			CompanyID:     p.CompanyID,
			Name:          st.ix.Corpus.Companies[p.CompanyID].Name,
			NearestClient: p.NearestClient,
			Similarity:    p.Similarity,
		}
	}
	return response{value: whitespaceResponse{K: k, Prospects: out}}, nil
}

func (s *Server) handleInfer(ctx context.Context, st *state, r *http.Request) (response, error) {
	if st.model == nil {
		return response{}, &apiError{status: http.StatusNotImplemented,
			err: errors.New("serve: no model loaded; /v1/infer unavailable")}
	}
	var req inferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return response{}, bodyError("infer", err)
	}
	if len(req.Owned) == 0 {
		return response{}, badRequest("serve: infer request needs a non-empty owned category set")
	}
	for _, cat := range req.Owned {
		if cat < 0 || cat >= st.model.V {
			return response{}, badRequest("serve: owned category %d outside [0,%d)", cat, st.model.V)
		}
	}
	k := req.K
	if k == 0 {
		k = s.cfg.DefaultK
	}
	// A fresh stream per request keeps fold-in inference deterministic for
	// identical requests and safe under concurrency (no shared RNG state).
	theta := st.model.InferTheta(req.Owned, rng.New(s.cfg.Seed))
	ms, err := st.ix.TopKByVectorContext(ctx, theta, k, req.Filter.filter())
	if err != nil {
		return response{}, err
	}
	return response{value: inferResponse{Theta: theta, K: k, Matches: s.matches(st, ms)}}, nil
}

// internalRecommendRequest is the body of POST /internal/recommend — the
// shard-side half of two-phase sharded recommendation. A scatter-gather
// router first merges the global top-k peer set from every shard's
// /v1/similar answer, then posts it here so one shard (every shard holds the
// full corpus and representations — only the candidate scans are
// partitioned) scores the gap-based recommendations over the exact peers the
// unsharded path would have used. Peers is the request's peer-count
// parameter, echoed back so the response is byte-identical to
// /v1/recommend/{id} on an unsharded server.
type internalRecommendRequest struct {
	CompanyID int             `json:"company_id"`
	Peers     int             `json:"peers"`
	Matches   []internalMatch `json:"matches"`
}

type internalMatch struct {
	CompanyID  int     `json:"company_id"`
	Similarity float64 `json:"similarity"`
}

func (s *Server) handleInternalRecommend(ctx context.Context, st *state, r *http.Request) (response, error) {
	_ = ctx // scoring is O(peers); no candidate scan to cancel
	var req internalRecommendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return response{}, bodyError("internal recommend", err)
	}
	peers := make([]core.Match, len(req.Matches))
	for i, m := range req.Matches {
		peers[i] = core.Match{CompanyID: m.CompanyID, Similarity: m.Similarity}
	}
	recs, err := st.ix.RecommendFromPeers(req.CompanyID, peers)
	if err != nil {
		return response{}, err
	}
	out := make([]recommendationJSON, len(recs))
	for i, rec := range recs {
		out[i] = recommendationJSON{
			Category: rec.Category, Name: rec.Name,
			Strength: rec.Strength, Owners: rec.Owners,
		}
	}
	return response{
		value: recommendResponse{
			CompanyID:       req.CompanyID,
			Name:            st.ix.Corpus.Companies[req.CompanyID].Name,
			Peers:           req.Peers,
			Recommendations: out,
		},
	}, nil
}

// handleReload rebuilds the serving state through the Loader and installs
// it atomically. In-flight queries keep the generation they captured at
// entry; new queries see the new index and an empty cache.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Body != nil && s.cfg.MaxBodyBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}
	if s.load == nil {
		s.mReload.errors.Inc()
		s.writeError(w, r, http.StatusNotImplemented, errors.New("serve: no loader configured"))
		return
	}
	loaded, err := s.load(r.Context())
	if err != nil {
		s.mReload.errors.Inc()
		s.writeError(w, r, http.StatusInternalServerError, fmt.Errorf("serve: reload failed: %w", err))
		return
	}
	ix, model := loaded.Index, loaded.Model
	if err := checkState(ix, model); err != nil {
		if loaded.Close != nil {
			_ = loaded.Close()
		}
		s.mReload.errors.Inc()
		s.writeError(w, r, http.StatusInternalServerError, fmt.Errorf("serve: reload rejected: %w", err))
		return
	}
	// Canary phase: before the incoming generation can take traffic, replay
	// the last M shadow-sampled queries against it — through its configured
	// scan path and an exact copy — and diff against what the serving
	// generation answered. The handler owns the incoming generation
	// exclusively here (no refcounting needed until the swap publishes it).
	var canary *shadow.GenerationDiff
	if s.shadow != nil {
		servedIx, exactIx := *ix, *ix
		exactIx.SetPruner(nil)
		exec := func(ctx context.Context, q shadow.Query) (served, exact []shadow.Result, err error) {
			if served, err = shadowScan(ctx, &servedIx, q); err != nil {
				return nil, nil, err
			}
			if exact, err = shadowScan(ctx, &exactIx, q); err != nil {
				return nil, nil, err
			}
			return served, exact, nil
		}
		if diff, ok := s.shadow.CanaryDiff(r.Context(), exec); ok {
			canary = &diff
			if g := s.cfg.ReloadGuard; g > 0 && diff.Queries > diff.Errors && diff.MeanJaccard < g {
				s.shadow.RecordRefusal()
				if loaded.Close != nil {
					_ = loaded.Close()
				}
				s.mReload.errors.Inc()
				s.cfg.Logger.Warn("reload refused by canary guard",
					"mean_jaccard", diff.MeanJaccard, "guard", g,
					"recall_delta", diff.RecallDelta, "queries", diff.Queries)
				s.writeError(w, r, http.StatusConflict,
					fmt.Errorf("serve: reload refused: canary mean result-set Jaccard %.3f below guard %.3f over %d replayed queries (recall delta %+.3f)",
						diff.MeanJaccard, g, diff.Queries, diff.RecallDelta))
				return
			}
		}
	}
	next := &state{ix: ix, model: model, cache: newLRU(s.cfg.CacheSize), gen: s.gens.Add(1), close: loaded.Close}
	next.refs.Store(1)
	old := s.cur.Swap(next)
	// Drop the old generation's birth reference. Its backing (an mmap, for
	// v2 models) is released only when the last in-flight request against it
	// finishes — possibly right here, if none are running.
	old.release()
	reloadsTotal.Inc()
	s.mReload.requests.Inc()
	s.mReload.latency.Observe(time.Since(start).Seconds())
	resp := reloadResponse{
		Companies:   ix.Corpus.N(),
		Dim:         ix.Reps.Cols,
		Invalidated: old.cache.len(),
		Generation:  next.gen,
		Reloaded:    true,
		Canary:      canary,
	}
	if model != nil {
		resp.Topics = model.K
	}
	s.cfg.Logger.Info("model reloaded", "companies", resp.Companies, "dim", resp.Dim,
		"invalidated", resp.Invalidated, "gen", next.gen)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}
