package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMaxBodyBytes413 pins the POST body cap: an oversized body fails with
// 413, names the limit, and ticks exactly the endpoint's error counter —
// never its served counter (the delta-test discipline for metric semantics).
func TestMaxBodyBytes413(t *testing.T) {
	s, _, _ := newTestServer(t, Config{MaxBodyBytes: 512})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	huge := []byte(`{"clients":[1,2],"pad":"` + strings.Repeat("x", 2048) + `"}`)
	for _, tc := range []struct{ path, endpoint string }{
		{"/v1/whitespace", "whitespace"},
		{"/v1/infer", "infer"},
	} {
		served0 := counterValue("serve_" + tc.endpoint + "_requests_total")
		errs0 := counterValue("serve_" + tc.endpoint + "_errors_total")
		resp, err := ts.Client().Post(ts.URL+tc.path, "application/json", bytes.NewReader(huge))
		if err != nil {
			t.Fatal(err)
		}
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s oversized body: status %d, want 413", tc.path, resp.StatusCode)
		}
		if !strings.Contains(body["error"], "512-byte limit") {
			t.Fatalf("%s 413 body should name the limit, got %q", tc.path, body["error"])
		}
		if got := counterValue("serve_" + tc.endpoint + "_errors_total"); got != errs0+1 {
			t.Errorf("%s errors_total delta = %d, want 1", tc.endpoint, got-errs0)
		}
		if got := counterValue("serve_" + tc.endpoint + "_requests_total"); got != served0 {
			t.Errorf("%s requests_total moved on a rejected body", tc.endpoint)
		}
	}

	// A body under the cap still works.
	resp, err := ts.Client().Post(ts.URL+"/v1/whitespace", "application/json",
		strings.NewReader(`{"clients":[1,2],"k":3}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-limit body: status %d, want 200", resp.StatusCode)
	}
}

// TestReadyz pins the readiness endpoint: ready by default, 503 once
// draining, flippable back, and distinct from /healthz (which stays 200 —
// a draining process is alive).
func TestReadyz(t *testing.T) {
	s, _, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}

	if code, body := get("/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("fresh server /readyz = %d %q, want 200 ready", code, body)
	}
	s.SetReady(false)
	if s.Ready() {
		t.Fatal("Ready() true after SetReady(false)")
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("draining /readyz = %d %q, want 503 draining", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("draining /healthz = %d, want 200 (liveness is not readiness)", code)
	}
	// Queries still answer while draining: the flag only steers routers.
	if code, _ := get("/v1/similar/3?k=2"); code != http.StatusOK {
		t.Fatalf("draining /v1/similar = %d, want 200", code)
	}
	s.SetReady(true)
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("re-readied /readyz = %d, want 200", code)
	}
}

// TestInternalRecommendMatchesPublic proves the two-phase contract at the
// HTTP layer: POST /internal/recommend with the peers /v1/similar selects
// returns byte-identical recommendations to GET /v1/recommend/{id}.
func TestInternalRecommendMatchesPublic(t *testing.T) {
	s, _, _ := newTestServer(t, Config{CacheSize: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const id, peers = 6, 8
	want := getBody(t, ts, fmt.Sprintf("/v1/recommend/%d?peers=%d", id, peers))

	var sim similarResponse
	if err := json.Unmarshal(getBody(t, ts, fmt.Sprintf("/v1/similar/%d?k=%d", id, peers)), &sim); err != nil {
		t.Fatal(err)
	}
	matches := make([]internalMatch, len(sim.Matches))
	for i, m := range sim.Matches {
		matches[i] = internalMatch{CompanyID: m.CompanyID, Similarity: m.Similarity}
	}
	raw, err := json.Marshal(internalRecommendRequest{CompanyID: id, Peers: peers, Matches: matches})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/internal/recommend", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got bytes.Buffer
	if _, err := got.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/internal/recommend status %d: %s", resp.StatusCode, got.String())
	}
	if !bytes.Equal(want, got.Bytes()) {
		t.Fatalf("/internal/recommend differs from /v1/recommend\nwant %s\ngot  %s", want, got.String())
	}

	// Bad peer ids are rejected, not served.
	raw, _ = json.Marshal(internalRecommendRequest{CompanyID: id, Peers: 1,
		Matches: []internalMatch{{CompanyID: 9999, Similarity: 1}}})
	resp, err = ts.Client().Post(ts.URL+"/internal/recommend", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range peer: status %d, want 400", resp.StatusCode)
	}
}

func getBody(t *testing.T, ts *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, buf.String())
	}
	return buf.Bytes()
}
