package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/lda"
	"repro/internal/obs"
	"repro/internal/rng"
)

// testCorpus builds a deterministic 40-company corpus with attribute
// variety for the filters.
func testCorpus() *corpus.Corpus {
	cat := corpus.DefaultCatalog()
	m := cat.Size()
	countries := []string{"US", "DE", "GB"}
	companies := make([]corpus.Company, 40)
	for i := range companies {
		companies[i] = corpus.Company{
			ID:        i,
			Name:      fmt.Sprintf("co-%02d", i),
			Country:   countries[i%len(countries)],
			SIC2:      70 + i%4,
			Employees: 50 + i*37%900,
			RevenueM:  float64(5 + i*11%200),
			Acquisitions: []corpus.Acquisition{
				{Category: i % m, First: corpus.Month(i % 12)},
				{Category: (i*5 + 2) % m, First: corpus.Month(i%12 + 1)},
				{Category: (i*9 + 4) % m, First: corpus.Month(i%12 + 2)},
			},
		}
		companies[i].SortAcquisitions()
	}
	return corpus.New(cat, companies)
}

// newTestServer trains a tiny LDA model over the fixture corpus and stands
// up a Server over the resulting index.
func newTestServer(t *testing.T, cfg Config) (*Server, *core.Index, *lda.Model) {
	t.Helper()
	c := testCorpus()
	m, err := lda.TrainContext(context.Background(),
		lda.Config{Topics: 2, V: c.M(), BurnIn: 10, Iterations: 20, SampleLag: 5},
		c.Sets(), nil, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	reps := m.Representations(c.Sets(), rng.New(7))
	ix, err := core.NewIndex(c, reps, core.Cosine)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Loaded{Index: ix, Model: m}, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, ix, m
}

func counterValue(name string) uint64 { return obs.Default().Counter(name, "").Value() }

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decoding %s: %v\n%s", path, err, body)
		}
	}
	return resp
}

func postJSON(t *testing.T, ts *httptest.Server, path string, req, out any) *http.Response {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decoding %s: %v\n%s", path, err, body)
		}
	}
	return resp
}

func TestSimilarEndpointMatchesDirectQuery(t *testing.T) {
	s, ix, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	want, err := ix.TopK(4, 5, core.Filter{Country: "US"})
	if err != nil {
		t.Fatal(err)
	}
	served0 := counterValue("serve_similar_requests_total")
	var got similarResponse
	resp := getJSON(t, ts, "/v1/similar/4?k=5&country=US", &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got.CompanyID != 4 || got.K != 5 || len(got.Matches) != len(want) {
		t.Fatalf("response shape: %+v (want %d matches)", got, len(want))
	}
	for i, m := range want {
		if got.Matches[i].CompanyID != m.CompanyID || got.Matches[i].Similarity != m.Similarity {
			t.Fatalf("match %d: got %+v, want %+v", i, got.Matches[i], m)
		}
		if c := ix.Corpus.Companies[m.CompanyID]; got.Matches[i].Name != c.Name {
			t.Fatalf("match %d name %q, want %q", i, got.Matches[i].Name, c.Name)
		}
	}
	if got := counterValue("serve_similar_requests_total"); got != served0+1 {
		t.Fatalf("serve_similar_requests_total %d, want %d", got, served0+1)
	}
}

func TestRecommendEndpointMatchesDirectQuery(t *testing.T) {
	s, ix, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	want, err := ix.RecommendFromSimilar(2, 8, core.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	var got recommendResponse
	if resp := getJSON(t, ts, "/v1/recommend/2?peers=8", &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got.Peers != 8 || len(got.Recommendations) != len(want) {
		t.Fatalf("got %d recommendations for peers=%d, want %d", len(got.Recommendations), got.Peers, len(want))
	}
	for i, r := range want {
		g := got.Recommendations[i]
		if g.Category != r.Category || g.Strength != r.Strength || g.Owners != r.Owners || g.Name != r.Name {
			t.Fatalf("recommendation %d: got %+v, want %+v", i, g, r)
		}
	}

	// A filter admitting no peers still serves a 200 with an empty list.
	served0, errs0 := counterValue("serve_recommend_requests_total"), counterValue("serve_recommend_errors_total")
	var empty recommendResponse
	if resp := getJSON(t, ts, "/v1/recommend/2?country=XX", &empty); resp.StatusCode != http.StatusOK {
		t.Fatalf("empty-answer status %d", resp.StatusCode)
	}
	if len(empty.Recommendations) != 0 {
		t.Fatalf("expected no recommendations, got %d", len(empty.Recommendations))
	}
	if got := counterValue("serve_recommend_requests_total"); got != served0+1 {
		t.Fatalf("empty answer not counted as served (%d, want %d)", got, served0+1)
	}
	if got := counterValue("serve_recommend_errors_total"); got != errs0 {
		t.Fatalf("empty answer counted as error (%d -> %d)", errs0, got)
	}
}

func TestWhitespaceEndpointMatchesDirectQuery(t *testing.T) {
	s, ix, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	clients := []int{0, 3, 9}
	want, err := ix.Whitespace(clients, 6, core.Filter{Country: "DE"})
	if err != nil {
		t.Fatal(err)
	}
	var got whitespaceResponse
	req := whitespaceRequest{Clients: clients, K: 6, Filter: filterParams{Country: "DE"}}
	if resp := postJSON(t, ts, "/v1/whitespace", req, &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(got.Prospects) != len(want) {
		t.Fatalf("got %d prospects, want %d", len(got.Prospects), len(want))
	}
	for i, p := range want {
		g := got.Prospects[i]
		if g.CompanyID != p.CompanyID || g.NearestClient != p.NearestClient || g.Similarity != p.Similarity {
			t.Fatalf("prospect %d: got %+v, want %+v", i, g, p)
		}
	}
}

func TestInferEndpoint(t *testing.T) {
	s, ix, m := newTestServer(t, Config{Seed: 11})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	owned := []int{0, 5, 9}
	var got inferResponse
	req := inferRequest{Owned: owned, K: 4}
	if resp := postJSON(t, ts, "/v1/infer", req, &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(got.Theta) != m.K {
		t.Fatalf("theta has %d entries, want %d topics", len(got.Theta), m.K)
	}
	if len(got.Matches) != 4 {
		t.Fatalf("got %d matches, want 4", len(got.Matches))
	}
	// The response must equal a direct fold-in with the same seed.
	theta := m.InferTheta(owned, rng.New(11))
	want, err := ix.TopKByVector(theta, 4, core.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if got.Matches[i].CompanyID != w.CompanyID || got.Matches[i].Similarity != w.Similarity {
			t.Fatalf("match %d: got %+v, want %+v", i, got.Matches[i], w)
		}
	}
	// Identical requests are deterministic.
	var again inferResponse
	postJSON(t, ts, "/v1/infer", req, &again)
	if fmt.Sprint(again) != fmt.Sprint(got) {
		t.Fatal("identical infer requests returned different responses")
	}

	// Out-of-vocabulary category is a 400.
	errs0 := counterValue("serve_infer_errors_total")
	if resp := postJSON(t, ts, "/v1/infer", inferRequest{Owned: []int{m.V}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range category: status %d, want 400", resp.StatusCode)
	}
	if got := counterValue("serve_infer_errors_total"); got != errs0+1 {
		t.Fatalf("serve_infer_errors_total %d, want %d", got, errs0+1)
	}
}

func TestBadRequestsCountErrorsNotServed(t *testing.T) {
	s, _, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	served0, errs0 := counterValue("serve_similar_requests_total"), counterValue("serve_similar_errors_total")
	cases := []string{
		"/v1/similar/notanumber",
		"/v1/similar/9999",
		"/v1/similar/0?k=bogus",
		"/v1/similar/0?min_employees=many",
		"/v1/similar/0?min_revenue_m=lots",
	}
	for _, path := range cases {
		if resp := getJSON(t, ts, path, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
	if got := counterValue("serve_similar_requests_total"); got != served0 {
		t.Fatalf("failed queries counted as served (%d -> %d)", served0, got)
	}
	if got := counterValue("serve_similar_errors_total"); got != errs0+uint64(len(cases)) {
		t.Fatalf("serve_similar_errors_total %d, want %d", got, errs0+uint64(len(cases)))
	}

	wsErrs0 := counterValue("serve_whitespace_errors_total")
	resp, err := ts.Client().Post(ts.URL+"/v1/whitespace", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}
	if resp = postJSON(t, ts, "/v1/whitespace", whitespaceRequest{}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty client set: status %d, want 400", resp.StatusCode)
	}
	if got := counterValue("serve_whitespace_errors_total"); got != wsErrs0+2 {
		t.Fatalf("serve_whitespace_errors_total %d, want %d", got, wsErrs0+2)
	}
}

func TestHealthz(t *testing.T) {
	s, ix, m := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var got healthResponse
	if resp := getJSON(t, ts, "/healthz", &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got.Status != "ok" || got.Companies != ix.Corpus.N() || got.Topics != m.K || got.Dim != ix.Reps.Cols {
		t.Fatalf("health response %+v", got)
	}
}

func TestCacheHitsAndReloadInvalidation(t *testing.T) {
	s, ix, m := newTestServer(t, Config{CacheSize: 16})
	// Install a loader that rebuilds a fresh state over the same data.
	reloaded := 0
	s.load = func(context.Context) (Loaded, error) {
		reloaded++
		return Loaded{Index: ix, Model: m}, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	hits0, misses0 := counterValue("serve_cache_hits_total"), counterValue("serve_cache_misses_total")
	var first, second similarResponse
	getJSON(t, ts, "/v1/similar/7?k=3", &first)
	getJSON(t, ts, "/v1/similar/7?k=3", &second)
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatal("cached response differs from computed response")
	}
	if got := counterValue("serve_cache_hits_total"); got != hits0+1 {
		t.Fatalf("serve_cache_hits_total %d, want %d", got, hits0+1)
	}
	if got := counterValue("serve_cache_misses_total"); got != misses0+1 {
		t.Fatalf("serve_cache_misses_total %d, want %d", got, misses0+1)
	}
	// Different k or filter is a different key.
	getJSON(t, ts, "/v1/similar/7?k=4", nil)
	if got := counterValue("serve_cache_misses_total"); got != misses0+2 {
		t.Fatalf("distinct query served from cache (misses %d, want %d)", got, misses0+2)
	}

	// Reload swaps the state and empties the cache: the same query misses.
	reloads0 := counterValue("serve_reloads_total")
	var rl reloadResponse
	if resp := postJSON(t, ts, "/admin/reload", struct{}{}, &rl); resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d", resp.StatusCode)
	}
	if reloaded != 1 || !rl.Reloaded || rl.Companies != ix.Corpus.N() || rl.Invalidated != 2 {
		t.Fatalf("reload response %+v (loader calls: %d)", rl, reloaded)
	}
	if got := counterValue("serve_reloads_total"); got != reloads0+1 {
		t.Fatalf("serve_reloads_total %d, want %d", got, reloads0+1)
	}
	var third similarResponse
	getJSON(t, ts, "/v1/similar/7?k=3", &third)
	if got := counterValue("serve_cache_misses_total"); got != misses0+3 {
		t.Fatalf("post-reload query hit a stale cache (misses %d, want %d)", got, misses0+3)
	}
	if fmt.Sprint(third) != fmt.Sprint(first) {
		t.Fatal("identical data after reload changed the answer")
	}
}

func TestReloadWithoutLoaderIs501(t *testing.T) {
	s, _, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if resp := postJSON(t, ts, "/admin/reload", struct{}{}, nil); resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("reload without loader: status %d, want 501", resp.StatusCode)
	}
}

func TestSaturationReturns503(t *testing.T) {
	s, _, _ := newTestServer(t, Config{MaxConcurrent: 1, Timeout: 50 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the single semaphore slot so every query waits out its
	// deadline and fails fast.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	throttled0 := counterValue("serve_throttled_total")
	if resp := getJSON(t, ts, "/v1/similar/0", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated server: status %d, want 503", resp.StatusCode)
	}
	if got := counterValue("serve_throttled_total"); got != throttled0+1 {
		t.Fatalf("serve_throttled_total %d, want %d", got, throttled0+1)
	}
}

// TestConcurrentRequestsWithReloads hammers the server from many goroutines
// while reloads swap the state, asserting every response is well-formed —
// the atomic-pointer generation scheme must never surface a torn state.
func TestConcurrentRequestsWithReloads(t *testing.T) {
	s, ix, m := newTestServer(t, Config{CacheSize: 8})
	s.load = func(context.Context) (Loaded, error) { return Loaded{Index: ix, Model: m}, nil }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				var out similarResponse
				path := fmt.Sprintf("/v1/similar/%d?k=3", (g*20+i)%40)
				resp, err := ts.Client().Get(ts.URL + path)
				if err != nil {
					errs <- err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d", path, resp.StatusCode)
					return
				}
				if err := json.Unmarshal(body, &out); err != nil {
					errs <- fmt.Errorf("%s: %v", path, err)
					return
				}
				if len(out.Matches) != 3 {
					errs <- fmt.Errorf("%s: %d matches", path, len(out.Matches))
					return
				}
			}
		}(g)
	}
	// /healthz reads index state too (partition walk, ANN info) and must
	// hold a generation reference like the query paths — hammer it through
	// the same reload storm.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			resp, err := ts.Client().Get(ts.URL + "/healthz")
			if err != nil {
				errs <- err
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("healthz %d: status %d", i, resp.StatusCode)
				return
			}
			var h healthResponse
			if err := json.Unmarshal(body, &h); err != nil {
				errs <- fmt.Errorf("healthz %d: %v\n%s", i, err, body)
				return
			}
			if h.Status != "ok" {
				errs <- fmt.Errorf("healthz %d: %+v", i, h)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			resp, err := ts.Client().Post(ts.URL+"/admin/reload", "application/json", nil)
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("reload %d: status %d", i, resp.StatusCode)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
