package sgns

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
)

// twoTopicDocs: words 0-4 co-occur; words 5-9 co-occur; never mixed.
func twoTopicDocs(n int, g *rng.RNG) [][]int {
	docs := make([][]int, n)
	for d := range docs {
		base := 0
		if d%2 == 1 {
			base = 5
		}
		ln := 3 + g.Intn(3)
		seen := map[int]bool{}
		var doc []int
		for len(doc) < ln {
			w := base + g.Intn(5)
			if !seen[w] {
				seen[w] = true
				doc = append(doc, w)
			}
		}
		docs[d] = doc
	}
	return docs
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{V: 1, Dim: 4},
		{V: 5, Dim: 0},
		{V: 5, Dim: 4, Epochs: -1},
		{V: 5, Dim: 4, LearnRate: -0.1},
	}
	for i, cfg := range bad {
		if _, err := Train(cfg, [][]int{{0, 1}}, rng.New(1)); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
	if _, err := Train(Config{V: 5, Dim: 4}, [][]int{{0, 9}}, rng.New(1)); err == nil {
		t.Fatal("bad token accepted")
	}
	if _, err := Train(Config{V: 5, Dim: 4}, [][]int{{0}}, rng.New(1)); err == nil {
		t.Fatal("pairless corpus accepted")
	}
}

func TestCooccurringProductsEmbedNearby(t *testing.T) {
	g := rng.New(3)
	docs := twoTopicDocs(500, g)
	m, err := Train(Config{V: 10, Dim: 8, Epochs: 6}, docs, g)
	if err != nil {
		t.Fatal(err)
	}
	// mean same-topic similarity must exceed mean cross-topic similarity
	var same, cross float64
	var ns, nc int
	for a := 0; a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			s := m.Similarity(a, b)
			if (a < 5) == (b < 5) {
				same += s
				ns++
			} else {
				cross += s
				nc++
			}
		}
	}
	if same/float64(ns) <= cross/float64(nc)+0.2 {
		t.Fatalf("embeddings not separated: same %.3f vs cross %.3f", same/float64(ns), cross/float64(nc))
	}
}

func TestNeighbors(t *testing.T) {
	g := rng.New(5)
	docs := twoTopicDocs(500, g)
	m, err := Train(Config{V: 10, Dim: 8, Epochs: 6}, docs, g)
	if err != nil {
		t.Fatal(err)
	}
	nb := m.Neighbors(0, 4)
	if len(nb) != 4 {
		t.Fatalf("neighbors = %d", len(nb))
	}
	inTopic := 0
	for _, o := range nb {
		if o == 0 {
			t.Fatal("self in neighbors")
		}
		if o < 5 {
			inTopic++
		}
	}
	if inTopic < 3 {
		t.Fatalf("only %d/4 neighbors from the same topic", inTopic)
	}
	if got := m.Neighbors(0, 100); len(got) != 9 {
		t.Fatalf("clamped neighbors = %d", len(got))
	}
}

func TestCompanyEmbeddingPooling(t *testing.T) {
	g := rng.New(7)
	docs := twoTopicDocs(400, g)
	m, err := Train(Config{V: 10, Dim: 6, Epochs: 5}, docs, g)
	if err != nil {
		t.Fatal(err)
	}
	// companies from different topics should have distant embeddings
	a := m.CompanyEmbedding([]int{0, 1, 2}, nil)
	b := m.CompanyEmbedding([]int{5, 6, 7}, nil)
	a2 := m.CompanyEmbedding([]int{1, 2, 3}, nil)
	if mat.CosineSim(a, a2) <= mat.CosineSim(a, b) {
		t.Fatal("company pooling does not preserve topic structure")
	}
	// empty company: zero vector
	z := m.CompanyEmbedding(nil, nil)
	for _, v := range z {
		if v != 0 {
			t.Fatal("empty company embedding not zero")
		}
	}
	// weighted pooling with a one-hot weight equals that product's embedding
	w := make([]float64, 10)
	w[2] = 3
	got := m.CompanyEmbedding([]int{0, 2}, w)
	want := m.Embedding(2)
	// token 0 has weight 0, so pooling = embedding(2)
	for k := range got {
		if math.Abs(got[k]-want[k]) > 1e-12 {
			t.Fatal("weighted pooling wrong")
		}
	}
	// batch version matches singles
	batch := m.CompanyEmbeddings([][]int{{0, 1, 2}, {5, 6, 7}}, nil)
	for k := 0; k < 6; k++ {
		if math.Abs(batch.At(0, k)-a[k]) > 1e-12 {
			t.Fatal("batch pooling differs")
		}
	}
}

func TestDeterminism(t *testing.T) {
	docs := twoTopicDocs(100, rng.New(9))
	m1, err := Train(Config{V: 10, Dim: 4, Epochs: 2}, docs, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(Config{V: 10, Dim: 4, Epochs: 2}, docs, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(m1.In, m2.In, 0) {
		t.Fatal("training not deterministic")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	docs := twoTopicDocs(100, rng.New(11))
	m, err := Train(Config{V: 10, Dim: 4, Epochs: 2}, docs, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(got.In, m.In, 0) || !mat.Equal(got.Out, m.Out, 0) {
		t.Fatal("round trip changed embeddings")
	}
	if _, err := Load(bytes.NewBufferString("junk")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestEmbeddingCopies(t *testing.T) {
	docs := twoTopicDocs(100, rng.New(13))
	m, err := Train(Config{V: 10, Dim: 4, Epochs: 1}, docs, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	e := m.Embedding(0)
	e[0] = 999
	if m.In.At(0, 0) == 999 {
		t.Fatal("Embedding leaked internal storage")
	}
	pe := m.ProductEmbeddings()
	pe.Set(0, 0, -999)
	if m.In.At(0, 0) == -999 {
		t.Fatal("ProductEmbeddings leaked internal storage")
	}
}
