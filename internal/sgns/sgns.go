// Package sgns implements skip-gram with negative sampling (Mikolov et al.
// 2013), the word-embedding technique the paper's Section 3.4 discusses as
// an alternative route to product and company representations: products
// co-occurring in the same install base get nearby embeddings, and company
// vectors are produced by aggregating product embeddings (mean or
// IDF-weighted mean, after Clinchant & Perronnin 2013). With M = 38
// categories and tens of thousands of companies the paper conjectures good
// embeddings are learnable; the embedding-comparison experiment in
// internal/eval tests that conjecture against LDA features.
package sgns

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// Snapshot container kinds for SGNS artifacts.
const (
	KindModel      = "sgns-model"
	KindCheckpoint = "sgns-checkpoint"
)

var (
	trainEpochs = obs.Default().Counter("sgns_train_epochs_total",
		"training epochs completed across all SGNS runs")
	trainPairs = obs.Default().Counter("sgns_train_pairs_total",
		"positive co-occurrence pairs processed across all SGNS runs")
)

// Config parameterizes SGNS training.
type Config struct {
	V   int // vocabulary size
	Dim int // embedding dimensionality

	Epochs    int     // passes over all co-occurrence pairs; 0 selects 5
	Negatives int     // negative samples per positive pair; 0 selects 5
	LearnRate float64 // initial SGD rate, linearly decayed; 0 selects 0.05
	// NoisePower shapes the negative-sampling distribution
	// (unigram^power); 0 selects Mikolov's 0.75.
	NoisePower float64

	// Progress, when non-nil, is invoked after every epoch with the mean
	// negative-sampling objective per positive pair and pair throughput
	// (TokensPerSec counts pairs). Loss terms reuse the sigmoids already
	// computed by the update rule and the hook draws no random numbers, so
	// trained embeddings are bit-identical with and without it.
	Progress obs.Progress

	// Checkpoint, when non-nil, receives a full snapshot of both embedding
	// matrices and the RNG state every CheckpointEvery completed epochs (and
	// once more on context cancellation). The snapshot owns its memory; the
	// hook draws no random numbers, so checkpointed runs train
	// bit-identically to unhooked runs. A hook error aborts training.
	Checkpoint func(*Checkpoint) error
	// CheckpointEvery is the epoch interval between Checkpoint calls;
	// 0 disables periodic checkpoints (a cancellation checkpoint is still
	// written when Checkpoint is set).
	CheckpointEvery int
}

// ConfigState is the hookless, serializable part of Config that checkpoints
// embed, so Resume continues under exactly the schedule the run started
// with.
type ConfigState struct {
	V, Dim            int
	Epochs, Negatives int
	LearnRate         float64
	NoisePower        float64
}

func (c *Config) state() ConfigState {
	return ConfigState{
		V: c.V, Dim: c.Dim, Epochs: c.Epochs, Negatives: c.Negatives,
		LearnRate: c.LearnRate, NoisePower: c.NoisePower,
	}
}

func (cs ConfigState) config() Config {
	return Config{
		V: cs.V, Dim: cs.Dim, Epochs: cs.Epochs, Negatives: cs.Negatives,
		LearnRate: cs.LearnRate, NoisePower: cs.NoisePower,
	}
}

func (c *Config) fillDefaults() {
	if c.Epochs == 0 {
		c.Epochs = 5
	}
	if c.Negatives == 0 {
		c.Negatives = 5
	}
	if c.LearnRate == 0 {
		c.LearnRate = 0.05
	}
	if c.NoisePower == 0 {
		c.NoisePower = 0.75
	}
}

func (c *Config) validate() error {
	if c.V < 2 {
		return fmt.Errorf("sgns: V must be >= 2, got %d", c.V)
	}
	if c.Dim < 1 {
		return fmt.Errorf("sgns: Dim must be positive, got %d", c.Dim)
	}
	if c.Epochs < 1 || c.Negatives < 1 || c.LearnRate <= 0 {
		return fmt.Errorf("sgns: invalid schedule (epochs %d, neg %d, lr %v)", c.Epochs, c.Negatives, c.LearnRate)
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("sgns: CheckpointEvery must be >= 0, got %d", c.CheckpointEvery)
	}
	return nil
}

// Model holds trained embeddings: In is the product ("input") embedding
// matrix used downstream; Out is the context matrix.
type Model struct {
	V, Dim  int
	In, Out *mat.Matrix // V x Dim
}

// buildPairs materializes the positive (target, context) pairs and the
// negative-sampling noise distribution from the documents.
func buildPairs(cfg *Config, docs [][]int) (pairs [][2]int, noise []float64, err error) {
	freq := make([]float64, cfg.V)
	for di, doc := range docs {
		for _, w := range doc {
			if w < 0 || w >= cfg.V {
				return nil, nil, fmt.Errorf("sgns: doc %d token %d outside [0,%d)", di, w, cfg.V)
			}
			freq[w]++
		}
		for i, a := range doc {
			for j, b := range doc {
				if i != j {
					pairs = append(pairs, [2]int{a, b})
				}
			}
		}
	}
	if len(pairs) == 0 {
		return nil, nil, fmt.Errorf("sgns: no co-occurrence pairs (documents too small)")
	}
	noise = make([]float64, cfg.V)
	for w, f := range freq {
		noise[w] = math.Pow(f, cfg.NoisePower)
	}
	return pairs, noise, nil
}

// Train learns embeddings from companies' product sets: every ordered pair
// of distinct products within one company is a (target, context) positive
// example (install bases are small, so the window is the whole set —
// matching how the paper treats a company as the context unit).
func Train(cfg Config, docs [][]int, g *rng.RNG) (*Model, error) {
	return TrainContext(context.Background(), cfg, docs, g)
}

// TrainContext is Train with cooperative cancellation: ctx is checked at
// every epoch boundary, and on cancellation a final checkpoint is handed to
// cfg.Checkpoint (when set) before returning an error wrapping ctx.Err().
func TrainContext(ctx context.Context, cfg Config, docs [][]int, g *rng.RNG) (*Model, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	pairs, noise, err := buildPairs(&cfg, docs)
	if err != nil {
		return nil, err
	}

	m := &Model{V: cfg.V, Dim: cfg.Dim, In: mat.New(cfg.V, cfg.Dim), Out: mat.New(cfg.V, cfg.Dim)}
	scale := 0.5 / float64(cfg.Dim)
	for i := range m.In.Data {
		m.In.Data[i] = (2*g.Float64() - 1) * scale
	}
	// Out starts at zero, the word2vec convention.
	return trainLoop(ctx, cfg, m, pairs, noise, 0, 0, g)
}

// Resume continues an interrupted run from a checkpoint. docs must be the
// same documents the original call received; hooks supplies
// Progress/Checkpoint/CheckpointEvery for the continued run while the
// training schedule comes from the checkpoint. A resumed run draws the same
// random stream as the uninterrupted one, so the final model is
// bit-identical.
func Resume(ctx context.Context, ck *Checkpoint, docs [][]int, hooks Config) (*Model, error) {
	cfg := ck.Cfg.config()
	cfg.Progress = hooks.Progress
	cfg.Checkpoint = hooks.Checkpoint
	cfg.CheckpointEvery = hooks.CheckpointEvery
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, fmt.Errorf("sgns: checkpoint carries invalid config: %w", err)
	}
	if err := ck.validate(); err != nil {
		return nil, err
	}
	pairs, noise, err := buildPairs(&cfg, docs)
	if err != nil {
		return nil, err
	}
	if want := cfg.Epochs * len(pairs); ck.Step > want {
		return nil, fmt.Errorf("sgns: checkpoint step %d exceeds schedule (%d pairs x %d epochs)", ck.Step, len(pairs), cfg.Epochs)
	}
	m := &Model{
		V: cfg.V, Dim: cfg.Dim,
		In:  mat.FromSlice(cfg.V, cfg.Dim, append([]float64(nil), ck.In...)),
		Out: mat.FromSlice(cfg.V, cfg.Dim, append([]float64(nil), ck.Out...)),
	}
	g, err := rng.FromState(ck.RNG)
	if err != nil {
		return nil, fmt.Errorf("sgns: checkpoint RNG state: %w", err)
	}
	return trainLoop(ctx, cfg, m, pairs, noise, ck.Epoch, ck.Step, g)
}

// trainLoop runs epochs startEpoch..Epochs-1 over the model in place.
func trainLoop(ctx context.Context, cfg Config, m *Model, pairs [][2]int, noise []float64, startEpoch, startStep int, g *rng.RNG) (*Model, error) {
	sp := obs.Start("sgns.train")
	// Each epoch (and each checkpoint write) becomes a child span when ctx
	// carries an active trace; spans never touch model state or the RNG
	// stream, so traced and untraced runs are bit-identical.
	traced := trace.FromContext(ctx) != nil
	checkpoint := func(ck *Checkpoint) error {
		var csp *trace.Span
		if traced {
			_, csp = trace.Start(ctx, "sgns.train.checkpoint")
			csp.AttrInt("epoch", int64(ck.Epoch))
		}
		err := cfg.Checkpoint(ck)
		if err != nil {
			csp.Error(err)
		}
		csp.End()
		return err
	}
	total := cfg.Epochs * len(pairs)
	step := startStep
	order := make([]int, len(pairs))
	gradIn := make([]float64, cfg.Dim)
	track := cfg.Progress != nil
	for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			if cfg.Checkpoint != nil {
				if cerr := checkpoint(snapshotState(&cfg, m, epoch, step, g)); cerr != nil {
					return nil, fmt.Errorf("sgns: writing cancellation checkpoint: %w", cerr)
				}
			}
			return nil, fmt.Errorf("sgns: training interrupted after epoch %d/%d: %w", epoch, cfg.Epochs, err)
		}
		var epsp *trace.Span
		if traced {
			_, epsp = trace.Start(ctx, "sgns.train.epoch")
			epsp.AttrInt("epoch", int64(epoch))
		}
		var epochStart time.Time
		var epochLoss float64
		if track {
			epochStart = time.Now()
		}
		// Reset to the identity before shuffling so the visit order is a pure
		// function of the RNG state at the epoch boundary — required for
		// checkpoint resume to replay the identical pair order.
		for i := range order {
			order[i] = i
		}
		g.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, pi := range order {
			lr := cfg.LearnRate * (1 - float64(step)/float64(total))
			if lr < cfg.LearnRate*1e-4 {
				lr = cfg.LearnRate * 1e-4
			}
			step++
			target, context := pairs[pi][0], pairs[pi][1]
			in := m.In.Row(target)
			for k := range gradIn {
				gradIn[k] = 0
			}
			// positive update
			out := m.Out.Row(context)
			gpos := sigmoid(mat.Dot(in, out)) - 1 // label 1
			if track {
				epochLoss -= math.Log(math.Max(1+gpos, 1e-300)) // -log sigmoid(x)
			}
			for k := 0; k < cfg.Dim; k++ {
				gradIn[k] += gpos * out[k]
				out[k] -= lr * gpos * in[k]
			}
			// negative updates
			for n := 0; n < cfg.Negatives; n++ {
				neg := g.Categorical(noise)
				if neg == context {
					continue
				}
				outN := m.Out.Row(neg)
				gneg := sigmoid(mat.Dot(in, outN)) // label 0
				if track {
					epochLoss -= math.Log(math.Max(1-gneg, 1e-300)) // -log sigmoid(-x)
				}
				for k := 0; k < cfg.Dim; k++ {
					gradIn[k] += gneg * outN[k]
					outN[k] -= lr * gneg * in[k]
				}
			}
			for k := 0; k < cfg.Dim; k++ {
				in[k] -= lr * gradIn[k]
			}
		}
		trainEpochs.Inc()
		trainPairs.Add(uint64(len(pairs)))
		if track {
			elapsed := time.Since(epochStart).Seconds()
			pps := math.Inf(1)
			if elapsed > 0 {
				pps = float64(len(pairs)) / elapsed
			}
			cfg.Progress(obs.ProgressEvent{
				Model: "sgns", Iteration: epoch + 1, Total: cfg.Epochs,
				Loss: epochLoss / float64(len(pairs)), TokensPerSec: pps,
			})
		}
		epsp.End()
		if cfg.Checkpoint != nil && cfg.CheckpointEvery > 0 &&
			(epoch+1)%cfg.CheckpointEvery == 0 && epoch+1 < cfg.Epochs {
			if err := checkpoint(snapshotState(&cfg, m, epoch+1, step, g)); err != nil {
				return nil, fmt.Errorf("sgns: checkpoint hook at epoch %d: %w", epoch+1, err)
			}
		}
	}
	sp.End()
	return m, nil
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Embedding returns product w's embedding (a copy).
func (m *Model) Embedding(w int) []float64 {
	if w < 0 || w >= m.V {
		panic(fmt.Sprintf("sgns: product %d outside [0,%d)", w, m.V))
	}
	return append([]float64(nil), m.In.Row(w)...)
}

// ProductEmbeddings returns the V x Dim embedding matrix (a copy).
func (m *Model) ProductEmbeddings() *mat.Matrix {
	return m.In.Clone()
}

// Similarity returns the cosine similarity of two products' embeddings.
func (m *Model) Similarity(a, b int) float64 {
	return mat.CosineSim(m.In.Row(a), m.In.Row(b))
}

// Neighbors returns the k products most similar to w, by cosine,
// excluding w itself.
func (m *Model) Neighbors(w, k int) []int {
	type cand struct {
		id  int
		sim float64
	}
	var cands []cand
	for o := 0; o < m.V; o++ {
		if o == w {
			continue
		}
		cands = append(cands, cand{o, m.Similarity(w, o)})
	}
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].sim > cands[j-1].sim; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].id
	}
	return out
}

// CompanyEmbedding aggregates a company's product embeddings into one
// vector. weights, when non-nil, gives per-category weights (e.g. IDF);
// nil means plain mean pooling. Empty install bases yield the zero vector.
func (m *Model) CompanyEmbedding(products []int, weights []float64) []float64 {
	out := make([]float64, m.Dim)
	var total float64
	for _, w := range products {
		wt := 1.0
		if weights != nil {
			wt = weights[w]
		}
		mat.AxpyVec(wt, m.In.Row(w), out)
		total += wt
	}
	if total > 0 {
		mat.ScaleVec(1/total, out)
	}
	return out
}

// CompanyEmbeddings aggregates every document, returning an N x Dim matrix.
func (m *Model) CompanyEmbeddings(docs [][]int, weights []float64) *mat.Matrix {
	out := mat.New(len(docs), m.Dim)
	for d, doc := range docs {
		copy(out.Row(d), m.CompanyEmbedding(doc, weights))
	}
	return out
}

type gobModel struct {
	V, Dim  int
	In, Out []float64
}

// Save serializes the model into a checksummed snapshot container of kind
// KindModel.
func (m *Model) Save(w io.Writer) error {
	return snapshot.Write(w, KindModel, func(w io.Writer) error {
		return gob.NewEncoder(w).Encode(gobModel{V: m.V, Dim: m.Dim, In: m.In.Data, Out: m.Out.Data})
	})
}

// Load deserializes a model written by Save. Truncated, bit-flipped and
// wrong-kind files fail the container's integrity checks before any gob
// decoding runs.
func Load(r io.Reader) (*Model, error) {
	var g gobModel
	if err := snapshot.Read(r, KindModel, func(r io.Reader) error {
		return gob.NewDecoder(r).Decode(&g)
	}); err != nil {
		return nil, fmt.Errorf("sgns: loading model: %w", err)
	}
	if g.V < 2 || g.Dim < 1 || len(g.In) != g.V*g.Dim || len(g.Out) != g.V*g.Dim {
		return nil, fmt.Errorf("sgns: corrupt model")
	}
	return &Model{V: g.V, Dim: g.Dim, In: mat.FromSlice(g.V, g.Dim, g.In), Out: mat.FromSlice(g.V, g.Dim, g.Out)}, nil
}
