package sgns

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/rng"
)

// ckDocs builds small install bases with co-occurrence structure.
func ckDocs(n, v int, g *rng.RNG) [][]int {
	docs := make([][]int, n)
	for i := range docs {
		docs[i] = make([]int, 2+g.Intn(4))
		for j := range docs[i] {
			docs[i][j] = g.Intn(v)
		}
	}
	return docs
}

func modelBytes(t *testing.T, m *Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCheckpointHookDoesNotPerturbTraining(t *testing.T) {
	docs := ckDocs(15, 6, rng.New(3))
	cfg := Config{V: 6, Dim: 4, Epochs: 6}

	plain, err := Train(cfg, docs, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	hooked := cfg
	calls := 0
	hooked.CheckpointEvery = 2
	hooked.Checkpoint = func(*Checkpoint) error { calls++; return nil }
	ckRun, err := Train(hooked, docs, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("checkpoint hook never invoked")
	}
	if !bytes.Equal(modelBytes(t, plain), modelBytes(t, ckRun)) {
		t.Fatal("gob output differs with Checkpoint hook installed")
	}
}

func TestResumeMatchesUninterruptedRun(t *testing.T) {
	docs := ckDocs(20, 6, rng.New(5))
	cfg := Config{V: 6, Dim: 5, Epochs: 8}

	straight, err := Train(cfg, docs, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}

	var mid *Checkpoint
	hooked := cfg
	hooked.CheckpointEvery = 3
	hooked.Checkpoint = func(ck *Checkpoint) error {
		if mid == nil {
			mid = ck
		}
		return nil
	}
	if _, err := Train(hooked, docs, rng.New(99)); err != nil {
		t.Fatal(err)
	}
	if mid == nil {
		t.Fatal("no checkpoint captured")
	}
	var buf bytes.Buffer
	if err := mid.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(context.Background(), loaded, docs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(modelBytes(t, straight), modelBytes(t, resumed)) {
		t.Fatal("resumed model differs from uninterrupted run")
	}
}

func TestCancellationWritesFinalCheckpoint(t *testing.T) {
	docs := ckDocs(15, 5, rng.New(2))
	cfg := Config{V: 5, Dim: 4, Epochs: 10}

	ctx, cancel := context.WithCancel(context.Background())
	var last *Checkpoint
	calls := 0
	cfg.CheckpointEvery = 2
	cfg.Checkpoint = func(ck *Checkpoint) error {
		last = ck
		calls++
		if calls == 1 {
			cancel()
		}
		return nil
	}
	_, err := TrainContext(ctx, cfg, docs, rng.New(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if calls < 2 {
		t.Fatalf("cancellation must write a final checkpoint (calls = %d)", calls)
	}
	straight, err := Train(Config{V: 5, Dim: 4, Epochs: 10}, docs, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(context.Background(), last, docs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(modelBytes(t, straight), modelBytes(t, resumed)) {
		t.Fatal("resume after cancellation differs from uninterrupted run")
	}
}

func TestResumeRejectsWrongCorpus(t *testing.T) {
	docs := ckDocs(15, 5, rng.New(2))
	cfg := Config{V: 5, Dim: 4, Epochs: 6, CheckpointEvery: 2}
	var mid *Checkpoint
	cfg.Checkpoint = func(ck *Checkpoint) error { mid = ck; return nil }
	if _, err := Train(cfg, docs, rng.New(1)); err != nil {
		t.Fatal(err)
	}
	// A single tiny document yields fewer total pairs than the checkpoint's
	// step counter implies, so the schedule no longer fits.
	if _, err := Resume(context.Background(), mid, [][]int{{0, 1}}, Config{}); err == nil {
		t.Fatal("resume with a much smaller corpus must fail")
	}
}

func TestCheckpointHookErrorAbortsTraining(t *testing.T) {
	docs := ckDocs(15, 5, rng.New(2))
	boom := errors.New("disk full")
	cfg := Config{V: 5, Dim: 4, Epochs: 6, CheckpointEvery: 2}
	cfg.Checkpoint = func(*Checkpoint) error { return boom }
	if _, err := Train(cfg, docs, rng.New(1)); !errors.Is(err, boom) {
		t.Fatalf("want hook error surfaced, got %v", err)
	}
}

func TestLoadCheckpointRejectsCorruptState(t *testing.T) {
	docs := ckDocs(15, 5, rng.New(2))
	cfg := Config{V: 5, Dim: 4, Epochs: 6, CheckpointEvery: 2}
	var mid *Checkpoint
	cfg.Checkpoint = func(ck *Checkpoint) error { mid = ck; return nil }
	if _, err := Train(cfg, docs, rng.New(1)); err != nil {
		t.Fatal(err)
	}

	bad := *mid
	bad.In = mid.In[:3]
	var buf bytes.Buffer
	if err := bad.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(&buf); err == nil {
		t.Fatal("truncated embedding matrix accepted")
	}
}
