package sgns

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/rng"
	"repro/internal/snapshot"
)

// Checkpoint is a complete, self-owned snapshot of an SGNS training run at
// an epoch boundary: both embedding matrices, the step counter driving the
// learning-rate decay, and RNG state. Resume continues from it to a model
// bit-identical to the uninterrupted run.
type Checkpoint struct {
	Cfg     ConfigState
	Epoch   int // completed epochs; training resumes at this epoch
	Step    int // global pair counter (drives the linear lr decay)
	In, Out []float64
	RNG     [4]uint64
}

// snapshotState deep-copies all mutable training state into a Checkpoint.
// It draws no random numbers, so hooked runs train bit-identically.
func snapshotState(cfg *Config, m *Model, epoch, step int, g *rng.RNG) *Checkpoint {
	return &Checkpoint{
		Cfg:   cfg.state(),
		Epoch: epoch,
		Step:  step,
		In:    append([]float64(nil), m.In.Data...),
		Out:   append([]float64(nil), m.Out.Data...),
		RNG:   g.State(),
	}
}

func (ck *Checkpoint) validate() error {
	if ck.Epoch < 0 || ck.Epoch > ck.Cfg.Epochs {
		return fmt.Errorf("sgns: checkpoint epoch %d outside [0,%d]", ck.Epoch, ck.Cfg.Epochs)
	}
	if ck.Step < 0 {
		return fmt.Errorf("sgns: checkpoint step %d is negative", ck.Step)
	}
	if ck.Cfg.V < 2 || ck.Cfg.Dim < 1 {
		return fmt.Errorf("sgns: checkpoint has invalid shape %dx%d", ck.Cfg.V, ck.Cfg.Dim)
	}
	if want := ck.Cfg.V * ck.Cfg.Dim; len(ck.In) != want || len(ck.Out) != want {
		return fmt.Errorf("sgns: checkpoint embedding matrices have wrong shape")
	}
	return nil
}

// Save serializes the checkpoint into a checksummed snapshot container of
// kind KindCheckpoint.
func (ck *Checkpoint) Save(w io.Writer) error {
	return snapshot.Write(w, KindCheckpoint, func(w io.Writer) error {
		return gob.NewEncoder(w).Encode(ck)
	})
}

// LoadCheckpoint deserializes and validates a checkpoint written by Save.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	ck := new(Checkpoint)
	if err := snapshot.Read(r, KindCheckpoint, func(r io.Reader) error {
		return gob.NewDecoder(r).Decode(ck)
	}); err != nil {
		return nil, fmt.Errorf("sgns: loading checkpoint: %w", err)
	}
	if err := ck.validate(); err != nil {
		return nil, err
	}
	return ck, nil
}

// gob assigns wire type ids from a process-global registry at first encode,
// so a model encoded after a checkpoint would carry different type ids than
// one encoded in a fresh process. Pin this package's wire types in a fixed
// order at init so model files are byte-identical regardless of what else
// the process encoded first.
func init() {
	enc := gob.NewEncoder(io.Discard)
	_ = enc.Encode(gobModel{})
	_ = enc.Encode(Checkpoint{})
}
