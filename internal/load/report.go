package load

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"time"

	"repro/internal/snapshot"
)

// EndpointStats is the client-observed result for one endpoint (or the
// whole run, in Report.Total). Latencies are milliseconds; quantiles are
// exact order statistics over the measured samples, not bucket estimates.
// Quantiles use ceil-based nearest-rank (the smallest sample ≥ q of the
// distribution), so tail figures never under-report: p99 of 500 samples is
// the 495th order statistic, not the 494th as the earlier floor-indexed
// reports recorded. BENCH_serve.json files written before this change can
// read one rank lower on P99MS/P999MS.
type EndpointStats struct {
	Requests int `json:"requests"`
	Errors   int `json:"errors"` // transport failures + status >= 400
	// ErrorsTransport counts requests that never produced an HTTP status
	// (dial refused, client timeout, connection reset); ErrorsHTTP counts
	// responses with status >= 400. The two failure modes point at different
	// layers, so the split is always recorded: Errors = transport + HTTP.
	ErrorsTransport int     `json:"errors_transport"`
	ErrorsHTTP      int     `json:"errors_http"`
	ErrorRate       float64 `json:"error_rate"`
	// Partial counts degraded scatter-gather answers (X-Partial: true from a
	// sharded router) — successful requests that were missing shards.
	Partial int     `json:"partial_responses,omitempty"`
	QPS     float64 `json:"qps"`
	MeanMS  float64 `json:"mean_ms"`
	P50MS   float64 `json:"p50_ms"`
	P90MS   float64 `json:"p90_ms"`
	P99MS   float64 `json:"p99_ms"`
	P999MS  float64 `json:"p999_ms"`
	MaxMS   float64 `json:"max_ms"`
	// SlowestTraceID names the trace of the worst measured request — paste
	// into /debug/traces/{id} on the server's -debug-addr listener. Present
	// only when the run propagated traceparent headers.
	SlowestTraceID string `json:"slowest_trace_id,omitempty"`
}

// Report is the BENCH_serve.json shape.
type Report struct {
	Benchmark string `json:"benchmark"`
	// Label distinguishes runs in a combined benchmark file (e.g. "unsharded"
	// vs "sharded_router_3"); set with ibload -label.
	Label string `json:"label,omitempty"`
	Mode  string `json:"mode"` // open | closed
	// TargetQPS is the open-loop arrival rate (0 in closed loop); compare
	// with Total.QPS to see whether the server kept up.
	TargetQPS   float64 `json:"target_qps,omitempty"`
	Concurrency int     `json:"concurrency"`
	// CoordinatedOmissionCorrected records that open-loop latencies are
	// measured from scheduled departure, not actual send.
	CoordinatedOmissionCorrected bool                     `json:"coordinated_omission_corrected"`
	WarmupSec                    float64                  `json:"warmup_seconds"`
	MeasuredSec                  float64                  `json:"measured_seconds"`
	WarmupRequests               int                      `json:"warmup_requests"`
	Total                        EndpointStats            `json:"total"`
	Endpoints                    map[string]EndpointStats `json:"endpoints"`
	// Recall carries the server's live shadow-sampled exact-vs-ANN verdict
	// scraped from /debug/recall after the replay (ScrapeRecall); absent when
	// the target is not shadow-sampling.
	Recall *RecallStats `json:"ann_observed_recall,omitempty"`
}

// quantileMS returns the q-quantile of sorted latencies in milliseconds by
// ceil-based nearest-rank: the smallest sample such that at least q of the
// measured distribution is ≤ it. Floor indexing here under-reported tails —
// p999 over 500 samples floor-indexed to sample 498 of 500, silently
// discarding the worst observed latency.
func quantileMS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / float64(time.Millisecond)
}

func buildStats(samples []sample, measured time.Duration, withTrace bool) EndpointStats {
	st := EndpointStats{Requests: len(samples)}
	if len(samples) == 0 {
		return st
	}
	lats := make([]time.Duration, 0, len(samples))
	var sum time.Duration
	var slowest sample
	for _, s := range samples {
		if s.failed {
			st.Errors++
			if s.transport {
				st.ErrorsTransport++
			} else {
				st.ErrorsHTTP++
			}
		}
		if s.partial {
			st.Partial++
		}
		lats = append(lats, s.latency)
		sum += s.latency
		if s.latency >= slowest.latency {
			slowest = s
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	st.ErrorRate = float64(st.Errors) / float64(len(samples))
	if sec := measured.Seconds(); sec > 0 {
		st.QPS = float64(len(samples)) / sec
	}
	st.MeanMS = float64(sum) / float64(len(samples)) / float64(time.Millisecond)
	st.P50MS = quantileMS(lats, 0.50)
	st.P90MS = quantileMS(lats, 0.90)
	st.P99MS = quantileMS(lats, 0.99)
	st.P999MS = quantileMS(lats, 0.999)
	st.MaxMS = float64(lats[len(lats)-1]) / float64(time.Millisecond)
	if withTrace {
		st.SlowestTraceID = slowest.traceID
	}
	return st
}

func buildReport(cfg Config, samples []sample, measured time.Duration) *Report {
	mode := "closed"
	if cfg.OpenLoop {
		mode = "open"
	}
	r := &Report{
		Benchmark:                    "ibload replay against live ibserve: client-observed latency per endpoint",
		Label:                        cfg.Label,
		Mode:                         mode,
		Concurrency:                  cfg.Concurrency,
		CoordinatedOmissionCorrected: cfg.OpenLoop,
		WarmupSec:                    cfg.Warmup.Seconds(),
		MeasuredSec:                  measured.Seconds(),
		Endpoints:                    map[string]EndpointStats{},
	}
	if cfg.OpenLoop {
		r.TargetQPS = cfg.Rate
	}
	kept := make([]sample, 0, len(samples))
	byEndpoint := map[string][]sample{}
	for _, s := range samples {
		if s.warmup {
			r.WarmupRequests++
			continue
		}
		kept = append(kept, s)
		byEndpoint[s.endpoint] = append(byEndpoint[s.endpoint], s)
	}
	r.Total = buildStats(kept, measured, cfg.Trace)
	for name, group := range byEndpoint {
		r.Endpoints[name] = buildStats(group, measured, cfg.Trace)
	}
	return r
}

// WriteFile writes the report as indented JSON through snapshot.Atomic —
// the repo's single crash-safe write discipline (temp file, fsync, rename,
// world-readable install mode) for BENCH_*.json.
func (r *Report) WriteFile(path string) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return snapshot.Atomic(path, func(w io.Writer) error {
		_, werr := w.Write(append(raw, '\n'))
		return werr
	})
}
