// Package load is the deterministic replay harness behind cmd/ibload: it
// synthesizes a realistic query mix from a corpus (zipf-skewed company
// popularity, weighted endpoint mix, filter variation) and replays it against
// a running ibserve over HTTP, measuring client-observed latency per
// endpoint.
//
// Two driving modes cover the two questions a serving benchmark answers:
//
//   - open loop: requests depart on a fixed schedule (-rate per second)
//     regardless of how fast responses come back, and each latency is
//     measured from the request's *scheduled* departure — not its actual
//     send — so queueing delay behind a slow server is charged to the
//     server. This is the coordinated-omission correction: a closed-loop
//     client that politely waits for slow responses stops sampling exactly
//     when the server is at its worst.
//   - closed loop: a fixed worker count (-c) issues requests back to back,
//     measuring per-request service time. This answers "how fast can N
//     sequential callers go" rather than "what does a user see at X qps".
//
// Every generated request carries a fresh W3C traceparent header, so a
// server running with -trace joins each replayed request into a trace tree
// and the report can name the trace ID of the slowest request per endpoint —
// paste it into /debug/traces/{id} on the server's debug listener.
//
// The generator is seeded: the same corpus, seed and mix produce the same
// request stream, byte for byte, independent of response timing (in open
// loop; closed-loop scheduling is timing-dependent by nature, but each
// worker's stream is still seed-deterministic).
package load

import (
	"time"
)

// Mix weights the four query endpoints in the generated stream. Weights are
// relative, not normalized; a zero weight removes the endpoint. The zero Mix
// selects DefaultMix.
type Mix struct {
	Similar    float64
	Recommend  float64
	Whitespace float64
	Infer      float64
}

// DefaultMix approximates the sales-tool traffic shape the paper's Section 6
// deployment describes: similarity search dominates, recommendations ride on
// it, white-space prospecting and out-of-corpus scoring are occasional.
var DefaultMix = Mix{Similar: 0.55, Recommend: 0.30, Whitespace: 0.10, Infer: 0.05}

func (m Mix) isZero() bool {
	return m.Similar == 0 && m.Recommend == 0 && m.Whitespace == 0 && m.Infer == 0
}

// Config parameterizes one replay run. Zero values select the documented
// defaults.
type Config struct {
	// BaseURL is the serving address, e.g. "http://localhost:8080".
	BaseURL string
	// OpenLoop selects the fixed-arrival-rate mode (true) or the
	// fixed-concurrency closed loop (false).
	OpenLoop bool
	// Rate is the open-loop arrival rate in requests per second. Default 50.
	Rate float64
	// Concurrency is the closed-loop worker count, and in open loop the cap
	// on in-flight requests (the dispatcher stalls beyond it, which the
	// scheduled-time latency accounting charges to the server). Default 8.
	Concurrency int
	// Duration is the measured span. Default 5s.
	Duration time.Duration
	// Warmup requests are sent and drained but excluded from the report
	// (cache fill, connection establishment, JIT-ish first-touch costs).
	// Default 0.
	Warmup time.Duration
	// Timeout is the per-request client deadline. Default 10s.
	Timeout time.Duration
	// Trace sends the generated traceparent header with each request. The
	// header stream is generated either way so the request mix is identical
	// with tracing on and off.
	Trace bool
	// Label tags the report (Report.Label) so combined benchmark files can
	// tell runs apart, e.g. "unsharded" vs "sharded_router_3".
	Label string
}

func (c Config) withDefaults() Config {
	if c.Rate <= 0 {
		c.Rate = 50
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Warmup < 0 {
		c.Warmup = 0
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	return c
}
