package load

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"sync"
	"time"
)

// sample is one completed request as the client observed it.
type sample struct {
	endpoint  string
	latency   time.Duration
	status    int
	failed    bool // transport error or status >= 400
	transport bool // the failure never produced an HTTP status (dial, timeout, reset)
	partial   bool // a sharded router answered with X-Partial: true
	traceID   string
	warmup    bool
}

// outcome is one request's classified result: a transport failure (no HTTP
// status at all — dial refused, timeout, connection reset) is a different
// production signal than an HTTP error status, so the two are counted apart.
type outcome struct {
	status    int
	failed    bool
	transport bool
	partial   bool
}

// send issues one request and drains the response. The returned status is 0
// on a transport error.
func send(client *http.Client, cfg Config, req Request) outcome {
	var body io.Reader
	if req.Body != nil {
		body = bytes.NewReader(req.Body)
	}
	hr, err := http.NewRequest(req.Method, cfg.BaseURL+req.Path, body)
	if err != nil {
		return outcome{failed: true, transport: true}
	}
	if req.Body != nil {
		hr.Header.Set("Content-Type", "application/json")
	}
	if cfg.Trace {
		hr.Header.Set("traceparent", req.Traceparent)
	}
	resp, err := client.Do(hr)
	if err != nil {
		return outcome{failed: true, transport: true}
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return outcome{
		status:  resp.StatusCode,
		failed:  resp.StatusCode >= 400,
		partial: resp.Header.Get("X-Partial") == "true",
	}
}

// Run replays the generator's stream against cfg.BaseURL and reports
// client-side latency statistics per endpoint. ctx cancellation stops the
// run early; whatever completed before the cancel is still reported.
func Run(ctx context.Context, gen *Generator, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	client := &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			// The replay is the only client; let every worker keep its
			// connection so we measure the server, not handshakes.
			MaxIdleConnsPerHost: cfg.Concurrency + 4,
		},
	}
	var samples []sample
	var measured time.Duration
	if cfg.OpenLoop {
		samples, measured = runOpen(ctx, gen, cfg, client)
	} else {
		samples, measured = runClosed(ctx, gen, cfg, client)
	}
	return buildReport(cfg, samples, measured), nil
}

// runOpen is the fixed-arrival-rate driver. Request i is scheduled at
// start + i/rate; its latency is measured from that scheduled instant, so
// time spent queueing behind the in-flight cap (because the server fell
// behind) is charged to the server — the coordinated-omission correction.
func runOpen(ctx context.Context, gen *Generator, cfg Config, client *http.Client) ([]sample, time.Duration) {
	span := cfg.Warmup + cfg.Duration
	total := int(cfg.Rate * span.Seconds())
	if total < 1 {
		total = 1
	}
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	samples := make([]sample, total)
	sem := make(chan struct{}, cfg.Concurrency)
	var wg sync.WaitGroup

	start := time.Now()
	sent := total
	for i := 0; i < total; i++ {
		sched := start.Add(time.Duration(i) * interval)
		if d := time.Until(sched); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			sent = i
			break
		}
		req := gen.Next() // dispatch order keeps the stream deterministic
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, req Request, sched time.Time) {
			defer wg.Done()
			defer func() { <-sem }()
			out := send(client, cfg, req)
			samples[i] = sample{
				endpoint:  req.Endpoint,
				latency:   time.Since(sched), // from *scheduled* departure
				status:    out.status,
				failed:    out.failed,
				transport: out.transport,
				partial:   out.partial,
				traceID:   req.TraceID,
				warmup:    sched.Sub(start) < cfg.Warmup,
			}
		}(i, req, sched)
	}
	wg.Wait()
	measured := time.Since(start) - cfg.Warmup
	if measured <= 0 {
		measured = time.Since(start)
	}
	return samples[:sent], measured
}

// runClosed is the fixed-concurrency driver: cfg.Concurrency workers issue
// requests back to back until the deadline, each measuring pure service time.
func runClosed(ctx context.Context, gen *Generator, cfg Config, client *http.Client) ([]sample, time.Duration) {
	start := time.Now()
	deadline := start.Add(cfg.Warmup + cfg.Duration)
	perWorker := make([][]sample, cfg.Concurrency)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		g := gen.Split()
		wg.Add(1)
		go func(w int, g *Generator) {
			defer wg.Done()
			var out []sample
			for time.Now().Before(deadline) && ctx.Err() == nil {
				req := g.Next()
				sent := time.Now()
				res := send(client, cfg, req)
				out = append(out, sample{
					endpoint:  req.Endpoint,
					latency:   time.Since(sent),
					status:    res.status,
					failed:    res.failed,
					transport: res.transport,
					partial:   res.partial,
					traceID:   req.TraceID,
					warmup:    sent.Sub(start) < cfg.Warmup,
				})
			}
			perWorker[w] = out
		}(w, g)
	}
	wg.Wait()
	var samples []sample
	for _, out := range perWorker {
		samples = append(samples, out...)
	}
	measured := time.Since(start) - cfg.Warmup
	if measured <= 0 {
		measured = time.Since(start)
	}
	return samples, measured
}
