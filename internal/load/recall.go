package load

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// RecallStats is the server-side quality block the report can carry next to
// the client-observed latencies: the shadow sampler's live exact-vs-ANN
// verdict scraped from GET /debug/recall after the replay. The same shape
// parses a single ibserve's sampler status and an ibrouter's fleet aggregate
// (the fleet body has no per-process totals; those fields stay zero).
type RecallStats struct {
	// ObservedRecall is the sliding-window mean recall@k of ANN-served
	// answers against exact shadow re-executions; WindowSamples is how many
	// samples the window estimate rests on.
	ObservedRecall float64 `json:"observed_recall"`
	WindowSamples  uint64  `json:"window_samples"`
	// Samples / Dropped / ExactErrors are the sampler's process-lifetime
	// totals (zero when scraping a router fleet view).
	Samples     uint64 `json:"samples_total,omitempty"`
	Dropped     uint64 `json:"dropped_total,omitempty"`
	ExactErrors uint64 `json:"exact_errors_total,omitempty"`
}

// ScrapeRecall fetches GET {baseURL}/debug/recall and returns the live
// observed-recall stats. A 404 means the target is not shadow-sampling
// (sampling off, or an exact-only server): that is a clean (nil, nil), not an
// error, so callers can scrape unconditionally after a replay.
func ScrapeRecall(baseURL string, timeout time.Duration) (*RecallStats, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(baseURL + "/debug/recall")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("load: %s/debug/recall answered %d", baseURL, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	var rs RecallStats
	if err := json.Unmarshal(body, &rs); err != nil {
		return nil, fmt.Errorf("load: unparseable /debug/recall body: %w", err)
	}
	return &rs, nil
}
