package load

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestScrapeRecall covers the three scrape outcomes: a sampling server's
// status parses into RecallStats, a 404 (not sampling) is a clean nil, and a
// reachable-but-broken endpoint is an error.
func TestScrapeRecall(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/recall", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"enabled":true,"sample_one_in":8,"observed_recall":0.93,` +
			`"window_samples":12,"samples_total":40,"dropped_total":2,"exact_errors_total":1,"worst":[]}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	rs, err := ScrapeRecall(ts.URL, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rs == nil || rs.ObservedRecall != 0.93 || rs.WindowSamples != 12 ||
		rs.Samples != 40 || rs.Dropped != 2 || rs.ExactErrors != 1 {
		t.Fatalf("scraped %+v, want the served stats", rs)
	}

	off := httptest.NewServer(http.NewServeMux()) // no /debug/recall: sampling off
	defer off.Close()
	rs, err = ScrapeRecall(off.URL, time.Second)
	if err != nil || rs != nil {
		t.Fatalf("scrape of a non-sampling server = (%+v, %v), want (nil, nil)", rs, err)
	}

	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer broken.Close()
	if _, err = ScrapeRecall(broken.URL, time.Second); err == nil {
		t.Fatal("scrape of a 500ing endpoint succeeded, want error")
	}
}
