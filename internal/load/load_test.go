package load

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/trace"
)

// testCorpus mirrors the serve fixture: 40 companies with attribute variety.
func testCorpus() *corpus.Corpus {
	cat := corpus.DefaultCatalog()
	m := cat.Size()
	countries := []string{"US", "DE", "GB"}
	companies := make([]corpus.Company, 40)
	for i := range companies {
		companies[i] = corpus.Company{
			ID:        i,
			Name:      fmt.Sprintf("co-%02d", i),
			Country:   countries[i%len(countries)],
			SIC2:      70 + i%4,
			Employees: 50 + i*37%900,
			RevenueM:  float64(5 + i*11%200),
			Acquisitions: []corpus.Acquisition{
				{Category: i % m, First: corpus.Month(i % 12)},
				{Category: (i*5 + 2) % m, First: corpus.Month(i%12 + 1)},
			},
		}
		companies[i].SortAcquisitions()
	}
	return corpus.New(cat, companies)
}

func TestGeneratorDeterministicAndWellFormed(t *testing.T) {
	c := testCorpus()
	const n = 300
	genA := NewGenerator(c, GenConfig{Seed: 42})
	genB := NewGenerator(c, GenConfig{Seed: 42})
	counts := map[string]int{}
	hot := map[string]int{}
	for i := 0; i < n; i++ {
		a, b := genA.Next(), genB.Next()
		if a.Path != b.Path || string(a.Body) != string(b.Body) || a.Traceparent != b.Traceparent {
			t.Fatalf("request %d diverged between identical seeds:\n%+v\n%+v", i, a, b)
		}
		counts[a.Endpoint]++
		if a.Endpoint == "similar" || a.Endpoint == "recommend" {
			hot[strings.Split(strings.TrimPrefix(a.Path, "/v1/"), "?")[0]]++
		}
		tp, ok := trace.ParseTraceparent(a.Traceparent)
		if !ok {
			t.Fatalf("request %d traceparent %q does not parse", i, a.Traceparent)
		}
		if tp.TraceID.String() != a.TraceID {
			t.Fatalf("request %d TraceID %s != traceparent %s", i, a.TraceID, tp.TraceID)
		}
		switch a.Endpoint {
		case "similar", "recommend":
			if a.Method != "GET" || a.Body != nil {
				t.Fatalf("GET endpoint with body: %+v", a)
			}
			var id int
			if _, err := fmt.Sscanf(a.Path, "/v1/"+a.Endpoint+"/%d", &id); err != nil {
				t.Fatalf("unparseable path %q: %v", a.Path, err)
			}
			if id < 0 || id >= c.N() {
				t.Fatalf("company id %d outside corpus [0,%d)", id, c.N())
			}
		case "whitespace":
			var body struct {
				Clients []int `json:"clients"`
				K       int   `json:"k"`
			}
			if err := json.Unmarshal(a.Body, &body); err != nil || len(body.Clients) < 2 || body.K == 0 {
				t.Fatalf("whitespace body %s: %v", a.Body, err)
			}
		case "infer":
			var body struct {
				Owned []int `json:"owned"`
			}
			if err := json.Unmarshal(a.Body, &body); err != nil || len(body.Owned) == 0 {
				t.Fatalf("infer body %s: %v", a.Body, err)
			}
			for _, cat := range body.Owned {
				if cat < 0 || cat >= c.M() {
					t.Fatalf("owned category %d outside vocab [0,%d)", cat, c.M())
				}
			}
		default:
			t.Fatalf("unknown endpoint %q", a.Endpoint)
		}
	}
	// The default mix must produce every endpoint, similar most often.
	for _, e := range []string{"similar", "recommend", "whitespace", "infer"} {
		if counts[e] == 0 {
			t.Fatalf("endpoint %s never generated: %v", e, counts)
		}
	}
	if counts["similar"] <= counts["infer"] {
		t.Fatalf("mix weights ignored: %v", counts)
	}
	// Zipf skew concentrates traffic: the hottest target must see far more
	// than a uniform share (n_targets=40, so uniform ~ n/40).
	var maxHits int
	for _, h := range hot {
		if h > maxHits {
			maxHits = h
		}
	}
	uniform := (counts["similar"] + counts["recommend"]) / c.N()
	if maxHits < 3*uniform {
		t.Fatalf("no popularity skew: hottest company got %d hits, uniform share is %d", maxHits, uniform)
	}

	// A different seed produces a different stream.
	genC := NewGenerator(c, GenConfig{Seed: 43})
	diverged := false
	genA2 := NewGenerator(c, GenConfig{Seed: 42})
	for i := 0; i < 20; i++ {
		if genA2.Next().Path != genC.Next().Path {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("seeds 42 and 43 generated identical streams")
	}
}

func TestMixGatesEndpoints(t *testing.T) {
	c := testCorpus()
	gen := NewGenerator(c, GenConfig{Seed: 7, Mix: Mix{Similar: 1}})
	for i := 0; i < 50; i++ {
		if r := gen.Next(); r.Endpoint != "similar" {
			t.Fatalf("similar-only mix generated %q", r.Endpoint)
		}
	}
}

// TestOpenLoopChargesBacklogToServer pins the coordinated-omission
// correction: a server whose service time exceeds the arrival interval falls
// behind, and the open-loop latencies — measured from scheduled departure —
// must grow far beyond the service time. A closed-loop run against the same
// server reports roughly the bare service time.
func TestOpenLoopChargesBacklogToServer(t *testing.T) {
	const service = 30 * time.Millisecond
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(service)
		w.Write([]byte("{}"))
	}))
	defer srv.Close()
	c := testCorpus()

	open, err := Run(context.Background(), NewGenerator(c, GenConfig{Seed: 1, Mix: Mix{Similar: 1}}), Config{
		BaseURL:     srv.URL,
		OpenLoop:    true,
		Rate:        50, // 20ms interval < 30ms service: guaranteed backlog
		Concurrency: 1,
		Duration:    400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if open.Total.Requests < 15 {
		t.Fatalf("open loop measured %d requests", open.Total.Requests)
	}
	if open.Total.Errors != 0 {
		t.Fatalf("open loop errors: %+v", open.Total)
	}
	if !open.CoordinatedOmissionCorrected || open.Mode != "open" || open.TargetQPS != 50 {
		t.Fatalf("open report metadata %+v", open)
	}
	serviceMS := float64(service) / float64(time.Millisecond)
	if open.Total.MaxMS < 3*serviceMS {
		t.Fatalf("open-loop max %.1fms does not charge the backlog (service %.0fms)",
			open.Total.MaxMS, serviceMS)
	}

	closed, err := Run(context.Background(), NewGenerator(c, GenConfig{Seed: 1, Mix: Mix{Similar: 1}}), Config{
		BaseURL:     srv.URL,
		Concurrency: 2,
		Duration:    300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if closed.Total.Requests == 0 || closed.Mode != "closed" || closed.CoordinatedOmissionCorrected {
		t.Fatalf("closed report %+v", closed)
	}
	// Closed-loop latency is pure service time: comfortably under the
	// open-loop backlog tail.
	if closed.Total.P50MS >= open.Total.MaxMS {
		t.Fatalf("closed p50 %.1fms >= open max %.1fms", closed.Total.P50MS, open.Total.MaxMS)
	}
}

func TestReportShapeWarmupAndWriteFile(t *testing.T) {
	var recommendHits atomic.Uint64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/recommend/") {
			recommendHits.Add(1)
			http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
			return
		}
		if r.Header.Get("traceparent") == "" {
			http.Error(w, `{"error":"no traceparent"}`, http.StatusBadRequest)
			return
		}
		w.Write([]byte("{}"))
	}))
	defer srv.Close()
	c := testCorpus()

	rep, err := Run(context.Background(), NewGenerator(c, GenConfig{Seed: 5}), Config{
		BaseURL:     srv.URL,
		OpenLoop:    true,
		Rate:        200,
		Concurrency: 8,
		Duration:    300 * time.Millisecond,
		Warmup:      100 * time.Millisecond,
		Trace:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WarmupRequests == 0 {
		t.Fatalf("no warmup requests recorded: %+v", rep)
	}
	var endpointSum int
	for name, e := range rep.Endpoints {
		endpointSum += e.Requests
		if name == "recommend" {
			if e.Errors != e.Requests || e.ErrorRate != 1 {
				t.Fatalf("recommend endpoint must be all errors: %+v", e)
			}
		} else if e.Errors != 0 {
			t.Fatalf("%s endpoint has unexpected errors (traceparent missing?): %+v", name, e)
		}
		if e.Requests > 0 {
			if e.SlowestTraceID == "" {
				t.Fatalf("%s missing slowest_trace_id with tracing on: %+v", name, e)
			}
			if _, ok := trace.ParseTraceID(e.SlowestTraceID); !ok {
				t.Fatalf("%s slowest_trace_id %q invalid", name, e.SlowestTraceID)
			}
			if e.P50MS > e.P99MS || e.P99MS > e.MaxMS {
				t.Fatalf("%s quantiles out of order: %+v", name, e)
			}
		}
	}
	if endpointSum != rep.Total.Requests {
		t.Fatalf("endpoint requests sum %d != total %d", endpointSum, rep.Total.Requests)
	}
	if rep.Total.QPS <= 0 || rep.WarmupSec != 0.1 {
		t.Fatalf("report timing %+v", rep)
	}
	if recommendHits.Load() == 0 {
		t.Fatal("mix never hit recommend")
	}

	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("report does not round-trip: %v\n%s", err, raw)
	}
	if back.Total.Requests != rep.Total.Requests || back.Mode != "open" {
		t.Fatalf("round-tripped report differs: %+v vs %+v", back.Total, rep.Total)
	}

	// With Trace off, no traceparent is sent (the stub 400s those) and no
	// slowest_trace_id is reported.
	rep2, err := Run(context.Background(), NewGenerator(c, GenConfig{Seed: 5, Mix: Mix{Similar: 1}}), Config{
		BaseURL:  srv.URL,
		OpenLoop: true,
		Rate:     100,
		Duration: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Total.Requests == 0 || rep2.Total.Errors != rep2.Total.Requests {
		t.Fatalf("trace-off run should have been all 400s: %+v", rep2.Total)
	}
	if rep2.Total.SlowestTraceID != "" {
		t.Fatalf("trace-off report names a trace: %+v", rep2.Total)
	}
}

// TestErrorSplitAndPartialCounts pins the transport/HTTP error split and the
// partial-response counter: a stub that 500s one endpoint and marks another
// X-Partial yields only errors_http and partial_responses; a dead base URL
// yields only errors_transport. Errors stays the sum of both classes.
func TestErrorSplitAndPartialCounts(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasPrefix(r.URL.Path, "/v1/recommend/"):
			http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
		case strings.HasPrefix(r.URL.Path, "/v1/similar/"):
			w.Header().Set("X-Partial", "true")
			w.Write([]byte(`{"partial":true}`))
		default:
			w.Write([]byte("{}"))
		}
	}))
	defer srv.Close()
	c := testCorpus()

	rep, err := Run(context.Background(), NewGenerator(c, GenConfig{Seed: 11}), Config{
		BaseURL:     srv.URL,
		OpenLoop:    true,
		Rate:        300,
		Concurrency: 8,
		Duration:    300 * time.Millisecond,
		Label:       "stub",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Label != "stub" {
		t.Fatalf("label not recorded: %+v", rep)
	}
	tot := rep.Total
	if tot.ErrorsTransport != 0 {
		t.Fatalf("live stub produced transport errors: %+v", tot)
	}
	if tot.ErrorsHTTP == 0 || tot.ErrorsHTTP != tot.Errors {
		t.Fatalf("HTTP errors not counted as such: %+v", tot)
	}
	if tot.Partial == 0 {
		t.Fatalf("X-Partial responses not counted: %+v", tot)
	}
	sim := rep.Endpoints["similar"]
	if sim.Partial != sim.Requests || sim.Errors != 0 {
		t.Fatalf("every similar answer was partial and successful: %+v", sim)
	}
	rec := rep.Endpoints["recommend"]
	if rec.ErrorsHTTP != rec.Requests || rec.ErrorsTransport != 0 || rec.Partial != 0 {
		t.Fatalf("recommend must be all HTTP errors: %+v", rec)
	}

	// Transport class: a base URL nothing listens on. Grab a port that was
	// just released so the dials fail fast with connection refused.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	rep2, err := Run(context.Background(), NewGenerator(c, GenConfig{Seed: 11, Mix: Mix{Similar: 1}}), Config{
		BaseURL:  deadURL,
		OpenLoop: true,
		Rate:     200,
		Duration: 150 * time.Millisecond,
		Timeout:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	tot2 := rep2.Total
	if tot2.Requests == 0 || tot2.ErrorsTransport != tot2.Requests {
		t.Fatalf("dead server must be all transport errors: %+v", tot2)
	}
	if tot2.ErrorsHTTP != 0 || tot2.Errors != tot2.ErrorsTransport || tot2.Partial != 0 {
		t.Fatalf("transport run miscounted: %+v", tot2)
	}
}

// TestRunCancellation stops an open-loop run early and keeps the partial
// results.
func TestRunCancellation(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{}"))
	}))
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	rep, err := Run(ctx, NewGenerator(testCorpus(), GenConfig{Seed: 2, Mix: Mix{Similar: 1}}), Config{
		BaseURL:  srv.URL,
		OpenLoop: true,
		Rate:     100,
		Duration: 10 * time.Second, // cancelled long before this
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Requests == 0 || rep.Total.Requests > 100 {
		t.Fatalf("cancelled run measured %d requests", rep.Total.Requests)
	}
}

// TestQuantileNearestRank pins quantileMS to ceil-based nearest-rank: the
// smallest sample with at least q of the distribution at or below it. The
// old floor indexing under-reported tails — p999 of 500 samples read index
// 498 instead of the worst sample at 499.
func TestQuantileNearestRank(t *testing.T) {
	ms := func(n int) []time.Duration {
		s := make([]time.Duration, n)
		for i := range s {
			s[i] = time.Duration(i+1) * time.Millisecond
		}
		return s
	}
	cases := []struct {
		name string
		n    int
		q    float64
		want float64 // milliseconds, == 1-based nearest rank
	}{
		{"empty", 0, 0.5, 0},
		{"single", 1, 0.999, 1},
		{"p50 even count takes upper median", 10, 0.50, 5},
		{"p90 of 10", 10, 0.90, 9},
		{"p99 of 10 is the max", 10, 0.99, 10},
		{"p99 of 100", 100, 0.99, 99},
		{"p999 of 100 is the max", 100, 0.999, 100},
		{"p99 of 500", 500, 0.99, 495},
		{"p999 of 500 reads rank 500, not 499", 500, 0.999, 500},
		{"p999 of 1000", 1000, 0.999, 999},
		{"q=1 is the max", 7, 1.0, 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := quantileMS(ms(tc.n), tc.q); got != tc.want {
				t.Fatalf("quantileMS(n=%d, q=%g) = %g ms, want %g", tc.n, tc.q, got, tc.want)
			}
		})
	}
}
