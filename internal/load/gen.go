package load

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/corpus"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Request is one generated query, ready to send: a relative URL (path +
// query), an optional JSON body, and a pre-generated traceparent so the
// request stream is identical whether or not the driver sends the header.
type Request struct {
	Endpoint    string // similar | recommend | whitespace | infer
	Method      string
	Path        string
	Body        []byte
	TraceID     string // 32-char hex, the ID inside Traceparent
	Traceparent string
}

// GenConfig parameterizes the query generator. Zero values select defaults.
type GenConfig struct {
	// Seed drives every random choice; identical (corpus, GenConfig) pairs
	// generate identical streams.
	Seed int64
	// Mix weights the endpoints (zero selects DefaultMix).
	Mix Mix
	// ZipfSkew is the s parameter of the company-popularity distribution:
	// 0 is uniform, larger concentrates traffic on few hot companies the
	// way a sales team hammers its current prospects. Default 1.1.
	ZipfSkew float64
	// FilterProb is the probability a query carries a business filter
	// (country or sic2 drawn from the corpus's real values). Default 0.25;
	// negative disables filters.
	FilterProb float64
}

func (g GenConfig) withDefaults() GenConfig {
	if g.Mix.isZero() {
		g.Mix = DefaultMix
	}
	if g.ZipfSkew == 0 {
		g.ZipfSkew = 1.1
	}
	if g.FilterProb == 0 {
		g.FilterProb = 0.25
	}
	if g.FilterProb < 0 {
		g.FilterProb = 0
	}
	return g
}

// Generator synthesizes the query stream. Not safe for concurrent use; the
// open-loop driver generates in dispatch order, and closed-loop workers each
// own a Generator split from the run seed.
type Generator struct {
	g         *rng.RNG
	ids       []int      // popularity rank -> company id
	company   func() int // zipf sampler over ranks
	vocab     int
	countries []string
	sic2s     []int
	weights   []float64
	endpoints []string
	filterP   float64
	skew      float64
}

// NewGenerator builds a generator over the corpus the target server loaded.
// Filter values (countries, SIC2 codes) are the corpus's real distinct
// values, collected in sorted order so the stream never depends on map
// iteration.
func NewGenerator(c *corpus.Corpus, cfg GenConfig) *Generator {
	cfg = cfg.withDefaults()
	g := rng.New(cfg.Seed)
	n := c.N()

	countrySet := map[string]bool{}
	sic2Set := map[int]bool{}
	for _, co := range c.Companies {
		if co.Country != "" {
			countrySet[co.Country] = true
		}
		if co.SIC2 != 0 {
			sic2Set[co.SIC2] = true
		}
	}
	countries := make([]string, 0, len(countrySet))
	for v := range countrySet {
		countries = append(countries, v)
	}
	sort.Strings(countries)
	sic2s := make([]int, 0, len(sic2Set))
	for v := range sic2Set {
		sic2s = append(sic2s, v)
	}
	sort.Ints(sic2s)

	gen := &Generator{
		g:         g,
		ids:       g.Perm(n), // decouple popularity rank from id order
		company:   g.Zipf(n, cfg.ZipfSkew),
		vocab:     c.M(),
		countries: countries,
		sic2s:     sic2s,
		filterP:   cfg.FilterProb,
		skew:      cfg.ZipfSkew,
	}
	for _, e := range []struct {
		name   string
		weight float64
	}{
		{"similar", cfg.Mix.Similar},
		{"recommend", cfg.Mix.Recommend},
		{"whitespace", cfg.Mix.Whitespace},
		{"infer", cfg.Mix.Infer},
	} {
		if e.weight > 0 {
			gen.endpoints = append(gen.endpoints, e.name)
			gen.weights = append(gen.weights, e.weight)
		}
	}
	if len(gen.endpoints) == 0 {
		gen.endpoints = []string{"similar"}
		gen.weights = []float64{1}
	}
	return gen
}

// Split returns an independent generator whose stream is derived from, but
// uncorrelated with, this one — one per closed-loop worker. The split shares
// the popularity rank permutation (workers hammer the same hot companies)
// while drawing from its own RNG stream.
func (q *Generator) Split() *Generator {
	cp := *q
	cp.g = q.g.Split()
	cp.company = cp.g.Zipf(len(q.ids), q.skew)
	return &cp
}

// filterQuery returns a query-string fragment ("" most of the time) with a
// real country or SIC2 filter.
func (q *Generator) filterQuery() string {
	if !q.g.Bernoulli(q.filterP) {
		return ""
	}
	if len(q.countries) > 0 && (len(q.sic2s) == 0 || q.g.Bernoulli(0.5)) {
		return "&country=" + q.countries[q.g.Intn(len(q.countries))]
	}
	if len(q.sic2s) > 0 {
		return fmt.Sprintf("&sic2=%d", q.sic2s[q.g.Intn(len(q.sic2s))])
	}
	return ""
}

// filterBody returns the "filter" object for POST bodies, or nil.
func (q *Generator) filterBody() map[string]any {
	if !q.g.Bernoulli(q.filterP) {
		return nil
	}
	if len(q.countries) > 0 && (len(q.sic2s) == 0 || q.g.Bernoulli(0.5)) {
		return map[string]any{"country": q.countries[q.g.Intn(len(q.countries))]}
	}
	if len(q.sic2s) > 0 {
		return map[string]any{"sic2": q.sic2s[q.g.Intn(len(q.sic2s))]}
	}
	return nil
}

var kChoices = []int{5, 10, 25}

// Next generates one request. The traceparent is drawn from the same stream
// as the query parameters, so toggling header propagation never shifts the
// mix.
func (q *Generator) Next() Request {
	var tid trace.TraceID
	for i := range tid {
		tid[i] = byte(q.g.Intn(256))
	}
	tid[15] |= 1 // all-zero IDs are invalid per the W3C grammar
	var sid trace.SpanID
	for i := range sid {
		sid[i] = byte(q.g.Intn(256))
	}
	sid[7] |= 1

	req := Request{
		Endpoint:    q.endpoints[q.g.Categorical(q.weights)],
		Method:      "GET",
		TraceID:     tid.String(),
		Traceparent: trace.FormatTraceparent(tid, sid),
	}
	id := q.ids[q.company()]
	k := kChoices[q.g.Intn(len(kChoices))]
	switch req.Endpoint {
	case "similar":
		req.Path = fmt.Sprintf("/v1/similar/%d?k=%d%s", id, k, q.filterQuery())
	case "recommend":
		peers := 5 * (1 + q.g.Intn(5)) // 5..25
		req.Path = fmt.Sprintf("/v1/recommend/%d?peers=%d%s", id, peers, q.filterQuery())
	case "whitespace":
		clients := make([]int, 2+q.g.Intn(4))
		for i := range clients {
			clients[i] = q.ids[q.company()]
		}
		req.Method = "POST"
		req.Path = "/v1/whitespace"
		req.Body = marshalBody(map[string]any{"clients": clients, "k": k}, q.filterBody())
	case "infer":
		owned := make([]int, 1+q.g.Intn(4))
		for i := range owned {
			owned[i] = q.g.Intn(q.vocab)
		}
		req.Method = "POST"
		req.Path = "/v1/infer"
		req.Body = marshalBody(map[string]any{"owned": owned, "k": k}, q.filterBody())
	}
	return req
}

// marshalBody renders a POST body with an optional filter object. Top-level
// keys are marshalled through a struct-free map; encoding/json sorts map keys,
// so the bytes are deterministic.
func marshalBody(fields map[string]any, filter map[string]any) []byte {
	if filter != nil {
		fields["filter"] = filter
	}
	raw, err := json.Marshal(fields)
	if err != nil {
		panic("load: marshalling generated body: " + err.Error()) // unreachable: plain maps and ints
	}
	return raw
}
