package trace

import "sync/atomic"

// ring is the bounded lock-free buffer of retained traces. Writers claim a
// slot by incrementing head and store the trace with an atomic pointer
// write, so concurrent request goroutines never serialize on a mutex; the
// oldest trace in a slot is simply overwritten. Readers walk the slots
// newest-first off a head snapshot — a reader racing a writer may see a
// trace newer than its snapshot or miss one being overwritten, which is
// acceptable for a debug view and keeps the hot path wait-free.
type ring struct {
	slots []atomic.Pointer[traceData]
	head  atomic.Uint64 // total pushes ever; slot = (head-1) % len
}

func newRing(capacity int) *ring {
	return &ring{slots: make([]atomic.Pointer[traceData], capacity)}
}

// push publishes a completed trace, overwriting the oldest slot when full.
func (r *ring) push(td *traceData) {
	i := r.head.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(td)
}

// snapshot returns the retained traces newest-first. The result is a fresh
// slice; the traces themselves are immutable once published.
func (r *ring) snapshot() []*traceData {
	h := r.head.Load()
	n := uint64(len(r.slots))
	if h < n {
		n = h
	}
	out := make([]*traceData, 0, n)
	for j := uint64(0); j < n; j++ {
		if td := r.slots[(h-1-j)%uint64(len(r.slots))].Load(); td != nil {
			out = append(out, td)
		}
	}
	return out
}

// get returns the retained trace with the given ID, or nil.
func (r *ring) get(id TraceID) *traceData {
	for _, td := range r.snapshot() {
		if td.id == id {
			return td
		}
	}
	return nil
}
