// Package trace is the repo's zero-dependency request-scoped tracing layer.
// Where internal/obs answers "how is the p99 doing" with aggregate
// histograms, trace answers "where did THIS 300ms request go": every traced
// request carries a 128-bit trace ID and a tree of parent/child spans with
// attributes and events, propagated through context.Context from the serve
// handlers down the context-threaded core query paths and into the par shard
// fan-out, so a single /v1/recommend call decomposes into filter-scan,
// shard-scan and fold-in spans with per-span wall-clock durations.
//
// Completed traces pass through tail sampling — the retention decision is
// made when the root span ends, so it can look at the whole request: traces
// containing an error span are always retained, traces whose root duration
// reaches the slow threshold are always retained, and the rest are retained
// with probability SampleRate. Retained traces land in a bounded lock-free
// ring buffer served over HTTP as /debug/traces (recent list, filterable by
// endpoint and minimum duration) and /debug/traces/{id} (full JSON tree) on
// the cmd/ binaries' -debug-addr listener.
//
// The layer is off by default and follows the obs.Span cost discipline: with
// the tracer disabled and no active trace in the context, Start returns a
// nil *Span whose methods are nil-check no-ops, so instrumentation stays
// compiled into hot paths. Active spans additionally feed the obs registry —
// ending a span observes the <dotted.name>_seconds histogram — so one
// recorded span shows up both as an aggregate observation and as a tree
// node, and the existing obs.Span histograms keep working unchanged.
package trace

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Tracer-level metrics, shared by all tracers via the default obs registry.
var (
	tracesStarted = obs.Default().Counter("trace_traces_started_total",
		"root spans started (traced requests, whether or not retained)")
	tracesRetained = obs.Default().Counter("trace_traces_retained_total",
		"completed traces retained by tail sampling into the ring buffer")
	tracesSampledOut = obs.Default().Counter("trace_traces_sampled_out_total",
		"completed traces discarded by tail sampling (fast, error-free, unlucky)")
	spansStarted = obs.Default().Counter("trace_spans_total",
		"spans recorded across all traces")
	spansDropped = obs.Default().Counter("trace_spans_dropped_total",
		"spans dropped because their trace reached the per-trace span cap")
)

// Retention reasons recorded on a retained trace.
const (
	RetainedError   = "error"   // a span in the trace recorded an error
	RetainedSlow    = "slow"    // root duration reached the slow threshold
	RetainedSampled = "sampled" // probabilistically retained
)

// DefaultCapacity is the ring-buffer size a zero-configured Tracer uses.
const DefaultCapacity = 256

// DefaultMaxSpans bounds the spans kept per trace; later spans are counted
// but not stored, so a runaway fan-out cannot hold unbounded memory.
const DefaultMaxSpans = 512

// Tracer owns the sampling policy and the ring buffer of retained traces.
// All configuration methods are safe to call concurrently with tracing.
type Tracer struct {
	enabled  atomic.Bool
	slow     atomic.Int64  // retention threshold in nanoseconds; 0 disables the rule
	sample   atomic.Uint64 // float64 bits of the probabilistic retention rate
	maxSpans atomic.Int64
	rng      atomic.Uint64 // xorshift64 state for IDs and sampling
	ring     atomic.Pointer[ring]
}

// NewTracer returns a disabled tracer with a ring of the given capacity
// (capacity < 1 selects DefaultCapacity).
func NewTracer(capacity int) *Tracer {
	t := &Tracer{}
	if capacity < 1 {
		capacity = DefaultCapacity
	}
	t.ring.Store(newRing(capacity))
	t.maxSpans.Store(DefaultMaxSpans)
	// Seed the ID stream from the wall clock; tracing never touches the
	// deterministic model RNGs, and IDs only need uniqueness, not
	// reproducibility.
	seed := uint64(time.Now().UnixNano())
	if seed == 0 {
		seed = 1
	}
	t.rng.Store(seed)
	return t
}

var defaultTracer = NewTracer(DefaultCapacity)

// Default returns the process-wide tracer the cmd/ binaries configure from
// their -trace* flags.
func Default() *Tracer { return defaultTracer }

// SetEnabled turns root-span creation on or off. Disabling does not clear
// already-retained traces.
func (t *Tracer) SetEnabled(on bool) { t.enabled.Store(on) }

// Enabled reports whether new root spans are being created.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// SetSlowThreshold sets the always-retain latency threshold; d <= 0 disables
// the slow rule.
func (t *Tracer) SetSlowThreshold(d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.slow.Store(int64(d))
}

// SlowThreshold returns the always-retain latency threshold (0 = disabled).
func (t *Tracer) SlowThreshold() time.Duration { return time.Duration(t.slow.Load()) }

// SetSampleRate sets the probability in [0,1] that a fast, error-free trace
// is retained anyway.
func (t *Tracer) SetSampleRate(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	t.sample.Store(floatBits(p))
}

// SampleRate returns the probabilistic retention rate.
func (t *Tracer) SampleRate() float64 { return bitsFloat(t.sample.Load()) }

// SetCapacity replaces the ring buffer with an empty one of the given
// capacity (capacity < 1 selects DefaultCapacity). Retained traces are
// dropped; intended for startup configuration.
func (t *Tracer) SetCapacity(capacity int) {
	if capacity < 1 {
		capacity = DefaultCapacity
	}
	t.ring.Store(newRing(capacity))
}

// Capacity returns the ring-buffer capacity.
func (t *Tracer) Capacity() int { return len(t.ring.Load().slots) }

// SetMaxSpans bounds the spans stored per trace (n < 1 selects
// DefaultMaxSpans). ibtrain raises it so long trainings keep every epoch.
func (t *Tracer) SetMaxSpans(n int) {
	if n < 1 {
		n = DefaultMaxSpans
	}
	t.maxSpans.Store(int64(n))
}

// rand64 advances the tracer's xorshift64 stream; lock-free via CAS.
func (t *Tracer) rand64() uint64 {
	for {
		old := t.rng.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if t.rng.CompareAndSwap(old, x) {
			return x
		}
	}
}

func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		hi, lo := t.rand64(), t.rand64()
		for i := 0; i < 8; i++ {
			id[i] = byte(hi >> (8 * (7 - i)))
			id[8+i] = byte(lo >> (8 * (7 - i)))
		}
	}
	return id
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		v := t.rand64()
		for i := 0; i < 8; i++ {
			id[i] = byte(v >> (8 * (7 - i)))
		}
	}
	return id
}

// traceData accumulates one in-flight trace. Span starts append under mu
// (shard spans start on worker goroutines); span field writes stay with the
// owning goroutine and are published to readers by the ring's atomic store,
// which the caller only performs after the root span — and therefore, by the
// fork/join structure of the instrumented paths, every child — has ended.
type traceData struct {
	tracer *Tracer
	id     TraceID
	start  time.Time
	remote SpanID // parent span ID from an ingested traceparent header

	mu      sync.Mutex
	spans   []*Span
	started int  // spans started, including dropped ones
	failed  bool // any span recorded an error

	// Set by finish, before the trace becomes reachable via the ring.
	dur    time.Duration
	reason string
}

// Attr is one key/value annotation on a span. Values are pre-rendered
// strings so export needs no reflection.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanEvent is a timestamped point annotation within a span.
type SpanEvent struct {
	OffsetUS int64  `json:"offset_us"` // microseconds since the span started
	Msg      string `json:"msg"`
}

// Span is one node of a trace tree. A nil *Span is valid and inert: every
// method nil-checks first, so disabled tracing costs one pointer test per
// call site. Span methods other than lifecycle bookkeeping must be called
// from the goroutine that started the span.
type Span struct {
	td     *traceData
	id     SpanID
	parent SpanID // zero for the root
	name   string
	start  time.Time
	dur    time.Duration
	attrs  []Attr
	events []SpanEvent
	errMsg string
	failed bool
}

type ctxKey struct{}

// FromContext returns the active span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// ContextWith returns ctx carrying sp as the active span. A nil sp returns
// ctx unchanged.
func ContextWith(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// Start begins a span named name: a child of the active span when ctx
// carries one, otherwise a new root on the default tracer when it is
// enabled, otherwise nothing — (ctx, nil) comes back unchanged and every
// later call on the nil span is a no-op. The returned context carries the
// new span for further nesting.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if parent := FromContext(ctx); parent != nil {
		sp := parent.child(name)
		return ContextWith(ctx, sp), sp
	}
	return defaultTracer.Start(ctx, name)
}

// Start begins a root span on this tracer (or a child span when ctx already
// carries one, regardless of which tracer owns it).
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if parent := FromContext(ctx); parent != nil {
		sp := parent.child(name)
		return ContextWith(ctx, sp), sp
	}
	if !t.enabled.Load() {
		return ctx, nil
	}
	sp := t.newRoot(name, t.newTraceID(), SpanID{})
	return ContextWith(ctx, sp), sp
}

// StartRemote begins a root span that joins the caller's distributed trace:
// the trace adopts tp's trace ID and records tp's span as the remote parent,
// so an external system can correlate /debug/traces output with its own
// spans. Returns (ctx, nil) when the tracer is disabled.
func (t *Tracer) StartRemote(ctx context.Context, tp Traceparent, name string) (context.Context, *Span) {
	if !t.enabled.Load() {
		return ctx, nil
	}
	sp := t.newRoot(name, tp.TraceID, tp.Parent)
	return ContextWith(ctx, sp), sp
}

func (t *Tracer) newRoot(name string, id TraceID, remote SpanID) *Span {
	td := &traceData{tracer: t, id: id, start: time.Now(), remote: remote}
	sp := &Span{td: td, id: t.newSpanID(), name: name, start: td.start}
	td.spans = append(td.spans, sp)
	td.started = 1
	tracesStarted.Inc()
	spansStarted.Inc()
	return sp
}

// child creates and registers a child span; returns nil when the trace has
// hit its span cap (the drop is counted, so truncated trees are detectable).
func (s *Span) child(name string) *Span {
	td := s.td
	sp := &Span{td: td, id: td.tracer.newSpanID(), parent: s.id, name: name, start: time.Now()}
	td.mu.Lock()
	td.started++
	if len(td.spans) >= int(td.tracer.maxSpans.Load()) {
		td.mu.Unlock()
		spansDropped.Inc()
		return nil
	}
	td.spans = append(td.spans, sp)
	td.mu.Unlock()
	spansStarted.Inc()
	return sp
}

// Active reports whether the span is recording.
func (s *Span) Active() bool { return s != nil }

// TraceID returns the 128-bit trace identifier (zero for a nil span).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.td.id
}

// SpanID returns the span's own 64-bit identifier (zero for a nil span).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// Attr records a string attribute on the span.
func (s *Span) Attr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// AttrInt records an integer attribute on the span.
func (s *Span) AttrInt(key string, v int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: itoa(v)})
}

// Event records a timestamped point annotation within the span.
func (s *Span) Event(msg string) {
	if s == nil {
		return
	}
	s.events = append(s.events, SpanEvent{OffsetUS: time.Since(s.start).Microseconds(), Msg: msg})
}

// Error marks the span (and therefore its trace) failed. Error traces are
// always retained by tail sampling.
func (s *Span) Error(err error) {
	if s == nil || err == nil {
		return
	}
	s.failed = true
	s.errMsg = err.Error()
	s.td.mu.Lock()
	s.td.failed = true
	s.td.mu.Unlock()
}

// End stops the span, feeds the elapsed seconds into the obs
// <dotted.name>_seconds histogram (the obs.Span convention, so the span is
// simultaneously an aggregate observation and a tree node), and — for the
// root span — runs the tail-sampling decision and publishes the trace to the
// ring buffer if retained. Returns the span duration; 0 for a nil span.
//
// The histogram observation carries the span's trace ID as a bucket exemplar,
// so a /metrics bucket line links directly to the /debug/traces/{id} tree of
// one real request that landed in it. Untraced traffic never reaches End (nil
// span fast path), so exemplar-free exposition stays byte-identical.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	s.dur = time.Since(s.start)
	obs.Default().Histogram(obs.MetricName(s.name)+"_seconds",
		"wall-clock seconds spent in "+s.name+" trace spans", obs.DefBuckets).
		ObserveExemplar(s.dur.Seconds(), s.td.id.String())
	if s.parent.IsZero() {
		s.td.finish(s.dur)
	}
	return s.dur
}

// finish applies tail sampling to a completed trace and, when the trace is
// retained, publishes it to the ring buffer.
func (td *traceData) finish(rootDur time.Duration) {
	t := td.tracer
	td.dur = rootDur
	td.mu.Lock()
	failed := td.failed
	td.mu.Unlock()
	switch {
	case failed:
		td.reason = RetainedError
	case t.SlowThreshold() > 0 && rootDur >= t.SlowThreshold():
		td.reason = RetainedSlow
	default:
		p := t.SampleRate()
		// 53 high bits give a uniform draw in [0,1); p >= 1 retains without
		// consuming the stream so forced-retention setups stay cheap.
		if p >= 1 || (p > 0 && float64(t.rand64()>>11)/(1<<53) < p) {
			td.reason = RetainedSampled
		} else {
			tracesSampledOut.Inc()
			return
		}
	}
	tracesRetained.Inc()
	t.ring.Load().push(td)
}

// itoa is strconv.AppendInt without the import-cycle risk of growing fmt
// into hot paths; spans record small integers (shard indexes, ks, statuses).
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }
